// Package fafnet is the public facade of the FDDI-ATM-FDDI real-time
// connection library, a reproduction of "Connection-Oriented Communications
// for Real-Time Applications in FDDI-ATM-FDDI Heterogeneous Networks"
// (Chen, Sahoo, Zhao, Raha; ICDCS 1997).
//
// The library answers one question for a heterogeneous network whose FDDI
// segments hang off an ATM backbone: can a new real-time connection be
// admitted so that every connection's worst-case end-to-end delay stays
// within its deadline — and if so, how much synchronous bandwidth should it
// be granted on the sender and receiver rings?
//
// # Quick start
//
//	net, _ := fafnet.NewNetwork(fafnet.DefaultTopology())
//	cac, _ := fafnet.NewController(net, fafnet.Options{Beta: 0.5})
//	src, _ := fafnet.NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
//	dec, _ := cac.RequestAdmission(fafnet.ConnSpec{
//		ID:       "video-1",
//		Src:      fafnet.HostID{Ring: 0, Index: 0},
//		Dst:      fafnet.HostID{Ring: 1, Index: 0},
//		Source:   src,
//		Deadline: 0.050,
//	})
//	if dec.Admitted {
//		fmt.Printf("granted H_S=%.2f ms, H_R=%.2f ms\n", dec.HS*1e3, dec.HR*1e3)
//	}
//
// The facade re-exports the library's main types; the implementation lives
// in internal packages:
//
//   - internal/core — the paper's contribution: Eq. 7 delay decomposition,
//     the feasible region of Theorems 3–4, and the β-tunable CAC.
//   - internal/traffic — Γ(I) maximum-rate-function descriptors (Eq. 37).
//   - internal/fddi — Theorem 1 and a timed-token ring simulator.
//   - internal/atm — FIFO output-port bounds and a cell-level simulator.
//   - internal/ifdev — the interface device (Theorem 2 conversions).
//   - internal/sim — the Section 6 admission-probability experiments.
//   - internal/packetsim — packet-level validation of the analytic bounds.
package fafnet

import (
	"fafnet/internal/core"
	"fafnet/internal/fddi"
	"fafnet/internal/packetsim"
	"fafnet/internal/shaper"
	"fafnet/internal/sim"
	"fafnet/internal/tokenring"
	"fafnet/internal/topo"
	"fafnet/internal/traffic"
)

// Traffic descriptors (Section 4.2 of the paper).
type (
	// Descriptor is the maximum-rate-function traffic descriptor Γ(I).
	Descriptor = traffic.Descriptor
	// DualPeriodic is the paper's dual-periodic source model (Eq. 37).
	DualPeriodic = traffic.DualPeriodic
	// Periodic is the one-period source model.
	Periodic = traffic.Periodic
	// CBR is a constant-bit-rate source.
	CBR = traffic.CBR
	// LeakyBucket is the (σ, ρ, peak) regulator envelope.
	LeakyBucket = traffic.LeakyBucket
)

// Descriptor constructors.
var (
	// NewDualPeriodic builds the dual-periodic descriptor of Eq. 37.
	NewDualPeriodic = traffic.NewDualPeriodic
	// NewPeriodic builds a one-period descriptor.
	NewPeriodic = traffic.NewPeriodic
	// NewCBR builds a constant-bit-rate descriptor.
	NewCBR = traffic.NewCBR
	// NewLeakyBucket builds a leaky-bucket descriptor.
	NewLeakyBucket = traffic.NewLeakyBucket
)

// Topology (Section 3.1).
type (
	// Topology describes an FDDI-ATM-FDDI network to build.
	Topology = topo.Config
	// Network is a built topology with per-ring bandwidth bookkeeping.
	Network = topo.Network
	// HostID identifies Host_{i,j}: host j on ring i.
	HostID = topo.HostID
	// Route is a connection's decomposed path (Figure 2).
	Route = topo.Route
	// RingHardware describes one ring segment's protocol parameters; use it
	// with Topology.Rings for heterogeneous networks (mixed TTRTs, mixed
	// media rates, or 802.5 segments via TokenRingConfig.SimConfig).
	RingHardware = fddi.RingConfig
)

var (
	// DefaultTopology returns the paper's evaluation network: 3 FDDI rings
	// × 4 hosts, 3 interface devices, 3 switches on 155 Mb/s links.
	DefaultTopology = topo.Default
	// NewNetwork builds a network from a topology description.
	NewNetwork = topo.NewNetwork
)

// Admission control (Section 5).
type (
	// ConnSpec describes a connection requesting admission.
	ConnSpec = core.ConnSpec
	// Connection is an admitted connection with its allocations.
	Connection = core.Connection
	// Controller is the connection admission controller.
	Controller = core.Controller
	// Options configures the controller (β, allocation rule, tolerances).
	Options = core.Options
	// Decision reports one admission outcome.
	Decision = core.Decision
	// Breakdown decomposes a worst-case delay by server (Eq. 7/16).
	Breakdown = core.Breakdown
	// Analyzer computes network-wide worst-case delays.
	Analyzer = core.Analyzer
	// Rule selects the allocation segment on the H_S–H_R plane.
	Rule = core.Rule
	// BufferRequirement reports Theorem 1's worst-case MAC backlogs.
	BufferRequirement = core.BufferRequirement
	// ShaperSpec parameterizes a per-connection (σ, ρ) ingress regulator
	// (set ConnSpec.Shape to enable shaping at the interface device).
	ShaperSpec = shaper.Spec
)

// Allocation rules.
const (
	// RuleProportional is the paper's scheme (Section 5.3, Rule 2).
	RuleProportional = core.RuleProportional
	// RuleFixedSplit is an ablation: equal absolute allocations.
	RuleFixedSplit = core.RuleFixedSplit
	// RuleSenderBiased is an ablation: the sender ring gets its maximum.
	RuleSenderBiased = core.RuleSenderBiased
)

var (
	// NewController builds a CAC over a network.
	NewController = core.NewController
	// NewAnalyzer builds a delay analyzer over a network.
	NewAnalyzer = core.NewAnalyzer
)

// Experiments (Section 6) and validation.
type (
	// SimConfig parameterizes an admission-probability simulation.
	SimConfig = sim.Config
	// SimResult is one run's statistics.
	SimResult = sim.Result
	// Workload describes the stochastic request process.
	Workload = sim.Workload
	// Series is one labeled curve of a reproduced figure.
	Series = sim.Series
	// ValidationConfig parameterizes a packet-level validation run.
	ValidationConfig = packetsim.Config
	// ValidationResult reports measured delays against analytic bounds.
	ValidationResult = packetsim.Result
)

// Section 7 extension: IEEE 802.5 token-ring segments. The 802.5 MAC admits
// the same Theorem 1 analysis with the rotation target in place of the TTRT.
type (
	// TokenRingConfig describes one 802.5 segment.
	TokenRingConfig = tokenring.RingConfig
	// TokenRing tracks THT allocations on one 802.5 segment.
	TokenRing = tokenring.Ring
	// TokenRingMACParams parameterizes the 802.5_MAC server.
	TokenRingMACParams = tokenring.MACParams
	// FDDIMACOptions tunes the Theorem 1 numeric searches.
	FDDIMACOptions = fddi.Options
)

var (
	// NewTokenRing builds an empty 802.5 segment.
	NewTokenRing = tokenring.NewRing
	// DefaultTokenRingConfig returns a 16 Mb/s ring with an 8 ms rotation.
	DefaultTokenRingConfig = tokenring.DefaultRingConfig
	// AnalyzeTokenRingMAC bounds the 802.5_MAC server (Theorem 1 analog).
	AnalyzeTokenRingMAC = tokenring.AnalyzeMAC
)

var (
	// RunSim executes one admission-probability simulation.
	RunSim = sim.Run
	// BetaSweep reproduces Figure 7 (AP vs β).
	BetaSweep = sim.BetaSweep
	// LoadSweep reproduces Figure 8 (AP vs U).
	LoadSweep = sim.LoadSweep
	// RuleSweep runs the allocation-rule ablation (E4).
	RuleSweep = sim.RuleSweep
	// DefaultWorkload returns the evaluation workload constants.
	DefaultWorkload = sim.DefaultWorkload
	// Validate runs the packet-level simulator against the analytic bounds.
	Validate = packetsim.Run
)
