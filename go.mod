module fafnet

go 1.22
