package fafnet_test

import (
	"testing"

	"fafnet"
)

// TestFacadeQuickstart exercises the exact flow the package documentation
// advertises.
func TestFacadeQuickstart(t *testing.T) {
	net, err := fafnet.NewNetwork(fafnet.DefaultTopology())
	if err != nil {
		t.Fatal(err)
	}
	cac, err := fafnet.NewController(net, fafnet.Options{Beta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	src, err := fafnet.NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := cac.RequestAdmission(fafnet.ConnSpec{
		ID:       "video-1",
		Src:      fafnet.HostID{Ring: 0, Index: 0},
		Dst:      fafnet.HostID{Ring: 1, Index: 0},
		Source:   src,
		Deadline: 0.050,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Admitted {
		t.Fatalf("quickstart admission rejected: %s", dec.Reason)
	}
	if dec.HS <= 0 || dec.HR <= 0 {
		t.Errorf("allocations HS=%v HR=%v", dec.HS, dec.HR)
	}
	bd, err := cac.BreakdownFor("video-1")
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total <= 0 || bd.Total > 0.050 {
		t.Errorf("breakdown total %v outside (0, deadline]", bd.Total)
	}
}

// TestFacadeValidation runs the packet-level validator through the facade.
func TestFacadeValidation(t *testing.T) {
	topoCfg := fafnet.DefaultTopology()
	net, err := fafnet.NewNetwork(topoCfg)
	if err != nil {
		t.Fatal(err)
	}
	cac, err := fafnet.NewController(net, fafnet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := fafnet.NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := cac.RequestAdmission(fafnet.ConnSpec{
		ID: "c1", Src: fafnet.HostID{Ring: 0, Index: 0}, Dst: fafnet.HostID{Ring: 2, Index: 1},
		Source: src, Deadline: 0.060,
	})
	if err != nil || !dec.Admitted {
		t.Fatalf("admission: %v %v", err, dec.Reason)
	}
	res, err := fafnet.Validate(fafnet.ValidationConfig{
		Topology:    topoCfg,
		Connections: cac.Connections(),
		Duration:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllWithinBounds() {
		t.Error("validation found a bound violation")
	}
}
