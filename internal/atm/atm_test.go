package atm

import (
	"testing"

	"fafnet/internal/units"
)

func TestPayloadCapacity(t *testing.T) {
	got := PayloadCapacity(155e6)
	want := 155e6 * 384.0 / 424.0
	if !units.AlmostEq(got, want) {
		t.Errorf("PayloadCapacity(155e6) = %v, want %v", got, want)
	}
}

func TestCellTime(t *testing.T) {
	got := CellTime(155e6)
	want := 424.0 / 155e6
	if !units.AlmostEq(got, want) {
		t.Errorf("CellTime = %v, want %v", got, want)
	}
}

func TestCellsPerFrame(t *testing.T) {
	tests := []struct {
		frameBits float64
		want      int
	}{
		{0, 0},
		{-5, 0},
		{1, 1},
		{384, 1},
		{385, 2},
		{36000, 94}, // max FDDI frame: 36000/384 = 93.75
		{768, 2},
	}
	for _, tt := range tests {
		if got := CellsPerFrame(tt.frameBits); got != tt.want {
			t.Errorf("CellsPerFrame(%v) = %d, want %d", tt.frameBits, got, tt.want)
		}
	}
}

func TestSwitchParamsValidate(t *testing.T) {
	if err := DefaultSwitchParams().Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
	if err := (SwitchParams{InputDelay: -1}).Validate(); err == nil {
		t.Error("negative input delay should be rejected")
	}
	if err := (SwitchParams{FabricDelay: -1}).Validate(); err == nil {
		t.Error("negative fabric delay should be rejected")
	}
	p := SwitchParams{InputDelay: 1e-5, FabricDelay: 2e-5}
	if got := p.ConstantDelay(); !units.AlmostEq(got, 3e-5) {
		t.Errorf("ConstantDelay = %v, want 3e-5", got)
	}
}
