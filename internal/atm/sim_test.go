package atm

import (
	"testing"

	"fafnet/internal/des"
	"fafnet/internal/traffic"
	"fafnet/internal/units"
)

func TestPortSimValidation(t *testing.T) {
	sim := des.NewSimulator()
	sink := func(Cell) {}
	if _, err := NewPortSim(nil, 1e6, 0, sink); err == nil {
		t.Error("nil simulator should be rejected")
	}
	if _, err := NewPortSim(sim, 0, 0, sink); err == nil {
		t.Error("zero rate should be rejected")
	}
	if _, err := NewPortSim(sim, 1e6, -1, sink); err == nil {
		t.Error("negative propagation should be rejected")
	}
	if _, err := NewPortSim(sim, 1e6, 0, nil); err == nil {
		t.Error("nil sink should be rejected")
	}
}

func TestPortSimSerialTransmission(t *testing.T) {
	sim := des.NewSimulator()
	var arrivals []float64
	port, err := NewPortSim(sim, 155e6, 0, func(c Cell) {
		arrivals = append(arrivals, sim.Now())
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		port.Submit(Cell{ConnID: "c", CellSeq: i})
	}
	sim.Run(1)
	if len(arrivals) != 5 {
		t.Fatalf("delivered %d cells, want 5", len(arrivals))
	}
	ct := CellTime(155e6)
	for i, at := range arrivals {
		want := float64(i+1) * ct
		if !units.WithinRel(at, want, 1e-9) {
			t.Errorf("cell %d arrived at %v, want %v", i, at, want)
		}
	}
	if port.Sent() != 5 {
		t.Errorf("Sent = %d, want 5", port.Sent())
	}
	// The first cell goes on the wire immediately, so four cells queue.
	if port.MaxQueueLen() != 4 {
		t.Errorf("MaxQueueLen = %d, want 4", port.MaxQueueLen())
	}
}

func TestPortSimPropagation(t *testing.T) {
	sim := des.NewSimulator()
	var at float64
	port, err := NewPortSim(sim, 155e6, 1e-4, func(Cell) { at = sim.Now() })
	if err != nil {
		t.Fatal(err)
	}
	port.Submit(Cell{})
	sim.Run(1)
	want := CellTime(155e6) + 1e-4
	if !units.WithinRel(at, want, 1e-9) {
		t.Errorf("arrival at %v, want %v", at, want)
	}
}

func TestSwitchSimRouting(t *testing.T) {
	sim := des.NewSimulator()
	var gotA, gotB []Cell
	portA, err := NewPortSim(sim, 155e6, 0, func(c Cell) { gotA = append(gotA, c) })
	if err != nil {
		t.Fatal(err)
	}
	portB, err := NewPortSim(sim, 155e6, 0, func(c Cell) { gotB = append(gotB, c) })
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSwitchSim(sim, DefaultSwitchParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Route("a", portA); err != nil {
		t.Fatal(err)
	}
	if err := sw.Route("a", portA); err == nil {
		t.Error("duplicate route should fail")
	}
	if err := sw.Route("b", portB); err != nil {
		t.Fatal(err)
	}
	if err := sw.Route("c", nil); err == nil {
		t.Error("nil port should be rejected")
	}
	sw.Receive(Cell{ConnID: "a", CellSeq: 1})
	sw.Receive(Cell{ConnID: "b", CellSeq: 2})
	sw.Receive(Cell{ConnID: "a", CellSeq: 3})
	sim.Run(1)
	if len(gotA) != 2 || len(gotB) != 1 {
		t.Fatalf("routed %d/%d cells, want 2/1", len(gotA), len(gotB))
	}
	if !sw.Unroute("a") {
		t.Error("Unroute(a) should succeed")
	}
	if sw.Unroute("a") {
		t.Error("double Unroute should report false")
	}
}

func TestSwitchSimUnroutedPanics(t *testing.T) {
	sim := des.NewSimulator()
	sw, err := NewSwitchSim(sim, DefaultSwitchParams())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("unrouted cell should panic")
		}
	}()
	sw.Receive(Cell{ConnID: "ghost"})
}

// TestPortSimDelayWithinMuxBound validates the multiplexer analysis against
// the cell-level simulator: two bursty connections share a port; every
// per-cell queueing delay must stay below the analytic worst case.
func TestPortSimDelayWithinMuxBound(t *testing.T) {
	const (
		wire    = 155e6
		simTime = 1.0
	)
	sim := des.NewSimulator()
	var worst float64
	port, err := NewPortSim(sim, wire, 0, func(c Cell) {
		if d := sim.Now() - c.Created; d > worst {
			worst = d
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// Each source: burst of 20 cells back-to-back every 2 ms.
	const cellsPerBurst = 20
	const burstPeriod = 2e-3
	inject := func(connID string, offset float64) {
		var burst func()
		seq := 0
		burst = func() {
			if sim.Now() > simTime {
				return
			}
			for i := 0; i < cellsPerBurst; i++ {
				port.Submit(Cell{ConnID: connID, CellSeq: seq, PayloadBits: CellPayloadBits, Created: sim.Now()})
				seq++
			}
			if _, err := sim.After(burstPeriod, burst); err != nil {
				t.Errorf("schedule: %v", err)
			}
		}
		if _, err := sim.After(offset, burst); err != nil {
			t.Errorf("schedule: %v", err)
		}
	}
	inject("a", 0)
	inject("b", 0) // worst case: bursts aligned

	// Analysis with matching envelopes in payload bits at payload capacity.
	burstBits := float64(cellsPerBurst * CellPayloadBits)
	env, err := traffic.NewPeriodic(burstBits, burstPeriod, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeMux([]traffic.Descriptor{env, env}, MuxParams{CapacityBps: PayloadCapacity(wire)}, MuxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bound := res.Delay + CellTime(wire) // bound covers queueing; add own transmission

	sim.Run(simTime + 0.1)
	if worst <= 0 {
		t.Fatal("no delay measured")
	}
	if worst > bound*(1+1e-9) {
		t.Errorf("measured worst cell delay %v exceeds bound %v", worst, bound)
	}
}
