package atm

import (
	"errors"
	"fmt"

	"fafnet/internal/des"
)

// Cell is one ATM cell in the cell-level simulator.
type Cell struct {
	// ConnID identifies the connection (VC) the cell belongs to.
	ConnID string
	// FrameSeq and CellSeq identify the LAN frame the cell carries a piece
	// of and the cell's index within that frame.
	FrameSeq, CellSeq int
	// LastOfFrame marks the final cell of a frame (reassembly completes on
	// its arrival).
	LastOfFrame bool
	// PayloadBits is the payload carried (<= CellPayloadBits; padded cells
	// still occupy a full cell on the wire).
	PayloadBits float64
	// Created is the simulation time the cell entered the ATM layer.
	Created float64
}

// PortSim is a FIFO cell transmitter: cells queue and are sent serially at
// the configured wire rate; each transmitted cell is handed to the sink
// after the link propagation delay.
type PortSim struct {
	sim     *des.Simulator
	wireBps float64
	prop    float64
	sink    func(Cell)
	queue   []Cell
	busy    bool
	maxQLen int
	sent    int64
}

// NewPortSim creates a port transmitting at wireBps with the given link
// propagation delay; sink receives each cell when its last bit arrives at
// the far end.
func NewPortSim(sim *des.Simulator, wireBps, propagation float64, sink func(Cell)) (*PortSim, error) {
	if sim == nil {
		return nil, errors.New("atm: PortSim requires a simulator")
	}
	if wireBps <= 0 {
		return nil, fmt.Errorf("atm: wire rate %v must be positive", wireBps)
	}
	if propagation < 0 {
		return nil, fmt.Errorf("atm: propagation %v must be non-negative", propagation)
	}
	if sink == nil {
		return nil, errors.New("atm: PortSim requires a sink")
	}
	return &PortSim{sim: sim, wireBps: wireBps, prop: propagation, sink: sink}, nil
}

// Submit enqueues a cell for transmission.
func (p *PortSim) Submit(c Cell) {
	p.queue = append(p.queue, c)
	if len(p.queue) > p.maxQLen {
		p.maxQLen = len(p.queue)
	}
	if !p.busy {
		p.startNext()
	}
}

// QueueLen returns the number of cells waiting (excluding the one on the
// wire).
func (p *PortSim) QueueLen() int { return len(p.queue) }

// MaxQueueLen returns the high-water mark of the queue, in cells.
func (p *PortSim) MaxQueueLen() int { return p.maxQLen }

// Sent returns the number of cells fully transmitted.
func (p *PortSim) Sent() int64 { return p.sent }

func (p *PortSim) startNext() {
	if len(p.queue) == 0 {
		p.busy = false
		return
	}
	p.busy = true
	c := p.queue[0]
	p.queue = p.queue[1:]
	txEnd := p.sim.Now() + CellTime(p.wireBps)
	if _, err := p.sim.Schedule(txEnd, func() {
		p.sent++
		arrival := txEnd + p.prop
		if p.prop == 0 {
			p.sink(c)
		} else if _, err := p.sim.Schedule(arrival, func() { p.sink(c) }); err != nil {
			panic(fmt.Sprintf("atm: delivery scheduling failed: %v", err))
		}
		p.startNext()
	}); err != nil {
		panic(fmt.Sprintf("atm: transmission scheduling failed: %v", err))
	}
}

// SwitchSim models one ATM switch: cells arriving at any input incur the
// constant input+fabric latency, then are routed by connection id to an
// output port.
type SwitchSim struct {
	sim    *des.Simulator
	params SwitchParams
	routes map[string]*PortSim
}

// NewSwitchSim creates a switch with the given constant-delay parameters.
func NewSwitchSim(sim *des.Simulator, params SwitchParams) (*SwitchSim, error) {
	if sim == nil {
		return nil, errors.New("atm: SwitchSim requires a simulator")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &SwitchSim{sim: sim, params: params, routes: make(map[string]*PortSim)}, nil
}

// Route directs all cells of the given connection to the given output port.
func (s *SwitchSim) Route(connID string, out *PortSim) error {
	if out == nil {
		return fmt.Errorf("atm: route for %q requires an output port", connID)
	}
	if _, dup := s.routes[connID]; dup {
		return fmt.Errorf("atm: connection %q already routed", connID)
	}
	s.routes[connID] = out
	return nil
}

// Unroute removes the route for a connection, reporting whether one existed.
func (s *SwitchSim) Unroute(connID string) bool {
	if _, ok := s.routes[connID]; !ok {
		return false
	}
	delete(s.routes, connID)
	return true
}

// Receive accepts a cell at an input port. Cells of unrouted connections are
// dropped with a panic, since the validation harness must never lose cells
// silently.
func (s *SwitchSim) Receive(c Cell) {
	out, ok := s.routes[c.ConnID]
	if !ok {
		panic(fmt.Sprintf("atm: no route for connection %q", c.ConnID))
	}
	if _, err := s.sim.After(s.params.ConstantDelay(), func() { out.Submit(c) }); err != nil {
		panic(fmt.Sprintf("atm: switch scheduling failed: %v", err))
	}
}
