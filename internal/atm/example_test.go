package atm_test

import (
	"fmt"

	"fafnet/internal/atm"
	"fafnet/internal/traffic"
)

func ExampleCellsPerFrame() {
	fmt.Println(atm.CellsPerFrame(36000)) // maximum FDDI frame
	fmt.Println(atm.CellsPerFrame(384))   // exactly one cell of payload
	fmt.Println(atm.CellsPerFrame(385))
	// Output:
	// 94
	// 1
	// 2
}

// A FIFO output port fed by three leaky-bucket connections: the classical
// bound gives delay Σσ/C.
func ExampleAnalyzeMux() {
	var inputs []traffic.Descriptor
	for i := 0; i < 3; i++ {
		b, err := traffic.NewLeakyBucket(2e4, 10e6, 0)
		if err != nil {
			panic(err)
		}
		inputs = append(inputs, b)
	}
	res, err := atm.AnalyzeMux(inputs, atm.MuxParams{CapacityBps: 100e6}, atm.MuxOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("delay %.0f us, backlog %.0f kbit\n", res.Delay*1e6, res.BacklogBits/1e3)
	// Output:
	// delay 600 us, backlog 60 kbit
}
