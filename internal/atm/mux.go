package atm

import (
	"errors"
	"fmt"
	"sort"

	"fafnet/internal/traffic"
	"fafnet/internal/units"
)

// Mux analysis failure modes.
var (
	// ErrMuxOverload indicates the long-term rates of the multiplexed
	// connections exceed the port's service rate.
	ErrMuxOverload = errors.New("atm: aggregate long-term rate exceeds port capacity")
	// ErrMuxNoConvergence indicates the busy-period search did not find an
	// idle point within the configured horizon.
	ErrMuxNoConvergence = errors.New("atm: busy-period search did not converge")
)

// MuxParams parameterizes a FIFO output-port multiplexer.
type MuxParams struct {
	// CapacityBps is the payload-effective service rate of the port.
	CapacityBps float64
	// BufferBits bounds the port queue; 0 means unlimited. When positive,
	// the analysis fails if the worst-case backlog exceeds it (a loss would
	// make the delay unbounded, as in Theorem 1).
	BufferBits float64
}

// Busy-period search defaults.
const (
	// defaultInitialHorizon seeds the doubling busy-period search (seconds);
	// 16 ms covers several TTRTs of the paper's scenarios on the first try.
	defaultInitialHorizon = 16e-3
	// defaultMaxHorizon bounds the busy-period search (seconds).
	defaultMaxHorizon = 4
)

// MuxOptions tunes the numeric search. The zero value selects defaults.
type MuxOptions struct {
	// GridPoints is the uniform fallback resolution per busy-period search
	// window (default 128).
	GridPoints int
	// InitialHorizon seeds the doubling search for the busy period
	// (default 16 ms).
	InitialHorizon float64
	// MaxHorizon bounds the busy-period search (default 4 s).
	MaxHorizon float64
}

func (o MuxOptions) withDefaults() MuxOptions {
	if o.GridPoints <= 0 {
		o.GridPoints = 128
	}
	if o.InitialHorizon <= 0 {
		o.InitialHorizon = defaultInitialHorizon
	}
	if o.MaxHorizon <= 0 {
		o.MaxHorizon = defaultMaxHorizon
	}
	return o
}

// MuxResult is the outcome of the FIFO multiplexer analysis.
type MuxResult struct {
	// BusyPeriod is (an upper bound on) the longest interval during which
	// the port never idles.
	BusyPeriod float64
	// Delay is the worst-case queueing delay through the port:
	// max over the busy period of (ΣA_k(t) − C·t)/C.
	Delay float64
	// BacklogBits is the worst-case queue content.
	BacklogBits float64
	// Outputs holds, for each input connection in order, its envelope at the
	// port exit: min(C·I, A_k(I + Delay)).
	Outputs []traffic.Descriptor
}

// ErrMuxBufferOverflow indicates the worst-case backlog exceeds the port
// buffer.
var ErrMuxBufferOverflow = errors.New("atm: worst-case backlog exceeds port buffer")

// AnalyzeMux bounds a FIFO multiplexer fed by the given per-connection
// envelopes and serving at p.CapacityBps. It returns the busy period, the
// worst-case delay, the worst-case backlog, and each connection's output
// envelope. An error means no finite bound exists (overload, overflow, or a
// busy period beyond the search horizon).
func AnalyzeMux(inputs []traffic.Descriptor, p MuxParams, opts MuxOptions) (MuxResult, error) {
	if len(inputs) == 0 {
		return MuxResult{}, errors.New("atm: AnalyzeMux requires at least one input")
	}
	for i, in := range inputs {
		if in == nil {
			return MuxResult{}, fmt.Errorf("atm: input %d is nil", i)
		}
	}
	// The aggregate is scanned twice over largely the same points (busy-period
	// search, then the extremum pass over the merged grid) and its breakpoint
	// union is re-requested at every doubled horizon; the memo makes each
	// distinct point cost one chain walk total instead of one per scan.
	agg := traffic.NewMemoized(traffic.NewAggregate(inputs...))
	res, err := AnalyzeAggregate(agg, p, opts)
	if err != nil {
		return MuxResult{}, err
	}

	outs := make([]traffic.Descriptor, len(inputs))
	for i, in := range inputs {
		out, derr := traffic.NewDelayed(in, res.Delay, p.CapacityBps)
		if derr != nil {
			return MuxResult{}, fmt.Errorf("atm: building output envelope %d: %w", i, derr)
		}
		outs[i] = out
	}
	res.Outputs = outs
	return res, nil
}

// AnalyzeAggregate bounds the same FIFO multiplexer given the combined
// envelope of all its inputs — already summed, e.g. a materialized flat
// breakpoint array delta-updated across admission probes — so callers that
// maintain aggregates incrementally skip both the per-call Aggregate
// construction and the per-point member summation. The result carries no
// per-input Outputs (the caller owns the member set); everything else is
// identical to AnalyzeMux over the member envelopes.
func AnalyzeAggregate(agg traffic.Descriptor, p MuxParams, opts MuxOptions) (MuxResult, error) {
	if agg == nil {
		return MuxResult{}, errors.New("atm: AnalyzeAggregate requires an aggregate envelope")
	}
	if p.CapacityBps <= 0 {
		return MuxResult{}, fmt.Errorf("atm: capacity %v must be positive", p.CapacityBps)
	}
	if p.BufferBits < 0 {
		return MuxResult{}, fmt.Errorf("atm: buffer %v must be non-negative", p.BufferBits)
	}
	opts = opts.withDefaults()
	mMuxAnalyses.Inc()

	if agg.LongTermRate() >= p.CapacityBps*(1-units.RelTol) {
		mMuxInfeasible.Inc()
		return MuxResult{}, fmt.Errorf("%w: Σρ=%v bps, C=%v bps", ErrMuxOverload, agg.LongTermRate(), p.CapacityBps)
	}

	busy, grid, err := busyPeriod(agg, p.CapacityBps, opts)
	if err != nil {
		mMuxInfeasible.Inc()
		return MuxResult{}, err
	}
	// The t→0+ limit matters for envelopes with an instantaneous burst.
	grid = traffic.MergeGrids(busy, grid, []float64{traffic.GridNudge})

	backlog := maxMuxBacklog(agg, grid, busy, p.CapacityBps)
	delay := backlog / p.CapacityBps
	if p.BufferBits > 0 && backlog > p.BufferBits*(1+units.RelTol) {
		mMuxInfeasible.Inc()
		return MuxResult{}, fmt.Errorf("%w: backlog=%v bits, buffer=%v bits", ErrMuxBufferOverflow, backlog, p.BufferBits)
	}
	return MuxResult{BusyPeriod: busy, Delay: delay, BacklogBits: backlog}, nil
}

// maxMuxBacklog returns the worst-case queue content: the maximum of
// ΣA(t) − C·t over the grid points within the busy period. It is the
// per-probe extremum pass of every FIFO port evaluation, so it is
// annotated: grid and the memoized aggregate are allocated by the caller,
// and the scan itself is pure arithmetic over them.
//
//fafvet:hotpath
func maxMuxBacklog(agg traffic.Descriptor, grid []float64, busy, capacity float64) float64 {
	var backlog float64
	for _, t := range grid {
		if t > busy+units.Eps {
			break
		}
		if b := agg.Bits(t) - capacity*t; b > backlog {
			backlog = b
		}
	}
	return backlog
}

// busyPeriod finds the first candidate point where the aggregate demand has
// been fully served (ΣA(t) <= C·t), doubling the search horizon as needed.
// Taking the first *grid* point after the true crossing only enlarges the
// extremum search range, which keeps the delay bound conservative. It
// returns the busy period together with the grid used, so the caller can
// reuse it for the extremum scan.
func busyPeriod(agg traffic.Descriptor, capacity float64, opts MuxOptions) (float64, []float64, error) {
	for horizon := opts.InitialHorizon; horizon <= opts.MaxHorizon*2; horizon *= 2 {
		// A lowered aggregate materializes out to the scanned horizon before
		// the walk — for a delta-updated sum this extends the member arrays,
		// so deep points cost a few array lookups instead of chain walks.
		if he, ok := agg.(traffic.HorizonEnsurer); ok {
			he.EnsureHorizon(horizon)
		}
		grid := traffic.Grid(agg, horizon, opts.GridPoints)
		if t, ok := busyCrossing(agg, grid, capacity); ok {
			return t, grid, nil
		}
	}
	return 0, nil, fmt.Errorf("%w: no idle point within %v s", ErrMuxNoConvergence, opts.MaxHorizon)
}

// busyCrossing scans one candidate grid for the first point with
// ΣA(t) <= C·t. The grid allocation and the horizon-doubling retry live in
// busyPeriod; this inner scan runs once per horizon per probe and is
// annotated.
//
// The scan exploits monotonicity to skip ahead: after observing a = ΣA(t),
// no earlier-unvisited point t' with C·t' + Eps < a can be the crossing (its
// demand is at least a), so the scan resumes at the first grid point past
// (a − Eps)/C. The crossing found is identical to the point-by-point scan's.
//
//fafvet:hotpath
func busyCrossing(agg traffic.Descriptor, grid []float64, capacity float64) (float64, bool) {
	for i := 0; i < len(grid); {
		t := grid[i]
		a := agg.Bits(t)
		if a <= capacity*t+units.Eps {
			return t, true
		}
		catchup := (a - units.Eps) / capacity
		i++
		// Galloping + binary search keeps the skip cheap whether the
		// crossing is one point or hundreds of points away.
		if i < len(grid) && grid[i] < catchup {
			lo, step := i, 1
			for lo+step < len(grid) && grid[lo+step] < catchup {
				lo += step
				step *= 2
			}
			hi := min(lo+step, len(grid))
			i = lo + sort.SearchFloat64s(grid[lo:hi], catchup)
		}
	}
	return 0, false
}
