package atm

import (
	"errors"
	"math"
	"testing"

	"fafnet/internal/traffic"
	"fafnet/internal/units"
)

func mustLB(t *testing.T, sigma, rho, peak float64) traffic.LeakyBucket {
	t.Helper()
	b, err := traffic.NewLeakyBucket(sigma, rho, peak)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestAnalyzeMuxValidation(t *testing.T) {
	in := mustLB(t, 1e4, 1e6, 0)
	if _, err := AnalyzeMux(nil, MuxParams{CapacityBps: 1e8}, MuxOptions{}); err == nil {
		t.Error("no inputs should be rejected")
	}
	if _, err := AnalyzeMux([]traffic.Descriptor{nil}, MuxParams{CapacityBps: 1e8}, MuxOptions{}); err == nil {
		t.Error("nil input should be rejected")
	}
	if _, err := AnalyzeMux([]traffic.Descriptor{in}, MuxParams{CapacityBps: 0}, MuxOptions{}); err == nil {
		t.Error("zero capacity should be rejected")
	}
	if _, err := AnalyzeMux([]traffic.Descriptor{in}, MuxParams{CapacityBps: 1e8, BufferBits: -1}, MuxOptions{}); err == nil {
		t.Error("negative buffer should be rejected")
	}
}

func TestAnalyzeMuxClosedFormLeakyBuckets(t *testing.T) {
	// Three uncapped (σ, ρ) buckets into capacity C: the classical bound is
	// delay = Σσ/C, backlog = Σσ, busy period = Σσ/(C − Σρ).
	inputs := []traffic.Descriptor{
		mustLB(t, 2e4, 10e6, 0),
		mustLB(t, 1e4, 20e6, 0),
		mustLB(t, 3e4, 30e6, 0),
	}
	const c = 100e6
	res, err := AnalyzeMux(inputs, MuxParams{CapacityBps: c}, MuxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantBacklog := 6e4
	wantDelay := wantBacklog / c
	wantBusy := wantBacklog / (c - 60e6)
	if !units.WithinRel(res.BacklogBits, wantBacklog, 1e-6) {
		t.Errorf("Backlog = %v, want %v", res.BacklogBits, wantBacklog)
	}
	if !units.WithinRel(res.Delay, wantDelay, 1e-6) {
		t.Errorf("Delay = %v, want %v", res.Delay, wantDelay)
	}
	// The grid-based busy period may overshoot slightly but never undershoot.
	if res.BusyPeriod < wantBusy*(1-1e-6) {
		t.Errorf("BusyPeriod = %v below true %v", res.BusyPeriod, wantBusy)
	}
	if res.BusyPeriod > wantBusy*1.2+1e-3 {
		t.Errorf("BusyPeriod = %v too loose vs %v", res.BusyPeriod, wantBusy)
	}
	if len(res.Outputs) != 3 {
		t.Fatalf("Outputs = %d, want 3", len(res.Outputs))
	}
	// Output envelope of input 0: min(C·I, σ + ρ(I+d)).
	for _, iv := range []float64{1e-4, 1e-3, 1e-2} {
		want := math.Min(c*iv, 2e4+10e6*(iv+wantDelay))
		if got := res.Outputs[0].Bits(iv); !units.WithinRel(got, want, 1e-6) {
			t.Errorf("Outputs[0].Bits(%v) = %v, want %v", iv, got, want)
		}
	}
}

func TestAnalyzeMuxOverload(t *testing.T) {
	inputs := []traffic.Descriptor{
		mustLB(t, 1e4, 80e6, 0),
		mustLB(t, 1e4, 50e6, 0),
	}
	_, err := AnalyzeMux(inputs, MuxParams{CapacityBps: 100e6}, MuxOptions{})
	if !errors.Is(err, ErrMuxOverload) {
		t.Errorf("err = %v, want ErrMuxOverload", err)
	}
}

func TestAnalyzeMuxBufferOverflow(t *testing.T) {
	inputs := []traffic.Descriptor{mustLB(t, 5e4, 10e6, 0)}
	_, err := AnalyzeMux(inputs, MuxParams{CapacityBps: 100e6, BufferBits: 1e4}, MuxOptions{})
	if !errors.Is(err, ErrMuxBufferOverflow) {
		t.Errorf("err = %v, want ErrMuxBufferOverflow", err)
	}
	if _, err := AnalyzeMux(inputs, MuxParams{CapacityBps: 100e6, BufferBits: 1e5}, MuxOptions{}); err != nil {
		t.Errorf("sufficient buffer rejected: %v", err)
	}
}

func TestAnalyzeMuxSmoothTrafficNoQueueing(t *testing.T) {
	// CBR inputs below capacity never queue in the fluid bound.
	a, err := traffic.NewCBR(30e6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := traffic.NewCBR(40e6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeMux([]traffic.Descriptor{a, b}, MuxParams{CapacityBps: 100e6}, MuxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay > 1e-9 {
		t.Errorf("Delay = %v, want ≈0 for smooth traffic", res.Delay)
	}
}

func TestAnalyzeMuxDelayMonotoneInLoad(t *testing.T) {
	// Adding a connection must not decrease the worst-case delay.
	base := []traffic.Descriptor{
		mustLB(t, 2e4, 20e6, 100e6),
		mustLB(t, 2e4, 20e6, 100e6),
	}
	res1, err := AnalyzeMux(base, MuxParams{CapacityBps: 140e6}, MuxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	more := append([]traffic.Descriptor{mustLB(t, 2e4, 20e6, 100e6)}, base...)
	res2, err := AnalyzeMux(more, MuxParams{CapacityBps: 140e6}, MuxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Delay < res1.Delay-units.Eps {
		t.Errorf("delay decreased when load added: %v → %v", res1.Delay, res2.Delay)
	}
}

func TestAnalyzeMuxWithDualPeriodicPaperWorkload(t *testing.T) {
	// Several paper-style sources through a payload-effective OC-3 port.
	var inputs []traffic.Descriptor
	for i := 0; i < 6; i++ {
		d, err := traffic.NewDualPeriodic(150e3, 0.010, 30e3, 0.001, 100e6)
		if err != nil {
			t.Fatal(err)
		}
		inputs = append(inputs, d)
	}
	cap := PayloadCapacity(DefaultLinkBps) // ≈140 Mb/s; Σρ = 90 Mb/s
	res, err := AnalyzeMux(inputs, MuxParams{CapacityBps: cap}, MuxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay <= 0 || res.Delay > 0.05 {
		t.Errorf("Delay = %v, want small positive", res.Delay)
	}
	if res.BusyPeriod <= 0 {
		t.Errorf("BusyPeriod = %v", res.BusyPeriod)
	}
}
