package atm

import "fafnet/internal/obs"

// Metric handles for the FIFO-multiplexer analysis. Counters only, for the
// same reason as the fddi package: AnalyzeMux runs once per shared port per
// CAC probe, so instrumentation must cost nothing next to the busy-period
// search.
var (
	mMuxAnalyses = obs.Default.Counter("fafnet_atm_mux_analyses_total",
		"FIFO multiplexer analyses run.")
	mMuxInfeasible = obs.Default.Counter("fafnet_atm_mux_infeasible_total",
		"Multiplexer analyses that found no finite bound (overload, overflow, or no convergence).")
)
