package atm

import (
	"errors"
	"testing"

	"fafnet/internal/des"
	"fafnet/internal/traffic"
	"fafnet/internal/units"
)

func TestAnalyzePriorityMuxValidation(t *testing.T) {
	in := mustLB(t, 1e4, 1e6, 0)
	if _, err := AnalyzePriorityMux(nil, MuxParams{CapacityBps: 1e8}, MuxOptions{}); err == nil {
		t.Error("no classes should be rejected")
	}
	if _, err := AnalyzePriorityMux([]PriorityClass{{}}, MuxParams{CapacityBps: 1e8}, MuxOptions{}); err == nil {
		t.Error("empty class should be rejected")
	}
	if _, err := AnalyzePriorityMux([]PriorityClass{{Inputs: []traffic.Descriptor{nil}}}, MuxParams{CapacityBps: 1e8}, MuxOptions{}); err == nil {
		t.Error("nil input should be rejected")
	}
	if _, err := AnalyzePriorityMux([]PriorityClass{{Inputs: []traffic.Descriptor{in}}}, MuxParams{}, MuxOptions{}); err == nil {
		t.Error("zero capacity should be rejected")
	}
}

func TestPriorityMuxClassOrdering(t *testing.T) {
	// Three classes of identical bursty traffic: delays must be
	// non-decreasing with class index, and the top class must beat FIFO.
	mk := func() traffic.Descriptor { return mustLB(t, 3e4, 20e6, 0) }
	classes := []PriorityClass{
		{Inputs: []traffic.Descriptor{mk()}},
		{Inputs: []traffic.Descriptor{mk()}},
		{Inputs: []traffic.Descriptor{mk()}},
	}
	const c = 100e6
	res, err := AnalyzePriorityMux(classes, MuxParams{CapacityBps: c}, MuxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ClassDelay) != 3 {
		t.Fatalf("ClassDelay = %v", res.ClassDelay)
	}
	for k := 1; k < 3; k++ {
		if res.ClassDelay[k] < res.ClassDelay[k-1]-units.Eps {
			t.Errorf("class %d delay %v below class %d delay %v", k, res.ClassDelay[k], k-1, res.ClassDelay[k-1])
		}
	}
	fifo, err := AnalyzeMux([]traffic.Descriptor{mk(), mk(), mk()}, MuxParams{CapacityBps: c}, MuxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ClassDelay[0] >= fifo.Delay {
		t.Errorf("top class delay %v not better than FIFO %v", res.ClassDelay[0], fifo.Delay)
	}
	// The bottom class pays at least the FIFO backlog (everything above it
	// goes first).
	if res.ClassDelay[2] < fifo.Delay-units.Eps {
		t.Errorf("bottom class delay %v below FIFO %v", res.ClassDelay[2], fifo.Delay)
	}
}

func TestPriorityMuxSingleClassMatchesFIFOPlusBlocking(t *testing.T) {
	in := mustLB(t, 6e4, 30e6, 0)
	const c = 100e6
	prio, err := AnalyzePriorityMux([]PriorityClass{{Inputs: []traffic.Descriptor{in}}}, MuxParams{CapacityBps: c}, MuxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := AnalyzeMux([]traffic.Descriptor{in}, MuxParams{CapacityBps: c}, MuxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	blocking := float64(CellWireBits) / (c * CellWireBits / CellPayloadBits)
	if !units.WithinRel(prio.ClassDelay[0], fifo.Delay+blocking, 1e-6) {
		t.Errorf("single-class priority delay %v, want FIFO %v + blocking %v", prio.ClassDelay[0], fifo.Delay, blocking)
	}
}

func TestPriorityMuxOverload(t *testing.T) {
	classes := []PriorityClass{
		{Inputs: []traffic.Descriptor{mustLB(t, 1e4, 60e6, 0)}},
		{Inputs: []traffic.Descriptor{mustLB(t, 1e4, 60e6, 0)}},
	}
	_, err := AnalyzePriorityMux(classes, MuxParams{CapacityBps: 100e6}, MuxOptions{})
	if !errors.Is(err, ErrMuxOverload) {
		t.Errorf("err = %v, want ErrMuxOverload", err)
	}
}

func TestPriorityPortSimServesHighFirst(t *testing.T) {
	sim := des.NewSimulator()
	var order []string
	port, err := NewPriorityPortSim(sim, 155e6, 0, 2, func(c Cell) { order = append(order, c.ConnID) })
	if err != nil {
		t.Fatal(err)
	}
	// Enqueue low-priority first; the first low cell occupies the wire, but
	// all high cells must then overtake the remaining low ones.
	for i := 0; i < 3; i++ {
		if err := port.Submit(1, Cell{ConnID: "low"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := port.Submit(0, Cell{ConnID: "high"}); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run(1)
	want := []string{"low", "high", "high", "high", "low", "low"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if port.Sent() != 6 {
		t.Errorf("Sent = %d", port.Sent())
	}
}

func TestPriorityPortSimValidation(t *testing.T) {
	sim := des.NewSimulator()
	sink := func(Cell) {}
	if _, err := NewPriorityPortSim(nil, 1e6, 0, 2, sink); err == nil {
		t.Error("nil sim should be rejected")
	}
	if _, err := NewPriorityPortSim(sim, 0, 0, 2, sink); err == nil {
		t.Error("zero rate should be rejected")
	}
	if _, err := NewPriorityPortSim(sim, 1e6, -1, 2, sink); err == nil {
		t.Error("negative propagation should be rejected")
	}
	if _, err := NewPriorityPortSim(sim, 1e6, 0, 0, sink); err == nil {
		t.Error("zero classes should be rejected")
	}
	if _, err := NewPriorityPortSim(sim, 1e6, 0, 2, nil); err == nil {
		t.Error("nil sink should be rejected")
	}
	port, err := NewPriorityPortSim(sim, 1e6, 0, 2, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := port.Submit(5, Cell{}); err == nil {
		t.Error("out-of-range class should be rejected")
	}
}

// TestPrioritySimDelaysWithinClassBounds validates the analysis against the
// simulator: per-class measured worst delays stay below the class bounds.
func TestPrioritySimDelaysWithinClassBounds(t *testing.T) {
	const (
		wire    = 155e6
		simTime = 1.0
		cells   = 15
		period  = 2e-3
	)
	sim := des.NewSimulator()
	worst := map[string]float64{}
	port, err := NewPriorityPortSim(sim, wire, 0, 2, func(c Cell) {
		if d := sim.Now() - c.Created; d > worst[c.ConnID] {
			worst[c.ConnID] = d
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	inject := func(class int, connID string) {
		var burst func()
		burst = func() {
			if sim.Now() > simTime {
				return
			}
			for i := 0; i < cells; i++ {
				if err := port.Submit(class, Cell{ConnID: connID, Created: sim.Now()}); err != nil {
					t.Errorf("submit: %v", err)
				}
			}
			if _, err := sim.After(period, burst); err != nil {
				t.Errorf("schedule: %v", err)
			}
		}
		if _, err := sim.After(0, burst); err != nil {
			t.Errorf("schedule: %v", err)
		}
	}
	inject(0, "urgent")
	inject(1, "bulk")

	env, err := traffic.NewPeriodic(float64(cells*CellPayloadBits), period, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzePriorityMux(
		[]PriorityClass{{Inputs: []traffic.Descriptor{env}}, {Inputs: []traffic.Descriptor{env}}},
		MuxParams{CapacityBps: PayloadCapacity(wire)},
		MuxOptions{},
	)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(simTime + 0.1)

	ct := CellTime(wire)
	if worst["urgent"] > res.ClassDelay[0]+ct {
		t.Errorf("urgent worst %v exceeds class bound %v", worst["urgent"], res.ClassDelay[0]+ct)
	}
	if worst["bulk"] > res.ClassDelay[1]+ct {
		t.Errorf("bulk worst %v exceeds class bound %v", worst["bulk"], res.ClassDelay[1]+ct)
	}
	if worst["urgent"] >= worst["bulk"] {
		t.Errorf("urgent (%v) not faster than bulk (%v)", worst["urgent"], worst["bulk"])
	}
}
