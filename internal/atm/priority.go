package atm

import (
	"errors"
	"fmt"

	"fafnet/internal/des"
	"fafnet/internal/traffic"
	"fafnet/internal/units"
)

// PriorityClass groups the connections of one static-priority level at an
// output port. Class 0 has the highest priority.
type PriorityClass struct {
	// Inputs are the envelopes of the connections in this class.
	Inputs []traffic.Descriptor
}

// PriorityMuxResult is the outcome of the static-priority port analysis.
type PriorityMuxResult struct {
	// ClassDelay[k] is the worst-case queueing delay of class k, including
	// the one-cell non-preemptive blocking from lower classes.
	ClassDelay []float64
	// Outputs mirrors the input structure: Outputs[k][i] is the envelope of
	// class k's i-th connection at the port exit.
	Outputs [][]traffic.Descriptor
}

// AnalyzePriorityMux bounds a non-preemptive static-priority output port
// (an extension beyond the paper's FIFO ports, following the standard
// busy-period argument): class k is delayed only by classes 0..k plus at
// most one cell already on the wire from a lower class,
//
//	d_k = max_t ( Σ_{j<=k} A_j(t) − C·t )/C + cellTime.
//
// The port serves payload at p.CapacityBps; cell blocking is one wire cell
// at the corresponding wire rate.
func AnalyzePriorityMux(classes []PriorityClass, p MuxParams, opts MuxOptions) (PriorityMuxResult, error) {
	if len(classes) == 0 {
		return PriorityMuxResult{}, errors.New("atm: AnalyzePriorityMux requires at least one class")
	}
	if p.CapacityBps <= 0 {
		return PriorityMuxResult{}, fmt.Errorf("atm: capacity %v must be positive", p.CapacityBps)
	}
	opts = opts.withDefaults()
	// One wire cell at the wire rate equals one payload's worth of bits at
	// the payload-effective rate: wire/(C·wire/payload) = payload/C.
	blocking := CellPayloadBits / p.CapacityBps

	res := PriorityMuxResult{
		ClassDelay: make([]float64, len(classes)),
		Outputs:    make([][]traffic.Descriptor, len(classes)),
	}
	var cumulative []traffic.Descriptor
	for k, class := range classes {
		if len(class.Inputs) == 0 {
			return PriorityMuxResult{}, fmt.Errorf("atm: priority class %d is empty", k)
		}
		for i, in := range class.Inputs {
			if in == nil {
				return PriorityMuxResult{}, fmt.Errorf("atm: class %d input %d is nil", k, i)
			}
		}
		cumulative = append(cumulative, class.Inputs...)
		// Same memoization as AnalyzeMux: the busy-period search and the
		// extremum pass revisit the same grid points.
		agg := traffic.NewMemoized(traffic.NewAggregate(cumulative...))
		if agg.LongTermRate() >= p.CapacityBps*(1-units.RelTol) {
			return PriorityMuxResult{}, fmt.Errorf("%w: classes 0..%d carry %v bps, C=%v bps",
				ErrMuxOverload, k, agg.LongTermRate(), p.CapacityBps)
		}
		busy, grid, err := busyPeriod(agg, p.CapacityBps, opts)
		if err != nil {
			return PriorityMuxResult{}, fmt.Errorf("atm: class %d: %w", k, err)
		}
		grid = traffic.MergeGrids(busy, grid, []float64{traffic.GridNudge})
		var backlog float64
		for _, t := range grid {
			if t > busy+units.Eps {
				break
			}
			if b := agg.Bits(t) - p.CapacityBps*t; b > backlog {
				backlog = b
			}
		}
		d := backlog/p.CapacityBps + blocking
		res.ClassDelay[k] = d
		outs := make([]traffic.Descriptor, len(class.Inputs))
		for i, in := range class.Inputs {
			out, derr := traffic.NewDelayed(in, d, p.CapacityBps)
			if derr != nil {
				return PriorityMuxResult{}, fmt.Errorf("atm: class %d output %d: %w", k, i, derr)
			}
			outs[i] = out
		}
		res.Outputs[k] = outs
	}
	return res, nil
}

// PriorityPortSim is a non-preemptive static-priority cell transmitter: the
// highest-priority nonempty class sends next; a cell already on the wire is
// never interrupted. It is the DES counterpart of AnalyzePriorityMux.
type PriorityPortSim struct {
	sim     *des.Simulator
	wireBps float64
	prop    float64
	sink    func(Cell)
	queues  [][]Cell
	busy    bool
	sent    int64
}

// NewPriorityPortSim creates a priority port with the given number of
// classes (class 0 highest).
func NewPriorityPortSim(sim *des.Simulator, wireBps, propagation float64, classes int, sink func(Cell)) (*PriorityPortSim, error) {
	if sim == nil {
		return nil, errors.New("atm: PriorityPortSim requires a simulator")
	}
	if wireBps <= 0 {
		return nil, fmt.Errorf("atm: wire rate %v must be positive", wireBps)
	}
	if propagation < 0 {
		return nil, fmt.Errorf("atm: propagation %v must be non-negative", propagation)
	}
	if classes < 1 {
		return nil, fmt.Errorf("atm: need at least one priority class, got %d", classes)
	}
	if sink == nil {
		return nil, errors.New("atm: PriorityPortSim requires a sink")
	}
	return &PriorityPortSim{
		sim:     sim,
		wireBps: wireBps,
		prop:    propagation,
		sink:    sink,
		queues:  make([][]Cell, classes),
	}, nil
}

// Submit enqueues a cell at the given priority class.
func (p *PriorityPortSim) Submit(class int, c Cell) error {
	if class < 0 || class >= len(p.queues) {
		return fmt.Errorf("atm: priority class %d out of range [0,%d)", class, len(p.queues))
	}
	p.queues[class] = append(p.queues[class], c)
	if !p.busy {
		p.startNext()
	}
	return nil
}

// QueueLen returns the number of waiting cells in one class.
func (p *PriorityPortSim) QueueLen(class int) int { return len(p.queues[class]) }

// Sent returns the number of cells fully transmitted.
func (p *PriorityPortSim) Sent() int64 { return p.sent }

func (p *PriorityPortSim) startNext() {
	var next Cell
	found := false
	for k := range p.queues {
		if len(p.queues[k]) > 0 {
			next = p.queues[k][0]
			p.queues[k] = p.queues[k][1:]
			found = true
			break
		}
	}
	if !found {
		p.busy = false
		return
	}
	p.busy = true
	c := next
	txEnd := p.sim.Now() + CellTime(p.wireBps)
	if _, err := p.sim.Schedule(txEnd, func() {
		p.sent++
		if p.prop == 0 {
			p.sink(c)
		} else if _, err := p.sim.Schedule(txEnd+p.prop, func() { p.sink(c) }); err != nil {
			panic(fmt.Sprintf("atm: priority delivery scheduling failed: %v", err))
		}
		p.startNext()
	}); err != nil {
		panic(fmt.Sprintf("atm: priority transmission scheduling failed: %v", err))
	}
}
