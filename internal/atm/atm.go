// Package atm implements the ATM backbone substrate: cell and link
// constants, the worst-case analysis of FIFO output-port multiplexers (the
// variable-delay server inside switches and interface devices, following the
// busy-period bounds of Cruz and of Raha et al. that the paper adopts), and
// a cell-level discrete-event simulator used to validate the bounds.
//
// Unit convention: traffic envelopes carry payload bits. ATM overhead
// (5 header octets per 53-octet cell) is accounted by servicing payload at
// the payload-effective capacity PayloadCapacity(link rate).
package atm

import "fmt"

// ATM constants.
const (
	// CellWireBits is the size of a cell on the wire: 53 octets.
	CellWireBits = 53 * 8
	// CellPayloadBits is the payload C_S carried per cell: 48 octets.
	CellPayloadBits = 48 * 8
	// DefaultLinkBps is the standard OC-3 link rate used in the paper's
	// evaluation: 155 Mb/s.
	DefaultLinkBps = 155e6
	// DefaultInputDelay is the per-cell input-stage processing latency of a
	// backbone switch (seconds), per DESIGN.md.
	DefaultInputDelay = 10e-6
	// DefaultFabricDelay is the fabric transit latency of a backbone switch
	// (seconds), per DESIGN.md.
	DefaultFabricDelay = 10e-6
)

// payloadFraction is the dimensionless payload share of each cell's wire
// bits: 48 of 53 octets.
const payloadFraction = float64(CellPayloadBits) / float64(CellWireBits)

// PayloadCapacity converts a wire rate to the payload-effective service rate
// seen by envelopes that count payload bits.
func PayloadCapacity(wireBps float64) float64 {
	return wireBps * payloadFraction
}

// CellTime returns the transmission time of one cell on a link of the given
// wire rate.
func CellTime(wireBps float64) float64 {
	return CellWireBits / wireBps
}

// CellsPerFrame returns F_C: the number of cells needed to carry a frame of
// the given payload size (Theorem 2).
func CellsPerFrame(frameBits float64) int {
	if frameBits <= 0 {
		return 0
	}
	n := int(frameBits) / CellPayloadBits
	if float64(n*CellPayloadBits) < frameBits {
		n++
	}
	return n
}

// SwitchParams captures the constant-delay stages of an ATM switch: input
// module processing and fabric transit. The output port is the variable
// (queueing) stage and is analyzed by AnalyzeMux.
type SwitchParams struct {
	// InputDelay is the constant per-cell input-module latency (seconds).
	InputDelay float64
	// FabricDelay is the constant fabric transit latency (seconds).
	FabricDelay float64
}

// Validate reports whether the parameters are physically meaningful.
func (p SwitchParams) Validate() error {
	if p.InputDelay < 0 {
		return fmt.Errorf("atm: input delay %v must be non-negative", p.InputDelay)
	}
	if p.FabricDelay < 0 {
		return fmt.Errorf("atm: fabric delay %v must be non-negative", p.FabricDelay)
	}
	return nil
}

// ConstantDelay returns the total fixed latency a cell spends in the switch
// before reaching the output port queue.
func (p SwitchParams) ConstantDelay() float64 { return p.InputDelay + p.FabricDelay }

// DefaultSwitchParams returns the constants recorded in DESIGN.md: 10 µs
// input processing and 10 µs fabric transit.
func DefaultSwitchParams() SwitchParams {
	return SwitchParams{InputDelay: DefaultInputDelay, FabricDelay: DefaultFabricDelay}
}
