// Package faultnet wraps net.Listener and net.Conn with deterministic,
// seeded fault injection for chaos testing the signaling plane: added
// latency, chunked writes (one logical message split across many small
// syscalls), mid-message connection resets, and transient accept failures.
//
// Every fault decision is drawn from a rand.Rand derived from Options.Seed,
// so a failing chaos run reproduces exactly from its seed. A listener
// derives an independent sub-seed per accepted connection; the i-th
// connection of a given listener therefore sees the same fault schedule on
// every run regardless of goroutine interleaving.
//
// The wrappers are transport-level only: they never rewrite payload bytes,
// so anything the peer does receive is byte-accurate. An injected reset
// closes the underlying connection (the peer observes EOF or ECONNRESET)
// and surfaces ErrInjectedReset locally.
package faultnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"math/rand"
)

// ErrInjectedReset is returned (wrapped) from Read/Write when the injector
// cut the connection mid-operation. The underlying connection is closed, so
// the peer sees the failure too.
var ErrInjectedReset = errors.New("faultnet: injected connection reset")

// Options selects which faults to inject and how often. The zero value
// injects nothing (the wrappers become transparent), so callers can enable
// faults one axis at a time.
type Options struct {
	// Seed drives every random fault decision. Two runs with equal seeds
	// and equal connection arrival order inject identical faults.
	Seed int64
	// AcceptFailEveryN makes every Nth Accept call fail with a transient
	// (Temporary() == true) error before touching the underlying listener;
	// the pending connection, if any, stays queued for the next Accept.
	// 0 disables.
	AcceptFailEveryN int
	// MaxLatency adds a uniform [0, MaxLatency) delay before each Read and
	// Write. 0 disables.
	MaxLatency time.Duration
	// ChunkWriteProb is the per-Write probability that the buffer is split
	// into several small underlying writes instead of one — every byte is
	// still delivered, but message boundaries vanish, exercising the
	// peer's reassembly. 0 disables.
	ChunkWriteProb float64
	// ResetReadProb and ResetWriteProb are the per-operation probabilities
	// of cutting the connection. A write reset first delivers a strict
	// prefix of the buffer (a torn message), then closes — the shape a
	// crashing host or dropped route produces. 0 disables.
	ResetReadProb  float64
	ResetWriteProb float64
}

// transparent reports whether the options inject no connection faults.
func (o Options) transparent() bool {
	return o.MaxLatency == 0 && o.ChunkWriteProb == 0 &&
		o.ResetReadProb == 0 && o.ResetWriteProb == 0
}

// acceptError is the transient error injected into Accept.
type acceptError struct{ n uint64 }

func (e *acceptError) Error() string {
	return fmt.Sprintf("faultnet: injected accept failure #%d", e.n)
}

// Temporary marks the failure retryable, matching the net.Error convention
// accept loops use to decide between backoff and giving up.
func (e *acceptError) Temporary() bool { return true }

// Timeout implements net.Error.
func (e *acceptError) Timeout() bool { return false }

// Listener wraps l so every accepted connection carries the configured
// faults. Accept failures are injected here; per-connection faults are
// seeded from Options.Seed and the connection's accept ordinal.
type Listener struct {
	inner net.Listener
	opts  Options
	n     atomic.Uint64 // accept calls, for AcceptFailEveryN and sub-seeds
}

// WrapListener builds a fault-injecting listener.
func WrapListener(l net.Listener, opts Options) *Listener {
	return &Listener{inner: l, opts: opts}
}

// Accept waits for the next connection, injecting a transient failure every
// AcceptFailEveryN calls.
func (l *Listener) Accept() (net.Conn, error) {
	n := l.n.Add(1)
	if k := uint64(l.opts.AcceptFailEveryN); k > 0 && n%k == 0 {
		return nil, &acceptError{n: n}
	}
	conn, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(conn, subSeed(l.opts.Seed, n), l.opts), nil
}

// Close closes the underlying listener.
func (l *Listener) Close() error { return l.inner.Close() }

// Addr returns the underlying listener's address.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// subSeed derives a per-connection seed from the listener seed and the
// connection ordinal. SplitMix64-style mixing keeps neighboring ordinals'
// streams uncorrelated.
func subSeed(seed int64, ordinal uint64) int64 {
	z := uint64(seed) + ordinal*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Conn is a fault-injecting connection wrapper.
type Conn struct {
	inner net.Conn
	opts  Options

	mu sync.Mutex
	// rng drives the fault stream; Read and Write may run on different
	// goroutines, and rand.Rand is not concurrency-safe. guarded by mu.
	rng *rand.Rand
}

// WrapConn wraps an established connection with its own fault stream. With
// transparent options the connection is returned unwrapped, so fault-free
// chaos-matrix cells cost nothing.
func WrapConn(conn net.Conn, seed int64, opts Options) net.Conn {
	if opts.transparent() {
		return conn
	}
	return &Conn{inner: conn, opts: opts, rng: rand.New(rand.NewSource(seed))}
}

// draw runs f under the RNG lock and returns its result.
func (c *Conn) draw(f func(r *rand.Rand) float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return f(c.rng)
}

// maybeSleep injects the configured latency.
func (c *Conn) maybeSleep() {
	if c.opts.MaxLatency <= 0 {
		return
	}
	d := time.Duration(c.draw(func(r *rand.Rand) float64 {
		return r.Float64() * float64(c.opts.MaxLatency)
	}))
	time.Sleep(d)
}

// Read reads from the connection, possibly after injected latency, and
// possibly cutting the connection instead of reading.
func (c *Conn) Read(p []byte) (int, error) {
	c.maybeSleep()
	if c.opts.ResetReadProb > 0 && c.draw((*rand.Rand).Float64) < c.opts.ResetReadProb {
		c.inner.Close()
		return 0, fmt.Errorf("faultnet: read: %w", ErrInjectedReset)
	}
	return c.inner.Read(p)
}

// Write writes to the connection. Three behaviors, drawn per call: a torn
// write (a strict prefix is delivered, then the connection is cut), a
// chunked write (all bytes delivered across several small syscalls), or a
// plain pass-through.
func (c *Conn) Write(p []byte) (int, error) {
	c.maybeSleep()
	if c.opts.ResetWriteProb > 0 && len(p) > 1 &&
		c.draw((*rand.Rand).Float64) < c.opts.ResetWriteProb {
		cut := 1 + int(c.draw(func(r *rand.Rand) float64 {
			return float64(r.Intn(len(p) - 1))
		}))
		n, err := c.inner.Write(p[:cut])
		c.inner.Close()
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("faultnet: write: %w", ErrInjectedReset)
	}
	if c.opts.ChunkWriteProb > 0 && len(p) > 1 &&
		c.draw((*rand.Rand).Float64) < c.opts.ChunkWriteProb {
		return c.writeChunked(p)
	}
	return c.inner.Write(p)
}

// writeChunked delivers p in several small writes with latency between
// them, so a peer reading concurrently observes arbitrary message
// fragmentation.
func (c *Conn) writeChunked(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		n := 1 + int(c.draw(func(r *rand.Rand) float64 {
			// Chunks of 1..8 bytes: small enough to split any JSON token.
			return float64(r.Intn(8))
		}))
		if n > len(p) {
			n = len(p)
		}
		w, err := c.inner.Write(p[:n])
		total += w
		if err != nil {
			return total, err
		}
		p = p[n:]
		c.maybeSleep()
	}
	return total, nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.inner.Close() }

// LocalAddr returns the underlying connection's local address.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr returns the underlying connection's remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline forwards to the underlying connection.
func (c *Conn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline forwards to the underlying connection.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline forwards to the underlying connection.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }
