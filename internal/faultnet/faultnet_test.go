package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// pipePair builds a connected TCP pair on loopback; real sockets (not
// net.Pipe) so closes propagate as the wrappers advertise.
func pipePair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	client, err = net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return client, r.c
}

func TestTransparentOptionsReturnUnwrapped(t *testing.T) {
	c, _ := pipePair(t)
	if got := WrapConn(c, 1, Options{Seed: 7, AcceptFailEveryN: 3}); got != c {
		t.Error("connection-fault-free options should return the conn unwrapped")
	}
	if got := WrapConn(c, 1, Options{ChunkWriteProb: 0.5}); got == c {
		t.Error("chunking options should wrap")
	}
}

func TestChunkedWriteDeliversEveryByte(t *testing.T) {
	client, server := pipePair(t)
	fc := WrapConn(client, 42, Options{ChunkWriteProb: 1})
	msg := bytes.Repeat([]byte("0123456789abcdef"), 64)
	var wg sync.WaitGroup
	wg.Add(1)
	var got []byte
	var readErr error
	go func() {
		defer wg.Done()
		buf := make([]byte, len(msg))
		_, readErr = io.ReadFull(server, buf)
		got = buf
	}()
	n, err := fc.Write(msg)
	if err != nil || n != len(msg) {
		t.Fatalf("chunked write: n=%d err=%v", n, err)
	}
	wg.Wait()
	if readErr != nil {
		t.Fatal(readErr)
	}
	if !bytes.Equal(got, msg) {
		t.Error("chunked write corrupted the payload")
	}
}

func TestWriteResetTearsMessageAndClosesConn(t *testing.T) {
	client, server := pipePair(t)
	fc := WrapConn(client, 42, Options{ResetWriteProb: 1})
	msg := bytes.Repeat([]byte("x"), 1024)
	n, err := fc.Write(msg)
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("err = %v, want ErrInjectedReset", err)
	}
	if n <= 0 || n >= len(msg) {
		t.Errorf("torn write delivered %d of %d bytes, want a strict prefix", n, len(msg))
	}
	// The peer sees the prefix then EOF/reset — never a complete message.
	buf, _ := io.ReadAll(server)
	if len(buf) != n {
		t.Errorf("peer read %d bytes, injector reported %d", len(buf), n)
	}
	// The local side is unusable from now on.
	if _, err := fc.Write([]byte("more")); err == nil {
		t.Error("write after injected reset should fail")
	}
}

func TestReadResetClosesConn(t *testing.T) {
	client, server := pipePair(t)
	fc := WrapConn(client, 42, Options{ResetReadProb: 1})
	if _, err := server.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Read(make([]byte, 8)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("err = %v, want ErrInjectedReset", err)
	}
}

func TestSameSeedSameFaultSchedule(t *testing.T) {
	// Drive two identically seeded wrappers over loopback pairs and check
	// the observable fault schedule (bytes delivered per write) matches.
	run := func() []int {
		client, server := pipePair(t)
		go io.Copy(io.Discard, server)
		fc := WrapConn(client, 7, Options{ChunkWriteProb: 0.5, ResetWriteProb: 0.05})
		var ns []int
		for i := 0; i < 50; i++ {
			n, err := fc.Write(bytes.Repeat([]byte("y"), 256))
			ns = append(ns, n)
			if err != nil {
				break
			}
		}
		return ns
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("schedules diverge in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("write %d delivered %d vs %d bytes under the same seed", i, a[i], b[i])
		}
	}
}

func TestAcceptFailEveryN(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	l := WrapListener(inner, Options{AcceptFailEveryN: 2})
	// Every second accept fails with a temporary error, without consuming
	// a queued connection.
	for i := 0; i < 3; i++ {
		done := make(chan error, 1)
		go func() {
			c, err := net.Dial("tcp", l.Addr().String())
			if c != nil {
				defer c.Close()
			}
			done <- err
		}()
		// The first iteration consumes accept call #1 (success). Every
		// later iteration lands on an even call number, which fails
		// transiently, then retries onto an odd one.
		conn, err := l.Accept()
		if i >= 1 {
			var ne net.Error
			if !errors.As(err, &ne) || !ne.Temporary() {
				t.Fatalf("accept %d: err = %v, want a temporary net.Error", i, err)
			}
			// The queued dial is still there for the next Accept.
			conn, err = l.Accept()
		}
		if err != nil {
			t.Fatalf("accept %d: %v", i, err)
		}
		conn.Close()
		if err := <-done; err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
	}
}

func TestLatencyInjection(t *testing.T) {
	client, server := pipePair(t)
	go io.Copy(io.Discard, server)
	fc := WrapConn(client, 3, Options{MaxLatency: 2 * time.Millisecond})
	start := time.Now()
	for i := 0; i < 20; i++ {
		if _, err := fc.Write([]byte("ping")); err != nil {
			t.Fatal(err)
		}
	}
	// 20 draws from [0, 2ms) sum to ~20ms in expectation; require a lower
	// bound loose enough to never flake (P[sum < 2ms] is astronomically
	// small) while still proving sleeps happen.
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("20 writes with injected latency took %v, want ≥ 2ms", elapsed)
	}
}
