package packetsim

import (
	"testing"

	"fafnet/internal/core"
	"fafnet/internal/fddi"
	"fafnet/internal/shaper"
	"fafnet/internal/tokenring"
	"fafnet/internal/topo"
	"fafnet/internal/traffic"
)

// admitted builds a set of connections through the real CAC so allocations
// are exactly what production admission would grant.
func admitted(t *testing.T, pairs [][4]int) (topo.Config, []*core.Connection) {
	t.Helper()
	cfg := topo.Default()
	net, err := topo.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := core.NewController(net, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := traffic.NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		spec := core.ConnSpec{
			ID:       "c" + string(rune('0'+i)),
			Src:      topo.HostID{Ring: p[0], Index: p[1]},
			Dst:      topo.HostID{Ring: p[2], Index: p[3]},
			Source:   src,
			Deadline: 0.070,
		}
		dec, err := ctl.RequestAdmission(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Admitted {
			t.Fatalf("setup admission %d rejected: %s", i, dec.Reason)
		}
	}
	return cfg, ctl.Connections()
}

func TestRunValidatesBounds(t *testing.T) {
	cfg, conns := admitted(t, [][4]int{
		{0, 0, 1, 0}, // ring 0 → ring 1
		{0, 1, 2, 0}, // shares the id0 uplink with c0
		{1, 0, 0, 2}, // reverse direction
	})
	res, err := Run(Config{Topology: cfg, Connections: conns, Duration: 1.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerConn) != 3 {
		t.Fatalf("PerConn = %d, want 3", len(res.PerConn))
	}
	for _, c := range res.PerConn {
		if c.FramesDelivered == 0 {
			t.Errorf("%s: no frames delivered", c.ID)
		}
		if c.Delays.Max() <= 0 {
			t.Errorf("%s: no positive delay measured", c.ID)
		}
		if !c.WithinBound() {
			t.Errorf("%s: measured worst %v exceeds analytic bound %v", c.ID, c.Delays.Max(), c.Bound)
		}
		// The bound should be meaningful (not 100x the observation).
		if c.Delays.Max() < c.Bound/100 {
			t.Logf("%s: bound %v is %.0fx the observed worst %v", c.ID, c.Bound, c.Bound/c.Delays.Max(), c.Delays.Max())
		}
	}
	if !res.AllWithinBounds() {
		t.Error("AllWithinBounds = false")
	}
}

func TestRunSameRing(t *testing.T) {
	cfg, conns := admitted(t, [][4]int{{0, 0, 0, 3}})
	res, err := Run(Config{Topology: cfg, Connections: conns, Duration: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := res.PerConn[0]
	if c.FramesDelivered == 0 {
		t.Fatal("no frames delivered on same-ring route")
	}
	if !c.WithinBound() {
		t.Errorf("same-ring worst %v exceeds bound %v", c.Delays.Max(), c.Bound)
	}
}

func TestRunRandomPhases(t *testing.T) {
	cfg, conns := admitted(t, [][4]int{
		{0, 0, 1, 0},
		{0, 1, 1, 1},
	})
	res, err := Run(Config{Topology: cfg, Connections: conns, Duration: 1.5, Seed: 3, RandomPhases: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllWithinBounds() {
		for _, c := range res.PerConn {
			t.Logf("%s: worst=%v bound=%v", c.ID, c.Delays.Max(), c.Bound)
		}
		t.Error("random-phase run violated a bound")
	}
}

// TestRunWithAsyncBackground floods the rings with non-real-time traffic;
// the timed-token protocol confines it to token earliness, so the analytic
// bounds must survive untouched.
func TestRunWithAsyncBackground(t *testing.T) {
	cfg, conns := admitted(t, [][4]int{
		{0, 0, 1, 0},
		{1, 1, 2, 1},
	})
	res, err := Run(Config{
		Topology:        cfg,
		Connections:     conns,
		Duration:        1.5,
		Seed:            4,
		AsyncBackground: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllWithinBounds() {
		for _, c := range res.PerConn {
			t.Logf("%s: worst=%v bound=%v", c.ID, c.Delays.Max(), c.Bound)
		}
		t.Error("async background load broke an analytic bound")
	}
	for _, c := range res.PerConn {
		if c.FramesDelivered == 0 {
			t.Errorf("%s starved under async background", c.ID)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg, conns := admitted(t, [][4]int{{0, 0, 1, 0}})
	run := func() Result {
		res, err := Run(Config{Topology: cfg, Connections: conns, Duration: 0.5, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.PerConn[0].Delays.Max() != b.PerConn[0].Delays.Max() ||
		a.PerConn[0].FramesDelivered != b.PerConn[0].FramesDelivered {
		t.Error("same-seed runs diverged")
	}
}

func TestRunRejectsUnstableAllocations(t *testing.T) {
	cfg := topo.Default()
	net, err := topo.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := traffic.NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	route, err := net.Route(topo.HostID{Ring: 0, Index: 0}, topo.HostID{Ring: 1, Index: 0})
	if err != nil {
		t.Fatal(err)
	}
	conn := &core.Connection{
		ConnSpec: core.ConnSpec{ID: "bad", Src: topo.HostID{Ring: 0, Index: 0}, Dst: topo.HostID{Ring: 1, Index: 0}, Source: src, Deadline: 0.1},
		Route:    route,
		HS:       0.05e-3, // unstable: cannot carry 5 Mb/s
		HR:       1e-3,
	}
	if _, err := Run(Config{Topology: cfg, Connections: []*core.Connection{conn}}); err == nil {
		t.Error("unstable allocation should be rejected before simulating")
	}
}

// TestRunCBRAndPeriodicSources exercises the CBR and one-period traffic
// generators through the full pipeline.
func TestRunCBRAndPeriodicSources(t *testing.T) {
	cfg := topo.Default()
	net, err := topo.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := core.NewController(net, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cbr, err := traffic.NewCBR(2e6)
	if err != nil {
		t.Fatal(err)
	}
	per, err := traffic.NewPeriodic(10e3, 0.005, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range []traffic.Descriptor{cbr, per} {
		dec, err := ctl.RequestAdmission(core.ConnSpec{
			ID:       "g" + string(rune('0'+i)),
			Src:      topo.HostID{Ring: i, Index: 0},
			Dst:      topo.HostID{Ring: (i + 1) % 3, Index: 0},
			Source:   src,
			Deadline: 0.070,
		})
		if err != nil || !dec.Admitted {
			t.Fatalf("setup %d: %v %v", i, err, dec.Reason)
		}
	}
	res, err := Run(Config{Topology: cfg, Connections: ctl.Connections(), Duration: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.PerConn {
		if c.FramesDelivered == 0 {
			t.Errorf("%s: no frames delivered", c.ID)
		}
		if !c.WithinBound() {
			t.Errorf("%s: measured %v exceeds bound %v", c.ID, c.Delays.Max(), c.Bound)
		}
		if c.Hist == nil || c.Hist.Total() != c.Delays.N() {
			t.Errorf("%s: histogram missing or inconsistent", c.ID)
		}
	}
}

// unmodeledSource is a descriptor the packet simulator has no traffic
// generator for; the embedded leaky bucket keeps the analytic side happy.
type unmodeledSource struct{ traffic.LeakyBucket }

// TestRunUnknownSourceModel: a descriptor without a generator is a
// structural error, not a silent no-traffic run.
func TestRunUnknownSourceModel(t *testing.T) {
	cfg := topo.Default()
	net, err := topo.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	route, err := net.Route(topo.HostID{Ring: 0, Index: 0}, topo.HostID{Ring: 1, Index: 0})
	if err != nil {
		t.Fatal(err)
	}
	lb, err := traffic.NewLeakyBucket(1e4, 2e6, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	conn := &core.Connection{
		ConnSpec: core.ConnSpec{ID: "lb", Src: topo.HostID{Ring: 0, Index: 0}, Dst: topo.HostID{Ring: 1, Index: 0}, Source: unmodeledSource{lb}, Deadline: 0.2},
		Route:    route,
		HS:       1e-3,
		HR:       1e-3,
	}
	if _, err := Run(Config{Topology: cfg, Connections: []*core.Connection{conn}}); err == nil {
		t.Error("descriptor without a generator should be rejected")
	}
}

// TestRunHeterogeneousNetwork validates bounds end-to-end across a mixed
// network: two FDDI rings with different TTRTs plus a 16 Mb/s 802.5
// segment.
func TestRunHeterogeneousNetwork(t *testing.T) {
	cfg := topo.Default()
	tr := tokenring.RingConfig{
		BandwidthBps:   tokenring.Rate16Mbps,
		WalkTime:       0.5e-3,
		TargetRotation: 8e-3,
		HopLatency:     5e-6,
	}
	cfg.Rings = []fddi.RingConfig{cfg.Ring, fddi.DefaultRingConfig(), tr.SimConfig()}

	net, err := topo.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := core.NewController(net, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := traffic.NewDualPeriodic(20e3, 0.010, 4e3, 0.001, 16e6)
	if err != nil {
		t.Fatal(err)
	}
	for i, pair := range [][4]int{{0, 0, 2, 0}, {2, 1, 1, 0}} {
		dec, err := ctl.RequestAdmission(core.ConnSpec{
			ID:       "h" + string(rune('0'+i)),
			Src:      topo.HostID{Ring: pair[0], Index: pair[1]},
			Dst:      topo.HostID{Ring: pair[2], Index: pair[3]},
			Source:   src,
			Deadline: 0.120,
		})
		if err != nil || !dec.Admitted {
			t.Fatalf("setup %d: %v %v", i, err, dec.Reason)
		}
	}
	res, err := Run(Config{Topology: cfg, Connections: ctl.Connections(), Duration: 1.5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.PerConn {
		if c.FramesDelivered == 0 {
			t.Errorf("%s: nothing delivered across the mixed network", c.ID)
		}
		if !c.WithinBound() {
			t.Errorf("%s: measured %v exceeds bound %v", c.ID, c.Delays.Max(), c.Bound)
		}
	}
}

// TestRunShapedConnection validates a shaped connection end to end: the
// regulator's packet-level behavior must stay within the shaped bound.
func TestRunShapedConnection(t *testing.T) {
	cfg := topo.Default()
	net, err := topo.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := core.NewController(net, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := traffic.NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	spec := core.ConnSpec{
		ID:       "shaped",
		Src:      topo.HostID{Ring: 0, Index: 0},
		Dst:      topo.HostID{Ring: 1, Index: 0},
		Source:   src,
		Deadline: 0.120,
		Shape:    &shaper.Spec{SigmaBits: 40e3, RhoBps: 6.5e6},
	}
	dec, err := ctl.RequestAdmission(spec)
	if err != nil || !dec.Admitted {
		t.Fatalf("shaped admission: %v %v", err, dec.Reason)
	}
	plain := core.ConnSpec{
		ID:       "plain",
		Src:      topo.HostID{Ring: 0, Index: 1},
		Dst:      topo.HostID{Ring: 2, Index: 0},
		Source:   src,
		Deadline: 0.120,
	}
	if dec, err := ctl.RequestAdmission(plain); err != nil || !dec.Admitted {
		t.Fatalf("plain admission: %v %v", err, dec.Reason)
	}

	res, err := Run(Config{Topology: cfg, Connections: ctl.Connections(), Duration: 1.5, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.PerConn {
		if c.FramesDelivered == 0 {
			t.Errorf("%s: no frames delivered", c.ID)
		}
		if !c.WithinBound() {
			t.Errorf("%s: measured %v exceeds bound %v", c.ID, c.Delays.Max(), c.Bound)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Topology: topo.Default()}); err == nil {
		t.Error("no connections should be rejected")
	}
	cfg, conns := admitted(t, [][4]int{{0, 0, 1, 0}})
	if _, err := Run(Config{Topology: cfg, Connections: append(conns, nil)}); err == nil {
		t.Error("nil connection should be rejected")
	}
	if _, err := Run(Config{Topology: cfg, Connections: append(conns, conns[0])}); err == nil {
		t.Error("duplicate connection should be rejected")
	}
}

// TestRunReceiverSmallerThanSender: when the CAC grants HR < HS (the
// sender-biased rule does so by construction), a reassembled source-sized
// frame no longer fits the destination station's per-rotation holding. The
// interface device must re-frame it to FrameBits(HR) — exactly what the
// analytic dstMAC model assumes — instead of panicking on enqueue.
func TestRunReceiverSmallerThanSender(t *testing.T) {
	cfg := topo.Default()
	net, err := topo.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := core.NewController(net, core.Options{Rule: core.RuleSenderBiased, Beta: 0.1, BetaSet: true})
	if err != nil {
		t.Fatal(err)
	}
	src, err := traffic.NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := ctl.RequestAdmission(core.ConnSpec{
		ID:       "biased",
		Src:      topo.HostID{Ring: 0, Index: 0},
		Dst:      topo.HostID{Ring: 1, Index: 0},
		Source:   src,
		Deadline: 0.070,
	})
	if err != nil || !dec.Admitted {
		t.Fatalf("admission: %v %v", err, dec.Reason)
	}
	if dec.HR >= dec.HS {
		t.Fatalf("precondition HR < HS not met: HS=%v HR=%v", dec.HS, dec.HR)
	}
	res, err := Run(Config{Topology: cfg, Connections: ctl.Connections(), Duration: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	c := res.PerConn[0]
	if c.FramesDelivered == 0 {
		t.Fatal("no frames delivered")
	}
	if !c.WithinBound() {
		t.Errorf("measured %v exceeds bound %v", c.Delays.Max(), c.Bound)
	}
}
