// Package packetsim is the end-to-end validation harness (experiment E3 in
// DESIGN.md): it builds a packet-level discrete-event model of the whole
// FDDI-ATM-FDDI network — timed-token rings, interface devices that segment
// frames into cells and reassemble them, FIFO switch ports — drives it with
// the connections' declared traffic, measures per-packet end-to-end delays,
// and reports them next to the analytic worst-case bounds of internal/core.
// Every measured delay must stay below its bound; the ratio between them
// shows how much slack the deterministic analysis leaves.
package packetsim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"fafnet/internal/atm"
	"fafnet/internal/core"
	"fafnet/internal/des"
	"fafnet/internal/fddi"
	"fafnet/internal/ifdev"
	"fafnet/internal/shaper"
	"fafnet/internal/stats"
	"fafnet/internal/topo"
	"fafnet/internal/traffic"
)

// Config parameterizes one validation run.
type Config struct {
	// Topology describes the network (must match the connections' routes).
	Topology topo.Config
	// Connections are the admitted connections with their allocations
	// (HS/HR) already chosen, e.g. by core.Controller.
	Connections []*core.Connection
	// Duration is the simulated time span (default 2 s).
	Duration float64
	// Seed drives source phase randomization when RandomPhases is set.
	Seed int64
	// RandomPhases staggers the sources' period starts uniformly; when
	// false all sources start in phase at t=0 (closer to the adversarial
	// alignment the analysis assumes).
	RandomPhases bool
	// AsyncBackground, when positive, floods every ring host with that many
	// maximum-size asynchronous frames per TTRT. The timed-token protocol
	// serves them only from token earliness, so the analytic bounds must
	// hold regardless — this exercises exactly that.
	AsyncBackground int
	// Analysis tunes the bound computation.
	Analysis core.AnalysisOptions
}

func (c Config) withDefaults() Config {
	if c.Duration <= 0 {
		c.Duration = 2
	}
	return c
}

// ConnResult reports one connection's measured delays against its bound.
type ConnResult struct {
	// ID identifies the connection.
	ID string
	// Bound is the analytic worst-case end-to-end delay.
	Bound float64
	// Delays samples the measured per-frame end-to-end delays, from the
	// frame's emission at the source to its last bit reaching the
	// destination host.
	Delays stats.Sample
	// Hist bins the measured delays over [0, Bound).
	Hist *stats.Histogram
	// FramesDelivered counts frames that completed the journey.
	FramesDelivered int
}

// WithinBound reports whether every measured delay stayed below the bound.
func (r ConnResult) WithinBound() bool {
	return r.Delays.N() == 0 || r.Delays.Max() <= r.Bound
}

// Result is the outcome of a validation run.
type Result struct {
	// PerConn holds one entry per connection, sorted by id.
	PerConn []ConnResult
	// Duration is the simulated span.
	Duration float64
}

// AllWithinBounds reports whether no connection violated its analytic bound.
func (r Result) AllWithinBounds() bool {
	for _, c := range r.PerConn {
		if !c.WithinBound() {
			return false
		}
	}
	return true
}

// Run executes the packet-level simulation and returns per-connection
// measured delays and analytic bounds.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Connections) == 0 {
		return Result{}, errors.New("packetsim: no connections to simulate")
	}
	net, err := topo.NewNetwork(cfg.Topology)
	if err != nil {
		return Result{}, err
	}
	analyzer, err := core.NewAnalyzer(net, cfg.Analysis)
	if err != nil {
		return Result{}, err
	}
	bounds, err := analyzer.Delays(cfg.Connections)
	if err != nil {
		return Result{}, fmt.Errorf("packetsim: computing bounds: %w", err)
	}
	for id, bound := range bounds {
		if math.IsInf(bound, 1) {
			return Result{}, fmt.Errorf("packetsim: connection %q has no finite bound; fix its allocation first", id)
		}
	}

	b, err := build(cfg, net)
	if err != nil {
		return Result{}, err
	}
	for id, st := range b.results {
		hist, herr := stats.NewHistogram(0, bounds[id], 24)
		if herr != nil {
			return Result{}, herr
		}
		st.Hist = hist
	}
	if err := b.startSources(cfg); err != nil {
		return Result{}, err
	}
	if cfg.AsyncBackground > 0 {
		b.startAsyncBackground(cfg)
	}
	for _, ring := range b.rings {
		if err := ring.Start(); err != nil {
			return Result{}, err
		}
	}
	b.sim.Run(cfg.Duration)

	res := Result{Duration: cfg.Duration}
	ids := make([]string, 0, len(b.results))
	for id := range b.results {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		st := b.results[id]
		st.Bound = bounds[id]
		res.PerConn = append(res.PerConn, *st)
	}
	return res, nil
}

// builder wires the DES components together.
type builder struct {
	sim     *des.Simulator
	net     *topo.Network
	rng     *des.RNG
	conns   map[string]*core.Connection
	ordered []*core.Connection
	results map[string]*ConnResult

	rings      []*fddi.RingSim
	segmenters []*ifdev.SegmenterSim
	// shapers holds the ingress regulator of each shaped connection.
	shapers map[string]*shaper.Sim
	// idStation maps a cross-backbone connection to the station index on
	// its destination ring that models its share of the receiving interface
	// device's MAC (the paper's one-connection-per-station reduction).
	idStation map[string]int
}

func build(cfg Config, net *topo.Network) (*builder, error) {
	b := &builder{
		sim:       des.NewSimulator(),
		net:       net,
		rng:       des.NewRNG(cfg.Seed),
		conns:     make(map[string]*core.Connection),
		results:   make(map[string]*ConnResult),
		shapers:   make(map[string]*shaper.Sim),
		idStation: make(map[string]int),
	}
	tc := net.Config()

	incoming := make([][]*core.Connection, tc.NumRings)
	for _, c := range cfg.Connections {
		if c == nil {
			return nil, errors.New("packetsim: nil connection")
		}
		if _, dup := b.conns[c.ID]; dup {
			return nil, fmt.Errorf("packetsim: duplicate connection %q", c.ID)
		}
		b.conns[c.ID] = c
		b.ordered = append(b.ordered, c)
		b.results[c.ID] = &ConnResult{ID: c.ID}
		if c.Route.CrossesBackbone {
			incoming[c.Dst.Ring] = append(incoming[c.Dst.Ring], c)
		}
	}

	// ATM fabric, inside-out: reassemblers, switches, ports, segmenters.
	reasm := make([]*ifdev.ReassemblerSim, tc.NumRings)
	for r := 0; r < tc.NumRings; r++ {
		r := r
		rs, err := ifdev.NewReassemblerSim(b.sim, tc.ID, func(f ifdev.ReassembledFrame) {
			b.deliverToDestRing(r, f)
		})
		if err != nil {
			return nil, err
		}
		reasm[r] = rs
	}
	switches := make([]*atm.SwitchSim, tc.NumSwitches)
	for s := 0; s < tc.NumSwitches; s++ {
		sw, err := atm.NewSwitchSim(b.sim, tc.Switch)
		if err != nil {
			return nil, err
		}
		switches[s] = sw
	}
	downPorts := make([]*atm.PortSim, tc.NumRings)
	for r := 0; r < tc.NumRings; r++ {
		p, err := atm.NewPortSim(b.sim, tc.LinkBps, tc.LinkPropagation, reasm[r].ReceiveCell)
		if err != nil {
			return nil, err
		}
		downPorts[r] = p
	}
	interPorts := make(map[[2]int]*atm.PortSim)
	for a := 0; a < tc.NumSwitches; a++ {
		for c := 0; c < tc.NumSwitches; c++ {
			if a == c {
				continue
			}
			p, err := atm.NewPortSim(b.sim, tc.LinkBps, tc.LinkPropagation, switches[c].Receive)
			if err != nil {
				return nil, err
			}
			interPorts[[2]int{a, c}] = p
		}
	}
	b.segmenters = make([]*ifdev.SegmenterSim, tc.NumRings)
	for r := 0; r < tc.NumRings; r++ {
		p, err := atm.NewPortSim(b.sim, tc.LinkBps, tc.LinkPropagation, switches[net.SwitchOf(r)].Receive)
		if err != nil {
			return nil, err
		}
		seg, err := ifdev.NewSegmenterSim(b.sim, tc.ID, p)
		if err != nil {
			return nil, err
		}
		b.segmenters[r] = seg
	}

	// Rings: hosts 0..L−1, the sender-side interface device at L, then one
	// station per incoming connection.
	for r := 0; r < tc.NumRings; r++ {
		r := r
		nStations := tc.HostsPerRing + 1 + len(incoming[r])
		ring, err := fddi.NewRingSim(b.sim, net.RingConfig(r), nStations, func(f fddi.DeliveredFrame) {
			b.dispatch(r, f)
		})
		if err != nil {
			return nil, err
		}
		b.rings = append(b.rings, ring)
		for i, c := range incoming[r] {
			b.idStation[c.ID] = tc.HostsPerRing + 1 + i
		}
	}

	// Per-connection wiring: allocations, ingress regulators, switch routes.
	for _, c := range b.ordered {
		if err := b.rings[c.Src.Ring].SetAllocation(c.Src.Index, c.HS); err != nil {
			return nil, fmt.Errorf("packetsim: sender allocation for %q: %w", c.ID, err)
		}
		if c.Shape != nil && c.Route.CrossesBackbone {
			srcRing := c.Src.Ring
			seg := b.segmenters[srcRing]
			sh, err := shaper.NewSim(b.sim, *c.Shape, func(id string, bits, origin float64) {
				if err := seg.ReceiveFrameAt(id, bits, origin); err != nil {
					panic(fmt.Sprintf("packetsim: segmenting shaped frame: %v", err))
				}
			})
			if err != nil {
				return nil, fmt.Errorf("packetsim: shaper for %q: %w", c.ID, err)
			}
			b.shapers[c.ID] = sh
		}
		if !c.Route.CrossesBackbone {
			continue
		}
		if err := b.rings[c.Dst.Ring].SetAllocation(b.idStation[c.ID], c.HR); err != nil {
			return nil, fmt.Errorf("packetsim: receiver allocation for %q: %w", c.ID, err)
		}
		sa, sb := net.SwitchOf(c.Src.Ring), net.SwitchOf(c.Dst.Ring)
		if sa == sb {
			if err := switches[sa].Route(c.ID, downPorts[c.Dst.Ring]); err != nil {
				return nil, err
			}
			continue
		}
		if err := switches[sa].Route(c.ID, interPorts[[2]int{sa, sb}]); err != nil {
			return nil, err
		}
		if err := switches[sb].Route(c.ID, downPorts[c.Dst.Ring]); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// dispatch handles a frame delivered on ring r: sender-side frames reaching
// the interface device get segmented into cells; destination-side frames
// reaching a host close the measurement.
func (b *builder) dispatch(r int, f fddi.DeliveredFrame) {
	c := b.conns[f.ConnID]
	if c == nil {
		return
	}
	idStationIdx := b.net.Config().HostsPerRing
	switch {
	case c.Route.CrossesBackbone && r == c.Src.Ring && f.Dst == idStationIdx:
		// Optional ingress regulator, then segmentation. The cells carry
		// the frame's emission time in Created.
		if sh := b.shapers[c.ID]; sh != nil {
			if err := sh.Submit(f.ConnID, f.Bits, f.Enqueued); err != nil {
				panic(fmt.Sprintf("packetsim: shaping: %v", err))
			}
			return
		}
		if err := b.segmenters[r].ReceiveFrameAt(f.ConnID, f.Bits, f.Enqueued); err != nil {
			panic(fmt.Sprintf("packetsim: segmenting: %v", err))
		}
	case r == c.Dst.Ring && f.Dst == c.Dst.Index:
		st := b.results[c.ID]
		d := b.sim.Now() - f.Enqueued
		st.Delays.Add(d)
		if st.Hist != nil {
			st.Hist.Add(d)
		}
		st.FramesDelivered++
	}
}

// deliverToDestRing enqueues a reassembled frame at the destination ring's
// per-connection interface-device station, preserving the emission time.
// The interface device re-frames for its own allocation: a timed-token MAC
// cannot transmit a frame longer than its per-rotation holding HR, so a
// reassembled payload larger than FrameBits(HR) — possible whenever the CAC
// granted HR < HS — is split into HR-sized frames, exactly the re-framing
// the analytic dstMAC model (ifdev.ReceiverConversion) assumes.
func (b *builder) deliverToDestRing(ring int, f ifdev.ReassembledFrame) {
	c := b.conns[f.ConnID]
	if c == nil {
		return
	}
	station, ok := b.idStation[f.ConnID]
	if !ok {
		return
	}
	maxBits := b.net.RingConfig(ring).FrameBits(c.HR)
	for remaining := f.PayloadBits; remaining > 0; remaining -= maxBits {
		err := b.rings[ring].EnqueueStamped(fddi.Frame{
			Bits:     math.Min(remaining, maxBits),
			ConnID:   f.ConnID,
			Src:      station,
			Dst:      c.Dst.Index,
			Enqueued: f.FirstCellCreated, // the original emission instant
		})
		if err != nil {
			panic(fmt.Sprintf("packetsim: enqueue on destination ring: %v", err))
		}
	}
}

// startSources schedules the traffic generators. Sources emit in accordance
// with their declared descriptors: bursts are paced at the declared peak
// rate so the generated traffic never exceeds its envelope (otherwise the
// measured delays could legitimately exceed the analytic bounds).
func (b *builder) startSources(cfg Config) error {
	for _, c := range b.ordered {
		c := c
		frameBits := b.net.RingConfig(c.Src.Ring).FrameBits(c.HS)
		var phase float64
		switch src := c.Source.(type) {
		case traffic.DualPeriodic:
			if cfg.RandomPhases {
				phase = b.rng.Uniform(0, src.P1)
			}
			if err := b.scheduleDualPeriodic(c, src, frameBits, phase); err != nil {
				return err
			}
		case traffic.Periodic:
			if cfg.RandomPhases {
				phase = b.rng.Uniform(0, src.P)
			}
			dual := traffic.DualPeriodic{C1: src.C, P1: src.P, C2: src.C, P2: src.P, PeakBps: src.PeakBps}
			if err := b.scheduleDualPeriodic(c, dual, frameBits, phase); err != nil {
				return err
			}
		case traffic.CBR:
			if err := b.scheduleCBR(c, src, frameBits); err != nil {
				return err
			}
		case traffic.LeakyBucket:
			if err := b.scheduleLeakyBucket(c, src, frameBits); err != nil {
				return err
			}
		default:
			return fmt.Errorf("packetsim: connection %q: no generator for descriptor %T", c.ID, c.Source)
		}
	}
	return nil
}

// emitBurst paces `bits` onto the source MAC at the peak rate, in frame-
// sized chunks; each chunk is stamped with its own arrival-complete time.
func (b *builder) emitBurst(c *core.Connection, bits, frameBits, peak float64) error {
	dst := c.Dst.Index
	if c.Route.CrossesBackbone {
		dst = b.net.Config().HostsPerRing
	}
	offset := 0.0
	for bits > 0 {
		fb := math.Min(bits, frameBits)
		bits -= fb
		offset += fb / peak
		at := b.sim.Now() + offset
		frame := fddi.Frame{Bits: fb, ConnID: c.ID, Src: c.Src.Index, Dst: dst, Enqueued: at}
		if _, err := b.sim.Schedule(at, func() {
			if err := b.rings[c.Src.Ring].EnqueueStamped(frame); err != nil {
				panic(fmt.Sprintf("packetsim: source enqueue: %v", err))
			}
		}); err != nil {
			return err
		}
	}
	return nil
}

// scheduleDualPeriodic emits C2-sized bursts every P2 until C1 bits have
// been sent in the current P1 period, repeating every P1.
func (b *builder) scheduleDualPeriodic(c *core.Connection, src traffic.DualPeriodic, frameBits, phase float64) error {
	var period func()
	period = func() {
		start := b.sim.Now()
		sent := 0.0
		for i := 0; sent < src.C1; i++ {
			burst := math.Min(src.C2, src.C1-sent)
			at := start + float64(i)*src.P2
			if at-start >= src.P1 {
				break
			}
			sent += burst
			if _, err := b.sim.Schedule(at, func() {
				if err := b.emitBurst(c, burst, frameBits, src.PeakBps); err != nil {
					panic(fmt.Sprintf("packetsim: emitting burst: %v", err))
				}
			}); err != nil {
				panic(fmt.Sprintf("packetsim: scheduling burst: %v", err))
			}
		}
		if _, err := b.sim.Schedule(start+src.P1, period); err != nil {
			panic(fmt.Sprintf("packetsim: scheduling period: %v", err))
		}
	}
	_, err := b.sim.Schedule(phase, period)
	return err
}

// startAsyncBackground floods every host station of every ring with
// maximum-size asynchronous frames, refreshed once per TTRT.
func (b *builder) startAsyncBackground(cfg Config) {
	tc := b.net.Config()
	var tick func()
	tick = func() {
		if b.sim.Now() > cfg.Duration {
			return
		}
		for r := range b.rings {
			for host := 0; host < tc.HostsPerRing; host++ {
				for k := 0; k < cfg.AsyncBackground; k++ {
					// Keep the backlog bounded: skip when the queue still
					// holds the previous tick's frames.
					if b.rings[r].AsyncQueueLen(host) >= 4*cfg.AsyncBackground {
						break
					}
					_ = b.rings[r].EnqueueAsync(fddi.Frame{
						Bits:   fddi.MaxFrameBits,
						ConnID: "async-bg",
						Src:    host,
						Dst:    (host + 1) % tc.HostsPerRing,
					})
				}
			}
		}
		if _, err := b.sim.After(tc.Ring.TTRT, tick); err != nil {
			panic(fmt.Sprintf("packetsim: scheduling async background: %v", err))
		}
	}
	if _, err := b.sim.Schedule(0, tick); err != nil {
		panic(fmt.Sprintf("packetsim: starting async background: %v", err))
	}
}

// scheduleLeakyBucket drains the bucket greedily at t=0 — the adversarial
// start the envelope σ + ρt permits — then sustains the token rate ρ. The
// burst is paced at the declared peak (the ring's line rate when uncapped),
// so emission never exceeds the descriptor the bounds were computed from.
func (b *builder) scheduleLeakyBucket(c *core.Connection, src traffic.LeakyBucket, frameBits float64) error {
	if src.Rho <= 0 {
		return fmt.Errorf("packetsim: connection %q: leaky-bucket rate must be positive", c.ID)
	}
	peak := src.PeakBps
	if peak <= 0 {
		peak = b.net.RingConfig(c.Src.Ring).BandwidthBps
	}
	if src.Sigma > 0 {
		if _, err := b.sim.Schedule(0, func() {
			if err := b.emitBurst(c, src.Sigma, frameBits, peak); err != nil {
				panic(fmt.Sprintf("packetsim: emitting bucket burst: %v", err))
			}
		}); err != nil {
			return err
		}
	}
	return b.scheduleCBR(c, traffic.CBR{RateBps: src.Rho}, frameBits)
}

// scheduleCBR emits one frame every frameBits/rate seconds.
func (b *builder) scheduleCBR(c *core.Connection, src traffic.CBR, frameBits float64) error {
	if src.RateBps <= 0 {
		return fmt.Errorf("packetsim: connection %q: CBR rate must be positive", c.ID)
	}
	interval := frameBits / src.RateBps
	var tick func()
	tick = func() {
		if err := b.emitBurst(c, frameBits, frameBits, src.RateBps); err != nil {
			panic(fmt.Sprintf("packetsim: emitting CBR frame: %v", err))
		}
		if _, err := b.sim.After(interval, tick); err != nil {
			panic(fmt.Sprintf("packetsim: scheduling CBR tick: %v", err))
		}
	}
	_, err := b.sim.Schedule(0, tick)
	return err
}
