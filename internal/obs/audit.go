package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// An AuditRecord is one line of the admission audit log: the full story of
// one admit, preview or release decision. It carries everything needed to
// answer "why was this connection (not) admitted" after the fact — the
// decision, the CAC's β, the chosen allocations, the Eq. 7 per-stage delay
// decomposition, the probe count, and the cache hit/miss counts for that
// decision — plus the original request body so a log can be replayed
// against a fresh controller and checked for identical outcomes.
//
// All durations are in seconds, matching the analysis engine's base unit
// (the wire protocol's milliseconds are a presentation choice; the audit
// log is an engineering record).
type AuditRecord struct {
	// TimeUnixNanos is the wall-clock stamp of the decision. Append fills
	// it when zero.
	TimeUnixNanos int64 `json:"timeUnixNanos"`
	// Op is the operation: "admit", "preview" or "release".
	Op string `json:"op"`
	// ConnID is the connection the operation targeted.
	ConnID string `json:"connId"`
	// Admitted reports the CAC decision for admit/preview ops.
	Admitted bool `json:"admitted"`
	// Reason is the rejection reason when Admitted is false.
	Reason string `json:"reason,omitempty"`
	// Error is set when the operation failed before reaching a decision
	// (validation or topology errors).
	Error string `json:"error,omitempty"`
	// Beta is the controller's allocation-interpolation parameter.
	Beta float64 `json:"beta"`
	// HSSeconds and HRSeconds are the chosen synchronous allocations per
	// rotation (admitted connections only).
	HSSeconds float64 `json:"hsSeconds,omitempty"`
	HRSeconds float64 `json:"hrSeconds,omitempty"`
	// DeadlineSeconds is the connection's required delay bound.
	DeadlineSeconds float64 `json:"deadlineSeconds,omitempty"`
	// Probes counts feasibility probes the decision consumed.
	Probes int `json:"probes,omitempty"`
	// Stages is the Eq. 7 worst-case delay decomposition at the chosen
	// allocation (admitted connections only).
	Stages *StageDelays `json:"stages,omitempty"`
	// Cache counts the analyzer cache traffic this decision generated.
	Cache *CacheCounts `json:"cache,omitempty"`
	// Released reports whether a release op found its connection.
	Released *bool `json:"released,omitempty"`
	// Request is the original wire request body (admit/preview only),
	// kept verbatim so the log replays.
	Request json.RawMessage `json:"request,omitempty"`
}

// StageDelays is the audit-log form of the Eq. 7 delay decomposition: the
// worst-case delay contributed by each server on the path, in seconds.
type StageDelays struct {
	// SrcMACSeconds is the Theorem 1 delay at the sender's FDDI MAC.
	SrcMACSeconds float64 `json:"srcMacSeconds"`
	// ShaperSeconds is the ingress regulator delay (zero when unshaped).
	ShaperSeconds float64 `json:"shaperSeconds"`
	// PortSeconds lists each shared FIFO port's queueing delay in
	// traversal order.
	PortSeconds []float64 `json:"portSeconds,omitempty"`
	// DstMACSeconds is the Theorem 1 delay at the receiving interface
	// device's MAC.
	DstMACSeconds float64 `json:"dstMacSeconds"`
	// ConstantSeconds sums the fixed-latency stages.
	ConstantSeconds float64 `json:"constantSeconds"`
	// TotalSeconds is the end-to-end worst case.
	TotalSeconds float64 `json:"totalSeconds"`
}

// CacheCounts is the audit-log form of the analyzer's per-decision cache
// statistics (see core.CacheStats).
type CacheCounts struct {
	// Stage0Hits and Stage0Misses count lookups of the cross-connection
	// stage-0 envelope cache.
	Stage0Hits   uint64 `json:"stage0Hits"`
	Stage0Misses uint64 `json:"stage0Misses"`
	// MACHits and MACMisses count lookups of the two-level MAC analysis
	// cache.
	MACHits   uint64 `json:"macHits"`
	MACMisses uint64 `json:"macMisses"`
}

// An AuditLog appends JSON-line audit records to a writer. Append marshals
// under a mutex and issues one Write per record, so records never
// interleave even when the writer is shared.
type AuditLog struct {
	mu sync.Mutex
	// w receives one Write per record. guarded by mu.
	w io.Writer
	// c closes the file Append opened, nil otherwise. guarded by mu.
	c io.Closer
}

// NewAuditLog wraps an arbitrary writer (a test buffer, stderr).
func NewAuditLog(w io.Writer) *AuditLog {
	return &AuditLog{w: w}
}

// OpenAuditLog opens (creating if needed) the file at path for appending.
// The file is opened with O_APPEND and written one record per Write call,
// which makes external log rotation safe: a copy-and-truncate rotation
// never tears a record, and a rename-based rotation keeps this handle
// writing whole records into the rotated file until the log is reopened.
func OpenAuditLog(path string) (*AuditLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open audit log: %w", err)
	}
	return &AuditLog{w: f, c: f}, nil
}

// Append writes one record as a single JSON line, stamping TimeUnixNanos
// if the caller left it zero.
func (l *AuditLog) Append(rec AuditRecord) error {
	if rec.TimeUnixNanos == 0 {
		rec.TimeUnixNanos = time.Now().UnixNano()
	}
	buf, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("obs: marshal audit record: %w", err)
	}
	buf = append(buf, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.w.Write(buf); err != nil {
		return fmt.Errorf("obs: append audit record: %w", err)
	}
	return nil
}

// Sync flushes appended records to stable storage when the underlying
// writer supports it (an *os.File does); otherwise it is a no-op. A daemon
// calls this on shutdown so the audit tail survives a following crash or
// power loss — Append alone only guarantees the bytes reached the kernel.
func (l *AuditLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if s, ok := l.w.(interface{ Sync() error }); ok {
		if err := s.Sync(); err != nil {
			return fmt.Errorf("obs: sync audit log: %w", err)
		}
	}
	return nil
}

// Close closes the underlying file, if Append opened one.
func (l *AuditLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.c == nil {
		return nil
	}
	err := l.c.Close()
	l.c = nil
	return err
}

// ReadAuditRecords parses a JSON-lines audit log back into records, in file
// order. A final line that is torn mid-record (the log's process crashed
// between the write starting and finishing, or the disk filled) is dropped
// silently: recovery prefers losing the one un-acknowledged record to
// refusing the whole log. A malformed record anywhere else is corruption
// and returns an error naming the line.
func ReadAuditRecords(r io.Reader) ([]AuditRecord, error) {
	br := bufio.NewReader(r)
	var records []AuditRecord
	for lineNo := 1; ; lineNo++ {
		line, err := br.ReadString('\n')
		atEOF := err == io.EOF
		if err != nil && !atEOF {
			return nil, fmt.Errorf("obs: read audit log line %d: %w", lineNo, err)
		}
		trimmed := strings.TrimSpace(line)
		if trimmed != "" {
			var rec AuditRecord
			if jsonErr := json.Unmarshal([]byte(trimmed), &rec); jsonErr != nil {
				if atEOF {
					return records, nil // torn tail from a crash mid-append
				}
				return nil, fmt.Errorf("obs: audit log line %d: %w", lineNo, jsonErr)
			}
			records = append(records, rec)
		}
		if atEOF {
			return records, nil
		}
	}
}
