package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
)

func TestSpanNoSinkIsDropped(t *testing.T) {
	SetSpanSink(nil)
	_, sp := Start(context.Background(), "test.stage")
	if sp.Seconds() < 0 {
		t.Errorf("Seconds() = %v, want >= 0", sp.Seconds())
	}
	sp.End() // must not panic with no sink
}

func TestSpanRecordsIntoRing(t *testing.T) {
	ring := NewSpanRing(4)
	SetSpanSink(ring)
	defer SetSpanSink(nil)
	for i := 0; i < 6; i++ {
		_, sp := Start(context.Background(), "test.stage")
		sp.End()
	}
	got := ring.Snapshot()
	if len(got) != 4 {
		t.Fatalf("ring holds %d spans, want capacity 4", len(got))
	}
	for _, rec := range got {
		if rec.Name != "test.stage" {
			t.Errorf("span name = %q, want test.stage", rec.Name)
		}
		if rec.Seconds < 0 {
			t.Errorf("span duration = %v, want >= 0", rec.Seconds)
		}
	}
}

func TestSpanRingOrder(t *testing.T) {
	ring := NewSpanRing(3)
	for i, name := range []string{"a", "b", "c", "d", "e"} {
		ring.record(SpanRecord{Name: name, Seconds: float64(i)})
	}
	got := ring.Snapshot()
	want := []string{"c", "d", "e"}
	if len(got) != len(want) {
		t.Fatalf("snapshot = %v, want names %v", got, want)
	}
	for i := range want {
		if got[i].Name != want[i] {
			t.Fatalf("snapshot[%d] = %q, want %q (oldest first)", i, got[i].Name, want[i])
		}
	}
}

func TestSpanRingHandler(t *testing.T) {
	ring := NewSpanRing(2)
	ring.record(SpanRecord{Name: "x", Seconds: 0.5})
	rec := httptest.NewRecorder()
	ring.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans", nil))
	var got []SpanRecord
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("response is not a JSON span array: %v\n%s", err, rec.Body.String())
	}
	if len(got) != 1 || got[0].Name != "x" || got[0].Seconds != 0.5 {
		t.Errorf("handler returned %+v, want one span named x with 0.5s", got)
	}
}

// TestSpanAllocationFree guards the no-sink fast path: Start+End must not
// allocate, with or without a sink installed (Span is a value type and the
// ring's buffer is pre-allocated).
func TestSpanAllocationFree(t *testing.T) {
	SetSpanSink(nil)
	if n := testing.AllocsPerRun(100, func() {
		_, sp := Start(context.Background(), "test.alloc")
		sp.End()
	}); n != 0 {
		t.Errorf("no-sink Start/End allocates %v times per run, want 0", n)
	}
	SetSpanSink(NewSpanRing(8))
	defer SetSpanSink(nil)
	if n := testing.AllocsPerRun(100, func() {
		_, sp := Start(context.Background(), "test.alloc")
		sp.End()
	}); n != 0 {
		t.Errorf("sinked Start/End allocates %v times per run, want 0", n)
	}
}
