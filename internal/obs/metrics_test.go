package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "a histogram", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Errorf("count = %d, want 4", got)
	}
	if got := h.Sum(); got != 106.5 {
		t.Errorf("sum = %v, want 106.5", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_seconds a histogram
# TYPE test_seconds histogram
test_seconds_bucket{le="1"} 2
test_seconds_bucket{le="10"} 3
test_seconds_bucket{le="+Inf"} 4
test_seconds_sum 106.5
test_seconds_count 4
`
	if b.String() != want {
		t.Errorf("render:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestWritePrometheusSortedAndLabeled(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "last by name").Inc()
	ok := r.Counter("aaa_total", "first by name", "op", "admit")
	bad := r.Counter("aaa_total", "first by name", "op", "release")
	ok.Add(2)
	bad.Inc()
	g := r.Gauge("mid_gauge", "a gauge")
	g.Set(math.Inf(1))

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aaa_total first by name
# TYPE aaa_total counter
aaa_total{op="admit"} 2
aaa_total{op="release"} 1
# HELP mid_gauge a gauge
# TYPE mid_gauge gauge
mid_gauge +Inf
# HELP zzz_total last by name
# TYPE zzz_total counter
zzz_total 1
`
	if b.String() != want {
		t.Errorf("render:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b")
	r.Counter("a_total", "a")
	r.Histogram("c_seconds", "c", LatencyBuckets())
	got := r.Names()
	want := []string{"a_total", "b_total", "c_seconds"}
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"type conflict", func(r *Registry) { r.Counter("m", "h"); r.Gauge("m", "h") }},
		{"help conflict", func(r *Registry) { r.Counter("m", "h1"); r.Counter("m", "h2") }},
		{"duplicate labels", func(r *Registry) { r.Counter("m", "h", "op", "x"); r.Counter("m", "h", "op", "x") }},
		{"odd labels", func(r *Registry) { r.Counter("m", "h", "op") }},
		{"empty help", func(r *Registry) { r.Counter("m", "") }},
		{"no buckets", func(r *Registry) { r.Histogram("m", "h", nil) }},
		{"descending buckets", func(r *Registry) { r.Histogram("m", "h", []float64{2, 1}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

func TestLatencyBucketsAscending(t *testing.T) {
	b := LatencyBuckets()
	if len(b) == 0 {
		t.Fatal("no buckets")
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("buckets not ascending at %d: %v", i, b)
		}
	}
	// The grid must cover the repo's latency range: sub-millisecond ops up
	// to multi-second simulation replications.
	if b[0] > 1e-3 || b[len(b)-1] < 10 {
		t.Fatalf("bucket range [%v, %v] does not span 1ms..10s", b[0], b[len(b)-1])
	}
}

// TestConcurrentScrape exercises render-during-update; the race detector
// (make race) is the actual assertion.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "hits")
	h := r.Histogram("lat_seconds", "lat", LatencyBuckets())
	g := r.Gauge("active", "active")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.001 * float64(i%7))
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Errorf("counter = %d, want 4000", c.Value())
	}
	if h.Count() != 4000 {
		t.Errorf("histogram count = %d, want 4000", h.Count())
	}
}

// TestMetricUpdatesAllocationFree guards the tentpole's zero-alloc fast
// path: metric updates on pre-registered handles must not allocate.
func TestMetricUpdatesAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h_seconds", "h", LatencyBuckets())
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		g.Add(1)
		h.Observe(0.004)
	}); n != 0 {
		t.Errorf("metric updates allocate %v times per run, want 0", n)
	}
}
