package obs

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// TestExportedIdentifiersDocumented is the docs-check gate for this package
// (run by `make docs-check` and CI): every exported top-level identifier —
// types, functions, methods on exported types, package-level vars and
// consts — must carry a doc comment. Struct fields are covered by their
// type's doc; methods on unexported types are not package API.
func TestExportedIdentifiersDocumented(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					if recv := receiverTypeName(d); recv != "" && !ast.IsExported(recv) {
						continue
					}
					t.Errorf("%s: exported func %s lacks a doc comment", fset.Position(d.Pos()), d.Name.Name)
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
								t.Errorf("%s: exported type %s lacks a doc comment", fset.Position(s.Pos()), s.Name.Name)
							}
						case *ast.ValueSpec:
							for _, n := range s.Names {
								if n.IsExported() && d.Doc == nil && s.Doc == nil {
									t.Errorf("%s: exported %s %s lacks a doc comment", fset.Position(n.Pos()), d.Tok, n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
}

// receiverTypeName returns the name of a method's receiver type, or "" for
// plain functions.
func receiverTypeName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	expr := d.Recv.List[0].Type
	if star, ok := expr.(*ast.StarExpr); ok {
		expr = star.X
	}
	if id, ok := expr.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
