package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// A Span measures the wall time of one named stage. It is a value type:
// Start and End allocate nothing, so spans can wrap hot paths unconditionally
// and cost two clock reads plus one atomic pointer load when no sink is
// installed.
//
// Span is also the module's sanctioned wall-clock access point for the
// simulator packages: the randsrc analyzer bans direct time.Now/time.Since
// there so that simulated time can never leak into results, but measuring
// how long a replication took is observation, not simulation input — those
// packages call Start/Seconds/End and the clock read happens here.
type Span struct {
	name  string
	start time.Time
}

// Start begins a span. The context is returned unchanged — it is accepted
// (and threaded through call chains) so the signature will not need to
// change if span parenting is ever added, but attaching the span to the
// context today would force an allocation the no-sink guarantee forbids.
func Start(ctx context.Context, name string) (context.Context, Span) {
	return ctx, Span{name: name, start: time.Now()}
}

// Seconds returns the wall time elapsed since Start, in seconds. It may be
// called before or after End.
func (s Span) Seconds() float64 {
	return time.Since(s.start).Seconds()
}

// End records the span into the installed sink, if any. Without a sink it
// is a single atomic load and a branch.
func (s Span) End() {
	if r := spanSink.Load(); r != nil {
		r.record(SpanRecord{Name: s.name, Seconds: time.Since(s.start).Seconds()})
	}
}

// spanSink is the process-wide span destination. nil means spans are
// dropped at End with no further work.
var spanSink atomic.Pointer[SpanRing]

// SetSpanSink installs r as the destination for ended spans; pass nil to
// drop spans again. Safe to call concurrently with End.
func SetSpanSink(r *SpanRing) {
	spanSink.Store(r)
}

// SpanSink returns the currently installed sink, or nil.
func SpanSink() *SpanRing {
	return spanSink.Load()
}

// A SpanRecord is one completed span as stored in a ring.
type SpanRecord struct {
	// Name identifies the stage, e.g. "core.decide" or "sim.replication".
	Name string `json:"name"`
	// Seconds is the span's wall duration.
	Seconds float64 `json:"seconds"`
}

// A SpanRing keeps the most recent completed spans in a fixed-size buffer.
// It trades completeness for bounded memory: the daemon keeps the last few
// hundred stage timings inspectable at /debug/spans without ever growing.
type SpanRing struct {
	mu sync.Mutex
	// buf is the fixed-size span store. guarded by mu.
	buf []SpanRecord
	// next is the slot the next span lands in. guarded by mu.
	next int
	// full is set once the ring has wrapped. guarded by mu.
	full bool
}

// NewSpanRing returns a ring holding the last n spans. n must be positive.
func NewSpanRing(n int) *SpanRing {
	if n <= 0 {
		panic("obs: span ring capacity must be positive")
	}
	return &SpanRing{buf: make([]SpanRecord, n)}
}

// record appends one span, overwriting the oldest once full.
func (r *SpanRing) record(rec SpanRecord) {
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Snapshot returns the buffered spans, oldest first.
func (r *SpanRing) Snapshot() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]SpanRecord(nil), r.buf[:r.next]...)
	}
	out := make([]SpanRecord, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Handler returns an http.Handler serving the ring contents as a JSON
// array, oldest span first — the daemon's /debug/spans endpoint.
func (r *SpanRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// An error here means the client hung up mid-response.
		_ = json.NewEncoder(w).Encode(r.Snapshot())
	})
}
