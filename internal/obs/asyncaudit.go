package obs

import (
	"sync"
	"time"
)

// An AsyncAuditWriter moves audit persistence off the admission decision
// path. Producers enqueue fully built records (stamped at enqueue time, so
// timestamps reflect the decision, not the disk); a single writer goroutine
// drains the queue in FIFO order, appends each record, and issues one group
// fsync per drained batch instead of one per record. Queue order is file
// order, so as long as producers enqueue state-changing records in commit
// order (signaling does so inside the commit critical section), a replayed
// log reconstructs the identical admitted state — the same invariant the
// old append-under-the-decision-lock design enforced, minus the lock.
//
// The writer never drops a record: when the queue is full, Enqueue blocks
// (and counts the backpressure). Dropping would be cheaper, but a missing
// admit or release line would silently corrupt every later replay.
//
// Lifecycle contract: stop producing before calling Close. Close drains
// whatever is queued, syncs, and closes the underlying log. An Enqueue that
// races a concurrent Close falls back to appending synchronously so the
// record still lands, though its position relative to the drained tail is
// then the file's order, not the queue's.
type AsyncAuditWriter struct {
	log       *AuditLog
	queue     chan AuditRecord
	groupSync bool

	flushReq  chan chan struct{}
	stop      chan struct{}
	stopped   chan struct{}
	closeOnce sync.Once
}

// asyncBatchMax bounds how many records one drain pass appends before the
// group fsync; a full queue is flushed as several batches.
const asyncBatchMax = 256

// NewAsyncAuditWriter starts the writer goroutine over the given log.
// queue is the backlog bound (≤ 0 selects 1024); groupSync selects one
// fsync per drained batch (false defers durability entirely to Flush and
// Close, trading crash-tail durability for throughput).
func NewAsyncAuditWriter(log *AuditLog, queue int, groupSync bool) *AsyncAuditWriter {
	if queue <= 0 {
		queue = 1024
	}
	w := &AsyncAuditWriter{
		log:       log,
		queue:     make(chan AuditRecord, queue),
		groupSync: groupSync,
		flushReq:  make(chan chan struct{}),
		stop:      make(chan struct{}),
		stopped:   make(chan struct{}),
	}
	go func() {
		defer close(w.stopped)
		w.loop()
	}()
	return w
}

// Enqueue hands one record to the writer. It blocks when the queue is full
// rather than drop (replay correctness outranks latency); the block is
// counted so operators can see audit backpressure building.
func (w *AsyncAuditWriter) Enqueue(rec AuditRecord) {
	if rec.TimeUnixNanos == 0 {
		rec.TimeUnixNanos = time.Now().UnixNano()
	}
	select {
	case <-w.stopped:
		// The writer is gone (shutdown race); persist synchronously so the
		// record is not lost.
		if err := w.log.Append(rec); err != nil {
			mAuditAsyncErrors.Inc()
		}
		return
	default:
	}
	select {
	case w.queue <- rec:
	default:
		mAuditBackpressure.Inc()
		select {
		case w.queue <- rec:
		case <-w.stopped:
			if err := w.log.Append(rec); err != nil {
				mAuditAsyncErrors.Inc()
			}
			return
		}
	}
	gAuditQueueDepth.Set(float64(len(w.queue)))
}

// Flush blocks until every record enqueued before the call is appended and
// synced to stable storage. Safe to call concurrently with producers (their
// later records may or may not be covered) and after Close (a no-op).
func (w *AsyncAuditWriter) Flush() {
	ack := make(chan struct{})
	select {
	case w.flushReq <- ack:
		select {
		case <-ack:
		case <-w.stopped:
		}
	case <-w.stopped:
	}
}

// Close drains the queue, syncs, stops the writer goroutine, and closes the
// underlying log. Idempotent.
func (w *AsyncAuditWriter) Close() error {
	w.closeOnce.Do(func() { close(w.stop) })
	<-w.stopped
	return w.log.Close()
}

// loop is the writer goroutine: batch-drain, append, group-sync, repeat.
func (w *AsyncAuditWriter) loop() {
	for {
		select {
		case rec := <-w.queue:
			w.writeBatch(w.drainBatch(rec))
		case ack := <-w.flushReq:
			w.drainAll()
			if err := w.log.Sync(); err != nil {
				mAuditAsyncErrors.Inc()
			}
			close(ack)
		case <-w.stop:
			w.drainAll()
			if err := w.log.Sync(); err != nil {
				mAuditAsyncErrors.Inc()
			}
			return
		}
	}
}

// drainBatch collects up to asyncBatchMax queued records without blocking,
// starting from one already received.
func (w *AsyncAuditWriter) drainBatch(first AuditRecord) []AuditRecord {
	batch := make([]AuditRecord, 1, asyncBatchMax)
	batch[0] = first
	for len(batch) < asyncBatchMax {
		select {
		case rec := <-w.queue:
			batch = append(batch, rec)
		default:
			return batch
		}
	}
	return batch
}

// drainAll empties the queue through writeBatch.
func (w *AsyncAuditWriter) drainAll() {
	for {
		select {
		case rec := <-w.queue:
			w.writeBatch(w.drainBatch(rec))
		default:
			return
		}
	}
}

// writeBatch appends a batch in order and issues the group fsync. Append
// failures are counted, not fatal: an audit log on a full disk must not
// take admission control down with it.
func (w *AsyncAuditWriter) writeBatch(batch []AuditRecord) {
	for _, rec := range batch {
		if err := w.log.Append(rec); err != nil {
			mAuditAsyncErrors.Inc()
		} else {
			mAuditAsyncWritten.Inc()
		}
	}
	mAuditBatches.Inc()
	if w.groupSync {
		if err := w.log.Sync(); err != nil {
			mAuditAsyncErrors.Inc()
		} else {
			mAuditGroupSyncs.Inc()
		}
	}
	gAuditQueueDepth.Set(float64(len(w.queue)))
}

// Async audit writer metrics.
var (
	mAuditAsyncWritten = Default.Counter("fafnet_audit_async_records_total",
		"Audit records appended by the async writer.")
	mAuditAsyncErrors = Default.Counter("fafnet_audit_async_errors_total",
		"Audit appends or syncs that failed inside the async writer.")
	mAuditBatches = Default.Counter("fafnet_audit_write_batches_total",
		"Drain passes the async audit writer performed (each covered by one group fsync when enabled).")
	mAuditGroupSyncs = Default.Counter("fafnet_audit_group_syncs_total",
		"Group fsyncs issued by the async audit writer.")
	mAuditBackpressure = Default.Counter("fafnet_audit_backpressure_total",
		"Enqueues that blocked because the async audit queue was full.")
	gAuditQueueDepth = Default.Gauge("fafnet_audit_queue_depth",
		"Records currently queued for the async audit writer.")
)
