package obs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// gatedBuffer is an in-memory audit sink whose writes can be held at a
// gate, letting tests force queue buildup deterministically.
type gatedBuffer struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	gate chan struct{} // nil = open; non-nil = every Write waits for one token
}

func (g *gatedBuffer) Write(p []byte) (int, error) {
	g.mu.Lock()
	gate := g.gate
	g.mu.Unlock()
	if gate != nil {
		<-gate
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.buf.Write(p)
}

func (g *gatedBuffer) records(t *testing.T) []AuditRecord {
	t.Helper()
	g.mu.Lock()
	data := append([]byte(nil), g.buf.Bytes()...)
	g.mu.Unlock()
	recs, err := ReadAuditRecords(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("audit log unreadable: %v", err)
	}
	return recs
}

// TestAsyncAuditOrderPreserved is the replay invariant at the writer level:
// enqueue order must equal file order, across many more records than one
// drain batch holds.
func TestAsyncAuditOrderPreserved(t *testing.T) {
	sink := &gatedBuffer{}
	w := NewAsyncAuditWriter(NewAuditLog(sink), 64, true)
	const n = 3 * asyncBatchMax
	for i := 0; i < n; i++ {
		w.Enqueue(AuditRecord{Op: "admit", ConnID: fmt.Sprintf("c%06d", i)})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs := sink.records(t)
	if len(recs) != n {
		t.Fatalf("%d records on disk, want %d", len(recs), n)
	}
	for i, rec := range recs {
		if want := fmt.Sprintf("c%06d", i); rec.ConnID != want {
			t.Fatalf("record %d is %s, want %s — enqueue order not preserved", i, rec.ConnID, want)
		}
	}
}

// TestAsyncAuditFlushCovers checks Flush's contract: every record enqueued
// before the call is on disk when Flush returns, while the writer keeps
// accepting records afterwards.
func TestAsyncAuditFlushCovers(t *testing.T) {
	sink := &gatedBuffer{}
	w := NewAsyncAuditWriter(NewAuditLog(sink), 0, false)
	for i := 0; i < 10; i++ {
		w.Enqueue(AuditRecord{Op: "admit", ConnID: fmt.Sprintf("f%d", i)})
	}
	w.Flush()
	if got := len(sink.records(t)); got != 10 {
		t.Fatalf("%d records after Flush, want 10", got)
	}
	w.Enqueue(AuditRecord{Op: "release", ConnID: "late"})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs := sink.records(t)
	if len(recs) != 11 || recs[10].ConnID != "late" {
		t.Fatalf("after Close: %d records, last %q; want 11 with last \"late\"", len(recs), recs[len(recs)-1].ConnID)
	}
}

// TestAsyncAuditBackpressureBlocks forces the queue full with the sink
// gated: Enqueue must block (never drop), count the backpressure, and every
// record must still land in order once the sink opens.
func TestAsyncAuditBackpressureBlocks(t *testing.T) {
	gate := make(chan struct{})
	sink := &gatedBuffer{gate: gate}
	before := mAuditBackpressure.Value()
	w := NewAsyncAuditWriter(NewAuditLog(sink), 1, false)

	const n = 6
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			w.Enqueue(AuditRecord{Op: "admit", ConnID: fmt.Sprintf("b%d", i)})
		}
	}()
	// Open the gate: one token per queued write until the producer finishes.
	for {
		select {
		case gate <- struct{}{}:
		case <-done:
			sink.mu.Lock()
			sink.gate = nil
			sink.mu.Unlock()
			close(gate)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			recs := sink.records(t)
			if len(recs) != n {
				t.Fatalf("%d records, want %d — backpressure dropped records", len(recs), n)
			}
			for i, rec := range recs {
				if want := fmt.Sprintf("b%d", i); rec.ConnID != want {
					t.Fatalf("record %d is %s, want %s", i, rec.ConnID, want)
				}
			}
			if mAuditBackpressure.Value() == before {
				t.Error("queue of 1 with a gated sink never counted backpressure")
			}
			return
		}
	}
}

// TestAsyncAuditEnqueueAfterClose checks the shutdown race contract: a
// record enqueued after Close still lands, via the synchronous fallback.
func TestAsyncAuditEnqueueAfterClose(t *testing.T) {
	sink := &gatedBuffer{}
	w := NewAsyncAuditWriter(NewAuditLog(sink), 0, true)
	w.Enqueue(AuditRecord{Op: "admit", ConnID: "early"})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w.Enqueue(AuditRecord{Op: "release", ConnID: "straggler"})
	recs := sink.records(t)
	if len(recs) != 2 || recs[1].ConnID != "straggler" {
		t.Fatalf("straggler record lost: %+v", recs)
	}
}

// TestAsyncAuditGroupSyncCounts checks the fsync batching arithmetic: n
// records through a live writer produce at least one group sync and far
// fewer syncs than records.
func TestAsyncAuditGroupSyncCounts(t *testing.T) {
	sink := &gatedBuffer{}
	syncsBefore := mAuditGroupSyncs.Value()
	writtenBefore := mAuditAsyncWritten.Value()
	w := NewAsyncAuditWriter(NewAuditLog(sink), 0, true)
	const n = 500
	for i := 0; i < n; i++ {
		w.Enqueue(AuditRecord{Op: "admit", ConnID: fmt.Sprintf("g%d", i)})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	written := mAuditAsyncWritten.Value() - writtenBefore
	syncs := mAuditGroupSyncs.Value() - syncsBefore
	if written != n {
		t.Fatalf("written counter %d, want %d", written, n)
	}
	if syncs == 0 {
		t.Fatal("group-sync mode issued no syncs")
	}
	if syncs >= written {
		t.Fatalf("%d syncs for %d records — no grouping happened", syncs, written)
	}
}
