// Package obs is the observability layer of the repository: counters,
// gauges and histograms behind a registry that renders the Prometheus text
// exposition format, a lightweight span API that records per-stage wall
// times into a ring buffer, and a structured JSON admission audit log.
//
// The package is pure standard library and imports nothing else from this
// module, so every analysis and protocol package can instrument itself
// without import cycles. Three properties are load-bearing and guarded by
// tests:
//
//   - Zero allocation on the fast path when no sink is registered: metric
//     updates are single atomic operations on pre-registered handles, and
//     Start/End of a span allocates nothing whether or not a span sink is
//     installed (Span is a value type).
//   - Race-clean: every metric update and registry render is safe under
//     concurrent use (the daemon scrapes /metrics while admissions run).
//   - Determinism-safe: instrumentation only observes; it never feeds wall
//     time or counter state back into analysis or simulation results. The
//     randsrc analyzer bans wall-clock reads inside the simulator packages,
//     so any elapsed-time measurement they need is taken through Span,
//     which reads the clock here. See DESIGN.md §8.
package obs

// Default is the process-wide registry. Packages register their metric
// handles into it from package-level var initializers, so importing an
// instrumented package is all it takes for its metrics to appear in a
// /metrics scrape or a -metrics-dump.
var Default = NewRegistry()
