package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing metric. All methods are safe for
// concurrent use; Inc and Add are single atomic operations.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
//
//fafvet:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//fafvet:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
//
//fafvet:hotpath
func (c *Counter) Value() uint64 { return c.v.Load() }

// A Gauge is a float64 metric that can go up and down. All methods are safe
// for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
//
//fafvet:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (which may be negative) with a compare-and-swap loop.
//
//fafvet:hotpath
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current value.
//
//fafvet:hotpath
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// A Histogram counts observations into fixed buckets and tracks their sum.
// Observe is lock-free: one atomic add per observation plus a
// compare-and-swap loop for the sum.
type Histogram struct {
	upper   []float64 // ascending bucket upper bounds; +Inf is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
//
//fafvet:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
//
//fafvet:hotpath
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
//
//fafvet:hotpath
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// LatencyBuckets returns the registry's default 1–2.5–5 decade grid for
// wall-time histograms, spanning 100 µs to 50 s. The grid covers every
// latency this repository produces: sub-millisecond report ops, multi-
// millisecond CAC admissions, and multi-second simulation replications.
func LatencyBuckets() []float64 {
	const lowest = 1e-4 // seconds; the smallest latency bucket bound
	var out []float64
	for decade := lowest; decade < 100; decade *= 10 {
		out = append(out, decade, 2.5*decade, 5*decade)
	}
	return out
}

// kind discriminates the metric families a Registry can hold.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one labeled instance within a family.
type child struct {
	labels string // rendered as `k1="v1",k2="v2"`, or "" for no labels
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups the children sharing one metric name.
type family struct {
	name     string
	help     string
	kind     kind
	children []*child
}

// A Registry holds metric families and renders them in the Prometheus text
// exposition format. Registration normally happens once, from package-level
// var initializers; rendering may run concurrently with metric updates.
type Registry struct {
	mu sync.Mutex
	// fams is the family table, keyed by metric name. guarded by mu.
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Counter registers and returns a counter. labels are alternating key,
// value pairs baked into the metric at registration time (the label sets of
// this repository are small and fixed, so there is no dynamic label API).
// Registering the same name with a different type or help, or the same
// (name, labels) twice, panics: both are programmer errors caught at init.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, labels, &child{c: c})
	return c
}

// Gauge registers and returns a gauge. See Counter for label semantics.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, labels, &child{g: g})
	return g
}

// Histogram registers and returns a histogram with the given ascending
// bucket upper bounds (+Inf is implicit). See Counter for label semantics.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if len(buckets) == 0 {
		panic("obs: histogram " + name + " needs at least one bucket")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: histogram " + name + " buckets must be strictly ascending")
		}
	}
	h := &Histogram{upper: buckets, buckets: make([]atomic.Uint64, len(buckets)+1)}
	r.register(name, help, kindHistogram, labels, &child{h: h})
	return h
}

// register files one child under its family, creating the family on first
// use and validating consistency.
func (r *Registry) register(name, help string, k kind, labels []string, ch *child) {
	if name == "" || help == "" {
		panic("obs: metric needs a name and a help string")
	}
	if len(labels)%2 != 0 {
		panic("obs: metric " + name + " labels must be key,value pairs")
	}
	var b strings.Builder
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	ch.labels = b.String()

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k}
		r.fams[name] = f
	}
	if f.kind != k || f.help != help {
		panic("obs: metric " + name + " re-registered with a different type or help")
	}
	for _, existing := range f.children {
		if existing.labels == ch.labels {
			panic("obs: metric " + name + "{" + ch.labels + "} registered twice")
		}
	}
	f.children = append(f.children, ch)
}

// Names returns the registered family names, sorted. The OPERATIONS.md
// catalog test uses it to keep the documentation in lockstep with the code.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.fams))
	for name := range r.fams {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), sorted by family name and label string so output
// is stable across runs.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		children := append([]*child(nil), f.children...)
		sort.Slice(children, func(i, j int) bool { return children[i].labels < children[j].labels })
		for _, ch := range children {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, braced(ch.labels), ch.c.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, braced(ch.labels), formatFloat(ch.g.Value()))
			case kindHistogram:
				cum := uint64(0)
				for i, bound := range ch.h.upper {
					cum += ch.h.buckets[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, braced(joinLabels(ch.labels, `le=`+strconv.Quote(formatFloat(bound)))), cum)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, braced(joinLabels(ch.labels, `le="+Inf"`)), ch.h.Count())
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, braced(ch.labels), formatFloat(ch.h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, braced(ch.labels), ch.h.Count())
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns an http.Handler serving WritePrometheus — the /metrics
// endpoint of the daemon.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Errors here mean the client hung up mid-scrape; nothing to do.
		_ = r.WritePrometheus(w)
	})
}

// braced wraps a rendered label string for exposition, or returns "" for
// unlabeled children.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// joinLabels appends one rendered label to an existing label string.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// formatFloat renders a float the way Prometheus clients expect.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
