package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func sampleRecord() AuditRecord {
	released := true
	return AuditRecord{
		Op:              "admit",
		ConnID:          "m1",
		Admitted:        true,
		Beta:            0.5,
		HSSeconds:       0.0004,
		HRSeconds:       0.0003,
		DeadlineSeconds: 0.1,
		Probes:          17,
		Stages: &StageDelays{
			SrcMACSeconds:   0.012,
			PortSeconds:     []float64{0.001, 0.002},
			DstMACSeconds:   0.011,
			ConstantSeconds: 0.0005,
			TotalSeconds:    0.0265,
		},
		Cache:    &CacheCounts{Stage0Hits: 3, Stage0Misses: 1, MACHits: 5, MACMisses: 2},
		Released: &released,
		Request:  json.RawMessage(`{"id":"m1"}`),
	}
}

func TestAuditAppendRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	log := NewAuditLog(&buf)
	if err := log.Append(sampleRecord()); err != nil {
		t.Fatal(err)
	}
	line := buf.Bytes()
	if line[len(line)-1] != '\n' {
		t.Fatal("record is not newline-terminated")
	}
	var got AuditRecord
	if err := json.Unmarshal(line, &got); err != nil {
		t.Fatalf("record is not valid JSON: %v\n%s", err, line)
	}
	if got.TimeUnixNanos == 0 {
		t.Error("Append left TimeUnixNanos unstamped")
	}
	if got.ConnID != "m1" || !got.Admitted || got.Probes != 17 {
		t.Errorf("round trip mangled the record: %+v", got)
	}
	if got.Stages == nil || got.Stages.TotalSeconds != 0.0265 || len(got.Stages.PortSeconds) != 2 {
		t.Errorf("round trip mangled the stage delays: %+v", got.Stages)
	}
	if got.Cache == nil || got.Cache.MACHits != 5 {
		t.Errorf("round trip mangled the cache counts: %+v", got.Cache)
	}
}

func TestOpenAuditLogAppendsAcrossOpens(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	for i := 0; i < 2; i++ {
		log, err := OpenAuditLog(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Append(AuditRecord{Op: "admit", ConnID: "m1"}); err != nil {
			t.Fatal(err)
		}
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
		if err := log.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec AuditRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", lines+1, err)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("reopened log holds %d records, want 2 (append, not truncate)", lines)
	}
}

func TestReadAuditRecordsRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	log := NewAuditLog(&buf)
	for i := 0; i < 3; i++ {
		if err := log.Append(sampleRecord()); err != nil {
			t.Fatal(err)
		}
	}
	records, err := ReadAuditRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("read %d records, want 3", len(records))
	}
	if records[0].ConnID != "m1" || records[0].Probes != 17 {
		t.Errorf("round trip mangled the record: %+v", records[0])
	}
}

func TestReadAuditRecordsDropsTornTail(t *testing.T) {
	var buf bytes.Buffer
	log := NewAuditLog(&buf)
	if err := log.Append(sampleRecord()); err != nil {
		t.Fatal(err)
	}
	// A crash mid-append leaves a partial record with no trailing newline.
	buf.WriteString(`{"op":"admit","connId":"tor`)
	records, err := ReadAuditRecords(&buf)
	if err != nil {
		t.Fatalf("torn tail should be tolerated, got %v", err)
	}
	if len(records) != 1 {
		t.Fatalf("read %d records, want the 1 intact one", len(records))
	}
}

func TestReadAuditRecordsRejectsCorruptMiddle(t *testing.T) {
	var buf bytes.Buffer
	log := NewAuditLog(&buf)
	if err := log.Append(sampleRecord()); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("not json\n")
	if err := log.Append(sampleRecord()); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAuditRecords(&buf); err == nil {
		t.Fatal("a corrupt record before the tail must be an error")
	}
}

func TestAuditSync(t *testing.T) {
	// Sync on a plain writer is a no-op; on a file it must succeed and the
	// synced bytes must be on disk for an independent reader.
	if err := NewAuditLog(&bytes.Buffer{}).Sync(); err != nil {
		t.Errorf("Sync on a buffer: %v", err)
	}
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	log, err := OpenAuditLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if err := log.Append(sampleRecord()); err != nil {
		t.Fatal(err)
	}
	if err := log.Sync(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records, err := ReadAuditRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 {
		t.Fatalf("synced log holds %d records, want 1", len(records))
	}
}

func TestAuditConcurrentAppendsDoNotInterleave(t *testing.T) {
	var buf bytes.Buffer
	log := NewAuditLog(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := log.Append(sampleRecord()); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	lines := 0
	for sc.Scan() {
		var rec AuditRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("interleaved record at line %d: %v", lines+1, err)
		}
		lines++
	}
	if lines != 400 {
		t.Fatalf("log holds %d records, want 400", lines)
	}
}
