package shaper

import (
	"errors"
	"testing"

	"fafnet/internal/des"
	"fafnet/internal/traffic"
	"fafnet/internal/units"
)

func TestSpecValidate(t *testing.T) {
	if err := (Spec{SigmaBits: 0, RhoBps: 1}).Validate(); err == nil {
		t.Error("zero sigma should be rejected")
	}
	if err := (Spec{SigmaBits: 1, RhoBps: 0}).Validate(); err == nil {
		t.Error("zero rho should be rejected")
	}
	if err := (Spec{SigmaBits: 1e4, RhoBps: 1e6}).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestAnalyzeClosedForm(t *testing.T) {
	// Instantaneous 100 kbit bursts every 10 ms through a (40 kbit, 12 Mb/s)
	// bucket: worst lag at t→0 is (C − σ)/ρ = 60k/12M = 5 ms.
	in, err := traffic.NewPeriodic(1e5, 0.010, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(in, Spec{SigmaBits: 4e4, RhoBps: 12e6}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Exact value is 5 ms minus the 0.1 µs burst spread at the declared
	// peak rate.
	if !units.WithinRel(res.Delay, 5e-3, 1e-4) {
		t.Errorf("Delay = %v, want ≈5 ms", res.Delay)
	}
	// The output conforms to the bucket everywhere.
	for i := 1; i <= 400; i++ {
		iv := float64(i) * 1e-4
		if got := res.Output.Bits(iv); got > 4e4+12e6*iv+units.Eps {
			t.Fatalf("output violates the bucket at I=%v: %v", iv, got)
		}
	}
	// And never exceeds what the delayed input could supply.
	if got := res.Output.Bits(1.0); got > in.Bits(1.0+res.Delay)+units.Eps {
		t.Errorf("output exceeds delayed input over 1 s: %v", got)
	}
}

func TestAnalyzeConformantInputPassesFreely(t *testing.T) {
	in, err := traffic.NewCBR(5e6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(in, Spec{SigmaBits: 1e4, RhoBps: 10e6}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay > 1e-9 {
		t.Errorf("conformant traffic delayed by %v", res.Delay)
	}
}

func TestAnalyzeUnstable(t *testing.T) {
	in, err := traffic.NewCBR(20e6)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Analyze(in, Spec{SigmaBits: 1e4, RhoBps: 10e6}, Options{})
	if !errors.Is(err, ErrUnstable) {
		t.Errorf("err = %v, want ErrUnstable", err)
	}
	if _, err := Analyze(nil, Spec{SigmaBits: 1, RhoBps: 1}, Options{}); err == nil {
		t.Error("nil input should be rejected")
	}
}

func TestSimConformantPassesImmediately(t *testing.T) {
	sim := des.NewSimulator()
	var released []float64
	sh, err := NewSim(sim, Spec{SigmaBits: 5e4, RhoBps: 10e6}, func(id string, bits, origin float64) {
		released = append(released, sim.Now())
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Submit("a", 2e4, 0); err != nil {
		t.Fatal(err)
	}
	sim.Run(1)
	if len(released) != 1 || released[0] != 0 {
		t.Errorf("conformant frame released at %v, want immediately", released)
	}
}

func TestSimShapesBurst(t *testing.T) {
	// Bucket (30 kbit, 10 Mb/s); three 20 kbit frames at t=0: the first
	// passes (bucket 30k→10k), the second waits for 10k more tokens (1 ms),
	// the third waits another 2 ms.
	sim := des.NewSimulator()
	var times []float64
	sh, err := NewSim(sim, Spec{SigmaBits: 3e4, RhoBps: 10e6}, func(id string, bits, origin float64) {
		times = append(times, sim.Now())
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sh.Submit("a", 2e4, 0); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run(1)
	want := []float64{0, 1e-3, 3e-3}
	if len(times) != 3 {
		t.Fatalf("released %d frames", len(times))
	}
	for i := range want {
		if !units.WithinRel(times[i], want[i], 1e-9) && !(want[i] == 0 && times[i] == 0) {
			t.Errorf("release %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestSimMatchesAnalysis(t *testing.T) {
	// Periodic bursts through the simulator: the measured worst shaping
	// delay must stay below the analysis bound.
	const (
		frameBits = 2e4
		burst     = 5 // frames per burst → 100 kbit
		period    = 10e-3
	)
	spec := Spec{SigmaBits: 4e4, RhoBps: 12e6}
	in, err := traffic.NewPeriodic(burst*frameBits, period, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := Analyze(in, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}

	sim := des.NewSimulator()
	var worst float64
	sh, err := NewSim(sim, spec, func(id string, bits, origin float64) {
		if d := sim.Now() - origin; d > worst {
			worst = d
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var tick func()
	tick = func() {
		if sim.Now() > 1.0 {
			return
		}
		for i := 0; i < burst; i++ {
			if err := sh.Submit("a", frameBits, sim.Now()); err != nil {
				t.Errorf("submit: %v", err)
			}
		}
		if _, err := sim.After(period, tick); err != nil {
			t.Errorf("schedule: %v", err)
		}
	}
	if _, err := sim.Schedule(0, tick); err != nil {
		t.Fatal(err)
	}
	sim.Run(2)
	if worst <= 0 {
		t.Fatal("no shaping delay measured")
	}
	// The envelope spreads each burst at the declared peak (1e12 b/s ≈
	// 0.1 µs per burst) while the simulator submits instantaneously, so
	// allow exactly that spread as slack.
	spread := burst * frameBits / 1e12
	if worst > bound.Delay+spread+units.Eps {
		t.Errorf("measured shaping delay %v exceeds bound %v (+spread %v)", worst, bound.Delay, spread)
	}
}

func TestSimValidation(t *testing.T) {
	sim := des.NewSimulator()
	rel := func(string, float64, float64) {}
	if _, err := NewSim(nil, Spec{SigmaBits: 1, RhoBps: 1}, rel); err == nil {
		t.Error("nil simulator should be rejected")
	}
	if _, err := NewSim(sim, Spec{}, rel); err == nil {
		t.Error("invalid spec should be rejected")
	}
	if _, err := NewSim(sim, Spec{SigmaBits: 1, RhoBps: 1}, nil); err == nil {
		t.Error("nil callback should be rejected")
	}
	sh, err := NewSim(sim, Spec{SigmaBits: 1e4, RhoBps: 1e6}, rel)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Submit("a", 0, 0); err == nil {
		t.Error("empty frame should be rejected")
	}
	if err := sh.Submit("a", 2e4, 0); err == nil {
		t.Error("frame larger than the bucket should be rejected")
	}
}
