// Package shaper implements ingress traffic regulation at the interface
// device, following the authors' companion work on traffic regulation in
// ATM LANs (Raha, Kamat, Zhao; ICNP 1995): a (σ, ρ) regulator placed before
// the ATM output port delays non-conformant traffic so that what enters the
// backbone is leaky-bucket bounded. Shaping trades a bounded local delay for
// much tighter envelopes downstream — every shared port after the shaper
// sees σ + ρ·I instead of the MAC's bursty output — which can lower the
// end-to-end worst case when backbone contention dominates.
package shaper

import (
	"errors"
	"fmt"

	"fafnet/internal/des"
	"fafnet/internal/traffic"
	"fafnet/internal/units"
)

// Spec parameterizes one connection's regulator.
type Spec struct {
	// SigmaBits is the bucket depth σ.
	SigmaBits float64
	// RhoBps is the token rate ρ; it must exceed the connection's long-term
	// rate or the regulator backlog grows without bound.
	RhoBps float64
}

// Validate reports whether the parameters are usable.
func (s Spec) Validate() error {
	if s.SigmaBits <= 0 {
		return fmt.Errorf("shaper: sigma %v must be positive", s.SigmaBits)
	}
	if s.RhoBps <= 0 {
		return fmt.Errorf("shaper: rho %v must be positive", s.RhoBps)
	}
	return nil
}

// Result is the outcome of the regulator analysis.
type Result struct {
	// Delay is the worst-case time a bit waits in the regulator.
	Delay float64
	// Output is the envelope of the shaped traffic: conformant to the
	// bucket AND no more than the (delayed) input could supply.
	Output traffic.Descriptor
}

// Options tunes the numeric search. The zero value selects defaults.
type Options struct {
	// GridPoints is the fallback search resolution (default 128).
	GridPoints int
	// MaxHorizon bounds the busy-period search (default 4 s).
	MaxHorizon float64
}

func (o Options) withDefaults() Options {
	if o.GridPoints <= 0 {
		o.GridPoints = 128
	}
	if o.MaxHorizon <= 0 {
		o.MaxHorizon = 4
	}
	return o
}

// ErrUnstable indicates the token rate cannot sustain the input.
var ErrUnstable = errors.New("shaper: token rate below the input's long-term rate")

// initialHorizon seeds the doubling busy-period search (seconds), matching
// the ATM mux default.
const initialHorizon = 16e-3

// Analyze bounds a (σ, ρ) regulator fed by in: the worst-case shaping delay
// is the largest time by which the bucket constraint lags the arrivals,
//
//	d = max_t ( A(t) − σ )/ρ − t   over the regulator's busy period,
//
// and the output conforms to the bucket while never exceeding what the
// delayed input supplies.
func Analyze(in traffic.Descriptor, spec Spec, opts Options) (Result, error) {
	if in == nil {
		return Result{}, errors.New("shaper: Analyze requires an input descriptor")
	}
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	opts = opts.withDefaults()
	if in.LongTermRate() >= spec.RhoBps*(1-units.RelTol) {
		return Result{}, fmt.Errorf("%w: rho=%v bps, input=%v bps", ErrUnstable, spec.RhoBps, in.LongTermRate())
	}

	// Delay = sup_t (A(t) − σ)/ρ − t. The supremum sits inside the first
	// regulator busy period; scanning a doubling horizon and stopping once
	// the maximum is stable AND the bucket has caught up at the end is a
	// sound over-approximation of that search.
	var delay float64
	found := false
	prev := -1.0
	for horizon := initialHorizon; horizon <= opts.MaxHorizon*2; horizon *= 2 {
		grid := traffic.MergeGrids(horizon, traffic.Grid(in, horizon, opts.GridPoints), []float64{traffic.GridNudge})
		for _, t := range grid {
			if lag := (in.Bits(t)-spec.SigmaBits)/spec.RhoBps - t; lag > delay {
				delay = lag
			}
		}
		caughtUp := in.Bits(horizon) <= spec.SigmaBits+spec.RhoBps*horizon+units.Eps
		if caughtUp && units.AlmostEq(delay, prev) {
			found = true
			break
		}
		prev = delay
	}
	if !found {
		return Result{}, fmt.Errorf("%w: lag did not stabilize within %v s", ErrUnstable, opts.MaxHorizon)
	}
	if delay < 0 {
		delay = 0
	}

	bucket, err := traffic.NewLeakyBucket(spec.SigmaBits, spec.RhoBps, 0)
	if err != nil {
		return Result{}, fmt.Errorf("shaper: building bucket envelope: %w", err)
	}
	delayed, err := traffic.NewDelayed(in, delay, 0)
	if err != nil {
		return Result{}, fmt.Errorf("shaper: building delayed envelope: %w", err)
	}
	out, err := traffic.NewMin(bucket, delayed)
	if err != nil {
		return Result{}, fmt.Errorf("shaper: combining envelopes: %w", err)
	}
	return Result{Delay: delay, Output: out}, nil
}

// Sim is the DES counterpart: a token-bucket regulator releasing frames in
// FIFO order as tokens accrue. It tracks virtual bucket state exactly, so
// conformant traffic passes untouched.
type Sim struct {
	sim     *des.Simulator
	spec    Spec
	release func(id string, bits, origin float64)

	tokens     float64
	lastUpdate float64
	// nextFree is the earliest time the next queued frame may be released
	// (FIFO: releases are serialized).
	nextFree float64
}

// NewSim builds a regulator; release receives each frame when it conforms.
func NewSim(simulator *des.Simulator, spec Spec, release func(id string, bits, origin float64)) (*Sim, error) {
	if simulator == nil {
		return nil, errors.New("shaper: Sim requires a simulator")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if release == nil {
		return nil, errors.New("shaper: Sim requires a release callback")
	}
	return &Sim{sim: simulator, spec: spec, release: release, tokens: spec.SigmaBits}, nil
}

// Submit accepts one frame; it is released as soon as the bucket holds
// enough tokens (immediately when conformant).
func (s *Sim) Submit(id string, bits, origin float64) error {
	if bits <= 0 {
		return fmt.Errorf("shaper: frame size %v must be positive", bits)
	}
	if bits > s.spec.SigmaBits {
		return fmt.Errorf("shaper: frame of %v bits can never conform to a %v-bit bucket", bits, s.spec.SigmaBits)
	}
	now := s.sim.Now()
	// Advance bucket state to the release front.
	at := now
	if s.nextFree > at {
		at = s.nextFree
	}
	tokensAt := s.tokens + (at-s.lastUpdate)*s.spec.RhoBps
	if tokensAt > s.spec.SigmaBits {
		tokensAt = s.spec.SigmaBits
	}
	if tokensAt < bits {
		at += (bits - tokensAt) / s.spec.RhoBps
		tokensAt = bits
	}
	// Commit the new bucket state after this release.
	s.tokens = tokensAt - bits
	s.lastUpdate = at
	s.nextFree = at
	if _, err := s.sim.Schedule(at, func() { s.release(id, bits, origin) }); err != nil {
		return fmt.Errorf("shaper: scheduling release: %w", err)
	}
	return nil
}
