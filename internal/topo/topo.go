// Package topo models the ATM-based heterogeneous network architecture of
// Section 3.1: FDDI rings populated by hosts, one interface device per ring,
// and a backbone of fully meshed ATM switches. It derives the server path a
// connection traverses (Figure 2) — which FIFO ports it shares, how many
// constant-delay stages it crosses — for the analysis engine in
// internal/core.
package topo

import (
	"fmt"

	"fafnet/internal/atm"
	"fafnet/internal/fddi"
	"fafnet/internal/ifdev"
)

// HostID identifies Host_{i,j}: host j on ring i.
type HostID struct {
	Ring, Index int
}

// String implements fmt.Stringer ("H1.2" is host 2 on ring 1).
func (h HostID) String() string { return fmt.Sprintf("H%d.%d", h.Ring, h.Index) }

// PortID names one FIFO output port (a contention point) in the network.
type PortID string

// Config describes a network to build.
type Config struct {
	// NumRings is the number of FDDI segments; each attaches to its own
	// interface device.
	NumRings int
	// HostsPerRing is the number of hosts L_i on every ring.
	HostsPerRing int
	// Ring configures every FDDI segment.
	Ring fddi.RingConfig
	// Rings, when non-empty, overrides Ring per segment (heterogeneous
	// networks: mixed TTRTs, mixed media rates, or 802.5 segments via
	// tokenring.RingConfig.SimConfig()). Its length must equal NumRings.
	Rings []fddi.RingConfig
	// NumSwitches is the number of backbone switches, fully meshed. Ring i
	// attaches (through its interface device) to switch i mod NumSwitches.
	NumSwitches int
	// LinkBps is the wire rate of every ATM link.
	LinkBps float64
	// LinkPropagation is the propagation delay of every ATM link.
	LinkPropagation float64
	// ID configures every interface device.
	ID ifdev.Params
	// Switch configures every backbone switch.
	Switch atm.SwitchParams
}

// Section 6 evaluation constants.
const (
	// defaultTTRT is the evaluation rings' target token rotation time
	// (seconds); real-time FDDI deployments tuned the TTRT low.
	defaultTTRT = 4e-3
	// defaultRingOverhead is the per-rotation protocol overhead Δ (seconds).
	defaultRingOverhead = 0.25e-3
	// defaultLinkPropagation is the propagation delay of every ATM link
	// (seconds).
	defaultLinkPropagation = 10e-6
)

// Default returns the evaluation network of Section 6: three FDDI rings with
// four hosts each, three interface devices, and three switches on 155 Mb/s
// links. The rings run a 4 ms TTRT, which keeps the two-MAC protocol floor
// (≈2·TTRT per ring) well under the evaluation's deadlines.
func Default() Config {
	ring := fddi.RingConfig{
		BandwidthBps: fddi.DefaultBandwidthBps,
		TTRT:         defaultTTRT,
		Overhead:     defaultRingOverhead,
		HopLatency:   fddi.DefaultHopLatency,
	}
	return Config{
		NumRings:        3,
		HostsPerRing:    4,
		Ring:            ring,
		NumSwitches:     3,
		LinkBps:         atm.DefaultLinkBps,
		LinkPropagation: defaultLinkPropagation,
		ID:              ifdev.DefaultParams(),
		Switch:          atm.DefaultSwitchParams(),
	}
}

// Validate reports whether the configuration is buildable.
func (c Config) Validate() error {
	switch {
	case c.NumRings < 1:
		return fmt.Errorf("topo: need at least 1 ring, got %d", c.NumRings)
	case c.HostsPerRing < 1:
		return fmt.Errorf("topo: need at least 1 host per ring, got %d", c.HostsPerRing)
	case c.NumSwitches < 1:
		return fmt.Errorf("topo: need at least 1 switch, got %d", c.NumSwitches)
	case c.LinkBps <= 0:
		return fmt.Errorf("topo: link rate %v must be positive", c.LinkBps)
	case c.LinkPropagation < 0:
		return fmt.Errorf("topo: link propagation %v must be negative-free", c.LinkPropagation)
	}
	if err := c.Ring.Validate(); err != nil {
		return fmt.Errorf("topo: ring config: %w", err)
	}
	if len(c.Rings) > 0 {
		if len(c.Rings) != c.NumRings {
			return fmt.Errorf("topo: %d per-ring configs for %d rings", len(c.Rings), c.NumRings)
		}
		for i, rc := range c.Rings {
			if err := rc.Validate(); err != nil {
				return fmt.Errorf("topo: ring %d config: %w", i, err)
			}
		}
	}
	if err := c.ID.Validate(); err != nil {
		return fmt.Errorf("topo: interface device config: %w", err)
	}
	if err := c.Switch.Validate(); err != nil {
		return fmt.Errorf("topo: switch config: %w", err)
	}
	return nil
}

// Network is a built topology with per-ring synchronous-bandwidth
// bookkeeping. It is not safe for concurrent use.
type Network struct {
	cfg   Config
	rings []*fddi.Ring
}

// NewNetwork validates cfg and builds the topology.
func NewNetwork(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg}
	for i := 0; i < cfg.NumRings; i++ {
		r, err := fddi.NewRing(cfg.ringConfig(i))
		if err != nil {
			return nil, fmt.Errorf("topo: building ring %d: %w", i, err)
		}
		n.rings = append(n.rings, r)
	}
	return n, nil
}

// ringConfig resolves the configuration of ring i.
func (c Config) ringConfig(i int) fddi.RingConfig {
	if len(c.Rings) > 0 {
		return c.Rings[i]
	}
	return c.Ring
}

// RingConfig returns the configuration of ring i, honoring per-ring
// overrides.
func (n *Network) RingConfig(i int) fddi.RingConfig { return n.cfg.ringConfig(i) }

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// NumRings returns the number of FDDI segments.
func (n *Network) NumRings() int { return len(n.rings) }

// Ring returns the allocation bookkeeping for ring i.
func (n *Network) Ring(i int) *fddi.Ring { return n.rings[i] }

// SwitchOf returns the backbone switch the given ring's interface device
// attaches to.
func (n *Network) SwitchOf(ring int) int { return ring % n.cfg.NumSwitches }

// PortCapacity returns the payload-effective service rate of every FIFO
// port in the backbone.
func (n *Network) PortCapacity() float64 { return atm.PayloadCapacity(n.cfg.LinkBps) }

// ValidHost reports whether h exists in the network.
func (n *Network) ValidHost(h HostID) bool {
	return h.Ring >= 0 && h.Ring < n.cfg.NumRings && h.Index >= 0 && h.Index < n.cfg.HostsPerRing
}

// Hosts returns every host in the network, ring-major.
func (n *Network) Hosts() []HostID {
	hosts := make([]HostID, 0, n.cfg.NumRings*n.cfg.HostsPerRing)
	for r := 0; r < n.cfg.NumRings; r++ {
		for j := 0; j < n.cfg.HostsPerRing; j++ {
			hosts = append(hosts, HostID{Ring: r, Index: j})
		}
	}
	return hosts
}

// Port naming. Each port is one contention point analyzed as a FIFO
// multiplexer.
func idUplinkPort(ring int) PortID          { return PortID(fmt.Sprintf("id%d:up", ring)) }
func interSwitchPort(a, b int) PortID       { return PortID(fmt.Sprintf("sw%d->sw%d", a, b)) }
func switchDownlinkPort(s, ring int) PortID { return PortID(fmt.Sprintf("sw%d->id%d", s, ring)) }

// Route is the decomposed path of one connection (Figure 2): the ordered
// FIFO ports it shares with other connections, plus the total of all
// constant-delay stages (delay lines, interface-device stages, switch
// constant stages, link propagation). Constant-delay servers do not change
// traffic envelopes (Eqs. 13, 17, 19), so only the ports matter for envelope
// propagation.
type Route struct {
	// Src and Dst are the endpoints.
	Src, Dst HostID
	// CrossesBackbone is false only when both endpoints share a ring.
	CrossesBackbone bool
	// Ports lists the shared FIFO output ports in traversal order:
	// ID_S uplink, inter-switch port (when the rings sit on different
	// switches), switch downlink toward ID_R.
	Ports []PortID
	// ConstantDelay sums every fixed-latency stage on the path.
	ConstantDelay float64
	// SwitchesCrossed counts backbone switches on the path.
	SwitchesCrossed int
}

// Route computes the path from src to dst. Routing in the backbone is the
// direct switch-to-switch link (the paper adopts existing routing solutions;
// a full mesh makes the shortest path unique).
func (n *Network) Route(src, dst HostID) (Route, error) {
	if !n.ValidHost(src) {
		return Route{}, fmt.Errorf("topo: unknown source host %v", src)
	}
	if !n.ValidHost(dst) {
		return Route{}, fmt.Errorf("topo: unknown destination host %v", dst)
	}
	if src == dst {
		return Route{}, fmt.Errorf("topo: source and destination are both %v", src)
	}

	r := Route{Src: src, Dst: dst}
	if src.Ring == dst.Ring {
		// Same segment: sender MAC, then the frame propagates around the
		// ring to the destination host directly.
		r.ConstantDelay = n.ringHops(src.Ring, hostStation(src), hostStation(dst))
		return r, nil
	}

	r.CrossesBackbone = true
	sa, sb := n.SwitchOf(src.Ring), n.SwitchOf(dst.Ring)
	r.Ports = append(r.Ports, idUplinkPort(src.Ring))
	links := 2 // ID→switch and switch→ID
	if sa != sb {
		r.Ports = append(r.Ports, interSwitchPort(sa, sb))
		links++
		r.SwitchesCrossed = 2
	} else {
		r.SwitchesCrossed = 1
	}
	r.Ports = append(r.Ports, switchDownlinkPort(sb, dst.Ring))

	r.ConstantDelay = n.ringHops(src.Ring, hostStation(src), n.idStation()) + // Delay_Line on FDDI_S
		n.cfg.ID.SenderConstantDelay() +
		float64(links)*n.cfg.LinkPropagation +
		float64(r.SwitchesCrossed)*n.cfg.Switch.ConstantDelay() +
		n.cfg.ID.ReceiverConstantDelay() +
		n.ringHops(dst.Ring, n.idStation(), hostStation(dst)) // Delay_Line on FDDI_R
	return r, nil
}

// hostStation returns the ring-station index of a host: hosts occupy
// stations 0..L−1 and the interface device sits at station L.
func hostStation(h HostID) int { return h.Index }

// idStation returns the station index of the interface device on its ring.
func (n *Network) idStation() int { return n.cfg.HostsPerRing }

// ringHops returns the bit propagation delay from station a to station b
// around ring (the Delay_Line bound of Eq. 14).
func (n *Network) ringHops(ring, a, b int) float64 {
	stations := n.cfg.HostsPerRing + 1
	hops := b - a
	if hops < 0 {
		hops += stations
	}
	return float64(hops) * n.RingConfig(ring).HopLatency
}

// AllPorts enumerates every FIFO port that can appear on a route, useful for
// exhaustive audits and the packet-level simulator's wiring.
func (n *Network) AllPorts() []PortID {
	var ports []PortID
	for r := 0; r < n.cfg.NumRings; r++ {
		ports = append(ports, idUplinkPort(r))
	}
	for a := 0; a < n.cfg.NumSwitches; a++ {
		for b := 0; b < n.cfg.NumSwitches; b++ {
			if a != b {
				ports = append(ports, interSwitchPort(a, b))
			}
		}
	}
	for r := 0; r < n.cfg.NumRings; r++ {
		ports = append(ports, switchDownlinkPort(n.SwitchOf(r), r))
	}
	return ports
}
