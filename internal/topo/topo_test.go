package topo

import (
	"testing"

	"fafnet/internal/atm"
	"fafnet/internal/units"
)

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"default valid", func(*Config) {}, false},
		{"no rings", func(c *Config) { c.NumRings = 0 }, true},
		{"no hosts", func(c *Config) { c.HostsPerRing = 0 }, true},
		{"no switches", func(c *Config) { c.NumSwitches = 0 }, true},
		{"zero link rate", func(c *Config) { c.LinkBps = 0 }, true},
		{"negative propagation", func(c *Config) { c.LinkPropagation = -1 }, true},
		{"bad ring", func(c *Config) { c.Ring.TTRT = 0 }, true},
		{"bad id", func(c *Config) { c.ID.InputPortDelay = -1 }, true},
		{"bad switch", func(c *Config) { c.Switch.FabricDelay = -1 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := Default()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestDefaultMatchesPaper(t *testing.T) {
	cfg := Default()
	if cfg.NumRings != 3 || cfg.HostsPerRing != 4 || cfg.NumSwitches != 3 {
		t.Errorf("default topology %d rings × %d hosts, %d switches; paper uses 3×4, 3",
			cfg.NumRings, cfg.HostsPerRing, cfg.NumSwitches)
	}
	if cfg.LinkBps != 155e6 {
		t.Errorf("link rate %v, paper uses 155 Mb/s", cfg.LinkBps)
	}
}

func TestNetworkBasics(t *testing.T) {
	n, err := NewNetwork(Default())
	if err != nil {
		t.Fatal(err)
	}
	if n.NumRings() != 3 {
		t.Errorf("NumRings = %d", n.NumRings())
	}
	if len(n.Hosts()) != 12 {
		t.Errorf("Hosts = %d, want 12", len(n.Hosts()))
	}
	if !n.ValidHost(HostID{Ring: 2, Index: 3}) {
		t.Error("H2.3 should be valid")
	}
	for _, h := range []HostID{{Ring: 3, Index: 0}, {Ring: 0, Index: 4}, {Ring: -1, Index: 0}} {
		if n.ValidHost(h) {
			t.Errorf("%v should be invalid", h)
		}
	}
	wantCap := atm.PayloadCapacity(155e6)
	if got := n.PortCapacity(); !units.AlmostEq(got, wantCap) {
		t.Errorf("PortCapacity = %v, want %v", got, wantCap)
	}
	if got := (HostID{Ring: 1, Index: 2}).String(); got != "H1.2" {
		t.Errorf("String = %q", got)
	}
}

func TestRouteCrossBackbone(t *testing.T) {
	n, err := NewNetwork(Default())
	if err != nil {
		t.Fatal(err)
	}
	r, err := n.Route(HostID{Ring: 0, Index: 1}, HostID{Ring: 2, Index: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !r.CrossesBackbone {
		t.Error("cross-ring route should cross the backbone")
	}
	want := []PortID{"id0:up", "sw0->sw2", "sw2->id2"}
	if len(r.Ports) != len(want) {
		t.Fatalf("Ports = %v, want %v", r.Ports, want)
	}
	for i := range want {
		if r.Ports[i] != want[i] {
			t.Errorf("Ports[%d] = %v, want %v", i, r.Ports[i], want[i])
		}
	}
	if r.SwitchesCrossed != 2 {
		t.Errorf("SwitchesCrossed = %d, want 2", r.SwitchesCrossed)
	}
	if r.ConstantDelay <= 0 {
		t.Errorf("ConstantDelay = %v, want positive", r.ConstantDelay)
	}
}

func TestRouteSameSwitch(t *testing.T) {
	// 2 rings but 1 switch: both interface devices hang off switch 0.
	cfg := Default()
	cfg.NumRings = 2
	cfg.NumSwitches = 1
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := n.Route(HostID{Ring: 0, Index: 0}, HostID{Ring: 1, Index: 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []PortID{"id0:up", "sw0->id1"}
	if len(r.Ports) != 2 || r.Ports[0] != want[0] || r.Ports[1] != want[1] {
		t.Errorf("Ports = %v, want %v", r.Ports, want)
	}
	if r.SwitchesCrossed != 1 {
		t.Errorf("SwitchesCrossed = %d, want 1", r.SwitchesCrossed)
	}
}

func TestRouteSameRing(t *testing.T) {
	n, err := NewNetwork(Default())
	if err != nil {
		t.Fatal(err)
	}
	r, err := n.Route(HostID{Ring: 1, Index: 0}, HostID{Ring: 1, Index: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.CrossesBackbone || len(r.Ports) != 0 {
		t.Errorf("same-ring route should not touch the backbone: %+v", r)
	}
	// Two hops at the ring's hop latency.
	want := 2 * Default().Ring.HopLatency
	if !units.AlmostEq(r.ConstantDelay, want) {
		t.Errorf("ConstantDelay = %v, want %v", r.ConstantDelay, want)
	}
}

func TestRouteErrors(t *testing.T) {
	n, err := NewNetwork(Default())
	if err != nil {
		t.Fatal(err)
	}
	a := HostID{Ring: 0, Index: 0}
	if _, err := n.Route(a, a); err == nil {
		t.Error("self route should fail")
	}
	if _, err := n.Route(HostID{Ring: 9, Index: 0}, a); err == nil {
		t.Error("unknown source should fail")
	}
	if _, err := n.Route(a, HostID{Ring: 0, Index: 9}); err == nil {
		t.Error("unknown destination should fail")
	}
}

func TestRouteConstantDelayComponents(t *testing.T) {
	cfg := Default()
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := HostID{Ring: 0, Index: 1}
	dst := HostID{Ring: 1, Index: 2}
	r, err := n.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-computed: delay line S: hosts 0..3, ID at station 4; from host 1
	// to station 4 = 3 hops. Delay line R: from station 4 to host 2 = 3 hops
	// (wrap: 4→0→1→2). 3 links, 2 switches.
	want := 3*cfg.Ring.HopLatency +
		cfg.ID.SenderConstantDelay() +
		3*cfg.LinkPropagation +
		2*cfg.Switch.ConstantDelay() +
		cfg.ID.ReceiverConstantDelay() +
		3*cfg.Ring.HopLatency
	if !units.AlmostEq(r.ConstantDelay, want) {
		t.Errorf("ConstantDelay = %v, want %v", r.ConstantDelay, want)
	}
}

func TestAllPorts(t *testing.T) {
	n, err := NewNetwork(Default())
	if err != nil {
		t.Fatal(err)
	}
	ports := n.AllPorts()
	// 3 uplinks + 6 directed inter-switch + 3 downlinks.
	if len(ports) != 12 {
		t.Fatalf("AllPorts = %d entries, want 12: %v", len(ports), ports)
	}
	seen := map[PortID]bool{}
	for _, p := range ports {
		if seen[p] {
			t.Errorf("duplicate port %v", p)
		}
		seen[p] = true
	}
	// Every port on every route must be enumerated.
	hosts := n.Hosts()
	for _, s := range hosts {
		for _, d := range hosts {
			if s == d {
				continue
			}
			r, err := n.Route(s, d)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range r.Ports {
				if !seen[p] {
					t.Errorf("route %v→%v uses unenumerated port %v", s, d, p)
				}
			}
		}
	}
}
