package des

import (
	"math"
	"testing"
)

// sampleMean draws n variates and returns their mean.
func sampleMean(n int, draw func() float64) float64 {
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += draw()
	}
	return sum / float64(n)
}

func TestGammaMoments(t *testing.T) {
	const n = 20000
	for _, tc := range []struct{ shape, scale float64 }{
		{0.5, 2.0}, {1.0, 1.5}, {4.0, 0.25}, {9.0, 3.0},
	} {
		g := NewRNG(7)
		mean := sampleMean(n, func() float64 { return g.Gamma(tc.shape, tc.scale) })
		want := tc.shape * tc.scale
		if math.Abs(mean-want) > 0.05*want {
			t.Errorf("Gamma(%v,%v) mean = %v, want ≈ %v", tc.shape, tc.scale, mean, want)
		}
	}
}

func TestWeibullMoments(t *testing.T) {
	const n = 20000
	for _, tc := range []struct{ shape, scale float64 }{
		{0.7, 1.0}, {1.0, 2.0}, {2.5, 0.5},
	} {
		g := NewRNG(11)
		mean := sampleMean(n, func() float64 { return g.Weibull(tc.shape, tc.scale) })
		want := tc.scale * math.Gamma(1+1/tc.shape)
		if math.Abs(mean-want) > 0.05*want {
			t.Errorf("Weibull(%v,%v) mean = %v, want ≈ %v", tc.shape, tc.scale, mean, want)
		}
	}
}

func TestParetoMomentsAndSupport(t *testing.T) {
	const n = 50000
	g := NewRNG(13)
	alpha, xm := 2.5, 1.0
	min := math.Inf(1)
	mean := sampleMean(n, func() float64 {
		v := g.Pareto(alpha, xm)
		if v < min {
			min = v
		}
		return v
	})
	if min < xm {
		t.Errorf("Pareto produced %v below xm=%v", min, xm)
	}
	want := alpha * xm / (alpha - 1)
	if math.Abs(mean-want) > 0.1*want {
		t.Errorf("Pareto(%v,%v) mean = %v, want ≈ %v", alpha, xm, mean, want)
	}
}

func TestLognormalMoments(t *testing.T) {
	const n = 30000
	g := NewRNG(17)
	mu, sigma := 0.5, 0.8
	mean := sampleMean(n, func() float64 { return g.Lognormal(mu, sigma) })
	want := math.Exp(mu + sigma*sigma/2)
	if math.Abs(mean-want) > 0.07*want {
		t.Errorf("Lognormal(%v,%v) mean = %v, want ≈ %v", mu, sigma, mean, want)
	}
}

func TestVariatesDeterministic(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if x, y := a.Gamma(0.7, 2), b.Gamma(0.7, 2); x != y {
			t.Fatalf("draw %d: gamma diverged: %v vs %v", i, x, y)
		}
		if x, y := a.Pareto(1.5, 3), b.Pareto(1.5, 3); x != y {
			t.Fatalf("draw %d: pareto diverged: %v vs %v", i, x, y)
		}
	}
}

func TestVariatesRejectBadParameters(t *testing.T) {
	g := NewRNG(1)
	for name, f := range map[string]func(){
		"gamma":     func() { g.Gamma(0, 1) },
		"weibull":   func() { g.Weibull(-1, 1) },
		"pareto":    func() { g.Pareto(1, 0) },
		"lognormal": func() { g.Lognormal(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted invalid parameters", name)
				}
			}()
			f()
		}()
	}
}

func TestRenewalProcessRates(t *testing.T) {
	rng := NewRNG(23)
	gp, err := NewGammaProcess(rng, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	if gp.Rate() != 50 {
		t.Errorf("Rate = %v", gp.Rate())
	}
	mean := sampleMean(20000, gp.Next)
	if want := 1.0 / 50; math.Abs(mean-want) > 0.05*want {
		t.Errorf("Gamma process mean gap = %v, want ≈ %v", mean, want)
	}

	wp, err := NewWeibullProcess(rng, 20, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	mean = sampleMean(20000, wp.Next)
	if want := 1.0 / 20; math.Abs(mean-want) > 0.05*want {
		t.Errorf("Weibull process mean gap = %v, want ≈ %v", mean, want)
	}

	if _, err := NewGammaProcess(nil, 1, 1); err == nil {
		t.Error("nil RNG accepted")
	}
	if _, err := NewWeibullProcess(rng, 0, 1); err == nil {
		t.Error("zero rate accepted")
	}
}
