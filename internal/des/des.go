// Package des provides the discrete-event simulation kernel shared by the
// admission-level simulator (Section 6 of the paper) and the packet-level
// FDDI/ATM simulators: an event calendar with a monotonic clock, plus seeded
// random variates for Poisson arrival processes and exponential lifetimes.
package des

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Event is a scheduled callback. Fire runs when the simulation clock reaches
// the event's time.
type Event struct {
	// Time is the absolute simulation time (seconds) at which Fire runs.
	Time float64
	// Fire is the event action. It may schedule further events.
	Fire func()

	seq   uint64 // tie-breaker: FIFO order among equal-time events
	index int    // heap bookkeeping; -1 once removed
}

// eventQueue implements heap.Interface ordered by (Time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].Time != q[j].Time {
		return q[i].Time < q[j].Time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Simulator is a sequential discrete-event simulator. The zero value is not
// usable; construct with NewSimulator. Simulator is not safe for concurrent
// use: all scheduling must happen from event callbacks or between Run calls.
type Simulator struct {
	now    float64
	queue  eventQueue
	seq    uint64
	halted bool
}

// NewSimulator returns a simulator with the clock at zero.
func NewSimulator() *Simulator {
	return &Simulator{}
}

// Now returns the current simulation time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Pending returns the number of events waiting in the calendar.
func (s *Simulator) Pending() int { return s.queue.Len() }

// ErrPastEvent is returned when an event is scheduled before the current
// simulation time.
var ErrPastEvent = errors.New("des: event scheduled in the past")

// Schedule registers fire to run at absolute time t and returns the event
// handle (usable with Cancel). It returns ErrPastEvent if t precedes the
// current clock.
func (s *Simulator) Schedule(t float64, fire func()) (*Event, error) {
	if t < s.now {
		return nil, fmt.Errorf("%w: t=%v before now=%v", ErrPastEvent, t, s.now)
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, fmt.Errorf("des: event time %v is not finite", t)
	}
	ev := &Event{Time: t, Fire: fire, seq: s.seq}
	s.seq++
	heap.Push(&s.queue, ev)
	return ev, nil
}

// After registers fire to run delay seconds from now.
func (s *Simulator) After(delay float64, fire func()) (*Event, error) {
	return s.Schedule(s.now+delay, fire)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op and reports false.
func (s *Simulator) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 || ev.index >= s.queue.Len() || s.queue[ev.index] != ev {
		return false
	}
	heap.Remove(&s.queue, ev.index)
	ev.index = -1
	return true
}

// Halt stops the current Run after the event being processed returns.
func (s *Simulator) Halt() { s.halted = true }

// Run processes events in time order until the calendar is empty, the clock
// would pass until (exclusive upper bound; events at exactly until still
// fire), or Halt is called. It returns the number of events processed.
func (s *Simulator) Run(until float64) int {
	s.halted = false
	processed := 0
	for s.queue.Len() > 0 && !s.halted {
		next := s.queue[0]
		if next.Time > until {
			break
		}
		heap.Pop(&s.queue)
		next.index = -1
		s.now = next.Time
		if next.Fire != nil {
			next.Fire()
		}
		processed++
	}
	if s.now < until && s.queue.Len() == 0 {
		// Advance the clock so successive bounded runs compose naturally.
		s.now = until
	}
	return processed
}

// Step processes exactly one event (if any) and reports whether one fired.
func (s *Simulator) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	next := heap.Pop(&s.queue).(*Event)
	next.index = -1
	s.now = next.Time
	if next.Fire != nil {
		next.Fire()
	}
	return true
}

// RNG wraps a seeded deterministic random source with the variate generators
// the experiments need. It is not safe for concurrent use.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Exp returns an exponential variate with the given mean (seconds).
// mean must be positive.
func (g *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		panic(fmt.Sprintf("des: exponential mean %v must be positive", mean))
	}
	return g.r.ExpFloat64() * mean
}

// Uniform returns a variate uniform on [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic(fmt.Sprintf("des: uniform bounds inverted: [%v, %v)", lo, hi))
	}
	return lo + g.r.Float64()*(hi-lo)
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Float64 returns a uniform variate in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// PoissonProcess generates inter-arrival times for a Poisson process of
// intensity λ (events per second — a frequency, not a data rate) using the
// wrapped RNG.
type PoissonProcess struct {
	rng    *RNG
	lambda float64
}

// NewPoissonProcess returns a Poisson process with intensity lambda in events
// per second; lambda must be positive.
func NewPoissonProcess(rng *RNG, lambda float64) (*PoissonProcess, error) {
	if lambda <= 0 {
		return nil, fmt.Errorf("des: Poisson intensity %v must be positive", lambda)
	}
	if rng == nil {
		return nil, errors.New("des: Poisson process requires an RNG")
	}
	return &PoissonProcess{rng: rng, lambda: lambda}, nil
}

// Next returns the time to the next arrival (an Exp(1/λ) variate).
func (p *PoissonProcess) Next() float64 { return p.rng.Exp(1 / p.lambda) }

// Rate returns the configured arrival intensity λ.
func (p *PoissonProcess) Rate() float64 { return p.lambda }
