package des

import (
	"errors"
	"fmt"
	"math"
)

// This file extends the RNG with the heavy-tailed and shape-controlled
// variates the workload layer needs (Gamma/Weibull interarrivals,
// Pareto/lognormal lifetimes), plus renewal arrival processes mirroring
// PoissonProcess. All draws are deterministic functions of the seed and the
// call sequence, which is what makes workload generation reproducible.

// Normal returns a standard normal variate (mean 0, standard deviation 1).
func (g *RNG) Normal() float64 { return g.r.NormFloat64() }

// gammaSqueeze is the fast-acceptance coefficient of the Marsaglia–Tsang
// squeeze step (their constant 0.0331).
const gammaSqueeze = 0.0331

// Gamma returns a Gamma(shape, scale) variate (mean shape·scale) using the
// Marsaglia–Tsang method, with the standard power boost for shape < 1.
// Both parameters must be positive.
func (g *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic(fmt.Sprintf("des: gamma parameters (shape=%v, scale=%v) must be positive", shape, scale))
	}
	if shape < 1 {
		// Boost: X ~ Gamma(shape+1), U^(1/shape) thins it down to shape.
		u := g.r.Float64()
		for u == 0 {
			u = g.r.Float64()
		}
		return g.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := g.r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.r.Float64()
		if u < 1-gammaSqueeze*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Weibull returns a Weibull(shape, scale) variate via inversion:
// scale·(−ln U)^(1/shape). Mean is scale·Γ(1+1/shape). Both parameters must
// be positive.
func (g *RNG) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic(fmt.Sprintf("des: weibull parameters (shape=%v, scale=%v) must be positive", shape, scale))
	}
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// Pareto returns a (type I) Pareto variate with tail index alpha and minimum
// xm: xm·U^(−1/alpha). The mean alpha·xm/(alpha−1) is finite only for
// alpha > 1. Both parameters must be positive.
func (g *RNG) Pareto(alpha, xm float64) float64 {
	if alpha <= 0 || xm <= 0 {
		panic(fmt.Sprintf("des: pareto parameters (alpha=%v, xm=%v) must be positive", alpha, xm))
	}
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return xm * math.Pow(u, -1/alpha)
}

// Lognormal returns exp(mu + sigma·N) with N standard normal. Its mean is
// exp(mu + sigma²/2). sigma must be positive.
func (g *RNG) Lognormal(mu, sigma float64) float64 {
	if sigma <= 0 {
		panic(fmt.Sprintf("des: lognormal sigma %v must be positive", sigma))
	}
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// GammaProcess generates interarrival times drawn i.i.d. from a
// Gamma(shape, scale) renewal process of mean rate lambda. shape controls
// burstiness: shape = 1 degenerates to Poisson, shape > 1 is smoother than
// Poisson (CV < 1), shape < 1 is burstier (CV > 1).
type GammaProcess struct {
	rng    *RNG
	shape  float64
	scale  float64
	lambda float64
}

// NewGammaProcess returns a Gamma renewal process with mean rate lambda
// arrivals per second and the given shape; both must be positive. The scale
// is derived so the mean interarrival is exactly 1/lambda.
func NewGammaProcess(rng *RNG, lambda, shape float64) (*GammaProcess, error) {
	if rng == nil {
		return nil, errors.New("des: Gamma process requires an RNG")
	}
	if lambda <= 0 || shape <= 0 {
		return nil, fmt.Errorf("des: Gamma process parameters (lambda=%v, shape=%v) must be positive", lambda, shape)
	}
	return &GammaProcess{rng: rng, shape: shape, scale: 1 / (lambda * shape), lambda: lambda}, nil
}

// Next returns the time to the next arrival.
func (p *GammaProcess) Next() float64 { return p.rng.Gamma(p.shape, p.scale) }

// Rate returns the configured mean arrival rate λ.
func (p *GammaProcess) Rate() float64 { return p.lambda }

// WeibullProcess generates interarrival times drawn i.i.d. from a
// Weibull(shape, scale) renewal process of mean rate lambda. shape < 1
// yields heavy-tailed gaps (bursts separated by long silences), shape > 1
// near-periodic arrivals.
type WeibullProcess struct {
	rng    *RNG
	shape  float64
	scale  float64
	lambda float64
}

// NewWeibullProcess returns a Weibull renewal process with mean rate lambda
// arrivals per second and the given shape; both must be positive. The scale
// is derived through Γ(1+1/shape) so the mean interarrival is exactly
// 1/lambda.
func NewWeibullProcess(rng *RNG, lambda, shape float64) (*WeibullProcess, error) {
	if rng == nil {
		return nil, errors.New("des: Weibull process requires an RNG")
	}
	if lambda <= 0 || shape <= 0 {
		return nil, fmt.Errorf("des: Weibull process parameters (lambda=%v, shape=%v) must be positive", lambda, shape)
	}
	return &WeibullProcess{rng: rng, shape: shape, scale: 1 / (lambda * math.Gamma(1+1/shape)), lambda: lambda}, nil
}

// Next returns the time to the next arrival.
func (p *WeibullProcess) Next() float64 { return p.rng.Weibull(p.shape, p.scale) }

// Rate returns the configured mean arrival rate λ.
func (p *WeibullProcess) Rate() float64 { return p.lambda }
