package des

import (
	"errors"
	"math"
	"sort"
	"testing"
)

func TestScheduleAndRunInOrder(t *testing.T) {
	s := NewSimulator()
	var order []float64
	for _, tm := range []float64{3, 1, 2, 5, 4} {
		tm := tm
		if _, err := s.Schedule(tm, func() { order = append(order, tm) }); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Run(10); n != 5 {
		t.Fatalf("Run processed %d events, want 5", n)
	}
	if !sort.Float64sAreSorted(order) {
		t.Errorf("events fired out of order: %v", order)
	}
	if s.Now() != 10 {
		t.Errorf("clock = %v, want 10 (advanced to until)", s.Now())
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	s := NewSimulator()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := s.Schedule(1.0, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(2)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestSchedulePastRejected(t *testing.T) {
	s := NewSimulator()
	if _, err := s.Schedule(5, nil); err != nil {
		t.Fatal(err)
	}
	s.Run(10)
	_, err := s.Schedule(1, nil)
	if !errors.Is(err, ErrPastEvent) {
		t.Errorf("scheduling in the past: err = %v, want ErrPastEvent", err)
	}
}

func TestScheduleNonFiniteRejected(t *testing.T) {
	s := NewSimulator()
	if _, err := s.Schedule(math.NaN(), nil); err == nil {
		t.Error("NaN time should be rejected")
	}
	if _, err := s.Schedule(math.Inf(1), nil); err == nil {
		t.Error("+Inf time should be rejected")
	}
}

func TestRunUntilBoundary(t *testing.T) {
	s := NewSimulator()
	fired := 0
	if _, err := s.Schedule(1, func() { fired++ }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Schedule(2, func() { fired++ }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Schedule(3, func() { fired++ }); err != nil {
		t.Fatal(err)
	}
	s.Run(2) // events at exactly `until` still fire
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d, want 1", s.Pending())
	}
	s.Run(3)
	if fired != 3 {
		t.Errorf("after second run, fired = %d, want 3", fired)
	}
}

func TestEventsMayScheduleEvents(t *testing.T) {
	s := NewSimulator()
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 100 {
			if _, err := s.After(0.5, chain); err != nil {
				t.Errorf("After: %v", err)
			}
		}
	}
	if _, err := s.Schedule(0, chain); err != nil {
		t.Fatal(err)
	}
	s.Run(1000)
	if count != 100 {
		t.Errorf("chain fired %d times, want 100", count)
	}
	if got, want := s.Now(), 1000.0; got != want {
		t.Errorf("Now = %v, want %v", got, want)
	}
}

func TestCancel(t *testing.T) {
	s := NewSimulator()
	fired := false
	ev, err := s.Schedule(1, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	if !s.Cancel(ev) {
		t.Error("first Cancel should succeed")
	}
	if s.Cancel(ev) {
		t.Error("second Cancel should be a no-op")
	}
	if s.Cancel(nil) {
		t.Error("Cancel(nil) should be a no-op")
	}
	s.Run(10)
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	s := NewSimulator()
	var fired []int
	evs := make([]*Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		ev, err := s.Schedule(float64(i), func() { fired = append(fired, i) })
		if err != nil {
			t.Fatal(err)
		}
		evs[i] = ev
	}
	s.Cancel(evs[4])
	s.Cancel(evs[7])
	s.Run(100)
	if len(fired) != 8 {
		t.Fatalf("fired %d events, want 8: %v", len(fired), fired)
	}
	for _, v := range fired {
		if v == 4 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestHalt(t *testing.T) {
	s := NewSimulator()
	count := 0
	for i := 1; i <= 10; i++ {
		i := i
		if _, err := s.Schedule(float64(i), func() {
			count++
			if i == 3 {
				s.Halt()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(100)
	if count != 3 {
		t.Errorf("processed %d events before halt, want 3", count)
	}
	// A subsequent Run resumes.
	s.Run(100)
	if count != 10 {
		t.Errorf("after resume, processed %d, want 10", count)
	}
}

func TestStep(t *testing.T) {
	s := NewSimulator()
	if s.Step() {
		t.Error("Step on empty calendar should report false")
	}
	fired := false
	if _, err := s.Schedule(2, func() { fired = true }); err != nil {
		t.Fatal(err)
	}
	if !s.Step() {
		t.Error("Step should fire the pending event")
	}
	if !fired || s.Now() != 2 {
		t.Errorf("fired=%v now=%v, want true/2", fired, s.Now())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Exp(3) != b.Exp(3) {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(7)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += g.Exp(2.5)
	}
	mean := sum / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Errorf("empirical mean %v, want ≈2.5", mean)
	}
}

func TestExpPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) should panic")
		}
	}()
	NewRNG(1).Exp(0)
}

func TestUniform(t *testing.T) {
	g := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(3, 7)
		if v < 3 || v >= 7 {
			t.Fatalf("Uniform(3,7) = %v out of range", v)
		}
	}
}

func TestPoissonProcess(t *testing.T) {
	if _, err := NewPoissonProcess(NewRNG(1), 0); err == nil {
		t.Error("zero rate should be rejected")
	}
	if _, err := NewPoissonProcess(nil, 1); err == nil {
		t.Error("nil RNG should be rejected")
	}
	p, err := NewPoissonProcess(NewRNG(11), 4) // 4 events/second
	if err != nil {
		t.Fatal(err)
	}
	if p.Rate() != 4 {
		t.Errorf("Rate = %v, want 4", p.Rate())
	}
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += p.Next()
	}
	mean := sum / n
	if math.Abs(mean-0.25) > 0.01 {
		t.Errorf("mean inter-arrival %v, want ≈0.25", mean)
	}
}
