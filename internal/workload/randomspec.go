package workload

import (
	"fafnet/internal/des"
	"fafnet/internal/scenario"
)

// The calibration sweep draws workload specs from this palette: class names
// are fixed (so per-class metric labels stay bounded) while processes,
// rates, shapes, lifetimes, sources and deadlines are randomized per
// scenario. Deadlines stay above the ~10 ms protocol floor of the default
// network (two timed-token MACs at TTRT 4 ms plus backbone stages) so
// scenarios exercise the admission boundary rather than trivially rejecting
// everything.

// classNames is the palette of class labels RandomSpec draws from.
var classNames = []string{"voice", "video", "bulk", "control"}

// sourceTemplates are the traffic models RandomSpec assigns to classes. All
// long-term rates sit in the low-megabit range, sized so a handful of
// admitted connections contend for ring synchronous bandwidth without one
// connection exhausting it.
var sourceTemplates = []scenario.Source{
	{Type: "dualPeriodic", C1Kbit: 50, P1Millis: 10, C2Kbit: 10, P2Millis: 1},
	{Type: "dualPeriodic", C1Kbit: 30, P1Millis: 6, C2Kbit: 8, P2Millis: 1},
	{Type: "periodic", C1Kbit: 8, P1Millis: 5},
	{Type: "periodic", C1Kbit: 16, P1Millis: 4},
	{Type: "cbr", RateMbps: 2},
	{Type: "cbr", RateMbps: 4},
	{Type: "leakyBucket", SigmaKbit: 20, RateMbps: 3},
}

// RandomSpec draws a randomized multi-class workload spec from the palette:
// one to three classes, each with a random arrival process, lifetime
// distribution, source template and SLO, and sometimes a diurnal curve.
// Deterministic in the RNG state.
func RandomSpec(rng *des.RNG) Spec {
	n := 1 + rng.Intn(3)
	perm := rng.Perm(len(classNames))
	s := Spec{Name: "random"}
	for i := 0; i < n; i++ {
		c := Class{
			Name:   classNames[perm[i]],
			Source: sourceTemplates[rng.Intn(len(sourceTemplates))],
		}
		// Arrival: rate 0.2–1.2 requests/sec so a few-minute horizon sees
		// tens of requests per class.
		rate := rng.Uniform(0.2, 1.2)
		switch rng.Intn(3) {
		case 0:
			c.Arrival = Arrival{Process: ProcessPoisson, RatePerSec: rate}
		case 1:
			c.Arrival = Arrival{Process: ProcessGamma, RatePerSec: rate, Shape: rng.Uniform(0.4, 3)}
		default:
			c.Arrival = Arrival{Process: ProcessWeibull, RatePerSec: rate, Shape: rng.Uniform(0.5, 2.5)}
		}
		// Lifetime: mean 20–90 s; heavy tails for the non-exponential draws.
		mean := rng.Uniform(20, 90)
		switch rng.Intn(3) {
		case 0:
			c.Lifetime = Lifetime{Dist: LifetimeExponential, MeanSeconds: mean}
		case 1:
			c.Lifetime = Lifetime{Dist: LifetimePareto, MeanSeconds: mean, Shape: rng.Uniform(1.5, 3.5)}
		default:
			c.Lifetime = Lifetime{Dist: LifetimeLognormal, MeanSeconds: mean, Shape: rng.Uniform(0.3, 1.2)}
		}
		// Deadline: fixed SLO or a uniform range, both inside 30–80 ms.
		if rng.Intn(2) == 0 {
			c.SLOMillis = rng.Uniform(30, 80)
		} else {
			lo := rng.Uniform(30, 50)
			c.DeadlineMinMillis = lo
			c.DeadlineMaxMillis = lo + rng.Uniform(5, 30)
		}
		if rng.Intn(3) == 0 {
			c.Diurnal = &Diurnal{
				PeriodSeconds: rng.Uniform(120, 1200),
				Amplitude:     rng.Uniform(0.2, 0.8),
				PhaseSeconds:  rng.Uniform(0, 60),
			}
		}
		s.Classes = append(s.Classes, c)
	}
	return s
}
