package workload

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"fafnet/internal/des"
	"fafnet/internal/scenario"
)

func TestDefaultSpecValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	base := func() Spec { return Default() }
	cases := []struct {
		name string
		mod  func(*Spec)
		want string
	}{
		{"no classes", func(s *Spec) { s.Classes = nil }, "no classes"},
		{"unnamed class", func(s *Spec) { s.Classes[0].Name = "" }, "has no name"},
		{"duplicate name", func(s *Spec) { s.Classes[1].Name = s.Classes[0].Name }, "duplicate class name"},
		{"unknown process", func(s *Spec) { s.Classes[0].Arrival.Process = "uniform" }, "unknown arrival process"},
		{"gamma needs shape", func(s *Spec) { s.Classes[1].Arrival.Shape = 0 }, "positive shape"},
		{"rate positive", func(s *Spec) { s.Classes[0].Arrival.RatePerSec = 0 }, "must be positive"},
		{"unknown lifetime", func(s *Spec) { s.Classes[0].Lifetime.Dist = "erlang" }, "unknown lifetime distribution"},
		{"pareto tail", func(s *Spec) { s.Classes[1].Lifetime.Shape = 1 }, "tail index > 1"},
		{"lognormal sigma", func(s *Spec) { s.Classes[2].Lifetime.Shape = 0 }, "positive sigma"},
		{"mean lifetime", func(s *Spec) { s.Classes[0].Lifetime.MeanSeconds = -3 }, "must be positive"},
		{"bad source", func(s *Spec) { s.Classes[0].Source.Type = "fractal" }, "unknown source type"},
		{"no deadline", func(s *Spec) { s.Classes[0].SLOMillis = 0 }, "sloMillis > 0 or a deadline range"},
		{"inverted range", func(s *Spec) {
			s.Classes[1].DeadlineMinMillis, s.Classes[1].DeadlineMaxMillis = 70, 40
		}, "deadline range"},
		{"diurnal period", func(s *Spec) { s.Classes[2].Diurnal.PeriodSeconds = 0 }, "period"},
		{"diurnal amplitude", func(s *Spec) { s.Classes[2].Diurnal.Amplitude = 1 }, "amplitude"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mod(&s)
			err := s.Validate()
			if err == nil {
				t.Fatal("Validate accepted a broken spec")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse(strings.NewReader(`{"name":"x","classes":[],"burstiness":3}`))
	if err == nil || !strings.Contains(err.Error(), "burstiness") {
		t.Fatalf("want unknown-field error, got %v", err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	const doc = `{
		"name": "two-class",
		"classes": [
			{"name": "a", "arrival": {"process": "poisson", "ratePerSec": 1},
			 "lifetime": {"dist": "exponential", "meanSeconds": 30},
			 "source": {"type": "cbr", "rateMbps": 1}, "sloMillis": 50},
			{"name": "b", "arrival": {"process": "weibull", "ratePerSec": 0.5, "shape": 2},
			 "lifetime": {"dist": "pareto", "meanSeconds": 60, "shape": 2.5},
			 "source": {"type": "periodic", "c1Kbit": 8, "p1Millis": 5},
			 "deadlineMinMillis": 40, "deadlineMaxMillis": 70,
			 "diurnal": {"periodSeconds": 600, "amplitude": 0.4}}
		]
	}`
	s, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(s.Classes) != 2 || s.Classes[1].Diurnal == nil {
		t.Fatalf("parsed spec lost structure: %+v", s)
	}
}

func collect(t *testing.T, spec Spec, seed int64, n int) []ClassArrival {
	t.Helper()
	g, err := NewGenerator(spec, seed)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	out := make([]ClassArrival, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

func TestGeneratorDeterministicAndOrdered(t *testing.T) {
	spec := Default()
	a := collect(t, spec, 7, 500)
	b := collect(t, spec, 7, 500)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (spec, seed) produced different streams")
	}
	c := collect(t, spec, 8, 500)
	if reflect.DeepEqual(a[:50], c[:50]) {
		t.Fatal("different seeds produced identical streams")
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("arrival %d at %v precedes %v", i, a[i].At, a[i-1].At)
		}
	}
	seen := map[string]bool{}
	for _, ev := range a {
		seen[ev.Class] = true
		if ev.Deadline <= 0 || ev.Lifetime <= 0 {
			t.Fatalf("non-positive draw in %+v", ev)
		}
	}
	for _, c := range spec.Classes {
		if !seen[c.Name] {
			t.Fatalf("class %q never arrived in 500 draws", c.Name)
		}
	}
}

// TestGeneratorClassIsolation pins the stream-separation property: removing
// one class must not perturb the draws of the others.
func TestGeneratorClassIsolation(t *testing.T) {
	spec := Default()
	full := collect(t, spec, 11, 400)
	reduced := Spec{Name: spec.Name, Classes: spec.Classes[:2]}
	sub := collect(t, reduced, 11, 200)
	var fullFiltered []ClassArrival
	for _, ev := range full {
		if ev.ClassIndex < 2 {
			fullFiltered = append(fullFiltered, ev)
		}
	}
	if len(fullFiltered) < len(sub) {
		sub = sub[:len(fullFiltered)]
	}
	if !reflect.DeepEqual(fullFiltered[:len(sub)], sub) {
		t.Fatal("dropping a class perturbed the remaining classes' streams")
	}
}

func TestGeneratorRealizedRate(t *testing.T) {
	spec := Spec{Name: "rate", Classes: []Class{{
		Name:      "a",
		Arrival:   Arrival{Process: ProcessPoisson, RatePerSec: 2},
		Lifetime:  Lifetime{Dist: LifetimeExponential, MeanSeconds: 10},
		Source:    scenario.Source{Type: "cbr", RateMbps: 1},
		SLOMillis: 50,
	}}}
	const n = 20000
	evs := collect(t, spec, 3, n)
	rate := float64(n) / evs[n-1].At
	if math.Abs(rate-2) > 0.1 {
		t.Fatalf("realized rate %.3f, want ~2", rate)
	}
}

// TestDiurnalThinning checks both properties of the thinned process: the
// long-run rate still matches the configured base rate, and arrivals are
// denser in the peak half-period than in the trough half-period.
func TestDiurnalThinning(t *testing.T) {
	period := 100.0
	spec := Spec{Name: "diurnal", Classes: []Class{{
		Name:      "a",
		Arrival:   Arrival{Process: ProcessPoisson, RatePerSec: 2},
		Lifetime:  Lifetime{Dist: LifetimeExponential, MeanSeconds: 10},
		Source:    scenario.Source{Type: "cbr", RateMbps: 1},
		SLOMillis: 50,
		Diurnal:   &Diurnal{PeriodSeconds: period, Amplitude: 0.8},
	}}}
	const n = 40000
	evs := collect(t, spec, 5, n)
	rate := float64(n) / evs[n-1].At
	if math.Abs(rate-2) > 0.1 {
		t.Fatalf("realized diurnal rate %.3f, want ~2 (thinning must preserve the mean)", rate)
	}
	var peak, trough int
	for _, ev := range evs {
		phase := math.Mod(ev.At, period) / period
		if phase < 0.5 {
			peak++ // sin positive: above-mean rate
		} else {
			trough++
		}
	}
	if float64(peak) < 1.5*float64(trough) {
		t.Fatalf("peak half got %d arrivals vs trough %d; modulation not visible", peak, trough)
	}
}

func TestLifetimeMeans(t *testing.T) {
	for _, tc := range []struct {
		name string
		lt   Lifetime
	}{
		{"exponential", Lifetime{Dist: LifetimeExponential, MeanSeconds: 40}},
		{"pareto", Lifetime{Dist: LifetimePareto, MeanSeconds: 40, Shape: 3}},
		{"lognormal", Lifetime{Dist: LifetimeLognormal, MeanSeconds: 40, Shape: 0.6}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := Spec{Name: "lt", Classes: []Class{{
				Name:      "a",
				Arrival:   Arrival{Process: ProcessPoisson, RatePerSec: 1},
				Lifetime:  tc.lt,
				Source:    scenario.Source{Type: "cbr", RateMbps: 1},
				SLOMillis: 50,
			}}}
			const n = 30000
			evs := collect(t, spec, 9, n)
			var sum float64
			for _, ev := range evs {
				sum += ev.Lifetime
			}
			mean := sum / n
			if math.Abs(mean-40)/40 > 0.08 {
				t.Fatalf("mean lifetime %.2f, want ~40", mean)
			}
		})
	}
}

func TestRandomSpecAlwaysValid(t *testing.T) {
	rng := des.NewRNG(1)
	for i := 0; i < 500; i++ {
		s := RandomSpec(rng)
		if err := s.Validate(); err != nil {
			t.Fatalf("RandomSpec draw %d invalid: %v", i, err)
		}
		if _, err := NewGenerator(s, int64(i)); err != nil {
			t.Fatalf("RandomSpec draw %d: generator: %v", i, err)
		}
	}
}

func traceEvents() []Event {
	req := scenario.Request{
		ID: "w1", SrcRing: 0, SrcHost: 1, DstRing: 2, DstHost: 3,
		DeadlineMillis: 0.1 + 0.2, // deliberately non-representable sum
		Source:         scenario.Source{Type: "cbr", RateMbps: 2},
	}
	return []Event{
		{At: 0.1, Class: "voice", LifetimeSeconds: 1.0 / 3.0, Req: req},
		{At: math.Nextafter(0.1, 1), Class: "video", LifetimeSeconds: 59.999999999999986, Req: req},
	}
}

func TestTraceRoundTripBitExact(t *testing.T) {
	events := traceEvents()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("round trip changed events:\n got %+v\nwant %+v", got, events)
	}
	// Bit-exactness, not approximate equality, is the contract.
	if math.Float64bits(got[0].LifetimeSeconds) != math.Float64bits(events[0].LifetimeSeconds) {
		t.Fatal("float lost bits through the trace")
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	events := traceEvents()
	path := t.TempDir() + "/trace.jsonl"
	if err := SaveTrace(path, events); err != nil {
		t.Fatalf("SaveTrace: %v", err)
	}
	got, err := LoadTrace(path)
	if err != nil {
		t.Fatalf("LoadTrace: %v", err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatal("file round trip changed events")
	}
}

func TestReadTraceErrors(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{\"at\":1}\nnot json\n")); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want malformed-line error naming line 2, got %v", err)
	}
	if _, err := ReadTrace(strings.NewReader("{\"at\":2}\n{\"at\":1}\n")); err == nil || !strings.Contains(err.Error(), "precedes") {
		t.Fatalf("want decreasing-time error, got %v", err)
	}
	got, err := ReadTrace(strings.NewReader("{\"at\":1,\"class\":\"a\"}\n\n{\"at\":2,\"class\":\"b\"}\n"))
	if err != nil || len(got) != 2 {
		t.Fatalf("blank lines should be skipped, got %d events, err %v", len(got), err)
	}
}
