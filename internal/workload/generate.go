package workload

import (
	"fmt"
	"math"

	"fafnet/internal/des"
	"fafnet/internal/scenario"
	"fafnet/internal/units"
)

// sin2pi returns sin(2πx).
func sin2pi(x float64) float64 { return math.Sin(2 * math.Pi * x) }

// ClassArrival is one materialized connection request emitted by a
// Generator: the class, the arrival instant, and the per-connection draws
// (deadline, lifetime). Endpoints are not chosen here — source-host
// selection depends on which hosts are idle, which only the admission
// simulation knows.
type ClassArrival struct {
	// At is the absolute arrival time in seconds.
	At float64
	// Class is the class name; ClassIndex its position in the spec.
	Class      string
	ClassIndex int
	// Deadline is the end-to-end deadline in seconds (the class SLO, or a
	// uniform draw from the class range).
	Deadline float64
	// Lifetime is the holding time in seconds if admitted.
	Lifetime float64
	// Source is the class's traffic model in scenario JSON form, so the
	// arrival can be recorded to a trace and rebuilt on replay.
	Source scenario.Source
}

// classGen is the per-class generation state. Every class owns a private
// RNG derived from the base seed, so adding or reordering classes never
// perturbs another class's stream.
type classGen struct {
	class  Class
	index  int
	rng    *des.RNG
	gap    func() float64 // one interarrival draw
	peak   float64        // diurnal peak factor (1 when unmodulated)
	nextAt float64        // next accepted arrival instant
}

// Generator merges the per-class arrival streams into one chronological
// request stream. It is deterministic for a given (spec, seed) pair and not
// safe for concurrent use.
type Generator struct {
	classes []*classGen
}

// classSeedStride separates per-class RNG streams in seed space.
const classSeedStride = 1_000_003

// NewGenerator validates the spec and returns a generator whose stream is a
// pure function of (spec, seed).
func NewGenerator(spec Spec, seed int64) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{}
	for i, c := range spec.Classes {
		cg := &classGen{class: c, index: i, rng: des.NewRNG(seed + int64(i+1)*classSeedStride), peak: 1}
		rate := c.Arrival.RatePerSec
		if d := c.Diurnal; d != nil {
			// Thinning generates candidates at the peak rate and keeps each
			// with probability factor(t)/peak.
			cg.peak = 1 + d.Amplitude
			rate *= cg.peak
		}
		switch c.Arrival.Process {
		case ProcessPoisson:
			p, err := des.NewPoissonProcess(cg.rng, rate)
			if err != nil {
				return nil, fmt.Errorf("workload: class %q: %w", c.Name, err)
			}
			cg.gap = p.Next
		case ProcessGamma:
			p, err := des.NewGammaProcess(cg.rng, rate, c.Arrival.Shape)
			if err != nil {
				return nil, fmt.Errorf("workload: class %q: %w", c.Name, err)
			}
			cg.gap = p.Next
		case ProcessWeibull:
			p, err := des.NewWeibullProcess(cg.rng, rate, c.Arrival.Shape)
			if err != nil {
				return nil, fmt.Errorf("workload: class %q: %w", c.Name, err)
			}
			cg.gap = p.Next
		}
		cg.advance()
		g.classes = append(g.classes, cg)
	}
	return g, nil
}

// advance moves nextAt to the class's next accepted arrival, applying
// diurnal thinning: candidates arrive at the peak rate and survive with
// probability factor(t)/peak. Termination is sure because the acceptance
// probability is bounded below by (1−Amplitude)/(1+Amplitude) > 0.
func (c *classGen) advance() {
	for {
		c.nextAt += c.gap()
		d := c.class.Diurnal
		if d == nil || c.rng.Float64()*c.peak < d.factor(c.nextAt) {
			return
		}
	}
}

// deadline draws the class deadline in seconds.
func (c *classGen) deadline() float64 {
	if c.class.SLOMillis > 0 {
		return c.class.SLOMillis * units.Millisecond
	}
	return c.rng.Uniform(c.class.DeadlineMinMillis*units.Millisecond, c.class.DeadlineMaxMillis*units.Millisecond)
}

// lifetime draws the class holding time in seconds.
func (c *classGen) lifetime() float64 {
	l := c.class.Lifetime
	switch l.Dist {
	case LifetimePareto:
		// Mean α·xm/(α−1) = MeanSeconds fixes the minimum xm.
		xm := l.MeanSeconds * (l.Shape - 1) / l.Shape
		return c.rng.Pareto(l.Shape, xm)
	case LifetimeLognormal:
		// Mean exp(µ + σ²/2) = MeanSeconds fixes µ.
		mu := math.Log(l.MeanSeconds) - l.Shape*l.Shape/2
		return c.rng.Lognormal(mu, l.Shape)
	default:
		return c.rng.Exp(l.MeanSeconds)
	}
}

// Next returns the chronologically next arrival across all classes. The
// stream is unbounded; the caller decides when to stop consuming it.
func (g *Generator) Next() ClassArrival {
	best := g.classes[0]
	for _, c := range g.classes[1:] {
		if c.nextAt < best.nextAt {
			best = c
		}
	}
	a := ClassArrival{
		At:         best.nextAt,
		Class:      best.class.Name,
		ClassIndex: best.index,
		Deadline:   best.deadline(),
		Lifetime:   best.lifetime(),
		Source:     best.class.Source,
	}
	best.advance()
	return a
}
