package workload

import (
	"sync"

	"fafnet/internal/obs"
)

// Per-class metrics use one labeled child per class name. The obs registry
// fixes label sets at registration, so children are registered lazily the
// first time a class is seen; the reserved class "overall" is registered
// eagerly so every family exists on /metrics (and in the OPERATIONS.md
// catalog gate) before any workload has run. Class palettes are small and
// recurring — specs name a handful of service classes, not unbounded ids —
// so the child tables stay tiny.

// Overall is the reserved class label carrying the all-classes aggregate.
const Overall = "overall"

// classVec lazily registers one labeled child per class under a fixed
// family.
type classVec struct {
	name, help string
	kind       kind
	mu         sync.Mutex
	// counters and gauges hold the registered children. guarded by mu.
	counters map[string]*obs.Counter
	gauges   map[string]*obs.Gauge
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
)

func newClassVec(name, help string, k kind) *classVec {
	v := &classVec{name: name, help: help, kind: k,
		counters: make(map[string]*obs.Counter), gauges: make(map[string]*obs.Gauge)}
	// Eager child: the family must exist before the first workload runs. No
	// goroutine can hold v yet, but the maps are mu-guarded everywhere else,
	// so take the lock here too rather than special-case construction.
	v.mu.Lock()
	defer v.mu.Unlock()
	switch k {
	case kindCounter:
		v.counters[Overall] = obs.Default.Counter(name, help, "class", Overall)
	case kindGauge:
		v.gauges[Overall] = obs.Default.Gauge(name, help, "class", Overall)
	}
	return v
}

func (v *classVec) counter(class string) *obs.Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.counters[class]
	if c == nil {
		c = obs.Default.Counter(v.name, v.help, "class", class)
		v.counters[class] = c
	}
	return c
}

func (v *classVec) gauge(class string) *obs.Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	g := v.gauges[class]
	if g == nil {
		g = obs.Default.Gauge(v.name, v.help, "class", class)
		v.gauges[class] = g
	}
	return g
}

var (
	vRequests = newClassVec("fafnet_workload_class_requests_total",
		"Admission requests issued, by workload class.", kindCounter)
	vAdmitted = newClassVec("fafnet_workload_class_admitted_total",
		"Admission requests admitted, by workload class.", kindCounter)
	vAP = newClassVec("fafnet_workload_class_ap",
		"Admission probability of the most recent run, by workload class.", kindGauge)
	vTightness = newClassVec("fafnet_workload_class_tightness",
		"Worst measured-delay/analytic-bound ratio of the most recent calibration, by workload class (must stay below 1).", kindGauge)
	gJain = obs.Default.Gauge("fafnet_workload_jain_fairness",
		"Jain fairness index over per-class admission probabilities of the most recent run (1 = perfectly fair).")
	mCalScenarios = obs.Default.Counter("fafnet_calibration_scenarios_total",
		"Calibration scenarios executed (admission run plus packet-level cross-check).")
	mCalViolations = obs.Default.Counter("fafnet_calibration_violations_total",
		"Measured delays that exceeded their analytic worst-case bound across calibration runs. Any increment is a correctness failure.")
)

// RecordRequest counts one admission request for the class and the overall
// aggregate.
func RecordRequest(class string) {
	vRequests.counter(class).Inc()
	vRequests.counter(Overall).Inc()
}

// RecordAdmission counts one admitted request for the class and the overall
// aggregate.
func RecordAdmission(class string) {
	vAdmitted.counter(class).Inc()
	vAdmitted.counter(Overall).Inc()
}

// SetClassAP publishes a class's admission probability from the most recent
// run.
func SetClassAP(class string, ap float64) { vAP.gauge(class).Set(ap) }

// SetClassTightness publishes a class's worst measured/bound delay ratio
// from the most recent calibration.
func SetClassTightness(class string, ratio float64) { vTightness.gauge(class).Set(ratio) }

// SetJainFairness publishes the Jain index over per-class APs.
func SetJainFairness(v float64) { gJain.Set(v) }

// AddCalibrationScenarios counts completed calibration scenarios.
func AddCalibrationScenarios(n int) { mCalScenarios.Add(uint64(n)) }

// AddCalibrationViolations counts analytic-bound violations. The calibration
// gate fails hard on any, so a nonzero counter on a live daemon means a
// soundness bug escaped.
func AddCalibrationViolations(n int) { mCalViolations.Add(uint64(n)) }
