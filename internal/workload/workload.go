// Package workload is the multi-class workload-specification layer of the
// evaluation harness. The paper's Section 6 experiment is a single class —
// Poisson arrivals, exponential lifetimes, one dual-periodic source — which
// this package generalizes to JSON specs naming several traffic classes,
// each with its own arrival process (Poisson, Gamma or Weibull renewal),
// lifetime distribution (exponential, Pareto or lognormal), traffic
// descriptor, SLO deadline, and optional diurnal rate modulation applied by
// thinning. Generated arrivals can be recorded as JSON-lines traces and
// replayed bit-identically, which is what makes the calibration harness a
// regression gate rather than a one-off experiment.
package workload

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"fafnet/internal/scenario"
	"fafnet/internal/units"
)

// Arrival process names accepted in Arrival.Process.
const (
	ProcessPoisson = "poisson"
	ProcessGamma   = "gamma"
	ProcessWeibull = "weibull"
)

// Lifetime distribution names accepted in Lifetime.Dist.
const (
	LifetimeExponential = "exponential"
	LifetimePareto      = "pareto"
	LifetimeLognormal   = "lognormal"
)

// Spec is the top-level JSON document: a named set of traffic classes whose
// arrival streams are superposed over one network.
type Spec struct {
	// Name labels the workload in reports and traces.
	Name string `json:"name"`
	// Classes are the traffic classes; at least one is required.
	Classes []Class `json:"classes"`
}

// Class describes one traffic class.
type Class struct {
	// Name identifies the class in per-class statistics and metrics labels.
	Name string `json:"name"`
	// Arrival is the connection-request arrival process.
	Arrival Arrival `json:"arrival"`
	// Lifetime is the holding-time distribution of admitted connections.
	Lifetime Lifetime `json:"lifetime"`
	// Source is the traffic descriptor every connection of this class
	// declares (same JSON shape as scenario actions).
	Source scenario.Source `json:"source"`
	// SLOMillis, when positive, is the fixed end-to-end deadline (the
	// class's service-level objective) in milliseconds.
	SLOMillis float64 `json:"sloMillis,omitempty"`
	// DeadlineMinMillis and DeadlineMaxMillis bound uniformly drawn
	// deadlines; used when SLOMillis is zero.
	DeadlineMinMillis float64 `json:"deadlineMinMillis,omitempty"`
	DeadlineMaxMillis float64 `json:"deadlineMaxMillis,omitempty"`
	// Diurnal, when non-nil, modulates the arrival rate over time by
	// thinning (see Diurnal).
	Diurnal *Diurnal `json:"diurnal,omitempty"`
}

// Arrival selects the arrival process of a class.
type Arrival struct {
	// Process is "poisson", "gamma" or "weibull".
	Process string `json:"process"`
	// RatePerSec is the mean arrival rate λ in requests per second; the
	// renewal processes derive their scale so the mean interarrival is
	// exactly 1/λ.
	RatePerSec float64 `json:"ratePerSec"`
	// Shape is the Gamma/Weibull shape parameter (ignored for Poisson):
	// shape 1 degenerates to Poisson, below 1 is burstier, above smoother.
	Shape float64 `json:"shape,omitempty"`
}

// Lifetime selects the holding-time distribution of a class.
type Lifetime struct {
	// Dist is "exponential", "pareto" or "lognormal".
	Dist string `json:"dist"`
	// MeanSeconds is the mean holding time 1/µ.
	MeanSeconds float64 `json:"meanSeconds"`
	// Shape parameterizes the heavy tail: the Pareto tail index α (must
	// exceed 1 so the mean exists) or the lognormal σ. Ignored for
	// exponential.
	Shape float64 `json:"shape,omitempty"`
}

// Diurnal modulates a class's arrival rate over simulated time as
// rate(t) = base · (1 + Amplitude·sin(2π(t−Phase)/Period)). It is applied
// by thinning: candidate arrivals are generated at the peak rate
// base·(1+Amplitude) and each is kept with probability rate(t)/peak, which
// is exact for Poisson processes and the standard approximation for the
// renewal processes.
type Diurnal struct {
	// PeriodSeconds is the modulation period (a compressed "day").
	PeriodSeconds float64 `json:"periodSeconds"`
	// Amplitude is the relative swing, in [0, 1).
	Amplitude float64 `json:"amplitude"`
	// PhaseSeconds shifts the curve (0 starts at the mean, rising).
	PhaseSeconds float64 `json:"phaseSeconds,omitempty"`
}

// factor returns the modulation multiplier at time t, in
// [1−Amplitude, 1+Amplitude].
func (d *Diurnal) factor(t float64) float64 {
	return 1 + d.Amplitude*sin2pi((t-d.PhaseSeconds)/d.PeriodSeconds)
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if len(s.Classes) == 0 {
		return errors.New("workload: spec has no classes")
	}
	seen := make(map[string]bool, len(s.Classes))
	for i, c := range s.Classes {
		if c.Name == "" {
			return fmt.Errorf("workload: class %d has no name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("workload: duplicate class name %q", c.Name)
		}
		seen[c.Name] = true
		if err := c.validate(); err != nil {
			return fmt.Errorf("workload: class %q: %w", c.Name, err)
		}
	}
	return nil
}

func (c Class) validate() error {
	switch c.Arrival.Process {
	case ProcessPoisson:
	case ProcessGamma, ProcessWeibull:
		if c.Arrival.Shape <= 0 {
			return fmt.Errorf("%s arrivals need a positive shape, got %v", c.Arrival.Process, c.Arrival.Shape)
		}
	default:
		return fmt.Errorf("unknown arrival process %q", c.Arrival.Process)
	}
	if c.Arrival.RatePerSec <= 0 {
		return fmt.Errorf("arrival rate %v must be positive", c.Arrival.RatePerSec)
	}
	switch c.Lifetime.Dist {
	case LifetimeExponential:
	case LifetimePareto:
		if c.Lifetime.Shape <= 1 {
			return fmt.Errorf("pareto lifetimes need tail index > 1 for a finite mean, got %v", c.Lifetime.Shape)
		}
	case LifetimeLognormal:
		if c.Lifetime.Shape <= 0 {
			return fmt.Errorf("lognormal lifetimes need a positive sigma, got %v", c.Lifetime.Shape)
		}
	default:
		return fmt.Errorf("unknown lifetime distribution %q", c.Lifetime.Dist)
	}
	if c.Lifetime.MeanSeconds <= 0 {
		return fmt.Errorf("mean lifetime %v must be positive", c.Lifetime.MeanSeconds)
	}
	if _, err := c.Source.Descriptor(); err != nil {
		return err
	}
	switch {
	case c.SLOMillis > 0:
		// Fixed SLO deadline; the range fields are ignored.
	case c.DeadlineMinMillis > 0 && units.AlmostGE(c.DeadlineMaxMillis, c.DeadlineMinMillis):
	default:
		return fmt.Errorf("need sloMillis > 0 or a deadline range, got slo=%v range=[%v, %v]",
			c.SLOMillis, c.DeadlineMinMillis, c.DeadlineMaxMillis)
	}
	if d := c.Diurnal; d != nil {
		if d.PeriodSeconds <= 0 {
			return fmt.Errorf("diurnal period %v must be positive", d.PeriodSeconds)
		}
		if d.Amplitude < 0 || d.Amplitude >= 1 {
			return fmt.Errorf("diurnal amplitude %v must be in [0, 1)", d.Amplitude)
		}
	}
	return nil
}

// Parse reads a spec from JSON, rejecting unknown fields.
func Parse(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("workload: decoding: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Load reads a spec from a file.
func Load(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, fmt.Errorf("workload: opening %s: %w", path, err)
	}
	defer f.Close()
	return Parse(f)
}

// Default returns a three-class workload spanning the distribution families:
// Poisson/exponential interactive traffic (the paper's own model), bursty
// Gamma/Pareto video, and near-periodic Weibull/lognormal bulk transfer with
// a diurnal load curve.
func Default() Spec {
	return Spec{
		Name: "default-mixed",
		Classes: []Class{
			{
				Name:      "voice",
				Arrival:   Arrival{Process: ProcessPoisson, RatePerSec: 0.5},
				Lifetime:  Lifetime{Dist: LifetimeExponential, MeanSeconds: 60},
				Source:    scenario.Source{Type: "periodic", C1Kbit: 8, P1Millis: 5},
				SLOMillis: 40,
			},
			{
				Name:              "video",
				Arrival:           Arrival{Process: ProcessGamma, RatePerSec: 0.3, Shape: 0.5},
				Lifetime:          Lifetime{Dist: LifetimePareto, MeanSeconds: 90, Shape: 2.5},
				Source:            scenario.Source{Type: "dualPeriodic", C1Kbit: 50, P1Millis: 10, C2Kbit: 10, P2Millis: 1},
				DeadlineMinMillis: 40, DeadlineMaxMillis: 70,
			},
			{
				Name:      "bulk",
				Arrival:   Arrival{Process: ProcessWeibull, RatePerSec: 0.2, Shape: 1.5},
				Lifetime:  Lifetime{Dist: LifetimeLognormal, MeanSeconds: 120, Shape: 0.8},
				Source:    scenario.Source{Type: "cbr", RateMbps: 2},
				SLOMillis: 70,
				Diurnal:   &Diurnal{PeriodSeconds: 1800, Amplitude: 0.5},
			},
		},
	}
}
