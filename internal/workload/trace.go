package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"fafnet/internal/scenario"
)

// Event is one line of an arrival trace: a fully materialized admission
// request (endpoints, deadline, source) plus the class bookkeeping and the
// holding time the connection would use if admitted. A trace captures every
// random draw of the generating run, so replaying it reproduces the run
// bit-identically with no RNG involved.
type Event struct {
	// At is the absolute arrival time in seconds.
	At float64 `json:"at"`
	// Class is the workload class the request belongs to.
	Class string `json:"class"`
	// LifetimeSeconds is the holding time if admitted.
	LifetimeSeconds float64 `json:"lifetimeSeconds"`
	// Req is the materialized admission request (scenario JSON form).
	Req scenario.Request `json:"req"`
}

// WriteTrace renders events as JSON lines. Floats round-trip exactly
// through Go's shortest-representation encoding, which is what makes
// record → replay bit-identical.
func WriteTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("workload: encoding trace event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// SaveTrace writes events to a file.
func SaveTrace(path string, events []Event) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("workload: creating trace %s: %w", path, err)
	}
	defer func() {
		// Close is the final write on this path; a short file must surface.
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return WriteTrace(f, events)
}

// ReadTrace parses a JSON-lines trace. Arrival times must be
// non-decreasing; a decreasing timestamp or malformed line is an error, not
// a skip — a calibration gate must not quietly drop part of its input.
func ReadTrace(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		if n := len(out); n > 0 && ev.At < out[n-1].At {
			return nil, fmt.Errorf("workload: trace line %d: time %v precedes %v", line, ev.At, out[n-1].At)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	return out, nil
}

// LoadTrace reads a trace from a file.
func LoadTrace(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: opening trace %s: %w", path, err)
	}
	defer f.Close()
	return ReadTrace(f)
}
