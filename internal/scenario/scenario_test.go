package scenario

import (
	"strings"
	"testing"

	"fafnet/internal/core"
	"fafnet/internal/topo"
	"fafnet/internal/units"
)

func TestDefaultScenarioValid(t *testing.T) {
	s := Default()
	if err := s.Validate(); err != nil {
		t.Fatalf("default scenario invalid: %v", err)
	}
	if len(s.Actions) != 6 {
		t.Errorf("actions = %d", len(s.Actions))
	}
}

func TestParseRoundTrip(t *testing.T) {
	const doc = `{
		"name": "t",
		"topology": {"numRings": 2, "hostsPerRing": 3, "numSwitches": 1, "linkMbps": 155, "ttrtMillis": 8},
		"cac": {"beta": 0.25, "rule": "fixed-split", "hMinAbsMicros": 100},
		"actions": [
			{"admit": {"id": "a", "srcRing": 0, "srcHost": 0, "dstRing": 1, "dstHost": 0,
			           "deadlineMillis": 80,
			           "source": {"type": "dualPeriodic", "c1Kbit": 40, "p1Millis": 10, "c2Kbit": 8, "p2Millis": 1}}},
			{"release": "a"}
		]
	}`
	s, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.TopologyConfig()
	if cfg.NumRings != 2 || cfg.HostsPerRing != 3 || cfg.NumSwitches != 1 {
		t.Errorf("topology = %+v", cfg)
	}
	if cfg.Ring.TTRT != 8e-3 {
		t.Errorf("TTRT = %v", cfg.Ring.TTRT)
	}
	opts, err := s.CACOptions()
	if err != nil {
		t.Fatal(err)
	}
	if !opts.BetaSet || opts.Beta != 0.25 {
		t.Errorf("beta = %v (set %v)", opts.Beta, opts.BetaSet)
	}
	if opts.Rule != core.RuleFixedSplit {
		t.Errorf("rule = %v", opts.Rule)
	}
	if !units.WithinRel(opts.HMinAbs, 100e-6, 1e-9) {
		t.Errorf("HMinAbs = %v", opts.HMinAbs)
	}
	spec, err := s.Actions[0].Admit.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Deadline != 0.08 {
		t.Errorf("deadline = %v", spec.Deadline)
	}
	if spec.Source.LongTermRate() != 4e6 {
		t.Errorf("rho = %v", spec.Source.LongTermRate())
	}
}

func TestParseRejectsBadDocuments(t *testing.T) {
	tests := []struct {
		name string
		doc  string
	}{
		{"unknown field", `{"name":"x","bogus":1,"actions":[{"release":"a"}]}`},
		{"no actions", `{"name":"x","actions":[]}`},
		{"both admit and release", `{"actions":[{"admit":{"id":"a","deadlineMillis":10,"source":{"type":"cbr","rateMbps":1}},"release":"b"}]}`},
		{"neither", `{"actions":[{}]}`},
		{"release unknown", `{"actions":[{"release":"ghost"}]}`},
		{"duplicate id", `{"actions":[
			{"admit":{"id":"a","dstRing":1,"deadlineMillis":10,"source":{"type":"cbr","rateMbps":1}}},
			{"admit":{"id":"a","srcHost":1,"dstRing":1,"deadlineMillis":10,"source":{"type":"cbr","rateMbps":1}}}]}`},
		{"bad source type", `{"actions":[{"admit":{"id":"a","dstRing":1,"deadlineMillis":10,"source":{"type":"warp"}}}]}`},
		{"bad rule", `{"cac":{"rule":"magic"},"actions":[{"admit":{"id":"a","dstRing":1,"deadlineMillis":10,"source":{"type":"cbr","rateMbps":1}}}]}`},
		{"zero deadline", `{"actions":[{"admit":{"id":"a","dstRing":1,"source":{"type":"cbr","rateMbps":1}}}]}`},
		{"not json", `nope`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(tt.doc)); err == nil {
				t.Errorf("expected error for %s", tt.name)
			}
		})
	}
}

func TestSourceDescriptors(t *testing.T) {
	tests := []struct {
		name    string
		src     Source
		rho     float64
		wantErr bool
	}{
		{"dual periodic", Source{Type: "dualPeriodic", C1Kbit: 50, P1Millis: 10, C2Kbit: 10, P2Millis: 1}, 5e6, false},
		{"periodic", Source{Type: "periodic", C1Kbit: 10, P1Millis: 5}, 2e6, false},
		{"cbr", Source{Type: "cbr", RateMbps: 3}, 3e6, false},
		{"leaky bucket", Source{Type: "leakyBucket", SigmaKbit: 10, RateMbps: 2}, 2e6, false},
		{"custom peak", Source{Type: "periodic", C1Kbit: 10, P1Millis: 5, PeakMbps: 50}, 2e6, false},
		{"unknown", Source{Type: "x"}, 0, true},
		{"invalid params", Source{Type: "periodic", C1Kbit: 0, P1Millis: 5}, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d, err := tt.src.Descriptor()
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if err == nil && d.LongTermRate() != tt.rho {
				t.Errorf("rho = %v, want %v", d.LongTermRate(), tt.rho)
			}
		})
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/file.json"); err == nil {
		t.Error("missing file should error")
	}
}

func TestDefaultScenarioRunsThroughCAC(t *testing.T) {
	// The built-in scenario must execute cleanly against a real controller.
	s := Default()
	net, err := topo.NewNetwork(s.TopologyConfig())
	if err != nil {
		t.Fatal(err)
	}
	opts, err := s.CACOptions()
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := core.NewController(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	admitted := 0
	for i, a := range s.Actions {
		if a.Release != "" {
			if !ctl.Release(a.Release) {
				t.Fatalf("action %d: release %q failed", i, a.Release)
			}
			continue
		}
		spec, err := a.Admit.Spec()
		if err != nil {
			t.Fatal(err)
		}
		dec, err := ctl.RequestAdmission(spec)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Admitted {
			admitted++
		}
	}
	if admitted < 4 {
		t.Errorf("only %d of 5 requests admitted in the demonstration scenario", admitted)
	}
}
