// Package scenario loads JSON descriptions of networks and admission
// workloads, so the command-line tools and examples can run reproducible
// configurations without recompiling. A scenario names a topology (or takes
// the paper's default), CAC options, and an ordered list of admission and
// release actions.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"fafnet/internal/core"
	"fafnet/internal/topo"
	"fafnet/internal/traffic"
	"fafnet/internal/units"
)

// Scenario is the top-level JSON document.
type Scenario struct {
	// Name labels the scenario in tool output.
	Name string `json:"name"`
	// Topology overrides parts of the default network; nil keeps the
	// paper's 3×4 evaluation network.
	Topology *Topology `json:"topology,omitempty"`
	// CAC sets admission-control options.
	CAC CAC `json:"cac"`
	// Actions is the ordered list of admissions and releases.
	Actions []Action `json:"actions"`
}

// Topology selects network dimensions. Zero fields keep defaults.
type Topology struct {
	NumRings     int     `json:"numRings,omitempty"`
	HostsPerRing int     `json:"hostsPerRing,omitempty"`
	NumSwitches  int     `json:"numSwitches,omitempty"`
	LinkMbps     float64 `json:"linkMbps,omitempty"`
	TTRTMillis   float64 `json:"ttrtMillis,omitempty"`
}

// CAC selects admission-control options. Zero fields keep defaults.
type CAC struct {
	// Beta is the allocation knob of Eq. 35–36.
	Beta *float64 `json:"beta,omitempty"`
	// Rule is "proportional" (default), "fixed-split" or "sender-biased".
	Rule string `json:"rule,omitempty"`
	// HMinAbsMicros is H^min_abs in microseconds.
	HMinAbsMicros float64 `json:"hMinAbsMicros,omitempty"`
}

// Action is one step of the scenario.
type Action struct {
	// Admit describes a connection request; exactly one of Admit/Release
	// must be set.
	Admit *Request `json:"admit,omitempty"`
	// Release names a connection to tear down.
	Release string `json:"release,omitempty"`
}

// Request describes one admission request.
type Request struct {
	ID             string  `json:"id"`
	SrcRing        int     `json:"srcRing"`
	SrcHost        int     `json:"srcHost"`
	DstRing        int     `json:"dstRing"`
	DstHost        int     `json:"dstHost"`
	DeadlineMillis float64 `json:"deadlineMillis"`
	Source         Source  `json:"source"`
}

// Source describes a traffic model.
type Source struct {
	// Type is "dualPeriodic", "periodic", "cbr" or "leakyBucket".
	Type string `json:"type"`
	// Dual-periodic / periodic parameters (kbit and milliseconds).
	C1Kbit   float64 `json:"c1Kbit,omitempty"`
	P1Millis float64 `json:"p1Millis,omitempty"`
	C2Kbit   float64 `json:"c2Kbit,omitempty"`
	P2Millis float64 `json:"p2Millis,omitempty"`
	// CBR / bucket parameters.
	RateMbps  float64 `json:"rateMbps,omitempty"`
	SigmaKbit float64 `json:"sigmaKbit,omitempty"`
	// PeakMbps bounds the instantaneous rate (default 100, the FDDI medium).
	PeakMbps float64 `json:"peakMbps,omitempty"`
}

// Descriptor builds the traffic descriptor for this source.
func (s Source) Descriptor() (traffic.Descriptor, error) {
	peak := s.PeakMbps * 1e6
	if peak == 0 {
		peak = 100e6
	}
	switch s.Type {
	case "dualPeriodic":
		return traffic.NewDualPeriodic(s.C1Kbit*1e3, s.P1Millis*units.Millisecond, s.C2Kbit*1e3, s.P2Millis*units.Millisecond, peak)
	case "periodic":
		return traffic.NewPeriodic(s.C1Kbit*1e3, s.P1Millis*units.Millisecond, peak)
	case "cbr":
		return traffic.NewCBR(s.RateMbps * 1e6)
	case "leakyBucket":
		return traffic.NewLeakyBucket(s.SigmaKbit*1e3, s.RateMbps*1e6, peak)
	default:
		return nil, fmt.Errorf("scenario: unknown source type %q", s.Type)
	}
}

// Spec converts the request into a validated core.ConnSpec.
func (r Request) Spec() (core.ConnSpec, error) {
	desc, err := r.Source.Descriptor()
	if err != nil {
		return core.ConnSpec{}, fmt.Errorf("scenario: request %q: %w", r.ID, err)
	}
	spec := core.ConnSpec{
		ID:       r.ID,
		Src:      topo.HostID{Ring: r.SrcRing, Index: r.SrcHost},
		Dst:      topo.HostID{Ring: r.DstRing, Index: r.DstHost},
		Source:   desc,
		Deadline: r.DeadlineMillis * units.Millisecond,
	}
	if err := spec.Validate(); err != nil {
		return core.ConnSpec{}, err
	}
	return spec, nil
}

// TopologyConfig materializes the topology with defaults filled in.
func (s Scenario) TopologyConfig() topo.Config {
	cfg := topo.Default()
	if s.Topology == nil {
		return cfg
	}
	t := s.Topology
	if t.NumRings > 0 {
		cfg.NumRings = t.NumRings
	}
	if t.HostsPerRing > 0 {
		cfg.HostsPerRing = t.HostsPerRing
	}
	if t.NumSwitches > 0 {
		cfg.NumSwitches = t.NumSwitches
	}
	if t.LinkMbps > 0 {
		cfg.LinkBps = t.LinkMbps * 1e6
	}
	if t.TTRTMillis > 0 {
		cfg.Ring.TTRT = t.TTRTMillis * units.Millisecond
	}
	return cfg
}

// CACOptions materializes the admission-control options.
func (s Scenario) CACOptions() (core.Options, error) {
	var opts core.Options
	if s.CAC.Beta != nil {
		opts.Beta = *s.CAC.Beta
		opts.BetaSet = true
	}
	switch s.CAC.Rule {
	case "", "proportional":
		opts.Rule = core.RuleProportional
	case "fixed-split":
		opts.Rule = core.RuleFixedSplit
	case "sender-biased":
		opts.Rule = core.RuleSenderBiased
	default:
		return core.Options{}, fmt.Errorf("scenario: unknown rule %q", s.CAC.Rule)
	}
	opts.HMinAbs = s.CAC.HMinAbsMicros * units.Microsecond
	return opts, nil
}

// Validate checks structural consistency.
func (s Scenario) Validate() error {
	if len(s.Actions) == 0 {
		return errors.New("scenario: no actions")
	}
	seen := map[string]bool{}
	for i, a := range s.Actions {
		switch {
		case a.Admit != nil && a.Release != "":
			return fmt.Errorf("scenario: action %d sets both admit and release", i)
		case a.Admit == nil && a.Release == "":
			return fmt.Errorf("scenario: action %d sets neither admit nor release", i)
		case a.Admit != nil:
			if a.Admit.ID == "" {
				return fmt.Errorf("scenario: action %d: admit without id", i)
			}
			if seen[a.Admit.ID] {
				return fmt.Errorf("scenario: action %d: duplicate admit id %q", i, a.Admit.ID)
			}
			seen[a.Admit.ID] = true
			if _, err := a.Admit.Spec(); err != nil {
				return fmt.Errorf("scenario: action %d: %w", i, err)
			}
		case a.Release != "":
			if !seen[a.Release] {
				return fmt.Errorf("scenario: action %d releases unknown connection %q", i, a.Release)
			}
		}
	}
	if _, err := s.CACOptions(); err != nil {
		return err
	}
	return s.TopologyConfig().Validate()
}

// Parse reads a scenario from JSON.
func Parse(r io.Reader) (Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("scenario: decoding: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// Load reads a scenario from a file.
func Load(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("scenario: opening %s: %w", path, err)
	}
	defer f.Close()
	return Parse(f)
}

// Default returns a built-in demonstration scenario: four multimedia
// connections across the paper's evaluation network, then a release and a
// re-admission.
func Default() Scenario {
	src := Source{Type: "dualPeriodic", C1Kbit: 50, P1Millis: 10, C2Kbit: 10, P2Millis: 1}
	return Scenario{
		Name: "default",
		Actions: []Action{
			{Admit: &Request{ID: "video-1", SrcRing: 0, SrcHost: 0, DstRing: 1, DstHost: 0, DeadlineMillis: 50, Source: src}},
			{Admit: &Request{ID: "video-2", SrcRing: 0, SrcHost: 1, DstRing: 2, DstHost: 0, DeadlineMillis: 60, Source: src}},
			{Admit: &Request{ID: "audio-1", SrcRing: 1, SrcHost: 0, DstRing: 0, DstHost: 2, DeadlineMillis: 40,
				Source: Source{Type: "periodic", C1Kbit: 8, P1Millis: 5}}},
			{Admit: &Request{ID: "bulk-1", SrcRing: 2, SrcHost: 0, DstRing: 1, DstHost: 2, DeadlineMillis: 70,
				Source: Source{Type: "cbr", RateMbps: 4}}},
			{Release: "video-1"},
			{Admit: &Request{ID: "video-3", SrcRing: 0, SrcHost: 2, DstRing: 1, DstHost: 3, DeadlineMillis: 55, Source: src}},
		},
	}
}
