package signaling

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"fafnet/internal/core"
)

// Server exposes a Controller over newline-delimited JSON. The controller
// is not concurrency-safe, so the server serializes all operations behind a
// mutex; each accepted TCP connection may issue any number of sequential
// requests.
type Server struct {
	mu  sync.Mutex
	ctl *core.Controller

	wg       sync.WaitGroup
	listener net.Listener
	closed   chan struct{}
}

// NewServer wraps a controller.
func NewServer(ctl *core.Controller) (*Server, error) {
	if ctl == nil {
		return nil, errors.New("signaling: server requires a controller")
	}
	return &Server{ctl: ctl, closed: make(chan struct{})}, nil
}

// Serve accepts connections on l until Close is called. It blocks.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.listener != nil {
		s.mu.Unlock()
		return errors.New("signaling: server already serving")
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.closed:
				s.wg.Wait()
				return nil
			default:
				return fmt.Errorf("signaling: accept: %w", err)
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Addr returns the address the server is listening on, or nil when Serve has
// not yet stored its listener. Callers that need the address to reach a server
// started concurrently should prefer the address they dialed.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// Close stops accepting and closes the listener. In-flight requests finish.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	if s.listener != nil {
		return s.listener.Close()
	}
	return nil
}

// handle serves one client connection.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // EOF or malformed stream: drop the connection
		}
		resp := s.execute(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// execute runs one request against the controller.
func (s *Server) execute(req Request) Response {
	if err := req.Validate(); err != nil {
		return Response{Error: err.Error()}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch req.Op {
	case OpAdmit, OpPreview:
		spec, err := req.Admit.Spec()
		if err != nil {
			return Response{Error: err.Error()}
		}
		var dec core.Decision
		if req.Op == OpAdmit {
			dec, err = s.ctl.RequestAdmission(spec)
		} else {
			dec, err = s.ctl.PreviewAdmission(spec)
		}
		if err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true, Decision: wireDecision(spec, dec)}
	case OpRelease:
		ok := s.ctl.Release(req.Release)
		return Response{OK: true, Released: &ok}
	case OpReport:
		delays, err := s.ctl.DelayReport()
		if err != nil {
			return Response{Error: err.Error()}
		}
		var report []ConnReport
		for _, c := range s.ctl.Connections() {
			report = append(report, ConnReport{
				ID:             c.ID,
				Src:            c.Src.String(),
				Dst:            c.Dst.String(),
				DelayMillis:    delays[c.ID] * 1e3,
				DeadlineMillis: c.Deadline * 1e3,
			})
		}
		return Response{OK: true, Report: report}
	case OpBuffers:
		buffers, err := s.ctl.BufferReport()
		if err != nil {
			return Response{Error: err.Error()}
		}
		var out []BufferReport
		for _, b := range buffers {
			out = append(out, BufferReport{
				ID:      b.ConnID,
				SrcKbit: b.SrcBufferBits / 1e3,
				DstKbit: b.DstBufferBits / 1e3,
			})
		}
		return Response{OK: true, Buffers: out}
	default:
		return Response{Error: fmt.Sprintf("signaling: unknown op %q", req.Op)}
	}
}
