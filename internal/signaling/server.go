package signaling

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fafnet/internal/core"
	"fafnet/internal/obs"
)

// acceptRetryMax bounds the backoff Serve applies after a temporary accept
// failure (a transient fault or file-descriptor exhaustion), mirroring
// net/http.Server's accept loop.
const acceptRetryMax = time.Second

// Server exposes a Controller over newline-delimited JSON. The controller
// is not concurrency-safe, so the server serializes all operations behind a
// mutex; each accepted TCP connection may issue any number of sequential
// requests.
//
// The server keeps a registry of open connections, which is what makes
// shutdown sound: Close force-closes everything immediately, Shutdown
// drains gracefully — stops accepting, closes idle connections, waits for
// in-flight requests to finish, and force-closes stragglers only when its
// context expires.
type Server struct {
	mu sync.Mutex
	// ctl is the wrapped controller; it is not concurrency-safe, so every
	// operation on it is serialized here. guarded by mu.
	ctl *core.Controller

	// pipe, when non-nil, is the sharded admission pipeline and the server
	// dispatches operations to it concurrently — no mutex: the pipeline
	// provides its own synchronization. Exactly one of ctl and pipe is set,
	// at construction, and pipe is immutable afterwards.
	pipe *core.Sharded

	// opts is the backend's effective CAC configuration, captured at
	// construction so audit records can report β without touching the
	// backend.
	opts core.Options

	// IdleTimeout, when positive, bounds how long a connection may sit
	// between requests (and how long one request may take to arrive in
	// full) before the server closes it. WriteTimeout, when positive,
	// bounds one response write. Both must be set before Serve; zero means
	// no deadline, the pre-hardening behavior.
	IdleTimeout  time.Duration
	WriteTimeout time.Duration

	// audit, when set, receives one record per admit/preview/release. An
	// atomic pointer so SetAuditLog needs no lock ordering against s.mu.
	audit atomic.Pointer[obs.AuditLog]

	// asyncAudit, when set, takes precedence over audit: records are
	// enqueued to the async writer instead of appended inline. State-
	// changing records are enqueued inside the backend's commit critical
	// section (legacy: under mu; sharded: under the pipeline's commit
	// lock), so queue order — and therefore file order — equals commit
	// order, preserving replay-to-identical-state.
	asyncAudit atomic.Pointer[obs.AsyncAuditWriter]

	wg sync.WaitGroup
	// listener is the accept-loop listener Serve registers. guarded by mu.
	listener net.Listener
	closed   chan struct{}

	// connMu guards the connection registry and the draining flag.
	// Lock-order note: connMu is a leaf — nothing is acquired and no
	// blocking operation runs while it is held.
	connMu sync.Mutex
	// conns is the open-connection registry. guarded by connMu.
	conns map[net.Conn]*connState
	// draining is set once shutdown begins. guarded by connMu.
	draining bool
	// drainSignaled records that drained was handed to a closer. guarded by connMu.
	drainSignaled bool
	drained       chan struct{} // closed once draining && registry empty

	// testHookBeforeExecute, when non-nil, runs after a request is decoded
	// (the connection is marked active) and before it executes. Tests use it
	// to hold a request deterministically in flight; nil in production.
	testHookBeforeExecute func()
}

// connState tracks one connection's position in the request cycle so a
// draining server can tell idle connections (safe to close now) from ones
// with a request in flight (worth waiting for).
type connState struct {
	active atomic.Bool // a request has been decoded and not yet answered
}

// NewServer wraps a controller.
func NewServer(ctl *core.Controller) (*Server, error) {
	if ctl == nil {
		return nil, errors.New("signaling: server requires a controller")
	}
	return &Server{
		ctl:     ctl,
		opts:    ctl.Options(),
		closed:  make(chan struct{}),
		conns:   make(map[net.Conn]*connState),
		drained: make(chan struct{}),
	}, nil
}

// NewShardedServer wraps a sharded admission pipeline. Unlike the
// controller-backed server, operations are NOT serialized behind the server
// mutex: handlers call straight into the pipeline, which admits, releases
// and reports concurrently.
func NewShardedServer(p *core.Sharded) (*Server, error) {
	if p == nil {
		return nil, errors.New("signaling: server requires a pipeline")
	}
	return &Server{
		pipe:    p,
		opts:    p.Options(),
		closed:  make(chan struct{}),
		conns:   make(map[net.Conn]*connState),
		drained: make(chan struct{}),
	}, nil
}

// Serve accepts connections on l until Close or Shutdown is called. It
// blocks, returning nil after a clean shutdown once every handler has
// exited. Temporary accept errors (in the net.Error sense) are retried with
// exponential backoff instead of killing the server.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.listener != nil {
		s.mu.Unlock()
		return errors.New("signaling: server already serving")
	}
	s.listener = l
	s.mu.Unlock()
	if s.isDraining() {
		// Shutdown ran before this listener was registered and so could not
		// close it; finish the job here instead of accepting forever.
		_ = l.Close()
		s.wg.Wait()
		return nil
	}
	var retryDelay time.Duration
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.closed:
				s.wg.Wait()
				return nil
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Temporary() {
				if retryDelay == 0 {
					retryDelay = 5 * time.Millisecond
				} else if retryDelay *= 2; retryDelay > acceptRetryMax {
					retryDelay = acceptRetryMax
				}
				mAcceptRetries.Inc()
				time.Sleep(retryDelay)
				continue
			}
			return fmt.Errorf("signaling: accept: %w", err)
		}
		retryDelay = 0
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Addr returns the address the server is listening on, or nil when Serve has
// not yet stored its listener. Callers that need the address to reach a server
// started concurrently should prefer the address they dialed.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// Close stops the server immediately: it stops accepting, force-closes
// every open connection (in-flight requests lose their response), and
// returns once every handler has exited. For a graceful stop use Shutdown.
// Close is idempotent and safe to call concurrently.
func (s *Server) Close() error {
	s.beginShutdown()
	s.closeConns(func(*connState) bool { return true })
	<-s.drained
	return nil
}

// Shutdown drains the server: it stops accepting, closes idle connections,
// lets in-flight requests finish (their handlers close the connection after
// answering), and waits for the registry to empty. If ctx expires first the
// remaining connections are force-closed — committed work is never rolled
// back, but those clients lose their responses — and ctx's error is
// returned. A nil error means every client got its answer.
//
// A connection that has received a request but not yet decoded it when
// Shutdown starts counts as idle and is closed without an answer; the
// retrying client treats that as a confirmed-unsent failure only if no
// bytes of its request reached the wire (see ClientConfig).
func (s *Server) Shutdown(ctx context.Context) error {
	s.beginShutdown()
	s.closeConns(func(st *connState) bool { return !st.active.Load() })
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
	}
	n := s.closeConns(func(*connState) bool { return true })
	mForceClosed.Add(uint64(n))
	<-s.drained
	return ctx.Err()
}

// beginShutdown marks the server draining, stops the accept loop, and
// arranges the drained signal if no connections are open. Idempotent.
func (s *Server) beginShutdown() {
	s.mu.Lock()
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	l := s.listener
	s.mu.Unlock()
	if l != nil {
		// Idempotent on net listeners; unblocks Accept.
		_ = l.Close()
	}
	s.connMu.Lock()
	s.draining = true
	signal := s.maybeDrainedLocked()
	s.connMu.Unlock()
	if signal {
		close(s.drained)
	}
}

// maybeDrainedLocked reports (once) that the drain completed. Caller holds
// connMu and must close s.drained when true is returned — outside the lock.
func (s *Server) maybeDrainedLocked() bool {
	if s.draining && !s.drainSignaled && len(s.conns) == 0 {
		s.drainSignaled = true
		return true
	}
	return false
}

// closeConns closes every registered connection selected by pred and
// returns how many it closed.
func (s *Server) closeConns(pred func(*connState) bool) int {
	s.connMu.Lock()
	victims := make([]net.Conn, 0, len(s.conns))
	for conn, st := range s.conns {
		if pred(st) {
			victims = append(victims, conn)
		}
	}
	s.connMu.Unlock()
	for _, conn := range victims {
		// Unblocks the handler's pending Decode/Encode; the handler then
		// deregisters itself, which is what moves the drain forward.
		_ = conn.Close()
	}
	return len(victims)
}

// trackConn registers a new connection, refusing it when the server is
// draining (the accept loop may race beginShutdown by one connection).
func (s *Server) trackConn(conn net.Conn, st *connState) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.draining {
		return false
	}
	s.conns[conn] = st
	gOpenConns.Set(float64(len(s.conns)))
	return true
}

// forgetConn closes and deregisters a connection, signaling the drain when
// it was the last one.
func (s *Server) forgetConn(conn net.Conn) {
	_ = conn.Close()
	s.connMu.Lock()
	delete(s.conns, conn)
	gOpenConns.Set(float64(len(s.conns)))
	signal := s.maybeDrainedLocked()
	s.connMu.Unlock()
	if signal {
		close(s.drained)
	}
}

// isDraining reports whether shutdown has begun.
func (s *Server) isDraining() bool {
	select {
	case <-s.closed:
		return true
	default:
		return false
	}
}

// handle serves one client connection.
func (s *Server) handle(conn net.Conn) {
	st := &connState{}
	if !s.trackConn(conn, st) {
		_ = conn.Close()
		return
	}
	defer s.forgetConn(conn)
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		if s.IdleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.IdleTimeout)); err != nil {
				// A connection that cannot arm its idle deadline would sit
				// unbounded — exactly what the timeout hardening forbids.
				return
			}
		}
		var req Request
		if err := dec.Decode(&req); err != nil {
			if errors.Is(err, io.EOF) {
				return // clean client close
			}
			if isTimeout(err) {
				mIdleClosed.Inc()
				return // idle past the deadline; nothing to answer
			}
			if s.isDraining() {
				return // our own shutdown close, not a client error
			}
			// Malformed JSON: answer with a structured error so scripted
			// clients see what went wrong, then drop the connection — the
			// stream position after a parse failure is undefined, so
			// resynchronization is impossible.
			mRequests[opInvalid].Inc()
			mErrors[opInvalid].Inc()
			_ = enc.Encode(Response{Error: fmt.Sprintf("signaling: malformed request: %v", err)})
			return
		}
		st.active.Store(true)
		if s.testHookBeforeExecute != nil {
			s.testHookBeforeExecute()
		}
		resp := s.execute(req)
		if s.WriteTimeout > 0 {
			if err := conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout)); err != nil {
				// The request executed; without a bounded write the handler
				// could stall a drain forever, so drop the connection (the
				// client's retry policy treats this as sent-but-unanswered).
				st.active.Store(false)
				return
			}
		}
		err := enc.Encode(resp)
		st.active.Store(false)
		if err != nil {
			return
		}
		if s.isDraining() {
			// The drain let this request finish; don't take another.
			return
		}
	}
}

// isTimeout reports whether err is an I/O deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// execute wraps executeOp with the per-op observability (request/error
// counters, latency histogram, op echo).
func (s *Server) execute(req Request) Response {
	label := opLabel(req.Op)
	mRequests[label].Inc()
	_, sp := obs.Start(context.Background(), "signaling."+label)
	resp := s.executeOp(req)
	mOpSeconds[label].Observe(sp.Seconds())
	sp.End()
	resp.Op = req.Op
	if !resp.OK {
		mErrors[label].Inc()
	}
	return resp
}

// executeOp runs one request against the backend.
func (s *Server) executeOp(req Request) Response {
	if err := req.Validate(); err != nil {
		return Response{Error: err.Error()}
	}
	if s.pipe != nil {
		return s.executeSharded(req)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch req.Op {
	case OpAdmit, OpPreview:
		spec, err := req.Admit.Spec()
		if err != nil {
			return Response{Error: err.Error()}
		}
		var dec core.Decision
		if req.Op == OpAdmit {
			dec, err = s.ctl.RequestAdmission(spec)
		} else {
			dec, err = s.ctl.PreviewAdmission(spec)
		}
		s.auditDecision(req, spec, dec, err)
		if err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true, Decision: wireDecision(spec, dec)}
	case OpPreviewBatch:
		decs := make([]*Decision, len(req.AdmitBatch))
		for i := range req.AdmitBatch {
			spec, err := req.AdmitBatch[i].Spec()
			if err != nil {
				return Response{Error: err.Error()}
			}
			dec, opErr := s.ctl.PreviewAdmission(spec)
			s.auditDecision(Request{Op: OpPreviewBatch, Admit: &req.AdmitBatch[i]}, spec, dec, opErr)
			decs[i] = wireBatchDecision(spec, dec, opErr)
		}
		return Response{OK: true, Decisions: decs}
	case OpRelease:
		ok := s.ctl.Release(req.Release)
		s.auditRelease(req.Release, ok)
		return Response{OK: true, Released: &ok}
	case OpReport:
		delays, err := s.ctl.DelayReport()
		if err != nil {
			return Response{Error: err.Error()}
		}
		var report []ConnReport
		for _, c := range s.ctl.Connections() {
			report = append(report, ConnReport{
				ID:             c.ID,
				Src:            c.Src.String(),
				Dst:            c.Dst.String(),
				DelayMillis:    delays[c.ID] * 1e3,
				DeadlineMillis: c.Deadline * 1e3,
			})
		}
		return Response{OK: true, Report: report}
	case OpBuffers:
		buffers, err := s.ctl.BufferReport()
		if err != nil {
			return Response{Error: err.Error()}
		}
		var out []BufferReport
		for _, b := range buffers {
			out = append(out, BufferReport{
				ID:      b.ConnID,
				SrcKbit: b.SrcBufferBits / 1e3,
				DstKbit: b.DstBufferBits / 1e3,
			})
		}
		return Response{OK: true, Buffers: out}
	default:
		return Response{Error: fmt.Sprintf("signaling: unknown op %q", req.Op)}
	}
}

// executeSharded runs one request against the sharded pipeline, with no
// server-level lock. Audit records for state-changing operations are built
// and enqueued by callbacks the pipeline invokes inside its commit critical
// section, which is what keeps audit order equal to commit order.
func (s *Server) executeSharded(req Request) Response {
	switch req.Op {
	case OpAdmit, OpPreview:
		spec, err := req.Admit.Spec()
		if err != nil {
			return Response{Error: err.Error()}
		}
		var record func(core.Decision, error)
		if s.auditEnabled() {
			record = func(dec core.Decision, opErr error) {
				s.appendAudit(s.decisionRecord(req, spec, dec, opErr))
			}
		}
		var dec core.Decision
		if req.Op == OpAdmit {
			dec, err = s.pipe.RequestAdmissionAudited(spec, record)
		} else {
			dec, err = s.pipe.PreviewAdmissionAudited(spec, record)
		}
		if err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true, Decision: wireDecision(spec, dec)}
	case OpPreviewBatch:
		specs := make([]core.ConnSpec, len(req.AdmitBatch))
		for i := range req.AdmitBatch {
			spec, err := req.AdmitBatch[i].Spec()
			if err != nil {
				return Response{Error: err.Error()}
			}
			specs[i] = spec
		}
		var record func(int, core.Decision, error)
		if s.auditEnabled() {
			record = func(i int, dec core.Decision, opErr error) {
				elem := Request{Op: OpPreviewBatch, Admit: &req.AdmitBatch[i]}
				s.appendAudit(s.decisionRecord(elem, specs[i], dec, opErr))
			}
		}
		results := s.pipe.PreviewAdmissionBatch(specs, record)
		decs := make([]*Decision, len(results))
		for i, r := range results {
			decs[i] = wireBatchDecision(specs[i], r.Decision, r.Err)
		}
		return Response{OK: true, Decisions: decs}
	case OpRelease:
		var record func(bool)
		if s.auditEnabled() {
			record = func(found bool) {
				s.appendAudit(s.releaseRecord(req.Release, found))
			}
		}
		ok := s.pipe.ReleaseAudited(req.Release, record)
		return Response{OK: true, Released: &ok}
	case OpReport:
		delays, err := s.pipe.DelayReport()
		if err != nil {
			return Response{Error: err.Error()}
		}
		var report []ConnReport
		for _, c := range s.pipe.Connections() {
			report = append(report, ConnReport{
				ID:             c.ID,
				Src:            c.Src.String(),
				Dst:            c.Dst.String(),
				DelayMillis:    delays[c.ID] * 1e3,
				DeadlineMillis: c.Deadline * 1e3,
			})
		}
		return Response{OK: true, Report: report}
	case OpBuffers:
		buffers, err := s.pipe.BufferReport()
		if err != nil {
			return Response{Error: err.Error()}
		}
		var out []BufferReport
		for _, b := range buffers {
			out = append(out, BufferReport{
				ID:      b.ConnID,
				SrcKbit: b.SrcBufferBits / 1e3,
				DstKbit: b.DstBufferBits / 1e3,
			})
		}
		return Response{OK: true, Buffers: out}
	default:
		return Response{Error: fmt.Sprintf("signaling: unknown op %q", req.Op)}
	}
}
