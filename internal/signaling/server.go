package signaling

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"fafnet/internal/core"
	"fafnet/internal/obs"
)

// Server exposes a Controller over newline-delimited JSON. The controller
// is not concurrency-safe, so the server serializes all operations behind a
// mutex; each accepted TCP connection may issue any number of sequential
// requests.
type Server struct {
	mu  sync.Mutex
	ctl *core.Controller

	// audit, when set, receives one record per admit/preview/release. An
	// atomic pointer so SetAuditLog needs no lock ordering against s.mu.
	audit atomic.Pointer[obs.AuditLog]

	wg       sync.WaitGroup
	listener net.Listener
	closed   chan struct{}
}

// NewServer wraps a controller.
func NewServer(ctl *core.Controller) (*Server, error) {
	if ctl == nil {
		return nil, errors.New("signaling: server requires a controller")
	}
	return &Server{ctl: ctl, closed: make(chan struct{})}, nil
}

// Serve accepts connections on l until Close is called. It blocks.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.listener != nil {
		s.mu.Unlock()
		return errors.New("signaling: server already serving")
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.closed:
				s.wg.Wait()
				return nil
			default:
				return fmt.Errorf("signaling: accept: %w", err)
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Addr returns the address the server is listening on, or nil when Serve has
// not yet stored its listener. Callers that need the address to reach a server
// started concurrently should prefer the address they dialed.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// Close stops accepting and closes the listener. In-flight requests finish.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	if s.listener != nil {
		return s.listener.Close()
	}
	return nil
}

// handle serves one client connection.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if errors.Is(err, io.EOF) {
				return // clean client close
			}
			// Malformed JSON: answer with a structured error so scripted
			// clients see what went wrong, then drop the connection — the
			// stream position after a parse failure is undefined, so
			// resynchronization is impossible.
			mRequests[opInvalid].Inc()
			mErrors[opInvalid].Inc()
			_ = enc.Encode(Response{Error: fmt.Sprintf("signaling: malformed request: %v", err)})
			return
		}
		resp := s.execute(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// execute wraps executeOp with the per-op observability (request/error
// counters, latency histogram, op echo).
func (s *Server) execute(req Request) Response {
	label := opLabel(req.Op)
	mRequests[label].Inc()
	_, sp := obs.Start(context.Background(), "signaling."+label)
	resp := s.executeOp(req)
	mOpSeconds[label].Observe(sp.Seconds())
	sp.End()
	resp.Op = req.Op
	if !resp.OK {
		mErrors[label].Inc()
	}
	return resp
}

// executeOp runs one request against the controller.
func (s *Server) executeOp(req Request) Response {
	if err := req.Validate(); err != nil {
		return Response{Error: err.Error()}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch req.Op {
	case OpAdmit, OpPreview:
		spec, err := req.Admit.Spec()
		if err != nil {
			return Response{Error: err.Error()}
		}
		var dec core.Decision
		if req.Op == OpAdmit {
			dec, err = s.ctl.RequestAdmission(spec)
		} else {
			dec, err = s.ctl.PreviewAdmission(spec)
		}
		s.auditDecision(req, spec, dec, err)
		if err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true, Decision: wireDecision(spec, dec)}
	case OpRelease:
		ok := s.ctl.Release(req.Release)
		s.auditRelease(req.Release, ok)
		return Response{OK: true, Released: &ok}
	case OpReport:
		delays, err := s.ctl.DelayReport()
		if err != nil {
			return Response{Error: err.Error()}
		}
		var report []ConnReport
		for _, c := range s.ctl.Connections() {
			report = append(report, ConnReport{
				ID:             c.ID,
				Src:            c.Src.String(),
				Dst:            c.Dst.String(),
				DelayMillis:    delays[c.ID] * 1e3,
				DeadlineMillis: c.Deadline * 1e3,
			})
		}
		return Response{OK: true, Report: report}
	case OpBuffers:
		buffers, err := s.ctl.BufferReport()
		if err != nil {
			return Response{Error: err.Error()}
		}
		var out []BufferReport
		for _, b := range buffers {
			out = append(out, BufferReport{
				ID:      b.ConnID,
				SrcKbit: b.SrcBufferBits / 1e3,
				DstKbit: b.DstBufferBits / 1e3,
			})
		}
		return Response{OK: true, Buffers: out}
	default:
		return Response{Error: fmt.Sprintf("signaling: unknown op %q", req.Op)}
	}
}
