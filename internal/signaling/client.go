package signaling

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"math/rand"

	"fafnet/internal/scenario"
)

// ErrPossiblyCommitted marks an admit whose request may have reached the
// server but whose response was lost (the connection died between send and
// receive). The server may or may not have committed the admission; blindly
// retrying could double-allocate ring bandwidth, so the client refuses to
// retry and surfaces this error instead. Callers should query Report (or
// retry the admit and treat a duplicate-id error as success) to resolve the
// ambiguity.
var ErrPossiblyCommitted = errors.New("signaling: request may have been committed; response lost")

// ServerError is a protocol-level failure: the server answered ok=false
// (validation failure, unknown op, controller error). The transport is
// healthy and the connection stays usable, so ServerErrors are never
// retried.
type ServerError struct{ Msg string }

// Error implements the error interface.
func (e *ServerError) Error() string { return e.Msg }

// RetryPolicy shapes the client's reconnect-and-retry behavior: capped
// exponential backoff with jitter. The zero value disables retries
// entirely (one attempt, no redial).
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first.
	// 0 and 1 both mean a single attempt.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt doubles it, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. 0 means BaseDelay is never doubled past
	// 30× (a safety cap against unbounded sleeps).
	MaxDelay time.Duration
	// Jitter is the fraction of each delay randomized, in [0, 1]: the
	// delay d becomes d·(1 − Jitter/2) + d·Jitter·U[0,1). 0 disables
	// jitter; 1 spreads attempts over [d/2, 3d/2). Jitter prevents a
	// restarted daemon from being hit by every waiting client at once.
	Jitter float64
	// Rand supplies the jitter variates in [0, 1). Nil uses the global
	// math/rand source; tests inject a seeded source for reproducibility.
	Rand func() float64
	// Sleep, when non-nil, replaces time.Sleep between attempts (a test
	// hook; also usable for context-aware waiting).
	Sleep func(time.Duration)
}

// DefaultRetryPolicy is the policy Dial installs: four attempts spread over
// roughly half a second, with full jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Jitter:      1,
	}
}

// delay computes the jittered backoff before attempt n (n counts completed
// attempts, so n=1 delays the second attempt).
func (p RetryPolicy) delay(n int) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		return 0
	}
	maxDelay := p.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 30 * p.BaseDelay
	}
	for i := 1; i < n && d < maxDelay; i++ {
		d *= 2
	}
	if d > maxDelay {
		d = maxDelay
	}
	if p.Jitter > 0 {
		r := p.Rand
		if r == nil {
			r = rand.Float64
		}
		d = time.Duration(float64(d) * (1 - p.Jitter/2 + p.Jitter*r()))
	}
	return d
}

// sleep waits the jittered backoff before attempt n.
func (p RetryPolicy) sleep(n int) {
	d := p.delay(n)
	if d <= 0 {
		return
	}
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// ClientConfig bundles the client's transport knobs.
type ClientConfig struct {
	// Addr is the server address. Required for DialConfig; when empty
	// (NewClient over an established conn) the client cannot redial, so a
	// broken connection fails every subsequent call.
	Addr string
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// ReadTimeout bounds one response read; WriteTimeout one request
	// write. Zero means no deadline. Admits run the full CAC analysis
	// server-side, so ReadTimeout must comfortably exceed the worst-case
	// decision latency (see fafnet_cac_decide_seconds).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// Retry is the reconnect-and-retry policy. Which operations a retry
	// may repeat is decided per call: see the package documentation's
	// idempotency table.
	Retry RetryPolicy
	// Dialer overrides how connections are made (tests wrap the conn in
	// fault injectors here). Nil uses net.DialTimeout("tcp", ...).
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
}

// ClientStats counts the client's transport-level activity, for tests and
// operational logging.
type ClientStats struct {
	// Attempts counts request attempts, including first tries.
	Attempts int
	// Retries counts attempts beyond the first for some request.
	Retries int
	// Redials counts reconnections after a broken transport.
	Redials int
}

// Client talks to a signaling server, transparently redialing and retrying
// per its RetryPolicy. It is safe for sequential use only (one request in
// flight at a time).
type Client struct {
	cfg   ClientConfig
	stats ClientStats

	conn    net.Conn
	written *meteredWriter
	dec     *json.Decoder
	enc     *json.Encoder
}

// Dial connects to a signaling server with the default retry policy. For
// full control over deadlines and retries use DialConfig.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return DialConfig(ClientConfig{Addr: addr, DialTimeout: timeout, Retry: DefaultRetryPolicy()})
}

// DialConfig connects to a signaling server with explicit transport
// configuration. The initial dial is attempted once; reconnects during
// retries follow cfg.Retry.
func DialConfig(cfg ClientConfig) (*Client, error) {
	if cfg.Addr == "" {
		return nil, errors.New("signaling: DialConfig requires an address")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	c := &Client{cfg: cfg}
	if err := c.redial(); err != nil {
		return nil, err
	}
	return c, nil
}

// NewClient wraps an established connection (useful for tests and custom
// transports). The client cannot redial — a broken transport is permanent —
// but unsent requests are still retried on the live connection per the
// default policy semantics (attempts with no way to reconnect fail fast).
func NewClient(conn net.Conn) *Client {
	c := &Client{}
	c.install(conn)
	return c
}

// install points the codec state at a fresh connection.
func (c *Client) install(conn net.Conn) {
	c.conn = conn
	c.written = &meteredWriter{w: conn}
	c.dec = json.NewDecoder(bufio.NewReader(conn))
	c.enc = json.NewEncoder(c.written)
}

// redial establishes a fresh connection per the config.
func (c *Client) redial() error {
	dial := c.cfg.Dialer
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	conn, err := dial(c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("signaling: dialing %s: %w", c.cfg.Addr, err)
	}
	c.install(conn)
	return nil
}

// Close releases the connection.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Stats returns transport-activity counters since the client was created.
func (c *Client) Stats() ClientStats { return c.stats }

// meteredWriter counts bytes the transport accepted, which is how the
// client distinguishes a confirmed-unsent request (zero bytes of it hit the
// wire — safe to retry anything) from a possibly-delivered one.
type meteredWriter struct {
	w net.Conn
	n int64
}

// Write forwards to the connection, counting accepted bytes.
func (m *meteredWriter) Write(p []byte) (int, error) {
	n, err := m.w.Write(p)
	m.n += int64(n)
	return n, err
}

// roundTrip sends one request and reads one response on the current
// connection, with no retries. sent reports whether any request bytes
// reached the transport (false means the server cannot have seen it).
func (c *Client) roundTrip(req Request) (resp Response, sent bool, err error) {
	if c.conn == nil {
		if c.cfg.Addr == "" {
			return Response{}, false, errors.New("signaling: connection closed")
		}
		c.stats.Redials++
		if err := c.redial(); err != nil {
			return Response{}, false, err
		}
	}
	before := c.written.n
	if c.cfg.WriteTimeout > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout)); err != nil {
			// No bytes have been written, so this failure is retry-safe.
			return Response{}, false, fmt.Errorf("signaling: arming write deadline: %w", err)
		}
	}
	if err := c.enc.Encode(req); err != nil {
		return Response{}, c.written.n > before, fmt.Errorf("signaling: sending request: %w", err)
	}
	if c.cfg.ReadTimeout > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(c.cfg.ReadTimeout)); err != nil {
			return Response{}, true, fmt.Errorf("signaling: arming read deadline: %w", err)
		}
	}
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, true, fmt.Errorf("signaling: reading response: %w", err)
	}
	if !resp.OK {
		return resp, true, &ServerError{Msg: resp.Error}
	}
	return resp, true, nil
}

// do runs one request with the retry policy. idempotent marks requests that
// may be repeated even when a previous attempt might have been executed
// (preview, report, buffers, release); admit passes false and is retried
// only while provably unsent.
func (c *Client) do(req Request, idempotent bool) (Response, error) {
	maxAttempts := c.cfg.Retry.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		c.stats.Attempts++
		resp, sent, err := c.roundTrip(req)
		if err == nil {
			return resp, nil
		}
		var se *ServerError
		if errors.As(err, &se) {
			// The transport is healthy; the server said no. Not retryable.
			return resp, err
		}
		// Transport failure: this connection is unusable.
		c.teardown()
		if sent && !idempotent {
			return Response{}, fmt.Errorf("%w (%s %v): %v", ErrPossiblyCommitted, req.Op, reqID(req), err)
		}
		lastErr = err
		if attempt >= maxAttempts || c.cfg.Addr == "" {
			return Response{}, lastErr
		}
		c.stats.Retries++
		c.cfg.Retry.sleep(attempt)
	}
}

// teardown discards a broken connection so the next attempt redials.
func (c *Client) teardown() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
}

// reqID names the connection a request targets, for error messages.
func reqID(req Request) string {
	switch {
	case req.Admit != nil:
		return req.Admit.ID
	case req.Release != "":
		return req.Release
	default:
		return "-"
	}
}

// Admit requests admission; the returned decision reports acceptance or the
// rejection reason. Admit is NOT blindly retried: if the connection dies
// after any request bytes were sent but before the response arrived, Admit
// returns ErrPossiblyCommitted rather than risk double-allocating — see the
// package documentation.
func (c *Client) Admit(req scenario.Request) (Decision, error) {
	resp, err := c.do(Request{Op: OpAdmit, Admit: &req}, false)
	if err != nil {
		return Decision{}, err
	}
	if resp.Decision == nil {
		return Decision{}, errors.New("signaling: server returned no decision")
	}
	return *resp.Decision, nil
}

// Preview runs the CAC without committing. Previews change no server state
// and are retried freely.
func (c *Client) Preview(req scenario.Request) (Decision, error) {
	resp, err := c.do(Request{Op: OpPreview, Admit: &req}, true)
	if err != nil {
		return Decision{}, err
	}
	if resp.Decision == nil {
		return Decision{}, errors.New("signaling: server returned no decision")
	}
	return *resp.Decision, nil
}

// PreviewBatch runs the CAC over a whole batch of candidates in one round
// trip, committing nothing. Results are positional: out[i] answers reqs[i],
// and a per-member failure (e.g. a duplicate id) arrives in that member's
// Decision.Error rather than failing the batch. Pure read; retried freely.
func (c *Client) PreviewBatch(reqs []scenario.Request) ([]Decision, error) {
	resp, err := c.do(Request{Op: OpPreviewBatch, AdmitBatch: reqs}, true)
	if err != nil {
		return nil, err
	}
	if len(resp.Decisions) != len(reqs) {
		return nil, fmt.Errorf("signaling: server returned %d decisions for a batch of %d", len(resp.Decisions), len(reqs))
	}
	out := make([]Decision, len(reqs))
	for i, d := range resp.Decisions {
		if d == nil {
			return nil, fmt.Errorf("signaling: batch response is missing decision %d", i)
		}
		out[i] = *d
	}
	return out, nil
}

// Release tears down a connection, reporting whether it existed. Release is
// idempotent (releasing an already-released id reports false) and retried
// freely; after a retry, a false result may mean an earlier lost attempt
// already succeeded.
func (c *Client) Release(id string) (bool, error) {
	resp, err := c.do(Request{Op: OpRelease, Release: id}, true)
	if err != nil {
		return false, err
	}
	if resp.Released == nil {
		return false, errors.New("signaling: server returned no release status")
	}
	return *resp.Released, nil
}

// Report fetches every admitted connection's worst-case delay. Read-only;
// retried freely.
func (c *Client) Report() ([]ConnReport, error) {
	resp, err := c.do(Request{Op: OpReport}, true)
	if err != nil {
		return nil, err
	}
	return resp.Report, nil
}

// Buffers fetches the Theorem 1 buffer requirements. Read-only; retried
// freely.
func (c *Client) Buffers() ([]BufferReport, error) {
	resp, err := c.do(Request{Op: OpBuffers}, true)
	if err != nil {
		return nil, err
	}
	return resp.Buffers, nil
}
