package signaling

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"fafnet/internal/scenario"
)

// Client talks to a signaling server over one TCP connection. It is safe
// for sequential use only (one request in flight at a time).
type Client struct {
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// Dial connects to a signaling server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("signaling: dialing %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (useful for tests and custom
// transports).
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		enc:  json.NewEncoder(conn),
	}
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and reads one response.
func (c *Client) roundTrip(req Request) (Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("signaling: sending request: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("signaling: reading response: %w", err)
	}
	if !resp.OK {
		return resp, errors.New(resp.Error)
	}
	return resp, nil
}

// Admit requests admission; the returned decision reports acceptance or the
// rejection reason.
func (c *Client) Admit(req scenario.Request) (Decision, error) {
	resp, err := c.roundTrip(Request{Op: OpAdmit, Admit: &req})
	if err != nil {
		return Decision{}, err
	}
	if resp.Decision == nil {
		return Decision{}, errors.New("signaling: server returned no decision")
	}
	return *resp.Decision, nil
}

// Preview runs the CAC without committing.
func (c *Client) Preview(req scenario.Request) (Decision, error) {
	resp, err := c.roundTrip(Request{Op: OpPreview, Admit: &req})
	if err != nil {
		return Decision{}, err
	}
	if resp.Decision == nil {
		return Decision{}, errors.New("signaling: server returned no decision")
	}
	return *resp.Decision, nil
}

// Release tears down a connection, reporting whether it existed.
func (c *Client) Release(id string) (bool, error) {
	resp, err := c.roundTrip(Request{Op: OpRelease, Release: id})
	if err != nil {
		return false, err
	}
	if resp.Released == nil {
		return false, errors.New("signaling: server returned no release status")
	}
	return *resp.Released, nil
}

// Report fetches every admitted connection's worst-case delay.
func (c *Client) Report() ([]ConnReport, error) {
	resp, err := c.roundTrip(Request{Op: OpReport})
	if err != nil {
		return nil, err
	}
	return resp.Report, nil
}

// Buffers fetches the Theorem 1 buffer requirements.
func (c *Client) Buffers() ([]BufferReport, error) {
	resp, err := c.roundTrip(Request{Op: OpBuffers})
	if err != nil {
		return nil, err
	}
	return resp.Buffers, nil
}
