package signaling

import (
	"net"
	"strings"
	"testing"
	"time"

	"fafnet/internal/core"
	"fafnet/internal/scenario"
	"fafnet/internal/topo"
)

// startServer spins up a loopback server and returns a connected client.
func startServer(t *testing.T) (*Client, *Server) {
	t.Helper()
	net0, err := topo.NewNetwork(topo.Default())
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := core.NewController(net0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ctl)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	client, err := Dial(l.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, srv
}

func videoRequest(id string, srcRing, srcHost, dstRing, dstHost int) scenario.Request {
	return scenario.Request{
		ID:             id,
		SrcRing:        srcRing,
		SrcHost:        srcHost,
		DstRing:        dstRing,
		DstHost:        dstHost,
		DeadlineMillis: 60,
		Source:         scenario.Source{Type: "dualPeriodic", C1Kbit: 50, P1Millis: 10, C2Kbit: 10, P2Millis: 1},
	}
}

func TestAdmitReleaseRoundTrip(t *testing.T) {
	client, _ := startServer(t)

	dec, err := client.Admit(videoRequest("v1", 0, 0, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Admitted {
		t.Fatalf("rejected: %s", dec.Reason)
	}
	if dec.HSMillis <= 0 || dec.HRMillis <= 0 {
		t.Errorf("allocations: %v / %v ms", dec.HSMillis, dec.HRMillis)
	}
	if dec.DelayMillis <= 0 || dec.DelayMillis > dec.DeadlineMillis {
		t.Errorf("delay %v vs deadline %v", dec.DelayMillis, dec.DeadlineMillis)
	}

	report, err := client.Report()
	if err != nil {
		t.Fatal(err)
	}
	if len(report) != 1 || report[0].ID != "v1" || report[0].Src != "H0.0" {
		t.Errorf("report = %+v", report)
	}

	buffers, err := client.Buffers()
	if err != nil {
		t.Fatal(err)
	}
	if len(buffers) != 1 || buffers[0].SrcKbit <= 0 {
		t.Errorf("buffers = %+v", buffers)
	}

	ok, err := client.Release("v1")
	if err != nil || !ok {
		t.Fatalf("release: %v %v", ok, err)
	}
	ok, err = client.Release("v1")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("double release should report false")
	}
}

func TestPreviewDoesNotCommit(t *testing.T) {
	client, _ := startServer(t)
	dec, err := client.Preview(videoRequest("p1", 0, 0, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Admitted {
		t.Fatalf("preview rejected: %s", dec.Reason)
	}
	report, err := client.Report()
	if err != nil {
		t.Fatal(err)
	}
	if len(report) != 0 {
		t.Errorf("preview committed state: %+v", report)
	}
}

func TestRejectionTravelsAsDecision(t *testing.T) {
	client, _ := startServer(t)
	req := videoRequest("tight", 0, 0, 1, 0)
	req.DeadlineMillis = 1 // impossible
	dec, err := client.Admit(req)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Admitted {
		t.Error("impossible deadline admitted")
	}
	if !strings.Contains(dec.Reason, "deadline") {
		t.Errorf("reason = %q", dec.Reason)
	}
}

func TestProtocolErrors(t *testing.T) {
	client, _ := startServer(t)
	// Unknown source type → protocol-level error.
	bad := videoRequest("x", 0, 0, 1, 0)
	bad.Source.Type = "warp"
	if _, err := client.Admit(bad); err == nil {
		t.Error("invalid source should error")
	}
	// Release without id.
	if _, _, err := client.roundTrip(Request{Op: OpRelease}); err == nil {
		t.Error("empty release should error")
	}
	// Unknown op.
	if _, _, err := client.roundTrip(Request{Op: "dance"}); err == nil {
		t.Error("unknown op should error")
	}
	// The connection stays usable after an error.
	if _, err := client.Admit(videoRequest("ok", 1, 0, 2, 0)); err != nil {
		t.Errorf("connection unusable after protocol error: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	client1, _ := startServer(t)
	// Second client over a raw dial to the same server. The address comes
	// from the first client's connection: srv.listener is written by the
	// Serve goroutine, so reading it here would race (and Addr() may still
	// be nil if Serve has not run yet).
	addr := client1.conn.RemoteAddr().String()
	client2, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()

	errs := make(chan error, 2)
	go func() {
		_, err := client1.Admit(videoRequest("a", 0, 0, 1, 0))
		errs <- err
	}()
	go func() {
		_, err := client2.Admit(videoRequest("b", 1, 0, 2, 0))
		errs <- err
	}()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	report, err := client1.Report()
	if err != nil {
		t.Fatal(err)
	}
	if len(report) != 2 {
		t.Errorf("report = %d connections, want 2", len(report))
	}
}

func TestRequestValidation(t *testing.T) {
	tests := []struct {
		name    string
		req     Request
		wantErr bool
	}{
		{"admit without body", Request{Op: OpAdmit}, true},
		{"preview without body", Request{Op: OpPreview}, true},
		{"release without id", Request{Op: OpRelease}, true},
		{"report", Request{Op: OpReport}, false},
		{"buffers", Request{Op: OpBuffers}, false},
		{"unknown", Request{Op: "zap"}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.req.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Error("nil controller should be rejected")
	}
}
