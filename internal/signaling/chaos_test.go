package signaling

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"fafnet/internal/core"
	"fafnet/internal/faultnet"
	"fafnet/internal/obs"
	"fafnet/internal/topo"
	"fafnet/internal/units"
)

// chaosProfile is one cell of the fault matrix.
type chaosProfile struct {
	name string
	opts faultnet.Options
}

// chaosProfiles enumerates the fault axes separately and combined, so a
// failure names the axis that broke. The seed is filled in per cell.
func chaosProfiles() []chaosProfile {
	return []chaosProfile{
		{"slow-fragmented", faultnet.Options{MaxLatency: 2 * time.Millisecond, ChunkWriteProb: 0.6}},
		{"resets", faultnet.Options{ResetReadProb: 0.06, ResetWriteProb: 0.06, AcceptFailEveryN: 5}},
		{"everything", faultnet.Options{
			MaxLatency: time.Millisecond, ChunkWriteProb: 0.4,
			ResetReadProb: 0.05, ResetWriteProb: 0.05, AcceptFailEveryN: 4,
		}},
	}
}

// chaosOutcome is what one worker concluded about one connection id.
type chaosOutcome int

const (
	// outcomeAbsent: the id must not be admitted at the end (it was
	// rejected, confirmed-unsent, or released).
	outcomeAbsent chaosOutcome = iota
	// outcomeUnknown: a lost response left the id's fate ambiguous and
	// resolution also failed; the id may legitimately be present or absent.
	outcomeUnknown
)

// TestChaosSignalingInvariants drives a concurrent admit/release workload
// through fault-injected connections and checks the system-level invariants
// that must survive any transport behavior: no double-admit, client and
// server views consistent, the audit log replayable to the exact server
// state, and no goroutine left behind after shutdown.
func TestChaosSignalingInvariants(t *testing.T) {
	seeds := []int64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, profile := range chaosProfiles() {
		for _, seed := range seeds {
			profile, seed := profile, seed
			t.Run(fmt.Sprintf("%s/seed%d", profile.name, seed), func(t *testing.T) {
				opts := profile.opts
				opts.Seed = seed
				runChaosCell(t, opts, false)
			})
		}
	}
}

// TestChaosShardedSignalingInvariants runs the identical fault matrix over
// the sharded pipeline with its async audit writer — the deployment shape
// fafcacd defaults to. The two-phase commit path, optimistic retries, and
// commit-ordered audit enqueues must uphold the same invariants the
// serialized backend does under every fault profile.
func TestChaosShardedSignalingInvariants(t *testing.T) {
	seeds := []int64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, profile := range chaosProfiles() {
		for _, seed := range seeds {
			profile, seed := profile, seed
			t.Run(fmt.Sprintf("%s/seed%d", profile.name, seed), func(t *testing.T) {
				opts := profile.opts
				opts.Seed = seed
				runChaosCell(t, opts, true)
			})
		}
	}
}

// chaosBackend is the slice of the two pipelines' shared surface the cell
// needs for its final-state checks.
type chaosBackend interface {
	Connections() []*core.Connection
}

// runChaosCell runs one fault-matrix cell end to end. sharded selects the
// pipeline under test: the serialized Controller with an inline audit log,
// or the Sharded pipeline with the async group-sync audit writer.
func runChaosCell(t *testing.T, fopts faultnet.Options, sharded bool) {
	goroutinesBefore := runtime.NumGoroutine()

	net0, err := topo.NewNetwork(topo.Default())
	if err != nil {
		t.Fatal(err)
	}
	var (
		backend chaosBackend
		srv     *Server
	)
	var auditBuf bytes.Buffer
	var asyncWriter *obs.AsyncAuditWriter
	if sharded {
		pipe, err := core.NewSharded(net0, core.Options{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		srv, err = NewShardedServer(pipe)
		if err != nil {
			t.Fatal(err)
		}
		asyncWriter = obs.NewAsyncAuditWriter(obs.NewAuditLog(&auditBuf), 64, true)
		srv.SetAsyncAudit(asyncWriter)
		backend = pipe
	} else {
		ctl, err := core.NewController(net0, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		srv, err = NewServer(ctl)
		if err != nil {
			t.Fatal(err)
		}
		srv.SetAuditLog(obs.NewAuditLog(&auditBuf))
		backend = ctl
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(faultnet.WrapListener(l, fopts)) }()

	const workers = 4
	ops := 6
	if testing.Short() {
		ops = 3
	}
	outcomes := make([]map[string]chaosOutcome, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		outcomes[w] = make(map[string]chaosOutcome)
		wg.Add(1)
		go func() {
			defer wg.Done()
			runChaosWorker(t, addr, w, ops, outcomes[w])
		}()
	}
	wg.Wait()

	// Shut down and require a full drain before judging state. The async
	// audit writer (sharded cells) closes only after the server: producers
	// stop first, then the queue drains to the buffer.
	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Errorf("serve: %v", err)
	}
	if asyncWriter != nil {
		if err := asyncWriter.Close(); err != nil {
			t.Errorf("audit writer close: %v", err)
		}
	}

	// Invariant 1: client and server views agree. Every id a client proved
	// absent is absent; every admitted id was one a client could not rule out.
	final := make(map[string][2]float64)
	for _, c := range backend.Connections() {
		final[c.ID] = [2]float64{c.HS, c.HR}
	}
	merged := make(map[string]chaosOutcome)
	for _, m := range outcomes {
		for id, o := range m {
			merged[id] = o
		}
	}
	for id, o := range merged {
		if _, present := final[id]; present && o == outcomeAbsent {
			t.Errorf("id %s is admitted server-side but the client proved it released or never sent", id)
		}
	}
	for id := range final {
		if o, known := merged[id]; !known || o != outcomeUnknown {
			t.Errorf("id %s is admitted server-side without a lost-response ambiguity to explain it", id)
		}
	}

	// Invariant 2: no double-admit — at most one successful admit audit
	// record per id, ever.
	records, err := obs.ReadAuditRecords(&auditBuf)
	if err != nil {
		t.Fatalf("audit log unreadable after chaos: %v", err)
	}
	admitted := make(map[string]int)
	for _, rec := range records {
		if rec.Op == string(OpAdmit) && rec.Admitted && rec.Error == "" {
			admitted[rec.ConnID]++
		}
	}
	for id, n := range admitted {
		if n > 1 {
			t.Errorf("id %s was admitted %d times — double-allocated bandwidth", id, n)
		}
	}

	// Invariant 3: the audit log replays to the exact server state (same
	// ids, same allocations) — the log never desynced from the controller.
	ctl2, err := core.NewController(mustNetwork(t), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(ctl2, records); err != nil {
		t.Fatalf("audit log does not replay after chaos: %v", err)
	}
	replayed := make(map[string][2]float64)
	for _, c := range ctl2.Connections() {
		replayed[c.ID] = [2]float64{c.HS, c.HR}
	}
	if len(replayed) != len(final) {
		t.Errorf("replay rebuilt %d connections, server holds %d", len(replayed), len(final))
	}
	for id, w := range final {
		g, ok := replayed[id]
		if !ok {
			t.Errorf("id %s admitted server-side but missing from the replayed log", id)
			continue
		}
		if !units.AlmostEq(w[0], g[0]) || !units.AlmostEq(w[1], g[1]) {
			t.Errorf("id %s allocations diverged: server HS=%v HR=%v, replay HS=%v HR=%v", id, w[0], w[1], g[0], g[1])
		}
	}

	// Invariant 4: everything spawned for this cell is gone. Other tests'
	// goroutines are accounted for by using a within-test delta.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before the cell, %d after\n%s",
				goroutinesBefore, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(time.Millisecond)
	}
}

// mustNetwork builds the default topology.
func mustNetwork(t *testing.T) *topo.Network {
	t.Helper()
	net0, err := topo.NewNetwork(topo.Default())
	if err != nil {
		t.Fatal(err)
	}
	return net0
}

// runChaosWorker admits and releases a sequence of connections through the
// fault-injected transport, recording what it can prove about each id.
// Transport errors are expected here — the invariants live in the outcome
// bookkeeping, not in per-call success.
func runChaosWorker(t *testing.T, addr string, w, ops int, outcomes map[string]chaosOutcome) {
	client, err := DialConfig(ClientConfig{
		Addr:        addr,
		DialTimeout: 2 * time.Second,
		ReadTimeout: 5 * time.Second,
		Retry: RetryPolicy{
			MaxAttempts: 8,
			BaseDelay:   time.Millisecond,
			MaxDelay:    20 * time.Millisecond,
			Jitter:      1,
		},
	})
	if err != nil {
		// Even the first dial can lose the accept-failure lottery; without a
		// connection this worker has nothing to record.
		return
	}
	defer client.Close()

	srcRing := w % 3
	srcHost := w / 3
	dstRing := (srcRing + 1) % 3
	for op := 0; op < ops; op++ {
		id := fmt.Sprintf("w%d-op%d", w, op)
		req := videoRequest(id, srcRing, srcHost, dstRing, 0)
		_, admitErr := client.Admit(req)
		switch {
		case admitErr == nil:
			// Admitted or cleanly rejected: either way the response arrived,
			// so releasing settles the id to absent.
		case errors.Is(admitErr, ErrPossiblyCommitted):
			// Fall through to the release below: release is idempotent, so a
			// successful release round trip settles the id to absent whether
			// or not the admit committed.
		default:
			var se *ServerError
			if errors.As(admitErr, &se) {
				outcomes[id] = outcomeAbsent // the server refused; nothing committed
				continue
			}
			// Transport failure with every attempt confirmed unsent: the
			// server never saw this id.
			outcomes[id] = outcomeAbsent
			continue
		}
		if _, err := client.Release(id); err != nil {
			// The release response was lost too; the id's fate is unknown.
			outcomes[id] = outcomeUnknown
			continue
		}
		outcomes[id] = outcomeAbsent
	}
}
