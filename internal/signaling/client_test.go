package signaling

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func TestRetryPolicyDelayDoublesAndCaps(t *testing.T) {
	p := RetryPolicy{BaseDelay: 50 * time.Millisecond, MaxDelay: 300 * time.Millisecond}
	want := []time.Duration{
		50 * time.Millisecond,  // attempt 1 completed
		100 * time.Millisecond, // doubled
		200 * time.Millisecond,
		300 * time.Millisecond, // capped
		300 * time.Millisecond, // stays capped
	}
	for i, w := range want {
		if got := p.delay(i + 1); got != w {
			t.Errorf("delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestRetryPolicyDefaultCapIsThirtyTimesBase(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond} // MaxDelay 0
	if got, want := p.delay(20), 300*time.Millisecond; got != want {
		t.Errorf("uncapped delay(20) = %v, want the 30×Base safety cap %v", got, want)
	}
}

func TestRetryPolicyJitterBounds(t *testing.T) {
	// With full jitter the delay d spreads over [d/2, 3d/2). Drive the
	// variate to both ends and the middle.
	base := 100 * time.Millisecond
	tests := []struct {
		variate float64
		want    time.Duration
	}{
		{0, 50 * time.Millisecond},
		{0.5, 100 * time.Millisecond},
		{0.999999, 150 * time.Millisecond},
	}
	for _, tt := range tests {
		p := RetryPolicy{BaseDelay: base, Jitter: 1, Rand: func() float64 { return tt.variate }}
		got := p.delay(1)
		if diff := got - tt.want; diff < -time.Millisecond || diff > time.Millisecond {
			t.Errorf("jittered delay with variate %v = %v, want ≈%v", tt.variate, got, tt.want)
		}
	}
}

func TestRetryPolicyZeroValueDisablesBackoff(t *testing.T) {
	var p RetryPolicy
	if got := p.delay(3); got != 0 {
		t.Errorf("zero policy delay = %v, want 0", got)
	}
}

// slammingListener accepts connections and closes them immediately after
// optionally reading a few bytes — a server that dies mid-conversation.
func slammingListener(t *testing.T, readFirst bool) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			if readFirst {
				_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
				_, _ = conn.Read(make([]byte, 64))
			}
			_ = conn.Close()
		}
	}()
	return l.Addr().String()
}

// flakyThenRealDialer fails the first n dials by connecting to a slamming
// listener, then dials the real server.
func flakyThenRealDialer(t *testing.T, n int, badAddr, goodAddr string) func(string, time.Duration) (net.Conn, error) {
	t.Helper()
	calls := 0
	return func(_ string, timeout time.Duration) (net.Conn, error) {
		calls++
		if calls <= n {
			return net.DialTimeout("tcp", badAddr, timeout)
		}
		return net.DialTimeout("tcp", goodAddr, timeout)
	}
}

func TestIdempotentOpsRetryAcrossRedial(t *testing.T) {
	_, srv := startServer(t)
	goodAddr := srv.Addr().String()
	badAddr := slammingListener(t, true)

	var slept []time.Duration
	client, err := DialConfig(ClientConfig{
		Addr: goodAddr, // any non-empty addr enables redial; Dialer decides the target
		Retry: RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   time.Millisecond,
			Sleep:       func(d time.Duration) { slept = append(slept, d) },
		},
		Dialer: flakyThenRealDialer(t, 1, badAddr, goodAddr),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// First attempt lands on the slamming listener and loses the response;
	// report is idempotent, so the retry redials and succeeds.
	report, err := client.Report()
	if err != nil {
		t.Fatalf("idempotent report did not survive a dead connection: %v", err)
	}
	if len(report) != 0 {
		t.Errorf("report = %+v, want empty", report)
	}
	stats := client.Stats()
	if stats.Retries < 1 || stats.Redials < 1 {
		t.Errorf("stats = %+v, want at least one retry and one redial", stats)
	}
	if len(slept) == 0 {
		t.Error("retry did not back off")
	}
}

func TestAdmitNotRetriedOncePossiblySent(t *testing.T) {
	badAddr := slammingListener(t, true)
	client, err := DialConfig(ClientConfig{
		Addr:  badAddr,
		Retry: RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	_, err = client.Admit(videoRequest("v1", 0, 0, 1, 0))
	if !errors.Is(err, ErrPossiblyCommitted) {
		t.Fatalf("admit over a dying connection returned %v, want ErrPossiblyCommitted", err)
	}
	if got := client.Stats().Attempts; got != 1 {
		t.Errorf("admit was attempted %d times after its bytes reached the wire, want exactly 1", got)
	}
}

// deadConn is an established connection whose writes fail before accepting
// any bytes: the confirmed-unsent case.
type deadConn struct{ net.Conn }

func (d deadConn) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

func TestAdmitRetriedWhileConfirmedUnsent(t *testing.T) {
	_, srv := startServer(t)
	goodAddr := srv.Addr().String()

	dials := 0
	client, err := DialConfig(ClientConfig{
		Addr:  goodAddr,
		Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		Dialer: func(_ string, timeout time.Duration) (net.Conn, error) {
			dials++
			conn, err := net.DialTimeout("tcp", goodAddr, timeout)
			if err != nil {
				return nil, err
			}
			if dials == 1 {
				return deadConn{conn}, nil
			}
			return conn, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// The first attempt's write fails with zero bytes out, so even the
	// non-idempotent admit may retry: the server provably never saw it.
	dec, err := client.Admit(videoRequest("v1", 0, 0, 1, 0))
	if err != nil {
		t.Fatalf("confirmed-unsent admit was not retried: %v", err)
	}
	if !dec.Admitted {
		t.Errorf("admit rejected: %s", dec.Reason)
	}
	if stats := client.Stats(); stats.Attempts != 2 || stats.Redials != 1 {
		t.Errorf("stats = %+v, want exactly 2 attempts and 1 redial", stats)
	}
}

func TestServerErrorsAreNeverRetried(t *testing.T) {
	client, _ := startServer(t)
	// Force a retry-eager policy onto the shared client.
	client.cfg.Retry = RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	attemptsBefore := client.Stats().Attempts

	bad := videoRequest("x", 0, 0, 1, 0)
	bad.Source.Type = "warp"
	_, err := client.Admit(bad)
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("invalid request returned %T (%v), want *ServerError", err, err)
	}
	if got := client.Stats().Attempts - attemptsBefore; got != 1 {
		t.Errorf("protocol error was attempted %d times, want exactly 1", got)
	}
	// The connection survived the protocol error.
	if _, err := client.Report(); err != nil {
		t.Errorf("connection unusable after a server error: %v", err)
	}
}

func TestExhaustedRetriesReturnLastError(t *testing.T) {
	var slept []time.Duration
	client := &Client{cfg: ClientConfig{
		Addr:  "127.0.0.1:1", // reserved port: dials fail fast
		Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Sleep: func(d time.Duration) { slept = append(slept, d) }},
		Dialer: func(string, time.Duration) (net.Conn, error) {
			return nil, errors.New("synthetic dial failure")
		},
	}}
	_, err := client.Report()
	if err == nil || errors.Is(err, ErrPossiblyCommitted) {
		t.Fatalf("err = %v, want the transport error", err)
	}
	if got := client.Stats().Attempts; got != 3 {
		t.Errorf("attempts = %d, want MaxAttempts = 3", got)
	}
	if len(slept) != 2 {
		t.Errorf("backoff slept %d times, want 2 (between 3 attempts)", len(slept))
	}
}

func TestNewClientCannotRedial(t *testing.T) {
	left, right := net.Pipe()
	right.Close()
	left.Close()
	client := NewClient(left)
	client.cfg.Retry = RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	if _, err := client.Report(); err == nil {
		t.Fatal("report over a closed, redial-less connection should fail")
	}
	if got := client.Stats().Redials; got != 0 {
		t.Errorf("redials = %d, want 0 without an address", got)
	}
}
