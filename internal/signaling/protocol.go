// Package signaling provides the connection-establishment service on top of
// the admission controller: hosts send admit/release requests to a CAC
// daemon over TCP and receive the decision — allocations, worst-case delay,
// or the rejection reason. The wire protocol is newline-delimited JSON, one
// request/response pair at a time per connection, so it can be exercised
// with nothing but netcat.
package signaling

import (
	"fmt"

	"fafnet/internal/core"
	"fafnet/internal/scenario"
)

// Op names a request operation.
type Op string

// Supported operations.
const (
	// OpAdmit runs the CAC and commits on success.
	OpAdmit Op = "admit"
	// OpPreview runs the CAC without committing.
	OpPreview Op = "preview"
	// OpRelease tears a connection down.
	OpRelease Op = "release"
	// OpReport returns every admitted connection's worst-case delay.
	OpReport Op = "report"
	// OpBuffers returns Theorem 1 buffer requirements.
	OpBuffers Op = "buffers"
)

// Request is one client request.
type Request struct {
	// Op selects the operation.
	Op Op `json:"op"`
	// Admit carries the connection specification for OpAdmit/OpPreview,
	// reusing the scenario schema (kbit/ms units).
	Admit *scenario.Request `json:"admit,omitempty"`
	// Release names the connection for OpRelease.
	Release string `json:"release,omitempty"`
}

// Validate checks structural consistency before hitting the controller.
func (r Request) Validate() error {
	switch r.Op {
	case OpAdmit, OpPreview:
		if r.Admit == nil {
			return fmt.Errorf("signaling: %s requires an admit body", r.Op)
		}
		if _, err := r.Admit.Spec(); err != nil {
			return err
		}
	case OpRelease:
		if r.Release == "" {
			return fmt.Errorf("signaling: release requires a connection id")
		}
	case OpReport, OpBuffers:
		// No body.
	default:
		return fmt.Errorf("signaling: unknown op %q", r.Op)
	}
	return nil
}

// Decision is the wire form of a CAC decision (times in milliseconds, the
// protocol's human-friendly unit).
type Decision struct {
	Admitted       bool    `json:"admitted"`
	Reason         string  `json:"reason"`
	HSMillis       float64 `json:"hsMillis,omitempty"`
	HRMillis       float64 `json:"hrMillis,omitempty"`
	DelayMillis    float64 `json:"delayMillis,omitempty"`
	DeadlineMillis float64 `json:"deadlineMillis,omitempty"`
	Probes         int     `json:"probes"`
}

// ConnReport is one admitted connection's state in an OpReport response.
type ConnReport struct {
	ID             string  `json:"id"`
	Src            string  `json:"src"`
	Dst            string  `json:"dst"`
	DelayMillis    float64 `json:"delayMillis"`
	DeadlineMillis float64 `json:"deadlineMillis"`
}

// BufferReport is one connection's entry in an OpBuffers response.
type BufferReport struct {
	ID      string  `json:"id"`
	SrcKbit float64 `json:"srcKbit"`
	DstKbit float64 `json:"dstKbit"`
}

// Response is one server reply.
type Response struct {
	// OK reports whether the operation executed (a CAC rejection still has
	// OK=true: the protocol worked; the decision says no).
	OK bool `json:"ok"`
	// Error carries the failure text when OK is false.
	Error string `json:"error,omitempty"`
	// Decision is present for OpAdmit/OpPreview.
	Decision *Decision `json:"decision,omitempty"`
	// Released reports whether OpRelease found the connection.
	Released *bool `json:"released,omitempty"`
	// Report is present for OpReport.
	Report []ConnReport `json:"report,omitempty"`
	// Buffers is present for OpBuffers.
	Buffers []BufferReport `json:"buffers,omitempty"`
}

// wireDecision converts a core decision.
func wireDecision(spec core.ConnSpec, dec core.Decision) *Decision {
	out := &Decision{
		Admitted:       dec.Admitted,
		Reason:         dec.Reason,
		Probes:         dec.Probes,
		DeadlineMillis: spec.Deadline * 1e3,
	}
	if dec.Admitted {
		out.HSMillis = dec.HS * 1e3
		out.HRMillis = dec.HR * 1e3
		out.DelayMillis = dec.Delays[spec.ID] * 1e3
	}
	return out
}
