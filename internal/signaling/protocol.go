// Package signaling provides the connection-establishment service on top of
// the admission controller: hosts send admit/release requests to a CAC
// daemon over TCP and receive the decision — allocations, worst-case delay,
// or the rejection reason.
//
// # Wire format
//
// The protocol is newline-delimited JSON over a plain TCP connection: the
// client writes one Request object per line and reads one Response object
// per line, strictly alternating, so it can be exercised with nothing but
// netcat:
//
//	$ nc localhost 4710
//	{"op":"admit","admit":{"id":"v1","srcRing":0,"srcHost":0,"dstRing":1,"dstHost":0,"deadlineMillis":60,"source":{"type":"dualPeriodic","c1Kbit":50,"p1Millis":10,"c2Kbit":10,"p2Millis":1}}}
//	{"ok":true,"op":"admit","decision":{"admitted":true,...}}
//
// Every response carries:
//
//   - "ok": whether the operation executed. A CAC rejection still has
//     ok=true — the protocol worked; the decision says no. ok=false means
//     the request itself failed (unknown op, missing body, invalid spec,
//     controller error) and "error" holds the failure text.
//   - "op": the request's op echoed back verbatim, so a client batching
//     requests over one connection can correlate responses without
//     counting lines. Blank in exactly one case: a request whose JSON
//     could not be parsed at all.
//
// A connection may issue any number of sequential request/response pairs.
// After a malformed-JSON request the server still answers — with ok=false
// and "error" describing the parse failure — but then closes the
// connection: the stream position after a JSON syntax error is undefined,
// so resynchronization is impossible and the client must redial.
//
// Units on the wire are human-friendly (milliseconds, kbit) and carry their
// unit in the field name; the engine's own records (e.g. the audit log) use
// base seconds/bits instead.
//
// # Retry safety
//
// The protocol has no request ids or transactions, so retry safety is a
// property of each operation, and [Client] enforces it:
//
//   - OpPreview, OpPreviewBatch, OpReport and OpBuffers are pure reads:
//     safe to repeat any number of times.
//   - OpRelease is idempotent by design — releasing an id that holds
//     nothing succeeds with released=false. This makes release the
//     universal resolver for ambiguity: one successful release round trip
//     proves the id is not admitted, whatever happened before.
//   - OpAdmit commits bandwidth on success, so a lost response is
//     ambiguous: the decision may or may not have been made. A client may
//     resend an admit only while every previous attempt is confirmed
//     unsent (zero bytes reached the transport); beyond that point the
//     failure must surface as [ErrPossiblyCommitted] and be resolved with
//     a release, never a blind resend.
//
// An ok=false response is a delivered answer, not a transport failure:
// repeating the request would repeat the same error, so no operation is
// retried after one.
package signaling

import (
	"fmt"

	"fafnet/internal/core"
	"fafnet/internal/scenario"
)

// Op names a request operation.
type Op string

// Supported operations. Retry safety per op is documented in the package
// comment ("Retry safety").
const (
	// OpAdmit runs the CAC and commits on success. NOT idempotent: resend
	// only while confirmed unsent, resolve ambiguity with OpRelease.
	OpAdmit Op = "admit"
	// OpPreview runs the CAC without committing. Idempotent.
	OpPreview Op = "preview"
	// OpPreviewBatch runs the CAC over a whole batch of candidates in one
	// round trip, committing nothing. The server evaluates members grouped
	// by specification class so its verdict cache amortizes one analysis
	// across same-class runs; responses stay in request order. Idempotent
	// (pure read), like OpPreview.
	OpPreviewBatch Op = "previewBatch"
	// OpRelease tears a connection down. Idempotent: releasing an unknown
	// id succeeds with released=false.
	OpRelease Op = "release"
	// OpReport returns every admitted connection's worst-case delay.
	// Idempotent (pure read).
	OpReport Op = "report"
	// OpBuffers returns Theorem 1 buffer requirements. Idempotent (pure
	// read).
	OpBuffers Op = "buffers"
)

// Request is one client request.
type Request struct {
	// Op selects the operation.
	Op Op `json:"op"`
	// Admit carries the connection specification for OpAdmit/OpPreview,
	// reusing the scenario schema (kbit/ms units).
	Admit *scenario.Request `json:"admit,omitempty"`
	// AdmitBatch carries the specifications for OpPreviewBatch, at most
	// MaxBatch entries.
	AdmitBatch []scenario.Request `json:"admitBatch,omitempty"`
	// Release names the connection for OpRelease.
	Release string `json:"release,omitempty"`
}

// MaxBatch bounds an OpPreviewBatch request: large enough to amortize the
// round trip and the JSON framing, small enough that one request cannot
// monopolize the daemon or balloon a single wire line.
const MaxBatch = 1024

// Validate checks structural consistency before hitting the controller.
func (r Request) Validate() error {
	switch r.Op {
	case OpAdmit, OpPreview:
		if r.Admit == nil {
			return fmt.Errorf("signaling: %s requires an admit body", r.Op)
		}
		if _, err := r.Admit.Spec(); err != nil {
			return err
		}
	case OpPreviewBatch:
		if len(r.AdmitBatch) == 0 {
			return fmt.Errorf("signaling: previewBatch requires at least one admit body")
		}
		if len(r.AdmitBatch) > MaxBatch {
			return fmt.Errorf("signaling: previewBatch of %d exceeds the maximum of %d", len(r.AdmitBatch), MaxBatch)
		}
		for i := range r.AdmitBatch {
			if _, err := r.AdmitBatch[i].Spec(); err != nil {
				return fmt.Errorf("signaling: previewBatch entry %d: %w", i, err)
			}
		}
	case OpRelease:
		if r.Release == "" {
			return fmt.Errorf("signaling: release requires a connection id")
		}
	case OpReport, OpBuffers:
		// No body.
	default:
		return fmt.Errorf("signaling: unknown op %q", r.Op)
	}
	return nil
}

// Decision is the wire form of a CAC decision (times in milliseconds, the
// protocol's human-friendly unit).
type Decision struct {
	Admitted       bool    `json:"admitted"`
	Reason         string  `json:"reason"`
	HSMillis       float64 `json:"hsMillis,omitempty"`
	HRMillis       float64 `json:"hrMillis,omitempty"`
	DelayMillis    float64 `json:"delayMillis,omitempty"`
	DeadlineMillis float64 `json:"deadlineMillis,omitempty"`
	Probes         int     `json:"probes"`
	// Error carries a per-member failure inside an OpPreviewBatch response
	// (for example a duplicate id); the batch as a whole still succeeds.
	// Always empty for single-decision responses, which report failures
	// through the response's ok/error fields instead.
	Error string `json:"error,omitempty"`
}

// ConnReport is one admitted connection's state in an OpReport response.
type ConnReport struct {
	ID             string  `json:"id"`
	Src            string  `json:"src"`
	Dst            string  `json:"dst"`
	DelayMillis    float64 `json:"delayMillis"`
	DeadlineMillis float64 `json:"deadlineMillis"`
}

// BufferReport is one connection's entry in an OpBuffers response.
type BufferReport struct {
	ID      string  `json:"id"`
	SrcKbit float64 `json:"srcKbit"`
	DstKbit float64 `json:"dstKbit"`
}

// Response is one server reply.
type Response struct {
	// OK reports whether the operation executed (a CAC rejection still has
	// OK=true: the protocol worked; the decision says no).
	OK bool `json:"ok"`
	// Op echoes the request's op so clients can correlate responses. It is
	// blank only when the request's JSON could not be parsed.
	Op Op `json:"op"`
	// Error carries the failure text when OK is false.
	Error string `json:"error,omitempty"`
	// Decision is present for OpAdmit/OpPreview.
	Decision *Decision `json:"decision,omitempty"`
	// Decisions is present for OpPreviewBatch, one entry per batch member
	// in request order.
	Decisions []*Decision `json:"decisions,omitempty"`
	// Released reports whether OpRelease found the connection.
	Released *bool `json:"released,omitempty"`
	// Report is present for OpReport.
	Report []ConnReport `json:"report,omitempty"`
	// Buffers is present for OpBuffers.
	Buffers []BufferReport `json:"buffers,omitempty"`
}

// wireBatchDecision converts one batch member's outcome, folding a
// per-member failure into the decision so the response stays positional.
func wireBatchDecision(spec core.ConnSpec, dec core.Decision, err error) *Decision {
	if err != nil {
		return &Decision{Reason: dec.Reason, Error: err.Error()}
	}
	return wireDecision(spec, dec)
}

// wireDecision converts a core decision.
func wireDecision(spec core.ConnSpec, dec core.Decision) *Decision {
	out := &Decision{
		Admitted:       dec.Admitted,
		Reason:         dec.Reason,
		Probes:         dec.Probes,
		DeadlineMillis: spec.Deadline * 1e3,
	}
	if dec.Admitted {
		out.HSMillis = dec.HS * 1e3
		out.HRMillis = dec.HR * 1e3
		out.DelayMillis = dec.Delays[spec.ID] * 1e3
	}
	return out
}
