package signaling

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"fafnet/internal/core"
	"fafnet/internal/topo"
)

// newServingServer starts a server on an ephemeral loopback listener and
// returns it with its controller, bound address, and Serve's completion
// channel. No cleanup is registered: shutdown is the subject under test.
func newServingServer(t *testing.T) (*Server, *core.Controller, string, chan error) {
	t.Helper()
	net0, err := topo.NewNetwork(topo.Default())
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := core.NewController(net0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ctl)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	return srv, ctl, l.Addr().String(), serveDone
}

// openConns reads the registry size.
func (s *Server) openConns() int {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return len(s.conns)
}

// activeConns counts registered connections with a request in flight.
func (s *Server) activeConns() int {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	n := 0
	for _, st := range s.conns {
		if st.active.Load() {
			n++
		}
	}
	return n
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCloseUnblocksWithIdleClient is the regression test for the shutdown
// hang: before the connection registry existed, an idle client parked
// handle() in Decode forever and Serve's WaitGroup never drained, so the
// sequence below deadlocked. Close (and Serve's return) must now complete
// promptly while the idle connection is still open.
func TestCloseUnblocksWithIdleClient(t *testing.T) {
	srv, _, addr, serveDone := newServingServer(t)

	idle, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	waitFor(t, "the idle connection to register", func() bool { return srv.openConns() > 0 })

	closed := make(chan struct{})
	go func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung with an idle client attached")
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("serve: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve never returned after Close")
	}
	// The idle client observes the close as EOF/reset.
	_ = idle.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := idle.Read(make([]byte, 1)); err == nil {
		t.Error("idle connection still open after Close")
	}
}

// TestShutdownDrainsInFlightRequest checks the graceful path: a request
// already executing when Shutdown starts completes and its response is
// delivered, while a second, idle connection is closed immediately.
func TestShutdownDrainsInFlightRequest(t *testing.T) {
	srv, ctl, addr, serveDone := newServingServer(t)
	// Park the handler mid-request so the admit is deterministically in
	// flight when the drain starts (only the admit connection decodes a
	// request, so only it reaches the hook).
	inExecute := make(chan struct{})
	release := make(chan struct{})
	srv.testHookBeforeExecute = func() {
		close(inExecute)
		<-release
	}

	idle, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	client, err := DialConfig(ClientConfig{Addr: addr, Retry: RetryPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	type admitResult struct {
		dec Decision
		err error
	}
	admitDone := make(chan admitResult, 1)
	go func() {
		dec, err := client.Admit(videoRequest("v1", 0, 0, 1, 0))
		admitDone <- admitResult{dec, err}
	}()
	<-inExecute
	if srv.activeConns() != 1 {
		t.Fatalf("activeConns = %d, want 1", srv.activeConns())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(ctx) }()
	// The drain must close the idle connection while the in-flight request
	// keeps running; only then is the handler released to answer.
	waitFor(t, "the idle connection to be drained", func() bool { return srv.openConns() == 1 })
	close(release)
	if err := <-shutdownErr; err != nil {
		t.Errorf("graceful shutdown errored: %v", err)
	}
	res := <-admitDone
	if res.err != nil {
		t.Fatalf("in-flight admit lost its response across the drain: %v", res.err)
	}
	if !res.dec.Admitted {
		t.Errorf("admit rejected: %s", res.dec.Reason)
	}
	if ctl.Active() != 1 {
		t.Errorf("controller has %d active connections, want 1", ctl.Active())
	}
	if err := <-serveDone; err != nil {
		t.Errorf("serve: %v", err)
	}
}

// TestShutdownForceClosesStragglers checks the bounded-drain path: with an
// already-expired context, a connection whose request is mid-execution is
// force-closed. The server-side work still completes (committed admissions
// are never rolled back) but the client loses the response and must treat
// the admit as possibly committed.
func TestShutdownForceClosesStragglers(t *testing.T) {
	srv, ctl, addr, serveDone := newServingServer(t)
	// Park the handler between decoding the admit and executing it, so the
	// request is deterministically in flight when Shutdown's drain budget
	// expires. Releasing the hook after the force-close lets the commit
	// proceed; the response write then fails on the closed connection.
	inExecute := make(chan struct{})
	release := make(chan struct{})
	srv.testHookBeforeExecute = func() {
		close(inExecute)
		<-release
	}

	client, err := DialConfig(ClientConfig{Addr: addr, Retry: DefaultRetryPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	admitErr := make(chan error, 1)
	go func() {
		_, err := client.Admit(videoRequest("v1", 0, 0, 1, 0))
		admitErr <- err
	}()
	<-inExecute
	if srv.activeConns() != 1 {
		t.Fatalf("activeConns = %d, want 1", srv.activeConns())
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the drain budget is already exhausted
	forceClosedBefore := mForceClosed.Value()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(ctx) }()
	// Shutdown force-closes the straggler, then blocks until its handler
	// exits; release the handler only once the force-close has happened.
	waitFor(t, "the straggler to be force-closed", func() bool {
		return mForceClosed.Value() > forceClosedBefore
	})
	close(release)

	select {
	case err := <-shutdownErr:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Shutdown = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown hung after force-closing the straggler")
	}
	if err := <-serveDone; err != nil {
		t.Errorf("serve: %v", err)
	}
	// The lost-response admit surfaces as possibly-committed: any request
	// bytes reached the wire, so a blind retry could double-allocate.
	if err := <-admitErr; !errors.Is(err, ErrPossiblyCommitted) {
		t.Errorf("interrupted admit returned %v, want ErrPossiblyCommitted", err)
	}
	// And it did commit server-side.
	if ctl.Active() != 1 {
		t.Errorf("controller has %d active connections, want the committed 1", ctl.Active())
	}
}

// TestShutdownIdempotent checks Shutdown and Close compose in any order and
// any number of times.
func TestShutdownIdempotent(t *testing.T) {
	srv, _, _, serveDone := newServingServer(t)
	ctx := context.Background()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("first shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("close after shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Errorf("serve: %v", err)
	}
}

// TestShutdownWithoutServe checks shutdown of a server that never served.
func TestShutdownWithoutServe(t *testing.T) {
	net0, err := topo.NewNetwork(topo.Default())
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := core.NewController(net0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ctl)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("shutdown of an idle server: %v", err)
	}
}

// TestIdleTimeoutClosesConnection checks the per-connection idle deadline:
// a silent client is disconnected, and the disconnect is not mistaken for a
// malformed request (no error response is written).
func TestIdleTimeoutClosesConnection(t *testing.T) {
	net0, err := topo.NewNetwork(topo.Default())
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := core.NewController(net0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ctl)
	if err != nil {
		t.Fatal(err)
	}
	srv.IdleTimeout = 50 * time.Millisecond
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("serve: %v", err)
		}
	}()

	conn, err := net.DialTimeout("tcp", l.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	n, err := conn.Read(buf)
	if err == nil || n != 0 {
		t.Errorf("idle connection read %d bytes (%q), err %v; want a silent close", n, buf[:n], err)
	}
	waitFor(t, "the idle connection to deregister", func() bool { return srv.openConns() == 0 })
}
