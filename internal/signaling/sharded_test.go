package signaling

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"fafnet/internal/core"
	"fafnet/internal/obs"
	"fafnet/internal/scenario"
	"fafnet/internal/topo"
	"fafnet/internal/units"
)

// startShardedSignalingServer brings up a server over the sharded pipeline,
// optionally routing its audit stream through an async writer into buf.
func startShardedSignalingServer(t *testing.T, buf *bytes.Buffer) (*Client, *core.Sharded, *obs.AsyncAuditWriter) {
	t.Helper()
	net0, err := topo.NewNetwork(topo.Default())
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := core.NewSharded(net0, core.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewShardedServer(pipe)
	if err != nil {
		t.Fatal(err)
	}
	var writer *obs.AsyncAuditWriter
	if buf != nil {
		writer = obs.NewAsyncAuditWriter(obs.NewAuditLog(buf), 256, true)
		srv.SetAsyncAudit(writer)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	client, err := Dial(l.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, pipe, writer
}

// TestPreviewBatchRoundTrip drives OpPreviewBatch end to end: positional
// results, per-member failures carried in Decision.Error without failing
// the batch, and no state change server-side.
func TestPreviewBatchRoundTrip(t *testing.T) {
	client, pipe, _ := startShardedSignalingServer(t, nil)

	// Occupy one id so a batch member that reuses it fails per-member
	// (PreviewAdmission of an admitted id is a duplicate-id error).
	if dec, err := client.Admit(videoRequest("held", 0, 0, 1, 0)); err != nil || !dec.Admitted {
		t.Fatalf("setup admission: %+v, %v", dec, err)
	}

	reqs := []scenario.Request{
		videoRequest("pb0", 1, 0, 2, 0),
		videoRequest("held", 1, 1, 2, 0), // duplicate id: per-member error
		videoRequest("pb2", 2, 0, 0, 1),
		videoRequest("pb3", 1, 2, 2, 1),
	}
	decs, err := client.PreviewBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != len(reqs) {
		t.Fatalf("%d decisions for %d requests", len(decs), len(reqs))
	}
	for i, dec := range decs {
		if i == 1 {
			if dec.Error == "" {
				t.Errorf("member 1 (duplicate id) has no per-member error: %+v", dec)
			}
			continue
		}
		if dec.Error != "" {
			t.Errorf("member %d failed: %s", i, dec.Error)
			continue
		}
		if !dec.Admitted {
			t.Errorf("member %d rejected: %s", i, dec.Reason)
		}
		if dec.HSMillis <= 0 {
			t.Errorf("member %d HS %v, want > 0", i, dec.HSMillis)
		}
	}
	if got := pipe.Active(); got != 1 {
		t.Errorf("previewBatch changed server state: %d active, want 1", got)
	}
}

// TestPreviewBatchValidation checks the request-level gates: an empty batch
// and an invalid member are both rejected before evaluation.
func TestPreviewBatchValidation(t *testing.T) {
	client, _, _ := startShardedSignalingServer(t, nil)

	if _, err := client.PreviewBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
	bad := videoRequest("bad", 0, 0, 1, 0)
	bad.Source.Type = "" // invalid spec: no traffic descriptor
	if _, err := client.PreviewBatch([]scenario.Request{videoRequest("ok", 0, 0, 1, 0), bad}); err == nil {
		t.Error("batch with an invalid member accepted")
	}
}

// TestShardedAuditReplayAsyncWriter is the replay invariant through the
// full async path: a workload of admits, previews, batched previews, and
// releases against the sharded server, audited via the AsyncAuditWriter,
// must produce a log that replays to the identical admitted state.
func TestShardedAuditReplayAsyncWriter(t *testing.T) {
	var buf bytes.Buffer
	client, pipe, writer := startShardedSignalingServer(t, &buf)

	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("ra%d", i)
		if _, err := client.Admit(videoRequest(id, i%3, i/3, (i+1)%3, 0)); err != nil {
			t.Fatalf("admit %s: %v", id, err)
		}
	}
	// A rejection: the source host of ra0 is busy.
	if dec, err := client.Admit(videoRequest("busy", 0, 0, 2, 0)); err != nil || dec.Admitted {
		t.Fatalf("busy admit: %+v, %v", dec, err)
	}
	// Previews, single and batched — replay must skip all of them.
	if _, err := client.Preview(videoRequest("pv", 2, 2, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.PreviewBatch([]scenario.Request{
		videoRequest("pb-a", 2, 2, 0, 2),
		videoRequest("pb-b", 2, 3, 1, 2),
	}); err != nil {
		t.Fatal(err)
	}
	// Releases: one real, one absent.
	if rel, err := client.Release("ra1"); err != nil || !rel {
		t.Fatalf("release ra1: %v, %v", rel, err)
	}
	if rel, err := client.Release("ghost"); err != nil || rel {
		t.Fatalf("release ghost: %v, %v", rel, err)
	}

	// Drain the audit stream, then replay it into a fresh serialized
	// controller — the cross-pipeline form of the invariant.
	writer.Flush()
	records, err := obs.ReadAuditRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("audit log unreadable: %v", err)
	}
	batched := 0
	for _, rec := range records {
		if rec.Op == string(OpPreviewBatch) {
			batched++
		}
	}
	if batched != 2 {
		t.Errorf("%d previewBatch records, want 2 (one per member)", batched)
	}
	ctl, err := core.NewController(mustNetwork(t), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Replay(ctl, records)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if stats.Admits != 6 || stats.Releases != 1 {
		t.Errorf("replay stats: %+v, want 6 admits and 1 release", stats)
	}
	want := map[string][2]float64{}
	for _, c := range pipe.Connections() {
		want[c.ID] = [2]float64{c.HS, c.HR}
	}
	got := map[string][2]float64{}
	for _, c := range ctl.Connections() {
		got[c.ID] = [2]float64{c.HS, c.HR}
	}
	if len(got) != len(want) {
		t.Fatalf("replay rebuilt %d connections, server holds %d", len(got), len(want))
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			t.Errorf("id %s admitted server-side but missing from the replay", id)
			continue
		}
		if !units.AlmostEq(w[0], g[0]) || !units.AlmostEq(w[1], g[1]) {
			t.Errorf("id %s allocations diverged: server HS=%v HR=%v, replay HS=%v HR=%v",
				id, w[0], w[1], g[0], g[1])
		}
	}
}
