package signaling

import (
	"net"
	"sync"
	"testing"
	"time"

	"fafnet/internal/core"
	"fafnet/internal/topo"
)

// newIdleServer builds a server without starting it.
func newIdleServer(t *testing.T) *Server {
	t.Helper()
	net0, err := topo.NewNetwork(topo.Default())
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := core.NewController(net0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ctl)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestConcurrentServeAddrClose hammers the server's public surface from
// many goroutines under the race detector: Serve starting up, Addr polled
// throughout, clients connecting, and Close racing everything. The test
// passes when nothing data-races and every goroutine gets to finish —
// i.e. Close never deadlocks against in-flight handlers.
func TestConcurrentServeAddrClose(t *testing.T) {
	srv := newIdleServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = srv.Addr()
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := Dial(l.Addr().String(), 2*time.Second)
			if err != nil {
				return // the racing Close may win; only data races fail the test
			}
			defer client.Close()
			_, _ = client.Report()
		}()
	}
	wg.Wait()

	// Concurrent Close calls must all succeed (idempotent shutdown).
	var closers sync.WaitGroup
	for i := 0; i < 4; i++ {
		closers.Add(1)
		go func() {
			defer closers.Done()
			if err := srv.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
	}
	closers.Wait()
	if err := <-serveDone; err != nil {
		t.Errorf("serve: %v", err)
	}
}

// TestServeTwiceRejected checks the listener handoff under mu: a second
// Serve must fail fast instead of racing for the listener field.
func TestServeTwiceRejected(t *testing.T) {
	srv := newIdleServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	// Wait until the first Serve has stored the listener.
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := srv.Serve(l2); err == nil {
		t.Error("second Serve should be rejected")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		t.Errorf("serve: %v", err)
	}
}

// The badCloser fixture that used to live here — holding mu across wg.Wait,
// waived in .fafvet-baseline.json — is now a lockorder want-test
// (internal/lint/lockorder/testdata/l), where the analyzer proves the
// hazard statically without leaking two goroutines into every -race run.
