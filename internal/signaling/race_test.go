package signaling

import (
	"net"
	"sync"
	"testing"
	"time"

	"fafnet/internal/core"
	"fafnet/internal/topo"
)

// newIdleServer builds a server without starting it.
func newIdleServer(t *testing.T) *Server {
	t.Helper()
	net0, err := topo.NewNetwork(topo.Default())
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := core.NewController(net0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ctl)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestConcurrentServeAddrClose hammers the server's public surface from
// many goroutines under the race detector: Serve starting up, Addr polled
// throughout, clients connecting, and Close racing everything. The test
// passes when nothing data-races and every goroutine gets to finish —
// i.e. Close never deadlocks against in-flight handlers.
func TestConcurrentServeAddrClose(t *testing.T) {
	srv := newIdleServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = srv.Addr()
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := Dial(l.Addr().String(), 2*time.Second)
			if err != nil {
				return // the racing Close may win; only data races fail the test
			}
			defer client.Close()
			_, _ = client.Report()
		}()
	}
	wg.Wait()

	// Concurrent Close calls must all succeed (idempotent shutdown).
	var closers sync.WaitGroup
	for i := 0; i < 4; i++ {
		closers.Add(1)
		go func() {
			defer closers.Done()
			if err := srv.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
	}
	closers.Wait()
	if err := <-serveDone; err != nil {
		t.Errorf("serve: %v", err)
	}
}

// TestServeTwiceRejected checks the listener handoff under mu: a second
// Serve must fail fast instead of racing for the listener field.
func TestServeTwiceRejected(t *testing.T) {
	srv := newIdleServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	// Wait until the first Serve has stored the listener.
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := srv.Serve(l2); err == nil {
		t.Error("second Serve should be rejected")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		t.Errorf("serve: %v", err)
	}
}

// badCloser is the shutdown shape Server.Close deliberately avoids: holding
// mu across wg.Wait. A worker that needs mu to finish can then never let
// Wait return. The lockorder analyzer flags the Wait call below statically
// (the finding is recorded in .fafvet-baseline.json as intended); this test
// demonstrates the same hazard dynamically.
type badCloser struct {
	mu sync.Mutex
	wg sync.WaitGroup
	n  int
}

func (b *badCloser) finishWorker() {
	defer b.wg.Done()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func (b *badCloser) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.wg.Wait()
}

func TestLockOrderHazardStallsShutdown(t *testing.T) {
	b := &badCloser{}
	b.wg.Add(1)
	workerReady := make(chan struct{})
	closeDone := make(chan struct{})
	go func() {
		<-workerReady
		b.finishWorker() // blocks on mu, held by Close below
	}()
	go func() {
		b.Close() // holds mu, waits for the worker — mutual wait
		close(closeDone)
	}()
	// Release the worker only once Close demonstrably holds mu (TryLock
	// failing proves it, since nothing else contends yet); Close is then
	// parked in Wait and the worker walks into the trap.
	for b.mu.TryLock() {
		b.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	close(workerReady)
	select {
	case <-closeDone:
		t.Fatal("Close returned; the hazard this test documents has silently disappeared")
	case <-time.After(100 * time.Millisecond):
		// Stalled, as the lock order predicts. The two goroutines stay
		// parked for the life of the test binary; that leak is the point.
	}
}
