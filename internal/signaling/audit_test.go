package signaling

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fafnet/internal/core"
	"fafnet/internal/obs"
	"fafnet/internal/scenario"
	"fafnet/internal/topo"
	"fafnet/internal/units"
)

// auditedServer is startServer plus a file-backed audit log; it returns a
// function that reads back every record appended so far. A file (not a
// shared buffer) keeps the test free of data races with the server's append
// goroutine: the bytes travel through the OS, not shared Go memory.
func auditedServer(t *testing.T) (*Client, func() []obs.AuditRecord) {
	t.Helper()
	client, srv := startServer(t)
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	log, err := obs.OpenAuditLog(path)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetAuditLog(log)
	t.Cleanup(func() { log.Close() })
	return client, func() []obs.AuditRecord {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var recs []obs.AuditRecord
		sc := bufio.NewScanner(bytes.NewReader(data))
		for sc.Scan() {
			var rec obs.AuditRecord
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				t.Fatalf("audit line %d is not valid JSON: %v\n%s", len(recs)+1, err, sc.Text())
			}
			recs = append(recs, rec)
		}
		return recs
	}
}

func TestAuditRecordsWellFormed(t *testing.T) {
	client, records := auditedServer(t)

	if dec, err := client.Admit(videoRequest("v1", 0, 0, 1, 0)); err != nil || !dec.Admitted {
		t.Fatalf("admit: %+v, %v", dec, err)
	}
	tight := videoRequest("tight", 1, 0, 2, 0)
	tight.DeadlineMillis = 1
	if dec, err := client.Admit(tight); err != nil || dec.Admitted {
		t.Fatalf("impossible deadline: %+v, %v", dec, err)
	}
	if dec, err := client.Preview(videoRequest("p1", 1, 0, 2, 0)); err != nil || !dec.Admitted {
		t.Fatalf("preview: %+v, %v", dec, err)
	}
	if _, err := client.Admit(videoRequest("v1", 1, 0, 2, 0)); err == nil {
		t.Fatal("duplicate id should error")
	}
	if ok, err := client.Release("v1"); err != nil || !ok {
		t.Fatalf("release: %v, %v", ok, err)
	}
	if ok, err := client.Release("ghost"); err != nil || ok {
		t.Fatalf("release of unknown id: %v, %v", ok, err)
	}

	recs := records()
	if len(recs) != 6 {
		t.Fatalf("got %d audit records, want 6", len(recs))
	}
	for i, rec := range recs {
		if rec.TimeUnixNanos == 0 {
			t.Errorf("record %d: unstamped", i)
		}
		if rec.ConnID == "" {
			t.Errorf("record %d: no connection id", i)
		}
		if rec.Beta != 0.5 {
			t.Errorf("record %d: beta = %v, want the default 0.5", i, rec.Beta)
		}
	}

	admitted := recs[0]
	if admitted.Op != "admit" || !admitted.Admitted || admitted.Reason != core.ReasonAdmitted {
		t.Errorf("admitted record: %+v", admitted)
	}
	if admitted.HSSeconds <= 0 || admitted.HRSeconds <= 0 || admitted.Probes < 3 {
		t.Errorf("admitted record lacks allocations/probes: %+v", admitted)
	}
	if admitted.Stages == nil || admitted.Stages.TotalSeconds <= 0 {
		t.Errorf("admitted record lacks the stage decomposition: %+v", admitted.Stages)
	} else {
		sum := admitted.Stages.SrcMACSeconds + admitted.Stages.ShaperSeconds +
			admitted.Stages.DstMACSeconds + admitted.Stages.ConstantSeconds
		for _, p := range admitted.Stages.PortSeconds {
			sum += p
		}
		if !units.AlmostEq(sum, admitted.Stages.TotalSeconds) {
			t.Errorf("stage delays sum to %v, total says %v", sum, admitted.Stages.TotalSeconds)
		}
	}
	if admitted.Cache == nil || admitted.Cache.MACMisses == 0 {
		t.Errorf("admitted record lacks cache counts: %+v", admitted.Cache)
	}
	if len(admitted.Request) == 0 {
		t.Error("admitted record lacks the original request body")
	}

	rejected := recs[1]
	if rejected.Op != "admit" || rejected.Admitted || rejected.Reason == "" || rejected.Error != "" {
		t.Errorf("rejected record: %+v", rejected)
	}
	if rejected.Stages != nil {
		t.Errorf("rejected record carries stages: %+v", rejected.Stages)
	}

	preview := recs[2]
	if preview.Op != "preview" || !preview.Admitted || preview.Stages == nil {
		t.Errorf("preview record: %+v", preview)
	}

	dup := recs[3]
	if dup.Op != "admit" || dup.Admitted || dup.Error == "" {
		t.Errorf("duplicate-id record should carry an error: %+v", dup)
	}

	released := recs[4]
	if released.Op != "release" || released.ConnID != "v1" ||
		released.Released == nil || !*released.Released {
		t.Errorf("release record: %+v", released)
	}
	ghost := recs[5]
	if ghost.Op != "release" || ghost.Released == nil || *ghost.Released {
		t.Errorf("release-of-unknown record: %+v", ghost)
	}
}

// TestAuditLogReplays drives the acceptance criterion that an audit log
// replays to the same decisions: feeding each record's embedded request to
// a fresh controller reproduces every outcome and allocation.
func TestAuditLogReplays(t *testing.T) {
	client, records := auditedServer(t)
	reqs := []scenario.Request{
		videoRequest("a", 0, 0, 1, 0),
		videoRequest("b", 1, 0, 2, 0),
		videoRequest("c", 2, 0, 0, 1),
	}
	tight := videoRequest("d", 0, 1, 2, 1)
	tight.DeadlineMillis = 1
	reqs = append(reqs, tight)
	for _, r := range reqs {
		if _, err := client.Admit(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Release("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Admit(videoRequest("e", 1, 0, 2, 0)); err != nil {
		t.Fatal(err)
	}

	// Replay against a fresh controller.
	net0, err := topo.NewNetwork(topo.Default())
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := core.NewController(net0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := records()
	if len(recs) != 6 {
		t.Fatalf("got %d audit records, want 6", len(recs))
	}
	for i, rec := range recs {
		switch rec.Op {
		case "admit":
			var sr scenario.Request
			if err := json.Unmarshal(rec.Request, &sr); err != nil {
				t.Fatalf("record %d: embedded request does not parse: %v", i, err)
			}
			spec, err := sr.Spec()
			if err != nil {
				t.Fatalf("record %d: %v", i, err)
			}
			dec, err := ctl.RequestAdmission(spec)
			if err != nil {
				t.Fatalf("record %d: replay errored: %v", i, err)
			}
			if dec.Admitted != rec.Admitted {
				t.Errorf("record %d (%s): replay admitted=%v, log says %v", i, rec.ConnID, dec.Admitted, rec.Admitted)
			}
			if dec.Admitted && (!units.AlmostEq(dec.HS, rec.HSSeconds) || !units.AlmostEq(dec.HR, rec.HRSeconds)) {
				t.Errorf("record %d (%s): replay chose (%v, %v), log says (%v, %v)",
					i, rec.ConnID, dec.HS, dec.HR, rec.HSSeconds, rec.HRSeconds)
			}
		case "release":
			if found := ctl.Release(rec.ConnID); rec.Released != nil && found != *rec.Released {
				t.Errorf("record %d: replay release=%v, log says %v", i, found, *rec.Released)
			}
		default:
			t.Errorf("record %d: unexpected op %q", i, rec.Op)
		}
	}
}

func TestMalformedJSONGetsStructuredError(t *testing.T) {
	client, _ := startServer(t)
	conn, err := net.DialTimeout("tcp", client.conn.RemoteAddr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintln(conn, "{this is not json"); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatalf("no structured response to malformed JSON: %v", err)
	}
	if resp.OK || resp.Error == "" {
		t.Errorf("response = %+v, want ok=false with an error", resp)
	}
	// The server then closes the connection: the stream cannot resync.
	if err := json.NewDecoder(conn).Decode(&resp); err == nil {
		t.Error("connection stayed open after a parse failure")
	}
}

// TestMetricsScrapeDuringAdmissions hammers registry renders concurrently
// with admissions through the server — the race detector (make race) is the
// assertion, mirroring a Prometheus scraper hitting /metrics under load.
func TestMetricsScrapeDuringAdmissions(t *testing.T) {
	client, _ := startServer(t)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				if err := obs.Default.WritePrometheus(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("s%d", i)
		if _, err := client.Admit(videoRequest(id, i%3, 0, (i+1)%3, 0)); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Release(id); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}
