package signaling

import (
	"encoding/json"

	"fafnet/internal/core"
	"fafnet/internal/obs"
)

// SetAuditLog installs the admission audit log: from now on every admit,
// preview and release operation appends one record. Pass nil to stop
// auditing. Safe to call concurrently with request handling; the server
// does not close the log.
func (s *Server) SetAuditLog(l *obs.AuditLog) {
	s.audit.Store(l)
}

// SetAsyncAudit routes audit records through an async writer instead of
// appending them inline; it takes precedence over SetAuditLog. Only the
// sharded backend honors it — its commit callbacks enqueue outside any
// server lock. The serialized backend always appends inline under its
// decision lock (a blocking enqueue there would stall every contender),
// so serialized servers use SetAuditLog. The caller owns the writer's
// lifecycle: Flush/Close it only after the server has drained (Shutdown
// returned), so no handler is still enqueuing. Pass nil to revert to
// inline appends.
func (s *Server) SetAsyncAudit(w *obs.AsyncAuditWriter) {
	s.asyncAudit.Store(w)
}

// auditEnabled reports whether any audit sink is installed.
func (s *Server) auditEnabled() bool {
	return s.asyncAudit.Load() != nil || s.audit.Load() != nil
}

// auditDecision records one admit/preview outcome on the serialized
// backend. Called with s.mu held, which keeps the log's record order
// identical to the controller's decision order — the property that makes a
// log replayable against a fresh controller. (The sharded backend gets the
// same guarantee from commit-section callbacks; see executeSharded.)
// Appends go straight to the inline log, never the async writer: its
// enqueue can block on a full queue, and blocking under s.mu would stall
// every request.
func (s *Server) auditDecision(req Request, spec core.ConnSpec, dec core.Decision, opErr error) {
	if s.audit.Load() == nil {
		return
	}
	s.appendInline(s.decisionRecord(req, spec, dec, opErr))
}

// decisionRecord builds the audit record for one admit/preview outcome.
func (s *Server) decisionRecord(req Request, spec core.ConnSpec, dec core.Decision, opErr error) obs.AuditRecord {
	rec := obs.AuditRecord{
		Op:              string(req.Op),
		ConnID:          spec.ID,
		Admitted:        dec.Admitted,
		Reason:          dec.Reason,
		Beta:            s.opts.Beta,
		DeadlineSeconds: spec.Deadline,
		Probes:          dec.Probes,
		Cache:           auditCache(dec.Cache),
	}
	if opErr != nil {
		rec.Error = opErr.Error()
	}
	if dec.Admitted {
		rec.HSSeconds, rec.HRSeconds = dec.HS, dec.HR
		rec.Stages = auditStages(dec.Stages)
	}
	if body, err := json.Marshal(req.Admit); err == nil {
		rec.Request = body
	}
	return rec
}

// auditRelease records one release outcome on the serialized backend.
// Called with s.mu held (see auditDecision).
func (s *Server) auditRelease(id string, found bool) {
	if s.audit.Load() == nil {
		return
	}
	s.appendInline(s.releaseRecord(id, found))
}

// releaseRecord builds the audit record for one release outcome.
func (s *Server) releaseRecord(id string, found bool) obs.AuditRecord {
	return obs.AuditRecord{
		Op:       string(OpRelease),
		ConnID:   id,
		Beta:     s.opts.Beta,
		Released: &found,
	}
}

// appendAudit hands one record to the installed sink, preferring the async
// writer, tracking log health in metrics. Used by the sharded backend's
// commit callbacks, which run outside any server lock.
func (s *Server) appendAudit(rec obs.AuditRecord) {
	if w := s.asyncAudit.Load(); w != nil {
		w.Enqueue(rec)
		mAuditRecords.Inc()
		return
	}
	s.appendInline(rec)
}

// appendInline appends one record to the inline log, if any.
func (s *Server) appendInline(rec obs.AuditRecord) {
	log := s.audit.Load()
	if log == nil {
		return
	}
	if err := log.Append(rec); err != nil {
		mAuditErrors.Inc()
		return
	}
	mAuditRecords.Inc()
}

// auditStages converts the analysis-layer decomposition into the audit-log
// schema.
func auditStages(bd *core.Breakdown) *obs.StageDelays {
	if bd == nil {
		return nil
	}
	out := &obs.StageDelays{
		SrcMACSeconds:   bd.SrcMAC,
		ShaperSeconds:   bd.Shaper,
		DstMACSeconds:   bd.DstMAC,
		ConstantSeconds: bd.Constant,
		TotalSeconds:    bd.Total,
	}
	for _, p := range bd.Ports {
		out.PortSeconds = append(out.PortSeconds, p.Delay)
	}
	return out
}

// auditCache converts the analyzer's per-decision cache diff into the
// audit-log schema.
func auditCache(c core.CacheStats) *obs.CacheCounts {
	return &obs.CacheCounts{
		Stage0Hits:   c.Stage0Hits,
		Stage0Misses: c.Stage0Misses,
		MACHits:      c.MACHits,
		MACMisses:    c.MACMisses,
	}
}
