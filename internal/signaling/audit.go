package signaling

import (
	"encoding/json"

	"fafnet/internal/core"
	"fafnet/internal/obs"
)

// SetAuditLog installs the admission audit log: from now on every admit,
// preview and release operation appends one record. Pass nil to stop
// auditing. Safe to call concurrently with request handling; the server
// does not close the log.
func (s *Server) SetAuditLog(l *obs.AuditLog) {
	s.audit.Store(l)
}

// auditDecision records one admit/preview outcome. Called with s.mu held,
// which keeps the log's record order identical to the controller's decision
// order — the property that makes a log replayable against a fresh
// controller.
func (s *Server) auditDecision(req Request, spec core.ConnSpec, dec core.Decision, opErr error) {
	if s.audit.Load() == nil {
		return
	}
	rec := obs.AuditRecord{
		Op:              string(req.Op),
		ConnID:          spec.ID,
		Admitted:        dec.Admitted,
		Reason:          dec.Reason,
		Beta:            s.ctl.Options().Beta,
		DeadlineSeconds: spec.Deadline,
		Probes:          dec.Probes,
		Cache:           auditCache(dec.Cache),
	}
	if opErr != nil {
		rec.Error = opErr.Error()
	}
	if dec.Admitted {
		rec.HSSeconds, rec.HRSeconds = dec.HS, dec.HR
		rec.Stages = auditStages(dec.Stages)
	}
	if body, err := json.Marshal(req.Admit); err == nil {
		rec.Request = body
	}
	s.appendAudit(rec)
}

// auditRelease records one release outcome. Called with s.mu held (see
// auditDecision).
func (s *Server) auditRelease(id string, found bool) {
	if s.audit.Load() == nil {
		return
	}
	s.appendAudit(obs.AuditRecord{
		Op:       string(OpRelease),
		ConnID:   id,
		Beta:     s.ctl.Options().Beta,
		Released: &found,
	})
}

// appendAudit writes one record, tracking log health in metrics.
func (s *Server) appendAudit(rec obs.AuditRecord) {
	log := s.audit.Load()
	if log == nil {
		return
	}
	if err := log.Append(rec); err != nil {
		mAuditErrors.Inc()
		return
	}
	mAuditRecords.Inc()
}

// auditStages converts the analysis-layer decomposition into the audit-log
// schema.
func auditStages(bd *core.Breakdown) *obs.StageDelays {
	if bd == nil {
		return nil
	}
	out := &obs.StageDelays{
		SrcMACSeconds:   bd.SrcMAC,
		ShaperSeconds:   bd.Shaper,
		DstMACSeconds:   bd.DstMAC,
		ConstantSeconds: bd.Constant,
		TotalSeconds:    bd.Total,
	}
	for _, p := range bd.Ports {
		out.PortSeconds = append(out.PortSeconds, p.Delay)
	}
	return out
}

// auditCache converts the analyzer's per-decision cache diff into the
// audit-log schema.
func auditCache(c core.CacheStats) *obs.CacheCounts {
	return &obs.CacheCounts{
		Stage0Hits:   c.Stage0Hits,
		Stage0Misses: c.Stage0Misses,
		MACHits:      c.MACHits,
		MACMisses:    c.MACMisses,
	}
}
