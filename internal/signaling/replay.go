package signaling

import (
	"encoding/json"
	"fmt"

	"fafnet/internal/core"
	"fafnet/internal/obs"
	"fafnet/internal/scenario"
	"fafnet/internal/units"
)

// ReplayStats summarizes one audit-log replay.
type ReplayStats struct {
	// Admits counts admitted connections re-committed to the controller.
	Admits int
	// Releases counts releases re-applied.
	Releases int
	// Skipped counts records that change no controller state and were not
	// replayed: previews, rejected admits, errored operations, and releases
	// that found nothing.
	Skipped int
}

// Replay rebuilds controller state from an audit log, in record order. It is
// the recovery half of the audit log's design: because the server appends
// records under the same lock that serializes controller decisions, the file
// order is the decision order, and re-running the state-changing records
// against a fresh controller over the same topology and options must
// reproduce every decision exactly.
//
// Replay therefore verifies as it goes: a replayed admit must be admitted
// again with the same HS/HR allocations (within the engine's float
// tolerance), and a replayed release must find its connection. Any
// divergence aborts with an error naming the record — it means the log and
// the configuration disagree (wrong topology or β, an edited log, or a
// truncated middle), and recovered state would be unsound.
//
// Records that changed no state are skipped: previews, rejected admits,
// errored operations, and releases that reported false.
func Replay(ctl *core.Controller, records []obs.AuditRecord) (ReplayStats, error) {
	var stats ReplayStats
	if ctl == nil {
		return stats, fmt.Errorf("signaling: replay requires a controller")
	}
	for i, rec := range records {
		if rec.Error != "" {
			stats.Skipped++
			mReplaySkipped.Inc()
			continue
		}
		switch Op(rec.Op) {
		case OpAdmit:
			if !rec.Admitted {
				stats.Skipped++
				mReplaySkipped.Inc()
				continue
			}
			if err := replayAdmit(ctl, i, rec); err != nil {
				return stats, err
			}
			stats.Admits++
			mReplayRecords.Inc()
		case OpRelease:
			if rec.Released == nil || !*rec.Released {
				stats.Skipped++
				mReplaySkipped.Inc()
				continue
			}
			if !ctl.Release(rec.ConnID) {
				return stats, fmt.Errorf("signaling: replay record %d: release %q found no connection; the log does not match the controller state", i+1, rec.ConnID)
			}
			stats.Releases++
			mReplayRecords.Inc()
		case OpPreview, OpPreviewBatch:
			stats.Skipped++
			mReplaySkipped.Inc()
		default:
			return stats, fmt.Errorf("signaling: replay record %d: unknown op %q", i+1, rec.Op)
		}
	}
	return stats, nil
}

// replayAdmit re-runs one admitted admission and checks the controller
// reproduces the logged decision.
func replayAdmit(ctl *core.Controller, i int, rec obs.AuditRecord) error {
	if !units.AlmostEq(rec.Beta, ctl.Options().Beta) {
		return fmt.Errorf("signaling: replay record %d: logged β=%v but controller has β=%v; recovery needs the original options", i+1, rec.Beta, ctl.Options().Beta)
	}
	if len(rec.Request) == 0 {
		return fmt.Errorf("signaling: replay record %d: admit %q carries no request body", i+1, rec.ConnID)
	}
	var req scenario.Request
	if err := json.Unmarshal(rec.Request, &req); err != nil {
		return fmt.Errorf("signaling: replay record %d: admit %q request body: %w", i+1, rec.ConnID, err)
	}
	spec, err := req.Spec()
	if err != nil {
		return fmt.Errorf("signaling: replay record %d: admit %q: %w", i+1, rec.ConnID, err)
	}
	dec, err := ctl.RequestAdmission(spec)
	if err != nil {
		return fmt.Errorf("signaling: replay record %d: admit %q failed on replay: %w", i+1, rec.ConnID, err)
	}
	if !dec.Admitted {
		return fmt.Errorf("signaling: replay record %d: admit %q was admitted originally but rejected on replay (%s); topology or options differ from the logged run", i+1, rec.ConnID, dec.Reason)
	}
	if !units.AlmostEq(dec.HS, rec.HSSeconds) || !units.AlmostEq(dec.HR, rec.HRSeconds) {
		return fmt.Errorf("signaling: replay record %d: admit %q allocations diverged: logged HS=%v HR=%v, replayed HS=%v HR=%v", i+1, rec.ConnID, rec.HSSeconds, rec.HRSeconds, dec.HS, dec.HR)
	}
	return nil
}
