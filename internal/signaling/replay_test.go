package signaling

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"fafnet/internal/core"
	"fafnet/internal/obs"
	"fafnet/internal/topo"
	"fafnet/internal/units"
)

// freshController builds a controller over the default topology.
func freshController(t *testing.T, opts core.Options) *core.Controller {
	t.Helper()
	net0, err := topo.NewNetwork(topo.Default())
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := core.NewController(net0, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ctl
}

// admittedSet summarizes a controller's live connections for comparison.
func admittedSet(ctl *core.Controller) map[string][2]float64 {
	out := make(map[string][2]float64)
	for _, c := range ctl.Connections() {
		out[c.ID] = [2]float64{c.HS, c.HR}
	}
	return out
}

// TestReplayReproducesControllerState is the recovery round trip: a mixed
// workload is run against an audited server, then the log is read back and
// replayed against a fresh controller, which must end with the identical
// admitted set and allocations.
func TestReplayReproducesControllerState(t *testing.T) {
	var buf bytes.Buffer
	client, srv := startServer(t)
	srv.SetAuditLog(obs.NewAuditLog(&buf))

	admits := []struct {
		id               string
		srcRing, dstRing int
	}{{"v1", 0, 1}, {"v2", 1, 2}, {"v3", 2, 0}}
	for _, a := range admits {
		dec, err := client.Admit(videoRequest(a.id, a.srcRing, 0, a.dstRing, 0))
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Admitted {
			t.Fatalf("%s rejected: %s", a.id, dec.Reason)
		}
	}
	// State-neutral records the replay must skip: a preview, a rejected
	// admit, and a release that finds nothing.
	if _, err := client.Preview(videoRequest("peek", 1, 0, 2, 0)); err != nil {
		t.Fatal(err)
	}
	impossible := videoRequest("no", 0, 0, 1, 0)
	impossible.DeadlineMillis = 1
	if dec, err := client.Admit(impossible); err != nil || dec.Admitted {
		t.Fatalf("impossible admit: %+v %v", dec, err)
	}
	if ok, err := client.Release("ghost"); err != nil || ok {
		t.Fatalf("ghost release: %v %v", ok, err)
	}
	// And one real release.
	if ok, err := client.Release("v2"); err != nil || !ok {
		t.Fatalf("release v2: %v %v", ok, err)
	}
	ctlSrv := srvController(srv)
	want := admittedSet(ctlSrv)
	if len(want) != 2 {
		t.Fatalf("server ended with %d connections, want 2", len(want))
	}

	records, err := obs.ReadAuditRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ctl2 := freshController(t, core.Options{})
	stats, err := Replay(ctl2, records)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Admits != 3 || stats.Releases != 1 || stats.Skipped != 3 {
		t.Errorf("stats = %+v, want 3 admits, 1 release, 3 skipped", stats)
	}
	got := admittedSet(ctl2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d connections, want %d", len(got), len(want))
	}
	var ids []string
	for id := range want {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		w, g := want[id], got[id]
		if !units.AlmostEq(w[0], g[0]) || !units.AlmostEq(w[1], g[1]) {
			t.Errorf("%s allocations: replayed HS=%v HR=%v, want HS=%v HR=%v", id, g[0], g[1], w[0], w[1])
		}
	}
}

// srvController reaches the server's controller (same package). The field
// is guarded by s.mu, so take it even though the test is quiescent here.
func srvController(s *Server) *core.Controller {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctl
}

// TestReplayDetectsOptionMismatch: replaying against a controller with a
// different β must fail loudly rather than rebuild divergent state.
func TestReplayDetectsOptionMismatch(t *testing.T) {
	var buf bytes.Buffer
	client, srv := startServer(t)
	srv.SetAuditLog(obs.NewAuditLog(&buf))
	if _, err := client.Admit(videoRequest("v1", 0, 0, 1, 0)); err != nil {
		t.Fatal(err)
	}
	records, err := obs.ReadAuditRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ctl2 := freshController(t, core.Options{Beta: 0.75})
	if _, err := Replay(ctl2, records); err == nil || !strings.Contains(err.Error(), "β") {
		t.Fatalf("replay with mismatched β returned %v, want an options error", err)
	}
}

// TestReplayDetectsMissingRelease: a release record whose connection is
// absent means the log is inconsistent.
func TestReplayDetectsMissingRelease(t *testing.T) {
	released := true
	records := []obs.AuditRecord{{Op: "release", ConnID: "ghost", Released: &released}}
	if _, err := Replay(freshController(t, core.Options{}), records); err == nil {
		t.Fatal("replaying a release of an unknown connection must fail")
	}
}

// TestReplayRejectsUnknownOp guards the record schema.
func TestReplayRejectsUnknownOp(t *testing.T) {
	records := []obs.AuditRecord{{Op: "dance"}}
	if _, err := Replay(freshController(t, core.Options{}), records); err == nil {
		t.Fatal("unknown op must fail the replay")
	}
}
