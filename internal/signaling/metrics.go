package signaling

import "fafnet/internal/obs"

// opInvalid labels metrics for requests whose op is unknown or whose JSON
// could not be parsed.
const opInvalid = "invalid"

// Per-op metric children, registered eagerly at init so every op appears in
// a /metrics scrape (with value 0) from process start. The maps are written
// only during init and read concurrently afterwards.
var (
	mRequests  = make(map[string]*obs.Counter)
	mErrors    = make(map[string]*obs.Counter)
	mOpSeconds = make(map[string]*obs.Histogram)
)

func init() {
	const (
		reqHelp = "Requests received by operation."
		errHelp = "Requests that failed with a protocol or controller error, by operation."
		latHelp = "Wall time of one request execution by operation."
	)
	ops := []string{
		string(OpAdmit), string(OpPreview), string(OpPreviewBatch),
		string(OpRelease), string(OpReport), string(OpBuffers), opInvalid,
	}
	for _, op := range ops {
		mRequests[op] = obs.Default.Counter("fafnet_signaling_requests_total", reqHelp, "op", op)
		mErrors[op] = obs.Default.Counter("fafnet_signaling_errors_total", errHelp, "op", op)
		mOpSeconds[op] = obs.Default.Histogram("fafnet_signaling_op_seconds", latHelp, obs.LatencyBuckets(), "op", op)
	}
}

// opLabel maps a request op onto its metric label, folding unknown ops into
// opInvalid so a misbehaving client cannot mint metric children.
func opLabel(op Op) string {
	if _, ok := mRequests[string(op)]; ok {
		return string(op)
	}
	return opInvalid
}

// Audit-log health counters.
var (
	mAuditRecords = obs.Default.Counter("fafnet_signaling_audit_records_total",
		"Audit records appended to the audit log.")
	mAuditErrors = obs.Default.Counter("fafnet_signaling_audit_errors_total",
		"Audit records that could not be appended (check disk space and permissions).")
)

// Connection-lifecycle and shutdown metrics.
var (
	gOpenConns = obs.Default.Gauge("fafnet_signaling_open_connections",
		"Client connections currently registered with the server.")
	mIdleClosed = obs.Default.Counter("fafnet_signaling_idle_closed_total",
		"Connections closed for exceeding the idle timeout.")
	mForceClosed = obs.Default.Counter("fafnet_signaling_drain_force_closed_total",
		"Connections force-closed because the drain deadline expired with their request still in flight.")
	mAcceptRetries = obs.Default.Counter("fafnet_signaling_accept_retries_total",
		"Temporary accept failures survived by the accept loop's backoff.")
)

// Crash-recovery (audit replay) counters.
var (
	mReplayRecords = obs.Default.Counter("fafnet_signaling_replay_records_total",
		"Audit records applied during a -recover replay (admits re-run plus releases re-applied).")
	mReplaySkipped = obs.Default.Counter("fafnet_signaling_replay_skipped_total",
		"Audit records skipped during a -recover replay (previews, rejections, and errored operations change no state).")
)
