package signaling

import "fafnet/internal/obs"

// opInvalid labels metrics for requests whose op is unknown or whose JSON
// could not be parsed.
const opInvalid = "invalid"

// Per-op metric children, registered eagerly at init so every op appears in
// a /metrics scrape (with value 0) from process start. The maps are written
// only during init and read concurrently afterwards.
var (
	mRequests  = make(map[string]*obs.Counter)
	mErrors    = make(map[string]*obs.Counter)
	mOpSeconds = make(map[string]*obs.Histogram)
)

func init() {
	const (
		reqHelp = "Requests received by operation."
		errHelp = "Requests that failed with a protocol or controller error, by operation."
		latHelp = "Wall time of one request execution by operation."
	)
	ops := []string{
		string(OpAdmit), string(OpPreview), string(OpRelease),
		string(OpReport), string(OpBuffers), opInvalid,
	}
	for _, op := range ops {
		mRequests[op] = obs.Default.Counter("fafnet_signaling_requests_total", reqHelp, "op", op)
		mErrors[op] = obs.Default.Counter("fafnet_signaling_errors_total", errHelp, "op", op)
		mOpSeconds[op] = obs.Default.Histogram("fafnet_signaling_op_seconds", latHelp, obs.LatencyBuckets(), "op", op)
	}
}

// opLabel maps a request op onto its metric label, folding unknown ops into
// opInvalid so a misbehaving client cannot mint metric children.
func opLabel(op Op) string {
	if _, ok := mRequests[string(op)]; ok {
		return string(op)
	}
	return opInvalid
}

// Audit-log health counters.
var (
	mAuditRecords = obs.Default.Counter("fafnet_signaling_audit_records_total",
		"Audit records appended to the audit log.")
	mAuditErrors = obs.Default.Counter("fafnet_signaling_audit_errors_total",
		"Audit records that could not be appended (check disk space and permissions).")
)
