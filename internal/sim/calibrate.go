package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"fafnet/internal/core"
	"fafnet/internal/des"
	"fafnet/internal/packetsim"
	"fafnet/internal/stats"
	"fafnet/internal/topo"
	"fafnet/internal/workload"
)

// CalibrateConfig parameterizes the calibration sweep: a sequence of
// randomized multi-class scenarios, each admitted by the controller and then
// cross-checked by the packet-level simulator against the analytic Eq. 7
// bounds.
type CalibrateConfig struct {
	// Topology describes the network (default: the paper's evaluation
	// network). The same topology feeds admission and the packet simulator.
	Topology topo.Config
	// CAC configures the admission controller.
	CAC core.Options
	// Scenarios is the number of randomized scenarios to run (default 100).
	Scenarios int
	// Seed derives every scenario's workload spec and simulation seeds;
	// the sweep is deterministic in it.
	Seed int64
	// Requests is the admission-request budget per scenario (default 40).
	Requests int
	// Warmup is the per-scenario warmup excluded from admission statistics
	// (default 10).
	Warmup int
	// PacketDuration is the packet-level simulated span per scenario in
	// seconds (default 0.25 — tens of token rotations and deadline windows).
	PacketDuration float64
	// SkipReplay disables the per-scenario record/replay bit-identity
	// cross-check (it roughly doubles the admission-simulation cost).
	SkipReplay bool
	// Progress, when non-nil, is called after each scenario completes.
	Progress func(ScenarioOutcome)
}

func (c CalibrateConfig) withDefaults() CalibrateConfig {
	if c.Topology.NumRings == 0 {
		c.Topology = topo.Default()
	}
	if c.Scenarios <= 0 {
		c.Scenarios = 100
	}
	if c.Requests <= 0 {
		c.Requests = 40
	}
	if c.Warmup <= 0 {
		c.Warmup = 10
	}
	if c.PacketDuration <= 0 {
		c.PacketDuration = 0.25
	}
	return c
}

// ScenarioOutcome summarizes one calibration scenario.
type ScenarioOutcome struct {
	// Index is the scenario's position in the sweep.
	Index int
	// Seed is the scenario's derived seed (reproduces it in isolation).
	Seed int64
	// Classes is the number of workload classes in the drawn spec.
	Classes int
	// Admitted is the size of the admitted-connection snapshot handed to the
	// packet simulator.
	Admitted int
	// Measured counts admitted connections that delivered at least one frame
	// during the packet run (only these contribute tightness samples).
	Measured int
	// Violations counts measured delays above the analytic bound. Any
	// nonzero value is a soundness failure.
	Violations int
	// WorstTightness is the scenario's maximum measured/bound delay ratio
	// (0 when nothing was measured).
	WorstTightness float64
	// ReplayMatch reports whether replaying the recorded trace reproduced
	// the recording's decision-stream fingerprint bit-for-bit (true when the
	// replay check is skipped).
	ReplayMatch bool
}

// ClassCalibration aggregates bound-tightness statistics for one workload
// class across the whole sweep.
type ClassCalibration struct {
	// Class is the workload class name.
	Class string
	// AP pools the class's admission counts over every scenario; its CI95 is
	// the Wilson interval the calibration report prints.
	AP stats.Ratio
	// Connections counts measured connections of this class.
	Connections int
	// WorstTightness is the maximum measured/bound delay ratio.
	WorstTightness float64
	// MAPE is the mean absolute percentage error of the analytic bound
	// against the measured maximum delay — how conservative the bound is.
	MAPE float64
	// Pearson is the correlation between analytic bounds and measured
	// maximum delays — whether the bound tracks the measurement.
	Pearson float64
}

// CalibrateResult is the outcome of a calibration sweep.
type CalibrateResult struct {
	// Scenarios holds one outcome per scenario, in sweep order.
	Scenarios []ScenarioOutcome
	// PerClass aggregates tightness per workload class, sorted by name.
	PerClass []ClassCalibration
	// Overall aggregates tightness over every measured connection.
	Overall ClassCalibration
	// Violations totals measured-delay bound violations across the sweep.
	// The calibration gate fails hard on any.
	Violations int
	// ReplayMismatches counts scenarios whose trace replay diverged from the
	// recording. Must be zero: same trace ⇒ bit-identical run.
	ReplayMismatches int
}

// Passed reports whether the sweep upheld both gate invariants: no measured
// delay above its analytic bound and no replay divergence.
func (r CalibrateResult) Passed() bool {
	return r.Violations == 0 && r.ReplayMismatches == 0
}

// classCal accumulates one class's admission counts and (bound, measured)
// pairs during the sweep.
type classCal struct {
	ap       stats.Ratio
	bounds   []float64
	measured []float64
	worst    float64
}

func (c *classCal) add(bound, measured float64) {
	c.bounds = append(c.bounds, bound)
	c.measured = append(c.measured, measured)
	if bound > 0 {
		if t := measured / bound; t > c.worst {
			c.worst = t
		}
	}
}

func (c *classCal) result(name string) (ClassCalibration, error) {
	mape, err := stats.MAPE(c.bounds, c.measured)
	if err != nil {
		return ClassCalibration{}, err
	}
	pearson, err := stats.Pearson(c.bounds, c.measured)
	if err != nil {
		return ClassCalibration{}, err
	}
	return ClassCalibration{
		Class:          name,
		AP:             c.ap,
		Connections:    len(c.bounds),
		WorstTightness: c.worst,
		MAPE:           mape,
		Pearson:        pearson,
	}, nil
}

// scenarioSeedStride separates per-scenario seeds far enough that the
// strided per-class generator seeds of adjacent scenarios cannot collide.
const scenarioSeedStride = 104729

// Calibrate runs the calibration sweep: for each scenario it draws a
// randomized multi-class workload spec, runs the admission simulation with
// trace recording, optionally replays the trace and checks bit-identity,
// then feeds the admitted snapshot through the packet-level simulator and
// compares every measured delay against its analytic Eq. 7 bound. Results
// also flow to the workload metric families on /metrics.
func Calibrate(cfg CalibrateConfig) (CalibrateResult, error) {
	cfg = cfg.withDefaults()

	res := CalibrateResult{}
	perClass := make(map[string]*classCal)
	overall := &classCal{}
	cls := func(name string) *classCal {
		cc := perClass[name]
		if cc == nil {
			cc = &classCal{}
			perClass[name] = cc
		}
		return cc
	}

	for i := 0; i < cfg.Scenarios; i++ {
		seed := cfg.Seed + int64(i)*scenarioSeedStride
		spec := workload.RandomSpec(des.NewRNG(seed))

		mres, err := RunMulti(MultiConfig{
			Topology: cfg.Topology,
			CAC:      cfg.CAC,
			Spec:     spec,
			Requests: cfg.Requests,
			Warmup:   cfg.Warmup,
			Seed:     seed,
			Record:   true,
		})
		if err != nil {
			return res, fmt.Errorf("sim: calibration scenario %d (seed %d): %w", i, seed, err)
		}

		out := ScenarioOutcome{
			Index:       i,
			Seed:        seed,
			Classes:     len(spec.Classes),
			Admitted:    len(mres.Admitted),
			ReplayMatch: true,
		}
		for _, cr := range mres.PerClass {
			cls(cr.Class).ap.Merge(cr.AP)
		}
		overall.ap.Merge(mres.Total)

		if !cfg.SkipReplay {
			rep, err := RunMulti(MultiConfig{
				Topology: cfg.Topology,
				CAC:      cfg.CAC,
				Replay:   mres.Trace,
				Warmup:   cfg.Warmup,
			})
			if err != nil {
				return res, fmt.Errorf("sim: calibration scenario %d replay: %w", i, err)
			}
			out.ReplayMatch = rep.Fingerprint == mres.Fingerprint
			if !out.ReplayMatch {
				res.ReplayMismatches++
			}
		}

		// Class of each admitted connection, recovered from the trace.
		classOf := make(map[string]string, len(mres.Trace))
		for _, ev := range mres.Trace {
			classOf[ev.Req.ID] = ev.Class
		}

		if len(mres.Admitted) > 0 {
			pres, err := packetsim.Run(packetsim.Config{
				Topology:    cfg.Topology,
				Connections: mres.Admitted,
				Duration:    cfg.PacketDuration,
				Seed:        seed,
			})
			if err != nil {
				return res, fmt.Errorf("sim: calibration scenario %d packet run: %w", i, err)
			}
			for _, c := range pres.PerConn {
				if !c.WithinBound() {
					out.Violations++
				}
				if c.Delays.N() == 0 {
					continue // idle over the window: no tightness sample
				}
				out.Measured++
				name := classOf[c.ID]
				if name == "" {
					return res, fmt.Errorf("sim: calibration scenario %d: connection %q missing from trace", i, c.ID)
				}
				cls(name).add(c.Bound, c.Delays.Max())
				overall.add(c.Bound, c.Delays.Max())
				if c.Bound > 0 {
					if t := c.Delays.Max() / c.Bound; t > out.WorstTightness {
						out.WorstTightness = t
					}
				}
			}
		}

		res.Violations += out.Violations
		res.Scenarios = append(res.Scenarios, out)
		workload.AddCalibrationScenarios(1)
		if out.Violations > 0 {
			workload.AddCalibrationViolations(out.Violations)
		}
		if cfg.Progress != nil {
			cfg.Progress(out)
		}
	}

	if overall.worst == 0 && len(overall.bounds) == 0 {
		return res, errors.New("sim: calibration sweep measured no connections; raise -requests or the packet duration")
	}

	names := make([]string, 0, len(perClass))
	for name := range perClass {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cal, err := perClass[name].result(name)
		if err != nil {
			return res, err
		}
		res.PerClass = append(res.PerClass, cal)
		workload.SetClassTightness(name, cal.WorstTightness)
	}
	var err error
	res.Overall, err = overall.result(workload.Overall)
	if err != nil {
		return res, err
	}
	workload.SetClassTightness(workload.Overall, res.Overall.WorstTightness)

	// Guard against NaN leaking into the report (all-idle classes divide by
	// zero nowhere above, but MAPE over empty pairs is defined as 0; a NaN
	// here means an accounting bug, not a data point).
	if math.IsNaN(res.Overall.MAPE) || math.IsNaN(res.Overall.Pearson) {
		return res, errors.New("sim: calibration summary produced NaN")
	}
	return res, nil
}
