package sim

import (
	"bytes"
	"reflect"
	"testing"

	"fafnet/internal/workload"
)

func multiConfig(seed int64) MultiConfig {
	return MultiConfig{
		Spec:     workload.Default(),
		Requests: 120,
		Warmup:   20,
		Seed:     seed,
		Record:   true,
	}
}

func TestRunMultiDeterministic(t *testing.T) {
	a, err := RunMulti(multiConfig(42))
	if err != nil {
		t.Fatalf("RunMulti: %v", err)
	}
	b, err := RunMulti(multiConfig(42))
	if err != nil {
		t.Fatalf("RunMulti: %v", err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("same seed, different fingerprints: %x vs %x", a.Fingerprint, b.Fingerprint)
	}
	if !reflect.DeepEqual(a.PerClass, b.PerClass) {
		t.Fatal("same seed, different per-class stats")
	}
	c, err := RunMulti(multiConfig(43))
	if err != nil {
		t.Fatalf("RunMulti: %v", err)
	}
	if c.Fingerprint == a.Fingerprint {
		t.Fatal("different seeds produced the same decision stream")
	}
}

func TestRunMultiBasicShape(t *testing.T) {
	res, err := RunMulti(multiConfig(7))
	if err != nil {
		t.Fatalf("RunMulti: %v", err)
	}
	if res.Total.Trials() != 120 {
		t.Fatalf("counted %d requests, want 120", res.Total.Trials())
	}
	if res.Total.Value() <= 0 {
		t.Fatal("nothing admitted; workload sized wrong for the default network")
	}
	if len(res.PerClass) == 0 {
		t.Fatal("no per-class stats")
	}
	sum := 0
	for i, c := range res.PerClass {
		if i > 0 && c.Class <= res.PerClass[i-1].Class {
			t.Fatal("per-class results not sorted by name")
		}
		sum += c.AP.Trials()
	}
	if sum != res.Total.Trials() {
		t.Fatalf("per-class trials sum %d != total %d", sum, res.Total.Trials())
	}
	if res.Jain <= 0 || res.Jain > 1 {
		t.Fatalf("Jain index %v out of (0, 1]", res.Jain)
	}
	if len(res.Trace) < 120 {
		t.Fatalf("trace has %d events, want >= 120 (warmup included)", len(res.Trace))
	}
	if res.Duration <= 0 || res.MeanActive <= 0 {
		t.Fatalf("degenerate run: duration %v, mean active %v", res.Duration, res.MeanActive)
	}
}

// TestRunMultiReplayBitIdentical is the record/replay contract: replaying a
// recorded trace reproduces the decision stream and statistics exactly,
// including through a serialization round trip.
func TestRunMultiReplayBitIdentical(t *testing.T) {
	rec, err := RunMulti(multiConfig(99))
	if err != nil {
		t.Fatalf("record run: %v", err)
	}

	// Round-trip the trace through its JSON-lines wire form first, so the
	// test covers the file format, not just in-memory replay.
	var buf bytes.Buffer
	if err := workload.WriteTrace(&buf, rec.Trace); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	events, err := workload.ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}

	rep, err := RunMulti(MultiConfig{Replay: events, Warmup: 20})
	if err != nil {
		t.Fatalf("replay run: %v", err)
	}
	if rep.Fingerprint != rec.Fingerprint {
		t.Fatalf("replay fingerprint %x != recorded %x", rep.Fingerprint, rec.Fingerprint)
	}
	if !reflect.DeepEqual(rep.PerClass, rec.PerClass) {
		t.Fatalf("replay per-class stats diverged:\n got %+v\nwant %+v", rep.PerClass, rec.PerClass)
	}
	if rep.Total != rec.Total {
		t.Fatalf("replay total %v != recorded %v", rep.Total, rec.Total)
	}
	if len(rep.Admitted) != len(rec.Admitted) {
		t.Fatalf("replay admitted %d connections, recorded %d", len(rep.Admitted), len(rec.Admitted))
	}
	for i := range rep.Admitted {
		if rep.Admitted[i].ID != rec.Admitted[i].ID ||
			rep.Admitted[i].HS != rec.Admitted[i].HS ||
			rep.Admitted[i].HR != rec.Admitted[i].HR {
			t.Fatalf("admitted snapshot %d diverged: %+v vs %+v", i, rep.Admitted[i], rec.Admitted[i])
		}
	}
}

func TestRunMultiErrors(t *testing.T) {
	if _, err := RunMulti(MultiConfig{}); err == nil {
		t.Fatal("empty config (no spec, no replay) must fail")
	}
	bad := multiConfig(1)
	bad.Spec.Classes[0].Arrival.RatePerSec = -1
	if _, err := RunMulti(bad); err == nil {
		t.Fatal("invalid spec must fail")
	}
}
