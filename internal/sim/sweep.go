package sim

import (
	"fmt"
	"runtime"
	"sync"

	"fafnet/internal/core"
)

// Point is one measured coordinate of a figure series.
type Point struct {
	// X is the swept parameter (β for Figure 7, U for Figure 8).
	X float64
	// AP is the measured admission probability.
	AP float64
	// CI is the half-width of the 95% confidence interval on AP.
	CI float64
	// Result carries the full run statistics.
	Result Result
}

// Series is one labeled curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// job is one independent simulation in a sweep.
type job struct {
	series, point int
	cfg           Config
	x             float64
}

// runJobs executes jobs in parallel (each owns an isolated network,
// controller and RNG) and stores each result in out.
func runJobs(jobs []job, out []Series) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var (
		wg sync.WaitGroup
		mu sync.Mutex
		// first records the first worker error. guarded by mu.
		first error
	)
	ch := make(chan job)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				res, err := Run(j.cfg)
				mu.Lock()
				if err != nil && first == nil {
					first = fmt.Errorf("sim: sweep point (series %d, x=%v): %w", j.series, j.x, err)
				}
				out[j.series].Points[j.point] = Point{X: j.x, AP: res.AP.Value(), CI: res.AP.CI95(), Result: res}
				mu.Unlock()
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	// Every worker has exited, but the happens-before edge the annotation
	// can see is the lock itself.
	mu.Lock()
	defer mu.Unlock()
	return first
}

// pointSeed derives a distinct deterministic seed per sweep point.
func pointSeed(base int64, series, point int) int64 {
	return base + int64(series)*1_000_003 + int64(point)*7919
}

// BetaSweep reproduces Figure 7: admission probability against β, one
// series per offered utilization.
func BetaSweep(base Config, utils, betas []float64) ([]Series, error) {
	out := make([]Series, len(utils))
	var jobs []job
	for si, u := range utils {
		out[si] = Series{Label: fmt.Sprintf("U=%.2g", u), Points: make([]Point, len(betas))}
		for pi, beta := range betas {
			cfg := base
			cfg.Utilization = u
			cfg.CAC.Beta = beta
			cfg.CAC.BetaSet = true
			cfg.Seed = pointSeed(base.Seed, si, pi)
			jobs = append(jobs, job{series: si, point: pi, cfg: cfg, x: beta})
		}
	}
	if err := runJobs(jobs, out); err != nil {
		return nil, err
	}
	return out, nil
}

// LoadSweep reproduces Figure 8: admission probability against offered
// utilization, one series per β.
func LoadSweep(base Config, betas, utils []float64) ([]Series, error) {
	out := make([]Series, len(betas))
	var jobs []job
	for si, beta := range betas {
		out[si] = Series{Label: fmt.Sprintf("beta=%.2g", beta), Points: make([]Point, len(utils))}
		for pi, u := range utils {
			cfg := base
			cfg.Utilization = u
			cfg.CAC.Beta = beta
			cfg.CAC.BetaSet = true
			cfg.Seed = pointSeed(base.Seed, si, pi)
			jobs = append(jobs, job{series: si, point: pi, cfg: cfg, x: u})
		}
	}
	if err := runJobs(jobs, out); err != nil {
		return nil, err
	}
	return out, nil
}

// RuleSweep is the E4 ablation: admission probability against offered
// utilization, one series per allocation rule, at the base configuration's β.
func RuleSweep(base Config, rules []core.Rule, utils []float64) ([]Series, error) {
	out := make([]Series, len(rules))
	var jobs []job
	for si, rule := range rules {
		out[si] = Series{Label: rule.String(), Points: make([]Point, len(utils))}
		for pi, u := range utils {
			cfg := base
			cfg.Utilization = u
			cfg.CAC.Rule = rule
			cfg.Seed = pointSeed(base.Seed, si, pi)
			jobs = append(jobs, job{series: si, point: pi, cfg: cfg, x: u})
		}
	}
	if err := runJobs(jobs, out); err != nil {
		return nil, err
	}
	return out, nil
}
