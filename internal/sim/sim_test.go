package sim

import (
	"testing"

	"fafnet/internal/core"
	"fafnet/internal/units"
)

// fastCfg returns a configuration small enough for unit tests.
func fastCfg(u float64, seed int64) Config {
	return Config{
		Utilization: u,
		Requests:    60,
		Warmup:      10,
		Seed:        seed,
		CAC: core.Options{
			SearchIters: 10,
		},
	}
}

func TestRunBasics(t *testing.T) {
	res, err := Run(fastCfg(0.3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.AP.Trials() != 60 {
		t.Errorf("counted %d requests, want 60", res.AP.Trials())
	}
	ap := res.AP.Value()
	if ap < 0 || ap > 1 {
		t.Fatalf("AP = %v", ap)
	}
	if res.Duration <= 0 {
		t.Errorf("Duration = %v", res.Duration)
	}
	if res.MeanActive < 0 {
		t.Errorf("MeanActive = %v", res.MeanActive)
	}
	if res.AchievedUtilization < 0 || res.AchievedUtilization > 1 {
		t.Errorf("AchievedUtilization = %v", res.AchievedUtilization)
	}
	// Light load must admit most requests.
	if ap < 0.5 {
		t.Errorf("AP at U=0.3 = %v, suspiciously low", ap)
	}
	// Rejection counts must reconcile with AP.
	rejected := 0
	for _, n := range res.Rejections {
		rejected += n
	}
	if res.AP.Successes()+rejected != res.AP.Trials() {
		t.Errorf("admitted %d + rejected %d != %d trials", res.AP.Successes(), rejected, res.AP.Trials())
	}
}

func TestRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full admission runs in -short mode")
	}
	a, err := Run(fastCfg(0.5, 42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fastCfg(0.5, 42))
	if err != nil {
		t.Fatal(err)
	}
	if a.AP.Value() != b.AP.Value() || a.Duration != b.Duration {
		t.Errorf("same seed diverged: AP %v vs %v, duration %v vs %v",
			a.AP.Value(), b.AP.Value(), a.Duration, b.Duration)
	}
	c, err := Run(fastCfg(0.5, 43))
	if err != nil {
		t.Fatal(err)
	}
	if a.AP.Value() == c.AP.Value() && a.Duration == c.Duration {
		t.Error("different seeds produced identical runs")
	}
}

func TestRunValidation(t *testing.T) {
	cfg := fastCfg(0, 1)
	if _, err := Run(cfg); err == nil {
		t.Error("zero utilization should be rejected")
	}
	bad := fastCfg(0.5, 1)
	bad.Workload = DefaultWorkload()
	bad.Workload.MeanLifetime = -1
	if _, err := Run(bad); err == nil {
		t.Error("negative lifetime should be rejected")
	}
	bad2 := fastCfg(0.5, 1)
	bad2.Workload = DefaultWorkload()
	bad2.Workload.DeadlineMax = bad2.Workload.DeadlineMin / 2
	if _, err := Run(bad2); err == nil {
		t.Error("inverted deadline range should be rejected")
	}
}

func TestArrivalRateFormula(t *testing.T) {
	cfg := fastCfg(0.9, 1).withDefaults()
	// Reference capacity defaults to the ring-limited per-link share with
	// allocation headroom: 3 · 100e6·(1 − 0.25/4) · 0.4 / 3 = 37.5 Mb/s.
	wantCap := 100e6 * (1 - 0.25/4.0) * 0.4
	if !units.WithinRel(cfg.CapacityBps, wantCap, 1e-9) {
		t.Fatalf("CapacityBps = %v, want %v", cfg.CapacityBps, wantCap)
	}
	// λ = U·LinkShare·µ·C/ρ.
	want := 0.9 * 3 * (1.0 / 60) * wantCap / 5e6
	if got := cfg.ArrivalRate(); !units.WithinRel(got, want, 1e-9) {
		t.Errorf("ArrivalRate = %v, want %v", got, want)
	}
	// An explicit capacity overrides the default (the paper's raw link rate).
	cfg.CapacityBps = 155e6
	if got := cfg.ArrivalRate(); !units.WithinRel(got, 0.9*3*(1.0/60)*155e6/5e6, 1e-9) {
		t.Errorf("explicit capacity ArrivalRate = %v", got)
	}
}

func TestHigherLoadLowersAP(t *testing.T) {
	if testing.Short() {
		t.Skip("load comparison runs in -short mode")
	}
	low, err := Run(fastCfg(0.2, 7))
	if err != nil {
		t.Fatal(err)
	}
	high, err := Run(fastCfg(1.0, 7))
	if err != nil {
		t.Fatal(err)
	}
	if high.AP.Value() > low.AP.Value() {
		t.Errorf("AP rose with load: U=0.2 → %v, U=1.0 → %v", low.AP.Value(), high.AP.Value())
	}
}

func TestBetaSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("β sweep in -short mode")
	}
	base := fastCfg(0, 3)
	base.Requests = 40
	base.Warmup = 5
	series, err := BetaSweep(base, []float64{0.3}, []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || len(series[0].Points) != 3 {
		t.Fatalf("series shape: %+v", series)
	}
	for _, p := range series[0].Points {
		if p.AP < 0 || p.AP > 1 {
			t.Errorf("AP(β=%v) = %v", p.X, p.AP)
		}
		if p.Result.AP.Trials() != 40 {
			t.Errorf("point β=%v counted %d trials", p.X, p.Result.AP.Trials())
		}
	}
	if series[0].Label != "U=0.3" {
		t.Errorf("label = %q", series[0].Label)
	}
}

func TestLoadSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("load sweep in -short mode")
	}
	base := fastCfg(0, 5)
	base.Requests = 40
	base.Warmup = 5
	series, err := LoadSweep(base, []float64{0.5}, []float64{0.2, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || len(series[0].Points) != 2 {
		t.Fatalf("series shape: %+v", series)
	}
	if series[0].Points[0].X != 0.2 || series[0].Points[1].X != 0.8 {
		t.Errorf("x coordinates: %+v", series[0].Points)
	}
}

func TestRuleSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("rule sweep in -short mode")
	}
	base := fastCfg(0, 9)
	base.Requests = 30
	base.Warmup = 5
	series, err := RuleSweep(base, []core.Rule{core.RuleProportional, core.RuleFixedSplit}, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series count = %d", len(series))
	}
	if series[0].Label != "proportional" || series[1].Label != "fixed-split" {
		t.Errorf("labels: %q, %q", series[0].Label, series[1].Label)
	}
}

func TestRunReplicated(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated runs in -short mode")
	}
	cfg := fastCfg(0.5, 77)
	cfg.Requests = 30
	cfg.Warmup = 5
	agg, err := RunReplicated(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if agg.AP.N() != 3 || len(agg.Runs) != 3 {
		t.Fatalf("replications = %d/%d, want 3", agg.AP.N(), len(agg.Runs))
	}
	if agg.AP.Mean() < 0 || agg.AP.Mean() > 1 {
		t.Errorf("mean AP = %v", agg.AP.Mean())
	}
	// Replications differ (different seeds) but aggregate deterministically.
	agg2, err := RunReplicated(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if agg.AP.Mean() != agg2.AP.Mean() {
		t.Error("replicated aggregate not deterministic")
	}
	if _, err := RunReplicated(cfg, 0); err == nil {
		t.Error("zero replications should be rejected")
	}
	total := 0
	for _, n := range agg.Rejections {
		total += n
	}
	wantRejected := 0
	for _, r := range agg.Runs {
		wantRejected += r.AP.Trials() - r.AP.Successes()
	}
	if total != wantRejected {
		t.Errorf("aggregated rejections %d != %d", total, wantRejected)
	}
}

func TestDestBiasSkewsMatrix(t *testing.T) {
	// With full bias, every remote request from rings 1..2 targets ring 0,
	// so ring 0's allocations should dominate.
	cfg := fastCfg(0.6, 13)
	cfg.Requests = 40
	cfg.Warmup = 5
	cfg.DestBias = 1.0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AP.Trials() != 40 {
		t.Fatalf("trials = %d", res.AP.Trials())
	}
	// A biased matrix must still complete and keep AP within range; the
	// structural check (destinations on ring 0) is embedded in the arrival
	// handler, so reaching here without panics exercises it.
	if v := res.AP.Value(); v < 0 || v > 1 {
		t.Errorf("AP = %v", v)
	}
}

func TestSourceParams(t *testing.T) {
	s := DefaultWorkload().Source
	if got := s.Rho(); !units.AlmostEq(got, 5e6) {
		t.Errorf("Rho = %v, want 5e6", got)
	}
	if _, err := s.Descriptor(); err != nil {
		t.Errorf("Descriptor: %v", err)
	}
}
