package sim

import (
	"reflect"
	"runtime"
	"testing"
)

// TestRunSameSeedByteIdentical strengthens the same-seed check to the whole
// Result: every statistic, counter and rejection tally must reproduce
// exactly, not just the headline AP.
func TestRunSameSeedByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two full admission runs in -short mode")
	}
	a, err := Run(fastCfg(0.6, 17))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fastCfg(0.6, 17))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different results:\n%+v\nvs\n%+v", a, b)
	}
}

// TestRunReplicatedWorkerInvariance: the parallel replication runner derives
// seeds from the replication index and aggregates in seed order, so the
// aggregate must be identical for any worker count.
func TestRunReplicatedWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated runs in -short mode")
	}
	cfg := fastCfg(0.6, 99)
	cfg.Requests = 30
	cfg.Warmup = 5

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var results []Replicated
	for _, workers := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(workers)
		agg, err := RunReplicated(cfg, 4)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(agg.Runs) != 4 {
			t.Fatalf("workers=%d: %d runs, want 4", workers, len(agg.Runs))
		}
		results = append(results, agg)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("replicated aggregate depends on worker count:\n%+v\nvs\n%+v", results[0], results[i])
		}
	}
}
