package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"fafnet/internal/obs"
	"fafnet/internal/stats"
)

// Replication metric handles. Wall time is measured through obs.Span — the
// sanctioned clock access point for simulation packages (see the randsrc
// analyzer) — and flows only into metrics, never into results.
var (
	mReplications = obs.Default.Counter("fafnet_sim_replications_total",
		"Simulation replications completed (including failed ones).")
	mReplicationSeconds = obs.Default.Histogram("fafnet_sim_replication_seconds",
		"Wall time of one simulation replication.", obs.LatencyBuckets())
)

// Replicated aggregates independent replications of one configuration: the
// between-run mean and confidence interval of the admission probability,
// which is the statistically sound way to report a stochastic simulation
// (within-run Wald intervals understate the variance of correlated
// admissions).
type Replicated struct {
	// AP aggregates the per-replication admission probabilities.
	AP stats.Sample
	// MeanActive aggregates the per-replication time-averaged active
	// connection counts.
	MeanActive stats.Sample
	// Rejections sums rejection reasons over all replications.
	Rejections map[string]int
	// Runs holds each replication's full result, in seed order.
	Runs []Result
}

// RunReplicated executes n independent replications of cfg, deriving each
// replication's seed deterministically from cfg.Seed, and aggregates them.
//
// Replications run in parallel (each owns an isolated network, controller and
// RNG, mirroring the sweep runner), but seeds depend only on the replication
// index and aggregation happens sequentially in seed order after all workers
// finish — so the returned Replicated is identical for any worker count,
// including the serial case.
func RunReplicated(cfg Config, n int) (Replicated, error) {
	if n < 1 {
		return Replicated{}, fmt.Errorf("sim: need at least one replication, got %d", n)
	}
	results := make([]Result, n)
	errs := make([]error, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				run := cfg
				run.Seed = cfg.Seed + int64(i)*104729
				_, sp := obs.Start(context.Background(), "sim.replication")
				results[i], errs[i] = Run(run)
				mReplicationSeconds.Observe(sp.Seconds())
				sp.End()
				mReplications.Inc()
			}
		}()
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()

	agg := Replicated{Rejections: make(map[string]int)}
	for i, res := range results {
		if errs[i] != nil {
			// Lowest failing index, matching what a serial loop would report.
			return Replicated{}, fmt.Errorf("sim: replication %d: %w", i, errs[i])
		}
		agg.AP.Add(res.AP.Value())
		agg.MeanActive.Add(res.MeanActive)
		for reason, count := range res.Rejections {
			agg.Rejections[reason] += count
		}
		agg.Runs = append(agg.Runs, res)
	}
	return agg, nil
}
