package sim

import (
	"fmt"

	"fafnet/internal/stats"
)

// Replicated aggregates independent replications of one configuration: the
// between-run mean and confidence interval of the admission probability,
// which is the statistically sound way to report a stochastic simulation
// (within-run Wald intervals understate the variance of correlated
// admissions).
type Replicated struct {
	// AP aggregates the per-replication admission probabilities.
	AP stats.Sample
	// MeanActive aggregates the per-replication time-averaged active
	// connection counts.
	MeanActive stats.Sample
	// Rejections sums rejection reasons over all replications.
	Rejections map[string]int
	// Runs holds each replication's full result, in seed order.
	Runs []Result
}

// RunReplicated executes n independent replications of cfg, deriving each
// replication's seed deterministically from cfg.Seed, and aggregates them.
func RunReplicated(cfg Config, n int) (Replicated, error) {
	if n < 1 {
		return Replicated{}, fmt.Errorf("sim: need at least one replication, got %d", n)
	}
	agg := Replicated{Rejections: make(map[string]int)}
	for i := 0; i < n; i++ {
		run := cfg
		run.Seed = cfg.Seed + int64(i)*104729
		res, err := Run(run)
		if err != nil {
			return Replicated{}, fmt.Errorf("sim: replication %d: %w", i, err)
		}
		agg.AP.Add(res.AP.Value())
		agg.MeanActive.Add(res.MeanActive)
		for reason, count := range res.Rejections {
			agg.Rejections[reason] += count
		}
		agg.Runs = append(agg.Runs, res)
	}
	return agg, nil
}
