package sim

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"fafnet/internal/core"
	"fafnet/internal/des"
	"fafnet/internal/scenario"
	"fafnet/internal/stats"
	"fafnet/internal/topo"
	"fafnet/internal/units"
	"fafnet/internal/workload"
)

// MultiConfig parameterizes one multi-class run. Exactly one of Spec or
// Replay feeds the arrival stream: Spec generates it from the workload's
// random processes, Replay re-issues a previously recorded trace with no
// randomness at all.
type MultiConfig struct {
	// Topology describes the network (default: the paper's 3×4 network).
	Topology topo.Config
	// CAC configures the admission controller.
	CAC core.Options
	// Spec is the multi-class workload to generate from.
	Spec workload.Spec
	// Replay, when non-empty, replaces generation: the events are issued
	// exactly as recorded (same ids, endpoints, deadlines, lifetimes), which
	// reproduces the recording run bit-identically.
	Replay []workload.Event
	// Requests is the number of admission requests counted toward the
	// statistics in generating mode (default 200). Replay runs always issue
	// the whole trace.
	Requests int
	// Warmup is the number of initial requests excluded from statistics
	// (default 20). A replay must use the same warmup as its recording run
	// to reproduce the same statistics.
	Warmup int
	// Seed drives all randomness in generating mode: the per-class workload
	// streams and the endpoint selection. Ignored on replay.
	Seed int64
	// Record captures the issued requests as a trace in the result.
	Record bool
}

func (c MultiConfig) withDefaults() MultiConfig {
	if c.Topology.NumRings == 0 {
		c.Topology = topo.Default()
	}
	if c.Requests <= 0 {
		c.Requests = 200
	}
	if c.Warmup < 0 {
		c.Warmup = 0
	} else if c.Warmup == 0 {
		c.Warmup = 20
	}
	return c
}

// ClassResult carries one class's admission statistics.
type ClassResult struct {
	// Class is the workload class name.
	Class string
	// AP is the class admission probability over counted requests.
	AP stats.Ratio
	// Slack samples deadline − worst-case delay at admission for admitted
	// requests.
	Slack stats.Sample
	// Rejections counts rejection reasons over counted requests.
	Rejections map[string]int
}

// MultiResult summarizes one multi-class run.
type MultiResult struct {
	// Total is the admission probability over all counted requests.
	Total stats.Ratio
	// PerClass holds one entry per class that issued at least one counted
	// request, sorted by class name.
	PerClass []ClassResult
	// Jain is the Jain fairness index over the per-class admission
	// probabilities (1 = every class admitted at the same rate).
	Jain float64
	// Fingerprint hashes the full decision stream (id, arrival time,
	// verdict, allocations). Two runs are identical exactly when their
	// fingerprints match — this is what the record/replay gate asserts.
	Fingerprint uint64
	// Trace holds the issued requests when Record is set (warmup included),
	// ready for workload.WriteTrace.
	Trace []workload.Event
	// Admitted is the admitted-connection snapshot at the end of the run
	// (sorted by id) — the input the calibration harness hands to the
	// packet-level simulator.
	Admitted []*core.Connection
	// MeanActive is the time-averaged number of active connections.
	MeanActive float64
	// SkippedNoIdleHost counts arrivals dropped because every host already
	// originated a connection (generating mode only; they are never
	// recorded, so replays do not see them).
	SkippedNoIdleHost int
	// Duration is the simulated time span.
	Duration float64
}

// classAccum is the per-class accumulator keyed by class name during the
// run; it becomes a ClassResult afterwards.
type classAccum struct {
	ap         stats.Ratio
	slack      stats.Sample
	rejections map[string]int
}

// RunMulti executes one multi-class admission simulation, either generating
// arrivals from cfg.Spec or replaying cfg.Replay.
func RunMulti(cfg MultiConfig) (MultiResult, error) {
	cfg = cfg.withDefaults()
	replaying := len(cfg.Replay) > 0

	net, err := topo.NewNetwork(cfg.Topology)
	if err != nil {
		return MultiResult{}, err
	}
	if cfg.Topology.NumRings < 2 {
		return MultiResult{}, errors.New("sim: multi-class runs need at least two rings (routes cross the backbone)")
	}
	ctl, err := core.NewController(net, cfg.CAC)
	if err != nil {
		return MultiResult{}, err
	}

	var gen *workload.Generator
	if !replaying {
		gen, err = workload.NewGenerator(cfg.Spec, cfg.Seed)
		if err != nil {
			return MultiResult{}, err
		}
	}

	rng := des.NewRNG(cfg.Seed) // endpoint selection; generator classes use strided seeds
	simulator := des.NewSimulator()
	hosts := net.Hosts()

	res := MultiResult{}
	perClass := make(map[string]*classAccum)
	cls := func(name string) *classAccum {
		a := perClass[name]
		if a == nil {
			a = &classAccum{rejections: make(map[string]int)}
			perClass[name] = a
		}
		return a
	}
	fp := fnv.New64a()

	total := 0
	counted := 0
	seq := 0
	activeSince := 0.0
	activeIntegral := 0.0
	active := 0
	noteActiveChange := func(now float64, delta int) {
		activeIntegral += float64(active) * (now - activeSince)
		activeSince = now
		active += delta
	}

	idle := make([]topo.HostID, 0, len(hosts))
	remote := make([]topo.HostID, 0, len(hosts))
	var fpBuf [8]byte

	fpWrite := func(bits uint64) {
		for i := range fpBuf {
			fpBuf[i] = byte(bits >> (8 * (7 - i)))
		}
		fp.Write(fpBuf[:])
	}

	// issue runs one admission request and its bookkeeping; shared verbatim
	// by the generating and replay paths so their decision streams are
	// computed by the same code.
	issue := func(ev workload.Event) error {
		now := simulator.Now()
		spec, err := ev.Req.Spec()
		if err != nil {
			return fmt.Errorf("sim: request %s: %w", ev.Req.ID, err)
		}
		dec, err := ctl.RequestAdmission(spec)
		if err != nil {
			return fmt.Errorf("sim: admission request %s: %w", ev.Req.ID, err)
		}

		fp.Write([]byte(ev.Req.ID))
		fpWrite(math.Float64bits(ev.At))
		if dec.Admitted {
			fpWrite(1)
		} else {
			fpWrite(0)
		}
		fpWrite(math.Float64bits(dec.HS))
		fpWrite(math.Float64bits(dec.HR))

		total++
		if total > cfg.Warmup {
			counted++
			a := cls(ev.Class)
			a.ap.Record(dec.Admitted)
			res.Total.Record(dec.Admitted)
			workload.RecordRequest(ev.Class)
			if dec.Admitted {
				a.slack.Add(spec.Deadline - dec.Delays[spec.ID])
				workload.RecordAdmission(ev.Class)
			} else {
				a.rejections[dec.Reason]++
			}
		}
		if dec.Admitted {
			noteActiveChange(now, +1)
			id := spec.ID
			if _, err := simulator.Schedule(ev.At+ev.LifetimeSeconds, func() {
				noteActiveChange(simulator.Now(), -1)
				if !ctl.Release(id) {
					// Exactly one departure is scheduled per admission, so a
					// miss here is a corrupted simulation, not a data point.
					panic("sim: departure event for unknown connection " + id)
				}
			}); err != nil {
				return fmt.Errorf("sim: scheduling departure: %w", err)
			}
		}
		if cfg.Record {
			res.Trace = append(res.Trace, ev)
		}
		return nil
	}

	var loopErr error
	fail := func(err error) {
		loopErr = err
		simulator.Halt()
	}

	if replaying {
		events := cfg.Replay
		var scheduleNext func(i int)
		scheduleNext = func(i int) {
			if i >= len(events) {
				return
			}
			if _, err := simulator.Schedule(events[i].At, func() {
				if loopErr != nil {
					return
				}
				if err := issue(events[i]); err != nil {
					fail(err)
					return
				}
				if i+1 >= len(events) {
					// The recording run halted inside its final arrival's
					// handler; halting here leaves the same departures
					// pending, so the admitted snapshot matches too.
					simulator.Halt()
					return
				}
				scheduleNext(i + 1)
			}); err != nil {
				fail(err)
			}
		}
		scheduleNext(0)
	} else {
		var scheduleNext func()
		scheduleNext = func() {
			arrival := gen.Next()
			if _, err := simulator.Schedule(arrival.At, func() {
				if loopErr != nil {
					return
				}
				// Source: uniform among hosts not currently originating a
				// connection. Arrivals finding none are dropped, not queued,
				// and never recorded — a trace holds issued requests only.
				idle = idle[:0]
				for _, h := range hosts {
					if !ctl.SourceBusy(h) {
						idle = append(idle, h)
					}
				}
				if len(idle) == 0 {
					res.SkippedNoIdleHost++
					scheduleNext()
					return
				}
				src := idle[rng.Intn(len(idle))]
				// Destination: uniform among hosts on other rings.
				remote = remote[:0]
				for _, h := range hosts {
					if h.Ring != src.Ring {
						remote = append(remote, h)
					}
				}
				dst := remote[rng.Intn(len(remote))]

				seq++
				ev := workload.Event{
					At:              arrival.At,
					Class:           arrival.Class,
					LifetimeSeconds: arrival.Lifetime,
					Req: scenario.Request{
						ID:             fmt.Sprintf("w%d", seq),
						SrcRing:        src.Ring,
						SrcHost:        src.Index,
						DstRing:        dst.Ring,
						DstHost:        dst.Index,
						DeadlineMillis: arrival.Deadline / units.Millisecond,
						Source:         arrival.Source,
					},
				}
				if err := issue(ev); err != nil {
					fail(err)
					return
				}
				if counted >= cfg.Requests {
					simulator.Halt()
					return
				}
				scheduleNext()
			}); err != nil {
				fail(err)
			}
		}
		scheduleNext()
	}

	simulator.Run(math.Inf(1))
	if loopErr != nil {
		return MultiResult{}, loopErr
	}
	if !replaying && counted < cfg.Requests {
		return MultiResult{}, errors.New("sim: simulation ended before reaching the request budget")
	}
	if total == 0 {
		return MultiResult{}, errors.New("sim: replay issued no requests")
	}

	res.Duration = simulator.Now()
	noteActiveChange(res.Duration, 0)
	if res.Duration > 0 {
		res.MeanActive = activeIntegral / res.Duration
	}
	res.Fingerprint = fp.Sum64()
	res.Admitted = ctl.Connections()

	names := make([]string, 0, len(perClass))
	for name := range perClass {
		names = append(names, name)
	}
	sort.Strings(names)
	aps := make([]float64, 0, len(names))
	for _, name := range names {
		a := perClass[name]
		res.PerClass = append(res.PerClass, ClassResult{
			Class:      name,
			AP:         a.ap,
			Slack:      a.slack,
			Rejections: a.rejections,
		})
		workload.SetClassAP(name, a.ap.Value())
		aps = append(aps, a.ap.Value())
	}
	res.Jain = stats.JainIndex(aps)
	workload.SetClassAP(workload.Overall, res.Total.Value())
	workload.SetJainFairness(res.Jain)
	return res, nil
}
