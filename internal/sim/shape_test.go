package sim

import (
	"testing"

	"fafnet/internal/core"
)

// TestFigure7ShapeAtHeavyLoad verifies the paper's headline claim (Figure 7,
// U = 0.9): the admission probability has an interior maximum in β — both
// extremes are clearly worse than an intermediate setting. This is the
// slowest test in the suite; skip it under -short.
func TestFigure7ShapeAtHeavyLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy-load shape test in -short mode")
	}
	ap := func(beta float64) float64 {
		sum := 0.0
		for _, seed := range []int64{11, 23} {
			cfg := Config{
				Utilization: 0.9,
				Requests:    100,
				Warmup:      15,
				Seed:        seed,
				CAC:         core.Options{Beta: beta, BetaSet: true, SearchIters: 10},
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sum += res.AP.Value()
		}
		return sum / 2
	}
	apZero := ap(0)
	apMid := ap(0.25)
	apOne := ap(1)
	t.Logf("U=0.9: AP(0)=%.3f AP(0.25)=%.3f AP(1)=%.3f", apZero, apMid, apOne)
	if apMid <= apZero {
		t.Errorf("interior beta (%.3f) does not beat beta=0 (%.3f) at heavy load", apMid, apZero)
	}
	if apMid <= apOne {
		t.Errorf("interior beta (%.3f) does not beat beta=1 (%.3f) at heavy load", apMid, apOne)
	}
}

// TestRejectionsAreDiagnosed verifies that a heavy-load run attributes its
// rejections to the two mechanisms of Section 5.3: bandwidth exhaustion and
// deadline infeasibility.
func TestRejectionsAreDiagnosed(t *testing.T) {
	res, err := Run(Config{
		Utilization: 1.0,
		Requests:    80,
		Warmup:      10,
		Seed:        5,
		CAC:         core.Options{Beta: 1, BetaSet: true, SearchIters: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AP.Value() > 0.9 {
		t.Skip("load did not bind; nothing to diagnose")
	}
	total := 0
	for reason, n := range res.Rejections {
		if n < 0 {
			t.Errorf("negative count for %q", reason)
		}
		switch reason {
		case core.ReasonInfeasible, core.ReasonNoBandwidth, core.ReasonHostBusy:
		default:
			t.Errorf("unexpected rejection reason %q", reason)
		}
		total += n
	}
	if total != res.AP.Trials()-res.AP.Successes() {
		t.Errorf("rejection counts %d do not match failures %d", total, res.AP.Trials()-res.AP.Successes())
	}
	if res.Probes.N() == 0 || res.Probes.Mean() < 1 {
		t.Errorf("probe statistics missing: %v", res.Probes.String())
	}
}
