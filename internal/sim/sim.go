// Package sim reproduces the performance evaluation of Section 6: a
// stochastic admission-level simulation in which connection requests arrive
// as a Poisson process, sources are chosen among currently inactive hosts,
// routes always cross the ATM backbone, admitted connections hold their
// resources for exponentially distributed lifetimes, and the metric is the
// admission probability (AP).
package sim

import (
	"errors"
	"fmt"
	"math"

	"fafnet/internal/core"
	"fafnet/internal/des"
	"fafnet/internal/stats"
	"fafnet/internal/topo"
	"fafnet/internal/traffic"
	"fafnet/internal/units"
)

// SourceParams is the dual-periodic source model of Eq. 37.
type SourceParams struct {
	C1, P1  float64 // long-period contract: C1 bits per P1 seconds
	C2, P2  float64 // short-period contract: C2 bits per P2 seconds
	PeakBps float64 // instantaneous rate while transmitting
}

// Descriptor builds the traffic descriptor for these parameters.
func (s SourceParams) Descriptor() (traffic.Descriptor, error) {
	return traffic.NewDualPeriodic(s.C1, s.P1, s.C2, s.P2, s.PeakBps)
}

// Rho returns the long-term rate ρ = C1/P1 (Eq. 38).
func (s SourceParams) Rho() float64 { return s.C1 / s.P1 }

// Workload describes the stochastic request process.
type Workload struct {
	// Source parameterizes every connection's traffic.
	Source SourceParams
	// MeanLifetime is 1/µ: the mean holding time of an admitted connection.
	MeanLifetime float64
	// DeadlineMin and DeadlineMax bound the uniformly drawn deadlines.
	DeadlineMin, DeadlineMax float64
	// HostBufferBits and IDBufferBits are per-connection buffer limits
	// (0 = unlimited).
	HostBufferBits, IDBufferBits float64
}

// DefaultWorkload returns the constants recorded in DESIGN.md. The long-term
// rate ρ = 5 Mb/s is sized so that a generous (β = 1) allocation for every
// active connection exhausts the rings' synchronous capacity right around
// the top of the offered-load sweep: at light loads every policy has room,
// at heavy loads the allocation policy decides who fits — the regime
// Figures 7–8 explore.
func DefaultWorkload() Workload {
	return Workload{
		Source:       SourceParams{C1: 50e3, P1: 10 * units.Millisecond, C2: 10e3, P2: units.Millisecond, PeakBps: 100e6},
		MeanLifetime: 60,
		DeadlineMin:  30 * units.Millisecond,
		DeadlineMax:  70 * units.Millisecond,
	}
}

// Validate reports whether the workload is usable.
func (w Workload) Validate() error {
	if _, err := w.Source.Descriptor(); err != nil {
		return err
	}
	if w.MeanLifetime <= 0 {
		return fmt.Errorf("sim: mean lifetime %v must be positive", w.MeanLifetime)
	}
	if w.DeadlineMin <= 0 || w.DeadlineMax < w.DeadlineMin {
		return fmt.Errorf("sim: deadline range [%v, %v] invalid", w.DeadlineMin, w.DeadlineMax)
	}
	return nil
}

// Config parameterizes one simulation run.
type Config struct {
	// Topology describes the network (default: the paper's 3×4 network).
	Topology topo.Config
	// Workload describes sources, lifetimes and deadlines.
	Workload Workload
	// CAC configures the admission controller (β, rule, search options).
	CAC core.Options
	// Utilization is U: the offered average load on one backbone link
	// relative to link capacity. The arrival rate follows the paper's
	// formula U = λ/(LinkShare·µ) · ρ / C_link.
	Utilization float64
	// LinkShare is the divisor in the λ formula (the paper uses 3, the
	// number of backbone links the load spreads over). 0 selects the
	// number of rings.
	LinkShare float64
	// CapacityBps is the reference capacity C in the offered-load formula
	// U = λ/(LinkShare·µ) · ρ/C. The paper uses the raw 155 Mb/s link rate,
	// but in an FDDI-edged network the carriable load saturates far below
	// that: the bottleneck is the rings' synchronous capacity, which every
	// connection consumes at both its source and its destination. 0 selects
	// the ring-limited per-link share,
	// NumRings · BW·(1 − Δ/TTRT) / 2 / LinkShare,
	// so that U sweeps the range where admission decisions actually bind
	// (recorded as a calibration substitution in DESIGN.md).
	CapacityBps float64
	// Requests is the number of admission requests counted toward the
	// statistics (default 400).
	Requests int
	// Warmup is the number of initial requests excluded (default 50).
	Warmup int
	// Seed drives all randomness; runs with equal seeds are identical.
	Seed int64
	// DestBias skews the traffic matrix: with this probability a request's
	// destination is drawn from ring 0 (the "hot" ring) rather than
	// uniformly from all remote rings. 0 keeps the paper's uniform matrix.
	// Asymmetric load is where the proportional allocation rule's balancing
	// argument (Section 5.3, Rule 2) is supposed to pay off.
	DestBias float64
}

func (c Config) withDefaults() Config {
	if c.Topology.NumRings == 0 {
		c.Topology = topo.Default()
	}
	if c.Workload.MeanLifetime == 0 && c.Workload.Source == (SourceParams{}) {
		c.Workload = DefaultWorkload()
	}
	if c.LinkShare <= 0 {
		c.LinkShare = float64(c.Topology.NumRings)
	}
	if c.CapacityBps <= 0 {
		// Ring-limited reference: each connection consumes synchronous
		// bandwidth on two rings (factor 1/2), and allocations sit above
		// the bare stability floor (headroom factor 0.8).
		ring := c.Topology.Ring
		ringEffective := ring.BandwidthBps * (1 - ring.Overhead/ring.TTRT)
		c.CapacityBps = float64(c.Topology.NumRings) * ringEffective * 0.4 / c.LinkShare
	}
	if c.Requests <= 0 {
		c.Requests = 400
	}
	if c.Warmup < 0 {
		c.Warmup = 0
	} else if c.Warmup == 0 {
		c.Warmup = 50
	}
	return c
}

// ArrivalRate returns λ derived from the offered utilization:
// λ = U · LinkShare · µ · C / ρ with C the reference capacity.
func (c Config) ArrivalRate() float64 {
	mu := 1 / c.Workload.MeanLifetime
	return c.Utilization * c.LinkShare * mu * c.CapacityBps / c.Workload.Source.Rho()
}

// Result summarizes one run.
type Result struct {
	// AP is the admission probability: admitted / counted requests.
	AP stats.Ratio
	// Rejections counts rejection reasons over counted requests.
	Rejections map[string]int
	// Probes samples the number of feasibility evaluations per request.
	Probes stats.Sample
	// ActiveAtArrival samples the number of active connections seen by each
	// counted request.
	ActiveAtArrival stats.Sample
	// SlackAtAdmission samples, for each admitted request, the gap between
	// its deadline and its worst-case delay at admission time — the margin
	// the β policy leaves against future disturbance.
	SlackAtAdmission stats.Sample
	// MeanActive is the time-averaged number of active connections.
	MeanActive float64
	// AchievedUtilization is the time-averaged per-link load actually
	// carried, relative to link capacity.
	AchievedUtilization float64
	// SkippedNoIdleHost counts Poisson arrivals dropped because every host
	// already originated a connection (they are not admission requests and
	// do not enter AP, matching the paper's source-selection rule).
	SkippedNoIdleHost int
	// Duration is the simulated time span.
	Duration float64
}

// Run executes one simulation and returns its statistics.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Workload.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Utilization <= 0 {
		return Result{}, fmt.Errorf("sim: utilization %v must be positive", cfg.Utilization)
	}
	net, err := topo.NewNetwork(cfg.Topology)
	if err != nil {
		return Result{}, err
	}
	ctl, err := core.NewController(net, cfg.CAC)
	if err != nil {
		return Result{}, err
	}
	source, err := cfg.Workload.Source.Descriptor()
	if err != nil {
		return Result{}, err
	}

	rng := des.NewRNG(cfg.Seed)
	simulator := des.NewSimulator()
	arrivals, err := des.NewPoissonProcess(rng, cfg.ArrivalRate())
	if err != nil {
		return Result{}, err
	}

	res := Result{Rejections: make(map[string]int)}
	hosts := net.Hosts()
	counted := 0
	total := 0
	seq := 0
	activeSince := 0.0
	activeIntegral := 0.0
	active := 0

	noteActiveChange := func(now float64, delta int) {
		activeIntegral += float64(active) * (now - activeSince)
		activeSince = now
		active += delta
	}

	// idle and remote are scratch buffers for the per-arrival host selection
	// scans, hoisted out of the closure so the simulation loop reuses their
	// backing arrays instead of allocating two slices per Poisson arrival.
	idle := make([]topo.HostID, 0, len(hosts))
	remote := make([]topo.HostID, 0, len(hosts))

	handleArrival := func() error {
		now := simulator.Now()
		// Source: uniform among hosts not currently originating a
		// connection.
		idle = idle[:0]
		for _, h := range hosts {
			if !ctl.SourceBusy(h) {
				idle = append(idle, h)
			}
		}
		if len(idle) == 0 {
			res.SkippedNoIdleHost++
			return nil
		}
		src := idle[rng.Intn(len(idle))]
		// Destination: uniform among hosts on other rings (the route always
		// crosses the backbone), optionally biased toward the hot ring 0.
		hotOnly := cfg.DestBias > 0 && src.Ring != 0 && rng.Float64() < cfg.DestBias
		remote = remote[:0]
		for _, h := range hosts {
			if h.Ring == src.Ring {
				continue
			}
			if hotOnly && h.Ring != 0 {
				continue
			}
			remote = append(remote, h)
		}
		dst := remote[rng.Intn(len(remote))]

		seq++
		spec := core.ConnSpec{
			ID:             fmt.Sprintf("m%d", seq),
			Src:            src,
			Dst:            dst,
			Source:         source,
			Deadline:       rng.Uniform(cfg.Workload.DeadlineMin, cfg.Workload.DeadlineMax),
			HostBufferBits: cfg.Workload.HostBufferBits,
			IDBufferBits:   cfg.Workload.IDBufferBits,
		}
		activeNow := ctl.Active()
		dec, err := ctl.RequestAdmission(spec)
		if err != nil {
			return fmt.Errorf("sim: admission request %s: %w", spec.ID, err)
		}

		total++
		if total > cfg.Warmup {
			counted++
			res.AP.Record(dec.Admitted)
			res.Probes.Add(float64(dec.Probes))
			res.ActiveAtArrival.Add(float64(activeNow))
			if dec.Admitted {
				res.SlackAtAdmission.Add(spec.Deadline - dec.Delays[spec.ID])
			} else {
				res.Rejections[dec.Reason]++
			}
		}
		if dec.Admitted {
			noteActiveChange(now, +1)
			id := spec.ID
			if _, err := simulator.After(rng.Exp(cfg.Workload.MeanLifetime), func() {
				noteActiveChange(simulator.Now(), -1)
				if !ctl.Release(id) {
					// Exactly one departure is scheduled per admission, so a
					// miss here is a corrupted simulation, not a data point.
					panic("sim: departure event for unknown connection " + id)
				}
			}); err != nil {
				return fmt.Errorf("sim: scheduling departure: %w", err)
			}
		}
		if counted >= cfg.Requests {
			simulator.Halt()
		}
		return nil
	}

	var loopErr error
	var scheduleNext func()
	scheduleNext = func() {
		if _, err := simulator.After(arrivals.Next(), func() {
			if loopErr != nil {
				return
			}
			if err := handleArrival(); err != nil {
				loopErr = err
				simulator.Halt()
				return
			}
			scheduleNext()
		}); err != nil {
			loopErr = err
			simulator.Halt()
		}
	}
	scheduleNext()
	simulator.Run(math.Inf(1))
	if loopErr != nil {
		return Result{}, loopErr
	}
	if counted < cfg.Requests {
		return Result{}, errors.New("sim: simulation ended before reaching the request budget")
	}

	res.Duration = simulator.Now()
	noteActiveChange(res.Duration, 0)
	if res.Duration > 0 {
		res.MeanActive = activeIntegral / res.Duration
		res.AchievedUtilization = res.MeanActive * cfg.Workload.Source.Rho() /
			(cfg.LinkShare * cfg.Topology.LinkBps)
	}
	return res, nil
}
