package sim

import (
	"testing"

	"fafnet/internal/workload"
)

// calibrateConfig returns the gate configuration: the full randomized sweep
// in normal mode, a slimmer one under -short so tier-1 stays fast. Both
// enforce the same invariants — zero analytic-bound violations and
// bit-identical trace replay.
func calibrateConfig(t *testing.T) CalibrateConfig {
	t.Helper()
	cfg := CalibrateConfig{
		Seed:           20260808,
		Scenarios:      100,
		Requests:       30,
		Warmup:         10,
		PacketDuration: 0.15,
	}
	if testing.Short() {
		cfg.Scenarios = 6
	}
	return cfg
}

// TestCalibrationGate is the standing correctness gate of ROADMAP item 3: a
// randomized multi-class sweep in which every packet-level measured delay
// must stay below its analytic Eq. 7 bound, and replaying each scenario's
// recorded trace must reproduce the decision stream bit-for-bit.
func TestCalibrationGate(t *testing.T) {
	cfg := calibrateConfig(t)
	res, err := Calibrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != cfg.Scenarios {
		t.Fatalf("ran %d scenarios, want %d", len(res.Scenarios), cfg.Scenarios)
	}
	for _, out := range res.Scenarios {
		if out.Violations > 0 {
			t.Errorf("scenario %d (seed %d): %d measured delays above the analytic bound",
				out.Index, out.Seed, out.Violations)
		}
		if !out.ReplayMatch {
			t.Errorf("scenario %d (seed %d): trace replay diverged from the recording",
				out.Index, out.Seed)
		}
		if out.WorstTightness > 1 {
			t.Errorf("scenario %d: worst tightness %v above 1 without a violation — accounting bug",
				out.Index, out.WorstTightness)
		}
	}
	if !res.Passed() {
		t.Fatalf("gate failed: %d violations, %d replay mismatches", res.Violations, res.ReplayMismatches)
	}

	// The sweep must actually have measured something, or the gate is
	// vacuously green.
	if res.Overall.Connections == 0 {
		t.Fatal("sweep measured no connections")
	}
	if res.Overall.WorstTightness <= 0 || res.Overall.WorstTightness > 1 {
		t.Errorf("overall worst tightness = %v, want in (0, 1]", res.Overall.WorstTightness)
	}
	if res.Overall.AP.Trials() == 0 {
		t.Error("no admission trials pooled")
	}
	// Bounds and measurements must correlate positively in aggregate: a
	// bound that does not track the measurement at all would still "pass"
	// on conservatism alone. Only meaningful over the full sweep — a
	// -short run's handful of scenarios is sampling noise.
	if !testing.Short() && res.Overall.Pearson <= 0 {
		t.Errorf("overall Pearson = %v, want positive", res.Overall.Pearson)
	}
	for _, c := range res.PerClass {
		if c.WorstTightness > 1 {
			t.Errorf("class %s worst tightness %v above 1", c.Class, c.WorstTightness)
		}
	}
}

// TestCalibrateDeterministic pins the sweep to its seed: two identical
// configurations must produce identical outcomes scenario by scenario.
func TestCalibrateDeterministic(t *testing.T) {
	cfg := calibrateConfig(t)
	cfg.Scenarios = 3
	cfg.SkipReplay = true
	a, err := Calibrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Calibrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Scenarios {
		if a.Scenarios[i] != b.Scenarios[i] {
			t.Errorf("scenario %d differs across identical sweeps:\n%+v\n%+v",
				i, a.Scenarios[i], b.Scenarios[i])
		}
	}
	if a.Overall != b.Overall {
		t.Errorf("overall summary differs:\n%+v\n%+v", a.Overall, b.Overall)
	}
}

// TestCalibrateProgress checks the per-scenario callback fires in order and
// the metric counters move.
func TestCalibrateProgress(t *testing.T) {
	cfg := calibrateConfig(t)
	cfg.Scenarios = 2
	cfg.SkipReplay = true
	var seen []int
	cfg.Progress = func(out ScenarioOutcome) { seen = append(seen, out.Index) }
	if _, err := Calibrate(cfg); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 1 {
		t.Errorf("progress callbacks = %v, want [0 1]", seen)
	}
	// Metric side effects: tightness gauges exist for the overall class.
	workload.SetClassTightness(workload.Overall, 0) // reachable without panic
}
