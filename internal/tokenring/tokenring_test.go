package tokenring

import (
	"errors"
	"testing"

	"fafnet/internal/fddi"
	"fafnet/internal/traffic"
	"fafnet/internal/units"
)

func TestRingConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*RingConfig)
		wantErr bool
	}{
		{"default valid", func(*RingConfig) {}, false},
		{"zero bandwidth", func(c *RingConfig) { c.BandwidthBps = 0 }, true},
		{"zero rotation", func(c *RingConfig) { c.TargetRotation = 0 }, true},
		{"negative walk", func(c *RingConfig) { c.WalkTime = -1 }, true},
		{"walk swallows rotation", func(c *RingConfig) { c.WalkTime = c.TargetRotation }, true},
		{"negative hop latency", func(c *RingConfig) { c.HopLatency = -1 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultRingConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestRingAllocation(t *testing.T) {
	r, err := NewRing(DefaultRingConfig())
	if err != nil {
		t.Fatal(err)
	}
	usable := 8e-3 - 0.5e-3
	if got := r.Available(); !units.AlmostEq(got, usable) {
		t.Fatalf("Available = %v, want %v", got, usable)
	}
	if err := r.Allocate("a", 3e-3); err != nil {
		t.Fatal(err)
	}
	if err := r.Allocate("b", 5e-3); err == nil {
		t.Error("over-allocation should fail")
	}
	if got := r.Allocated(); !units.AlmostEq(got, 3e-3) {
		t.Errorf("Allocated = %v", got)
	}
	if !r.Release("a") {
		t.Error("Release should succeed")
	}
	if r.Release("a") {
		t.Error("double Release should report false")
	}
}

func TestAnalyzeMACMirrorsTheorem1(t *testing.T) {
	// On a 16 Mb/s ring with an 8 ms rotation target, a 16 kbit burst every
	// 10 ms with THT = 2 ms (service 32 kbit/rotation) mirrors the FDDI
	// closed-form test: busy interval ends at the first k·8 ms with
	// A(k·8ms) <= (k−1)·32k → k=2 → B = 16 ms; worst delay → 16 ms.
	in, err := traffic.NewPeriodic(16e3, 0.010, 16e6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultRingConfig()
	res, err := AnalyzeMAC(in, MACParams{Ring: cfg, THT: 2e-3}, fddi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !units.AlmostEq(res.BusyInterval, 0.016) {
		t.Errorf("BusyInterval = %v, want 0.016", res.BusyInterval)
	}
	if !units.WithinRel(res.Delay, 0.016, 1e-6) {
		t.Errorf("Delay = %v, want 0.016", res.Delay)
	}
	if res.Output == nil {
		t.Fatal("no output envelope")
	}
	// The output cannot exceed the 16 Mb/s medium.
	for i := 1; i <= 100; i++ {
		iv := float64(i) * 1e-3
		if got := res.Output.Bits(iv); got > 16e6*iv*(1+units.RelTol)+units.Eps {
			t.Fatalf("output Bits(%v) = %v exceeds medium rate", iv, got)
		}
	}
}

func TestAnalyzeMACOverload(t *testing.T) {
	// 4 Mb/s sustained on a THT worth only 2 Mb/s.
	in, err := traffic.NewCBR(4e6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultRingConfig()
	_, err = AnalyzeMAC(in, MACParams{Ring: cfg, THT: 1e-3}, fddi.Options{})
	if !errors.Is(err, fddi.ErrOverload) {
		t.Errorf("err = %v, want fddi.ErrOverload", err)
	}
}

func TestMinTHT(t *testing.T) {
	cfg := DefaultRingConfig()
	// rho = 2 Mb/s: THT·16e6 >= 2e6·8e-3·1.25 → THT = 1.25 ms.
	if got := cfg.MinTHT(2e6, 1.25); !units.AlmostEq(got, 1.25e-3) {
		t.Errorf("MinTHT = %v, want 1.25e-3", got)
	}
	// Headroom below 1 is clamped to 1.
	if got := cfg.MinTHT(2e6, 0.5); !units.AlmostEq(got, 1e-3) {
		t.Errorf("MinTHT clamped = %v, want 1e-3", got)
	}
	// Enormous rho clamps at the usable rotation.
	if got := cfg.MinTHT(1e9, 1); !units.AlmostEq(got, cfg.UsableRotation()) {
		t.Errorf("MinTHT saturated = %v, want %v", got, cfg.UsableRotation())
	}
}

func TestTHTMonotoneDelay(t *testing.T) {
	in, err := traffic.NewPeriodic(16e3, 0.010, 16e6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultRingConfig()
	prev := 1e9
	for _, tht := range []float64{1.5e-3, 2e-3, 3e-3, 5e-3} {
		res, err := AnalyzeMAC(in, MACParams{Ring: cfg, THT: tht}, fddi.Options{})
		if err != nil {
			t.Fatalf("THT=%v: %v", tht, err)
		}
		if res.Delay > prev+units.Eps {
			t.Errorf("THT=%v: delay %v exceeds %v at smaller THT", tht, res.Delay, prev)
		}
		prev = res.Delay
	}
}
