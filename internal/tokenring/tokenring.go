// Package tokenring implements the Section 7 extension of the paper: using
// IEEE 802.5 token-ring segments in place of FDDI. The 802.5 MAC server
// admits the same worst-case analysis as the FDDI timed-token MAC — a
// station holding the token may transmit for up to its token holding time
// (THT) once per token rotation, and the rotation is bounded by the walk
// time plus the sum of all THTs — so Theorem 1 applies with the rotation
// bound in place of the TTRT and the THT in place of the synchronous
// allocation H. The paper notes exactly this: "one only needs to analyze an
// 802.5_MAC server in addition to the servers that have been analyzed".
package tokenring

import (
	"fmt"
	"math"

	"fafnet/internal/fddi"
	"fafnet/internal/traffic"
)

// Standard 802.5 rates.
const (
	// Rate4Mbps is classic 4 Mb/s token ring.
	Rate4Mbps = 4e6
	// Rate16Mbps is 16 Mb/s token ring.
	Rate16Mbps = 16e6
)

// RingConfig describes one 802.5 segment.
type RingConfig struct {
	// BandwidthBps is the medium rate (4 or 16 Mb/s classically).
	BandwidthBps float64
	// WalkTime is the token walk latency per full rotation.
	WalkTime float64
	// TargetRotation bounds the token rotation: the ring guarantees every
	// station its THT once per TargetRotation provided
	// ΣTHT + WalkTime <= TargetRotation. It plays the role FDDI's TTRT
	// plays in Theorem 1.
	TargetRotation float64
	// HopLatency is the per-hop propagation used for delay lines.
	HopLatency float64
}

// Default 802.5 timing parameters.
const (
	// defaultWalkTime is the token walk latency per rotation (seconds).
	defaultWalkTime = 0.5e-3
	// defaultTargetRotation is the rotation target (seconds), the 802.5
	// counterpart of FDDI's TTRT.
	defaultTargetRotation = 8e-3
	// defaultHopLatency is the per-hop propagation latency (seconds).
	defaultHopLatency = 5e-6
)

// DefaultRingConfig returns a 16 Mb/s ring with an 8 ms rotation target.
func DefaultRingConfig() RingConfig {
	return RingConfig{
		BandwidthBps:   Rate16Mbps,
		WalkTime:       defaultWalkTime,
		TargetRotation: defaultTargetRotation,
		HopLatency:     defaultHopLatency,
	}
}

// Validate reports whether the configuration is physically meaningful.
func (c RingConfig) Validate() error {
	switch {
	case c.BandwidthBps <= 0:
		return fmt.Errorf("tokenring: bandwidth %v must be positive", c.BandwidthBps)
	case c.TargetRotation <= 0:
		return fmt.Errorf("tokenring: target rotation %v must be positive", c.TargetRotation)
	case c.WalkTime < 0:
		return fmt.Errorf("tokenring: walk time %v must be non-negative", c.WalkTime)
	case c.WalkTime >= c.TargetRotation: //lint:allow floatcmp exact validation bound: any WalkTime strictly below TargetRotation is acceptable
		return fmt.Errorf("tokenring: walk time %v leaves no usable rotation (%v)", c.WalkTime, c.TargetRotation)
	case c.HopLatency < 0:
		return fmt.Errorf("tokenring: hop latency %v must be non-negative", c.HopLatency)
	}
	return nil
}

// UsableRotation returns TargetRotation − WalkTime: the transmission time
// divisible among stations per rotation.
func (c RingConfig) UsableRotation() float64 { return c.TargetRotation - c.WalkTime }

// SimConfig maps the 802.5 parameters onto the shared token-passing ring
// simulator: per-visit budgets (THT here, H there) against a bounded
// rotation. Use it with fddi.NewRingSim to validate 802.5 bounds at packet
// level.
func (c RingConfig) SimConfig() fddi.RingConfig { return c.asFDDI() }

// asFDDI maps the 802.5 parameters onto the timed-token model so the shared
// Theorem 1 machinery applies: the rotation target acts as the TTRT and the
// walk time as the protocol overhead Δ.
func (c RingConfig) asFDDI() fddi.RingConfig {
	return fddi.RingConfig{
		BandwidthBps: c.BandwidthBps,
		TTRT:         c.TargetRotation,
		Overhead:     c.WalkTime,
		HopLatency:   c.HopLatency,
	}
}

// Ring tracks THT allocations on one 802.5 segment. It is not safe for
// concurrent use.
type Ring struct {
	cfg   RingConfig
	inner *fddi.Ring
}

// NewRing validates cfg and returns an empty ring.
func NewRing(cfg RingConfig) (*Ring, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inner, err := fddi.NewRing(cfg.asFDDI())
	if err != nil {
		return nil, err
	}
	return &Ring{cfg: cfg, inner: inner}, nil
}

// Config returns the ring configuration.
func (r *Ring) Config() RingConfig { return r.cfg }

// Allocated returns the total THT currently granted.
func (r *Ring) Allocated() float64 { return r.inner.Allocated() }

// Available returns the THT still grantable under
// ΣTHT + WalkTime <= TargetRotation.
func (r *Ring) Available() float64 { return r.inner.Available() }

// Allocate grants tht seconds of holding time per rotation to connID.
func (r *Ring) Allocate(connID string, tht float64) error { return r.inner.Allocate(connID, tht) }

// Release frees connID's holding time, reporting whether it existed.
func (r *Ring) Release(connID string) bool { return r.inner.Release(connID) }

// MACParams parameterizes the 802.5_MAC server for one connection.
type MACParams struct {
	// Ring is the segment configuration.
	Ring RingConfig
	// THT is the connection's token holding time per rotation.
	THT float64
	// BufferBits bounds the MAC transmit buffer (0 = unlimited).
	BufferBits float64
}

// MACResult mirrors fddi.MACResult for the 802.5 server.
type MACResult struct {
	// BusyInterval, BufferBits and Delay are the Theorem 1 quantities.
	BusyInterval, BufferBits, Delay float64
	// Output is the connection's envelope leaving the MAC.
	Output traffic.Descriptor
}

// AnalyzeMAC bounds the 802.5_MAC server: worst-case delay, backlog, busy
// interval and output envelope for a connection granted THT per rotation.
func AnalyzeMAC(in traffic.Descriptor, p MACParams, opts fddi.Options) (MACResult, error) {
	res, err := fddi.AnalyzeMAC(in, fddi.MACParams{
		Ring:       p.Ring.asFDDI(),
		H:          p.THT,
		BufferBits: p.BufferBits,
	}, opts)
	if err != nil {
		return MACResult{}, err
	}
	return MACResult{
		BusyInterval: res.BusyInterval,
		BufferBits:   res.BufferBits,
		Delay:        res.Delay,
		Output:       res.Output,
	}, nil
}

// MinTHT returns the smallest stable holding time for a source with
// long-term rate rho: THT·BW must cover rho·TargetRotation, padded by the
// given headroom factor (e.g. 1.1 for 10%).
func (c RingConfig) MinTHT(rho, headroom float64) float64 {
	if headroom < 1 {
		headroom = 1
	}
	return math.Min(rho*c.TargetRotation*headroom/c.BandwidthBps, c.UsableRotation())
}
