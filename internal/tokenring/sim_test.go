package tokenring

import (
	"testing"

	"fafnet/internal/des"
	"fafnet/internal/fddi"
	"fafnet/internal/traffic"
)

// TestSimDelaysWithinBound validates the Section 7 extension at packet
// level: frames on a simulated 802.5 ring, competing with saturated
// neighbours, never exceed the 802.5_MAC analysis bound.
func TestSimDelaysWithinBound(t *testing.T) {
	cfg := DefaultRingConfig() // 16 Mb/s, 8 ms rotation, 0.5 ms walk
	const (
		frameBits = 8e3    // 8 kbit frames
		period    = 4e-3   // one frame per 4 ms → 2 Mb/s
		tht       = 1.5e-3 // service 24 kbit per rotation
		simTime   = 3.0
	)
	in, err := traffic.NewPeriodic(frameBits, period, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeMAC(in, MACParams{Ring: cfg, THT: tht}, fddi.Options{})
	if err != nil {
		t.Fatal(err)
	}

	sim := des.NewSimulator()
	var worst float64
	delivered := 0
	ring, err := fddi.NewRingSim(sim, cfg.SimConfig(), 4, func(f fddi.DeliveredFrame) {
		if f.ConnID != "probe" {
			return
		}
		delivered++
		if d := f.Delivered - f.Enqueued; d > worst {
			worst = d
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	bound := res.Delay + ring.PropagationDelay(0, 2)
	if err := ring.SetAllocation(0, tht); err != nil {
		t.Fatal(err)
	}
	// Competing stations holding the token for their full THTs.
	if err := ring.SetAllocation(1, 3e-3); err != nil {
		t.Fatal(err)
	}
	if err := ring.SetAllocation(3, 3e-3); err != nil {
		t.Fatal(err)
	}

	var inject func()
	inject = func() {
		if sim.Now() > simTime-period {
			return
		}
		if err := ring.Enqueue(fddi.Frame{Bits: frameBits, ConnID: "probe", Src: 0, Dst: 2}); err != nil {
			t.Errorf("enqueue: %v", err)
		}
		if _, err := sim.After(period, inject); err != nil {
			t.Errorf("schedule: %v", err)
		}
	}
	var cross func()
	cross = func() {
		if sim.Now() > simTime-cfg.TargetRotation {
			return
		}
		// Exactly the competitors' sustainable load: 48 kbit per rotation
		// each (their THT serves 3 ms · 16 Mb/s = 48 kbit).
		for i := 0; i < 3; i++ {
			_ = ring.Enqueue(fddi.Frame{Bits: 16e3, ConnID: "x1", Src: 1, Dst: 0})
			_ = ring.Enqueue(fddi.Frame{Bits: 16e3, ConnID: "x3", Src: 3, Dst: 2})
		}
		if _, err := sim.After(cfg.TargetRotation, cross); err != nil {
			t.Errorf("schedule: %v", err)
		}
	}
	if _, err := sim.After(0, inject); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.After(0, cross); err != nil {
		t.Fatal(err)
	}
	if err := ring.Start(); err != nil {
		t.Fatal(err)
	}
	sim.Run(simTime + 1)

	if delivered < int(simTime/period)-2 {
		t.Fatalf("only %d probe frames delivered", delivered)
	}
	if worst <= 0 {
		t.Fatal("no delay measured")
	}
	if worst > bound {
		t.Errorf("measured worst 802.5 delay %v exceeds analytic bound %v", worst, bound)
	}
}
