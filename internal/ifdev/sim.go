package ifdev

import (
	"errors"
	"fmt"

	"fafnet/internal/atm"
	"fafnet/internal/des"
)

// SegmenterSim is the DES counterpart of the sender-side interface device:
// a LAN frame entering the device is delayed by the constant stages and then
// segmented into ATM cells submitted to an output port.
type SegmenterSim struct {
	sim      *des.Simulator
	params   Params
	out      *atm.PortSim
	frameSeq map[string]int
}

// NewSegmenterSim builds a segmenter feeding cells into out.
func NewSegmenterSim(sim *des.Simulator, params Params, out *atm.PortSim) (*SegmenterSim, error) {
	if sim == nil {
		return nil, errors.New("ifdev: SegmenterSim requires a simulator")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if out == nil {
		return nil, errors.New("ifdev: SegmenterSim requires an output port")
	}
	return &SegmenterSim{sim: sim, params: params, out: out, frameSeq: make(map[string]int)}, nil
}

// ReceiveFrame accepts one LAN frame for the given connection; after the
// device's constant sender delay its cells enter the output-port queue.
func (s *SegmenterSim) ReceiveFrame(connID string, frameBits float64) error {
	return s.ReceiveFrameAt(connID, frameBits, s.sim.Now())
}

// ReceiveFrameAt is ReceiveFrame with an explicit origin timestamp carried
// in the cells' Created field, so an end-to-end harness can measure from the
// original emission instant rather than from the device entrance.
func (s *SegmenterSim) ReceiveFrameAt(connID string, frameBits, created float64) error {
	if frameBits <= 0 {
		return fmt.Errorf("ifdev: frame size %v must be positive", frameBits)
	}
	seq := s.frameSeq[connID]
	s.frameSeq[connID] = seq + 1
	cells := atm.CellsPerFrame(frameBits)
	_, err := s.sim.After(s.params.SenderConstantDelay(), func() {
		remaining := frameBits
		for i := 0; i < cells; i++ {
			payload := float64(atm.CellPayloadBits)
			if remaining < payload {
				payload = remaining
			}
			remaining -= payload
			s.out.Submit(atm.Cell{
				ConnID:      connID,
				FrameSeq:    seq,
				CellSeq:     i,
				LastOfFrame: i == cells-1,
				PayloadBits: payload,
				Created:     created,
			})
		}
	})
	if err != nil {
		return fmt.Errorf("ifdev: scheduling segmentation: %w", err)
	}
	return nil
}

// ReassembledFrame reports a frame fully reassembled at the receiver-side
// interface device.
type ReassembledFrame struct {
	// ConnID identifies the connection.
	ConnID string
	// FrameSeq is the frame's sequence number within the connection.
	FrameSeq int
	// PayloadBits is the reassembled payload.
	PayloadBits float64
	// FirstCellCreated is the creation time of the frame's first cell
	// (used by the validation harness to compute spans).
	FirstCellCreated float64
	// Completed is the simulation time the frame left the device (after the
	// reassembly handoff delay).
	Completed float64
}

// ReassemblerSim is the DES counterpart of the receiver-side interface
// device: it collects cells per (connection, frame) and, when the last cell
// of a frame arrives, hands the frame onward after the constant receiver
// delay.
type ReassemblerSim struct {
	sim     *des.Simulator
	params  Params
	deliver func(ReassembledFrame)
	partial map[string]*partialFrame
}

type partialFrame struct {
	payload float64
	first   float64
	cells   int
}

// NewReassemblerSim builds a reassembler that invokes deliver for every
// completed frame.
func NewReassemblerSim(sim *des.Simulator, params Params, deliver func(ReassembledFrame)) (*ReassemblerSim, error) {
	if sim == nil {
		return nil, errors.New("ifdev: ReassemblerSim requires a simulator")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if deliver == nil {
		return nil, errors.New("ifdev: ReassemblerSim requires a delivery callback")
	}
	return &ReassemblerSim{sim: sim, params: params, deliver: deliver, partial: make(map[string]*partialFrame)}, nil
}

// ReceiveCell accepts one cell from the ATM side.
func (r *ReassemblerSim) ReceiveCell(c atm.Cell) {
	key := fmt.Sprintf("%s/%d", c.ConnID, c.FrameSeq)
	pf := r.partial[key]
	if pf == nil {
		pf = &partialFrame{first: c.Created}
		r.partial[key] = pf
	}
	pf.payload += c.PayloadBits
	pf.cells++
	if !c.LastOfFrame {
		return
	}
	delete(r.partial, key)
	frame := ReassembledFrame{
		ConnID:           c.ConnID,
		FrameSeq:         c.FrameSeq,
		PayloadBits:      pf.payload,
		FirstCellCreated: pf.first,
	}
	if _, err := r.sim.After(r.params.ReceiverConstantDelay(), func() {
		frame.Completed = r.sim.Now()
		r.deliver(frame)
	}); err != nil {
		panic(fmt.Sprintf("ifdev: scheduling reassembly handoff: %v", err))
	}
}

// PendingFrames returns the number of partially reassembled frames.
func (r *ReassemblerSim) PendingFrames() int { return len(r.partial) }
