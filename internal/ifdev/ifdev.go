// Package ifdev implements the LAN-ATM interface device of the paper: the
// four-stage decomposition of Section 4.3.2 (input port, frame switch,
// frame→cell conversion per Theorem 2, output port) and its receiver-side
// mirror (cell reassembly into frames, transmission onto the destination
// ring). The output-port multiplexer itself is analyzed by atm.AnalyzeMux;
// this package contributes the constant-delay stages and the envelope
// conversions.
package ifdev

import (
	"errors"
	"fmt"

	"fafnet/internal/atm"
	"fafnet/internal/traffic"
)

// Params holds the constant-delay characteristics of one interface device,
// as measured or specified by the manufacturer (the paper's Eqs. 18, 20, 22).
type Params struct {
	// InputPortDelay is the fixed latency of the input port stage.
	InputPortDelay float64
	// FrameSwitchDelay is the fixed latency of the frame-switching stage.
	FrameSwitchDelay float64
	// FrameCellProcessing is the maximum time to convert one frame into
	// cells (Theorem 2's delay term).
	FrameCellProcessing float64
	// CellFrameProcessing is the maximum time to hand a fully reassembled
	// frame to the MAC on the destination ring.
	CellFrameProcessing float64
}

// Default stage latencies recorded in DESIGN.md (all in seconds).
const (
	// DefaultInputPortDelay is the fixed input-port stage latency.
	DefaultInputPortDelay = 25e-6
	// DefaultFrameSwitchDelay is the fixed frame-switching stage latency.
	DefaultFrameSwitchDelay = 25e-6
	// DefaultFrameCellProcessing is the per-frame segmentation latency.
	DefaultFrameCellProcessing = 50e-6
	// DefaultCellFrameProcessing is the per-frame reassembly handoff latency.
	DefaultCellFrameProcessing = 50e-6
)

// DefaultParams returns the constants recorded in DESIGN.md: 25 µs port
// stages and 50 µs conversion processing.
func DefaultParams() Params {
	return Params{
		InputPortDelay:      DefaultInputPortDelay,
		FrameSwitchDelay:    DefaultFrameSwitchDelay,
		FrameCellProcessing: DefaultFrameCellProcessing,
		CellFrameProcessing: DefaultCellFrameProcessing,
	}
}

// Validate reports whether the parameters are physically meaningful.
func (p Params) Validate() error {
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"input port delay", p.InputPortDelay},
		{"frame switch delay", p.FrameSwitchDelay},
		{"frame-cell processing", p.FrameCellProcessing},
		{"cell-frame processing", p.CellFrameProcessing},
	} {
		if v.val < 0 {
			return fmt.Errorf("ifdev: %s %v must be non-negative", v.name, v.val)
		}
	}
	return nil
}

// SenderConstantDelay is the fixed latency of ID_S before the output port:
// input port + frame switch + frame→cell conversion (Eq. 16 minus the
// output-port term).
func (p Params) SenderConstantDelay() float64 {
	return p.InputPortDelay + p.FrameSwitchDelay + p.FrameCellProcessing
}

// ReceiverConstantDelay is the fixed latency of ID_R before its FDDI MAC:
// input port + frame switch + reassembly handoff.
func (p Params) ReceiverConstantDelay() float64 {
	return p.InputPortDelay + p.FrameSwitchDelay + p.CellFrameProcessing
}

// SenderConversion applies Theorem 2: given the envelope of a connection at
// the entrance of ID_S and the connection's frame payload size F_S on the
// sender ring, it returns the envelope at the exit of the
// Frame_Cell_Conversion server,
//
//	Γ'(I) = ⌈I·Γ(I)/F_S⌉ · F_C·C_S / I,
//
// where F_C = ⌈F_S/C_S⌉ cells carry each frame (padding included, so the
// envelope stays an upper bound in payload bits on the ATM side).
func SenderConversion(in traffic.Descriptor, frameBits float64, p Params) (traffic.Descriptor, error) {
	if in == nil {
		return nil, errors.New("ifdev: SenderConversion requires an input descriptor")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if frameBits <= 0 {
		return nil, fmt.Errorf("ifdev: frame size %v must be positive", frameBits)
	}
	fc := atm.CellsPerFrame(frameBits)
	out, err := traffic.NewQuantized(in, frameBits, float64(fc*atm.CellPayloadBits))
	if err != nil {
		return nil, fmt.Errorf("ifdev: frame→cell envelope: %w", err)
	}
	return out, nil
}

// ReceiverConversion mirrors Theorem 2 at ID_R: cells are reassembled into
// frames, so the envelope is re-framed — partially arrived frames round up
// to a whole frame's worth of cells. The padding introduced on the sender
// side is conservatively kept (the reassembled frame is charged its full
// cell payload), so the result remains an upper bound for the traffic handed
// to the MAC on the destination ring.
func ReceiverConversion(in traffic.Descriptor, frameBits float64, p Params) (traffic.Descriptor, error) {
	if in == nil {
		return nil, errors.New("ifdev: ReceiverConversion requires an input descriptor")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if frameBits <= 0 {
		return nil, fmt.Errorf("ifdev: frame size %v must be positive", frameBits)
	}
	fc := atm.CellsPerFrame(frameBits)
	q := float64(fc * atm.CellPayloadBits)
	out, err := traffic.NewQuantized(in, q, q)
	if err != nil {
		return nil, fmt.Errorf("ifdev: cell→frame envelope: %w", err)
	}
	return out, nil
}
