package ifdev

import (
	"testing"

	"fafnet/internal/atm"
	"fafnet/internal/des"
	"fafnet/internal/traffic"
	"fafnet/internal/units"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
	bad := DefaultParams()
	bad.FrameCellProcessing = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative processing should be rejected")
	}
}

func TestConstantDelays(t *testing.T) {
	p := Params{InputPortDelay: 1e-5, FrameSwitchDelay: 2e-5, FrameCellProcessing: 3e-5, CellFrameProcessing: 4e-5}
	if got := p.SenderConstantDelay(); !units.AlmostEq(got, 6e-5) {
		t.Errorf("SenderConstantDelay = %v, want 6e-5", got)
	}
	if got := p.ReceiverConstantDelay(); !units.AlmostEq(got, 7e-5) {
		t.Errorf("ReceiverConstantDelay = %v, want 7e-5", got)
	}
}

func TestSenderConversionTheorem2(t *testing.T) {
	// Source: 100 kbit bursts every 10 ms. Frame size 20 kbit → 5 frames per
	// burst; each frame = ⌈20000/384⌉ = 53 cells → 20352 payload bits.
	in, err := traffic.NewPeriodic(1e5, 0.010, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	const frameBits = 2e4
	out, err := SenderConversion(in, frameBits, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	fc := atm.CellsPerFrame(frameBits) // 53
	if fc != 53 {
		t.Fatalf("CellsPerFrame = %d, want 53", fc)
	}
	cellBits := float64(fc * atm.CellPayloadBits)
	// A(10ms) = 100 kbit = 5 frames exactly → 5·53 cells.
	if got, want := out.Bits(0.010), 5*cellBits; !units.AlmostEq(got, want) {
		t.Errorf("Bits(10ms) = %v, want %v", got, want)
	}
	// Half a burst (50 kbit = 2.5 frames) rounds to 3 frames.
	if got, want := out.Bits(0.0005), 3*cellBits; !units.AlmostEq(got, want) {
		t.Errorf("Bits(0.5ms) = %v, want %v", got, want)
	}
}

func TestSenderConversionValidation(t *testing.T) {
	in, err := traffic.NewCBR(1e6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SenderConversion(nil, 1e4, DefaultParams()); err == nil {
		t.Error("nil input should be rejected")
	}
	if _, err := SenderConversion(in, 0, DefaultParams()); err == nil {
		t.Error("zero frame size should be rejected")
	}
	bad := DefaultParams()
	bad.InputPortDelay = -1
	if _, err := SenderConversion(in, 1e4, bad); err == nil {
		t.Error("invalid params should be rejected")
	}
}

func TestReceiverConversionReframes(t *testing.T) {
	// ATM-side envelope in whole-cell payload units.
	const frameBits = 2e4
	fc := atm.CellsPerFrame(frameBits)
	q := float64(fc * atm.CellPayloadBits)
	in, err := traffic.NewLeakyBucket(2.5*q, 10e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ReceiverConversion(in, frameBits, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// An instantaneous burst of 2.5 frames of cells rounds to 3 frames.
	if got := out.Bits(1e-9); !units.AlmostEq(got, 3*q) {
		t.Errorf("Bits(≈0) = %v, want %v", got, 3*q)
	}
	// Conversion preserves the long-term rate (no extra padding added).
	if got := out.LongTermRate(); !units.AlmostEq(got, 10e6) {
		t.Errorf("LongTermRate = %v, want 1e7", got)
	}
}

func TestSegmenterReassemblerRoundTrip(t *testing.T) {
	sim := des.NewSimulator()
	var frames []ReassembledFrame
	reasm, err := NewReassemblerSim(sim, DefaultParams(), func(f ReassembledFrame) {
		frames = append(frames, f)
	})
	if err != nil {
		t.Fatal(err)
	}
	port, err := atm.NewPortSim(sim, atm.DefaultLinkBps, 1e-5, reasm.ReceiveCell)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := NewSegmenterSim(sim, DefaultParams(), port)
	if err != nil {
		t.Fatal(err)
	}

	const frameBits = 2e4 // 53 cells
	if err := seg.ReceiveFrame("c1", frameBits); err != nil {
		t.Fatal(err)
	}
	if err := seg.ReceiveFrame("c1", frameBits); err != nil {
		t.Fatal(err)
	}
	if err := seg.ReceiveFrame("c2", 384); err != nil { // single-cell frame
		t.Fatal(err)
	}
	sim.Run(1)

	if len(frames) != 3 {
		t.Fatalf("reassembled %d frames, want 3", len(frames))
	}
	byConn := map[string][]ReassembledFrame{}
	for _, f := range frames {
		byConn[f.ConnID] = append(byConn[f.ConnID], f)
	}
	if len(byConn["c1"]) != 2 {
		t.Fatalf("c1 frames = %d, want 2", len(byConn["c1"]))
	}
	for _, f := range byConn["c1"] {
		if !units.AlmostEq(f.PayloadBits, frameBits) {
			t.Errorf("frame %d payload = %v, want %v", f.FrameSeq, f.PayloadBits, frameBits)
		}
	}
	if got := byConn["c2"][0].PayloadBits; !units.AlmostEq(got, 384) {
		t.Errorf("c2 payload = %v, want 384", got)
	}
	// Frames of one connection arrive in order.
	if byConn["c1"][0].FrameSeq > byConn["c1"][1].FrameSeq {
		t.Error("frames reordered")
	}
	// End-to-end device time must include both constant delays plus 53 cell
	// times plus propagation.
	minTime := DefaultParams().SenderConstantDelay() +
		53*atm.CellTime(atm.DefaultLinkBps) + 1e-5 +
		DefaultParams().ReceiverConstantDelay()
	for _, f := range byConn["c1"] {
		if f.Completed < minTime-units.Eps {
			t.Errorf("frame completed at %v, physically impossible before %v", f.Completed, minTime)
		}
	}
	if reasm.PendingFrames() != 0 {
		t.Errorf("PendingFrames = %d, want 0", reasm.PendingFrames())
	}
}

func TestSegmenterValidation(t *testing.T) {
	sim := des.NewSimulator()
	port, err := atm.NewPortSim(sim, atm.DefaultLinkBps, 0, func(atm.Cell) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSegmenterSim(nil, DefaultParams(), port); err == nil {
		t.Error("nil simulator should be rejected")
	}
	if _, err := NewSegmenterSim(sim, DefaultParams(), nil); err == nil {
		t.Error("nil port should be rejected")
	}
	seg, err := NewSegmenterSim(sim, DefaultParams(), port)
	if err != nil {
		t.Fatal(err)
	}
	if err := seg.ReceiveFrame("c", 0); err == nil {
		t.Error("empty frame should be rejected")
	}
}

func TestReassemblerValidation(t *testing.T) {
	sim := des.NewSimulator()
	if _, err := NewReassemblerSim(nil, DefaultParams(), func(ReassembledFrame) {}); err == nil {
		t.Error("nil simulator should be rejected")
	}
	if _, err := NewReassemblerSim(sim, DefaultParams(), nil); err == nil {
		t.Error("nil callback should be rejected")
	}
}
