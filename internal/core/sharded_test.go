package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"fafnet/internal/topo"
	"fafnet/internal/traffic"
	"fafnet/internal/units"
)

// shardedRandomSource draws from the same descriptor mix the analyzer
// equivalence harnesses use: dual-periodic video, periodic audio, CBR bulk.
func shardedRandomSource(t *testing.T, rng *rand.Rand) traffic.Descriptor {
	t.Helper()
	switch rng.Intn(3) {
	case 0:
		c1 := 50e3 + 150e3*rng.Float64()
		d, err := traffic.NewDualPeriodic(c1, 0.010, c1/5, 0.001, 100e6)
		if err != nil {
			t.Fatal(err)
		}
		return d
	case 1:
		c := 20e3 + 80e3*rng.Float64()
		p := []float64{0.005, 0.008, 0.010}[rng.Intn(3)]
		d, err := traffic.NewPeriodic(c, p, 100e6)
		if err != nil {
			t.Fatal(err)
		}
		return d
	default:
		d, err := traffic.NewCBR(2e6 + 8e6*rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
}

// TestShardedEquivalenceRandomized is the soundness harness of the sharded
// pipeline: across randomized scenarios, a serialized Controller and a
// Sharded pipeline fed the identical operation sequence must return the
// identical verdict and reason for every admit and preview, allocations
// equal to units.AlmostEq, the same release outcomes, and the same final
// admitted set. The sequences deliberately include duplicate ids, busy
// source hosts, releases of absent ids, and previews interleaved with
// commits, so the snapshot/preflight paths are all compared, not just the
// happy path.
func TestShardedEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(20250808))

	const scenarios = 110
	for sc := 0; sc < scenarios; sc++ {
		// A fresh network per scenario: the serialized Controller charges the
		// topo.Network's own rings, so reusing one network would leak ring
		// state between scenarios (the Sharded ledgers are always private).
		net := defaultNet(t)
		ctl, err := NewController(net, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pipe, err := NewSharded(net, Options{}, 2)
		if err != nil {
			t.Fatal(err)
		}

		admitted := []string{} // ids believed admitted, for releases and dup draws
		nOps := 6 + rng.Intn(10)
		for op := 0; op < nOps; op++ {
			switch k := rng.Intn(10); {
			case k < 6: // admit (sometimes a duplicate id or busy host)
				spec := ConnSpec{
					ID:       fmt.Sprintf("e%do%d", sc, op),
					Src:      topo.HostID{Ring: rng.Intn(3), Index: rng.Intn(4)},
					Dst:      topo.HostID{Ring: rng.Intn(3), Index: rng.Intn(4)},
					Source:   shardedRandomSource(t, rng),
					Deadline: []float64{0.030, 0.060, 0.120}[rng.Intn(3)],
				}
				if spec.Src == spec.Dst {
					spec.Dst.Index = (spec.Dst.Index + 1) % 4
				}
				if len(admitted) > 0 && rng.Intn(5) == 0 {
					spec.ID = admitted[rng.Intn(len(admitted))] // duplicate id
				}
				want, wantErr := ctl.RequestAdmission(spec)
				got, gotErr := pipe.RequestAdmission(spec)
				if (wantErr != nil) != (gotErr != nil) {
					t.Fatalf("scenario %d op %d (%s): error diverged: serialized %v, sharded %v",
						sc, op, spec.ID, wantErr, gotErr)
				}
				if wantErr != nil {
					continue
				}
				compareDecisions(t, sc, op, spec.ID, want, got)
				if want.Admitted {
					admitted = append(admitted, spec.ID)
				}
			case k < 8: // preview: full algorithm, no commit on either side
				spec := ConnSpec{
					ID:       fmt.Sprintf("e%dp%d", sc, op),
					Src:      topo.HostID{Ring: rng.Intn(3), Index: rng.Intn(4)},
					Dst:      topo.HostID{Ring: (rng.Intn(3) + 1) % 3, Index: rng.Intn(4)},
					Source:   shardedRandomSource(t, rng),
					Deadline: 0.060,
				}
				if spec.Src == spec.Dst {
					spec.Dst.Index = (spec.Dst.Index + 1) % 4
				}
				want, wantErr := ctl.PreviewAdmission(spec)
				got, gotErr := pipe.PreviewAdmission(spec)
				if (wantErr != nil) != (gotErr != nil) {
					t.Fatalf("scenario %d op %d (%s): preview error diverged: serialized %v, sharded %v",
						sc, op, spec.ID, wantErr, gotErr)
				}
				if wantErr == nil {
					compareDecisions(t, sc, op, spec.ID, want, got)
				}
			default: // release (sometimes of an id that was never admitted)
				id := fmt.Sprintf("e%dabsent%d", sc, op)
				if len(admitted) > 0 && rng.Intn(4) != 0 {
					i := rng.Intn(len(admitted))
					id = admitted[i]
					admitted = append(admitted[:i], admitted[i+1:]...)
				}
				want := ctl.Release(id)
				got := pipe.Release(id)
				if want != got {
					t.Fatalf("scenario %d op %d: Release(%s) diverged: serialized %v, sharded %v",
						sc, op, id, want, got)
				}
			}
		}

		// The final admitted sets must be identical: same ids, allocations
		// equal to units.AlmostEq.
		wantConns := ctl.Connections()
		gotConns := pipe.Connections()
		if len(wantConns) != len(gotConns) {
			t.Fatalf("scenario %d: serialized holds %d connections, sharded %d",
				sc, len(wantConns), len(gotConns))
		}
		for i, w := range wantConns {
			g := gotConns[i]
			if w.ID != g.ID {
				t.Fatalf("scenario %d: admitted set diverged at %d: %s vs %s", sc, i, w.ID, g.ID)
			}
			if !units.AlmostEq(w.HS, g.HS) || !units.AlmostEq(w.HR, g.HR) {
				t.Fatalf("scenario %d conn %s: allocations diverged: serialized HS=%v HR=%v, sharded HS=%v HR=%v",
					sc, w.ID, w.HS, w.HR, g.HS, g.HR)
			}
		}
	}
}

// compareDecisions checks the fields the pipelines must agree on. Delays and
// probe/cache counts are excluded by design: a verdict-cache hit returns
// only the candidate's delay and zero probes.
func compareDecisions(t *testing.T, sc, op int, id string, want, got Decision) {
	t.Helper()
	if want.Admitted != got.Admitted || want.Reason != got.Reason {
		t.Fatalf("scenario %d op %d (%s): verdict diverged: serialized %v/%q, sharded %v/%q",
			sc, op, id, want.Admitted, want.Reason, got.Admitted, got.Reason)
	}
	if !units.AlmostEq(want.HS, got.HS) || !units.AlmostEq(want.HR, got.HR) {
		t.Fatalf("scenario %d op %d (%s): allocations diverged: serialized HS=%v HR=%v, sharded HS=%v HR=%v",
			sc, op, id, want.HS, want.HR, got.HS, got.HR)
	}
}

// TestShardedTwoPhaseRollback exercises the reservation rollback directly: a
// two-ring reservation whose second leg fails must leave the first leg's
// shard exactly as it found it — no pending mass, availability unchanged.
func TestShardedTwoPhaseRollback(t *testing.T) {
	net := defaultNet(t)
	pipe, err := NewSharded(net, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := topo.HostID{Ring: 0, Index: 0}
	dst := topo.HostID{Ring: 2, Index: 1}
	route, err := net.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	cand := &Connection{ConnSpec: ConnSpec{ID: "roll", Src: src, Dst: dst}, Route: route}

	srcShard := pipe.shards[src.Ring]
	dstShard := pipe.shards[dst.Ring]
	srcBefore := srcShard.availCommitted()

	// Exhaust the destination ring so the second reservation must fail.
	dstShard.mu.Lock()
	hog := dstShard.budget.Available()
	dstShard.mu.Unlock()
	if err := dstShard.reserve("hog", hog); err != nil {
		t.Fatalf("hog reservation: %v", err)
	}
	aborts := mShardReserveAborts.Value()
	if err := pipe.reserveBoth(cand, 1e-3, 1e-3); err == nil {
		t.Fatal("reserveBoth succeeded against an exhausted destination ring")
	}
	if got := mShardReserveAborts.Value(); got != aborts+1 {
		t.Errorf("reserve aborts counter: %d, want %d", got, aborts+1)
	}
	srcShard.mu.Lock()
	_, stillPending := srcShard.pending[cand.ID]
	srcShard.mu.Unlock()
	if stillPending {
		t.Error("rollback left the source-ring reservation pending")
	}
	if got := srcShard.availCommitted(); !units.AlmostEq(got, srcBefore) {
		t.Errorf("source-ring availability after rollback: %v, want %v", got, srcBefore)
	}

	// After the hog aborts, the same reservation must go through, and
	// confirmation must charge committed availability on both rings.
	dstShard.abort("hog")
	dstShard.mu.Lock()
	afterAbort := dstShard.pendingSum
	dstShard.mu.Unlock()
	if afterAbort != 0 {
		t.Fatalf("pending mass after abort: %v, want 0", afterAbort)
	}
	if err := pipe.reserveBoth(cand, 1e-3, 1e-3); err != nil {
		t.Fatalf("reserveBoth after abort: %v", err)
	}
	// While pending, committed availability is unchanged (pendingSum is
	// added back) — a concurrent analysis must not see half a commit.
	if got := srcShard.availCommitted(); !units.AlmostEq(got, srcBefore) {
		t.Errorf("availability with a pending reservation: %v, want %v", got, srcBefore)
	}
	pipe.confirmBoth(cand)
	if got := srcShard.availCommitted(); !units.AlmostEq(got, srcBefore-1e-3) {
		t.Errorf("availability after confirm: %v, want %v", got, srcBefore-1e-3)
	}
	srcShard.mu.Lock()
	srcPending := len(srcShard.pending)
	srcShard.mu.Unlock()
	dstShard.mu.Lock()
	dstPending := len(dstShard.pending)
	dstShard.mu.Unlock()
	if srcPending != 0 || dstPending != 0 {
		t.Error("confirm left reservations pending")
	}
}

// TestShardedVerdictCacheRecurrence pins the cache's reason for existing:
// repeating a decision problem — same admitted multiset, same candidate
// class — must hit, and a release that returns the state hash to a previous
// value must let earlier verdicts hit again.
func TestShardedVerdictCacheRecurrence(t *testing.T) {
	net := defaultNet(t)
	pipe, err := NewSharded(net, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := func(id string) ConnSpec {
		d, err := traffic.NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
		if err != nil {
			t.Fatal(err)
		}
		return ConnSpec{
			ID:       id,
			Src:      topo.HostID{Ring: 0, Index: 1},
			Dst:      topo.HostID{Ring: 1, Index: 1},
			Source:   d,
			Deadline: 0.060,
		}
	}
	preview := func() Decision {
		dec, err := pipe.PreviewAdmission(spec("probe"))
		if err != nil {
			t.Fatal(err)
		}
		return dec
	}

	hits, misses := mVerdictHits.Value(), mVerdictMisses.Value()
	first := preview()
	if got := mVerdictMisses.Value(); got != misses+1 {
		t.Fatalf("first preview: misses %d, want %d", got, misses+1)
	}
	again := preview()
	if got := mVerdictHits.Value(); got != hits+1 {
		t.Fatalf("repeat preview: hits %d, want %d", got, hits+1)
	}
	if first.Admitted != again.Admitted || !units.AlmostEq(first.HS, again.HS) {
		t.Fatalf("cache hit changed the verdict: %+v vs %+v", first, again)
	}

	// Admit a connection (state hash moves), release it (hash returns):
	// the original verdict must hit again without a new probe run.
	if dec, err := pipe.RequestAdmission(spec("occupant")); err != nil || !dec.Admitted {
		t.Fatalf("occupant admission: %+v, %v", dec, err)
	}
	if !pipe.Release("occupant") {
		t.Fatal("occupant release")
	}
	hits = mVerdictHits.Value()
	preview()
	if got := mVerdictHits.Value(); got != hits+1 {
		t.Fatalf("post-churn preview: hits %d, want %d (state hash did not recur)", got, hits+1)
	}
}

// TestShardedBatchOrdering checks the batch entry points return results in
// input order regardless of the class-grouped evaluation order, and that the
// preview batch's record callback fires exactly once per member.
func TestShardedBatchOrdering(t *testing.T) {
	net := defaultNet(t)
	pipe, err := NewSharded(net, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id string, ring int, kbit float64) ConnSpec {
		d, err := traffic.NewDualPeriodic(kbit*1e3, 0.010, kbit*1e3/5, 0.001, 100e6)
		if err != nil {
			t.Fatal(err)
		}
		return ConnSpec{
			ID:       id,
			Src:      topo.HostID{Ring: ring, Index: 0},
			Dst:      topo.HostID{Ring: (ring + 1) % 3, Index: 0},
			Source:   d,
			Deadline: 0.060,
		}
	}
	// Interleave two classes so class grouping must reorder evaluation.
	specs := []ConnSpec{
		mk("b0", 0, 50), mk("b1", 1, 120), mk("b2", 2, 50), mk("b3", 0, 120),
	}
	seen := map[int]int{}
	results := pipe.PreviewAdmissionBatch(specs, func(i int, dec Decision, err error) {
		seen[i]++
	})
	if len(results) != len(specs) {
		t.Fatalf("%d results for %d specs", len(results), len(specs))
	}
	for i, r := range results {
		if r.ID != specs[i].ID {
			t.Errorf("result %d is %s, want %s (input order lost)", i, r.ID, specs[i].ID)
		}
		if r.Err != nil {
			t.Errorf("member %s: %v", r.ID, r.Err)
		}
		if seen[i] != 1 {
			t.Errorf("record callback fired %d times for member %d", seen[i], i)
		}
	}
	if pipe.Active() != 0 {
		t.Errorf("preview batch admitted %d connections", pipe.Active())
	}
}

// TestShardedConcurrentHammer drives admits, previews, and releases from
// many goroutines at once (the -race configuration this file exists for)
// and then checks the global invariants: all bandwidth accounted, no
// pending reservations, no connection left after every worker released its
// admissions, and every shard ledger back to its initial availability.
func TestShardedConcurrentHammer(t *testing.T) {
	net := defaultNet(t)
	pipe, err := NewSharded(net, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	initial := pipe.shardAvail()

	const workers = 8
	iters := 12
	if testing.Short() {
		iters = 4
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			d, err := traffic.NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
			if err != nil {
				t.Error(err)
				return
			}
			held := []string{}
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("h%d-%d", w, i)
				spec := ConnSpec{
					ID: id,
					// Partition sources by worker so HostBusy rejections are
					// deterministic per worker, not a cross-worker race.
					Src:      topo.HostID{Ring: w % 3, Index: w / 3},
					Dst:      topo.HostID{Ring: (w + 1 + rng.Intn(2)) % 3, Index: rng.Intn(4)},
					Source:   d,
					Deadline: 0.060,
				}
				dec, err := pipe.RequestAdmission(spec)
				if err != nil {
					t.Errorf("worker %d admit %s: %v", w, id, err)
					return
				}
				if dec.Admitted {
					held = append(held, id)
				}
				if _, err := pipe.PreviewAdmission(ConnSpec{
					ID: id + "-p", Src: spec.Src, Dst: spec.Dst, Source: d, Deadline: 0.060,
				}); err != nil {
					t.Errorf("worker %d preview: %v", w, err)
					return
				}
				// Release with probability 2/3 so the source host frees up
				// and later iterations re-admit — churn, not a frozen set.
				if len(held) > 0 && rng.Intn(3) != 0 {
					if !pipe.Release(held[0]) {
						t.Errorf("worker %d lost its own admission %s", w, held[0])
						return
					}
					held = held[1:]
				}
			}
			for _, id := range held {
				if !pipe.Release(id) {
					t.Errorf("worker %d final release %s failed", w, id)
				}
			}
		}()
	}
	wg.Wait()

	if got := pipe.Active(); got != 0 {
		t.Fatalf("hammer left %d connections admitted", got)
	}
	for i, sh := range pipe.shards {
		sh.mu.Lock()
		pendN, pendSum := len(sh.pending), sh.pendingSum
		sh.mu.Unlock()
		if pendN != 0 || pendSum != 0 {
			t.Errorf("shard %d left %d pending reservations (mass %v)", i, pendN, pendSum)
		}
	}
	final := pipe.shardAvail()
	for i := range final {
		if !units.AlmostEq(final[i], initial[i]) {
			t.Errorf("ring %d availability drifted: %v before, %v after", i, initial[i], final[i])
		}
	}
}
