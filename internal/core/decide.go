package core

import (
	"math"

	"fafnet/internal/topo"
	"fafnet/internal/units"
)

// This file is the CAC decision algorithm of Section 5.3 factored free of
// Controller so two owners can run it: the serialized Controller (which
// mutates its live network in place) and the sharded pipeline (which
// evaluates against an immutable snapshot and commits through two-phase
// ring reservations). The algorithm itself is a pure function of the
// standing connection set, the per-ring availabilities, and the candidate
// specification — everything stateful (bandwidth bookkeeping, the admitted
// map) stays with the caller.

// decideAgainst runs steps 1–5 of the admission algorithm — availability
// floor (Eq. 26–27), feasibility at the segment maximum, the
// (H^min_need, H^max_need) binary searches, and the β interpolation
// (Eq. 35–36) — against a fixed view of the world: the standing connections
// (sorted by id, candidate excluded) and the per-ring available synchronous
// bandwidth. It commits nothing. On an admit verdict the returned Decision
// has Admitted, Reason, HS, HR, Delays, and Stages populated and the
// returned candidate carries the route; the caller is responsible for
// charging the rings and recording the connection (or discarding both, for
// previews). A non-nil error is an analysis failure, not a rejection.
func decideAgainst(an *Analyzer, opts Options, standing []*Connection, avail func(ring int) float64, spec ConnSpec, route topo.Route) (Decision, *Connection, error) {
	cand := &Connection{ConnSpec: spec, Route: route}
	dec := Decision{
		HSMaxAvail: avail(spec.Src.Ring),
	}
	if route.CrossesBackbone {
		dec.HRMaxAvail = avail(spec.Dst.Ring)
	}

	// Step 1–2: availability floor.
	if dec.HSMaxAvail < opts.HMinAbs ||
		(route.CrossesBackbone && dec.HRMaxAvail < opts.HMinAbs) {
		dec.Reason = ReasonNoBandwidth
		return dec, cand, nil
	}

	seg := searchSegment(opts, route, dec.HSMaxAvail, dec.HRMaxAvail)

	// The probe session reuses every analysis result the candidate's
	// allocation provably cannot change.
	session, err := an.NewProbeSession(standing, cand)
	if err != nil {
		return Decision{}, nil, err
	}
	probe := func(a allocation) (bool, map[string]float64) {
		dec.Probes++
		mProbes.Inc()
		delays, err := session.Delays(a.hs, a.hr)
		if err != nil {
			// Structural errors cannot occur for specs validated above;
			// treat defensively as infeasible.
			return false, nil
		}
		return meetsDeadlines(standing, cand, delays), delays
	}

	// Step 2: feasibility at the segment's maximum point.
	okMax, delaysMax := probe(seg.p1)
	if !okMax {
		dec.Reason = ReasonInfeasible
		return dec, cand, nil
	}

	// Step 3: minimum needed allocation.
	alphaMin := bisectFeasible(opts, probe, seg)
	minAlloc := seg.at(alphaMin)
	dec.HSMinNeed, dec.HRMinNeed = minAlloc.hs, minAlloc.hr

	// Step 4: maximum needed allocation — the smallest point whose delays
	// match the maximum allocation's (Eq. 31–33).
	alphaEq := bisectEqualDelays(opts, probe, seg, alphaMin, delaysMax)
	maxAlloc := seg.at(alphaEq)
	dec.HSMaxNeed, dec.HRMaxNeed = maxAlloc.hs, maxAlloc.hr

	// Step 5: β interpolation (Eq. 35–36).
	chosen := allocation{
		hs: minAlloc.hs + opts.Beta*(maxAlloc.hs-minAlloc.hs),
		hr: minAlloc.hr + opts.Beta*(maxAlloc.hr-minAlloc.hr),
	}
	ok, delays := probe(chosen)
	if !ok {
		// Convexity (Theorem 3–4) makes this unreachable in exact
		// arithmetic; numeric quantization can still surface it. Fall back
		// to the segment maximum, which was verified feasible. The probe
		// session's scratch evaluation holds the failed allocation, so no
		// Stages decomposition is reported for this (rare) path.
		chosen = seg.p1
		delays = delaysMax
	} else if bd, bderr := session.Breakdown(spec.ID); bderr == nil {
		// The scratch evaluation is warm from the probe just run at the
		// chosen allocation, so assembling the decomposition re-runs no
		// analysis.
		dec.Stages = &bd
	}

	dec.Admitted = true
	dec.Reason = ReasonAdmitted
	dec.HS, dec.HR = chosen.hs, chosen.hr
	dec.Delays = delays
	return dec, cand, nil
}

// searchSegment builds the allocation segment for the configured rule.
func searchSegment(opts Options, route topo.Route, hsMax, hrMax float64) segment {
	minAbs := opts.HMinAbs
	if !route.CrossesBackbone {
		return segment{p0: allocation{hs: minAbs}, p1: allocation{hs: hsMax}}
	}
	switch opts.Rule {
	case RuleFixedSplit:
		m := math.Min(hsMax, hrMax)
		return segment{p0: allocation{minAbs, minAbs}, p1: allocation{m, m}}
	case RuleSenderBiased:
		return segment{p0: allocation{hsMax, minAbs}, p1: allocation{hsMax, hrMax}}
	default: // RuleProportional (the paper's Rule 2)
		return segment{p0: allocation{minAbs, minAbs}, p1: allocation{hsMax, hrMax}}
	}
}

// meetsDeadlines checks Eq. 24–25 against a computed delay map: every
// standing connection and the candidate must meet its deadline.
func meetsDeadlines(standing []*Connection, cand *Connection, delays map[string]float64) bool {
	for _, conn := range standing {
		if delays[conn.ID] > conn.Deadline*(1+units.RelTol) {
			return false
		}
	}
	return delays[cand.ID] <= cand.Deadline*(1+units.RelTol)
}

// bisectFeasible locates the smallest α in [0,1] whose allocation is
// feasible. The caller guarantees α=1 is feasible; Theorems 3–4 make the
// feasible subset of the segment an interval ending at 1.
func bisectFeasible(opts Options, probe func(allocation) (bool, map[string]float64), seg segment) float64 {
	if ok, _ := probe(seg.at(0)); ok {
		return 0
	}
	lo, hi := 0.0, 1.0 // infeasible at lo, feasible at hi
	for i := 0; i < opts.SearchIters; i++ {
		mBisectSteps.Inc()
		mid := (lo + hi) / 2
		if ok, _ := probe(seg.at(mid)); ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// bisectEqualDelays locates the smallest α in [alphaMin,1] whose delays
// match those at α=1 within the configured tolerance (Eq. 31–32). Delays
// vary monotonically toward their α=1 values along the segment, so the
// equality set is an interval ending at 1.
func bisectEqualDelays(opts Options, probe func(allocation) (bool, map[string]float64), seg segment, alphaMin float64, delaysMax map[string]float64) float64 {
	equal := func(alpha float64) bool {
		ok, delays := probe(seg.at(alpha))
		if !ok {
			return false
		}
		for id, dMax := range delaysMax {
			if !units.WithinRel(delays[id], dMax, opts.EqualTolerance) {
				return false
			}
		}
		return true
	}
	if equal(alphaMin) {
		return alphaMin
	}
	lo, hi := alphaMin, 1.0
	for i := 0; i < opts.SearchIters; i++ {
		mBisectSteps.Inc()
		mid := (lo + hi) / 2
		if equal(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
