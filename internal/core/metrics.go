package core

import "fafnet/internal/obs"

// CacheStats counts the analyzer's cross-evaluation cache traffic: lookups
// of the stage-0 envelope cache and the two-level sender-MAC cache. The
// Analyzer accumulates totals over its lifetime; Decision carries the
// per-decision difference so an audit record shows what each admission
// cost. Per-evaluation memo hits (envMemo, macMemo) are not counted — they
// are scratch state, not the caches whose effectiveness PR-3 rests on.
type CacheStats struct {
	// Stage0Hits and Stage0Misses count cross-evaluation lookups of the
	// fused stage-0 envelope cache. Zero under DisableFusion.
	Stage0Hits, Stage0Misses uint64
	// MACHits and MACMisses count lookups of the per-(connection, H)
	// sender-MAC result cache.
	MACHits, MACMisses uint64
}

// Sub returns the element-wise difference s − o. Use it to turn two
// snapshots of Analyzer.CacheStats into the traffic of one decision.
func (s CacheStats) Sub(o CacheStats) CacheStats {
	return CacheStats{
		Stage0Hits:   s.Stage0Hits - o.Stage0Hits,
		Stage0Misses: s.Stage0Misses - o.Stage0Misses,
		MACHits:      s.MACHits - o.MACHits,
		MACMisses:    s.MACMisses - o.MACMisses,
	}
}

// Process-wide metric handles. Incrementing an atomic counter costs a few
// nanoseconds against probes that cost microseconds to milliseconds, so the
// hot paths update these unconditionally.
var (
	mAdmitted = obs.Default.Counter("fafnet_cac_decisions_total",
		"CAC admission decisions by outcome.", "outcome", "admitted")
	mRejected = obs.Default.Counter("fafnet_cac_decisions_total",
		"CAC admission decisions by outcome.", "outcome", "rejected")
	mDecisionErrors = obs.Default.Counter("fafnet_cac_decision_errors_total",
		"Admission requests that failed with an error before reaching a decision.")
	mDecideSeconds = obs.Default.Histogram("fafnet_cac_decide_seconds",
		"Wall time of one full CAC decision (probe session setup plus every bisection probe).",
		obs.LatencyBuckets())
	mProbes = obs.Default.Counter("fafnet_cac_probes_total",
		"Full-network feasibility probes evaluated across all decisions.")
	mBisectSteps = obs.Default.Counter("fafnet_cac_bisect_steps_total",
		"Binary-search iterations across the feasibility and equal-delay searches.")
	mReleases = obs.Default.Counter("fafnet_cac_releases_total",
		"Connections released (admitted connections torn down).")
	mBookkeepingErrors = obs.Default.Counter("fafnet_cac_bookkeeping_errors_total",
		"Ring bandwidth releases that found no allocation to free — controller and ring state have diverged.")
	gActive = obs.Default.Gauge("fafnet_cac_active_connections",
		"Currently admitted connections.")

	mCacheStage0Hits = obs.Default.Counter("fafnet_cac_cache_stage0_hits_total",
		"Stage-0 envelope cache lookups served from cache.")
	mCacheStage0Misses = obs.Default.Counter("fafnet_cac_cache_stage0_misses_total",
		"Stage-0 envelope cache lookups that rebuilt the envelope.")
	mCacheMACHits = obs.Default.Counter("fafnet_cac_cache_mac_hits_total",
		"Sender-MAC cache lookups served from cache.")
	mCacheMACMisses = obs.Default.Counter("fafnet_cac_cache_mac_misses_total",
		"Sender-MAC cache lookups that ran the Theorem 1 analysis.")
	mProbeStage0Reused = obs.Default.Counter("fafnet_cac_probe_stage0_reused_total",
		"Stage-0 envelopes carried into probe evaluations without recomputation.")

	mVerdictHits = obs.Default.Counter("fafnet_cac_verdict_cache_hits_total",
		"Admission decisions answered from the verdict cache without running any probe.")
	mVerdictMisses = obs.Default.Counter("fafnet_cac_verdict_cache_misses_total",
		"Admission decisions that ran the full probe-based analysis and seeded the verdict cache.")
	mVerdictSkips = obs.Default.Counter("fafnet_cac_verdict_cache_skips_total",
		"Admission decisions that bypassed the verdict cache (unfingerprintable spec or admitted set).")

	mShardCommits = obs.Default.Counter("fafnet_shard_commits_total",
		"Two-phase reserve/commit sequences that published a new admitted-state snapshot.")
	mShardCommitRetries = obs.Default.Counter("fafnet_shard_commit_retries_total",
		"Admission commits abandoned because another commit published first; the decision re-ran against the fresh snapshot.")
	mShardPessimisticCommits = obs.Default.Counter("fafnet_shard_pessimistic_commits_total",
		"Decisions that fell back to deciding under the commit lock after exhausting optimistic retries.")
	mShardReserveAborts = obs.Default.Counter("fafnet_shard_reserve_aborts_total",
		"Shard reservations rolled back because the partner ring could not cover its half of a two-ring admission.")
	gShardUtilMax = obs.Default.Gauge("fafnet_shard_allocated_fraction_max",
		"Highest committed synchronous-bandwidth fraction across ring shards.")
	gShardImbalance = obs.Default.Gauge("fafnet_shard_imbalance",
		"Spread between the most and least loaded ring shards (allocated-fraction max minus min).")

	mFlatLowerings = obs.Default.Counter("fafnet_cac_flat_lowerings_total",
		"Descriptor chains lowered into flat breakpoint arrays (stage-0 envelopes and receiver-side conversions).")
	mFlatFallbacks = obs.Default.Counter("fafnet_cac_flat_fallbacks_total",
		"Envelope evaluations that fell back to the closure-tree path because a chain had no exact flat lowering (e.g. shaped connections).")
	mFlatAggDeltas = obs.Default.Counter("fafnet_cac_flat_agg_deltas_total",
		"Incremental updates of materialized per-port aggregate envelopes (one member flat added or subtracted).")
	mFlatAggRebuilds = obs.Default.Counter("fafnet_cac_flat_agg_rebuilds_total",
		"Per-port aggregate envelopes rebuilt from scratch (first use, membership churn past the delta budget, or drift-bound refresh).")
)
