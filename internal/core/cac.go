package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"fafnet/internal/obs"
	"fafnet/internal/topo"
	"fafnet/internal/units"
)

// Rule selects how the CAC picks the allocation segment on the H_S–H_R
// plane. RuleProportional is the paper's scheme (Section 5.3, Rule 2); the
// others exist as ablation baselines.
type Rule int

const (
	// RuleProportional searches along the line joining
	// (H^min_abs, H^min_abs) and (H_S^max_avai, H_R^max_avai), reserving
	// bandwidth from both rings in proportion to what each has available.
	RuleProportional Rule = iota
	// RuleFixedSplit always allocates the same absolute amount on both
	// rings, capped by the tighter ring.
	RuleFixedSplit
	// RuleSenderBiased grants the sender ring its full availability and
	// tunes only the receiver allocation.
	RuleSenderBiased
)

// String implements fmt.Stringer.
func (r Rule) String() string {
	switch r {
	case RuleProportional:
		return "proportional"
	case RuleFixedSplit:
		return "fixed-split"
	case RuleSenderBiased:
		return "sender-biased"
	default:
		return fmt.Sprintf("Rule(%d)", int(r))
	}
}

// Options configures the admission controller. The zero value selects the
// paper's defaults (β = 0.5, proportional rule).
type Options struct {
	// Beta is the interpolation knob of Eq. 35–36: 0 allocates the minimum
	// needed, 1 the maximum needed. Defaults to 0.5.
	Beta float64
	// BetaSet marks Beta as explicitly chosen; allows Beta = 0.
	BetaSet bool
	// HMinAbs is H^min_abs: the smallest allocation worth granting (frames
	// shorter than this waste the ring in per-frame overhead). Defaults to
	// 50 µs.
	HMinAbs float64
	// SearchIters bounds each binary search (default 12).
	SearchIters int
	// EqualTolerance is the relative tolerance for the "same delays as the
	// maximum allocation" test of Eq. 31–32 (default 10%: the quantized
	// Theorem 1 delays move in TTRT-sized steps, so a tight tolerance
	// inflates H^max_need without improving any delay).
	EqualTolerance float64
	// Rule selects the allocation segment (default RuleProportional).
	Rule Rule
	// Analysis tunes the underlying server analyses.
	Analysis AnalysisOptions
}

func (o Options) withDefaults() Options {
	if o.Beta == 0 && !o.BetaSet {
		o.Beta = 0.5
	}
	if o.HMinAbs <= 0 {
		o.HMinAbs = 50 * units.Microsecond
	}
	if o.SearchIters <= 0 {
		// Theorem 1 delays move in TTRT-sized quantization steps, so α
		// resolution beyond ~2^-12 cannot change any decision.
		o.SearchIters = 12
	}
	if o.EqualTolerance <= 0 {
		o.EqualTolerance = 0.10
	}
	return o
}

// Rejection reasons reported in Decision.Reason.
const (
	ReasonAdmitted      = "admitted"
	ReasonHostBusy      = "source host already originates a connection"
	ReasonNoBandwidth   = "insufficient synchronous bandwidth available"
	ReasonInfeasible    = "deadlines unsatisfiable even at maximum allocation"
	ReasonInvalidTarget = "invalid route"
)

// Decision reports the outcome of one admission request.
type Decision struct {
	// Admitted reports whether the connection was accepted and its
	// resources committed.
	Admitted bool
	// Reason explains a rejection (or states ReasonAdmitted).
	Reason string
	// HS and HR are the committed allocations (admitted only).
	HS, HR float64
	// HSMaxAvail and HRMaxAvail are Eq. 26–27 at request time.
	HSMaxAvail, HRMaxAvail float64
	// HSMinNeed/HRMinNeed and HSMaxNeed/HRMaxNeed bracket the β
	// interpolation (admitted only).
	HSMinNeed, HRMinNeed float64
	HSMaxNeed, HRMaxNeed float64
	// Delays maps every connection (existing and new) to its worst-case
	// end-to-end delay under the committed allocation (admitted only).
	Delays map[string]float64
	// Probes counts full-network feasibility evaluations performed.
	Probes int
	// Stages is the Eq. 7 per-server delay decomposition of the new
	// connection at the committed allocation. Present for admitted
	// decisions, except when numeric quantization forced the
	// segment-maximum fallback.
	Stages *Breakdown
	// Cache counts the analyzer cache traffic this decision generated.
	Cache CacheStats
}

// Controller is the connection admission controller of Section 5. It owns
// the admitted-connection set M and the per-ring synchronous-bandwidth
// bookkeeping. Controller is not safe for concurrent use: callers provide
// the serialization externally — signaling.Server holds its Controller in
// a field annotated "guarded by mu" and fafvet's guardedby analyzer checks
// every touch happens with that mutex held.
type Controller struct {
	net      *topo.Network
	analyzer *Analyzer
	opts     Options
	conns    map[string]*Connection
}

// NewController builds a CAC over the given network.
func NewController(net *topo.Network, opts Options) (*Controller, error) {
	if net == nil {
		return nil, errors.New("core: Controller requires a network")
	}
	opts = opts.withDefaults()
	if opts.Beta < 0 || opts.Beta > 1 {
		return nil, fmt.Errorf("core: beta %v must be in [0,1]", opts.Beta)
	}
	an, err := NewAnalyzer(net, opts.Analysis)
	if err != nil {
		return nil, err
	}
	return &Controller{net: net, analyzer: an, opts: opts, conns: make(map[string]*Connection)}, nil
}

// Network returns the controller's network.
func (c *Controller) Network() *topo.Network { return c.net }

// Options returns the effective options (defaults applied).
func (c *Controller) Options() Options { return c.opts }

// Connections returns the admitted connections sorted by id.
func (c *Controller) Connections() []*Connection {
	out := make([]*Connection, 0, len(c.conns))
	for _, conn := range c.conns {
		out = append(out, conn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Active returns the number of admitted connections.
func (c *Controller) Active() int { return len(c.conns) }

// SourceBusy reports whether some admitted connection already originates at
// the given host (the paper assumes at most one connection per host).
func (c *Controller) SourceBusy(h topo.HostID) bool {
	for _, conn := range c.conns {
		if conn.Src == h {
			return true
		}
	}
	return false
}

// Release tears down an admitted connection, freeing its synchronous
// bandwidth on both rings. It reports whether the connection existed.
func (c *Controller) Release(id string) bool {
	conn, ok := c.conns[id]
	if !ok {
		return false
	}
	delete(c.conns, id)
	if !c.net.Ring(conn.Src.Ring).Release(id) {
		// The connection was admitted, so its ring allocation must exist;
		// a miss means controller and ring bookkeeping have diverged.
		mBookkeepingErrors.Inc()
	}
	if conn.Route.CrossesBackbone {
		if !c.net.Ring(conn.Dst.Ring).Release(id) {
			mBookkeepingErrors.Inc()
		}
	}
	c.analyzer.Forget(id)
	mReleases.Inc()
	gActive.Set(float64(len(c.conns)))
	return true
}

// allocation is one point on the H_S–H_R plane.
type allocation struct{ hs, hr float64 }

// segment is the search line of the CAC: P(α) = p0 + α·(p1 − p0).
type segment struct{ p0, p1 allocation }

func (s segment) at(alpha float64) allocation {
	return allocation{
		hs: s.p0.hs + alpha*(s.p1.hs-s.p0.hs),
		hr: s.p0.hr + alpha*(s.p1.hr-s.p0.hr),
	}
}

// PreviewAdmission runs the full CAC algorithm for the specification but
// commits nothing: no bandwidth is reserved and the connection set is
// unchanged. Use it for capacity planning ("would this fit right now, and
// at what allocation?").
func (c *Controller) PreviewAdmission(spec ConnSpec) (Decision, error) {
	return c.decide(spec, false)
}

// RequestAdmission runs the CAC algorithm of Section 5.3 for the given
// specification: compute availability (Eq. 26–27), test feasibility at the
// maximum allocation, locate (H^min_need, H^max_need) by binary search along
// the allocation segment, and commit the β-interpolated allocation
// (Eq. 35–36). A non-nil error indicates an invalid request, not a
// rejection.
func (c *Controller) RequestAdmission(spec ConnSpec) (Decision, error) {
	return c.decide(spec, true)
}

// decide wraps decideInner with the observability the daemon exposes: the
// decision-latency span/histogram, outcome counters, and the per-decision
// cache-traffic diff the audit log reports.
func (c *Controller) decide(spec ConnSpec, commit bool) (Decision, error) {
	_, sp := obs.Start(context.Background(), "core.decide")
	before := c.analyzer.stats
	dec, err := c.decideInner(spec, commit)
	mDecideSeconds.Observe(sp.Seconds())
	sp.End()
	dec.Cache = c.analyzer.stats.Sub(before)
	switch {
	case err != nil:
		mDecisionErrors.Inc()
	case dec.Admitted:
		mAdmitted.Inc()
	default:
		mRejected.Inc()
	}
	return dec, err
}

// decideInner implements both the committing and the preview paths. The
// algorithm itself lives in decideAgainst (shared with the sharded
// pipeline); this wrapper supplies the controller's live view — its admitted
// map and the network's real ring availabilities — and owns the state
// transitions a verdict triggers.
func (c *Controller) decideInner(spec ConnSpec, commit bool) (Decision, error) {
	if err := spec.Validate(); err != nil {
		return Decision{}, err
	}
	if _, dup := c.conns[spec.ID]; dup {
		return Decision{}, fmt.Errorf("core: connection %q already admitted", spec.ID)
	}
	if c.SourceBusy(spec.Src) {
		return Decision{Reason: ReasonHostBusy}, nil
	}
	route, err := c.net.Route(spec.Src, spec.Dst)
	if err != nil {
		return Decision{Reason: ReasonInvalidTarget}, nil
	}

	avail := func(ring int) float64 { return c.net.Ring(ring).Available() }
	dec, cand, err := decideAgainst(c.analyzer, c.opts, c.Connections(), avail, spec, route)
	if err != nil {
		return Decision{}, err
	}
	if !dec.Admitted {
		c.forgetCandidate(spec.ID)
		return dec, nil
	}
	if commit {
		if err := c.commit(cand, allocation{hs: dec.HS, hr: dec.HR}); err != nil {
			// The candidate was not admitted; clear its probe-time analyzer
			// state so a retry of the same id starts clean.
			c.forgetCandidate(spec.ID)
			return Decision{}, err
		}
	} else {
		c.forgetCandidate(spec.ID)
	}
	return dec, nil
}

// feasible evaluates Eq. 24–25: with the candidate at allocation a, do all
// worst-case delays (existing connections and the candidate) meet their
// deadlines?
func (c *Controller) feasible(cand *Connection, a allocation) (bool, map[string]float64) {
	probe := cand.clone()
	probe.HS, probe.HR = a.hs, a.hr
	conns := make([]*Connection, 0, len(c.conns)+1)
	for _, conn := range c.conns {
		conns = append(conns, conn)
	}
	conns = append(conns, probe)
	delays, err := c.analyzer.Delays(conns)
	if err != nil {
		// Structural errors cannot occur for specs validated at admission;
		// treat defensively as infeasible.
		return false, nil
	}
	return meetsDeadlines(conns[:len(conns)-1], cand, delays), delays
}

// commit admits the candidate at the chosen allocation, updating ring
// bookkeeping. It is transactional: either both ring allocations succeed and
// the candidate is recorded, or neither ring ends up charged and the
// candidate is left unmodified (a failed commit must not leave a phantom
// HS/HR on an object a caller may inspect or retry).
func (c *Controller) commit(cand *Connection, a allocation) error {
	if err := c.net.Ring(cand.Src.Ring).Allocate(cand.ID, a.hs); err != nil {
		return fmt.Errorf("core: committing sender allocation: %w", err)
	}
	if cand.Route.CrossesBackbone {
		if err := c.net.Ring(cand.Dst.Ring).Allocate(cand.ID, a.hr); err != nil {
			if !c.net.Ring(cand.Src.Ring).Release(cand.ID) {
				// The sender allocation succeeded two lines up; failing to
				// roll it back means the ring is charged for a phantom.
				mBookkeepingErrors.Inc()
			}
			return fmt.Errorf("core: committing receiver allocation: %w", err)
		}
	}
	cand.HS, cand.HR = a.hs, a.hr
	c.conns[cand.ID] = cand
	gActive.Set(float64(len(c.conns)))
	return nil
}

// forgetCandidate clears probe-time cache entries for a rejected candidate
// so a later reuse of the id with different traffic starts clean.
func (c *Controller) forgetCandidate(id string) {
	if _, admitted := c.conns[id]; !admitted {
		c.analyzer.Forget(id)
	}
}

// FeasibleAllocation reports whether granting (hs, hr) to the candidate
// would satisfy every deadline (Eq. 24–25), without admitting anything.
// It exists for feasible-region exploration (Theorems 3–4) and testing.
func (c *Controller) FeasibleAllocation(spec ConnSpec, hs, hr float64) (bool, error) {
	if err := spec.Validate(); err != nil {
		return false, err
	}
	route, err := c.net.Route(spec.Src, spec.Dst)
	if err != nil {
		return false, err
	}
	cand := &Connection{ConnSpec: spec, Route: route}
	ok, _ := c.feasible(cand, allocation{hs: hs, hr: hr})
	return ok, nil
}

// DelayReport returns the current worst-case delay of every admitted
// connection.
func (c *Controller) DelayReport() (map[string]float64, error) {
	return c.analyzer.Delays(c.Connections())
}

// BreakdownFor returns the per-server delay decomposition of an admitted
// connection.
func (c *Controller) BreakdownFor(id string) (Breakdown, error) {
	if _, ok := c.conns[id]; !ok {
		return Breakdown{}, fmt.Errorf("core: unknown connection %q", id)
	}
	return c.analyzer.Breakdown(c.Connections(), id)
}

// BufferRequirement reports, per admitted connection, the worst-case MAC
// backlogs of Theorem 1 (Eq. 10): how much buffer the sender host and the
// receiving interface device must provision for loss-free operation.
type BufferRequirement struct {
	ConnID                       string
	SrcBufferBits, DstBufferBits float64
}

// BufferReport returns the buffer requirements of every admitted connection,
// sorted by connection id.
func (c *Controller) BufferReport() ([]BufferRequirement, error) {
	conns := c.Connections()
	out := make([]BufferRequirement, 0, len(conns))
	for _, conn := range conns {
		bd, err := c.analyzer.Breakdown(conns, conn.ID)
		if err != nil {
			return nil, err
		}
		out = append(out, BufferRequirement{
			ConnID:        conn.ID,
			SrcBufferBits: bd.SrcBufferBits,
			DstBufferBits: bd.DstBufferBits,
		})
	}
	return out, nil
}
