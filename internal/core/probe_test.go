package core

import (
	"math"
	"testing"
)

// TestProbeSessionMatchesFullEvaluation is the safety net of the probe
// optimization: for a range of candidate allocations, the session's delays
// must equal a from-scratch full-network evaluation exactly.
func TestProbeSessionMatchesFullEvaluation(t *testing.T) {
	ctl := loadedController(t)
	net := ctl.Network()
	existing := ctl.Connections()

	cand := testConnOn(t, net, "probe", 0, 0, 1, 0, 0, 0)
	session, err := ctl.analyzer.NewProbeSession(existing, cand)
	if err != nil {
		t.Fatal(err)
	}

	reference, err := NewAnalyzer(net, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, alloc := range [][2]float64{
		{0.3e-3, 0.3e-3}, // below stability: infinite
		{0.6e-3, 0.6e-3},
		{1e-3, 1.4e-3},
		{2.5e-3, 2.5e-3},
	} {
		got, err := session.Delays(alloc[0], alloc[1])
		if err != nil {
			t.Fatal(err)
		}
		probe := cand.clone()
		probe.HS, probe.HR = alloc[0], alloc[1]
		want, err := reference.Delays(append(append([]*Connection{}, existing...), probe))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("alloc %v: %d delays, want %d", alloc, len(got), len(want))
		}
		for id, w := range want {
			g := got[id]
			if math.IsInf(w, 1) != math.IsInf(g, 1) {
				t.Fatalf("alloc %v, conn %s: got %v, want %v", alloc, id, g, w)
			}
			if !math.IsInf(w, 1) && math.Abs(g-w) > 1e-12*math.Max(1, w) {
				t.Fatalf("alloc %v, conn %s: got %v, want %v", alloc, id, g, w)
			}
		}
	}
}

// TestProbeSessionSameRingCandidate: a candidate that never leaves its ring
// taints no ports, so every existing connection is reused.
func TestProbeSessionSameRingCandidate(t *testing.T) {
	ctl := loadedController(t)
	net := ctl.Network()
	existing := ctl.Connections()
	cand := testConnOn(t, net, "probe", 2, 0, 2, 3, 0, 0)
	session, err := ctl.analyzer.NewProbeSession(existing, cand)
	if err != nil {
		t.Fatal(err)
	}
	if session.Affected() != 0 {
		t.Errorf("same-ring candidate affected %d connections, want 0", session.Affected())
	}
	got, err := session.Delays(1e-3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(existing)+1 {
		t.Errorf("delays = %d entries, want %d", len(got), len(existing)+1)
	}
}

// TestProbeSessionReducesWork: the session must classify at least one
// connection as unaffected when routes are disjoint.
func TestProbeSessionReducesWork(t *testing.T) {
	ctl := newController(t, Options{})
	// Two connections with fully disjoint port sets: 0→1 and 2→0 share no
	// directed uplink/inter-switch/downlink with a candidate 1→2.
	for i, pair := range [][4]int{{0, 0, 1, 0}, {2, 0, 0, 2}} {
		spec := testSpec(t, fmtID("bg", i), pair[0], pair[1], pair[2], pair[3])
		dec, err := ctl.RequestAdmission(spec)
		if err != nil || !dec.Admitted {
			t.Fatalf("setup %d: %v %v", i, err, dec.Reason)
		}
	}
	cand := testConnOn(t, ctl.Network(), "probe", 1, 1, 2, 1, 0, 0)
	session, err := ctl.analyzer.NewProbeSession(ctl.Connections(), cand)
	if err != nil {
		t.Fatal(err)
	}
	// Route 1→2 uses id1:up, sw1->sw2, sw2->id2; bg0 (0→1) uses id0:up,
	// sw0->sw1, sw1->id1; bg1 (2→0) uses id2:up, sw2->sw0, sw0->id0.
	// No overlap → both unaffected.
	if session.Affected() != 0 {
		t.Errorf("Affected = %d, want 0 for disjoint routes", session.Affected())
	}
}
