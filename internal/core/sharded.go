package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"fafnet/internal/fddi"
	"fafnet/internal/obs"
	"fafnet/internal/topo"
)

// Sharded is the horizontally scaled admission pipeline: the same CAC
// algorithm as Controller (both call decideAgainst), restructured so
// decisions run concurrently. The single controller mutex and its in-place
// network bookkeeping are replaced by three mechanisms:
//
//   - Per-ring shard controllers. Each FDDI segment's H-budget ledger lives
//     in its own shard with its own mutex, so charging the sender ring never
//     contends with charging an unrelated receiver ring. Shard locks are
//     leaves: the pipeline never holds two at once (a two-ring admission
//     touches them strictly one at a time, in ascending ring order), which
//     keeps the fafvet lockorder graph acyclic even though every shard
//     shares the one mutex field.
//
//   - Immutable admitted-state snapshots. The admitted set, per-ring
//     committed availability, and the state fingerprint are published as a
//     copy-on-write snapshot behind an atomic pointer. Analysis — the
//     expensive part, milliseconds of probing — runs against a snapshot with
//     no lock held, on an analyzer checked out from a fixed lane pool.
//     Commits are optimistic: a decision computed against snapshot S commits
//     only if S is still current; otherwise the world changed mid-analysis
//     and the decision re-runs against the fresh snapshot (Eq. 24–25 demand
//     every admitted connection's delay be re-verified, and a stale snapshot
//     can no longer prove that).
//
//   - An exact verdict cache. The CAC verdict is a pure function of the
//     admitted multiset of (endpoints, traffic, H_S, H_R) and the candidate
//     specification — connection ids name decisions but cannot change them —
//     so verdicts are cached under the (state hash, spec fingerprint) key
//     from fingerprint.go. Under admission churn the state hash cycles back
//     to previously seen values every time a release undoes an admission,
//     and a whole class of same-shape candidates then resolves with zero
//     probes. Concurrent misses on one key single-flight: followers wait for
//     the leader's analysis instead of duplicating it, which is what batches
//     a burst of same-class candidates into one probe.
//
// Lock ordering: commitMu → shard.mu, commitMu → (audit record callback).
// cacheMu and shard.mu are leaves. Analyzer lanes are a channel, not a
// lock, and are never held across a commit on the optimistic path.
type Sharded struct {
	net  *topo.Network
	opts Options

	// lanes is the analyzer pool. Each lane owns private analysis caches;
	// checking one out grants exclusive use until it is returned.
	lanes chan *Analyzer

	// shards holds one budget ledger per FDDI segment, indexed by ring.
	shards []*shard

	// commitMu serializes state transitions: two-phase commits, releases,
	// and restores. Analysis never runs under it on the optimistic path.
	// snap is only Stored while commitMu is held (Loads are lock-free).
	commitMu sync.Mutex
	snap     atomic.Pointer[snapState]

	cacheMu sync.Mutex
	// cache is the verdict cache and its single-flight table: an entry with
	// an open done channel is a computation in flight. guarded by cacheMu.
	cache map[verdictKey]*verdictEntry
}

// shard owns one ring's synchronous-bandwidth ledger. Reservations are the
// first phase of a two-ring commit: bandwidth is charged to the ledger but
// marked pending, so an abort can roll it back without touching committed
// state. All reservations resolve (confirm or abort) before their commit
// critical section ends, so pending mass is zero whenever commitMu is free.
type shard struct {
	ring int
	mu   sync.Mutex
	// budget is the ring's private H-budget ledger (same arithmetic as the
	// live network ring the serialized Controller charges). guarded by mu.
	budget *fddi.Ring
	// pending maps reservation ids to the bandwidth charged but not yet
	// committed. guarded by mu.
	pending map[string]float64
	// pendingSum is the total pending mass, maintained so committed
	// availability is budget availability plus pendingSum. guarded by mu.
	pendingSum float64
}

// reserve charges h to the ledger as a pending reservation.
func (s *shard) reserve(id string, h float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.budget.Allocate(id, h); err != nil {
		return err
	}
	s.pending[id] = h
	s.pendingSum += h
	return nil
}

// abort rolls back a pending reservation.
func (s *shard) abort(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.pending[id]
	if !ok {
		return
	}
	delete(s.pending, id)
	s.pendingSum -= h
	if !s.budget.Release(id) {
		mBookkeepingErrors.Inc()
	}
}

// confirm promotes a pending reservation to committed state.
func (s *shard) confirm(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.pending[id]
	if !ok {
		// The reservation was made a few lines up in the same commit
		// sequence; a miss means the two-phase bookkeeping diverged.
		mBookkeepingErrors.Inc()
		return
	}
	delete(s.pending, id)
	s.pendingSum -= h
}

// releaseCommitted frees a committed allocation, reporting whether it
// existed.
func (s *shard) releaseCommitted(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.budget.Release(id)
}

// availCommitted returns the availability counting only committed
// allocations: pending reservations are added back so in-flight two-phase
// commits never distort what a concurrent analysis sees as free.
func (s *shard) availCommitted() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.budget.Available() + s.pendingSum
}

// utilization returns the committed allocated fraction of the shard's
// usable budget.
func (s *shard) utilization() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	alloc := s.budget.Allocated() - s.pendingSum
	usable := s.budget.Allocated() + s.budget.Available()
	if usable <= 0 {
		return 0
	}
	return alloc / usable
}

// snapState is one immutable published view of the admitted state. Every
// field is read-only after publication; commits build a fresh snapState.
type snapState struct {
	// seq increments with every published transition.
	seq uint64
	// conns is the admitted set sorted by id.
	conns []*Connection
	// byID indexes conns.
	byID map[string]*Connection
	// busy maps each source host that already originates a connection to
	// that connection's id.
	busy map[topo.HostID]string
	// avail is the committed synchronous-bandwidth availability per ring.
	avail []float64
	// hash is the multiset fingerprint of the admitted set; meaningful only
	// when unhashable is zero.
	hash stateHash
	// unhashable counts admitted connections whose spec has no fingerprint;
	// any such connection disables the verdict cache until released.
	unhashable int
}

// verdictKey identifies one decision problem: the admitted-state hash plus
// the candidate's specification fingerprint.
type verdictKey struct {
	state stateHash
	spec  fingerprint
}

// verdictEntry is one cached (or in-flight) verdict. done is closed once
// the leader fills the remaining fields; settled flips true just before,
// giving evictLocked a lock-free doneness probe with no channel operation.
type verdictEntry struct {
	done    chan struct{}
	settled atomic.Bool
	// dec is the decision template: Delays stripped (its keys are the
	// leader's standing ids, meaningless to a later hit), Probes and Cache
	// zeroed (a hit costs none).
	dec Decision
	// candDelay is the candidate's own end-to-end delay (admit verdicts).
	candDelay float64
	err       error
}

// verdictCacheCap bounds the verdict cache; past it an arbitrary chunk of
// entries is evicted (recurrence under churn re-seeds hot keys in one miss).
const verdictCacheCap = 4096

// maxOptimisticRetries bounds how many times one admission re-analyzes
// after losing a commit race before falling back to deciding under the
// commit lock.
const maxOptimisticRetries = 16

// NewSharded builds the sharded pipeline over the given network topology.
// The network is used read-only (routing and ring configuration); bandwidth
// bookkeeping lives in the per-ring shards, so the same Options over the
// same topology make Sharded and Controller decide identically. lanes is
// the number of pooled analyzers (≤ 0 selects a GOMAXPROCS-based default).
func NewSharded(net *topo.Network, opts Options, lanes int) (*Sharded, error) {
	if net == nil {
		return nil, errors.New("core: Sharded requires a network")
	}
	opts = opts.withDefaults()
	if opts.Beta < 0 || opts.Beta > 1 {
		return nil, fmt.Errorf("core: beta %v must be in [0,1]", opts.Beta)
	}
	if lanes <= 0 {
		lanes = runtime.GOMAXPROCS(0)
		if lanes > 8 {
			lanes = 8
		}
	}
	p := &Sharded{
		net:   net,
		opts:  opts,
		lanes: make(chan *Analyzer, lanes),
		cache: make(map[verdictKey]*verdictEntry),
	}
	for i := 0; i < lanes; i++ {
		an, err := NewAnalyzer(net, opts.Analysis)
		if err != nil {
			return nil, err
		}
		p.lanes <- an
	}
	for i := 0; i < net.NumRings(); i++ {
		budget, err := fddi.NewRing(net.RingConfig(i))
		if err != nil {
			return nil, err
		}
		p.shards = append(p.shards, &shard{
			ring:    i,
			budget:  budget,
			pending: make(map[string]float64),
		})
	}
	avail := make([]float64, len(p.shards))
	for i, sh := range p.shards {
		avail[i] = sh.availCommitted()
	}
	p.snap.Store(&snapState{
		byID:  make(map[string]*Connection),
		busy:  make(map[topo.HostID]string),
		avail: avail,
	})
	return p, nil
}

// Network returns the pipeline's network topology.
func (p *Sharded) Network() *topo.Network { return p.net }

// Options returns the effective options (defaults applied).
func (p *Sharded) Options() Options { return p.opts }

// Active returns the number of admitted connections.
func (p *Sharded) Active() int { return len(p.snap.Load().conns) }

// Seq returns the published state-transition sequence number.
func (p *Sharded) Seq() uint64 { return p.snap.Load().seq }

// Connections returns the admitted connections sorted by id. The returned
// slice is the caller's; the *Connection values are shared and must be
// treated as read-only.
func (p *Sharded) Connections() []*Connection {
	conns := p.snap.Load().conns
	out := make([]*Connection, len(conns))
	copy(out, conns)
	return out
}

// SourceBusy reports whether some admitted connection already originates at
// the given host.
func (p *Sharded) SourceBusy(h topo.HostID) bool {
	_, busy := p.snap.Load().busy[h]
	return busy
}

func (p *Sharded) acquireLane() *Analyzer   { return <-p.lanes }
func (p *Sharded) releaseLane(an *Analyzer) { p.lanes <- an }

// RequestAdmission runs the CAC algorithm of Section 5.3 and, on an admit
// verdict, commits the allocation through the two-phase shard protocol. A
// non-nil error indicates an invalid request, not a rejection. On a verdict
// cache hit, Decision.Delays contains only the candidate's entry.
func (p *Sharded) RequestAdmission(spec ConnSpec) (Decision, error) {
	return p.decideObserved(spec, true, nil)
}

// PreviewAdmission runs the full CAC algorithm but commits nothing.
func (p *Sharded) PreviewAdmission(spec ConnSpec) (Decision, error) {
	return p.decideObserved(spec, false, nil)
}

// RequestAdmissionAudited is RequestAdmission with an audit hook: record is
// invoked exactly once with the final outcome. For decisions that change
// state (admits) it runs inside the commit critical section, so the order
// of record invocations across connections equals the order their commits
// published — the invariant that makes audit-log replay reconstruct the
// identical admitted state. Rejections and errors invoke record outside any
// lock (replay skips them, so their interleaving is free).
func (p *Sharded) RequestAdmissionAudited(spec ConnSpec, record func(Decision, error)) (Decision, error) {
	return p.decideObserved(spec, true, record)
}

// PreviewAdmissionAudited is PreviewAdmission with the audit hook (always
// invoked outside locks: previews never change state).
func (p *Sharded) PreviewAdmissionAudited(spec ConnSpec, record func(Decision, error)) (Decision, error) {
	return p.decideObserved(spec, false, record)
}

// decideObserved wraps the sharded decision flow with the same
// observability the serialized controller emits, and guarantees the audit
// hook fires exactly once.
func (p *Sharded) decideObserved(spec ConnSpec, commit bool, record func(Decision, error)) (Decision, error) {
	_, sp := obs.Start(context.Background(), "core.decide")
	dec, recorded, err := p.decide(spec, commit, record)
	mDecideSeconds.Observe(sp.Seconds())
	sp.End()
	switch {
	case err != nil:
		mDecisionErrors.Inc()
	case dec.Admitted:
		mAdmitted.Inc()
	default:
		mRejected.Inc()
	}
	if record != nil && !recorded {
		record(dec, err)
	}
	return dec, err
}

// decide is the optimistic decision loop: analyze against the current
// snapshot with no lock held, then commit if the snapshot is still current,
// otherwise re-analyze. After maxOptimisticRetries lost races it pins the
// world by deciding under commitMu.
func (p *Sharded) decide(spec ConnSpec, commit bool, record func(Decision, error)) (Decision, bool, error) {
	if err := spec.Validate(); err != nil {
		return Decision{}, false, err
	}
	route, err := p.net.Route(spec.Src, spec.Dst)
	if err != nil {
		return Decision{Reason: ReasonInvalidTarget}, false, nil
	}
	for attempt := 0; attempt < maxOptimisticRetries; attempt++ {
		snap := p.snap.Load()
		dec, reject, err := preflight(snap, p.opts, spec, route)
		if err != nil || reject {
			return dec, false, err
		}
		dec, cand, err := p.analyze(snap, spec, route)
		if err != nil {
			return Decision{}, false, err
		}
		if !dec.Admitted || !commit {
			// Rejections and previews change no state: the decision
			// linearizes at the moment snap was read.
			return dec, false, nil
		}
		if recorded, ok := p.commitAdmit(snap, cand, dec, record); ok {
			return dec, recorded, nil
		}
		mShardCommitRetries.Inc()
	}
	return p.decidePessimistic(spec, route, commit, record)
}

// preflight runs the cheap rejection gates against a snapshot: duplicate
// id, busy source host, availability floor. These are the fast paths a
// high-churn workload mostly exercises; none of them needs an analyzer.
func preflight(snap *snapState, opts Options, spec ConnSpec, route topo.Route) (Decision, bool, error) {
	if _, dup := snap.byID[spec.ID]; dup {
		return Decision{}, true, fmt.Errorf("core: connection %q already admitted", spec.ID)
	}
	if _, busy := snap.busy[spec.Src]; busy {
		return Decision{Reason: ReasonHostBusy}, true, nil
	}
	dec := Decision{HSMaxAvail: snap.avail[spec.Src.Ring]}
	if route.CrossesBackbone {
		dec.HRMaxAvail = snap.avail[spec.Dst.Ring]
	}
	if dec.HSMaxAvail < opts.HMinAbs ||
		(route.CrossesBackbone && dec.HRMaxAvail < opts.HMinAbs) {
		dec.Reason = ReasonNoBandwidth
		return dec, true, nil
	}
	return dec, false, nil
}

// analyze resolves the expensive part of one decision: verdict cache
// lookup, single-flight coordination, and on a miss the full probe-based
// algorithm on a pooled analyzer.
func (p *Sharded) analyze(snap *snapState, spec ConnSpec, route topo.Route) (Decision, *Connection, error) {
	key, usable := verdictKeyFor(snap, spec)
	if !usable {
		mVerdictSkips.Inc()
		return p.analyzeMiss(snap, spec, route)
	}
	p.cacheMu.Lock()
	if e, ok := p.cache[key]; ok {
		p.cacheMu.Unlock()
		<-e.done
		if e.err == nil {
			mVerdictHits.Inc()
			dec := e.dec
			if dec.Admitted {
				dec.Delays = map[string]float64{spec.ID: e.candDelay}
			}
			return dec, &Connection{ConnSpec: spec, Route: route}, nil
		}
		// The leader's analysis failed; fall through and compute fresh.
		return p.analyzeMiss(snap, spec, route)
	}
	e := &verdictEntry{done: make(chan struct{})}
	if len(p.cache) >= verdictCacheCap {
		p.evictLocked()
	}
	p.cache[key] = e
	p.cacheMu.Unlock()

	dec, cand, err := p.analyzeMiss(snap, spec, route)
	e.dec = dec
	e.dec.Delays = nil
	e.dec.Probes = 0
	e.dec.Cache = CacheStats{}
	e.candDelay = dec.Delays[spec.ID]
	e.err = err
	e.settled.Store(true)
	close(e.done)
	if err != nil {
		p.cacheMu.Lock()
		delete(p.cache, key)
		p.cacheMu.Unlock()
	}
	mVerdictMisses.Inc()
	return dec, cand, err
}

// verdictKeyFor builds the cache key for a decision problem, reporting
// whether caching is sound (every admitted spec and the candidate must
// fingerprint exactly).
func verdictKeyFor(snap *snapState, spec ConnSpec) (verdictKey, bool) {
	if snap.unhashable > 0 {
		return verdictKey{}, false
	}
	fp, ok := specFingerprint(spec)
	if !ok {
		return verdictKey{}, false
	}
	return verdictKey{state: snap.hash, spec: fp}, true
}

// evictLocked drops an arbitrary eighth of the cache. Called with cacheMu
// held.
func (p *Sharded) evictLocked() {
	drop := verdictCacheCap / 8
	for k, e := range p.cache {
		if !e.settled.Load() {
			continue // never evict an in-flight computation
		}
		delete(p.cache, k)
		drop--
		if drop == 0 {
			return
		}
	}
}

// analyzeMiss runs the full CAC algorithm on a pooled analyzer against the
// snapshot's admitted set and committed availabilities.
func (p *Sharded) analyzeMiss(snap *snapState, spec ConnSpec, route topo.Route) (Decision, *Connection, error) {
	an := p.acquireLane()
	defer p.releaseLane(an)
	return p.analyzeOn(an, snap, spec, route)
}

// analyzeOn is analyzeMiss on an already-held lane.
func (p *Sharded) analyzeOn(an *Analyzer, snap *snapState, spec ConnSpec, route topo.Route) (Decision, *Connection, error) {
	before := an.stats
	avail := func(ring int) float64 { return snap.avail[ring] }
	dec, cand, err := decideAgainst(an, p.opts, snap.conns, avail, spec, route)
	dec.Cache = an.stats.Sub(before)
	return dec, cand, err
}

// commitAdmit is the two-phase commit: reserve the candidate's bandwidth on
// the sender and receiver shards (ascending ring order, one lock at a
// time), then — with the snapshot verified still current — confirm the
// reservations and publish the successor snapshot. A stale snapshot aborts
// every reservation and reports false so the caller re-decides.
func (p *Sharded) commitAdmit(snap *snapState, cand *Connection, dec Decision, record func(Decision, error)) (recorded, ok bool) {
	p.commitMu.Lock()
	defer p.commitMu.Unlock()
	if p.snap.Load() != snap {
		return false, false
	}
	if err := p.reserveBoth(cand, dec.HS, dec.HR); err != nil {
		// Unreachable when the snapshot is current: the decision capped its
		// allocation at this exact ledger's availability. Defensively treat
		// as a lost race.
		return false, false
	}
	p.confirmBoth(cand)
	cand.HS, cand.HR = dec.HS, dec.HR
	p.publishAdd(snap, cand)
	mShardCommits.Inc()
	if record != nil {
		record(dec, nil)
		recorded = true
	}
	return recorded, true
}

// reserveBoth places the candidate's reservations in ascending ring order.
// On a two-ring admission where the second reservation fails, the first is
// rolled back — the transactional guarantee the serialized controller's
// commit gives.
func (p *Sharded) reserveBoth(cand *Connection, hs, hr float64) error {
	if !cand.Route.CrossesBackbone {
		return p.shards[cand.Src.Ring].reserve(cand.ID, hs)
	}
	first, fh := cand.Src.Ring, hs
	second, sh := cand.Dst.Ring, hr
	if second < first {
		first, fh, second, sh = second, sh, first, fh
	}
	if err := p.shards[first].reserve(cand.ID, fh); err != nil {
		return err
	}
	if err := p.shards[second].reserve(cand.ID, sh); err != nil {
		p.shards[first].abort(cand.ID)
		mShardReserveAborts.Inc()
		return err
	}
	return nil
}

// confirmBoth promotes the candidate's reservations to committed state.
func (p *Sharded) confirmBoth(cand *Connection) {
	p.shards[cand.Src.Ring].confirm(cand.ID)
	if cand.Route.CrossesBackbone {
		p.shards[cand.Dst.Ring].confirm(cand.ID)
	}
}

// decidePessimistic decides while holding commitMu, pinning the snapshot:
// no concurrent commit can invalidate the analysis, so one pass suffices.
// The lane is acquired before commitMu (a lane holder on the optimistic
// path never waits on commitMu, so the acquisition cannot deadlock).
func (p *Sharded) decidePessimistic(spec ConnSpec, route topo.Route, commit bool, record func(Decision, error)) (Decision, bool, error) {
	mShardPessimisticCommits.Inc()
	an := p.acquireLane()
	defer p.releaseLane(an)
	p.commitMu.Lock()
	defer p.commitMu.Unlock()
	snap := p.snap.Load()
	dec, reject, err := preflight(snap, p.opts, spec, route)
	if err != nil || reject {
		return dec, false, err
	}
	dec, cand, err := p.analyzeOn(an, snap, spec, route)
	if err != nil {
		return Decision{}, false, err
	}
	if !dec.Admitted || !commit {
		return dec, false, nil
	}
	if err := p.reserveBoth(cand, dec.HS, dec.HR); err != nil {
		return Decision{}, false, fmt.Errorf("core: sharded commit: %w", err)
	}
	p.confirmBoth(cand)
	cand.HS, cand.HR = dec.HS, dec.HR
	p.publishAdd(snap, cand)
	mShardCommits.Inc()
	recorded := false
	if record != nil {
		record(dec, nil)
		recorded = true
	}
	return dec, recorded, nil
}

// Release tears down an admitted connection, freeing its bandwidth on both
// shards. It reports whether the connection existed.
func (p *Sharded) Release(id string) bool {
	return p.release(id, nil)
}

// ReleaseAudited is Release with an audit hook invoked inside the commit
// critical section (releases change state, so their audit order must equal
// their commit order).
func (p *Sharded) ReleaseAudited(id string, record func(found bool)) bool {
	return p.release(id, record)
}

func (p *Sharded) release(id string, record func(bool)) bool {
	p.commitMu.Lock()
	defer p.commitMu.Unlock()
	snap := p.snap.Load()
	conn, ok := snap.byID[id]
	if !ok {
		if record != nil {
			record(false)
		}
		return false
	}
	if !p.shards[conn.Src.Ring].releaseCommitted(id) {
		mBookkeepingErrors.Inc()
	}
	if conn.Route.CrossesBackbone {
		if !p.shards[conn.Dst.Ring].releaseCommitted(id) {
			mBookkeepingErrors.Inc()
		}
	}
	p.publishRemove(snap, conn)
	mReleases.Inc()
	if record != nil {
		record(true)
	}
	return true
}

// Restore loads an admitted set wholesale — the -recover path, after a
// serialized replay of the audit log reconstructed the connections. The
// pipeline must be empty.
func (p *Sharded) Restore(conns []*Connection) error {
	p.commitMu.Lock()
	defer p.commitMu.Unlock()
	snap := p.snap.Load()
	if len(snap.conns) != 0 {
		return errors.New("core: Restore requires an empty pipeline")
	}
	for _, conn := range conns {
		if err := p.reserveBoth(conn, conn.HS, conn.HR); err != nil {
			return fmt.Errorf("core: restoring %q: %w", conn.ID, err)
		}
		p.confirmBoth(conn)
		snap = nextSnap(snap, p.shardAvail(), append(append([]*Connection{}, snap.conns...), conn))
		p.snap.Store(snap)
	}
	p.refreshGauges(snap)
	return nil
}

// publishAdd publishes the successor snapshot with cand admitted.
func (p *Sharded) publishAdd(snap *snapState, cand *Connection) {
	conns := make([]*Connection, 0, len(snap.conns)+1)
	conns = append(conns, snap.conns...)
	conns = append(conns, cand)
	p.snap.Store(nextSnap(snap, p.shardAvail(), conns))
	p.refreshGauges(p.snap.Load())
}

// publishRemove publishes the successor snapshot with conn released.
func (p *Sharded) publishRemove(snap *snapState, conn *Connection) {
	conns := make([]*Connection, 0, len(snap.conns)-1)
	for _, c := range snap.conns {
		if c.ID != conn.ID {
			conns = append(conns, c)
		}
	}
	p.snap.Store(nextSnap(snap, p.shardAvail(), conns))
	p.refreshGauges(p.snap.Load())
}

// shardAvail samples every shard's committed availability.
func (p *Sharded) shardAvail() []float64 {
	avail := make([]float64, len(p.shards))
	for i, sh := range p.shards {
		avail[i] = sh.availCommitted()
	}
	return avail
}

// nextSnap builds the successor snapshot for the given admitted set. The
// state hash is recomputed from scratch — the admitted set is small (the
// paper's availability bound caps concurrent connections long before the
// snapshot copy costs anything), and recomputation keeps the hash
// trivially in sync with the multiset it names.
func nextSnap(prev *snapState, avail []float64, conns []*Connection) *snapState {
	sort.Slice(conns, func(i, j int) bool { return conns[i].ID < conns[j].ID })
	next := &snapState{
		seq:   prev.seq + 1,
		conns: conns,
		byID:  make(map[string]*Connection, len(conns)),
		busy:  make(map[topo.HostID]string, len(conns)),
		avail: avail,
	}
	for _, c := range conns {
		next.byID[c.ID] = c
		next.busy[c.Src] = c.ID
		fp, ok := connFingerprint(c)
		if !ok {
			next.unhashable++
			continue
		}
		next.hash.add(fp)
	}
	return next
}

// refreshGauges updates the shard balance gauges and the active-connection
// gauge from a freshly published snapshot.
func (p *Sharded) refreshGauges(snap *snapState) {
	gActive.Set(float64(len(snap.conns)))
	minU, maxU := 1.0, 0.0
	for _, sh := range p.shards {
		u := sh.utilization()
		if u < minU {
			minU = u
		}
		if u > maxU {
			maxU = u
		}
	}
	if minU > maxU {
		minU = maxU
	}
	gShardUtilMax.Set(maxU)
	gShardImbalance.Set(maxU - minU)
}

// DelayReport returns the current worst-case delay of every admitted
// connection, computed against the live snapshot on a pooled analyzer.
func (p *Sharded) DelayReport() (map[string]float64, error) {
	snap := p.snap.Load()
	an := p.acquireLane()
	defer p.releaseLane(an)
	return an.Delays(snap.conns)
}

// BufferReport returns the buffer requirements of every admitted
// connection, sorted by connection id.
func (p *Sharded) BufferReport() ([]BufferRequirement, error) {
	snap := p.snap.Load()
	an := p.acquireLane()
	defer p.releaseLane(an)
	out := make([]BufferRequirement, 0, len(snap.conns))
	for _, conn := range snap.conns {
		bd, err := an.Breakdown(snap.conns, conn.ID)
		if err != nil {
			return nil, err
		}
		out = append(out, BufferRequirement{
			ConnID:        conn.ID,
			SrcBufferBits: bd.SrcBufferBits,
			DstBufferBits: bd.DstBufferBits,
		})
	}
	return out, nil
}

// BatchResult pairs one batch member's decision with its error.
type BatchResult struct {
	ID       string
	Decision Decision
	Err      error
}

// RequestAdmissionBatch admits a batch of candidates, returning results in
// input order. Members are processed grouped by specification class so the
// verdict cache amortizes one probe across a run of same-class candidates:
// a rejection class resolves its whole run from the first member's probe,
// and an admission re-probes only when a previous member's commit truly
// changed the bandwidth picture (anything else would violate Eq. 24–25).
func (p *Sharded) RequestAdmissionBatch(specs []ConnSpec) []BatchResult {
	out := make([]BatchResult, len(specs))
	for _, i := range classOrder(specs) {
		dec, err := p.RequestAdmission(specs[i])
		out[i] = BatchResult{ID: specs[i].ID, Decision: dec, Err: err}
	}
	return out
}

// PreviewAdmissionBatch evaluates a batch of candidates without committing
// anything, grouped by class like RequestAdmissionBatch — and because
// previews leave the admitted state untouched, every same-class member
// after the first resolves from the verdict cache. The optional record
// callback observes each member's outcome in evaluation order; results come
// back in input order.
func (p *Sharded) PreviewAdmissionBatch(specs []ConnSpec, record func(i int, dec Decision, err error)) []BatchResult {
	out := make([]BatchResult, len(specs))
	for _, i := range classOrder(specs) {
		var cb func(Decision, error)
		if record != nil {
			i := i
			cb = func(dec Decision, err error) { record(i, dec, err) }
		}
		dec, err := p.PreviewAdmissionAudited(specs[i], cb)
		out[i] = BatchResult{ID: specs[i].ID, Decision: dec, Err: err}
	}
	return out
}

// classOrder returns batch indices sorted stably by specification class so
// same-class members run back to back (the order the verdict cache rewards).
func classOrder(specs []ConnSpec) []int {
	order := make([]int, len(specs))
	for i := range order {
		order[i] = i
	}
	class := make([]fingerprint, len(specs))
	for i, s := range specs {
		class[i], _ = specFingerprint(s)
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := class[order[a]], class[order[b]]
		if ca.a != cb.a {
			return ca.a < cb.a
		}
		return ca.b < cb.b
	})
	return order
}
