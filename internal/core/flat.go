package core

import (
	"slices"
	"sort"

	"fafnet/internal/topo"
	"fafnet/internal/traffic"
)

// flatHorizon is the initial window (seconds) over which the analyzer
// materializes flat breakpoint arrays: a few TTRTs, enough for the busy
// intervals of lightly loaded scenarios, while keeping freshly lowered
// arrays small. Scans that walk deeper call EnsureHorizon first, which
// re-lowers the array out to the scanned depth in place, so the constant
// only sets the cheap starting size — evaluations beyond the current window
// delegate to the exact tail chain either way, trading speed, never
// correctness.
const flatHorizon = 0.025

// flatRebuildDeltas bounds how many incremental add/subtract updates a
// materialized per-port aggregate accumulates before it is rebuilt from its
// member flats. Each delta leaves float dust at the cancelled breakpoints
// (compacted away, but worth refreshing) and can only shrink the shared
// horizon, so a periodic rebuild bounds both drifts.
const flatRebuildDeltas = 64

// flatCompactTol is the relative tolerance for compacting delta-updated
// aggregates: generous enough to drop the ~1-ulp residue of an add/subtract
// cancellation, orders of magnitude below units.RelTol so compaction never
// moves a value the analyses could see.
const flatCompactTol = 1e-12

// flatEnabled reports whether the flat fast path applies: the lowering
// operates on fused chains, so DisableFusion implies DisableFlat.
func (a *Analyzer) flatEnabled() bool { return !a.opts.DisableFusion && !a.opts.DisableFlat }

// flatEntering returns connection c's envelope entering the stage-th port as
// a flat breakpoint array, or nil when the chain has no exact lowering (the
// caller keeps the closure-tree path). Results — including the nil verdict —
// are memoized per evaluation; stage-0 flats are additionally cached across
// evaluations next to the fused envelope they lower.
func (ev *evaluation) flatEntering(c *Connection, stage int) *traffic.Flat {
	if !ev.a.flatEnabled() {
		return nil
	}
	key := envKey{connID: c.ID, stage: stage}
	if f, ok := ev.flatMemo[key]; ok {
		return f
	}
	f := ev.buildFlat(c, stage)
	ev.flatMemo[key] = f
	return f
}

func (ev *evaluation) buildFlat(c *Connection, stage int) *traffic.Flat {
	env, err := ev.envelopeEntering(c, stage)
	if err != nil {
		return nil
	}
	if stage == 0 {
		// envelopeEntering has just filled (or validated) the stage-0 cache
		// entry for exactly this allocation; the lowered form lives beside
		// the fused chain so later evaluations reuse the same array — which
		// also keeps the pointer stable, the identity the incremental port
		// aggregates diff against.
		byH := ev.a.stage0Cache[c.ID]
		e, ok := byH[c.HS]
		if !ok {
			return nil
		}
		if !e.flatTried {
			e.flat = traffic.Flatten(e.env, flatHorizon)
			e.flatTried = true
			byH[c.HS] = e
			if e.flat != nil {
				mFlatLowerings.Inc()
			} else {
				mFlatFallbacks.Inc()
			}
		}
		return e.flat
	}
	prev := ev.flatEntering(c, stage-1)
	if prev == nil {
		return nil
	}
	if _, err := ev.muxDelay(c.Route.Ports[stage-1]); err != nil {
		return nil
	}
	// The stage-k flat is a pure function of the sender allocation and the
	// upstream port delays; cache it across evaluations keyed by exactly
	// those inputs. An admission bisection (and the admit/release cycle of a
	// CAC) revisits the same global states, so the same keys — and the same
	// pointer-stable arrays, which portMux and dstCache key results by —
	// recur probe after probe.
	ds := make([]float64, stage)
	for i := range ds {
		ds[i], _ = ev.muxDelay(c.Route.Ports[i]) // memoized; error handled above
	}
	entries := ev.a.stageFlats[c.ID]
	for i := range entries {
		if e := &entries[i]; e.stage == stage && e.h == c.HS && slices.Equal(e.ds, ds) {
			return e.flat
		}
	}
	f := prev.ShiftCap(ds[stage-1], ev.a.net.PortCapacity(), flatHorizon, env)
	if f != nil {
		if len(entries) >= maxStageFlatEntries {
			entries = append(entries[:0], entries[len(entries)/2:]...)
		}
		ev.a.stageFlats[c.ID] = append(entries, stageFlatEntry{stage: stage, h: c.HS, ds: ds, flat: f})
	}
	return f
}

// portAggState is one materialized per-port aggregate envelope: the flat sum
// of the member flats most recently fed to the port's mux analysis, plus the
// scratch array the delta updates ping-pong against.
type portAggState struct {
	members map[string]*traffic.Flat // member id → the flat its sum contains
	sum     *traffic.Flat
	scratch *traffic.Flat
	// tail is the reusable members-union tail installed on sum after every
	// update: beyond-window evaluations and breakpoint unions go through the
	// member flats' own caches instead of re-walking descriptor chains.
	tail   *traffic.MemberTail
	deltas int
}

// portAggregate returns the materialized aggregate envelope of port p over
// the given members, delta-updating the cached sum: members whose flat is
// unchanged (same array, guaranteed by the stage-0 cache's pointer
// stability) cost nothing, departed or changed members are subtracted, new
// ones added — so an admission probe, which changes only the candidate's
// allocation, costs one subtract and one add instead of a k-way re-sum, and
// admits/releases between sessions delta the same materialized state.
// The sum's tail is the members-union over the flats themselves, so
// beyond-window evaluations and breakpoint unions ride the members' caches;
// when nothing changed since the last call the sum — including its cached
// breakpoint list — is returned untouched.
func (a *Analyzer) portAggregate(p topo.PortID, ids []string, flats []*traffic.Flat) *traffic.Flat {
	st := a.portAgg[p]
	if st == nil {
		st = &portAggState{
			members: make(map[string]*traffic.Flat, len(ids)+1),
			tail:    traffic.NewMemberTail(),
		}
		a.portAgg[p] = st
	}

	// Diff the wanted member set against the materialized one. Stale ids are
	// collected and sorted so the subtraction order — and with it the float
	// dust of the updates — is deterministic run to run.
	var stale []string
	for id, f := range st.members {
		keep := false
		for i, wid := range ids {
			if wid == id && flats[i] == f {
				keep = true
				break
			}
		}
		if !keep {
			stale = append(stale, id)
		}
	}
	fresh := 0
	for i, id := range ids {
		if st.members[id] != flats[i] {
			fresh++
		}
	}

	// Unchanged member set: the materialized sum — tail, cached breakpoint
	// union and segment cursor included — is current. The grid assembly of
	// the mux scan then costs a prefix lookup, not a chain walk.
	if st.sum != nil && len(stale)+fresh == 0 {
		return st.sum
	}

	retail := func() {
		members := make([]traffic.Descriptor, len(flats))
		for i, f := range flats {
			members[i] = f
		}
		st.tail.SetMembers(members...)
		st.sum.Retail(st.tail)
	}

	if st.sum == nil || st.deltas+len(stale)+fresh > flatRebuildDeltas || len(stale)+fresh > len(ids)/2+1 {
		st.sum = traffic.SumFlats(zeroTail{}, flats...)
		st.scratch = nil
		st.deltas = 0
		clear(st.members)
		for i, id := range ids {
			st.members[id] = flats[i]
		}
		retail()
		mFlatAggRebuilds.Inc()
		return st.sum
	}

	if st.scratch == nil {
		st.scratch = &traffic.Flat{}
	}
	sort.Strings(stale)
	for _, id := range stale {
		traffic.SubInto(st.scratch, st.sum, st.members[id])
		st.sum, st.scratch = st.scratch, st.sum
		delete(st.members, id)
		st.deltas++
		mFlatAggDeltas.Inc()
	}
	for i, id := range ids {
		if st.members[id] == flats[i] {
			continue
		}
		traffic.SumInto(st.scratch, st.sum, flats[i])
		st.sum, st.scratch = st.scratch, st.sum
		st.members[id] = flats[i]
		st.deltas++
		mFlatAggDeltas.Inc()
	}
	// Cancelled breakpoints of departed members survive as collinear
	// vertices carrying ~1-ulp residue; compacting keeps the array (and
	// every later merge against it) bounded.
	st.sum.Compact(flatCompactTol)
	retail()
	return st.sum
}

// zeroTail seeds SumFlats rebuilds; portAggregate installs the real
// members-union tail immediately afterwards.
type zeroTail struct{}

func (zeroTail) Bits(float64) float64  { return 0 }
func (zeroTail) LongTermRate() float64 { return 0 }
