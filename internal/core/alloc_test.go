package core

import "testing"

// TestWarmProbeEvaluationAllocationFree pins the probe session's warm reset
// path: after the first probe has built the scratch evaluation, preparing
// the next probe (revalidating the allocation, clearing the memo maps, and
// re-seeding the probe-invariant results) must not allocate. The reseed
// method carries a //fafvet:hotpath annotation, so the static analyzer
// proves the same property at build time; this test catches dynamic
// regressions the analyzer cannot see, such as map re-seeding outgrowing
// the buckets retained by clear().
func TestWarmProbeEvaluationAllocationFree(t *testing.T) {
	ctl := loadedController(t)
	existing := ctl.Connections()
	cand := testConnOn(t, ctl.Network(), "probe", 0, 0, 1, 0, 0, 0)
	s, err := ctl.analyzer.NewProbeSession(existing, cand)
	if err != nil {
		t.Fatal(err)
	}
	// First probe: allocates the scratch evaluation and warms every memo.
	if _, err := s.Delays(1e-3, 1.4e-3); err != nil {
		t.Fatal(err)
	}

	var evalErr error
	if n := testing.AllocsPerRun(100, func() {
		if _, err := s.evaluation(1e-3, 1.4e-3); err != nil {
			evalErr = err
		}
	}); n != 0 {
		t.Errorf("warm probe evaluation reset: %v allocs per run, want 0", n)
	}
	if evalErr != nil {
		t.Fatal(evalErr)
	}
}
