// Package core implements the paper's contribution: the decomposition-based
// worst-case end-to-end delay analysis for FDDI-ATM-FDDI connections (Eq. 7,
// Section 4), the feasible-region characterization on the H_S–H_R plane
// (Theorems 3–4, Section 5.2), and the β-tunable connection admission
// control algorithm (Section 5.3).
package core

import (
	"errors"
	"fmt"

	"fafnet/internal/atm"
	"fafnet/internal/fddi"
	"fafnet/internal/shaper"
	"fafnet/internal/topo"
	"fafnet/internal/traffic"
)

// ConnSpec describes a connection requesting admission: the contract of
// Section 3.2 (traffic specification, QoS requirement, route endpoints).
type ConnSpec struct {
	// ID uniquely identifies the connection (M_{i,j} in the paper).
	ID string
	// Src and Dst are the endpoint hosts.
	Src, Dst topo.HostID
	// Source is the traffic descriptor Γ(I) declared at the sender.
	Source traffic.Descriptor
	// Deadline D is the required bound on worst-case end-to-end delay.
	Deadline float64
	// HostBufferBits bounds the MAC transmit buffer at the source host
	// (0 = unlimited).
	HostBufferBits float64
	// IDBufferBits bounds the per-connection MAC buffer at the receiving
	// interface device (0 = unlimited).
	IDBufferBits float64
	// Shape, when non-nil, places a (σ, ρ) regulator at the sender-side
	// interface device (before segmentation): the connection's traffic
	// enters the backbone leaky-bucket bounded, trading a bounded local
	// shaping delay for tighter envelopes at every shared port downstream.
	Shape *shaper.Spec
}

// Validate reports whether the specification is complete.
func (s ConnSpec) Validate() error {
	switch {
	case s.ID == "":
		return errors.New("core: connection needs an id")
	case s.Source == nil:
		return fmt.Errorf("core: connection %q needs a traffic descriptor", s.ID)
	case s.Deadline <= 0:
		return fmt.Errorf("core: connection %q deadline %v must be positive", s.ID, s.Deadline)
	case s.HostBufferBits < 0:
		return fmt.Errorf("core: connection %q host buffer %v must be non-negative", s.ID, s.HostBufferBits)
	case s.IDBufferBits < 0:
		return fmt.Errorf("core: connection %q interface-device buffer %v must be non-negative", s.ID, s.IDBufferBits)
	}
	if s.Shape != nil {
		if err := s.Shape.Validate(); err != nil {
			return fmt.Errorf("core: connection %q: %w", s.ID, err)
		}
	}
	return nil
}

// Connection is an admitted (or candidate) connection together with its
// route and synchronous-bandwidth allocations.
type Connection struct {
	ConnSpec
	// Route is the decomposed path (Figure 2).
	Route topo.Route
	// HS is the synchronous allocation on the sender ring (seconds per
	// rotation).
	HS float64
	// HR is the synchronous allocation granted to the receiving interface
	// device on the destination ring. Zero for same-ring routes.
	HR float64
}

// clone returns a copy so search probes can vary allocations without
// mutating admitted state.
func (c *Connection) clone() *Connection {
	cp := *c
	return &cp
}

// AnalysisOptions bundles the numeric options of the underlying server
// analyses. The zero value selects all defaults.
type AnalysisOptions struct {
	// MAC tunes the Theorem 1 searches.
	MAC fddi.Options
	// Mux tunes the FIFO-multiplexer busy-period searches.
	Mux atm.MuxOptions
	// DisableFusion switches off the algebraic envelope-chain fusion and the
	// evaluation caches layered on top of it (traffic.Fuse / traffic.Memoized
	// wrappers in the analyzer and the probe session's cross-probe stage-0
	// envelope reuse). The optimized path is value-preserving by construction
	// — fusion applies only exact rewrites and the memo stores exact inner
	// evaluations — so this flag exists for equivalence testing and for
	// bisecting suspected optimizer regressions, not for production use.
	DisableFusion bool
	// DisableFlat switches off the flat breakpoint-array fast path layered on
	// top of fusion: the closed-form lowering of fused chains into sorted
	// breakpoint arrays and the incremental per-port aggregate envelopes
	// delta-updated across admission probes. Like DisableFusion it exists for
	// equivalence testing and regression bisection — the lowering rules are
	// exact (values move only by float re-association, within units.RelTol) —
	// not for production use. DisableFusion implies DisableFlat: the flat
	// path lowers fused chains.
	DisableFlat bool
}

// PortDelay reports the worst-case delay contributed by one shared FIFO
// port.
type PortDelay struct {
	Port  topo.PortID
	Delay float64
}

// Breakdown decomposes a connection's end-to-end worst-case delay by server,
// mirroring Eq. 7/16 of the paper.
type Breakdown struct {
	// SrcMAC is the Theorem 1 delay at the sender's FDDI MAC.
	SrcMAC float64
	// Shaper is the worst-case delay in the ingress regulator (zero when
	// the connection is unshaped).
	Shaper float64
	// Ports lists the variable (queueing) delays of each shared FIFO port
	// in traversal order.
	Ports []PortDelay
	// DstMAC is the Theorem 1 delay at the receiving interface device's MAC
	// on the destination ring.
	DstMAC float64
	// Constant sums every fixed-latency stage (delay lines, interface
	// device stages, switch constants, link propagation).
	Constant float64
	// Total is the end-to-end worst case (the sum of the above).
	Total float64
	// SrcBufferBits and DstBufferBits are the worst-case backlogs F
	// (Theorem 1, Eq. 10) at the sender host's MAC and the receiving
	// interface device's MAC — the buffer sizes that must be provisioned
	// for loss-free operation.
	SrcBufferBits, DstBufferBits float64
}
