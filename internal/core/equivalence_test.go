package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"fafnet/internal/topo"
	"fafnet/internal/traffic"
	"fafnet/internal/units"
)

// TestFusionEquivalenceRandomized is the soundness harness of the probe
// accelerator: across randomized scenarios (connection counts, placements,
// allocations, and source mixes), the optimized analyzer — envelope fusion,
// stage-0 memoization, MAC and mux fast paths — must agree with the
// unoptimized evaluation (DisableFusion) within units.RelTol on every
// connection's end-to-end delay, and exactly on feasibility (both infinite or
// both finite).
func TestFusionEquivalenceRandomized(t *testing.T) {
	net := defaultNet(t)
	rng := rand.New(rand.NewSource(20250806))

	randomSource := func() traffic.Descriptor {
		switch rng.Intn(3) {
		case 0:
			c1 := 50e3 + 150e3*rng.Float64()
			d, err := traffic.NewDualPeriodic(c1, 0.010, c1/5, 0.001, 100e6)
			if err != nil {
				t.Fatal(err)
			}
			return d
		case 1:
			c := 20e3 + 80e3*rng.Float64()
			p := []float64{0.005, 0.008, 0.010}[rng.Intn(3)]
			d, err := traffic.NewPeriodic(c, p, 100e6)
			if err != nil {
				t.Fatal(err)
			}
			return d
		default:
			d, err := traffic.NewCBR(2e6 + 8e6*rng.Float64())
			if err != nil {
				t.Fatal(err)
			}
			return d
		}
	}

	const scenarios = 120
	for sc := 0; sc < scenarios; sc++ {
		nConns := 1 + rng.Intn(5)
		conns := make([]*Connection, 0, nConns)
		for i := 0; i < nConns; i++ {
			src := topo.HostID{Ring: rng.Intn(3), Index: rng.Intn(4)}
			dst := topo.HostID{Ring: rng.Intn(3), Index: rng.Intn(4)}
			if src == dst {
				dst.Index = (dst.Index + 1) % 4
			}
			route, err := net.Route(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			c := &Connection{
				ConnSpec: ConnSpec{
					ID:       fmt.Sprintf("s%dc%d", sc, i),
					Src:      src,
					Dst:      dst,
					Source:   randomSource(),
					Deadline: 0.120,
				},
				Route: route,
				// Spanning the stability threshold on purpose: some draws are
				// infeasible, exercising the +Inf paths on both sides.
				HS: 0.4e-3 + 2.1e-3*rng.Float64(),
				HR: 0.4e-3 + 2.1e-3*rng.Float64(),
			}
			conns = append(conns, c)
		}

		optimized, err := NewAnalyzer(net, AnalysisOptions{})
		if err != nil {
			t.Fatal(err)
		}
		reference, err := NewAnalyzer(net, AnalysisOptions{DisableFusion: true})
		if err != nil {
			t.Fatal(err)
		}
		got, err := optimized.Delays(conns)
		if err != nil {
			t.Fatalf("scenario %d: optimized: %v", sc, err)
		}
		want, err := reference.Delays(conns)
		if err != nil {
			t.Fatalf("scenario %d: reference: %v", sc, err)
		}
		if len(got) != len(want) {
			t.Fatalf("scenario %d: %d delays, want %d", sc, len(got), len(want))
		}
		for id, w := range want {
			g := got[id]
			if math.IsInf(w, 1) != math.IsInf(g, 1) {
				t.Fatalf("scenario %d, conn %s: feasibility diverged: optimized %v, reference %v", sc, id, g, w)
			}
			if !math.IsInf(w, 1) && !units.WithinRel(g, w, units.RelTol) {
				t.Fatalf("scenario %d, conn %s: optimized %v, reference %v", sc, id, g, w)
			}
		}

		// A second evaluation through the warmed caches (macCache,
		// stage0Cache) must reproduce the first exactly.
		again, err := optimized.Delays(conns)
		if err != nil {
			t.Fatalf("scenario %d: warmed: %v", sc, err)
		}
		for id, g := range got {
			if a := again[id]; a != g && !(math.IsInf(a, 1) && math.IsInf(g, 1)) {
				t.Fatalf("scenario %d, conn %s: warmed cache diverged: %v then %v", sc, id, g, a)
			}
		}
	}
}
