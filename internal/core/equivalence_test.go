package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"fafnet/internal/shaper"
	"fafnet/internal/topo"
	"fafnet/internal/traffic"
	"fafnet/internal/units"
)

// TestFusionEquivalenceRandomized is the soundness harness of the probe
// accelerator: across randomized scenarios (connection counts, placements,
// allocations, and source mixes), the optimized analyzer — envelope fusion,
// stage-0 memoization, MAC and mux fast paths — must agree with the
// unoptimized evaluation (DisableFusion) within units.RelTol on every
// connection's end-to-end delay, and exactly on feasibility (both infinite or
// both finite).
func TestFusionEquivalenceRandomized(t *testing.T) {
	net := defaultNet(t)
	rng := rand.New(rand.NewSource(20250806))

	randomSource := func() traffic.Descriptor {
		switch rng.Intn(3) {
		case 0:
			c1 := 50e3 + 150e3*rng.Float64()
			d, err := traffic.NewDualPeriodic(c1, 0.010, c1/5, 0.001, 100e6)
			if err != nil {
				t.Fatal(err)
			}
			return d
		case 1:
			c := 20e3 + 80e3*rng.Float64()
			p := []float64{0.005, 0.008, 0.010}[rng.Intn(3)]
			d, err := traffic.NewPeriodic(c, p, 100e6)
			if err != nil {
				t.Fatal(err)
			}
			return d
		default:
			d, err := traffic.NewCBR(2e6 + 8e6*rng.Float64())
			if err != nil {
				t.Fatal(err)
			}
			return d
		}
	}

	const scenarios = 120
	for sc := 0; sc < scenarios; sc++ {
		nConns := 1 + rng.Intn(5)
		conns := make([]*Connection, 0, nConns)
		for i := 0; i < nConns; i++ {
			src := topo.HostID{Ring: rng.Intn(3), Index: rng.Intn(4)}
			dst := topo.HostID{Ring: rng.Intn(3), Index: rng.Intn(4)}
			if src == dst {
				dst.Index = (dst.Index + 1) % 4
			}
			route, err := net.Route(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			c := &Connection{
				ConnSpec: ConnSpec{
					ID:       fmt.Sprintf("s%dc%d", sc, i),
					Src:      src,
					Dst:      dst,
					Source:   randomSource(),
					Deadline: 0.120,
				},
				Route: route,
				// Spanning the stability threshold on purpose: some draws are
				// infeasible, exercising the +Inf paths on both sides.
				HS: 0.4e-3 + 2.1e-3*rng.Float64(),
				HR: 0.4e-3 + 2.1e-3*rng.Float64(),
			}
			conns = append(conns, c)
		}

		optimized, err := NewAnalyzer(net, AnalysisOptions{})
		if err != nil {
			t.Fatal(err)
		}
		reference, err := NewAnalyzer(net, AnalysisOptions{DisableFusion: true})
		if err != nil {
			t.Fatal(err)
		}
		got, err := optimized.Delays(conns)
		if err != nil {
			t.Fatalf("scenario %d: optimized: %v", sc, err)
		}
		want, err := reference.Delays(conns)
		if err != nil {
			t.Fatalf("scenario %d: reference: %v", sc, err)
		}
		if len(got) != len(want) {
			t.Fatalf("scenario %d: %d delays, want %d", sc, len(got), len(want))
		}
		for id, w := range want {
			g := got[id]
			if math.IsInf(w, 1) != math.IsInf(g, 1) {
				t.Fatalf("scenario %d, conn %s: feasibility diverged: optimized %v, reference %v", sc, id, g, w)
			}
			if !math.IsInf(w, 1) && !units.WithinRel(g, w, units.RelTol) {
				t.Fatalf("scenario %d, conn %s: optimized %v, reference %v", sc, id, g, w)
			}
		}

		// A second evaluation through the warmed caches (macCache,
		// stage0Cache) must reproduce the first exactly.
		again, err := optimized.Delays(conns)
		if err != nil {
			t.Fatalf("scenario %d: warmed: %v", sc, err)
		}
		for id, g := range got {
			if a := again[id]; a != g && !(math.IsInf(a, 1) && math.IsInf(g, 1)) {
				t.Fatalf("scenario %d, conn %s: warmed cache diverged: %v then %v", sc, id, g, a)
			}
		}
	}
}

// TestFlatEquivalenceRandomized extends the randomized harness to the flat
// breakpoint-array fast path, in two modes across the same 120-scenario
// distribution (plus shaped connections, which have no exact lowering and
// must take the closure-tree fallback):
//
//   - flat vs closure tree: the default analyzer (flat lowering, materialized
//     per-port aggregates) must agree with DisableFlat — fusion on, closure
//     trees on the hot path — within units.RelTol on every delay, exactly on
//     feasibility;
//   - incremental vs from-scratch: one long-lived analyzer carries its
//     materialized per-port aggregates across every scenario, so each
//     scenario's membership churn (previous connections forgotten, new ones
//     admitted) is absorbed as delta updates and periodic rebuilds; its
//     results must match a fresh analyzer that builds every aggregate from
//     scratch.
func TestFlatEquivalenceRandomized(t *testing.T) {
	net := defaultNet(t)
	rng := rand.New(rand.NewSource(20250807))

	randomSource := func() traffic.Descriptor {
		switch rng.Intn(3) {
		case 0:
			c1 := 50e3 + 150e3*rng.Float64()
			d, err := traffic.NewDualPeriodic(c1, 0.010, c1/5, 0.001, 100e6)
			if err != nil {
				t.Fatal(err)
			}
			return d
		case 1:
			c := 20e3 + 80e3*rng.Float64()
			p := []float64{0.005, 0.008, 0.010}[rng.Intn(3)]
			d, err := traffic.NewPeriodic(c, p, 100e6)
			if err != nil {
				t.Fatal(err)
			}
			return d
		default:
			d, err := traffic.NewCBR(2e6 + 8e6*rng.Float64())
			if err != nil {
				t.Fatal(err)
			}
			return d
		}
	}

	// incremental is the long-lived analyzer: its portAgg state survives all
	// scenarios and is only ever delta-updated or budget-rebuilt.
	incremental, err := NewAnalyzer(net, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var previous []*Connection

	const scenarios = 120
	for sc := 0; sc < scenarios; sc++ {
		nConns := 1 + rng.Intn(5)
		conns := make([]*Connection, 0, nConns)
		for i := 0; i < nConns; i++ {
			src := topo.HostID{Ring: rng.Intn(3), Index: rng.Intn(4)}
			dst := topo.HostID{Ring: rng.Intn(3), Index: rng.Intn(4)}
			if src == dst {
				dst.Index = (dst.Index + 1) % 4
			}
			route, err := net.Route(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			c := &Connection{
				ConnSpec: ConnSpec{
					ID:       fmt.Sprintf("f%dc%d", sc, i),
					Src:      src,
					Dst:      dst,
					Source:   randomSource(),
					Deadline: 0.120,
				},
				Route: route,
				HS:    0.4e-3 + 2.1e-3*rng.Float64(),
				HR:    0.4e-3 + 2.1e-3*rng.Float64(),
			}
			// Roughly one connection in six is shaped: shaped stage-0 chains
			// have no exact flat lowering, so these connections must ride the
			// closure-tree fallback while sharing ports with flat members.
			if rng.Intn(6) == 0 {
				c.Shape = &shaper.Spec{
					SigmaBits: 20e3 + 40e3*rng.Float64(),
					RhoBps:    c.Source.LongTermRate() * (1.2 + 0.5*rng.Float64()),
				}
			}
			conns = append(conns, c)
		}

		flat, err := NewAnalyzer(net, AnalysisOptions{})
		if err != nil {
			t.Fatal(err)
		}
		closure, err := NewAnalyzer(net, AnalysisOptions{DisableFlat: true})
		if err != nil {
			t.Fatal(err)
		}
		got, err := flat.Delays(conns)
		if err != nil {
			t.Fatalf("scenario %d: flat: %v", sc, err)
		}
		want, err := closure.Delays(conns)
		if err != nil {
			t.Fatalf("scenario %d: closure tree: %v", sc, err)
		}
		for id, w := range want {
			g := got[id]
			if math.IsInf(w, 1) != math.IsInf(g, 1) {
				t.Fatalf("scenario %d, conn %s: feasibility diverged: flat %v, closure %v", sc, id, g, w)
			}
			if !math.IsInf(w, 1) && !units.WithinRel(g, w, units.RelTol) {
				t.Fatalf("scenario %d, conn %s: flat %v, closure %v", sc, id, g, w)
			}
		}

		// Incremental mode: forget the previous scenario's connections (the
		// release half of the delta updates), then evaluate this scenario's
		// set through the carried-over aggregates.
		for _, c := range previous {
			incremental.Forget(c.ID)
		}
		inc, err := incremental.Delays(conns)
		if err != nil {
			t.Fatalf("scenario %d: incremental: %v", sc, err)
		}
		for id, g := range got {
			n := inc[id]
			if math.IsInf(g, 1) != math.IsInf(n, 1) {
				t.Fatalf("scenario %d, conn %s: feasibility diverged: from-scratch %v, incremental %v", sc, id, g, n)
			}
			if !math.IsInf(g, 1) && !units.WithinRel(n, g, units.RelTol) {
				t.Fatalf("scenario %d, conn %s: from-scratch %v, incremental %v", sc, id, g, n)
			}
		}
		previous = conns
	}
}
