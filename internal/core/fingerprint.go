package core

import (
	"math"

	"fafnet/internal/traffic"
)

// This file fingerprints specifications and admitted-state so the sharded
// pipeline can recognize "the same decision problem" when it comes around
// again. The CAC verdict is a pure function of the candidate's specification
// and the admitted set's (endpoints, traffic, H_S, H_R) values — connection
// ids name decisions but cannot change them — so hashing exactly those
// inputs keys a verdict cache that is correct by construction: a hit means
// re-running the full analysis would reproduce the cached floats bit for
// bit.
//
// The state hash is a commutative multiset hash (a wrapping sum of strongly
// mixed per-connection fingerprints, on two independent lanes for 128 bits
// of discrimination), which is what makes it maintainable incrementally:
// admitting or releasing a connection adds or subtracts one term in O(1)
// instead of rehashing the whole admitted set under a lock.

// fingerprint is a 128-bit hash carried as two independently mixed 64-bit
// lanes. Two fingerprints are meant to collide only for genuinely identical
// inputs; the second lane exists so a single-lane collision cannot alias two
// different admitted states.
type fingerprint struct{ a, b uint64 }

// mix64 is the SplitMix64 finalizer: a fast full-avalanche mix used to both
// scramble individual words and to advance the combination state between
// words.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hasher accumulates words into a fingerprint. Word order matters (it is a
// sequence hash, not a multiset hash): callers feed fields in a fixed order.
type hasher struct{ f fingerprint }

// lane seeds keep the two lanes independent: identical word sequences mix
// through different constants.
const (
	hashSeedA = 0x9e3779b97f4a7c15
	hashSeedB = 0xd1b54a32d192ed03
)

func newHasher() hasher {
	return hasher{f: fingerprint{a: hashSeedA, b: hashSeedB}}
}

// word absorbs one 64-bit word into both lanes.
func (h *hasher) word(w uint64) {
	h.f.a = mix64(h.f.a ^ w)
	h.f.b = mix64(h.f.b + w + hashSeedB)
}

// float absorbs one float64 by exact bit pattern. Negative zero and NaN
// payloads are absorbed as-is: the engine never produces them in
// specifications, and treating them distinctly errs toward cache misses,
// never wrong hits.
func (h *hasher) float(v float64) { h.word(math.Float64bits(v)) }

// str absorbs a string length-prefixed, byte-exact.
func (h *hasher) str(s string) {
	h.word(uint64(len(s)))
	var w uint64
	n := 0
	for i := 0; i < len(s); i++ {
		w = w<<8 | uint64(s[i])
		n++
		if n == 8 {
			h.word(w)
			w, n = 0, 0
		}
	}
	if n > 0 {
		h.word(w)
	}
}

// Descriptor type tags. Each fingerprintable descriptor gets a distinct tag
// so (CBR 5e6) can never alias (LeakyBucket σ=5e6 ...).
const (
	tagCBR = iota + 1
	tagPeriodic
	tagDualPeriodic
	tagLeakyBucket
)

// descriptorWords absorbs a traffic descriptor's exact parameters, reporting
// false for dynamic types it does not know (wrapped or user-defined
// envelopes). Unknown descriptors simply opt the connection out of verdict
// caching — correctness is unaffected, the probe just always runs.
func descriptorWords(h *hasher, d traffic.Descriptor) bool {
	switch s := d.(type) {
	case traffic.CBR:
		h.word(tagCBR)
		h.float(s.RateBps)
	case traffic.Periodic:
		h.word(tagPeriodic)
		h.float(s.C)
		h.float(s.P)
		h.float(s.PeakBps)
	case traffic.DualPeriodic:
		h.word(tagDualPeriodic)
		h.float(s.C1)
		h.float(s.P1)
		h.float(s.C2)
		h.float(s.P2)
		h.float(s.PeakBps)
	case traffic.LeakyBucket:
		h.word(tagLeakyBucket)
		h.float(s.Sigma)
		h.float(s.Rho)
		h.float(s.PeakBps)
	default:
		return false
	}
	return true
}

// specFingerprint hashes everything about a candidate specification that the
// verdict mathematically depends on: endpoints (which determine the route),
// deadline, buffer bounds, shaper parameters, and the source descriptor's
// exact parameters. The connection id is deliberately excluded — a churn
// workload mints a fresh id per request, and including it would make every
// decision problem look unprecedented. ok is false when the descriptor is
// not fingerprintable.
func specFingerprint(s ConnSpec) (fp fingerprint, ok bool) {
	h := newHasher()
	h.word(uint64(int64(s.Src.Ring)))
	h.word(uint64(int64(s.Src.Index)))
	h.word(uint64(int64(s.Dst.Ring)))
	h.word(uint64(int64(s.Dst.Index)))
	h.float(s.Deadline)
	h.float(s.HostBufferBits)
	h.float(s.IDBufferBits)
	if s.Shape != nil {
		h.word(1)
		h.float(s.Shape.SigmaBits)
		h.float(s.Shape.RhoBps)
	} else {
		h.word(0)
	}
	if !descriptorWords(&h, s.Source) {
		return fingerprint{}, false
	}
	return h.f, true
}

// connFingerprint hashes one admitted connection's contribution to the state
// hash: its specification fingerprint plus the exact committed allocations.
// ok is false when the spec is not fingerprintable, which marks the whole
// state unhashable until that connection is released.
func connFingerprint(c *Connection) (fp fingerprint, ok bool) {
	sf, ok := specFingerprint(c.ConnSpec)
	if !ok {
		return fingerprint{}, false
	}
	h := newHasher()
	h.word(sf.a)
	h.word(sf.b)
	h.float(c.HS)
	h.float(c.HR)
	return h.f, true
}

// stateHash is the commutative multiset hash of an admitted set: the
// wrapping sum of member connection fingerprints. add and remove are exact
// inverses, which is what lets the sharded pipeline maintain the hash
// incrementally across admits and releases.
type stateHash struct{ a, b uint64 }

func (s *stateHash) add(f fingerprint)    { s.a += f.a; s.b += f.b }
func (s *stateHash) remove(f fingerprint) { s.a -= f.a; s.b -= f.b }
