package core

import (
	"math"
	"testing"

	"fafnet/internal/des"
	"fafnet/internal/topo"
	"fafnet/internal/units"
)

func testSpec(t testing.TB, id string, srcRing, srcHost, dstRing, dstHost int) ConnSpec {
	t.Helper()
	return ConnSpec{
		ID:       id,
		Src:      topo.HostID{Ring: srcRing, Index: srcHost},
		Dst:      topo.HostID{Ring: dstRing, Index: dstHost},
		Source:   paperSource(t),
		Deadline: 0.120,
	}
}

func newController(t testing.TB, opts Options) *Controller {
	t.Helper()
	ctl, err := NewController(defaultNet(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	return ctl
}

func TestAdmitOnEmptyNetwork(t *testing.T) {
	ctl := newController(t, Options{})
	dec, err := ctl.RequestAdmission(testSpec(t, "c1", 0, 0, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Admitted {
		t.Fatalf("rejected: %s", dec.Reason)
	}
	if dec.Reason != ReasonAdmitted {
		t.Errorf("Reason = %q", dec.Reason)
	}
	// Allocation within bounds and within the [min_need, max_need] bracket.
	if dec.HS < dec.HSMinNeed-units.Eps || dec.HS > dec.HSMaxAvail+units.Eps {
		t.Errorf("HS = %v outside [%v, %v]", dec.HS, dec.HSMinNeed, dec.HSMaxAvail)
	}
	if dec.HR < dec.HRMinNeed-units.Eps || dec.HR > dec.HRMaxAvail+units.Eps {
		t.Errorf("HR = %v outside [%v, %v]", dec.HR, dec.HRMinNeed, dec.HRMaxAvail)
	}
	if dec.HSMaxNeed < dec.HSMinNeed-units.Eps {
		t.Errorf("max_need %v below min_need %v", dec.HSMaxNeed, dec.HSMinNeed)
	}
	// Stability floor: HS·BW >= ρ·TTRT for the workload.
	ring := ctl.Network().Config().Ring
	const loadBps = 15e6 // the workload's long-term rate ρ
	floor := loadBps * ring.TTRT / ring.BandwidthBps
	if dec.HS < floor-1e-6 {
		t.Errorf("HS = %v below the stability floor %v", dec.HS, floor)
	}
	// Ring bookkeeping committed.
	if got := ctl.Network().Ring(0).Allocated(); !units.AlmostEq(got, dec.HS) {
		t.Errorf("ring 0 allocated %v, want %v", got, dec.HS)
	}
	if got := ctl.Network().Ring(1).Allocated(); !units.AlmostEq(got, dec.HR) {
		t.Errorf("ring 1 allocated %v, want %v", got, dec.HR)
	}
	// Delays recorded and within deadline.
	if d := dec.Delays["c1"]; d <= 0 || d > 0.120 {
		t.Errorf("recorded delay %v", d)
	}
	if dec.Probes < 3 {
		t.Errorf("Probes = %d, suspiciously few", dec.Probes)
	}
}

func TestBetaZeroAndOneBracketAllocation(t *testing.T) {
	specs := func() ConnSpec { return testSpec(t, "c1", 0, 0, 1, 0) }
	zero := newController(t, Options{Beta: 0, BetaSet: true})
	dZero, err := zero.RequestAdmission(specs())
	if err != nil {
		t.Fatal(err)
	}
	one := newController(t, Options{Beta: 1})
	dOne, err := one.RequestAdmission(specs())
	if err != nil {
		t.Fatal(err)
	}
	if !dZero.Admitted || !dOne.Admitted {
		t.Fatalf("admissions failed: %v / %v", dZero.Reason, dOne.Reason)
	}
	if !units.AlmostEq(dZero.HS, dZero.HSMinNeed) {
		t.Errorf("β=0: HS = %v, want min_need %v", dZero.HS, dZero.HSMinNeed)
	}
	if !units.AlmostEq(dOne.HS, dOne.HSMaxNeed) {
		t.Errorf("β=1: HS = %v, want max_need %v", dOne.HS, dOne.HSMaxNeed)
	}
	if dOne.HS < dZero.HS-units.Eps {
		t.Errorf("β=1 allocation %v below β=0 allocation %v", dOne.HS, dZero.HS)
	}
}

func TestRejectImpossibleDeadline(t *testing.T) {
	ctl := newController(t, Options{})
	spec := testSpec(t, "c1", 0, 0, 1, 0)
	spec.Deadline = 1e-3 // below the two-MAC protocol floor (~30 ms)
	dec, err := ctl.RequestAdmission(spec)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Admitted {
		t.Fatal("impossible deadline admitted")
	}
	if dec.Reason != ReasonInfeasible {
		t.Errorf("Reason = %q, want %q", dec.Reason, ReasonInfeasible)
	}
	// Nothing committed.
	if ctl.Network().Ring(0).Allocated() != 0 || ctl.Active() != 0 {
		t.Error("rejected request left state behind")
	}
}

func TestRejectHostBusy(t *testing.T) {
	ctl := newController(t, Options{})
	if dec, err := ctl.RequestAdmission(testSpec(t, "c1", 0, 0, 1, 0)); err != nil || !dec.Admitted {
		t.Fatalf("setup admission failed: %v %v", err, dec.Reason)
	}
	dec, err := ctl.RequestAdmission(testSpec(t, "c2", 0, 0, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Admitted || dec.Reason != ReasonHostBusy {
		t.Errorf("Admitted=%v Reason=%q, want host-busy rejection", dec.Admitted, dec.Reason)
	}
}

func TestRejectDuplicateID(t *testing.T) {
	ctl := newController(t, Options{})
	if dec, err := ctl.RequestAdmission(testSpec(t, "c1", 0, 0, 1, 0)); err != nil || !dec.Admitted {
		t.Fatalf("setup admission failed: %v %v", err, dec.Reason)
	}
	if _, err := ctl.RequestAdmission(testSpec(t, "c1", 0, 1, 1, 1)); err == nil {
		t.Error("duplicate id should be a request error")
	}
}

func TestRejectWhenBandwidthExhausted(t *testing.T) {
	ctl := newController(t, Options{Beta: 1})
	admitted := 0
	// β=1 grabs max_need each time; keep admitting until the sender ring
	// runs dry (4 hosts available on ring 0, ρ needs >= 1.2 ms of the 7 ms
	// usable, and β=1 typically takes much more).
	var lastReason string
	for i := 0; i < 4; i++ {
		spec := testSpec(t, fmtID("c", i), 0, i, 1, i)
		dec, err := ctl.RequestAdmission(spec)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Admitted {
			admitted++
		} else {
			lastReason = dec.Reason
			break
		}
	}
	if admitted == 0 {
		t.Fatal("no connection admitted at all")
	}
	if admitted == 4 {
		t.Skip("ring capacity admitted all four at β=1; rejection path covered elsewhere")
	}
	if lastReason != ReasonNoBandwidth && lastReason != ReasonInfeasible {
		t.Errorf("rejection reason = %q", lastReason)
	}
}

func fmtID(prefix string, i int) string { return prefix + string(rune('0'+i)) }

func TestReleaseRestoresCapacity(t *testing.T) {
	ctl := newController(t, Options{})
	dec, err := ctl.RequestAdmission(testSpec(t, "c1", 0, 0, 1, 0))
	if err != nil || !dec.Admitted {
		t.Fatalf("admission failed: %v %v", err, dec.Reason)
	}
	before0 := ctl.Network().Ring(0).Available()
	if !ctl.Release("c1") {
		t.Fatal("release failed")
	}
	if ctl.Release("c1") {
		t.Error("double release should report false")
	}
	after0 := ctl.Network().Ring(0).Available()
	if after0 <= before0 {
		t.Errorf("release did not restore capacity: %v → %v", before0, after0)
	}
	usable := ctl.Network().Config().Ring.UsableTTRT()
	if !units.AlmostEq(after0, usable) {
		t.Errorf("ring 0 available %v, want full %v", after0, usable)
	}
	if ctl.Active() != 0 {
		t.Errorf("Active = %d after release", ctl.Active())
	}
	// The same id is admissible again.
	dec, err = ctl.RequestAdmission(testSpec(t, "c1", 0, 0, 1, 0))
	if err != nil || !dec.Admitted {
		t.Errorf("re-admission failed: %v %v", err, dec.Reason)
	}
}

func TestAdmittedDelaysAlwaysMeetDeadlines(t *testing.T) {
	// The central safety invariant: whatever sequence of admissions and
	// releases occurs, every admitted connection's recomputed worst case
	// stays within its deadline.
	ctl := newController(t, Options{})
	rng := des.NewRNG(7)
	hosts := ctl.Network().Hosts()
	active := map[string]bool{}
	next := 0
	for step := 0; step < 30; step++ {
		if len(active) > 0 && rng.Float64() < 0.3 {
			for id := range active {
				ctl.Release(id)
				delete(active, id)
				break
			}
			continue
		}
		src := hosts[rng.Intn(len(hosts))]
		if ctl.SourceBusy(src) {
			continue
		}
		dst := hosts[rng.Intn(len(hosts))]
		if dst.Ring == src.Ring {
			dst.Ring = (dst.Ring + 1) % 3
		}
		spec := testSpec(t, fmtID("m", next), src.Ring, src.Index, dst.Ring, dst.Index)
		next++
		dec, err := ctl.RequestAdmission(spec)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Admitted {
			active[spec.ID] = true
		}
		report, err := ctl.DelayReport()
		if err != nil {
			t.Fatal(err)
		}
		for _, conn := range ctl.Connections() {
			if report[conn.ID] > conn.Deadline*(1+units.RelTol) {
				t.Fatalf("step %d: connection %s delay %v exceeds deadline %v",
					step, conn.ID, report[conn.ID], conn.Deadline)
			}
		}
	}
	if next < 5 {
		t.Fatalf("exercise too small: %d requests", next)
	}
}

func TestFeasibleRegionIsUpwardClosedAlongSegment(t *testing.T) {
	// Theorems 3–4: with a feasible maximum, the feasible portion of the
	// proportional segment is an interval ending at the maximum. Verify
	// empirically: once feasible, never infeasible again as α grows.
	ctl := newController(t, Options{})
	// Preload a competitor to make the region nontrivial.
	if dec, err := ctl.RequestAdmission(testSpec(t, "bg", 0, 3, 1, 3)); err != nil || !dec.Admitted {
		t.Fatalf("setup: %v %v", err, dec.Reason)
	}
	spec := testSpec(t, "probe", 0, 0, 1, 0)
	hsMax := ctl.Network().Ring(0).Available()
	hrMax := ctl.Network().Ring(1).Available()
	seen := false
	for alpha := 0.05; alpha <= 1.0001; alpha += 0.05 {
		ok, err := ctl.FeasibleAllocation(spec, alpha*hsMax, alpha*hrMax)
		if err != nil {
			t.Fatal(err)
		}
		if seen && !ok {
			t.Fatalf("feasibility lost at α=%v after being feasible", alpha)
		}
		if ok {
			seen = true
		}
	}
	if !seen {
		t.Fatal("no feasible point on the segment")
	}
}

func TestAllocationRulesDiffer(t *testing.T) {
	spec := func() ConnSpec { return testSpec(t, "c1", 0, 0, 1, 0) }
	prop := newController(t, Options{Rule: RuleProportional})
	dProp, err := prop.RequestAdmission(spec())
	if err != nil || !dProp.Admitted {
		t.Fatalf("proportional: %v %v", err, dProp.Reason)
	}
	biased := newController(t, Options{Rule: RuleSenderBiased})
	dBiased, err := biased.RequestAdmission(spec())
	if err != nil || !dBiased.Admitted {
		t.Fatalf("sender-biased: %v %v", err, dBiased.Reason)
	}
	if dBiased.HS <= dProp.HS {
		t.Errorf("sender-biased HS %v should exceed proportional HS %v", dBiased.HS, dProp.HS)
	}
	split := newController(t, Options{Rule: RuleFixedSplit})
	dSplit, err := split.RequestAdmission(spec())
	if err != nil || !dSplit.Admitted {
		t.Fatalf("fixed-split: %v %v", err, dSplit.Reason)
	}
	if !units.WithinRel(dSplit.HS, dSplit.HR, 1e-9) {
		t.Errorf("fixed-split allocations unequal: %v vs %v", dSplit.HS, dSplit.HR)
	}
}

func TestSameRingAdmission(t *testing.T) {
	ctl := newController(t, Options{})
	spec := testSpec(t, "local", 0, 0, 0, 2)
	dec, err := ctl.RequestAdmission(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Admitted {
		t.Fatalf("rejected: %s", dec.Reason)
	}
	if dec.HR != 0 {
		t.Errorf("same-ring HR = %v, want 0", dec.HR)
	}
	if got := ctl.Network().Ring(0).Allocated(); !units.AlmostEq(got, dec.HS) {
		t.Errorf("ring 0 allocated %v, want %v", got, dec.HS)
	}
}

func TestControllerValidation(t *testing.T) {
	if _, err := NewController(nil, Options{}); err == nil {
		t.Error("nil network should be rejected")
	}
	if _, err := NewController(defaultNet(t), Options{Beta: 2}); err == nil {
		t.Error("beta > 1 should be rejected")
	}
	ctl := newController(t, Options{})
	if _, err := ctl.RequestAdmission(ConnSpec{}); err == nil {
		t.Error("empty spec should error")
	}
	bad := testSpec(t, "c1", 0, 0, 1, 0)
	bad.Deadline = -1
	if _, err := ctl.RequestAdmission(bad); err == nil {
		t.Error("negative deadline should error")
	}
	// Unroutable spec is a rejection, not an error.
	weird := testSpec(t, "c2", 0, 0, 0, 0)
	dec, err := ctl.RequestAdmission(weird)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Admitted || dec.Reason != ReasonInvalidTarget {
		t.Errorf("self-route: Admitted=%v Reason=%q", dec.Admitted, dec.Reason)
	}
	if _, err := ctl.BreakdownFor("ghost"); err == nil {
		t.Error("unknown breakdown id should error")
	}
}

func TestDecisionDelaysMatchReport(t *testing.T) {
	ctl := newController(t, Options{})
	dec, err := ctl.RequestAdmission(testSpec(t, "c1", 0, 0, 1, 0))
	if err != nil || !dec.Admitted {
		t.Fatalf("admission failed: %v %v", err, dec.Reason)
	}
	report, err := ctl.DelayReport()
	if err != nil {
		t.Fatal(err)
	}
	if !units.WithinRel(report["c1"], dec.Delays["c1"], 1e-9) {
		t.Errorf("report delay %v differs from decision delay %v", report["c1"], dec.Delays["c1"])
	}
	if math.IsInf(report["c1"], 0) {
		t.Error("admitted connection has no finite bound")
	}
}

// TestCommitRollsBackOnReceiverRingFailure is the regression test for the
// half-committed admit: when the receiver ring rejects its allocation, the
// sender ring's reservation must be rolled back and the candidate object
// left untouched (no phantom HS/HR on a connection that was never admitted).
func TestCommitRollsBackOnReceiverRingFailure(t *testing.T) {
	ctl := newController(t, Options{})
	spec := testSpec(t, "c1", 0, 0, 1, 0)
	route, err := ctl.Network().Route(spec.Src, spec.Dst)
	if err != nil {
		t.Fatal(err)
	}
	if !route.CrossesBackbone {
		t.Fatal("test route must cross the backbone to exercise the receiver ring")
	}
	cand := &Connection{ConnSpec: spec, Route: route}

	// Exhaust the receiver ring so its Allocate must fail, while the sender
	// ring stays wide open.
	dst := ctl.Network().Ring(spec.Dst.Ring)
	if err := dst.Allocate("squatter", dst.Available()); err != nil {
		t.Fatal(err)
	}

	if err := ctl.commit(cand, allocation{hs: 1e-3, hr: 1e-3}); err == nil {
		t.Fatal("commit with a full receiver ring should fail")
	}
	if _, held := ctl.Network().Ring(spec.Src.Ring).Allocation("c1"); held {
		t.Error("sender-ring allocation leaked after the receiver-ring failure")
	}
	if cand.HS != 0 || cand.HR != 0 {
		t.Errorf("failed commit mutated the candidate: HS=%v HR=%v, want 0/0", cand.HS, cand.HR)
	}
	if ctl.Active() != 0 {
		t.Errorf("controller recorded %d connections after a failed commit", ctl.Active())
	}

	// Once the squatter releases, the same id admits cleanly — no residue.
	if !dst.Release("squatter") {
		t.Fatal("squatter release failed")
	}
	dec, err := ctl.RequestAdmission(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Admitted {
		t.Fatalf("post-rollback admit rejected: %s", dec.Reason)
	}
}
