package core

import (
	"math"
	"testing"

	"fafnet/internal/des"
	"fafnet/internal/fddi"
	"fafnet/internal/units"
)

// loadedController returns a controller with two admitted competitors, so
// region probes see nontrivial coupling.
func loadedController(t *testing.T) *Controller {
	t.Helper()
	ctl := newController(t, Options{})
	for i, pair := range [][4]int{{0, 1, 1, 1}, {1, 2, 0, 2}} {
		spec := testSpec(t, fmtID("bg", i), pair[0], pair[1], pair[2], pair[3])
		spec.Deadline = 0.035
		dec, err := ctl.RequestAdmission(spec)
		if err != nil || !dec.Admitted {
			t.Fatalf("background admission %d: %v %v", i, err, dec.Reason)
		}
	}
	return ctl
}

// TestFeasibleRegionConvexity samples pairs of feasible allocations and
// verifies their midpoint is feasible — the empirical content of Theorem 3.
func TestFeasibleRegionConvexity(t *testing.T) {
	ctl := loadedController(t)
	spec := testSpec(t, "probe", 0, 0, 1, 0)
	spec.Deadline = 0.030

	hsMax := ctl.Network().Ring(0).Available()
	hrMax := ctl.Network().Ring(1).Available()
	rng := des.NewRNG(17)

	var feasible [][2]float64
	for len(feasible) < 12 {
		hs := rng.Uniform(0.1*hsMax, hsMax)
		hr := rng.Uniform(0.1*hrMax, hrMax)
		ok, err := ctl.FeasibleAllocation(spec, hs, hr)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			feasible = append(feasible, [2]float64{hs, hr})
		}
	}
	for i := 0; i < len(feasible); i++ {
		for j := i + 1; j < len(feasible); j++ {
			midHS := (feasible[i][0] + feasible[j][0]) / 2
			midHR := (feasible[i][1] + feasible[j][1]) / 2
			ok, err := ctl.FeasibleAllocation(spec, midHS, midHR)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("midpoint of feasible points (%v,%v) and (%v,%v) infeasible at (%v,%v)",
					feasible[i][0], feasible[i][1], feasible[j][0], feasible[j][1], midHS, midHR)
			}
		}
	}
}

// TestBetaInterpolationIdentity checks Eq. 35–36 exactly: the committed
// allocation is min_need + β·(max_need − min_need) per component.
func TestBetaInterpolationIdentity(t *testing.T) {
	for _, beta := range []float64{0, 0.3, 0.5, 0.8, 1} {
		ctl := newController(t, Options{Beta: beta, BetaSet: true})
		dec, err := ctl.RequestAdmission(testSpec(t, "c1", 0, 0, 1, 0))
		if err != nil || !dec.Admitted {
			t.Fatalf("beta=%v: %v %v", beta, err, dec.Reason)
		}
		wantHS := dec.HSMinNeed + beta*(dec.HSMaxNeed-dec.HSMinNeed)
		wantHR := dec.HRMinNeed + beta*(dec.HRMaxNeed-dec.HRMinNeed)
		if !units.WithinRel(dec.HS, wantHS, 1e-9) || !units.WithinRel(dec.HR, wantHR, 1e-9) {
			t.Errorf("beta=%v: allocation (%v,%v), want Eq.35–36 point (%v,%v)",
				beta, dec.HS, dec.HR, wantHS, wantHR)
		}
	}
}

// TestMoreBandwidthNeverHurtsDelays probes the monotonicity the max_need
// search relies on: along the proportional segment, the candidate's delay
// is non-increasing.
func TestMoreBandwidthNeverHurtsDelays(t *testing.T) {
	ctl := loadedController(t)
	net := ctl.Network()
	an, err := NewAnalyzer(net, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	existing := ctl.Connections()
	probeConn := testConnOn(t, net, "probe", 0, 0, 1, 0, 0, 0)

	hsMax := net.Ring(0).Available()
	hrMax := net.Ring(1).Available()
	prev := math.Inf(1)
	for _, alpha := range []float64{0.2, 0.35, 0.5, 0.75, 1.0} {
		probeConn.HS = alpha * hsMax
		probeConn.HR = alpha * hrMax
		delays, err := an.Delays(append(append([]*Connection{}, existing...), probeConn))
		if err != nil {
			t.Fatal(err)
		}
		d := delays["probe"]
		if math.IsInf(d, 1) {
			continue // below stability floor at small alpha
		}
		if d > prev*(1+1e-9) {
			t.Errorf("alpha=%v: probe delay %v above %v at smaller allocation", alpha, d, prev)
		}
		prev = d
	}
}

// TestHostBufferConstrainedAdmission exercises the Theorem 1 buffer-overflow
// path through the full CAC: a tiny source buffer forces rejection, a
// sufficient one admits.
func TestHostBufferConstrainedAdmission(t *testing.T) {
	tiny := testSpec(t, "c1", 0, 0, 1, 0)
	tiny.HostBufferBits = 5e3 // smaller than one C2 burst
	ctl := newController(t, Options{})
	dec, err := ctl.RequestAdmission(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Admitted {
		t.Fatal("admission with an overflowing source buffer")
	}
	if dec.Reason != ReasonInfeasible {
		t.Errorf("Reason = %q", dec.Reason)
	}

	roomy := testSpec(t, "c2", 0, 0, 1, 0)
	roomy.HostBufferBits = 4e6
	ctl2 := newController(t, Options{})
	dec, err = ctl2.RequestAdmission(roomy)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Admitted {
		t.Errorf("admission with a 4 Mbit buffer rejected: %s", dec.Reason)
	}
}

// TestIDBufferConstrainedAdmission mirrors the buffer test at the receiving
// interface device.
func TestIDBufferConstrainedAdmission(t *testing.T) {
	tight := testSpec(t, "c1", 0, 0, 1, 0)
	tight.IDBufferBits = 5e3
	ctl := newController(t, Options{})
	dec, err := ctl.RequestAdmission(tight)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Admitted {
		t.Fatal("admission with an overflowing reassembly buffer")
	}
}

// TestExactOutputOption runs the whole analysis with the paper's exact Υ(I)
// output envelopes (Theorem 1 Eq. 12) instead of the fast delay-based bound,
// and checks the results stay finite, deadline-feasible and close.
func TestExactOutputOption(t *testing.T) {
	opts := Options{Analysis: AnalysisOptions{MAC: fddi.Options{Output: fddi.OutputExact}}}
	ctl, err := NewController(defaultNet(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := ctl.RequestAdmission(testSpec(t, "c1", 0, 0, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Admitted {
		t.Fatalf("exact-output admission rejected: %s", dec.Reason)
	}
	exact := dec.Delays["c1"]

	ctlFast := newController(t, Options{})
	decFast, err := ctlFast.RequestAdmission(testSpec(t, "c1", 0, 0, 1, 0))
	if err != nil || !decFast.Admitted {
		t.Fatalf("fast admission: %v %v", err, decFast.Reason)
	}
	fast := decFast.Delays["c1"]
	if math.IsInf(exact, 0) || exact <= 0 {
		t.Fatalf("exact delay = %v", exact)
	}
	// Both are valid bounds on the same system; they should agree within a
	// modest factor.
	if exact > fast*2 || fast > exact*2 {
		t.Errorf("exact %v and fast %v bounds disagree wildly", exact, fast)
	}
}
