package core

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"slices"
	"sort"

	"fafnet/internal/atm"
	"fafnet/internal/fddi"
	"fafnet/internal/ifdev"
	"fafnet/internal/shaper"
	"fafnet/internal/topo"
	"fafnet/internal/traffic"
)

// errInfeasible marks a connection (or a port it flows through) with no
// finite worst-case bound under the probed allocation. It flows through the
// evaluation as the value +Inf rather than as a hard failure: an infinite
// delay simply fails the deadline test.
var errInfeasible = errors.New("core: no finite delay bound")

// Analyzer computes network-wide worst-case delays by propagating traffic
// envelopes along every connection's server chain and analyzing each shared
// FIFO port with the envelopes of all connections that traverse it. It
// caches the expensive sender-MAC analyses across evaluations (an existing
// connection's source envelope does not depend on any other connection's
// allocation). Analyzer is not safe for concurrent use.
type Analyzer struct {
	net  *topo.Network
	opts AnalysisOptions
	// macCache memoizes sender-MAC results, keyed first by connection and
	// then by the probed allocation H: valid as long as the connection's
	// source descriptor is unchanged. The two-level shape makes Forget an
	// O(1) delete instead of a scan over every (connection, H) pair — the
	// CAC forgets on every release and every rejected admission.
	macCache map[string]map[float64]macEntry
	// stage0Cache carries each connection's fused, memoized envelope at the
	// entrance of its first shared port across evaluations, keyed like
	// macCache by the sender allocation it was built with: a CAC bisection
	// revisits the same handful of allocations, and each entry (with every
	// Bits value its memo accumulates, and its lowered flat's pointer
	// identity) stays valid until Forget. Unused under DisableFusion.
	stage0Cache map[string]map[float64]stage0Entry
	// stageFlats caches each connection's per-stage flat envelopes across
	// evaluations, keyed by the exact inputs that determine them: the sender
	// allocation and the worst-case delays of the upstream ports on the
	// route. Admission probes and releases revisit the same global states,
	// so the same keys — and therefore the same pointer-stable arrays —
	// recur, which in turn lets portMux and dstCache key entire analysis
	// results by flat identity.
	stageFlats map[string][]stageFlatEntry
	// portMux caches FIFO-port analysis results keyed by the exact member
	// flat set (pointer identity, in evaluation order): a port whose members
	// all match a previously analyzed state reuses the delay verbatim. Flats
	// are value-immutable (window extension preserves every evaluation), so
	// pointer equality implies envelope equality.
	portMux map[topo.PortID][]portMuxEntry
	// dstCache caches receiver-MAC analyses keyed by the connection's flat
	// envelope entering the destination (pointer identity) and the receiver
	// allocation — together they pin every input of the Theorem 1 analysis.
	dstCache map[string]map[dstKey]macEntry
	// portAgg holds the materialized per-port aggregate envelopes (flat
	// sums of the member envelopes entering each shared FIFO port),
	// delta-updated as members appear, change allocation, or depart — see
	// portAggregate. Unused when the flat path is disabled.
	portAgg map[topo.PortID]*portAggState
	// specs records, per connection id, the specification the per-connection
	// caches above were populated under. Every evaluation revalidates its
	// connections against this map and purges an id whose spec changed, so
	// cached state survives Forget (an admit/release/re-admit cycle — the
	// steady state of a CAC — reuses everything) without a reused id ever
	// seeing another spec's results.
	specs map[string]ConnSpec
	// stats accumulates cache hit/miss counts over the analyzer's lifetime.
	stats CacheStats
}

type stage0Entry struct {
	env traffic.Descriptor
	// flat is env lowered into a flat breakpoint array (nil when the chain
	// has no exact lowering, e.g. shaped connections); flatTried
	// distinguishes "not lowered yet" from "not lowerable". Cached beside
	// env so the array — and its pointer identity, which the incremental
	// port aggregates diff against — survives across evaluations exactly as
	// long as the fused envelope does.
	flat      *traffic.Flat
	flatTried bool
}

// stageFlatEntry is one cached per-stage flat: the envelope of a connection
// entering route port `stage`, valid whenever the sender allocation and the
// upstream port delays match exactly.
type stageFlatEntry struct {
	stage int
	h     float64
	ds    []float64 // worst-case delays of ports 0..stage-1, exact
	flat  *traffic.Flat
}

// portMuxEntry is one cached FIFO-port analysis: the member flats it was
// computed against (evaluation order) and the outcome — either a finite
// worst-case delay or the infeasibility verdict.
type portMuxEntry struct {
	flats []*traffic.Flat
	delay float64
	err   error
}

// dstKey identifies a receiver-MAC analysis: the flat envelope entering the
// destination interface device and the receiver allocation.
type dstKey struct {
	flat *traffic.Flat
	hr   float64
}

// Per-key cache entry caps. One CAC bisection at a busy port generates on
// the order of a hundred distinct states (each probed allocation shifts
// every downstream envelope), and the same states recur on the next
// admission of the same spec, so the caps must hold a full bisection's
// working set or every iteration recomputes it. On overflow the older half
// is dropped — the recurring keys are the recently used ones.
const (
	maxStageFlatEntries = 512
	maxPortMuxEntries   = 256
	maxDstEntries       = 512
)

type macEntry struct {
	res fddi.MACResult
	err error
}

// NewAnalyzer builds an analyzer for the given network.
func NewAnalyzer(net *topo.Network, opts AnalysisOptions) (*Analyzer, error) {
	if net == nil {
		return nil, errors.New("core: Analyzer requires a network")
	}
	return &Analyzer{
		net:         net,
		opts:        opts,
		macCache:    make(map[string]map[float64]macEntry),
		stage0Cache: make(map[string]map[float64]stage0Entry),
		stageFlats:  make(map[string][]stageFlatEntry),
		portMux:     make(map[topo.PortID][]portMuxEntry),
		dstCache:    make(map[string]map[dstKey]macEntry),
		portAgg:     make(map[topo.PortID]*portAggState),
		specs:       make(map[string]ConnSpec),
	}, nil
}

// maxTrackedConns bounds how many connection ids the analyzer retains cached
// state for; past it, everything is dropped wholesale. Far above any single
// network's active set, it only guards long-lived analyzers fed a stream of
// unique ids.
const maxTrackedConns = 256

// revalidate checks connection c against the spec its cached state was built
// under, purging the per-connection caches when the id is new or the spec
// changed. It makes cache reuse safe across Forget: stale state cannot leak
// into a reused id because the first evaluation that sees the new spec
// drops it.
func (a *Analyzer) revalidate(c *Connection) {
	if old, ok := a.specs[c.ID]; ok && sameSpec(old, c.ConnSpec) {
		return
	}
	if len(a.specs) >= maxTrackedConns {
		clear(a.specs)
		clear(a.macCache)
		clear(a.stage0Cache)
		clear(a.stageFlats)
		clear(a.dstCache)
		// The flats those entries point at are unreachable now, so the
		// pointer-keyed port results can never match again either.
		clear(a.portMux)
	}
	a.purge(c.ID)
	a.specs[c.ID] = c.ConnSpec
}

// purge drops every per-connection cache entry for the given id.
func (a *Analyzer) purge(connID string) {
	delete(a.macCache, connID)
	delete(a.stage0Cache, connID)
	delete(a.stageFlats, connID)
	delete(a.dstCache, connID)
}

// sameSpec reports whether two specifications are identical for caching
// purposes. The source descriptor and shaper are compared by identity (or
// shallow value for the shaper): callers that rebuild an equal descriptor
// merely miss the cache, never corrupt it.
func sameSpec(a, b ConnSpec) bool {
	if a.ID != b.ID || a.Src != b.Src || a.Dst != b.Dst ||
		a.HostBufferBits != b.HostBufferBits || a.IDBufferBits != b.IDBufferBits {
		return false
	}
	if a.Shape != b.Shape &&
		(a.Shape == nil || b.Shape == nil || *a.Shape != *b.Shape) {
		return false
	}
	return sameDescriptor(a.Source, b.Source)
}

// sameDescriptor compares two descriptors: pointers by identity, comparable
// value types (Periodic, DualPeriodic — plain parameter structs) by value.
// Non-comparable dynamic types report false rather than risking the panic
// interface equality would raise.
func sameDescriptor(x, y traffic.Descriptor) bool {
	if x == nil || y == nil {
		return x == nil && y == nil
	}
	tx := reflect.TypeOf(x)
	if tx != reflect.TypeOf(y) || !tx.Comparable() {
		return false
	}
	return x == y
}

// Forget marks a connection as released. Its cached results are retained —
// every per-connection cache is revalidated against the spec it was built
// under on the next evaluation that sees the id, so a re-admission with the
// same specification (the steady state of an admit/release CAC) reuses
// everything, and a reused id with different traffic starts clean. The
// materialized port aggregates likewise stay: the next mux analysis of any
// port the connection traversed diffs its member set against the
// materialized one and subtracts the departed flat — the release half of
// the incremental delta updates.
func (a *Analyzer) Forget(connID string) {
	// Dropping only the spec record would be wrong — revalidation would
	// then treat the retained caches as fresh for whatever spec shows up
	// next. Keeping both spec and caches is what makes the retention safe.
}

// CacheStats returns the cache hit/miss totals accumulated since the
// analyzer was built. Snapshot it around an operation and Sub the snapshots
// to attribute cache traffic to that operation.
func (a *Analyzer) CacheStats() CacheStats { return a.stats }

// Delays returns the worst-case end-to-end delay of every connection under
// the given allocations. Connections without a finite bound map to +Inf.
// A non-nil error indicates a structural problem (invalid route or spec),
// not an infeasible allocation.
func (a *Analyzer) Delays(conns []*Connection) (map[string]float64, error) {
	ev, err := a.newEvaluation(conns)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(conns))
	for _, c := range conns {
		d, err := ev.totalDelay(c)
		if err != nil {
			if errors.Is(err, errInfeasible) {
				out[c.ID] = math.Inf(1)
				continue
			}
			return nil, err
		}
		out[c.ID] = d
	}
	return out, nil
}

// Breakdown returns the per-server decomposition of one connection's worst
// case under the given allocations.
func (a *Analyzer) Breakdown(conns []*Connection, id string) (Breakdown, error) {
	ev, err := a.newEvaluation(conns)
	if err != nil {
		return Breakdown{}, err
	}
	c := ev.conns[id]
	if c == nil {
		return Breakdown{}, fmt.Errorf("core: unknown connection %q", id)
	}
	return ev.breakdown(c)
}

// evaluation is one consistent snapshot: all envelopes and port delays are
// computed against the same set of connections and allocations, memoized for
// the duration of the evaluation.
type evaluation struct {
	a       *Analyzer
	conns   map[string]*Connection
	ordered []*Connection // deterministic iteration order

	portDelay  map[topo.PortID]float64
	portBusy   map[topo.PortID]bool
	envMemo    map[envKey]traffic.Descriptor
	macMemo    map[string]fddi.MACResult // sender MAC per connection this evaluation
	shaperMemo map[string]shaper.Result  // ingress regulator per shaped connection
	// flatMemo memoizes flatEntering per evaluation, including the nil
	// verdict for chains with no exact lowering.
	flatMemo map[envKey]*traffic.Flat

	// prefilledDelay carries end-to-end results proven unaffected by the
	// current probe (see ProbeSession); totalDelay returns them directly.
	prefilledDelay map[string]float64
}

type envKey struct {
	connID string
	stage  int // index into Route.Ports: envelope entering that port
}

func (a *Analyzer) newEvaluation(conns []*Connection) (*evaluation, error) {
	// Size the memo maps for the common shape — every connection crossing the
	// backbone contributes one envelope per route stage (plus stage 0) and
	// one MAC/shaper entry; ports are shared, so a handful suffices.
	ev := &evaluation{
		a:          a,
		conns:      make(map[string]*Connection, len(conns)),
		portDelay:  make(map[topo.PortID]float64, 8),
		portBusy:   make(map[topo.PortID]bool, 8),
		envMemo:    make(map[envKey]traffic.Descriptor, 4*len(conns)),
		macMemo:    make(map[string]fddi.MACResult, len(conns)),
		shaperMemo: make(map[string]shaper.Result, len(conns)),
		flatMemo:   make(map[envKey]*traffic.Flat, 4*len(conns)),
	}
	for _, c := range conns {
		if c == nil {
			return nil, errors.New("core: nil connection in evaluation")
		}
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if _, dup := ev.conns[c.ID]; dup {
			return nil, fmt.Errorf("core: duplicate connection id %q", c.ID)
		}
		if c.HS <= 0 {
			return nil, fmt.Errorf("core: connection %q has no sender allocation", c.ID)
		}
		if c.Route.CrossesBackbone && c.HR <= 0 {
			return nil, fmt.Errorf("core: connection %q crosses the backbone without a receiver allocation", c.ID)
		}
		a.revalidate(c)
		ev.conns[c.ID] = c
		ev.ordered = append(ev.ordered, c)
	}
	sort.Slice(ev.ordered, func(i, j int) bool { return ev.ordered[i].ID < ev.ordered[j].ID })
	return ev, nil
}

// srcMAC analyzes the sender-host FDDI MAC (Theorem 1), with cross-
// evaluation caching.
func (ev *evaluation) srcMAC(c *Connection) (fddi.MACResult, error) {
	if res, ok := ev.macMemo[c.ID]; ok {
		return res, nil
	}
	byH := ev.a.macCache[c.ID]
	if e, ok := byH[c.HS]; ok {
		ev.a.stats.MACHits++
		mCacheMACHits.Inc()
		if e.err == nil {
			ev.macMemo[c.ID] = e.res
		}
		return e.res, e.err
	}
	ev.a.stats.MACMisses++
	mCacheMACMisses.Inc()
	params := fddi.MACParams{
		Ring:       ev.a.net.RingConfig(c.Src.Ring),
		H:          c.HS,
		BufferBits: c.HostBufferBits,
	}
	res, err := fddi.AnalyzeMAC(c.Source, params, ev.a.opts.MAC)
	if err != nil {
		err = fmt.Errorf("%w: sender MAC of %q: %v", errInfeasible, c.ID, err)
	}
	if byH == nil {
		// A CAC bisection probes ~2·SearchIters allocations per request.
		byH = make(map[float64]macEntry, 32)
		ev.a.macCache[c.ID] = byH
	}
	byH[c.HS] = macEntry{res: res, err: err}
	if err == nil {
		ev.macMemo[c.ID] = res
	}
	return res, err
}

// envelopeHit answers an envelopeEntering query from the per-evaluation
// memo or (for stage 0) the cross-evaluation stage-0 cache. On a warm probe
// nearly every envelope query lands here, so the helper is annotated: the
// hotpath analyzer proves the dominant path of a probe allocation-free and
// non-blocking, while the rebuild tail below stays unannotated — it is
// entered once per (connection, allocation) and allocates by design.
//
//fafvet:hotpath
func (ev *evaluation) envelopeHit(key envKey, c *Connection) (traffic.Descriptor, bool) {
	if env, ok := ev.envMemo[key]; ok {
		return env, true
	}
	if key.stage != 0 || ev.a.opts.DisableFusion {
		return nil, false
	}
	// Exact equality on the allocation: the cached envelope is valid only
	// for precisely the h it was built with.
	e, ok := ev.a.stage0Cache[c.ID][c.HS]
	if !ok {
		return nil, false
	}
	ev.a.stats.Stage0Hits++
	mCacheStage0Hits.Inc()
	ev.envMemo[key] = e.env
	return e.env, true
}

// envelopeEntering returns connection c's traffic envelope at the entrance
// of the stage-th shared port on its route.
func (ev *evaluation) envelopeEntering(c *Connection, stage int) (traffic.Descriptor, error) {
	key := envKey{connID: c.ID, stage: stage}
	if env, ok := ev.envelopeHit(key, c); ok {
		return env, nil
	}
	var env traffic.Descriptor
	if stage == 0 {
		if !ev.a.opts.DisableFusion {
			ev.a.stats.Stage0Misses++
			mCacheStage0Misses.Inc()
		}
		// Sender MAC output, optional ingress regulator, then frame→cell
		// conversion (Theorem 2). The constant-delay stages in between are
		// envelope-invariant.
		mac, err := ev.srcMAC(c)
		if err != nil {
			return nil, err
		}
		pre := mac.Output
		if c.Shape != nil {
			sh, err := ev.shaperResult(c, pre)
			if err != nil {
				return nil, err
			}
			pre = sh.Output
		}
		frameBits := ev.a.net.RingConfig(c.Src.Ring).FrameBits(c.HS)
		conv, err := ifdev.SenderConversion(pre, frameBits, ev.a.net.Config().ID)
		if err != nil {
			return nil, err
		}
		env = conv
		if !ev.a.opts.DisableFusion {
			// The stage-0 envelope depends only on this connection's spec and
			// sender allocation, so the fused, memoized form — and every Bits
			// value it accumulates — is reusable verbatim by later evaluations
			// until the connection is Forgotten. Entries are kept per probed
			// allocation: a bisection that revisits an h reuses the envelope
			// and its lowered flat, pointer identity included.
			env = traffic.Fuse(env)
			byH := ev.a.stage0Cache[c.ID]
			if byH == nil {
				byH = make(map[float64]stage0Entry, 32)
				ev.a.stage0Cache[c.ID] = byH
			}
			byH[c.HS] = stage0Entry{env: env}
		}
	} else {
		prev, err := ev.envelopeEntering(c, stage-1)
		if err != nil {
			return nil, err
		}
		d, err := ev.muxDelay(c.Route.Ports[stage-1])
		if err != nil {
			return nil, err
		}
		out, err := traffic.NewDelayed(prev, d, ev.a.net.PortCapacity())
		if err != nil {
			return nil, fmt.Errorf("core: envelope after port %v: %w", c.Route.Ports[stage-1], err)
		}
		env = out
		if !ev.a.opts.DisableFusion {
			// Every per-port stage shares the one backbone port capacity, so
			// the Delayed stack over the stage-0 envelope collapses to a
			// single Delayed with the summed delay; downstream consumers
			// (later ports' mux analyses, the receiver MAC) then pay one
			// transform per Bits call instead of one per traversed port.
			env = traffic.Fuse(env)
		}
	}
	ev.envMemo[key] = env
	return env, nil
}

// shaperResult analyzes the ingress regulator for a shaped connection,
// memoized per evaluation. A frame that can never conform (σ below the
// connection's frame size) makes the bound infinite.
func (ev *evaluation) shaperResult(c *Connection, pre traffic.Descriptor) (shaper.Result, error) {
	if res, ok := ev.shaperMemo[c.ID]; ok {
		return res, nil
	}
	frameBits := ev.a.net.RingConfig(c.Src.Ring).FrameBits(c.HS)
	if c.Shape.SigmaBits < frameBits {
		return shaper.Result{}, fmt.Errorf("%w: shaper of %q: bucket %v bits below frame size %v",
			errInfeasible, c.ID, c.Shape.SigmaBits, frameBits)
	}
	res, err := shaper.Analyze(pre, *c.Shape, shaper.Options{})
	if err != nil {
		return shaper.Result{}, fmt.Errorf("%w: shaper of %q: %v", errInfeasible, c.ID, err)
	}
	ev.shaperMemo[c.ID] = res
	return res, nil
}

// muxDelay returns the worst-case queueing delay of a shared FIFO port,
// analyzed with the envelopes of every connection traversing it.
func (ev *evaluation) muxDelay(p topo.PortID) (float64, error) {
	if d, ok := ev.portDelay[p]; ok {
		if math.IsInf(d, 1) {
			// The first analysis of this port found no finite bound; repeat
			// the infeasibility verdict instead of handing +Inf to envelope
			// constructors downstream.
			return 0, fmt.Errorf("%w: port %v has no finite bound", errInfeasible, p)
		}
		return d, nil
	}
	if ev.portBusy[p] {
		return 0, fmt.Errorf("core: cyclic port dependency at %v", p)
	}
	ev.portBusy[p] = true
	defer func() { ev.portBusy[p] = false }()

	var inputs []traffic.Descriptor
	var flats []*traffic.Flat
	var ids []string
	allFlat := ev.a.flatEnabled()
	for _, m := range ev.ordered {
		for stage, q := range m.Route.Ports {
			if q != p {
				continue
			}
			env, err := ev.envelopeEntering(m, stage)
			if err != nil {
				if errors.Is(err, errInfeasible) {
					// A member with an unbounded envelope floods the port:
					// no finite bound for anyone behind it.
					ev.portDelay[p] = math.Inf(1)
					return 0, fmt.Errorf("%w: port %v carries unbounded member %q", errInfeasible, p, m.ID)
				}
				return 0, err
			}
			inputs = append(inputs, env)
			if allFlat {
				if f := ev.flatEntering(m, stage); f != nil {
					flats = append(flats, f)
					ids = append(ids, m.ID)
				} else {
					allFlat = false
				}
			}
			break
		}
	}
	if len(inputs) == 0 {
		ev.portDelay[p] = 0
		return 0, nil
	}
	var res atm.MuxResult
	var err error
	params := atm.MuxParams{CapacityBps: ev.a.net.PortCapacity()}
	if allFlat {
		// A port whose member flat set matches a previously analyzed state
		// (pointer identity — flats are value-immutable, and the stage caches
		// keep pointers stable across probes of the same global state) reuses
		// the verdict without touching the aggregate.
		for i := range ev.a.portMux[p] {
			if e := &ev.a.portMux[p][i]; slices.Equal(e.flats, flats) {
				if e.err != nil {
					ev.portDelay[p] = math.Inf(1)
					return 0, e.err
				}
				ev.portDelay[p] = e.delay
				return e.delay, nil
			}
		}
		// Every member lowered: analyze the port against the materialized
		// flat aggregate, delta-updated from the previous member set (the
		// common probe changes one member). The members-union tail covers
		// evaluations beyond the flat window.
		agg := ev.a.portAggregate(p, ids, flats)
		res, err = atm.AnalyzeAggregate(agg, params, ev.a.opts.Mux)
	} else {
		res, err = atm.AnalyzeMux(inputs, params, ev.a.opts.Mux)
	}
	if err != nil {
		switch {
		case errors.Is(err, atm.ErrMuxOverload),
			errors.Is(err, atm.ErrMuxNoConvergence),
			errors.Is(err, atm.ErrMuxBufferOverflow):
			err = fmt.Errorf("%w: port %v: %v", errInfeasible, p, err)
			if allFlat {
				ev.a.storePortMux(p, flats, 0, err)
			}
			ev.portDelay[p] = math.Inf(1)
			return 0, err
		default:
			return 0, err
		}
	}
	if allFlat {
		ev.a.storePortMux(p, flats, res.Delay, nil)
	}
	ev.portDelay[p] = res.Delay
	return res.Delay, nil
}

// storePortMux records one port analysis verdict under its member flat set,
// resetting the per-port list when it outgrows the cap.
func (a *Analyzer) storePortMux(p topo.PortID, flats []*traffic.Flat, delay float64, err error) {
	entries := a.portMux[p]
	if len(entries) >= maxPortMuxEntries {
		entries = append(entries[:0], entries[len(entries)/2:]...)
	}
	a.portMux[p] = append(entries, portMuxEntry{flats: slices.Clone(flats), delay: delay, err: err})
}

// dstMAC analyzes the receiving interface device's MAC on the destination
// ring (the FDDI_R portion, mirroring the FDDI_S analysis).
func (ev *evaluation) dstMAC(c *Connection) (fddi.MACResult, error) {
	// The receiver-MAC analysis is a pure function of the envelope entering
	// the destination and the receiver allocation. When the envelope is a
	// cached flat, its pointer identity pins the whole input, so a previous
	// verdict for the same (flat, HR) pair — the common case across the
	// probes and releases of a CAC — is reused verbatim.
	lf := ev.flatEntering(c, len(c.Route.Ports))
	if lf != nil {
		if e, ok := ev.a.dstCache[c.ID][dstKey{flat: lf, hr: c.HR}]; ok {
			return e.res, e.err
		}
	}
	env, err := ev.envelopeEntering(c, len(c.Route.Ports))
	if err != nil {
		return fddi.MACResult{}, err
	}
	frameBits := ev.a.net.RingConfig(c.Dst.Ring).FrameBits(c.HR)
	reassembled, err := ifdev.ReceiverConversion(env, frameBits, ev.a.net.Config().ID)
	if err != nil {
		return fddi.MACResult{}, err
	}
	var input traffic.Descriptor = reassembled
	if !ev.a.opts.DisableFusion {
		// The receiver-MAC analysis dominates probe cost: Theorem 1 walks a
		// grid proportional to the busy interval, paying the full transform
		// chain at every point. Fusing flattens the reassembled chain first.
		// (No Memoized here: the MAC grid visits each point about once, so a
		// per-call evaluation cache would cost more than it saves.)
		input = traffic.Fuse(reassembled)
		if lf != nil {
			// Apply the reassembly quantization to the already-lowered
			// stage-chain flat in closed form: every grid evaluation of the
			// scans becomes a segment lookup instead of a chain walk. The
			// fused chain stays on as the exact tail.
			if qn, ok := reassembled.(traffic.Quantized); ok {
				if qf := lf.Quantize(qn.QuantumBits, qn.OutBits, flatHorizon, input); qf != nil {
					input = qf
					mFlatLowerings.Inc()
				}
			}
		}
	}
	params := fddi.MACParams{
		Ring:       ev.a.net.RingConfig(c.Dst.Ring),
		H:          c.HR,
		BufferBits: c.IDBufferBits,
	}
	res, err := fddi.AnalyzeMAC(input, params, ev.a.opts.MAC)
	if err != nil {
		err = fmt.Errorf("%w: receiver MAC of %q: %v", errInfeasible, c.ID, err)
		res = fddi.MACResult{}
	}
	if lf != nil {
		byKey := ev.a.dstCache[c.ID]
		if byKey == nil {
			byKey = make(map[dstKey]macEntry, 32)
			ev.a.dstCache[c.ID] = byKey
		} else if len(byKey) >= maxDstEntries {
			clear(byKey)
		}
		byKey[dstKey{flat: lf, hr: c.HR}] = macEntry{res: res, err: err}
	}
	return res, err
}

// totalDelay is Eq. 7: the sum of the worst-case delays of every server on
// the connection's path.
func (ev *evaluation) totalDelay(c *Connection) (float64, error) {
	if d, ok := ev.prefilledDelay[c.ID]; ok {
		return d, nil
	}
	b, err := ev.breakdown(c)
	if err != nil {
		return 0, err
	}
	return b.Total, nil
}

// breakdown assembles the per-server decomposition.
func (ev *evaluation) breakdown(c *Connection) (Breakdown, error) {
	mac, err := ev.srcMAC(c)
	if err != nil {
		return Breakdown{}, err
	}
	bd := Breakdown{SrcMAC: mac.Delay, Constant: c.Route.ConstantDelay, SrcBufferBits: mac.BufferBits}
	if !c.Route.CrossesBackbone {
		bd.Total = bd.SrcMAC + bd.Constant
		return bd, nil
	}
	if c.Shape != nil {
		sh, err := ev.shaperResult(c, mac.Output)
		if err != nil {
			return Breakdown{}, err
		}
		bd.Shaper = sh.Delay
	}
	for _, p := range c.Route.Ports {
		d, err := ev.muxDelay(p)
		if err != nil {
			return Breakdown{}, err
		}
		bd.Ports = append(bd.Ports, PortDelay{Port: p, Delay: d})
	}
	dst, err := ev.dstMAC(c)
	if err != nil {
		return Breakdown{}, err
	}
	bd.DstMAC = dst.Delay
	bd.DstBufferBits = dst.BufferBits
	bd.Total = bd.SrcMAC + bd.Shaper + bd.Constant + bd.DstMAC
	for _, pd := range bd.Ports {
		bd.Total += pd.Delay
	}
	return bd, nil
}
