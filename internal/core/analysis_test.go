package core

import (
	"math"
	"testing"

	"fafnet/internal/topo"
	"fafnet/internal/traffic"
	"fafnet/internal/units"
)

// paperSource returns the dual-periodic workload of Section 6.
func paperSource(t testing.TB) traffic.Descriptor {
	t.Helper()
	d, err := traffic.NewDualPeriodic(150e3, 0.010, 30e3, 0.001, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func defaultNet(t testing.TB) *topo.Network {
	t.Helper()
	n, err := topo.NewNetwork(topo.Default())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func testConn(t testing.TB, id string, srcRing, srcHost, dstRing, dstHost int, hs, hr float64) *Connection {
	t.Helper()
	net := defaultNet(t)
	return testConnOn(t, net, id, srcRing, srcHost, dstRing, dstHost, hs, hr)
}

func testConnOn(t testing.TB, net *topo.Network, id string, srcRing, srcHost, dstRing, dstHost int, hs, hr float64) *Connection {
	t.Helper()
	src := topo.HostID{Ring: srcRing, Index: srcHost}
	dst := topo.HostID{Ring: dstRing, Index: dstHost}
	route, err := net.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	return &Connection{
		ConnSpec: ConnSpec{
			ID:       id,
			Src:      src,
			Dst:      dst,
			Source:   paperSource(t),
			Deadline: 0.120,
		},
		Route: route,
		HS:    hs,
		HR:    hr,
	}
}

func TestAnalyzerSingleConnection(t *testing.T) {
	net := defaultNet(t)
	an, err := NewAnalyzer(net, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := testConnOn(t, net, "c1", 0, 0, 1, 0, 2e-3, 2e-3)
	delays, err := an.Delays([]*Connection{c})
	if err != nil {
		t.Fatal(err)
	}
	d := delays["c1"]
	if math.IsInf(d, 0) || d <= 0 {
		t.Fatalf("delay = %v, want finite positive", d)
	}
	// Two FDDI MACs bound the delay from below: each is at least 2·TTRT − H.
	ttrt := net.Config().Ring.TTRT
	if d < 2*(2*ttrt-2e-3) {
		t.Errorf("delay %v below the two-MAC protocol floor %v", d, 2*(2*ttrt-2e-3))
	}
	// And the deadline of the standard workload is satisfiable.
	if d > 0.120 {
		t.Errorf("delay %v exceeds the standard deadline", d)
	}
}

func TestBreakdownSumsToTotal(t *testing.T) {
	net := defaultNet(t)
	an, err := NewAnalyzer(net, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := testConnOn(t, net, "c1", 0, 1, 2, 3, 2e-3, 2e-3)
	bd, err := an.Breakdown([]*Connection{c}, "c1")
	if err != nil {
		t.Fatal(err)
	}
	sum := bd.SrcMAC + bd.DstMAC + bd.Constant
	for _, pd := range bd.Ports {
		sum += pd.Delay
	}
	if !units.AlmostEq(sum, bd.Total) {
		t.Errorf("breakdown parts sum to %v, Total = %v", sum, bd.Total)
	}
	if len(bd.Ports) != 3 {
		t.Errorf("route crosses %d ports, want 3", len(bd.Ports))
	}
	if bd.Constant <= 0 {
		t.Errorf("Constant = %v, want positive", bd.Constant)
	}
	// Delays match the Delays() path.
	delays, err := an.Delays([]*Connection{c})
	if err != nil {
		t.Fatal(err)
	}
	if !units.AlmostEq(delays["c1"], bd.Total) {
		t.Errorf("Delays = %v, Breakdown.Total = %v", delays["c1"], bd.Total)
	}
}

func TestDelayMonotoneInAllocation(t *testing.T) {
	net := defaultNet(t)
	an, err := NewAnalyzer(net, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, h := range []float64{1.3e-3, 1.6e-3, 2e-3, 3e-3, 5e-3} {
		c := testConnOn(t, net, "c1", 0, 0, 1, 0, h, h)
		delays, err := an.Delays([]*Connection{c})
		if err != nil {
			t.Fatal(err)
		}
		if d := delays["c1"]; d > prev*(1+1e-9) {
			t.Errorf("H=%v: delay %v exceeds %v at smaller allocation", h, d, prev)
		} else {
			prev = d
		}
	}
}

func TestUnderAllocatedConnectionIsInfinite(t *testing.T) {
	net := defaultNet(t)
	an, err := NewAnalyzer(net, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// rho = 15 Mb/s needs H >= 1.2 ms; 0.5 ms is unstable.
	c := testConnOn(t, net, "c1", 0, 0, 1, 0, 0.5e-3, 2e-3)
	delays, err := an.Delays([]*Connection{c})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(delays["c1"], 1) {
		t.Errorf("delay = %v, want +Inf for unstable allocation", delays["c1"])
	}
}

func TestUnderAllocatedReceiverIsInfinite(t *testing.T) {
	net := defaultNet(t)
	an, err := NewAnalyzer(net, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := testConnOn(t, net, "c1", 0, 0, 1, 0, 2e-3, 0.5e-3)
	delays, err := an.Delays([]*Connection{c})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(delays["c1"], 1) {
		t.Errorf("delay = %v, want +Inf for unstable receiver allocation", delays["c1"])
	}
}

func TestSharedPortCoupling(t *testing.T) {
	// Two connections leaving ring 0 share the id0 uplink port: each one's
	// delay with the other present must be at least its delay alone.
	net := defaultNet(t)
	an, err := NewAnalyzer(net, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a := testConnOn(t, net, "a", 0, 0, 1, 0, 2e-3, 2e-3)
	b := testConnOn(t, net, "b", 0, 1, 2, 0, 2e-3, 2e-3)
	alone, err := an.Delays([]*Connection{a})
	if err != nil {
		t.Fatal(err)
	}
	both, err := an.Delays([]*Connection{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if both["a"] < alone["a"]-units.Eps {
		t.Errorf("a with competitor = %v, alone = %v: sharing decreased delay", both["a"], alone["a"])
	}
	// The shared uplink port contributes the same bound to both connections.
	bdA, err := an.Breakdown([]*Connection{a, b}, "a")
	if err != nil {
		t.Fatal(err)
	}
	bdB, err := an.Breakdown([]*Connection{a, b}, "b")
	if err != nil {
		t.Fatal(err)
	}
	if bdA.Ports[0].Port != bdB.Ports[0].Port {
		t.Fatalf("expected shared first port, got %v vs %v", bdA.Ports[0].Port, bdB.Ports[0].Port)
	}
	if !units.AlmostEq(bdA.Ports[0].Delay, bdB.Ports[0].Delay) {
		t.Errorf("shared port delays differ: %v vs %v", bdA.Ports[0].Delay, bdB.Ports[0].Delay)
	}
}

func TestOverloadedSharerPoisonsPort(t *testing.T) {
	// If one connection through a port has an unbounded envelope (unstable
	// MAC), every connection sharing that port loses its finite bound.
	net := defaultNet(t)
	an, err := NewAnalyzer(net, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	good := testConnOn(t, net, "good", 0, 0, 1, 0, 2e-3, 2e-3)
	bad := testConnOn(t, net, "bad", 0, 1, 1, 1, 0.5e-3, 2e-3) // unstable sender MAC
	delays, err := an.Delays([]*Connection{good, bad})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(delays["bad"], 1) {
		t.Errorf("bad delay = %v, want +Inf", delays["bad"])
	}
	if !math.IsInf(delays["good"], 1) {
		t.Errorf("good delay = %v, want +Inf (shares the flooded uplink)", delays["good"])
	}
}

func TestSameRingRoute(t *testing.T) {
	net := defaultNet(t)
	an, err := NewAnalyzer(net, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := testConnOn(t, net, "c1", 0, 0, 0, 2, 2e-3, 0)
	delays, err := an.Delays([]*Connection{c})
	if err != nil {
		t.Fatal(err)
	}
	d := delays["c1"]
	if math.IsInf(d, 0) {
		t.Fatal("same-ring delay should be finite")
	}
	bd, err := an.Breakdown([]*Connection{c}, "c1")
	if err != nil {
		t.Fatal(err)
	}
	if len(bd.Ports) != 0 || bd.DstMAC != 0 {
		t.Errorf("same-ring breakdown should have no backbone terms: %+v", bd)
	}
	if !units.AlmostEq(bd.Total, bd.SrcMAC+bd.Constant) {
		t.Errorf("Total = %v, want SrcMAC+Constant = %v", bd.Total, bd.SrcMAC+bd.Constant)
	}
}

func TestEvaluationValidation(t *testing.T) {
	net := defaultNet(t)
	an, err := NewAnalyzer(net, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c1 := testConnOn(t, net, "dup", 0, 0, 1, 0, 2e-3, 2e-3)
	c2 := testConnOn(t, net, "dup", 0, 1, 1, 1, 2e-3, 2e-3)
	if _, err := an.Delays([]*Connection{c1, c2}); err == nil {
		t.Error("duplicate ids should be rejected")
	}
	if _, err := an.Delays([]*Connection{nil}); err == nil {
		t.Error("nil connection should be rejected")
	}
	noHS := testConnOn(t, net, "x", 0, 0, 1, 0, 0, 2e-3)
	if _, err := an.Delays([]*Connection{noHS}); err == nil {
		t.Error("missing sender allocation should be rejected")
	}
	noHR := testConnOn(t, net, "y", 0, 0, 1, 0, 2e-3, 0)
	if _, err := an.Delays([]*Connection{noHR}); err == nil {
		t.Error("missing receiver allocation should be rejected")
	}
	if _, err := an.Breakdown([]*Connection{c1}, "ghost"); err == nil {
		t.Error("unknown breakdown id should be rejected")
	}
}

func TestMACCacheConsistency(t *testing.T) {
	// Cached and fresh evaluations must agree exactly.
	net := defaultNet(t)
	an, err := NewAnalyzer(net, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := testConnOn(t, net, "c1", 0, 0, 1, 0, 2e-3, 2e-3)
	first, err := an.Delays([]*Connection{c})
	if err != nil {
		t.Fatal(err)
	}
	second, err := an.Delays([]*Connection{c})
	if err != nil {
		t.Fatal(err)
	}
	if first["c1"] != second["c1"] {
		t.Errorf("cached delay %v differs from fresh %v", second["c1"], first["c1"])
	}
	an.Forget("c1")
	third, err := an.Delays([]*Connection{c})
	if err != nil {
		t.Fatal(err)
	}
	if first["c1"] != third["c1"] {
		t.Errorf("post-Forget delay %v differs from original %v", third["c1"], first["c1"])
	}
}
