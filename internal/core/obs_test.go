package core

import (
	"testing"

	"fafnet/internal/units"
)

// TestDecisionCarriesStagesAndCache covers the observability additions to
// Decision: the Eq. 7 decomposition of the committed allocation and the
// per-decision cache-traffic diff.
func TestDecisionCarriesStagesAndCache(t *testing.T) {
	ctl := newController(t, Options{})
	dec, err := ctl.RequestAdmission(testSpec(t, "c1", 0, 0, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Admitted {
		t.Fatalf("rejected: %s", dec.Reason)
	}
	if dec.Stages == nil {
		t.Fatal("admitted decision carries no stage decomposition")
	}
	// The decomposition must agree with the committed decision: same total
	// as the recorded delay, and the stages must sum to the total.
	if !units.AlmostEq(dec.Stages.Total, dec.Delays["c1"]) {
		t.Errorf("Stages.Total = %v, recorded delay = %v", dec.Stages.Total, dec.Delays["c1"])
	}
	sum := dec.Stages.SrcMAC + dec.Stages.Shaper + dec.Stages.DstMAC + dec.Stages.Constant
	for _, pd := range dec.Stages.Ports {
		sum += pd.Delay
	}
	if !units.AlmostEq(sum, dec.Stages.Total) {
		t.Errorf("stage sum %v != Total %v", sum, dec.Stages.Total)
	}
	// Cache traffic: a bisecting admission re-probes the candidate's sender
	// MAC at many allocations — every first visit is a miss.
	if dec.Cache.MACMisses == 0 {
		t.Errorf("Cache = %+v, want nonzero MAC misses", dec.Cache)
	}

	// A second admission re-evaluates c1's stage-0 envelope and sender MAC
	// at its committed (unchanged) allocation: cache hits.
	dec2, err := ctl.RequestAdmission(testSpec(t, "c2", 0, 1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !dec2.Admitted {
		t.Fatalf("second admission rejected: %s", dec2.Reason)
	}
	if dec2.Cache.Stage0Hits == 0 && dec2.Cache.MACHits == 0 {
		t.Errorf("second decision saw no cache hits: %+v", dec2.Cache)
	}
	// Lifetime totals are the sum of the per-decision diffs.
	total := ctl.analyzer.CacheStats()
	want := dec.Cache
	for _, c := range []CacheStats{dec2.Cache} {
		want.Stage0Hits += c.Stage0Hits
		want.Stage0Misses += c.Stage0Misses
		want.MACHits += c.MACHits
		want.MACMisses += c.MACMisses
	}
	if total != want {
		t.Errorf("analyzer totals %+v != summed decision diffs %+v", total, want)
	}

	// The decomposition must also agree with a fresh full evaluation of the
	// committed state. c2 decided against the final connection set
	// (c1 admitted, nothing after), so its stages are still current — c1's
	// are not, since c2's traffic changed c1's port delays. (Run last:
	// BreakdownFor itself generates cache traffic outside any decision,
	// which would skew the totals check above.)
	fresh, err := ctl.BreakdownFor("c2")
	if err != nil {
		t.Fatal(err)
	}
	if !units.AlmostEq(fresh.Total, dec2.Stages.Total) {
		t.Errorf("fresh breakdown total %v != decision stages total %v", fresh.Total, dec2.Stages.Total)
	}
}

// TestPreviewLeavesGaugeConsistent ensures preview decisions do not commit
// state (the active-connections invariant the gauge reports).
func TestPreviewStagesMatchAdmission(t *testing.T) {
	preview := newController(t, Options{})
	pdec, err := preview.PreviewAdmission(testSpec(t, "c1", 0, 0, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	commit := newController(t, Options{})
	cdec, err := commit.RequestAdmission(testSpec(t, "c1", 0, 0, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !pdec.Admitted || !cdec.Admitted {
		t.Fatalf("admissions failed: %v / %v", pdec.Reason, cdec.Reason)
	}
	if pdec.Stages == nil || cdec.Stages == nil {
		t.Fatal("missing stage decomposition")
	}
	if !units.AlmostEq(pdec.Stages.Total, cdec.Stages.Total) {
		t.Errorf("preview total %v != commit total %v", pdec.Stages.Total, cdec.Stages.Total)
	}
	if preview.Active() != 0 {
		t.Errorf("preview committed %d connections", preview.Active())
	}
}
