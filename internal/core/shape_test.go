package core

import (
	"math"
	"testing"

	"fafnet/internal/shaper"
)

// TestShapedConnectionAnalysis: shaping shows up in the breakdown and
// tightens the shared-port delays other connections see.
func TestShapedConnectionAnalysis(t *testing.T) {
	// Unshaped baseline: two bursty connections share the id0 uplink.
	build := func(shape *shaper.Spec) (Breakdown, Breakdown) {
		net := defaultNet(t)
		an, err := NewAnalyzer(net, AnalysisOptions{})
		if err != nil {
			t.Fatal(err)
		}
		a := testConnOn(t, net, "a", 0, 0, 1, 0, 2e-3, 2e-3)
		a.Shape = shape
		b := testConnOn(t, net, "b", 0, 1, 2, 0, 2e-3, 2e-3)
		conns := []*Connection{a, b}
		bdA, err := an.Breakdown(conns, "a")
		if err != nil {
			t.Fatal(err)
		}
		bdB, err := an.Breakdown(conns, "b")
		if err != nil {
			t.Fatal(err)
		}
		return bdA, bdB
	}

	unshapedA, unshapedB := build(nil)
	if unshapedA.Shaper != 0 {
		t.Errorf("unshaped breakdown has shaper delay %v", unshapedA.Shaper)
	}

	// Shape connection a to near its sustained rate (ρ = 18 Mb/s for the
	// 15 Mb/s source, bucket just above the frame size so shaping binds).
	spec := &shaper.Spec{SigmaBits: 40e3, RhoBps: 18e6}
	shapedA, shapedB := build(spec)
	if shapedA.Shaper <= 0 {
		t.Fatalf("shaped breakdown lacks shaper delay: %+v", shapedA)
	}
	// The shaped connection's first-port contribution must not grow, and
	// the competitor's shared-port delay must shrink or stay equal.
	if shapedB.Ports[0].Delay > unshapedB.Ports[0].Delay+1e-12 {
		t.Errorf("shaping a increased b's shared-port delay: %v → %v",
			unshapedB.Ports[0].Delay, shapedB.Ports[0].Delay)
	}
	// Totals remain finite and self-consistent.
	sum := shapedA.SrcMAC + shapedA.Shaper + shapedA.DstMAC + shapedA.Constant
	for _, p := range shapedA.Ports {
		sum += p.Delay
	}
	if math.Abs(sum-shapedA.Total) > 1e-12 {
		t.Errorf("shaped breakdown parts %v != total %v", sum, shapedA.Total)
	}
	_ = unshapedA
}

// TestShapedAdmission runs the CAC with a shaped spec end to end.
func TestShapedAdmission(t *testing.T) {
	ctl := newController(t, Options{})
	spec := testSpec(t, "s1", 0, 0, 1, 0)
	spec.Shape = &shaper.Spec{SigmaBits: 40e3, RhoBps: 18e6}
	dec, err := ctl.RequestAdmission(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Admitted {
		t.Fatalf("shaped admission rejected: %s", dec.Reason)
	}
	bd, err := ctl.BreakdownFor("s1")
	if err != nil {
		t.Fatal(err)
	}
	if bd.Shaper <= 0 {
		t.Errorf("admitted shaped connection reports no shaper delay")
	}
}

// TestShaperTooSmallForFrames: a bucket below the frame size can never pass
// a frame; the CAC must reject rather than admit an unbounded connection.
func TestShaperTooSmallForFrames(t *testing.T) {
	ctl := newController(t, Options{})
	spec := testSpec(t, "s1", 0, 0, 1, 0)
	spec.Shape = &shaper.Spec{SigmaBits: 100, RhoBps: 18e6} // tiny bucket
	dec, err := ctl.RequestAdmission(spec)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Admitted {
		t.Fatal("admitted a connection whose frames can never conform")
	}
}

// TestShaperRateTooLow: ρ below the source's long-term rate is unbounded.
func TestShaperRateTooLow(t *testing.T) {
	ctl := newController(t, Options{})
	spec := testSpec(t, "s1", 0, 0, 1, 0)
	spec.Shape = &shaper.Spec{SigmaBits: 250e3, RhoBps: 1e6} // source is 15 Mb/s
	dec, err := ctl.RequestAdmission(spec)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Admitted {
		t.Fatal("admitted a connection with an unstable regulator")
	}
	if dec.Reason != ReasonInfeasible {
		t.Errorf("Reason = %q", dec.Reason)
	}
}

// TestInvalidShapeSpecIsRequestError: malformed shaping parameters are a
// validation error, not a rejection.
func TestInvalidShapeSpecIsRequestError(t *testing.T) {
	ctl := newController(t, Options{})
	spec := testSpec(t, "s1", 0, 0, 1, 0)
	spec.Shape = &shaper.Spec{SigmaBits: -1, RhoBps: 1e6}
	if _, err := ctl.RequestAdmission(spec); err == nil {
		t.Error("invalid shape spec should be a request error")
	}
}
