package core

import (
	"math"
	"testing"

	"fafnet/internal/fddi"
	"fafnet/internal/tokenring"
	"fafnet/internal/topo"
	"fafnet/internal/traffic"
	"fafnet/internal/units"
)

// heteroTopology builds a genuinely heterogeneous network: a fast-token
// FDDI ring, a classic 8 ms-TTRT FDDI ring, and a 16 Mb/s IEEE 802.5
// token-ring segment, all behind the ATM backbone.
func heteroTopology() topo.Config {
	cfg := topo.Default()
	tr := tokenring.RingConfig{
		BandwidthBps:   tokenring.Rate16Mbps,
		WalkTime:       0.5e-3,
		TargetRotation: 8e-3,
		HopLatency:     5e-6,
	}
	cfg.Rings = []fddi.RingConfig{
		cfg.Ring,                 // ring 0: 4 ms TTRT FDDI
		fddi.DefaultRingConfig(), // ring 1: classic 8 ms TTRT FDDI
		tr.SimConfig(),           // ring 2: 802.5 segment
	}
	return cfg
}

func TestHeterogeneousRingConfigs(t *testing.T) {
	net, err := topo.NewNetwork(heteroTopology())
	if err != nil {
		t.Fatal(err)
	}
	if got := net.RingConfig(0).TTRT; !units.AlmostEq(got, 4e-3) {
		t.Errorf("ring 0 TTRT = %v", got)
	}
	if got := net.RingConfig(1).TTRT; !units.AlmostEq(got, 8e-3) {
		t.Errorf("ring 1 TTRT = %v", got)
	}
	if got := net.RingConfig(2).BandwidthBps; !units.AlmostEq(got, 16e6) {
		t.Errorf("ring 2 bandwidth = %v", got)
	}
	// Per-ring availability follows each segment's own budget.
	if got := net.Ring(2).Available(); !units.AlmostEq(got, 7.5e-3) {
		t.Errorf("802.5 ring available = %v, want 7.5 ms", got)
	}
}

func TestHeterogeneousConfigValidation(t *testing.T) {
	cfg := heteroTopology()
	cfg.Rings = cfg.Rings[:2] // wrong length
	if err := cfg.Validate(); err == nil {
		t.Error("mismatched per-ring config count should be rejected")
	}
	cfg = heteroTopology()
	cfg.Rings[1].TTRT = 0
	if err := cfg.Validate(); err == nil {
		t.Error("invalid per-ring config should be rejected")
	}
}

// TestHeterogeneousAdmission runs the full CAC across the mixed network:
// FDDI→FDDI, FDDI→802.5 and 802.5→FDDI connections.
func TestHeterogeneousAdmission(t *testing.T) {
	net, err := topo.NewNetwork(heteroTopology())
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A lighter source so the 16 Mb/s segment can carry it comfortably:
	// 20 kbit per 10 ms (2 Mb/s), bursts of 4 kbit per ms.
	src, err := traffic.NewDualPeriodic(20e3, 0.010, 4e3, 0.001, 16e6)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id string, s, si, d, di int) ConnSpec {
		return ConnSpec{
			ID:       id,
			Src:      topo.HostID{Ring: s, Index: si},
			Dst:      topo.HostID{Ring: d, Index: di},
			Source:   src,
			Deadline: 0.120, // the slow 802.5 segment needs more headroom
		}
	}
	for _, spec := range []ConnSpec{
		mk("fddi-fddi", 0, 0, 1, 0),
		mk("fddi-tr", 0, 1, 2, 0),
		mk("tr-fddi", 2, 1, 0, 2),
	} {
		dec, err := ctl.RequestAdmission(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Admitted {
			t.Fatalf("%s rejected: %s", spec.ID, dec.Reason)
		}
		if d := dec.Delays[spec.ID]; math.IsInf(d, 0) || d > spec.Deadline {
			t.Fatalf("%s delay %v", spec.ID, d)
		}
	}
	// The connection ending on the 802.5 segment pays the slower medium:
	// its receiver MAC bound must exceed the FDDI→FDDI one's.
	bdTR, err := ctl.BreakdownFor("fddi-tr")
	if err != nil {
		t.Fatal(err)
	}
	bdFF, err := ctl.BreakdownFor("fddi-fddi")
	if err != nil {
		t.Fatal(err)
	}
	if bdTR.DstMAC <= bdFF.DstMAC {
		t.Errorf("802.5 receiver MAC bound %v not above FDDI's %v", bdTR.DstMAC, bdFF.DstMAC)
	}
}
