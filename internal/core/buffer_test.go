package core

import (
	"testing"
)

func TestBufferReport(t *testing.T) {
	ctl := newController(t, Options{})
	for i, pair := range [][4]int{{0, 0, 1, 0}, {1, 0, 2, 0}} {
		dec, err := ctl.RequestAdmission(testSpec(t, fmtID("c", i), pair[0], pair[1], pair[2], pair[3]))
		if err != nil || !dec.Admitted {
			t.Fatalf("setup %d: %v %v", i, err, dec.Reason)
		}
	}
	report, err := ctl.BufferReport()
	if err != nil {
		t.Fatal(err)
	}
	if len(report) != 2 {
		t.Fatalf("report entries = %d, want 2", len(report))
	}
	for _, r := range report {
		if r.SrcBufferBits <= 0 {
			t.Errorf("%s: source buffer requirement %v, want positive", r.ConnID, r.SrcBufferBits)
		}
		if r.DstBufferBits <= 0 {
			t.Errorf("%s: device buffer requirement %v, want positive", r.ConnID, r.DstBufferBits)
		}
		// The requirement can never exceed what the source could emit over
		// the whole busy interval; sanity-bound it by one second of traffic.
		if r.SrcBufferBits > 15e6 {
			t.Errorf("%s: absurd source buffer requirement %v", r.ConnID, r.SrcBufferBits)
		}
	}
	// The reported requirement is consistent with the breakdown.
	bd, err := ctl.BreakdownFor("c0")
	if err != nil {
		t.Fatal(err)
	}
	if bd.SrcBufferBits != report[0].SrcBufferBits {
		t.Errorf("breakdown src buffer %v != report %v", bd.SrcBufferBits, report[0].SrcBufferBits)
	}
}

// TestPreviewAdmission: the preview path reports the same decision as the
// committing path but leaves no state behind.
func TestPreviewAdmission(t *testing.T) {
	ctl := newController(t, Options{})
	spec := testSpec(t, "c1", 0, 0, 1, 0)
	preview, err := ctl.PreviewAdmission(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !preview.Admitted {
		t.Fatalf("preview rejected: %s", preview.Reason)
	}
	if ctl.Active() != 0 {
		t.Fatalf("preview committed a connection")
	}
	if got := ctl.Network().Ring(0).Allocated(); got != 0 {
		t.Fatalf("preview reserved %v on ring 0", got)
	}
	// Committing afterwards yields the identical decision.
	real, err := ctl.RequestAdmission(spec)
	if err != nil {
		t.Fatal(err)
	}
	if real.HS != preview.HS || real.HR != preview.HR || real.Admitted != preview.Admitted {
		t.Errorf("preview (%v,%v) and commit (%v,%v) disagree", preview.HS, preview.HR, real.HS, real.HR)
	}
	// Previewing an impossible request also leaves no state.
	bad := testSpec(t, "c2", 0, 1, 1, 1)
	bad.Deadline = 1e-3
	dec, err := ctl.PreviewAdmission(bad)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Admitted {
		t.Error("impossible preview admitted")
	}
	if ctl.Active() != 1 {
		t.Errorf("Active = %d after failed preview, want 1", ctl.Active())
	}
}

// TestAdmissionDeterminism: identical request sequences against identical
// controllers produce identical decisions and allocations.
func TestAdmissionDeterminism(t *testing.T) {
	runSeq := func() []Decision {
		ctl := newController(t, Options{})
		var out []Decision
		for i, pair := range [][4]int{{0, 0, 1, 0}, {0, 1, 2, 0}, {1, 0, 2, 1}, {2, 0, 0, 2}} {
			dec, err := ctl.RequestAdmission(testSpec(t, fmtID("c", i), pair[0], pair[1], pair[2], pair[3]))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, dec)
		}
		return out
	}
	a, b := runSeq(), runSeq()
	for i := range a {
		if a[i].Admitted != b[i].Admitted || a[i].HS != b[i].HS || a[i].HR != b[i].HR {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}
