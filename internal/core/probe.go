package core

import (
	"errors"
	"fmt"
	"math"

	"fafnet/internal/topo"
	"fafnet/internal/traffic"
)

// ProbeSession accelerates the CAC's binary searches. Across the dozens of
// feasibility probes of one admission request, only the candidate's
// allocation changes — so only the FIFO ports the candidate flows through
// (and ports downstream of those, reached by connections that crossed a
// changed port first) can see different traffic. The session computes that
// tainted-port closure once, evaluates everything outside it once, and
// reuses those results for every probe:
//
//   - a port is tainted if the candidate traverses it, or if some connection
//     traverses a tainted port before it (its envelope at the later port
//     shifts with the earlier port's delay);
//   - every member of a tainted port is, by construction, an affected
//     connection, so untainted port delays depend only on unaffected state
//     and can be carried over verbatim;
//   - unaffected connections (no tainted port on their route) keep their
//     end-to-end delays verbatim.
type ProbeSession struct {
	a        *Analyzer
	existing []*Connection
	cand     *Connection

	cleanPortDelay map[topo.PortID]float64
	cleanDelay     map[string]float64
	affected       int

	// stage0 holds each existing connection's envelope entering its first
	// shared port (sender MAC → optional shaper → frame→cell conversion),
	// fused and wrapped in an evaluation memo. That stage depends only on
	// the connection's own source and allocation — never on the candidate's
	// probed (hs, hr) — so one descriptor serves every probe of the session,
	// and the memo carries envelope evaluations across probes: the grid
	// points a port analysis visits barely move between bisection steps.
	// Empty when the analyzer runs with DisableFusion.
	stage0 map[string]traffic.Descriptor

	// probe and scratch are reused across Delays calls: the connection set
	// is identical every probe (existing ∪ candidate), so the evaluation's
	// maps are cleared and re-seeded instead of reallocated ~2·SearchIters
	// times per admission request.
	probe   *Connection
	scratch *evaluation
}

// NewProbeSession prepares probe acceleration for admitting cand among the
// existing connections. cand's allocations need not be set yet.
func (a *Analyzer) NewProbeSession(existing []*Connection, cand *Connection) (*ProbeSession, error) {
	if cand == nil {
		return nil, errors.New("core: probe session requires a candidate")
	}
	s := &ProbeSession{
		a:              a,
		existing:       existing,
		cand:           cand,
		cleanPortDelay: make(map[topo.PortID]float64),
		cleanDelay:     make(map[string]float64),
	}

	tainted := make(map[topo.PortID]bool, len(cand.Route.Ports))
	for _, p := range cand.Route.Ports {
		tainted[p] = true
	}
	for changed := true; changed; {
		changed = false
		for _, m := range existing {
			seen := false
			for _, p := range m.Route.Ports {
				switch {
				case tainted[p]:
					seen = true
				case seen:
					tainted[p] = true
					changed = true
				}
			}
		}
	}
	isAffected := func(m *Connection) bool {
		for _, p := range m.Route.Ports {
			if tainted[p] {
				return true
			}
		}
		return false
	}

	// One candidate-free evaluation supplies every reusable result.
	ev, err := a.newEvaluation(existing)
	if err != nil {
		return nil, err
	}
	for _, m := range ev.ordered {
		d, derr := ev.totalDelay(m)
		if derr != nil {
			if errors.Is(derr, errInfeasible) {
				d = math.Inf(1)
			} else {
				return nil, derr
			}
		}
		if isAffected(m) {
			s.affected++
			continue
		}
		s.cleanDelay[m.ID] = d
	}
	for p, d := range ev.portDelay {
		if !tainted[p] {
			s.cleanPortDelay[p] = d
		}
	}
	if !a.opts.DisableFusion {
		// envelopeEntering already fused and memoized these (stage0Cache);
		// carrying the same wrappers into every probe shares the accumulated
		// evaluations without even a cache lookup on the hot path.
		s.stage0 = make(map[string]traffic.Descriptor, len(existing))
		for _, m := range existing {
			if env, ok := ev.envMemo[envKey{connID: m.ID, stage: 0}]; ok {
				s.stage0[m.ID] = env
			}
		}
	}
	return s, nil
}

// Affected returns the number of existing connections whose delays must be
// recomputed per probe (exposed for tests and instrumentation).
func (s *ProbeSession) Affected() int { return s.affected }

// Breakdown returns the Eq. 7 per-server decomposition of connection id at
// the allocation of the most recent Delays call. The scratch evaluation is
// still warm from that probe — every envelope, port and MAC result is
// memoized — so assembling the decomposition re-runs no analysis. It exists
// so the CAC can report the decomposition of the allocation it just chose
// without paying for a fresh evaluation.
func (s *ProbeSession) Breakdown(id string) (Breakdown, error) {
	if s.scratch == nil {
		return Breakdown{}, errors.New("core: Breakdown before any probe")
	}
	c := s.scratch.conns[id]
	if c == nil {
		return Breakdown{}, fmt.Errorf("core: unknown connection %q", id)
	}
	return s.scratch.breakdown(c)
}

// Delays evaluates the network with the candidate at allocation (hs, hr),
// reusing every result the taint analysis proved invariant. The returned map
// is identical to Analyzer.Delays over existing ∪ {candidate@(hs,hr)}.
func (s *ProbeSession) Delays(hs, hr float64) (map[string]float64, error) {
	ev, err := s.evaluation(hs, hr)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(ev.ordered))
	for _, c := range ev.ordered {
		d, derr := ev.totalDelay(c)
		if derr != nil {
			if errors.Is(derr, errInfeasible) {
				out[c.ID] = math.Inf(1)
				continue
			}
			return nil, fmt.Errorf("core: probe evaluation: %w", derr)
		}
		out[c.ID] = d
	}
	return out, nil
}

// evaluation returns the session's scratch evaluation, reset and re-seeded
// for a probe at (hs, hr). The first call validates the connection set and
// allocates the maps; later calls clear and reuse them, re-checking only the
// allocation-dependent invariants (the set itself cannot have changed).
func (s *ProbeSession) evaluation(hs, hr float64) (*evaluation, error) {
	if s.scratch == nil {
		s.probe = s.cand.clone()
		s.probe.HS, s.probe.HR = hs, hr
		conns := make([]*Connection, 0, len(s.existing)+1)
		conns = append(conns, s.existing...)
		conns = append(conns, s.probe)
		ev, err := s.a.newEvaluation(conns)
		if err != nil {
			return nil, err
		}
		s.scratch = ev
	} else {
		s.probe.HS, s.probe.HR = hs, hr
		if s.probe.HS <= 0 {
			return nil, fmt.Errorf("core: connection %q has no sender allocation", s.probe.ID)
		}
		if s.probe.Route.CrossesBackbone && s.probe.HR <= 0 {
			return nil, fmt.Errorf("core: connection %q crosses the backbone without a receiver allocation", s.probe.ID)
		}
	}
	s.reseed()
	return s.scratch, nil
}

// reseed clears the scratch evaluation's memo maps and re-seeds them with
// the session's probe-invariant results: untainted port delays, unaffected
// end-to-end delays, and the existing connections' stage-0 envelopes. It
// runs once per probe — ~2·SearchIters times per admission request — and
// touches only preallocated state, so it is annotated: the hotpath analyzer
// proves it allocation-free, non-blocking and deterministic (the map
// re-seeding loops are per-key transfers, which are iteration-order-safe).
//
//fafvet:hotpath
func (s *ProbeSession) reseed() {
	ev := s.scratch
	clear(ev.portDelay)
	clear(ev.portBusy)
	clear(ev.envMemo)
	clear(ev.macMemo)
	clear(ev.shaperMemo)
	// Flat arrays are re-resolved per probe: stage-0 flats come straight
	// from the analyzer's stage-0 cache (pointer-stable across probes), and
	// stage-k flats shift with the probe's port delays.
	clear(ev.flatMemo)
	ev.prefilledDelay = s.cleanDelay
	for p, d := range s.cleanPortDelay {
		ev.portDelay[p] = d
	}
	for id, env := range s.stage0 {
		ev.envMemo[envKey{connID: id, stage: 0}] = env
	}
	mProbeStage0Reused.Add(uint64(len(s.stage0)))
}
