// Package stats provides the small set of sample statistics the experiment
// harness reports: means, variance, normal-approximation confidence
// intervals, and admission-probability counters.
package stats

import (
	"fmt"
	"math"
)

// Sample accumulates scalar observations with O(1) memory (Welford).
type Sample struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Sample) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 when empty).
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() float64 { return s.max }

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (s *Sample) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (s *Sample) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(s.n))
}

// String implements fmt.Stringer.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.6g ±%.2g [%.6g, %.6g]", s.n, s.Mean(), s.CI95(), s.min, s.max)
}

// Histogram counts observations in equal-width buckets over [Lo, Hi);
// out-of-range observations are tallied separately. It renders as ASCII
// bars for terminal reports.
type Histogram struct {
	lo, hi      float64
	buckets     []int
	under, over int
	total       int
}

// NewHistogram builds a histogram of n buckets spanning [lo, hi). n must be
// positive and hi must exceed lo.
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: histogram needs positive bucket count, got %d", n)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: histogram range [%v, %v) is empty", lo, hi)
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int, n)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		idx := int(float64(len(h.buckets)) * (x - h.lo) / (h.hi - h.lo))
		if idx == len(h.buckets) {
			idx--
		}
		h.buckets[idx]++
	}
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int { return h.buckets[i] }

// OutOfRange returns the counts below Lo and at or above Hi.
func (h *Histogram) OutOfRange() (under, over int) { return h.under, h.over }

// Render draws one line per bucket with a proportional bar of at most width
// characters.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	peak := 1
	for _, c := range h.buckets {
		if c > peak {
			peak = c
		}
	}
	var b []byte
	step := (h.hi - h.lo) / float64(len(h.buckets))
	for i, c := range h.buckets {
		bar := c * width / peak
		line := fmt.Sprintf("%10.3g..%-10.3g %6d |", h.lo+float64(i)*step, h.lo+float64(i+1)*step, c)
		b = append(b, line...)
		for j := 0; j < bar; j++ {
			b = append(b, '#')
		}
		b = append(b, '\n')
	}
	if h.under > 0 || h.over > 0 {
		b = append(b, fmt.Sprintf("%22s %6d below, %d above range\n", "", h.under, h.over)...)
	}
	return string(b)
}

// Ratio counts successes over trials (e.g. admitted connections over
// admission requests) and reports the proportion with a Wilson score
// confidence interval.
type Ratio struct {
	successes, trials int
}

// Record adds one trial.
func (r *Ratio) Record(success bool) {
	r.trials++
	if success {
		r.successes++
	}
}

// Merge adds the other ratio's counts into r (e.g. pooling per-scenario
// admission counts into a sweep-wide proportion).
func (r *Ratio) Merge(o Ratio) {
	r.successes += o.successes
	r.trials += o.trials
}

// Successes returns the success count.
func (r *Ratio) Successes() int { return r.successes }

// Trials returns the trial count.
func (r *Ratio) Trials() int { return r.trials }

// Value returns the proportion (0 when empty).
func (r *Ratio) Value() float64 {
	if r.trials == 0 {
		return 0
	}
	return float64(r.successes) / float64(r.trials)
}

// CI95 returns the half-width of the Wilson score 95% interval for the
// proportion. Unlike the Wald interval it does not degenerate to ±0 at the
// extremes: one trial with one success reports 1.0000 ±0.3967, not a false
// certainty — exactly the small-sample regime the per-class calibration
// report lives in.
func (r *Ratio) CI95() float64 {
	lo, hi := r.CI95Bounds()
	return (hi - lo) / 2
}

// CI95Bounds returns the Wilson score 95% interval [lo, hi] for the
// proportion. Both bounds are 0 when no trials were recorded.
func (r *Ratio) CI95Bounds() (lo, hi float64) {
	if r.trials == 0 {
		return 0, 0
	}
	const z = 1.96
	n := float64(r.trials)
	p := r.Value()
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z*z/(4*n*n)) / denom
	return center - half, center + half
}

// String implements fmt.Stringer.
func (r *Ratio) String() string {
	return fmt.Sprintf("%d/%d = %.4f ±%.4f", r.successes, r.trials, r.Value(), r.CI95())
}
