package stats

import (
	"math"
	"testing"
)

func TestJainIndex(t *testing.T) {
	if got := JainIndex(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 0 {
		t.Errorf("all-zero = %v", got)
	}
	if got := JainIndex([]float64{3, 3, 3, 3}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal shares = %v, want 1", got)
	}
	// One taker among n: index 1/n.
	if got := JainIndex([]float64{5, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("single taker = %v, want 0.25", got)
	}
	// Known mixed case: (1+2+3)²/(3·(1+4+9)) = 36/42.
	if got := JainIndex([]float64{1, 2, 3}); math.Abs(got-36.0/42.0) > 1e-12 {
		t.Errorf("mixed = %v, want %v", got, 36.0/42.0)
	}
}

func TestMAPE(t *testing.T) {
	if _, err := MAPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	got, err := MAPE([]float64{110, 90}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-12 {
		t.Errorf("MAPE = %v, want 10", got)
	}
	// Zero actuals are skipped, not divided by.
	got, err = MAPE([]float64{1, 50}, []float64{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-50) > 1e-12 {
		t.Errorf("MAPE with zero actual = %v, want 50", got)
	}
	if got, err := MAPE([]float64{1}, []float64{0}); err != nil || got != 0 {
		t.Errorf("all-zero actuals: %v, %v", got, err)
	}
}

func TestPearson(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	perfect, err := Pearson([]float64{1, 2, 3, 4}, []float64{2, 4, 6, 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(perfect-1) > 1e-12 {
		t.Errorf("perfect correlation = %v, want 1", perfect)
	}
	anti, err := Pearson([]float64{1, 2, 3}, []float64{3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(anti+1) > 1e-12 {
		t.Errorf("anti-correlation = %v, want -1", anti)
	}
	if got, _ := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("constant series = %v, want 0", got)
	}
	if got, _ := Pearson([]float64{1}, []float64{2}); got != 0 {
		t.Errorf("single pair = %v, want 0", got)
	}
}
