package stats

import (
	"fmt"
	"math"
)

// JainIndex returns Jain's fairness index of the given allocations:
// (Σx)² / (n·Σx²), which is 1 when all shares are equal and 1/n when one
// share takes everything. An empty or all-zero input reports 0.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// MAPE returns the mean absolute percentage error of predictions against
// actuals, in percent: 100/n · Σ |pred−actual| / |actual|. Pairs whose
// actual is zero are skipped (their percentage error is undefined). The
// slices must have equal length.
func MAPE(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) {
		return 0, fmt.Errorf("stats: MAPE inputs have %d and %d entries", len(pred), len(actual))
	}
	var sum float64
	n := 0
	for i := range pred {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs(pred[i]-actual[i]) / math.Abs(actual[i])
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return 100 * sum / float64(n), nil
}

// Pearson returns the sample Pearson correlation coefficient of the two
// series. It reports 0 when either series is constant (the coefficient is
// undefined there) or when fewer than two pairs are given. The slices must
// have equal length.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: Pearson inputs have %d and %d entries", len(xs), len(ys))
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return 0, nil
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0, nil
	}
	return cov / math.Sqrt(vx*vy), nil
}
