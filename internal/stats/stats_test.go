package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.CI95() != 0 {
		t.Error("empty sample should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Known dataset: population variance 4, sample variance 32/7.
	if math.Abs(s.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.CI95() <= 0 {
		t.Errorf("CI95 = %v", s.CI95())
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestSampleSingleObservation(t *testing.T) {
	var s Sample
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Variance() != 0 || s.Min() != 3.5 || s.Max() != 3.5 {
		t.Errorf("single observation: %+v", s)
	}
}

func TestSampleMatchesNaiveComputation(t *testing.T) {
	f := func(xs []float64) bool {
		var s Sample
		var sum float64
		count := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e8 {
				continue
			}
			s.Add(x)
			sum += x
			count++
		}
		if count == 0 {
			return s.N() == 0
		}
		naive := sum / float64(count)
		return math.Abs(s.Mean()-naive) <= 1e-6*math.Max(1, math.Abs(naive))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero buckets should be rejected")
	}
	if _, err := NewHistogram(5, 5, 4); err == nil {
		t.Error("empty range should be rejected")
	}
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.999, 10, 42} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Errorf("OutOfRange = %d, %d; want 1, 2", under, over)
	}
	wantBuckets := []int{2, 1, 1, 0, 1} // {0,1.9}, {2}, {5}, {}, {9.999}
	for i, want := range wantBuckets {
		if got := h.Bucket(i); got != want {
			t.Errorf("Bucket(%d) = %d, want %d", i, got, want)
		}
	}
	out := h.Render(20)
	if !strings.Contains(out, "#") {
		t.Errorf("render has no bars:\n%s", out)
	}
	if !strings.Contains(out, "below") {
		t.Errorf("render omits out-of-range note:\n%s", out)
	}
}

func TestHistogramRenderEmpty(t *testing.T) {
	h, err := NewHistogram(0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out := h.Render(0); out == "" {
		t.Error("empty histogram should still render bucket rows")
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 || r.CI95() != 0 {
		t.Error("empty ratio should report zeros")
	}
	for i := 0; i < 100; i++ {
		r.Record(i < 75)
	}
	if r.Successes() != 75 || r.Trials() != 100 {
		t.Errorf("counts = %d/%d", r.Successes(), r.Trials())
	}
	if math.Abs(r.Value()-0.75) > 1e-12 {
		t.Errorf("Value = %v", r.Value())
	}
	// Wilson score interval at p=0.75, n=100: half-width of
	// [center − h, center + h] with z = 1.96.
	const z = 1.96
	denom := 1 + z*z/100
	want := z * math.Sqrt(0.75*0.25/100+z*z/(4*100*100)) / denom
	if math.Abs(r.CI95()-want) > 1e-12 {
		t.Errorf("CI95 = %v, want %v", r.CI95(), want)
	}
	lo, hi := r.CI95Bounds()
	if !(lo < 0.75 && 0.75 < hi) {
		t.Errorf("CI95Bounds = [%v, %v] does not cover p=0.75", lo, hi)
	}
	if r.String() == "" {
		t.Error("String should be non-empty")
	}
	// The printed format stays "s/t = p ±w".
	if got := r.String(); got != "75/100 = 0.7500 ±0.0838" {
		t.Errorf("String = %q", got)
	}
}

// TestRatioExtremesNotDegenerate is the regression test for the Wald
// interval bug: at p ∈ {0, 1} the Wald half-width 1.96·√(p(1−p)/n) is
// exactly zero, so one trial with one success printed "1.0000 ±0.0000" —
// false certainty from a single observation. The Wilson interval keeps a
// nonzero width at the extremes.
func TestRatioExtremesNotDegenerate(t *testing.T) {
	var one Ratio
	one.Record(true) // 1 trial, 1 success
	if ci := one.CI95(); ci <= 0.1 {
		t.Errorf("CI95 at 1/1 = %v, want a wide interval (Wald degenerates to 0)", ci)
	}
	lo, hi := one.CI95Bounds()
	if lo <= 0 || hi > 1+1e-12 {
		t.Errorf("CI95Bounds at 1/1 = [%v, %v], want a proper sub-interval of (0, 1]", lo, hi)
	}

	var zero Ratio
	for i := 0; i < 10; i++ {
		zero.Record(false) // 10 trials, 0 successes
	}
	if ci := zero.CI95(); ci <= 0 {
		t.Errorf("CI95 at 0/10 = %v, want > 0", ci)
	}

	// Known Wilson value: 1 trial, 1 success, z=1.96 → half-width 0.3967.
	if got := one.CI95(); math.Abs(got-0.39670) > 1e-4 {
		t.Errorf("CI95 at 1/1 = %v, want ≈ 0.3967", got)
	}
}

func TestRatioBounds(t *testing.T) {
	f := func(outcomes []bool) bool {
		var r Ratio
		for _, o := range outcomes {
			r.Record(o)
		}
		v := r.Value()
		return v >= 0 && v <= 1 && r.CI95() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
