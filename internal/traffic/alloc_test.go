package traffic_test

import (
	"testing"

	"fafnet/internal/traffic"
)

// The Descriptor interface annotates Bits and LongTermRate as //fafvet:hotpath,
// so the analyzer proves every implementation allocation-free at build time.
// These regression tests pin the same property at run time for the paths the
// admission probes actually exercise, so a change that defeats the static
// proof's assumptions (e.g. a descriptor built in a way the analyzer never
// sees) still fails CI.

// evalPoints is a fixed set of query intervals spanning sub-burst to
// multi-period horizons.
func evalPoints() []float64 {
	pts := make([]float64, 0, 100)
	for i := 1; i <= 100; i++ {
		pts = append(pts, float64(i)*3.7e-4)
	}
	return pts
}

// TestFusedEnvelopeEvalAllocationFree pins the warm fused-envelope path: a
// realistic stage-0 chain (MAC output shape → frame→cell quantization →
// FIFO port delays), fused and memoized exactly as the analyzer's stage-0
// cache builds it, must answer repeated Bits queries with zero allocations
// once the memo has seen the points.
func TestFusedEnvelopeEvalAllocationFree(t *testing.T) {
	src, err := traffic.NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	q, err := traffic.NewQuantized(src, 36000, 94*384)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := traffic.NewDelayed(q, 0.4e-3, 140e6)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := traffic.NewDelayed(d1, 0.2e-3, 140e6)
	if err != nil {
		t.Fatal(err)
	}
	m := traffic.NewMemoized(traffic.Fuse(d2))

	pts := evalPoints()
	var sink float64
	for _, p := range pts {
		sink += m.Bits(p)
	}
	if n := testing.AllocsPerRun(100, func() {
		for _, p := range pts {
			sink += m.Bits(p)
		}
	}); n != 0 {
		t.Errorf("warm memoized fused envelope: %v allocs per run, want 0", n)
	}
	_ = sink
}

// TestSourceEvalAllocationFree pins the cold path: the source descriptors
// themselves are pure arithmetic, so even unmemoized evaluation at fresh
// points must not allocate.
func TestSourceEvalAllocationFree(t *testing.T) {
	src, err := traffic.NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	pts := evalPoints()
	var sink float64
	if n := testing.AllocsPerRun(100, func() {
		for _, p := range pts {
			sink += src.Bits(p)
		}
	}); n != 0 {
		t.Errorf("dual-periodic source eval: %v allocs per run, want 0", n)
	}
	_ = sink
}

// TestFlatEvalAllocationFree pins the flat point-eval hot path: once lowered,
// a Flat answers in-window Bits queries (binary search + FMA, cursor hint)
// with zero allocations — no memo table needed.
func TestFlatEvalAllocationFree(t *testing.T) {
	src, err := traffic.NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	q, err := traffic.NewQuantized(src, 36000, 94*384)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := traffic.NewDelayed(q, 0.4e-3, 140e6)
	if err != nil {
		t.Fatal(err)
	}
	f := traffic.Flatten(d1, 64e-3)
	if f == nil {
		t.Fatal("Flatten returned nil")
	}
	pts := evalPoints()
	var sink float64
	if n := testing.AllocsPerRun(100, func() {
		for _, p := range pts {
			sink += f.Bits(p)
		}
	}); n != 0 {
		t.Errorf("warm flat envelope eval: %v allocs per run, want 0", n)
	}
	_ = sink
}

// TestSumIntoAllocationFree pins the warm sum-merge path: merging into a
// scratch Flat whose arrays (and tail aggregate) were sized by a first call
// must not allocate thereafter.
func TestSumIntoAllocationFree(t *testing.T) {
	a, b := flatPair(t)
	dst := &traffic.Flat{}
	traffic.SumInto(dst, a, b) // sizes the scratch
	if n := testing.AllocsPerRun(100, func() {
		traffic.SumInto(dst, a, b)
	}); n != 0 {
		t.Errorf("warm SumInto: %v allocs per run, want 0", n)
	}
}

// TestDeltaUpdateAllocationFree pins the aggregate delta-update cycle the
// analyzer runs per probe — subtract the changed member, add its replacement
// — at zero allocations on warm scratch.
func TestDeltaUpdateAllocationFree(t *testing.T) {
	a, b := flatPair(t)
	agg := traffic.SumFlats(traffic.NewAggregate(a.Tail(), b.Tail()), a, b)
	scratch := &traffic.Flat{}
	cur := &traffic.Flat{}
	traffic.SubInto(scratch, agg, b) // sizes both scratches
	traffic.SumInto(cur, scratch, b)
	if n := testing.AllocsPerRun(100, func() {
		traffic.SubInto(scratch, cur, b)
		traffic.SumInto(cur, scratch, b)
	}); n != 0 {
		t.Errorf("warm delta update: %v allocs per run, want 0", n)
	}
}

// flatPair lowers two harness-shaped envelopes for the merge tests.
func flatPair(t *testing.T) (*traffic.Flat, *traffic.Flat) {
	t.Helper()
	src, err := traffic.NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	per, err := traffic.NewPeriodic(48e3, 8e-3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	a := traffic.Flatten(src, 64e-3)
	b := traffic.Flatten(per, 64e-3)
	if a == nil || b == nil {
		t.Fatal("Flatten returned nil")
	}
	return a, b
}
