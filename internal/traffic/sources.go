package traffic

import (
	"errors"
	"fmt"
	"math"

	"fafnet/internal/units"
)

// errNonPositive is wrapped by the constructors when a parameter that must be
// strictly positive is not.
var errNonPositive = errors.New("parameter must be positive")

// CBR is a constant-bit-rate source: exactly RateBps bits per second in every
// interval. The zero value is a silent source.
type CBR struct {
	// RateBps is the constant rate in bits per second.
	RateBps float64
}

var _ Descriptor = CBR{}

// NewCBR returns a CBR descriptor with the given rate in bits per second.
func NewCBR(rateBps float64) (CBR, error) {
	if rateBps < 0 {
		return CBR{}, fmt.Errorf("traffic: CBR rate %v: must be non-negative", rateBps)
	}
	return CBR{RateBps: rateBps}, nil
}

// Bits implements Descriptor.
func (c CBR) Bits(interval float64) float64 {
	if interval <= 0 {
		return 0
	}
	return c.RateBps * interval
}

// LongTermRate implements Descriptor.
func (c CBR) LongTermRate() float64 { return c.RateBps }

// PeakRate reports the instantaneous peak rate, which for CBR equals the
// long-term rate.
func (c CBR) PeakRate() float64 { return c.RateBps }

// String implements fmt.Stringer.
func (c CBR) String() string { return fmt.Sprintf("CBR(%.3g bps)", c.RateBps) }

// Periodic is the one-period source model: at most C bits in any interval of
// length P, arriving at no more than PeakBps while active. Its envelope is
//
//	A(I) = ⌊I/P⌋·C + min(C, (I mod P)·Peak)
//
// which is the standard worst-case alignment bound for periodic traffic.
type Periodic struct {
	C       float64 // bits per period
	P       float64 // period length in seconds
	PeakBps float64 // instantaneous rate while transmitting, bits/second
}

var _ Descriptor = Periodic{}
var _ BreakpointProvider = Periodic{}

// NewPeriodic validates and returns a periodic descriptor. The peak rate must
// be high enough to deliver C bits within one period (Peak·P >= C).
func NewPeriodic(c, p, peakBps float64) (Periodic, error) {
	switch {
	case c <= 0:
		return Periodic{}, fmt.Errorf("traffic: periodic C=%v: %w", c, errNonPositive)
	case p <= 0:
		return Periodic{}, fmt.Errorf("traffic: periodic P=%v: %w", p, errNonPositive)
	case peakBps <= 0:
		return Periodic{}, fmt.Errorf("traffic: periodic peak=%v: %w", peakBps, errNonPositive)
	case peakBps*p < c*(1-units.RelTol):
		return Periodic{}, fmt.Errorf("traffic: periodic peak %v bps cannot carry %v bits in period %v s", peakBps, c, p)
	}
	return Periodic{C: c, P: p, PeakBps: peakBps}, nil
}

// Bits implements Descriptor.
func (s Periodic) Bits(interval float64) float64 {
	if interval <= 0 {
		return 0
	}
	k := units.FloorDiv(interval, s.P)
	r := interval - k*s.P
	if r < 0 {
		r = 0
	}
	return k*s.C + min(s.C, r*s.PeakBps)
}

// LongTermRate implements Descriptor.
func (s Periodic) LongTermRate() float64 { return s.C / s.P }

// PeakRate implements the optional peak-rate interface.
func (s Periodic) PeakRate() float64 { return s.PeakBps }

// Breakpoints implements BreakpointProvider.
func (s Periodic) Breakpoints(horizon float64) []float64 {
	pts := make([]float64, 0, min(2*(int(horizon/s.P)+2), maxBreakpoints+2))
	burst := s.C / s.PeakBps
	for t := 0.0; t <= horizon; t += s.P {
		pts = pushAscending(pushAscending(pts, t), t+burst)
		if len(pts) > maxBreakpoints {
			break
		}
	}
	return pts
}

// pushAscending appends p while keeping pts ascending: emission loops produce
// points that are ordered except for ulp-level rounding where consecutive
// formulas meet (a sub-period landing on a period boundary, a burst length
// rounding past the period). Restoring order here — same multiset, at most a
// couple of swaps — lets Grid and the merge paths skip their comparison sorts,
// which would otherwise run on every envelope evaluation of every probe.
func pushAscending(pts []float64, p float64) []float64 {
	pts = append(pts, p)
	for i := len(pts) - 1; i > 0 && pts[i] < pts[i-1]; i-- {
		pts[i], pts[i-1] = pts[i-1], pts[i]
	}
	return pts
}

// String implements fmt.Stringer.
func (s Periodic) String() string {
	return fmt.Sprintf("Periodic(C=%.3g b, P=%.3g s, peak=%.3g bps)", s.C, s.P, s.PeakBps)
}

// DualPeriodic is the paper's dual-periodic source model (Eq. 37): at most C1
// bits in any interval of length P1 and at most C2 bits in any interval of
// length P2 (P2 <= P1), arriving at no more than PeakBps while transmitting.
// It generalizes the one-period model by allowing short-term burstiness at
// rate C2/P2 above the long-term rate C1/P1.
type DualPeriodic struct {
	C1      float64 // bits per long period
	P1      float64 // long period, seconds
	C2      float64 // bits per short period
	P2      float64 // short period, seconds
	PeakBps float64 // instantaneous transmission rate, bits/second
}

var _ Descriptor = DualPeriodic{}
var _ BreakpointProvider = DualPeriodic{}

// NewDualPeriodic validates and returns a dual-periodic descriptor.
// Requirements: 0 < P2 <= P1, 0 < C2 <= C1, the short-term rate C2/P2 at
// least the long-term rate C1/P1, and a peak able to deliver C2 within P2.
func NewDualPeriodic(c1, p1, c2, p2, peakBps float64) (DualPeriodic, error) {
	switch {
	case c1 <= 0:
		return DualPeriodic{}, fmt.Errorf("traffic: dual-periodic C1=%v: %w", c1, errNonPositive)
	case p1 <= 0:
		return DualPeriodic{}, fmt.Errorf("traffic: dual-periodic P1=%v: %w", p1, errNonPositive)
	case c2 <= 0:
		return DualPeriodic{}, fmt.Errorf("traffic: dual-periodic C2=%v: %w", c2, errNonPositive)
	case p2 <= 0:
		return DualPeriodic{}, fmt.Errorf("traffic: dual-periodic P2=%v: %w", p2, errNonPositive)
	case peakBps <= 0:
		return DualPeriodic{}, fmt.Errorf("traffic: dual-periodic peak=%v: %w", peakBps, errNonPositive)
	case p2 > p1*(1+units.RelTol):
		return DualPeriodic{}, fmt.Errorf("traffic: dual-periodic P2=%v exceeds P1=%v", p2, p1)
	case c2 > c1*(1+units.RelTol):
		return DualPeriodic{}, fmt.Errorf("traffic: dual-periodic C2=%v exceeds C1=%v", c2, c1)
	case c2/p2 < (c1/p1)*(1-units.RelTol):
		return DualPeriodic{}, fmt.Errorf("traffic: dual-periodic short-term rate %v bps below long-term rate %v bps", c2/p2, c1/p1)
	case peakBps*p2 < c2*(1-units.RelTol):
		return DualPeriodic{}, fmt.Errorf("traffic: dual-periodic peak %v bps cannot carry %v bits in sub-period %v s", peakBps, c2, p2)
	}
	return DualPeriodic{C1: c1, P1: p1, C2: c2, P2: p2, PeakBps: peakBps}, nil
}

// Bits implements Descriptor following Eq. 37 of the paper, with the
// instantaneous transmission rate made explicit (the paper normalizes it
// to the medium rate):
//
//	A(I) = ⌊I/P1⌋·C1 + min(C1, ⌊r/P2⌋·C2 + min(C2, (r mod P2)·Peak)),
//	r = I mod P1.
func (s DualPeriodic) Bits(interval float64) float64 {
	if interval <= 0 {
		return 0
	}
	k1 := units.FloorDiv(interval, s.P1)
	r := interval - k1*s.P1
	if r < 0 {
		r = 0
	}
	k2 := units.FloorDiv(r, s.P2)
	r2 := r - k2*s.P2
	if r2 < 0 {
		r2 = 0
	}
	inner := k2*s.C2 + min(s.C2, r2*s.PeakBps)
	return k1*s.C1 + min(s.C1, inner)
}

// LongTermRate implements Descriptor: ρ = C1/P1 (Eq. 38).
func (s DualPeriodic) LongTermRate() float64 { return s.C1 / s.P1 }

// PeakRate implements the optional peak-rate interface.
func (s DualPeriodic) PeakRate() float64 { return s.PeakBps }

// maxBreakpoints caps the number of intrinsic breakpoints any source emits so
// that extremum searches stay bounded even for long horizons; the uniform
// fallback grid covers the tail.
const maxBreakpoints = 4096

// Breakpoints implements BreakpointProvider: envelope vertices occur at the
// start and end of every burst, i.e. at k·P1 + j·P2 and k·P1 + j·P2 + C2/Peak.
func (s DualPeriodic) Breakpoints(horizon float64) []float64 {
	pts := make([]float64, 0, min(2*(int(horizon/s.P2)+4), maxBreakpoints+2))
	burst := s.C2 / s.PeakBps
	perP1 := int(units.FloorDiv(s.P1, s.P2)) + 1
	for k := 0; ; k++ {
		base := float64(k) * s.P1
		if base > horizon || len(pts) > maxBreakpoints {
			break
		}
		for j := 0; j < perP1; j++ {
			t := base + float64(j)*s.P2
			if t > base+s.P1 || t > horizon {
				break
			}
			// A sub-period landing on the P1 boundary re-emits the next
			// period's base, off by up to one ulp of rounding — pushAscending
			// keeps the list sorted through those seams.
			pts = pushAscending(pushAscending(pts, t), t+burst)
		}
	}
	return pts
}

// String implements fmt.Stringer.
func (s DualPeriodic) String() string {
	return fmt.Sprintf("DualPeriodic(C1=%.3g b/P1=%.3g s, C2=%.3g b/P2=%.3g s, peak=%.3g bps)",
		s.C1, s.P1, s.C2, s.P2, s.PeakBps)
}

// LeakyBucket is the (σ, ρ) regulator envelope with a peak-rate cap:
// A(I) = min(Peak·I, σ + ρ·I). It is provided for interoperability with
// ATM-style usage parameter control and as a simple bound for composed
// traffic.
type LeakyBucket struct {
	Sigma   float64 // bucket depth, bits
	Rho     float64 // token rate, bits/second
	PeakBps float64 // peak rate, bits/second (0 means uncapped)
}

var _ Descriptor = LeakyBucket{}
var _ BreakpointProvider = LeakyBucket{}

// NewLeakyBucket validates and returns a leaky-bucket descriptor. peakBps of
// zero means "no peak cap" (instantaneous bursts allowed).
func NewLeakyBucket(sigma, rho, peakBps float64) (LeakyBucket, error) {
	switch {
	case sigma < 0:
		return LeakyBucket{}, fmt.Errorf("traffic: leaky bucket sigma=%v: must be non-negative", sigma)
	case rho <= 0:
		return LeakyBucket{}, fmt.Errorf("traffic: leaky bucket rho=%v: %w", rho, errNonPositive)
	case peakBps < 0:
		return LeakyBucket{}, fmt.Errorf("traffic: leaky bucket peak=%v: must be non-negative", peakBps)
	case peakBps > 0 && peakBps < rho*(1-units.RelTol):
		return LeakyBucket{}, fmt.Errorf("traffic: leaky bucket peak %v bps below sustained rate %v bps", peakBps, rho)
	}
	return LeakyBucket{Sigma: sigma, Rho: rho, PeakBps: peakBps}, nil
}

// Bits implements Descriptor.
func (b LeakyBucket) Bits(interval float64) float64 {
	if interval <= 0 {
		return 0
	}
	a := b.Sigma + b.Rho*interval
	if b.PeakBps > 0 {
		a = math.Min(a, b.PeakBps*interval)
	}
	return a
}

// LongTermRate implements Descriptor.
func (b LeakyBucket) LongTermRate() float64 { return b.Rho }

// PeakRate implements the optional peak-rate interface.
func (b LeakyBucket) PeakRate() float64 {
	if b.PeakBps > 0 {
		return b.PeakBps
	}
	return math.Inf(1)
}

// Breakpoints implements BreakpointProvider: the only vertex is where the
// peak segment meets the sustained segment.
func (b LeakyBucket) Breakpoints(float64) []float64 {
	if b.PeakBps == 0 || units.AlmostLE(b.PeakBps, b.Rho) {
		return nil
	}
	return []float64{b.Sigma / (b.PeakBps - b.Rho)}
}

// String implements fmt.Stringer.
func (b LeakyBucket) String() string {
	return fmt.Sprintf("LeakyBucket(σ=%.3g b, ρ=%.3g bps, peak=%.3g bps)", b.Sigma, b.Rho, b.PeakBps)
}
