package traffic

import "math"

// Fuse collapses a transform chain algebraically, returning a descriptor
// whose Bits function is pointwise identical (in exact arithmetic) to the
// input's. Only value-preserving rewrites are applied, so fusing never
// loosens or tightens an envelope — it only removes evaluation depth. The
// rules, written with D[d,c](x)(I) = min(c·I, x(I+d)) (c = 0 meaning "no
// cap") and R[r](x)(I) = min(r·I, x(I)):
//
//	D[d2,c2]∘D[d1,0]    = D[d1+d2, c2]                  (inner uncapped)
//	D[d2,c2]∘D[d1,c1]   = D[d1+d2, c2]  when c1 >= c2>0 (inner cap dominated:
//	                                     c2·I <= c1·I <= c1·(I+d2))
//	D[d,c]∘R[r]         = D[d, c]       when r >= c > 0 (same domination)
//	R[r]∘D[d,c]         = D[d, min⁺(r,c)]               (both caps cap the
//	                                     same output; min⁺ ignores c = 0)
//	R[r2]∘R[r1]         = R[min(r1,r2)]
//	D[0,c]              = R[c], and D[0,0] = identity
//	Q[q2,o2]∘Q[q1,o1]   = Q[q1, o2]     when o1 == q2   (⌈n·q2/q2⌉ = n)
//
// Aggregate and Min members are fused recursively and nested Aggregates are
// flattened (Σ is associative). Chains the analysis builds — k Delayed
// stages with one shared port capacity over a Quantized conversion — all
// collapse to depth ≤ 3, turning the O(depth) cost of every Bits call into
// O(1) per member.
//
// Caveat: fusing changes only the *representation*. Float-level results can
// differ in the last ulp where re-association changes rounding (d1+d2
// summed once instead of applied in sequence); every consumer compares
// delays with units tolerances, which absorb this.
func Fuse(d Descriptor) Descriptor {
	switch v := d.(type) {
	case Delayed:
		return fuseDelayed(Delayed{Inner: Fuse(v.Inner), Delay: v.Delay, CapBps: v.CapBps})
	case RateCapped:
		return fuseRateCapped(RateCapped{Inner: Fuse(v.Inner), CapBps: v.CapBps})
	case Quantized:
		inner := Fuse(v.Inner)
		if q, ok := inner.(Quantized); ok && q.OutBits == v.QuantumBits { //lint:allow floatcmp fusion is value-preserving only when the units match exactly; near-equal quanta must keep both stages
			// ⌈⌈A/q1⌉·o1/q2⌉·o2 with o1 = q2 is ⌈A/q1⌉·o2: the inner output
			// is already a whole multiple of the outer quantum.
			return Quantized{Inner: q.Inner, QuantumBits: q.QuantumBits, OutBits: v.OutBits}
		}
		return Quantized{Inner: inner, QuantumBits: v.QuantumBits, OutBits: v.OutBits}
	case Aggregate:
		members := make([]Descriptor, 0, len(v.members))
		for _, m := range v.members {
			fused := Fuse(m)
			if nested, ok := fused.(Aggregate); ok {
				members = append(members, nested.members...)
				continue
			}
			members = append(members, fused)
		}
		return Aggregate{members: members}
	case Min:
		members := make([]Descriptor, len(v.members))
		for i, m := range v.members {
			members[i] = Fuse(m)
		}
		return Min{members: members}
	default:
		return d
	}
}

// fuseDelayed applies the Delayed-rooted rules to an already-fused inner.
func fuseDelayed(d Delayed) Descriptor {
	for {
		switch in := d.Inner.(type) {
		case Delayed:
			if in.CapBps == 0 || (d.CapBps > 0 && in.CapBps >= d.CapBps) { //lint:allow floatcmp exact domination bound: a cap even one ulp below the outer one may bind, so tolerant comparison would over-fuse
				d = Delayed{Inner: in.Inner, Delay: in.Delay + d.Delay, CapBps: d.CapBps}
				continue
			}
		case RateCapped:
			if d.CapBps > 0 && in.CapBps >= d.CapBps { //lint:allow floatcmp exact domination bound: a cap even one ulp below the outer one may bind, so tolerant comparison would over-fuse
				d = Delayed{Inner: in.Inner, Delay: d.Delay, CapBps: d.CapBps}
				continue
			}
		}
		break
	}
	if d.Delay == 0 {
		if d.CapBps == 0 {
			return d.Inner
		}
		return fuseRateCapped(RateCapped{Inner: d.Inner, CapBps: d.CapBps})
	}
	return d
}

// fuseRateCapped applies the RateCapped-rooted rules to an already-fused
// inner.
func fuseRateCapped(r RateCapped) Descriptor {
	for {
		switch in := r.Inner.(type) {
		case RateCapped:
			r = RateCapped{Inner: in.Inner, CapBps: math.Min(r.CapBps, in.CapBps)}
			continue
		case Delayed:
			c := r.CapBps
			if in.CapBps > 0 {
				c = math.Min(c, in.CapBps)
			}
			return fuseDelayed(Delayed{Inner: in.Inner, Delay: in.Delay, CapBps: c})
		}
		break
	}
	return r
}
