package traffic

import (
	"fmt"
	"math"
	"sort"

	"fafnet/internal/units"
)

// Aggregate is the superposition of several connections' traffic:
// A(I) = Σ_k A_k(I). Multiplexer analyses use it to bound the combined input
// of every connection sharing an output port.
type Aggregate struct {
	members []Descriptor
}

var _ Descriptor = Aggregate{}
var _ BreakpointProvider = Aggregate{}

// NewAggregate returns the aggregate of the given descriptors. The slice is
// copied, so later mutation by the caller does not affect the aggregate.
func NewAggregate(members ...Descriptor) Aggregate {
	cp := make([]Descriptor, len(members))
	copy(cp, members)
	return Aggregate{members: cp}
}

// Bits implements Descriptor.
func (a Aggregate) Bits(interval float64) float64 {
	var sum float64
	for _, m := range a.members {
		sum += m.Bits(interval)
	}
	return sum
}

// LongTermRate implements Descriptor.
func (a Aggregate) LongTermRate() float64 {
	var sum float64
	for _, m := range a.members {
		sum += m.LongTermRate()
	}
	return sum
}

// Breakpoints implements BreakpointProvider by taking the union of the
// members' breakpoints. Members that emit ascending points (every generator
// in this package) are combined by linear merges with exact duplicates
// dropped, so downstream grid assembly never needs a comparison sort; an
// unsorted member list is sorted defensively first.
func (a Aggregate) Breakpoints(horizon float64) []float64 {
	var pts []float64
	for _, m := range a.members {
		bp, ok := m.(BreakpointProvider)
		if !ok {
			continue
		}
		mp := bp.Breakpoints(horizon)
		if len(mp) == 0 {
			continue
		}
		if !sort.Float64sAreSorted(mp) {
			mp = append([]float64(nil), mp...)
			sort.Float64s(mp)
		}
		if pts == nil {
			pts = append(make([]float64, 0, 2*len(mp)), mp...)
			continue
		}
		merged := make([]float64, 0, len(pts)+len(mp))
		i, j := 0, 0
		for i < len(pts) && j < len(mp) {
			switch {
			case pts[i] < mp[j]:
				merged = append(merged, pts[i])
				i++
			case mp[j] < pts[i]:
				merged = append(merged, mp[j])
				j++
			default: // exact duplicate: grids dedup anyway, drop it here
				merged = append(merged, pts[i])
				i, j = i+1, j+1
			}
		}
		merged = append(merged, pts[i:]...)
		pts = append(merged, mp[j:]...)
	}
	return pts
}

// Len returns the number of member descriptors.
func (a Aggregate) Len() int { return len(a.members) }

// String implements fmt.Stringer.
func (a Aggregate) String() string { return fmt.Sprintf("Aggregate(%d members)", len(a.members)) }

// Delayed is the standard output-envelope transform of a work-conserving
// server with worst-case delay d and output line rate cap:
//
//	A'(I) = min(Cap·I, A(I + d))
//
// Bits that leave during an interval of length I must have arrived during the
// interval extended by the delay bound, and cannot leave faster than the line
// rate. A Cap of 0 means "no line-rate cap".
type Delayed struct {
	Inner  Descriptor
	Delay  float64 // worst-case delay through the server, seconds
	CapBps float64 // output line rate in bits/second; 0 disables the cap
}

var _ Descriptor = Delayed{}
var _ BreakpointProvider = Delayed{}

// NewDelayed validates and returns the delayed-output transform of inner.
func NewDelayed(inner Descriptor, delay, capBps float64) (Delayed, error) {
	if inner == nil {
		return Delayed{}, fmt.Errorf("traffic: Delayed requires a non-nil inner descriptor")
	}
	if delay < 0 || math.IsInf(delay, 0) || math.IsNaN(delay) {
		return Delayed{}, fmt.Errorf("traffic: Delayed delay=%v: must be finite and non-negative", delay)
	}
	if capBps < 0 {
		return Delayed{}, fmt.Errorf("traffic: Delayed cap=%v: must be non-negative", capBps)
	}
	return Delayed{Inner: inner, Delay: delay, CapBps: capBps}, nil
}

// Bits implements Descriptor.
func (d Delayed) Bits(interval float64) float64 {
	if interval <= 0 {
		return 0
	}
	a := d.Inner.Bits(interval + d.Delay)
	if d.CapBps > 0 {
		a = min(a, d.CapBps*interval)
	}
	return a
}

// LongTermRate implements Descriptor: a finite-delay server preserves the
// long-term rate (it cannot create or destroy traffic).
func (d Delayed) LongTermRate() float64 {
	r := d.Inner.LongTermRate()
	if d.CapBps > 0 {
		r = math.Min(r, d.CapBps)
	}
	return r
}

// Breakpoints implements BreakpointProvider: vertices of A(I+d) occur at the
// inner vertices shifted left by the delay; the cap introduces additional
// crossings which the uniform fallback grid covers.
func (d Delayed) Breakpoints(horizon float64) []float64 {
	bp, ok := d.Inner.(BreakpointProvider)
	if !ok {
		return nil
	}
	inner := bp.Breakpoints(horizon + d.Delay)
	pts := make([]float64, 0, len(inner))
	for _, t := range inner {
		if s := t - d.Delay; s > 0 && units.AlmostLE(s, horizon) {
			pts = append(pts, s)
		}
	}
	return pts
}

// String implements fmt.Stringer.
func (d Delayed) String() string {
	return fmt.Sprintf("Delayed(d=%.3g s, cap=%.3g bps, inner=%v)", d.Delay, d.CapBps, d.Inner)
}

// Quantized models a conversion stage that repackages the stream into units
// of OutBits for every (up to) QuantumBits of input, rounding partially
// filled units up (Theorem 2 of the paper and its reverse):
//
//	A'(I) = ⌈A(I)/Quantum⌉ · Out
//
// Frame→cell conversion uses Quantum = frame payload F_S and
// Out = F_C·C_S (whole-cell payload including padding); cell→frame
// reassembly uses the inverse pairing.
type Quantized struct {
	Inner       Descriptor
	QuantumBits float64
	OutBits     float64
}

var _ Descriptor = Quantized{}
var _ BreakpointProvider = Quantized{}

// NewQuantized validates and returns the quantizing transform of inner.
// outBits must be at least quantumBits: a conversion stage may pad but never
// lose payload, which preserves the upper-bound property of the envelope.
func NewQuantized(inner Descriptor, quantumBits, outBits float64) (Quantized, error) {
	if inner == nil {
		return Quantized{}, fmt.Errorf("traffic: Quantized requires a non-nil inner descriptor")
	}
	if quantumBits <= 0 {
		return Quantized{}, fmt.Errorf("traffic: Quantized quantum=%v: %w", quantumBits, errNonPositive)
	}
	if outBits < quantumBits*(1-units.RelTol) {
		return Quantized{}, fmt.Errorf("traffic: Quantized out=%v below quantum=%v: conversion may not lose payload", outBits, quantumBits)
	}
	return Quantized{Inner: inner, QuantumBits: quantumBits, OutBits: outBits}, nil
}

// Bits implements Descriptor.
func (q Quantized) Bits(interval float64) float64 {
	if interval <= 0 {
		return 0
	}
	return units.CeilDiv(q.Inner.Bits(interval), q.QuantumBits) * q.OutBits
}

// LongTermRate implements Descriptor. Rounding adds at most one unit per
// window, which vanishes in the long-term limit, but padding scales the rate
// by Out/Quantum.
func (q Quantized) LongTermRate() float64 {
	// The padding ratio Out/Quantum is a dimensionless scale on the rate.
	return q.Inner.LongTermRate() * (q.OutBits / q.QuantumBits)
}

// Breakpoints implements BreakpointProvider by delegation; the ceil steps at
// quantum crossings are covered by the uniform fallback grid and the
// jitter-bracketing applied to these points.
func (q Quantized) Breakpoints(horizon float64) []float64 {
	if bp, ok := q.Inner.(BreakpointProvider); ok {
		return bp.Breakpoints(horizon)
	}
	return nil
}

// String implements fmt.Stringer.
func (q Quantized) String() string {
	return fmt.Sprintf("Quantized(quantum=%.3g b, out=%.3g b, inner=%v)", q.QuantumBits, q.OutBits, q.Inner)
}

// RateCapped clips the envelope to a line rate: A'(I) = min(Cap·I, A(I)).
// Theorem 1 applies it with the FDDI medium rate (Eq. 12).
type RateCapped struct {
	Inner  Descriptor
	CapBps float64
}

var _ Descriptor = RateCapped{}
var _ BreakpointProvider = RateCapped{}

// NewRateCapped validates and returns the rate-capped view of inner.
func NewRateCapped(inner Descriptor, capBps float64) (RateCapped, error) {
	if inner == nil {
		return RateCapped{}, fmt.Errorf("traffic: RateCapped requires a non-nil inner descriptor")
	}
	if capBps <= 0 {
		return RateCapped{}, fmt.Errorf("traffic: RateCapped cap=%v: %w", capBps, errNonPositive)
	}
	return RateCapped{Inner: inner, CapBps: capBps}, nil
}

// Bits implements Descriptor.
func (r RateCapped) Bits(interval float64) float64 {
	if interval <= 0 {
		return 0
	}
	return min(r.CapBps*interval, r.Inner.Bits(interval))
}

// LongTermRate implements Descriptor.
func (r RateCapped) LongTermRate() float64 {
	return math.Min(r.CapBps, r.Inner.LongTermRate())
}

// PeakRate implements the optional peak-rate interface.
func (r RateCapped) PeakRate() float64 { return r.CapBps }

// Breakpoints implements BreakpointProvider by delegation.
func (r RateCapped) Breakpoints(horizon float64) []float64 {
	if bp, ok := r.Inner.(BreakpointProvider); ok {
		return bp.Breakpoints(horizon)
	}
	return nil
}

// String implements fmt.Stringer.
func (r RateCapped) String() string {
	return fmt.Sprintf("RateCapped(%.3g bps, inner=%v)", r.CapBps, r.Inner)
}

// Min is the pointwise minimum of several envelopes: if each member bounds
// the same traffic (e.g. a source declaration and a regulator constraint),
// their minimum is also a valid — and tighter — bound.
type Min struct {
	members []Descriptor
}

var _ Descriptor = Min{}
var _ BreakpointProvider = Min{}

// NewMin returns the pointwise-minimum envelope of the given descriptors,
// which must be non-empty. The slice is copied.
func NewMin(members ...Descriptor) (Min, error) {
	if len(members) == 0 {
		return Min{}, fmt.Errorf("traffic: Min requires at least one member")
	}
	cp := make([]Descriptor, len(members))
	for i, m := range members {
		if m == nil {
			return Min{}, fmt.Errorf("traffic: Min member %d is nil", i)
		}
		cp[i] = m
	}
	return Min{members: cp}, nil
}

// Bits implements Descriptor.
func (m Min) Bits(interval float64) float64 {
	best := m.members[0].Bits(interval)
	for _, d := range m.members[1:] {
		if v := d.Bits(interval); v < best {
			best = v
		}
	}
	return best
}

// LongTermRate implements Descriptor.
func (m Min) LongTermRate() float64 {
	best := m.members[0].LongTermRate()
	for _, d := range m.members[1:] {
		if v := d.LongTermRate(); v < best {
			best = v
		}
	}
	return best
}

// Breakpoints implements BreakpointProvider: the minimum's vertices occur at
// the members' vertices (plus crossings, covered by the fallback grid).
func (m Min) Breakpoints(horizon float64) []float64 {
	var pts []float64
	for _, d := range m.members {
		if bp, ok := d.(BreakpointProvider); ok {
			pts = append(pts, bp.Breakpoints(horizon)...)
		}
	}
	return pts
}

// String implements fmt.Stringer.
func (m Min) String() string { return fmt.Sprintf("Min(%d members)", len(m.members)) }

// Sampled is a tabulated envelope: bits[i] bounds A over any window of length
// grid[i]. Between samples it interpolates conservatively upward (A is
// nondecreasing, so the next sample bounds every shorter window); beyond the
// last sample T it extends subadditively, A(kT + r) <= k·A(T) + A(r), which
// is a sound upper bound for every maximum-rate envelope (the bits in a long
// window are at most the sum of the bits in its pieces). Server analyses use
// it to materialize envelopes whose closed form would be unwieldy.
type Sampled struct {
	grid []float64 // strictly increasing, all positive
	bits []float64 // nondecreasing, same length as grid
	rho  float64   // long-term rate for extension beyond the last sample
}

var _ Descriptor = (*Sampled)(nil)
var _ BreakpointProvider = (*Sampled)(nil)

// NewSampled validates and returns a tabulated envelope. grid must be
// strictly increasing and positive; bits must be nondecreasing, non-negative
// and of equal length; rho is the long-term rate used beyond the last sample.
// Both slices are copied.
func NewSampled(grid, bits []float64, rho float64) (*Sampled, error) {
	if len(grid) == 0 || len(grid) != len(bits) {
		return nil, fmt.Errorf("traffic: Sampled needs equal-length non-empty grid and bits (got %d, %d)", len(grid), len(bits))
	}
	if rho < 0 {
		return nil, fmt.Errorf("traffic: Sampled rho=%v: must be non-negative", rho)
	}
	g := make([]float64, len(grid))
	b := make([]float64, len(bits))
	copy(g, grid)
	copy(b, bits)
	prev := 0.0
	prevBits := 0.0
	for i := range g {
		if g[i] <= prev {
			return nil, fmt.Errorf("traffic: Sampled grid must be strictly increasing and positive at index %d (%v after %v)", i, g[i], prev)
		}
		if b[i] < prevBits-units.Eps {
			return nil, fmt.Errorf("traffic: Sampled bits must be nondecreasing at index %d (%v after %v)", i, b[i], prevBits)
		}
		if b[i] < 0 {
			return nil, fmt.Errorf("traffic: Sampled bits must be non-negative at index %d (%v)", i, b[i])
		}
		prev, prevBits = g[i], b[i]
	}
	return &Sampled{grid: g, bits: b, rho: rho}, nil
}

// Bits implements Descriptor.
func (s *Sampled) Bits(interval float64) float64 {
	if interval <= 0 {
		return 0
	}
	n := len(s.grid)
	last := s.grid[n-1]
	if interval > last {
		// Subadditive extension: split the window into whole multiples of the
		// horizon plus a remainder.
		k := math.Floor(interval / last)
		rem := interval - k*last
		return k*s.bits[n-1] + s.Bits(rem)
	}
	// First sample point >= interval bounds every window of length interval.
	idx := sort.SearchFloat64s(s.grid, interval)
	if idx == n {
		idx = n - 1
	}
	return s.bits[idx]
}

// LongTermRate implements Descriptor.
func (s *Sampled) LongTermRate() float64 { return s.rho }

// Breakpoints implements BreakpointProvider: every sample point is a
// potential vertex.
func (s *Sampled) Breakpoints(horizon float64) []float64 {
	idx := sort.SearchFloat64s(s.grid, horizon)
	if idx < len(s.grid) && units.AlmostLE(s.grid[idx], horizon) {
		idx++
	}
	out := make([]float64, idx)
	copy(out, s.grid[:idx])
	return out
}

// String implements fmt.Stringer.
func (s *Sampled) String() string {
	return fmt.Sprintf("Sampled(%d points, horizon=%.3g s, rho=%.3g bps)", len(s.grid), s.grid[len(s.grid)-1], s.rho)
}

// Materialize evaluates d on the given grid and returns the tabulated
// envelope, decoupling downstream evaluation cost from the depth of the
// transform chain. The grid must be non-empty, strictly increasing and
// positive (as produced by Grid or CleanGrid).
func Materialize(d Descriptor, grid []float64) (*Sampled, error) {
	if len(grid) == 0 {
		return nil, fmt.Errorf("traffic: Materialize requires a non-empty grid")
	}
	bits := make([]float64, len(grid))
	maxSoFar := 0.0
	for i, t := range grid {
		v := d.Bits(t)
		// Guard monotonicity against numeric jitter in composite envelopes.
		if v < maxSoFar {
			v = maxSoFar
		}
		maxSoFar = v
		bits[i] = v
	}
	return NewSampled(grid, bits, d.LongTermRate())
}
