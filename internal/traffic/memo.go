package traffic

import (
	"fmt"
	"sort"
)

// Memoized wraps a *stable* descriptor — one whose Bits function will not
// change for the lifetime of the wrapper — and caches its evaluations:
//
//   - Bits values are memoized exactly, keyed by the queried interval, so
//     repeated evaluation at the same grid points (the busy-period search
//     scans its grid twice, extremum searches revisit TTRT multiples, and
//     every CAC probe of one admission request re-walks the same stage-0
//     envelopes) costs one map lookup instead of a full chain walk;
//   - Breakpoints are computed once at the largest horizon seen, sorted and
//     deduplicated, and smaller-horizon queries answer with a binary-searched
//     prefix — sound because every breakpoint generator in this package
//     produces ascending points whose prefix below a horizon is exactly what
//     a direct smaller-horizon call would return (callers additionally clip
//     to their own horizon);
//   - the long-term rate is computed once.
//
// Because the cache stores exact inner evaluations, a Memoized descriptor is
// pointwise identical to its inner descriptor: it is a valid upper bound
// wherever the inner is, monotone wherever the inner is, and exact (not just
// within units.RelTol) at every queried point. For a bounded-size tabulated
// view with the conservative Sampled semantics instead, use Table.
//
// Memoized is NOT safe for concurrent use; every analyzer that embeds one is
// itself documented single-threaded, and parallel drivers (sweeps,
// replications) give each worker its own analyzer.
type Memoized struct {
	inner  Descriptor
	rho    float64
	bits   map[float64]float64
	bp     []float64 // sorted ascending, exact duplicates removed
	bpH    float64   // horizon bp was computed at (0 = not yet)
	table  *Sampled  // lazily built Table, keyed by tableH
	tableH float64
}

var _ Descriptor = (*Memoized)(nil)
var _ BreakpointProvider = (*Memoized)(nil)

// NewMemoized wraps d in an evaluation cache. Wrapping an existing *Memoized
// returns it unchanged.
func NewMemoized(d Descriptor) *Memoized {
	if m, ok := d.(*Memoized); ok {
		return m
	}
	return &Memoized{
		inner: d,
		rho:   d.LongTermRate(),
		bits:  make(map[float64]float64, 64),
	}
}

// Inner returns the wrapped descriptor.
func (m *Memoized) Inner() Descriptor { return m.inner }

// maxMemoPoints bounds the per-descriptor evaluation cache. Wrappers owned by
// one evaluation never get near it; long-lived wrappers (the analyzer's
// cross-evaluation stage-0 cache) see fresh query points on every probe, and
// without a bound the map would grow for the lifetime of the analyzer. Past
// the cap, new points evaluate through while the established hot set keeps
// answering from the map.
const maxMemoPoints = 1 << 16

// Bits implements Descriptor with exact per-interval memoization.
func (m *Memoized) Bits(interval float64) float64 {
	if interval <= 0 {
		return 0
	}
	if v, ok := m.bits[interval]; ok {
		return v
	}
	v := m.inner.Bits(interval)
	if len(m.bits) < maxMemoPoints {
		m.bits[interval] = v
	}
	return v
}

// LongTermRate implements Descriptor.
func (m *Memoized) LongTermRate() float64 { return m.rho }

// PeakRate reports the wrapped descriptor's peak, mirroring what Peak would
// compute on the inner descriptor directly.
func (m *Memoized) PeakRate() float64 { return Peak(m.inner) }

// Breakpoints implements BreakpointProvider. The returned slice is shared
// with the cache and must not be mutated by the caller.
func (m *Memoized) Breakpoints(horizon float64) []float64 {
	if horizon <= 0 {
		return nil
	}
	if m.bpH == 0 || horizon > m.bpH {
		var raw []float64
		if bp, ok := m.inner.(BreakpointProvider); ok {
			raw = bp.Breakpoints(horizon)
		}
		sorted := make([]float64, len(raw))
		copy(sorted, raw)
		sort.Float64s(sorted)
		// Remove exact duplicates only: CleanGrid drops them anyway, so the
		// downstream grids are unchanged, and near-duplicates keep their
		// distinct values for the Eps-clustering there to resolve.
		out := sorted[:0]
		for i, p := range sorted {
			if i > 0 && p == sorted[i-1] {
				continue
			}
			out = append(out, p)
		}
		m.bp = out
		m.bpH = horizon
	}
	// Prefix of points <= horizon; points above it would be clipped by every
	// caller (Grid and the transform breakpoint filters) regardless.
	idx := sort.SearchFloat64s(m.bp, horizon)
	for idx < len(m.bp) && m.bp[idx] == horizon { //lint:allow floatcmp a direct Breakpoints call returns points in (0,horizon]; only exactly-equal points belong in the prefix
		idx++
	}
	return m.bp[:idx]
}

// Table materializes the envelope onto its own CleanGrid up to the given
// horizon (with n uniform fallback points) via Materialize, caching the
// result per horizon. The returned Sampled is the conservative tabulated
// view: a valid upper bound everywhere (step interpolation rounds up between
// samples, subadditive extension beyond the horizon), monotone by
// construction, and exact at every grid point. Use it where a bounded-size
// O(log n) representation is worth the between-sample slack; the analysis
// hot paths use the exact memo above instead, so their results are
// bit-compatible with the unfused chains.
func (m *Memoized) Table(horizon float64, n int) (*Sampled, error) {
	if m.table != nil && m.tableH == horizon { //lint:allow floatcmp cache key: a near-equal horizon must rebuild, not alias a differently-gridded table
		return m.table, nil
	}
	grid := Grid(m, horizon, n)
	if len(grid) == 0 {
		return nil, fmt.Errorf("traffic: Table horizon %v produced an empty grid", horizon)
	}
	tab, err := Materialize(m, grid)
	if err != nil {
		return nil, err
	}
	m.table = tab
	m.tableH = horizon
	return tab, nil
}

// String implements fmt.Stringer.
func (m *Memoized) String() string {
	return fmt.Sprintf("Memoized(%d cached points, inner=%v)", len(m.bits), m.inner)
}
