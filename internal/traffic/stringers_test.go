package traffic

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// TestStringers exercises every descriptor's String and confirms the output
// names the model (useful in logs and error chains).
func TestStringers(t *testing.T) {
	dp := mustDual(t)
	p, err := NewPeriodic(1e5, 0.01, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := NewLeakyBucket(1e4, 1e6, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	del, err := NewDelayed(dp, 1e-3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQuantized(dp, 36000, 94*384)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewRateCapped(dp, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMin(dp, lb)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampled([]float64{1}, []float64{10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		d    fmt.Stringer
		want string
	}{
		{CBR{RateBps: 1e6}, "CBR"},
		{p, "Periodic"},
		{dp, "DualPeriodic"},
		{lb, "LeakyBucket"},
		{NewAggregate(dp, p), "Aggregate"},
		{del, "Delayed"},
		{q, "Quantized"},
		{rc, "RateCapped"},
		{m, "Min"},
		{s, "Sampled"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); !strings.Contains(got, tt.want) {
			t.Errorf("String() = %q, want it to contain %q", got, tt.want)
		}
	}
}

// TestBreakpointDelegation covers the BreakpointProvider plumbing through
// every transform.
func TestBreakpointDelegation(t *testing.T) {
	dp := mustDual(t)
	del, err := NewDelayed(dp, 1e-3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQuantized(del, 36000, 94*384)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewRateCapped(q, 140e6)
	if err != nil {
		t.Fatal(err)
	}
	if bps := rc.Breakpoints(0.02); len(bps) == 0 {
		t.Error("transform chain lost the source's breakpoints")
	}
	// Delegation over a provider-less inner yields nothing, not a panic.
	qq, err := NewQuantized(CBR{RateBps: 1e6}, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if bps := qq.Breakpoints(1); bps != nil {
		t.Errorf("CBR-backed Quantized breakpoints = %v, want nil", bps)
	}
	dd, err := NewDelayed(CBR{RateBps: 1e6}, 1e-3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bps := dd.Breakpoints(1); bps != nil {
		t.Errorf("CBR-backed Delayed breakpoints = %v, want nil", bps)
	}
	rr, err := NewRateCapped(CBR{RateBps: 1e6}, 2e6)
	if err != nil {
		t.Fatal(err)
	}
	if bps := rr.Breakpoints(1); bps != nil {
		t.Errorf("CBR-backed RateCapped breakpoints = %v, want nil", bps)
	}
	mm, err := NewMin(CBR{RateBps: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if bps := mm.Breakpoints(1); len(bps) != 0 {
		t.Errorf("CBR-backed Min breakpoints = %v, want none", bps)
	}
}

// TestPeakFallback exercises Peak() on descriptors without a PeakRate
// method (probe near zero) and on bursty composites.
func TestPeakFallback(t *testing.T) {
	// Aggregate has no PeakRate: the probe near zero returns the summed
	// member peaks for finite-peak members.
	agg := NewAggregate(CBR{RateBps: 3e6}, CBR{RateBps: 7e6})
	if got := Peak(agg); math.Abs(got-10e6) > 1e-3*10e6 {
		t.Errorf("Peak(aggregate of CBRs) = %v, want ≈1e7", got)
	}
	// A silent aggregate has zero peak.
	if got := Peak(NewAggregate()); got != 0 {
		t.Errorf("Peak(empty) = %v", got)
	}
	// An instantaneous burst looks effectively unbounded (the probe window
	// divides the burst by a nanosecond).
	lb, err := NewLeakyBucket(1e4, 1e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := Peak(NewAggregate(lb)); got < 1e12 {
		t.Errorf("Peak(bursty aggregate) = %v, want enormous", got)
	}
}

// TestMinLongTermRatePicksTighter covers Min.LongTermRate and the Sampled
// breakpoint trimming.
func TestMinLongTermRateAndSampledBreakpoints(t *testing.T) {
	m, err := NewMin(CBR{RateBps: 9e6}, CBR{RateBps: 2e6})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.LongTermRate(); got != 2e6 {
		t.Errorf("LongTermRate = %v", got)
	}
	s, err := NewSampled([]float64{0.001, 0.002, 0.003}, []float64{1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Breakpoints(0.002); len(got) != 2 {
		t.Errorf("Breakpoints(0.002) = %v, want 2 points", got)
	}
	if got := s.Breakpoints(10); len(got) != 3 {
		t.Errorf("Breakpoints(10) = %v, want all 3", got)
	}
}
