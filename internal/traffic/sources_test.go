package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"fafnet/internal/units"
)

func TestNewCBR(t *testing.T) {
	if _, err := NewCBR(-1); err == nil {
		t.Error("negative rate should be rejected")
	}
	c, err := NewCBR(10 * units.Mbps)
	if err != nil {
		t.Fatalf("NewCBR: %v", err)
	}
	if got := c.Bits(0.5); got != 5e6 {
		t.Errorf("Bits(0.5) = %v, want 5e6", got)
	}
	if got := c.LongTermRate(); got != 10e6 {
		t.Errorf("LongTermRate = %v, want 10e6", got)
	}
	if got := c.Bits(-1); got != 0 {
		t.Errorf("Bits(-1) = %v, want 0", got)
	}
}

func TestNewPeriodicValidation(t *testing.T) {
	tests := []struct {
		name       string
		c, p, peak float64
		wantErr    bool
	}{
		{"valid", 1e5, 0.01, 100e6, false},
		{"zero C", 0, 0.01, 100e6, true},
		{"zero P", 1e5, 0, 100e6, true},
		{"zero peak", 1e5, 0.01, 0, true},
		{"peak too slow for period", 1e6, 0.001, 100e6, true}, // needs 1 Gbps
		{"peak exactly sufficient", 1e5, 0.001, 100e6, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewPeriodic(tt.c, tt.p, tt.peak)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewPeriodic(%v,%v,%v) error = %v, wantErr %v", tt.c, tt.p, tt.peak, err, tt.wantErr)
			}
		})
	}
}

func TestPeriodicBits(t *testing.T) {
	// 100 kbit every 10 ms at 100 Mbps peak: burst lasts 1 ms.
	s, err := NewPeriodic(1e5, 0.010, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		interval float64
		want     float64
	}{
		{0, 0},
		{0.0005, 0.0005 * 100e6}, // mid-burst: peak-rate limited
		{0.001, 1e5},             // exactly one burst
		{0.005, 1e5},             // idle part of the period
		{0.010, 1e5},             // one full period
		{0.011, 2e5},             // second burst fully inside the window
		{0.020, 2e5},
		{0.0305, 3e5 + 0.0005*100e6},
	}
	for _, tt := range tests {
		if got := s.Bits(tt.interval); !units.AlmostEq(got, tt.want) {
			t.Errorf("Bits(%v) = %v, want %v", tt.interval, got, tt.want)
		}
	}
	if got := s.LongTermRate(); !units.AlmostEq(got, 1e7) {
		t.Errorf("LongTermRate = %v, want 1e7", got)
	}
}

func TestNewDualPeriodicValidation(t *testing.T) {
	tests := []struct {
		name                 string
		c1, p1, c2, p2, peak float64
		wantErr              bool
	}{
		{"valid paper defaults", 150e3, 0.010, 30e3, 0.001, 100e6, false},
		{"P2 exceeds P1", 150e3, 0.010, 30e3, 0.020, 100e6, true},
		{"C2 exceeds C1", 150e3, 0.010, 200e3, 0.001, 1e9, true},
		{"short rate below long rate", 150e3, 0.010, 1e3, 0.001, 100e6, true},
		{"peak insufficient for C2/P2", 150e3, 0.010, 30e3, 0.001, 10e6, true},
		{"degenerate equal periods", 150e3, 0.010, 150e3, 0.010, 100e6, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewDualPeriodic(tt.c1, tt.p1, tt.c2, tt.p2, tt.peak)
			if (err != nil) != tt.wantErr {
				t.Errorf("error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestDualPeriodicBits(t *testing.T) {
	// C1=150 kbit / P1=10 ms, C2=30 kbit / P2=1 ms, peak 100 Mbps.
	// Each 1 ms sub-period allows a 30 kbit burst lasting 0.3 ms at peak.
	s, err := NewDualPeriodic(150e3, 0.010, 30e3, 0.001, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		interval float64
		want     float64
	}{
		{0, 0},
		{0.0001, 0.0001 * 100e6}, // 10 kbit: inside first burst
		{0.0003, 30e3},           // exactly one sub-burst
		{0.001, 30e3},            // one sub-period
		{0.0043, 4*30e3 + 30e3},  // 4 sub-periods + full burst of the fifth
		{0.005, 150e3},           // five sub-bursts reach C1
		{0.009, 150e3},           // capped at C1 within P1
		{0.010, 150e3},           // one full period
		{0.0103, 150e3 + 30e3},   // next period's first burst
		{0.020, 300e3},
	}
	for _, tt := range tests {
		if got := s.Bits(tt.interval); !units.AlmostEq(got, tt.want) {
			t.Errorf("Bits(%v) = %v, want %v", tt.interval, got, tt.want)
		}
	}
	if got := s.LongTermRate(); !units.AlmostEq(got, 15e6) {
		t.Errorf("LongTermRate = %v, want 15e6", got)
	}
}

func TestDualPeriodicReducesToPeriodic(t *testing.T) {
	// With C2=C1 and P2=P1 the dual-periodic model must match the one-period
	// model everywhere.
	d, err := NewDualPeriodic(1e5, 0.008, 1e5, 0.008, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPeriodic(1e5, 0.008, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 400; i++ {
		iv := float64(i) * 0.0001
		if got, want := d.Bits(iv), p.Bits(iv); !units.AlmostEq(got, want) {
			t.Fatalf("Bits(%v): dual=%v periodic=%v", iv, got, want)
		}
	}
}

func TestLeakyBucket(t *testing.T) {
	if _, err := NewLeakyBucket(-1, 1e6, 0); err == nil {
		t.Error("negative sigma should be rejected")
	}
	if _, err := NewLeakyBucket(1e4, 1e6, 1e5); err == nil {
		t.Error("peak below rho should be rejected")
	}
	b, err := NewLeakyBucket(1e4, 1e6, 10e6)
	if err != nil {
		t.Fatal(err)
	}
	// Before the knee (σ/(peak−ρ) = 1e4/9e6 ≈ 1.11 ms) the peak segment rules.
	if got, want := b.Bits(0.0005), 0.0005*10e6; !units.AlmostEq(got, want) {
		t.Errorf("Bits(0.5ms) = %v, want %v", got, want)
	}
	// Beyond the knee the bucket segment rules.
	if got, want := b.Bits(1.0), 1e4+1e6; !units.AlmostEq(got, want) {
		t.Errorf("Bits(1s) = %v, want %v", got, want)
	}
	kn := b.Breakpoints(10)
	if len(kn) != 1 || !units.AlmostEq(kn[0], 1e4/9e6) {
		t.Errorf("Breakpoints = %v, want single knee at %v", kn, 1e4/9e6)
	}
	// Uncapped bucket has an instantaneous burst.
	u, err := NewLeakyBucket(1e4, 1e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(u.PeakRate(), 1) {
		t.Errorf("uncapped PeakRate = %v, want +Inf", u.PeakRate())
	}
}

// descriptorsUnderTest returns one representative of every source model with
// paper-scale parameters.
func descriptorsUnderTest(t *testing.T) map[string]Descriptor {
	t.Helper()
	dp, err := NewDualPeriodic(150e3, 0.010, 30e3, 0.001, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPeriodic(1e5, 0.005, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := NewLeakyBucket(5e4, 12e6, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	cbr, err := NewCBR(8e6)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Descriptor{"dualPeriodic": dp, "periodic": p, "leakyBucket": lb, "cbr": cbr}
}

func TestBitsMonotoneProperty(t *testing.T) {
	for name, d := range descriptorsUnderTest(t) {
		d := d
		t.Run(name, func(t *testing.T) {
			f := func(a, b float64) bool {
				a = math.Mod(math.Abs(a), 1.0)
				b = math.Mod(math.Abs(b), 1.0)
				if a > b {
					a, b = b, a
				}
				return d.Bits(a) <= d.Bits(b)+units.Eps
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestLongTermRateIsLimitProperty(t *testing.T) {
	// Γ(I) must approach LongTermRate from above as I grows.
	for name, d := range descriptorsUnderTest(t) {
		d := d
		t.Run(name, func(t *testing.T) {
			rho := d.LongTermRate()
			for _, iv := range []float64{10, 100, 1000} {
				r := Rate(d, iv)
				if r < rho*(1-1e-6) {
					t.Errorf("Rate(%v) = %v below long-term rate %v", iv, r, rho)
				}
			}
			if r := Rate(d, 1e4); !units.WithinRel(r, rho, 0.01) {
				t.Errorf("Rate(1e4) = %v does not approach rho = %v", Rate(d, 1e4), rho)
			}
		})
	}
}

func TestPeakRateBoundsShortWindows(t *testing.T) {
	// For every source model, A(I) <= Peak·I when the peak is finite.
	for name, d := range descriptorsUnderTest(t) {
		d := d
		t.Run(name, func(t *testing.T) {
			peak := Peak(d)
			if math.IsInf(peak, 1) {
				t.Skip("unbounded peak")
			}
			for i := 1; i <= 1000; i++ {
				iv := float64(i) * 1e-5
				if got := d.Bits(iv); got > peak*iv*(1+units.RelTol)+units.Eps {
					t.Fatalf("Bits(%v) = %v exceeds peak bound %v", iv, got, peak*iv)
				}
			}
		})
	}
}

func TestRatePanicsOnNonPositiveInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Rate(d, 0) should panic")
		}
	}()
	Rate(CBR{RateBps: 1}, 0)
}
