package traffic

import (
	"math/rand"
	"testing"

	"fafnet/internal/units"
)

// countingDescriptor wraps a descriptor and counts evaluations, for
// asserting that memoization actually short-circuits.
type countingDescriptor struct {
	Descriptor
	bitsCalls, bpCalls int
}

func (c *countingDescriptor) Bits(interval float64) float64 {
	c.bitsCalls++
	return c.Descriptor.Bits(interval)
}

func (c *countingDescriptor) Breakpoints(horizon float64) []float64 {
	c.bpCalls++
	if bp, ok := c.Descriptor.(BreakpointProvider); ok {
		return bp.Breakpoints(horizon)
	}
	return nil
}

func (c *countingDescriptor) LongTermRate() float64 { return c.Descriptor.LongTermRate() }

func TestMemoizedBitsExactAndCached(t *testing.T) {
	src, err := NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	counted := &countingDescriptor{Descriptor: src}
	m := NewMemoized(counted)

	probes := []float64{1e-4, 5e-4, 1e-3, 1e-4, 5e-4, 1e-3, 2e-2, 1e-4}
	for _, iv := range probes {
		if got, want := m.Bits(iv), src.Bits(iv); got != want {
			t.Errorf("Bits(%v) = %v, want %v", iv, got, want)
		}
	}
	if counted.bitsCalls != 4 { // 4 distinct intervals
		t.Errorf("inner Bits called %d times, want 4", counted.bitsCalls)
	}
	if m.Bits(-1) != 0 || m.Bits(0) != 0 {
		t.Error("non-positive intervals must evaluate to 0")
	}
	if got, want := m.LongTermRate(), src.LongTermRate(); got != want {
		t.Errorf("LongTermRate = %v, want %v", got, want)
	}
}

func TestMemoizedIdempotentWrap(t *testing.T) {
	src, _ := NewCBR(1e6)
	m := NewMemoized(src)
	if again := NewMemoized(m); again != m {
		t.Error("NewMemoized(Memoized) must return the same wrapper")
	}
}

func TestMemoizedBreakpointsPrefix(t *testing.T) {
	src, err := NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	counted := &countingDescriptor{Descriptor: src}
	m := NewMemoized(counted)

	// Largest horizon first: the single inner call serves every smaller one.
	horizons := []float64{50e-3, 20e-3, 5e-3, 50e-3}
	for _, h := range horizons {
		got := CleanGrid(append([]float64(nil), m.Breakpoints(h)...), h)
		want := CleanGrid(src.Breakpoints(h), h)
		if len(got) != len(want) {
			t.Fatalf("horizon %v: %d breakpoints, want %d", h, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("horizon %v: point %d = %v, want %v", h, i, got[i], want[i])
			}
		}
	}
	if counted.bpCalls != 1 {
		t.Errorf("inner Breakpoints called %d times, want 1", counted.bpCalls)
	}
	// A horizon beyond the cache triggers exactly one recomputation.
	_ = m.Breakpoints(80e-3)
	if counted.bpCalls != 2 {
		t.Errorf("inner Breakpoints called %d times after growth, want 2", counted.bpCalls)
	}
	if m.Breakpoints(0) != nil {
		t.Error("Breakpoints(0) must be nil")
	}
}

func TestMemoizedGridEquivalence(t *testing.T) {
	// The whole point: Grid over a memoized chain must equal Grid over the
	// raw chain, so extremum searches see identical candidate points.
	src, _ := NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
	var chain Descriptor = src
	chain, _ = NewQuantized(chain, 36000, 94*384)
	chain, _ = NewDelayed(chain, 0.4e-3, 140e6)
	m := NewMemoized(chain)
	for _, h := range []float64{8e-3, 16e-3, 32e-3} {
		want := Grid(chain, h, 128)
		got := Grid(m, h, 128)
		if len(got) != len(want) {
			t.Fatalf("horizon %v: grid size %d, want %d", h, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("horizon %v: grid[%d] = %v, want %v", h, i, got[i], want[i])
			}
		}
	}
}

func TestMemoizedTableContract(t *testing.T) {
	// Table must be: exact at grid points, a valid upper bound everywhere,
	// and monotone.
	src, _ := NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
	var chain Descriptor = src
	chain, _ = NewQuantized(chain, 36000, 94*384)
	chain, _ = NewDelayed(chain, 0.4e-3, 140e6)
	m := NewMemoized(chain)

	const horizon = 32e-3
	tab, err := m.Table(horizon, 128)
	if err != nil {
		t.Fatal(err)
	}
	if again, err := m.Table(horizon, 128); err != nil || again != tab {
		t.Errorf("Table must cache per horizon (got %p vs %p, err %v)", again, tab, err)
	}
	for _, p := range tab.Breakpoints(horizon) {
		if !units.WithinRel(tab.Bits(p), chain.Bits(p), units.RelTol) {
			t.Errorf("table not exact at grid point %v: %v vs %v", p, tab.Bits(p), chain.Bits(p))
		}
	}
	rng := rand.New(rand.NewSource(11))
	prev := 0.0
	for i := 0; i < 500; i++ {
		iv := rng.Float64() * 3 * horizon // includes the subadditive extension
		if got, exact := tab.Bits(iv), chain.Bits(iv); got < exact*(1-units.RelTol) {
			t.Errorf("table below exact envelope at %v: %v < %v", iv, got, exact)
		}
		_ = prev
	}
	grid := tab.Breakpoints(horizon)
	for i := 1; i < len(grid); i++ {
		if tab.Bits(grid[i]) < tab.Bits(grid[i-1]) {
			t.Errorf("table not monotone between %v and %v", grid[i-1], grid[i])
		}
	}
}

func TestFusedMemoizedChainEndToEnd(t *testing.T) {
	// The composition used by the analyzer: Fuse then Memoize, compared
	// against the raw chain on a dense random probe set.
	rng := rand.New(rand.NewSource(3))
	src, _ := NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
	var chain Descriptor = src
	chain, _ = NewQuantized(chain, 36000, 94*384)
	for i := 0; i < 4; i++ {
		chain, _ = NewDelayed(chain, 0.2e-3, 140e6)
	}
	m := NewMemoized(Fuse(chain))
	for i := 0; i < 2000; i++ {
		iv := rng.Float64() * 0.1
		if got, want := m.Bits(iv), chain.Bits(iv); !units.WithinRel(got, want, units.RelTol) {
			t.Fatalf("fused+memoized Bits(%v) = %v, want %v", iv, got, want)
		}
	}
}
