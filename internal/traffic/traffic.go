// Package traffic implements the maximum-rate-function traffic descriptor
// Γ(I) used by the delay analysis (Section 4.2 of the paper), together with
// the source models and envelope transforms the FDDI-ATM-FDDI servers need.
//
// A descriptor bounds the traffic of one connection at one point in the
// network: Bits(I) is the maximum number of payload bits that may arrive in
// ANY time window of length I seconds, so Γ(I) = Bits(I)/I is the maximum
// average rate over any such window. Every server analysis consumes the
// envelope of its input traffic and produces both a worst-case delay and the
// envelope of its output traffic, which feeds the next server downstream.
package traffic

import (
	"math"
	"sort"

	"fafnet/internal/units"
)

// Descriptor is the maximum-rate-function traffic descriptor Γ(I).
//
// Implementations must guarantee that Bits is nondecreasing, that
// Bits(I) >= 0 for all I, and that Bits(I)/I converges to LongTermRate as
// I grows. Bits(I) for I <= 0 must be 0.
type Descriptor interface {
	// Bits returns A(I) = I·Γ(I): the maximum number of bits the connection
	// may produce in any interval of length interval seconds.
	//
	// Bits is the inner loop of every server analysis and every admission
	// probe; implementations must be allocation-free, non-blocking and
	// deterministic (enforced transitively by the hotpath analyzer).
	//
	//fafvet:hotpath
	Bits(interval float64) float64

	// LongTermRate returns ρ = lim_{I→∞} Γ(I) in bits per second. It is the
	// quantity every stability check compares against allocated capacity.
	//
	//fafvet:hotpath
	LongTermRate() float64
}

// BreakpointProvider is implemented by descriptors that can enumerate the
// interval lengths at which their envelope changes behaviour (burst arrivals,
// slope changes). Extremum searches in the server analyses are exact when the
// candidate grid contains these points.
type BreakpointProvider interface {
	// Breakpoints returns interval lengths in (0, horizon] at which the
	// envelope has a vertex. The result need not be sorted or deduplicated.
	Breakpoints(horizon float64) []float64
}

// Rate returns Γ(I) = Bits(I)/I. interval must be positive.
func Rate(d Descriptor, interval float64) float64 {
	if interval <= 0 {
		panic("traffic: Rate requires a positive interval")
	}
	return d.Bits(interval) / interval
}

// GridNudge is the offset (seconds) used to probe an envelope "just after"
// or "just before" a burst instant or grid vertex. It is far below any
// physical time constant in the system; extremum searches across the
// analysis packages bracket candidate points with ±GridNudge.
const GridNudge = 1e-10

// Grid returns a sorted, deduplicated slice of candidate evaluation points in
// (0, horizon] for extremum searches involving d. The grid combines:
//
//   - the descriptor's intrinsic breakpoints (when it provides them), each
//     bracketed by points just before and just after, so that step
//     discontinuities are observed from both sides, and
//   - a uniform fallback grid of n points, which bounds the error for
//     composite envelopes whose exact vertex set is impractical to enumerate.
//
// n must be at least 1.
//
// The two point families are built as separate ascending runs and merged
// linearly; breakpoint providers that already emit ascending points (sources,
// delay-shifted chains, Memoized caches) therefore never pay a comparison
// sort here — grid assembly is the inner loop of every server analysis.
func Grid(d Descriptor, horizon float64, n int) []float64 {
	if horizon <= 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	uniform := make([]float64, 0, n)
	step := horizon / float64(n)
	for i := 1; i <= n; i++ {
		uniform = append(uniform, step*float64(i))
	}
	var brackets []float64
	if bp, ok := d.(BreakpointProvider); ok {
		raw := bp.Breakpoints(horizon)
		if !sort.Float64sAreSorted(raw) {
			// Sorting the raw points (n elements) keeps the bracket
			// expansion below ascending, so the 3n-element slice rarely
			// needs the comparison sort of its own.
			raw = append([]float64(nil), raw...)
			sort.Float64s(raw)
		}
		brackets = make([]float64, 0, 3*len(raw))
		for _, b := range raw {
			if b < 0 || b > horizon {
				continue
			}
			if b > GridNudge {
				brackets = append(brackets, b-GridNudge)
			}
			if b > 0 {
				brackets = append(brackets, b)
			}
			if b+GridNudge <= horizon {
				// Probing just after a vertex also covers a burst at b=0,
				// where the envelope jumps but 0 itself is outside the grid.
				brackets = append(brackets, b+GridNudge)
			}
		}
	}
	if len(brackets) == 0 {
		return cleanSorted(uniform, horizon)
	}
	if !sort.Float64sAreSorted(brackets) {
		sort.Float64s(brackets)
	}
	merged := mergeSortedInto(make([]float64, 0, len(uniform)+len(brackets)), uniform, brackets)
	return cleanSorted(merged, horizon)
}

// MergeGrids combines several candidate grids into one sorted, deduplicated
// grid clipped to (0, horizon]. Input grids are not mutated; already-sorted
// inputs (the common case: Grid outputs, multiples of a step) are combined
// by a single-allocation k-way merge instead of re-sorted.
func MergeGrids(horizon float64, grids ...[]float64) []float64 {
	var total int
	live := make([][]float64, 0, len(grids))
	for _, g := range grids {
		if len(g) == 0 {
			continue
		}
		if !sort.Float64sAreSorted(g) {
			gs := append([]float64(nil), g...)
			sort.Float64s(gs)
			g = gs
		}
		total += len(g)
		live = append(live, g)
	}
	merged := make([]float64, 0, total)
	switch len(live) {
	case 0:
	case 1:
		merged = append(merged, live[0]...)
	case 2:
		merged = mergeSortedInto(merged, live[0], live[1])
	default:
		// k is tiny (3–4 in every caller): a linear scan over the heads
		// beats heap bookkeeping and allocates nothing.
		idx := make([]int, len(live))
		for len(live) > 0 {
			best := 0
			for k := 1; k < len(live); k++ {
				if live[k][idx[k]] < live[best][idx[best]] {
					best = k
				}
			}
			merged = append(merged, live[best][idx[best]])
			idx[best]++
			if idx[best] == len(live[best]) {
				live = append(live[:best], live[best+1:]...)
				idx = append(idx[:best], idx[best+1:]...)
			}
		}
	}
	return cleanSorted(merged, horizon)
}

// CleanGrid sorts pts (in place, skipped when already ascending), removes
// duplicates (up to units.Eps) and values outside (0, horizon], and returns
// the result.
func CleanGrid(pts []float64, horizon float64) []float64 {
	if !sort.Float64sAreSorted(pts) {
		sort.Float64s(pts)
	}
	return cleanSorted(pts, horizon)
}

// cleanSorted is CleanGrid's dedup/clip pass over already-ascending points;
// it reuses the input's backing array.
func cleanSorted(pts []float64, horizon float64) []float64 {
	out := pts[:0]
	prev := math.Inf(-1)
	for _, p := range pts {
		if p <= 0 || p > horizon {
			continue
		}
		if p-prev <= units.Eps {
			continue
		}
		out = append(out, p)
		prev = p
	}
	return out
}

// mergeSortedInto appends the merge of two ascending runs onto dst.
func mergeSortedInto(dst, a, b []float64) []float64 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// Peak returns an upper bound on the instantaneous arrival rate of d, i.e.
// the limit of Γ(I) as I → 0. Descriptors whose envelope has an instantaneous
// burst (Bits(0+) > 0) have an infinite peak.
func Peak(d Descriptor) float64 {
	if p, ok := d.(interface{ PeakRate() float64 }); ok {
		return p.PeakRate()
	}
	const tiny = 1e-9
	b := d.Bits(tiny)
	if b <= 0 {
		return 0
	}
	r := b / tiny
	if r > 1e18 {
		return math.Inf(1)
	}
	return r
}
