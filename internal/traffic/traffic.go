// Package traffic implements the maximum-rate-function traffic descriptor
// Γ(I) used by the delay analysis (Section 4.2 of the paper), together with
// the source models and envelope transforms the FDDI-ATM-FDDI servers need.
//
// A descriptor bounds the traffic of one connection at one point in the
// network: Bits(I) is the maximum number of payload bits that may arrive in
// ANY time window of length I seconds, so Γ(I) = Bits(I)/I is the maximum
// average rate over any such window. Every server analysis consumes the
// envelope of its input traffic and produces both a worst-case delay and the
// envelope of its output traffic, which feeds the next server downstream.
package traffic

import (
	"math"
	"sort"

	"fafnet/internal/units"
)

// Descriptor is the maximum-rate-function traffic descriptor Γ(I).
//
// Implementations must guarantee that Bits is nondecreasing, that
// Bits(I) >= 0 for all I, and that Bits(I)/I converges to LongTermRate as
// I grows. Bits(I) for I <= 0 must be 0.
type Descriptor interface {
	// Bits returns A(I) = I·Γ(I): the maximum number of bits the connection
	// may produce in any interval of length interval seconds.
	Bits(interval float64) float64

	// LongTermRate returns ρ = lim_{I→∞} Γ(I) in bits per second. It is the
	// quantity every stability check compares against allocated capacity.
	LongTermRate() float64
}

// BreakpointProvider is implemented by descriptors that can enumerate the
// interval lengths at which their envelope changes behaviour (burst arrivals,
// slope changes). Extremum searches in the server analyses are exact when the
// candidate grid contains these points.
type BreakpointProvider interface {
	// Breakpoints returns interval lengths in (0, horizon] at which the
	// envelope has a vertex. The result need not be sorted or deduplicated.
	Breakpoints(horizon float64) []float64
}

// Rate returns Γ(I) = Bits(I)/I. interval must be positive.
func Rate(d Descriptor, interval float64) float64 {
	if interval <= 0 {
		panic("traffic: Rate requires a positive interval")
	}
	return d.Bits(interval) / interval
}

// GridNudge is the offset (seconds) used to probe an envelope "just after"
// or "just before" a burst instant or grid vertex. It is far below any
// physical time constant in the system; extremum searches across the
// analysis packages bracket candidate points with ±GridNudge.
const GridNudge = 1e-10

// Grid returns a sorted, deduplicated slice of candidate evaluation points in
// (0, horizon] for extremum searches involving d. The grid combines:
//
//   - the descriptor's intrinsic breakpoints (when it provides them), each
//     bracketed by points just before and just after, so that step
//     discontinuities are observed from both sides, and
//   - a uniform fallback grid of n points, which bounds the error for
//     composite envelopes whose exact vertex set is impractical to enumerate.
//
// n must be at least 1.
func Grid(d Descriptor, horizon float64, n int) []float64 {
	if horizon <= 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	pts := make([]float64, 0, n+16)
	step := horizon / float64(n)
	for i := 1; i <= n; i++ {
		pts = append(pts, step*float64(i))
	}
	if bp, ok := d.(BreakpointProvider); ok {
		for _, b := range bp.Breakpoints(horizon) {
			if b < 0 || b > horizon {
				continue
			}
			if b > 0 {
				pts = append(pts, b)
			}
			if b > GridNudge {
				pts = append(pts, b-GridNudge)
			}
			if b+GridNudge <= horizon {
				// Probing just after a vertex also covers a burst at b=0,
				// where the envelope jumps but 0 itself is outside the grid.
				pts = append(pts, b+GridNudge)
			}
		}
	}
	return CleanGrid(pts, horizon)
}

// MergeGrids combines several candidate grids into one sorted, deduplicated
// grid clipped to (0, horizon].
func MergeGrids(horizon float64, grids ...[]float64) []float64 {
	var total int
	for _, g := range grids {
		total += len(g)
	}
	pts := make([]float64, 0, total)
	for _, g := range grids {
		pts = append(pts, g...)
	}
	return CleanGrid(pts, horizon)
}

// CleanGrid sorts pts, removes duplicates (up to units.Eps) and values
// outside (0, horizon], and returns the result.
func CleanGrid(pts []float64, horizon float64) []float64 {
	sort.Float64s(pts)
	out := pts[:0]
	prev := math.Inf(-1)
	for _, p := range pts {
		if p <= 0 || p > horizon {
			continue
		}
		if p-prev <= units.Eps {
			continue
		}
		out = append(out, p)
		prev = p
	}
	return out
}

// Peak returns an upper bound on the instantaneous arrival rate of d, i.e.
// the limit of Γ(I) as I → 0. Descriptors whose envelope has an instantaneous
// burst (Bits(0+) > 0) have an infinite peak.
func Peak(d Descriptor) float64 {
	if p, ok := d.(interface{ PeakRate() float64 }); ok {
		return p.PeakRate()
	}
	const tiny = 1e-9
	b := d.Bits(tiny)
	if b <= 0 {
		return 0
	}
	r := b / tiny
	if r > 1e18 {
		return math.Inf(1)
	}
	return r
}
