package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"fafnet/internal/units"
)

func mustDual(t *testing.T) DualPeriodic {
	t.Helper()
	d, err := NewDualPeriodic(150e3, 0.010, 30e3, 0.001, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAggregate(t *testing.T) {
	d := mustDual(t)
	c, err := NewCBR(5e6)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregate(d, c, d)
	if got := agg.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	for _, iv := range []float64{0.0001, 0.001, 0.01, 0.1, 1} {
		want := 2*d.Bits(iv) + c.Bits(iv)
		if got := agg.Bits(iv); !units.AlmostEq(got, want) {
			t.Errorf("Bits(%v) = %v, want %v", iv, got, want)
		}
	}
	if got, want := agg.LongTermRate(), 2*15e6+5e6; !units.AlmostEq(got, want) {
		t.Errorf("LongTermRate = %v, want %v", got, want)
	}
	if bps := agg.Breakpoints(0.02); len(bps) == 0 {
		t.Error("aggregate of periodic members should expose breakpoints")
	}
}

func TestAggregateCopiesMembers(t *testing.T) {
	members := []Descriptor{CBR{RateBps: 1e6}}
	agg := NewAggregate(members...)
	members[0] = CBR{RateBps: 9e6}
	if got := agg.Bits(1); !units.AlmostEq(got, 1e6) {
		t.Errorf("aggregate observed caller mutation: Bits(1) = %v, want 1e6", got)
	}
}

func TestDelayed(t *testing.T) {
	d := mustDual(t)
	if _, err := NewDelayed(nil, 0.001, 0); err == nil {
		t.Error("nil inner should be rejected")
	}
	if _, err := NewDelayed(d, -1, 0); err == nil {
		t.Error("negative delay should be rejected")
	}
	if _, err := NewDelayed(d, math.Inf(1), 0); err == nil {
		t.Error("infinite delay should be rejected")
	}
	del, err := NewDelayed(d, 0.002, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	for _, iv := range []float64{0.0001, 0.001, 0.01, 0.1} {
		want := math.Min(100e6*iv, d.Bits(iv+0.002))
		if got := del.Bits(iv); !units.AlmostEq(got, want) {
			t.Errorf("Bits(%v) = %v, want %v", iv, got, want)
		}
	}
	if got := del.LongTermRate(); !units.AlmostEq(got, 15e6) {
		t.Errorf("LongTermRate = %v, want 15e6", got)
	}
}

func TestDelayedDominatesInner(t *testing.T) {
	// The output envelope of a server must dominate its input envelope:
	// what left in window I arrived in window I+d, so A_out(I) <= A_in(I+d),
	// and without the cap A_out >= A_in pointwise is NOT required — but
	// A_in(I) <= A_in(I+d) always, so Delayed without cap dominates inner.
	d := mustDual(t)
	del, err := NewDelayed(d, 0.003, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 300; i++ {
		iv := float64(i) * 0.0002
		if del.Bits(iv)+units.Eps < d.Bits(iv) {
			t.Fatalf("Delayed envelope below inner at I=%v", iv)
		}
	}
}

func TestQuantized(t *testing.T) {
	d := mustDual(t)
	if _, err := NewQuantized(nil, 100, 100); err == nil {
		t.Error("nil inner should be rejected")
	}
	if _, err := NewQuantized(d, 0, 100); err == nil {
		t.Error("zero quantum should be rejected")
	}
	if _, err := NewQuantized(d, 100, 50); err == nil {
		t.Error("lossy conversion (out < quantum) should be rejected")
	}
	// Frame payload 36000 bits (4500 bytes) → 94 cells of 384 payload bits.
	const frame, cells = 36000.0, 94 * 384.0
	q, err := NewQuantized(d, frame, cells)
	if err != nil {
		t.Fatal(err)
	}
	// One sub-burst of 30 kbit is less than one frame: rounds to one frame.
	if got := q.Bits(0.0003); !units.AlmostEq(got, cells) {
		t.Errorf("Bits(0.3ms) = %v, want one frame's cells %v", got, cells)
	}
	// 150 kbit within 5 ms = 4.17 frames → 5 frames.
	if got := q.Bits(0.005); !units.AlmostEq(got, 5*cells) {
		t.Errorf("Bits(5ms) = %v, want %v", got, 5*cells)
	}
	wantRho := 15e6 * cells / frame
	if got := q.LongTermRate(); !units.AlmostEq(got, wantRho) {
		t.Errorf("LongTermRate = %v, want %v", got, wantRho)
	}
}

func TestQuantizedDominatesScaledInner(t *testing.T) {
	// ⌈A/q⌉·out >= A·(out/q) >= A: quantization is conservative.
	d := mustDual(t)
	q, err := NewQuantized(d, 36000, 94*384)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 500; i++ {
		iv := float64(i) * 0.0001
		if q.Bits(iv)+units.Eps < d.Bits(iv) {
			t.Fatalf("quantized envelope below inner at I=%v", iv)
		}
	}
}

func TestRateCapped(t *testing.T) {
	d := mustDual(t)
	if _, err := NewRateCapped(nil, 1); err == nil {
		t.Error("nil inner should be rejected")
	}
	if _, err := NewRateCapped(d, 0); err == nil {
		t.Error("zero cap should be rejected")
	}
	rc, err := NewRateCapped(d, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	// Short windows are cap-limited (source peak is 100 Mbps > 50 Mbps cap).
	if got, want := rc.Bits(0.0001), 50e6*0.0001; !units.AlmostEq(got, want) {
		t.Errorf("Bits(0.1ms) = %v, want %v", got, want)
	}
	// Long windows are source-limited.
	if got, want := rc.Bits(1.0), d.Bits(1.0); !units.AlmostEq(got, want) {
		t.Errorf("Bits(1s) = %v, want %v", got, want)
	}
	if got := rc.PeakRate(); got != 50e6 {
		t.Errorf("PeakRate = %v, want 50e6", got)
	}
}

func TestMin(t *testing.T) {
	if _, err := NewMin(); err == nil {
		t.Error("empty Min should be rejected")
	}
	if _, err := NewMin(nil); err == nil {
		t.Error("nil member should be rejected")
	}
	d := mustDual(t)
	lb, err := NewLeakyBucket(2e4, 12e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMin(d, lb)
	if err != nil {
		t.Fatal(err)
	}
	for _, iv := range []float64{1e-4, 1e-3, 1e-2, 0.1, 1} {
		want := math.Min(d.Bits(iv), lb.Bits(iv))
		if got := m.Bits(iv); !units.AlmostEq(got, want) {
			t.Errorf("Bits(%v) = %v, want %v", iv, got, want)
		}
	}
	if got := m.LongTermRate(); !units.AlmostEq(got, 12e6) {
		t.Errorf("LongTermRate = %v, want 12e6 (the tighter member)", got)
	}
	if len(m.Breakpoints(0.02)) == 0 {
		t.Error("Min should expose member breakpoints")
	}
}

func TestMinTightensMACBound(t *testing.T) {
	// Min with an extra constraint can only tighten an envelope.
	d := mustDual(t)
	lb, err := NewLeakyBucket(25e3, 15e6, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMin(d, lb)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 500; i++ {
		iv := float64(i) * 1e-4
		if m.Bits(iv) > d.Bits(iv)+units.Eps {
			t.Fatalf("Min exceeded a member at I=%v", iv)
		}
	}
}

func TestSampledValidation(t *testing.T) {
	tests := []struct {
		name    string
		grid    []float64
		bits    []float64
		rho     float64
		wantErr bool
	}{
		{"valid", []float64{0.001, 0.002}, []float64{10, 20}, 1e4, false},
		{"empty", nil, nil, 0, true},
		{"length mismatch", []float64{1}, []float64{1, 2}, 0, true},
		{"non-increasing grid", []float64{0.002, 0.001}, []float64{1, 2}, 0, true},
		{"zero grid point", []float64{0, 1}, []float64{1, 2}, 0, true},
		{"decreasing bits", []float64{1, 2}, []float64{5, 1}, 0, true},
		{"negative bits", []float64{1}, []float64{-1}, 0, true},
		{"negative rho", []float64{1}, []float64{1}, -1, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewSampled(tt.grid, tt.bits, tt.rho)
			if (err != nil) != tt.wantErr {
				t.Errorf("error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestSampledInterpolation(t *testing.T) {
	s, err := NewSampled([]float64{0.001, 0.002, 0.004}, []float64{100, 150, 200}, 10e3)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		interval, want float64
	}{
		{0, 0},
		{0.0005, 100},        // below first sample: bounded by first sample
		{0.001, 100},         // exact sample
		{0.0015, 150},        // between samples: next sample bounds
		{0.004, 200},         // last sample
		{0.009, 2*200 + 100}, // subadditive extension: 2 horizons + 1 ms remainder
	}
	for _, tt := range tests {
		if got := s.Bits(tt.interval); !units.AlmostEq(got, tt.want) {
			t.Errorf("Bits(%v) = %v, want %v", tt.interval, got, tt.want)
		}
	}
}

func TestSampledCopiesInput(t *testing.T) {
	grid := []float64{0.001}
	bits := []float64{5}
	s, err := NewSampled(grid, bits, 0)
	if err != nil {
		t.Fatal(err)
	}
	bits[0] = 999
	if got := s.Bits(0.001); got != 5 {
		t.Errorf("Sampled observed caller mutation: Bits = %v, want 5", got)
	}
}

func TestMaterializeDominates(t *testing.T) {
	// A materialized envelope must dominate the original at every point
	// (conservative upward interpolation).
	d := mustDual(t)
	grid := Grid(d, 0.05, 256)
	s, err := Materialize(d, grid)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x float64) bool {
		iv := math.Mod(math.Abs(x), 0.05)
		if iv <= 0 {
			return true
		}
		return s.Bits(iv)+units.Eps >= d.Bits(iv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestMaterializeExactOnGrid(t *testing.T) {
	d := mustDual(t)
	grid := Grid(d, 0.05, 128)
	s, err := Materialize(d, grid)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range grid {
		if got, want := s.Bits(g), d.Bits(g); !units.AlmostEq(got, want) {
			t.Fatalf("Bits(%v) = %v, want %v", g, got, want)
		}
	}
}

func TestGridProperties(t *testing.T) {
	d := mustDual(t)
	g := Grid(d, 0.05, 100)
	if len(g) == 0 {
		t.Fatal("empty grid")
	}
	prev := 0.0
	for _, p := range g {
		if p <= prev {
			t.Fatalf("grid not strictly increasing at %v (prev %v)", p, prev)
		}
		if p > 0.05 {
			t.Fatalf("grid point %v beyond horizon", p)
		}
		prev = p
	}
	// Breakpoints of the source must be represented.
	if g[len(g)-1] != 0.05 {
		t.Errorf("grid should include the horizon, last = %v", g[len(g)-1])
	}
}

func TestMergeGrids(t *testing.T) {
	got := MergeGrids(1.0, []float64{0.5, 0.1}, []float64{0.1, 2.0, 0.7})
	want := []float64{0.1, 0.5, 0.7}
	if len(got) != len(want) {
		t.Fatalf("MergeGrids = %v, want %v", got, want)
	}
	for i := range want {
		if !units.AlmostEq(got[i], want[i]) {
			t.Fatalf("MergeGrids[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestGridHandlesNoHorizon(t *testing.T) {
	if g := Grid(CBR{RateBps: 1}, 0, 10); g != nil {
		t.Errorf("Grid with zero horizon = %v, want nil", g)
	}
}

func TestTransformChainRemainssMonotone(t *testing.T) {
	// A realistic chain: source → delayed → quantized → capped. Monotonicity
	// must survive composition.
	d := mustDual(t)
	del, err := NewDelayed(d, 0.0015, 140e6)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQuantized(del, 36000, 94*384)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewRateCapped(q, 140e6)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i := 1; i <= 2000; i++ {
		iv := float64(i) * 2e-5
		cur := rc.Bits(iv)
		if cur < prev-units.Eps {
			t.Fatalf("chain envelope decreased at I=%v: %v after %v", iv, cur, prev)
		}
		prev = cur
	}
}
