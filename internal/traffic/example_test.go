package traffic_test

import (
	"fmt"

	"fafnet/internal/traffic"
)

// The dual-periodic model of Eq. 37: at most C1 bits in any P1 window and
// C2 bits in any P2 window.
func ExampleDualPeriodic() {
	d, err := traffic.NewDualPeriodic(150e3, 0.010, 30e3, 0.001, 100e6)
	if err != nil {
		panic(err)
	}
	fmt.Println(d.Bits(0.001)) // one sub-period: C2
	fmt.Println(d.Bits(0.010)) // one full period: C1
	fmt.Println(d.LongTermRate())
	// Output:
	// 30000
	// 150000
	// 1.5e+07
}

func ExampleRate() {
	d, err := traffic.NewCBR(8e6)
	if err != nil {
		panic(err)
	}
	fmt.Println(traffic.Rate(d, 0.5))
	// Output:
	// 8e+06
}

// Composing transforms: a server with 2 ms worst-case delay and a 100 Mb/s
// line bounds its output by min(BW·I, A(I+d)).
func ExampleDelayed() {
	src, err := traffic.NewPeriodic(1e5, 0.010, 100e6)
	if err != nil {
		panic(err)
	}
	out, err := traffic.NewDelayed(src, 0.002, 100e6)
	if err != nil {
		panic(err)
	}
	fmt.Println(out.Bits(0.008)) // window reaches into the next burst
	// Output:
	// 100000
}

func ExampleQuantized() {
	src, err := traffic.NewCBR(1e6)
	if err != nil {
		panic(err)
	}
	// Frames of 20 kbit payload become 53 cells of 384 payload bits each.
	conv, err := traffic.NewQuantized(src, 20e3, 53*384)
	if err != nil {
		panic(err)
	}
	fmt.Println(conv.Bits(0.010)) // 10 kbit input rounds up to one frame
	// Output:
	// 20352
}
