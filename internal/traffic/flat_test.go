package traffic

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"fafnet/internal/units"
)

const flatTestHorizon = 64e-3

// flatCases enumerates one chain per lowering rule, shaped like the envelopes
// the admission analysis actually builds (harness sources, conversion
// quantization, stage delays).
func flatCases(t *testing.T) map[string]Descriptor {
	cbr, err := NewCBR(4e6)
	if err != nil {
		t.Fatal(err)
	}
	per, err := NewPeriodic(48000, 8e-3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	dual, err := NewDualPeriodic(120000, 10e-3, 24000, 1e-3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := NewLeakyBucket(30000, 2e6, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	lbNoPeak, err := NewLeakyBucket(30000, 2e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	lbNoSigma, err := NewLeakyBucket(0, 2e6, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	// The constructor rejects peak < ρ; build the literal to cover the
	// lowering's defensive branch anyway.
	lbSlowPeak := LeakyBucket{Sigma: 30000, Rho: 2e6, PeakBps: 1e6}
	samp, err := NewSampled([]float64{1e-3, 3e-3, 7e-3, 20e-3}, []float64{9000, 9000, 27000, 51000}, 2.55e6)
	if err != nil {
		t.Fatal(err)
	}
	quant, err := NewQuantized(dual, 36000, 94*384)
	if err != nil {
		t.Fatal(err)
	}
	delayed, err := NewDelayed(per, 1.7e-3, 0)
	if err != nil {
		t.Fatal(err)
	}
	delayedCap, err := NewDelayed(quant, 2.3e-3, 135e6)
	if err != nil {
		t.Fatal(err)
	}
	stage2, err := NewDelayed(delayedCap, 0.9e-3, 135e6)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := NewRateCapped(lb, 40e6)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Descriptor{
		"cbr":          cbr,
		"periodic":     per,
		"dual":         dual,
		"leaky":        lb,
		"leakyNoPeak":  lbNoPeak,
		"leakyNoSigma": lbNoSigma,
		"leakySlow":    lbSlowPeak,
		"sampled":      samp,
		"memoized":     NewMemoized(dual),
		"quantized":    quant,
		"delayed":      delayed,
		"delayedCap":   delayedCap,
		"twoStage":     stage2,
		"rateCapped":   capped,
		"aggregate":    NewAggregate(per, dual, cbr, quant),
	}
}

// probePoints assembles the evaluation points the equivalence check uses:
// dense seeded-random coverage of (0, 1.5·horizon] plus every chain
// breakpoint bracketed from both sides. Brackets sit well outside the
// CeilDiv/FloorDiv snap radius so both evaluation paths round identically.
func probePoints(d Descriptor, horizon float64, rng *rand.Rand) []float64 {
	pts := []float64{0, -1e-3, horizon, horizon * 1.5}
	for i := 0; i < 500; i++ {
		pts = append(pts, rng.Float64()*1.5*horizon)
	}
	if bp, ok := d.(BreakpointProvider); ok {
		for _, p := range bp.Breakpoints(horizon) {
			eps := 1e-6 * math.Max(1e-3, p)
			pts = append(pts, p-eps, p, p+eps)
		}
	}
	return pts
}

func checkAgreement(t *testing.T, name string, d Descriptor, f *Flat, pts []float64) {
	t.Helper()
	for _, pt := range pts {
		want := d.Bits(pt)
		got := f.Bits(pt)
		if !units.WithinRel(got, want, units.RelTol) {
			t.Fatalf("%s: Bits(%v) flat=%v chain=%v", name, pt, got, want)
		}
	}
	if got, want := f.LongTermRate(), d.LongTermRate(); got != want {
		t.Fatalf("%s: LongTermRate flat=%v chain=%v", name, got, want)
	}
}

// TestFlattenPointwiseAgreement is the core lowering property: every
// supported chain evaluates identically (within RelTol) through the flat
// array and through the closure tree, in and beyond the flat window.
func TestFlattenPointwiseAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(20250808))
	for name, d := range flatCases(t) {
		f := Flatten(d, flatTestHorizon)
		if f == nil {
			t.Fatalf("%s: Flatten returned nil", name)
		}
		if f.Horizon() <= 0 || f.Segments() == 0 {
			t.Fatalf("%s: degenerate flat: horizon=%v segments=%d", name, f.Horizon(), f.Segments())
		}
		checkAgreement(t, name, d, f, probePoints(d, flatTestHorizon, rng))
	}
}

// TestFlattenFuseChains lowers the same randomized chains the fusion harness
// builds and checks pointwise agreement against the fused closure tree.
func TestFlattenFuseChains(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		var src Descriptor
		switch trial % 3 {
		case 0:
			c1 := 50000 + rng.Float64()*150000
			d, err := NewDualPeriodic(c1, 0.010, c1/5, 0.001, 100e6)
			if err != nil {
				t.Fatal(err)
			}
			src = d
		case 1:
			d, err := NewPeriodic(20000+rng.Float64()*80000, []float64{5e-3, 8e-3, 10e-3}[rng.Intn(3)], 100e6)
			if err != nil {
				t.Fatal(err)
			}
			src = d
		default:
			d, err := NewCBR(2e6 + rng.Float64()*8e6)
			if err != nil {
				t.Fatal(err)
			}
			src = d
		}
		chain, err := NewQuantized(src, 36000, 94*384)
		if err != nil {
			t.Fatal(err)
		}
		var d Descriptor = chain
		for s := 0; s < 1+rng.Intn(3); s++ {
			d, err = NewDelayed(d, 0.2e-3+rng.Float64()*2e-3, 135e6)
			if err != nil {
				t.Fatal(err)
			}
		}
		fused := Fuse(d)
		f := Flatten(fused, flatTestHorizon)
		if f == nil {
			t.Fatalf("trial %d: Flatten(Fuse(chain)) returned nil", trial)
		}
		checkAgreement(t, "fused chain", fused, f, probePoints(fused, flatTestHorizon, rng))
	}
}

// TestFlatHintMatchesBinarySearch evaluates one flat twice over the same
// points — once ascending (exercising the cursor hint) and once in random
// order (exercising the binary-search fallback) — and demands bit-identical
// results: the hint is an index shortcut, never an approximation.
func TestFlatHintMatchesBinarySearch(t *testing.T) {
	d := flatCases(t)["quantized"]
	rng := rand.New(rand.NewSource(7))
	pts := make([]float64, 2000)
	for i := range pts {
		pts[i] = rng.Float64() * flatTestHorizon
	}
	sort.Float64s(pts)
	asc := Flatten(d, flatTestHorizon)
	shuffled := Flatten(d, flatTestHorizon)
	want := make([]float64, len(pts))
	for i, pt := range pts {
		want[i] = asc.Bits(pt)
	}
	perm := rng.Perm(len(pts))
	for _, i := range perm {
		if got := shuffled.Bits(pts[i]); got != want[i] {
			t.Fatalf("Bits(%v): shuffled=%v ascending=%v", pts[i], got, want[i])
		}
	}
}

// TestFlatBreakpointsDelegate pins the grid-preservation invariant: a Flat
// advertises exactly the tail chain's breakpoints (sorted, deduplicated),
// never its own segment boundaries, and smaller horizons answer with a
// prefix of the cached list clipped to the queried horizon.
func TestFlatBreakpointsDelegate(t *testing.T) {
	d := flatCases(t)["quantized"]
	f := Flatten(d, flatTestHorizon)
	want := append([]float64(nil), d.(BreakpointProvider).Breakpoints(flatTestHorizon)...)
	sort.Float64s(want)
	dedup := want[:0]
	for i, p := range want {
		if i > 0 && p == want[i-1] {
			continue
		}
		dedup = append(dedup, p)
	}
	got := f.Breakpoints(flatTestHorizon)
	if len(got) != len(dedup) {
		t.Fatalf("breakpoint count: flat=%d chain=%d", len(got), len(dedup))
	}
	for i := range got {
		if got[i] != dedup[i] {
			t.Fatalf("breakpoint %d: flat=%v chain=%v", i, got[i], dedup[i])
		}
	}
	// A smaller horizon is the prefix of the cached list clipped to it: the
	// same points grid assembly would keep (it clips beyond-horizon points
	// itself), without a fresh chain walk.
	half := f.Breakpoints(flatTestHorizon / 2)
	n := 0
	for _, p := range dedup {
		if p <= flatTestHorizon/2 {
			n++
		}
	}
	if len(half) != n {
		t.Fatalf("half-horizon breakpoint count: flat=%d, want prefix of %d", len(half), n)
	}
	for i := range half {
		if half[i] != dedup[i] {
			t.Fatalf("half-horizon breakpoint %d: flat=%v chain=%v", i, half[i], dedup[i])
		}
	}
}

// TestFlattenUnsupportedReturnsNil: chains with no exact closed-form lowering
// must fall back to the closure tree, not approximate.
func TestFlattenUnsupportedReturnsNil(t *testing.T) {
	cases := flatCases(t)
	m, err := NewMin(cases["periodic"], cases["cbr"])
	if err != nil {
		t.Fatal(err)
	}
	if Flatten(m, flatTestHorizon) != nil {
		t.Fatal("Flatten(Min) must return nil (no exact lowering)")
	}
	if Flatten(cases["periodic"], 0) != nil {
		t.Fatal("Flatten with zero horizon must return nil")
	}
	d, err := NewDelayed(m, 1e-3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if Flatten(d, flatTestHorizon) != nil {
		t.Fatal("Flatten(Delayed(Min)) must return nil")
	}
}

// TestSumFlatsMatchesAggregate: the O(n+m) merge equals member-wise summation.
func TestSumFlatsMatchesAggregate(t *testing.T) {
	cases := flatCases(t)
	members := []Descriptor{cases["periodic"], cases["dual"], cases["quantized"], cases["cbr"]}
	agg := NewAggregate(members...)
	flats := make([]*Flat, len(members))
	for i, m := range members {
		if flats[i] = Flatten(m, flatTestHorizon); flats[i] == nil {
			t.Fatalf("member %d failed to flatten", i)
		}
	}
	sum := SumFlats(agg, flats...)
	if sum == nil {
		t.Fatal("SumFlats returned nil")
	}
	rng := rand.New(rand.NewSource(3))
	checkAgreement(t, "sum", agg, sum, probePoints(agg, flatTestHorizon, rng))
}

// TestDeltaUpdateRoundTrip drives the incremental-aggregate cycle the
// analyzer runs per probe — subtract one member, add a replacement — and
// checks the delta-updated aggregate stays pointwise equal to a from-scratch
// sum of the current member set, through many cycles.
func TestDeltaUpdateRoundTrip(t *testing.T) {
	cases := flatCases(t)
	base := []Descriptor{cases["periodic"], cases["dual"], cases["cbr"]}
	flats := make([]*Flat, len(base))
	for i, m := range base {
		flats[i] = Flatten(m, flatTestHorizon)
	}
	agg := SumFlats(NewAggregate(base...), flats...)

	rng := rand.New(rand.NewSource(11))
	scratch := &Flat{}
	cur := agg
	members := append([]*Flat(nil), flats...)
	for cycle := 0; cycle < 50; cycle++ {
		// Replace a random member with a fresh random Periodic.
		idx := rng.Intn(len(members))
		p, err := NewPeriodic(20000+rng.Float64()*80000, []float64{5e-3, 8e-3, 10e-3}[rng.Intn(3)], 100e6)
		if err != nil {
			t.Fatal(err)
		}
		nf := Flatten(p, flatTestHorizon)
		SubInto(scratch, cur, members[idx])
		SumInto(cur, scratch, nf)
		members[idx] = nf

		tails := make([]Descriptor, len(members))
		for i, m := range members {
			tails[i] = m.Tail()
		}
		ref := SumFlats(NewAggregate(tails...), members...)
		for trial := 0; trial < 40; trial++ {
			pt := rng.Float64() * flatTestHorizon
			got, want := cur.Bits(pt), ref.Bits(pt)
			if !units.WithinRel(got, want, units.RelTol) {
				t.Fatalf("cycle %d: Bits(%v) incremental=%v scratch=%v", cycle, pt, got, want)
			}
		}
	}
	// Compaction keeps residual vertices from departed members bounded
	// without moving values beyond its tolerance.
	before := cur.Segments()
	probe := make([]float64, 200)
	want := make([]float64, len(probe))
	for i := range probe {
		probe[i] = rng.Float64() * cur.Horizon()
		want[i] = cur.Bits(probe[i])
	}
	removed := cur.Compact(units.RelTol)
	if cur.Segments()+removed != before {
		t.Fatalf("Compact accounting: %d segments + %d removed != %d before", cur.Segments(), removed, before)
	}
	for i, pt := range probe {
		if !units.WithinRel(cur.Bits(pt), want[i], 1e-8) {
			t.Fatalf("Compact moved Bits(%v): %v -> %v", pt, want[i], cur.Bits(pt))
		}
	}
}

// TestMergeLinearClipsToSharedHorizon: the merge result covers only the
// window both operands cover exactly; the tail serves the rest.
func TestMergeLinearClipsToSharedHorizon(t *testing.T) {
	cases := flatCases(t)
	a := Flatten(cases["periodic"], flatTestHorizon)
	b := Flatten(cases["dual"], flatTestHorizon/2)
	dst := &Flat{}
	SumInto(dst, a, b)
	if got := dst.Horizon(); got != flatTestHorizon/2 {
		t.Fatalf("merged horizon %v, want %v", got, flatTestHorizon/2)
	}
	// Beyond the shared horizon the tail aggregate answers, still exactly.
	pt := flatTestHorizon * 0.75
	want := cases["periodic"].Bits(pt) + cases["dual"].Bits(pt)
	if got := dst.Bits(pt); !units.WithinRel(got, want, units.RelTol) {
		t.Fatalf("tail Bits(%v)=%v want %v", pt, got, want)
	}
}
