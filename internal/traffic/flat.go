package traffic

import (
	"math"
	"sort"

	"fafnet/internal/units"
)

// Flat is the canonical piecewise-linear envelope: a flat sorted breakpoint
// array. Segment i covers (ts[i], ts[i+1]] (the last segment runs to the
// horizon) and on it the envelope is the line
//
//	A(t) = vs[i] + ss[i]·(t − ts[i])
//
// with vs[i] the right-limit at ts[i] — the envelope is left-continuous, so
// an instantaneous burst at ts[i] is represented by vs[i] jumping above the
// previous segment's value at ts[i]. ts[0] is always 0. A point evaluation
// is one binary search plus one fused multiply-add; closure-tree composition
// (Delayed over Quantized over a source) is replaced by exact closed-form
// operations on the array: Sum is an O(n+m) breakpoint merge, rate-capping
// and delay-shifting are segment walks, and frame/cell quantization emits
// the exact staircase crossings.
//
// A Flat covers [0, horizon] exactly; beyond the horizon Bits delegates to
// tail, the untransformed descriptor chain the array was lowered from, so a
// Flat is pointwise exact everywhere (fast inside the window the analyses
// actually scan, correct outside it). Breakpoints likewise delegates to the
// tail chain — grid assembly must see the same vertex set the chain would
// advertise, because the extremum scans' candidate grids define the analysis
// results; the Flat's own segment boundaries (quantization snap thresholds,
// cap crossings) are evaluation structure, not advertised breakpoints, and
// substituting them shifts which points the busy-period and backlog scans
// visit (e.g. onto the left limit of a staircase step, where a left-continuous
// envelope reads one level lower than the chain's bracketed crossings).
//
// Flat is NOT safe for concurrent use: Bits maintains a segment-cursor hint
// (ascending scans — busy-period searches, backlog scans, merges — then
// locate their segment in O(1) amortized instead of O(log n)), and the
// breakpoint cache is filled lazily. Every analyzer that holds one is itself
// documented single-threaded.
type Flat struct {
	ts, vs, ss []float64
	horizon    float64
	tail       Descriptor
	rho        float64

	// hint is the segment index of the most recent in-window evaluation.
	hint int

	// bp caches the tail chain's breakpoints (sorted, exact duplicates
	// removed) at the largest horizon queried; smaller horizons answer with
	// a binary-searched prefix.
	bp  []float64
	bpH float64

	// extendFailed records that EnsureHorizon found no lowering for the tail
	// chain, so later calls skip straight to delegation.
	extendFailed bool
}

// HorizonEnsurer is implemented by descriptors that can materialize (or
// otherwise accelerate) their evaluation out to a requested horizon. The
// extremum scans call it once per analysis — after the busy interval is
// known, before the grid walk — so deep scans run on breakpoint arrays
// instead of descriptor chains. Implementations must be value-preserving:
// EnsureHorizon changes evaluation speed, never evaluation results.
type HorizonEnsurer interface {
	// EnsureHorizon reports whether evaluations up to the given horizon are
	// now served from materialized state.
	EnsureHorizon(horizon float64) bool
}

// EnsureHorizon extends the breakpoint window to cover at least the given
// horizon by re-lowering the tail chain, adopting the larger array in place
// (the Flat keeps its identity, so aggregate membership diffs and caches are
// unaffected). The lowering emits vertices in the same order regardless of
// horizon, so the covered prefix is bit-identical before and after — an
// extension never moves a value, it only widens the window served by the
// array. When the tail has no lowering (e.g. a members-union tail), the call
// delegates, so a materialized aggregate extends its member flats instead.
func (f *Flat) EnsureHorizon(horizon float64) bool {
	if units.AlmostLE(horizon, f.horizon) {
		return true
	}
	if !f.extendFailed {
		if nf := Flatten(f.tail, horizon); nf != nil && nf != f && nf.horizon > f.horizon {
			f.ts, f.vs, f.ss = nf.ts, nf.vs, nf.ss
			f.horizon = nf.horizon
			f.hint = 0
			// The segment cap may truncate the re-lowered window short of the
			// request; the tail still serves the remainder exactly.
			return units.AlmostGE(f.horizon, horizon)
		}
		f.extendFailed = true
	}
	if he, ok := f.tail.(HorizonEnsurer); ok {
		return he.EnsureHorizon(horizon)
	}
	return false
}

var _ Descriptor = (*Flat)(nil)
var _ BreakpointProvider = (*Flat)(nil)

// maxFlatSegments bounds the breakpoint array of any single Flat. Lowering
// truncates the horizon rather than the values when a descriptor would
// exceed it (the tail keeps evaluations beyond the truncated window exact),
// so the bound trades window size, never correctness.
const maxFlatSegments = 1 << 14

// NewFlat assembles a Flat from parallel breakpoint arrays. ts must be
// strictly increasing and start at 0, vs and ss must have the same length,
// horizon must be at least the last breakpoint, and tail must be the exact
// descriptor the array represents (consulted beyond the horizon and for
// Breakpoints). The slices are NOT copied; the caller yields ownership.
func NewFlat(ts, vs, ss []float64, horizon float64, tail Descriptor) *Flat {
	if len(ts) == 0 || len(ts) != len(vs) || len(ts) != len(ss) || ts[0] != 0 || tail == nil || horizon < ts[len(ts)-1] {
		return nil
	}
	for i := 1; i < len(ts); i++ {
		if !(ts[i] > ts[i-1]) {
			return nil
		}
	}
	return &Flat{ts: ts, vs: vs, ss: ss, horizon: horizon, tail: tail, rho: tail.LongTermRate()}
}

// Horizon returns the upper end of the window the breakpoint array covers;
// evaluations beyond it delegate to the tail chain.
func (f *Flat) Horizon() float64 { return f.horizon }

// Segments returns the number of breakpoints in the array.
func (f *Flat) Segments() int { return len(f.ts) }

// Tail returns the exact descriptor chain the array was lowered from.
func (f *Flat) Tail() Descriptor { return f.tail }

// Bits implements Descriptor: locate the segment whose half-open interval
// (ts[i], ts[i+1]] contains t, then one fused multiply-add. The cursor hint
// makes ascending scans O(1) amortized; a miss falls back to binary search.
//
//fafvet:hotpath
func (f *Flat) Bits(t float64) float64 {
	if t <= 0 {
		return 0
	}
	if t > f.horizon {
		return f.tail.Bits(t)
	}
	i := f.seg(t)
	return f.vs[i] + f.ss[i]*(t-f.ts[i])
}

// seg returns the index of the segment containing t, for t in (0, horizon]:
// the largest i with ts[i] < t.
//
//fafvet:hotpath
func (f *Flat) seg(t float64) int {
	n := len(f.ts)
	if h := f.hint; h >= 0 && h < n && f.ts[h] < t {
		if h+1 == n || t <= f.ts[h+1] {
			return h
		}
		if h+2 == n || t <= f.ts[h+2] {
			f.hint = h + 1
			return h + 1
		}
	}
	// sort.SearchFloat64s returns the first index with ts[idx] >= t; the
	// segment owning t starts one breakpoint earlier. t > 0 = ts[0] keeps
	// the result in range.
	i := sort.SearchFloat64s(f.ts, t) - 1
	f.hint = i
	return i
}

// LongTermRate implements Descriptor.
func (f *Flat) LongTermRate() float64 { return f.rho }

// PeakRate reports the tail chain's peak, mirroring what Peak would compute
// on the chain directly.
func (f *Flat) PeakRate() float64 { return Peak(f.tail) }

// Breakpoints implements BreakpointProvider by delegating to the tail chain,
// cached at the largest horizon queried: the candidate grids of the extremum
// scans must contain exactly the vertex set the un-lowered chain would
// advertise, so the analysis results are value-preserved. Smaller horizons
// answer with a binary-searched prefix of the cached list — points the chain
// keeps a hair beyond a queried horizon are clipped by grid assembly either
// way, so the prefix produces identical grids at a fraction of the cost (the
// chain is walked once per Flat, not once per scan). The returned slice is
// shared with the cache and must not be mutated.
func (f *Flat) Breakpoints(horizon float64) []float64 {
	if horizon <= 0 {
		return nil
	}
	if f.bpH == 0 || horizon > f.bpH {
		f.bp = sortedChainBreakpoints(f.tail, horizon)
		f.bpH = horizon
	} else if horizon < f.bpH {
		n := sort.Search(len(f.bp), func(i int) bool { return f.bp[i] > horizon })
		return f.bp[:n]
	}
	return f.bp
}

// sortedChainBreakpoints asks the chain for its breakpoints and returns them
// sorted with exact duplicates removed — the normalization CleanGrid performs
// downstream anyway, so grids are unchanged.
func sortedChainBreakpoints(d Descriptor, horizon float64) []float64 {
	var raw []float64
	if bp, ok := d.(BreakpointProvider); ok {
		raw = bp.Breakpoints(horizon)
	}
	sorted := make([]float64, len(raw))
	copy(sorted, raw)
	if !sort.Float64sAreSorted(sorted) {
		sort.Float64s(sorted)
	}
	out := sorted[:0]
	for i, p := range sorted {
		if i > 0 && p == sorted[i-1] {
			continue
		}
		out = append(out, p)
	}
	return out
}

// flatBuilder accumulates breakpoints during lowering. add keeps ts strictly
// increasing: a vertex at the time of the previous one replaces it (the last
// writer owns the right-limit), an earlier time is ignored.
type flatBuilder struct {
	ts, vs, ss []float64
}

func (b *flatBuilder) add(t, v, s float64) {
	if n := len(b.ts); n > 0 {
		if t < b.ts[n-1] {
			return
		}
		if t == b.ts[n-1] {
			b.vs[n-1], b.ss[n-1] = v, s
			return
		}
	}
	b.ts = append(b.ts, t)
	b.vs = append(b.vs, v)
	b.ss = append(b.ss, s)
}

func (b *flatBuilder) full() bool { return len(b.ts) >= maxFlatSegments }

// reserve sizes an empty builder for an expected vertex count, clamped to
// the segment cap, so the lowering loops append without growth copies. An
// under-estimate only costs the usual append growth; never correctness.
func (b *flatBuilder) reserve(n int) {
	if len(b.ts) > 0 || n <= 0 {
		return
	}
	if n > maxFlatSegments {
		n = maxFlatSegments
	}
	if cap(b.ts) >= n {
		return
	}
	b.ts = make([]float64, 0, n)
	b.vs = make([]float64, 0, n)
	b.ss = make([]float64, 0, n)
}

// finish assembles the built segments into a Flat. When the builder hit the
// segment cap, the horizon shrinks to the last breakpoint so every covered
// point is exact; the tail serves the rest.
func (b *flatBuilder) finish(horizon float64, tail Descriptor) *Flat {
	if len(b.ts) == 0 || b.ts[0] != 0 || tail == nil {
		return nil
	}
	if b.full() && b.ts[len(b.ts)-1] < horizon {
		horizon = b.ts[len(b.ts)-1]
	}
	if horizon <= 0 {
		return nil
	}
	return &Flat{ts: b.ts, vs: b.vs, ss: b.ss, horizon: horizon, tail: tail, rho: tail.LongTermRate()}
}

// Flatten lowers a descriptor chain into one flat breakpoint array covering
// [0, horizon], or returns nil when the chain contains a node with no exact
// closed-form lowering (callers then keep the closure-tree path — Flatten is
// an accelerator, never an approximation). Every lowering rule is exact in
// the same sense Fuse is: the array evaluates to the chain's value up to
// float re-association, with the chain itself retained as the tail for
// points beyond the horizon.
func Flatten(d Descriptor, horizon float64) *Flat {
	if horizon <= 0 {
		return nil
	}
	switch v := d.(type) {
	case *Flat:
		// Best effort: a flat embedded in a chain extends itself so the
		// enclosing lowering is not clipped to its current window.
		v.EnsureHorizon(horizon)
		return v
	case *Memoized:
		// The memo stores exact inner evaluations, so lowering the inner is
		// lowering the whole.
		return Flatten(v.Inner(), horizon)
	case CBR:
		b := &flatBuilder{}
		b.add(0, 0, v.RateBps)
		return b.finish(horizon, d)
	case LeakyBucket:
		return flattenLeakyBucket(v, horizon)
	case Periodic:
		return flattenPeriodic(v, horizon)
	case DualPeriodic:
		return flattenDualPeriodic(v, horizon)
	case *Sampled:
		return flattenSampled(v, horizon)
	case Delayed:
		inner := Flatten(v.Inner, horizon+v.Delay)
		if inner == nil {
			return nil
		}
		return inner.shiftCap(v.Delay, v.CapBps, horizon, d)
	case RateCapped:
		inner := Flatten(v.Inner, horizon)
		if inner == nil {
			return nil
		}
		return inner.capped(v.CapBps, horizon, d)
	case Quantized:
		inner := Flatten(v.Inner, horizon)
		if inner == nil {
			return nil
		}
		return inner.quantized(v.QuantumBits, v.OutBits, horizon, d)
	case Aggregate:
		flats := make([]*Flat, len(v.members))
		for i, m := range v.members {
			if flats[i] = Flatten(m, horizon); flats[i] == nil {
				return nil
			}
		}
		return SumFlats(d, flats...)
	default:
		return nil
	}
}

// flattenLeakyBucket lowers min(Peak·I, σ + ρ·I).
func flattenLeakyBucket(v LeakyBucket, horizon float64) *Flat {
	b := &flatBuilder{}
	switch {
	case v.PeakBps == 0:
		// Uncapped: an instantaneous burst of σ at 0, then the token rate.
		b.add(0, v.Sigma, v.Rho)
	case v.PeakBps > v.Rho:
		x := v.Sigma / (v.PeakBps - v.Rho)
		if x <= 0 {
			// σ = 0: the sustained line is the minimum from the start.
			b.add(0, 0, v.Rho)
		} else {
			b.add(0, 0, v.PeakBps)
			if x < horizon {
				b.add(x, v.Sigma+v.Rho*x, v.Rho)
			}
		}
	default:
		// peak <= ρ: the peak line never exceeds σ + ρI.
		b.add(0, 0, v.PeakBps)
	}
	return b.finish(horizon, v)
}

// flattenPeriodic lowers ⌊I/P⌋·C + min(C, (I mod P)·Peak): a burst ramp of
// length C/Peak at every period start, then a plateau.
func flattenPeriodic(v Periodic, horizon float64) *Flat {
	b := &flatBuilder{}
	b.reserve(2 * (int(horizon/v.P) + 2))
	burst := v.C / v.PeakBps
	for k := 0; !b.full(); k++ {
		base := float64(k) * v.P
		if base > horizon {
			break
		}
		b.add(base, float64(k)*v.C, v.PeakBps)
		if end := base + burst; end < base+v.P && !(end > horizon) {
			b.add(end, float64(k)*v.C+v.C, 0)
		}
	}
	return b.finish(horizon, v)
}

// flattenDualPeriodic lowers Eq. 37: within each long period, short-period
// bursts ramp at the peak rate until the long-period budget C1 binds — the
// budget crossing is a true envelope vertex the closed form places exactly.
func flattenDualPeriodic(v DualPeriodic, horizon float64) *Flat {
	b := &flatBuilder{}
	perPeriod := math.Min(v.P1/v.P2, v.C1/v.C2+1)
	b.reserve(int((horizon/v.P1 + 1) * (2*perPeriod + 2)))
	burst := v.C2 / v.PeakBps
	for k1 := 0; !b.full(); k1++ {
		base := float64(k1) * v.P1
		if base > horizon {
			break
		}
		baseV := float64(k1) * v.C1
		capped := false
		for j := 0; !capped && !b.full(); j++ {
			r0 := float64(j) * v.P2
			if !(r0 < v.P1) || base+r0 > horizon {
				break
			}
			start := float64(j) * v.C2
			switch {
			case start >= v.C1:
				// Budget exhausted before this burst: plateau at C1.
				b.add(base+r0, baseV+v.C1, 0)
				capped = true
			case start+v.C2 > v.C1:
				// Budget binds mid-burst.
				b.add(base+r0, baseV+start, v.PeakBps)
				rc := r0 + (v.C1-start)/v.PeakBps
				if rc < v.P1 {
					b.add(base+rc, baseV+v.C1, 0)
				}
				capped = true
			default:
				b.add(base+r0, baseV+start, v.PeakBps)
				if end := r0 + burst; end < r0+v.P2 && end < v.P1 {
					b.add(base+end, baseV+start+v.C2, 0)
				}
			}
		}
	}
	return b.finish(horizon, v)
}

// flattenSampled lowers the tabulated staircase exactly up to its last
// sample; the subadditive extension beyond it is served by the tail.
func flattenSampled(v *Sampled, horizon float64) *Flat {
	b := &flatBuilder{}
	b.reserve(len(v.grid) + 1)
	b.add(0, v.bits[0], 0)
	for i := 0; i+1 < len(v.grid) && !b.full(); i++ {
		if v.grid[i] > horizon {
			break
		}
		b.add(v.grid[i], v.bits[i+1], 0)
	}
	return b.finish(math.Min(horizon, v.grid[len(v.grid)-1]), v)
}

// shiftCap applies the Delayed transform A'(I) = min(cap·I, A(I + d)) in
// closed form: the breakpoints shift left by the delay and the cap line is
// intersected exactly. tail is the chain equivalent retained for evaluations
// beyond the new horizon.
func (f *Flat) shiftCap(delay, capBps, horizon float64, tail Descriptor) *Flat {
	h := math.Min(horizon, f.horizon-delay)
	if h <= 0 {
		return nil
	}
	b := &flatBuilder{}
	b.reserve(len(f.ts) + 2)
	// Right-limit at I = 0 is the value just after t = delay.
	i := sort.SearchFloat64s(f.ts, delay)
	// First segment whose interior extends past delay: ts[i] <= delay when
	// delay lands exactly on a breakpoint (right-limit uses that segment).
	if i == len(f.ts) || f.ts[i] > delay {
		i--
	}
	b.add(0, f.vs[i]+f.ss[i]*(delay-f.ts[i]), f.ss[i])
	for k := i + 1; k < len(f.ts) && !b.full(); k++ {
		t := f.ts[k] - delay
		if t > h {
			break
		}
		b.add(t, f.vs[k], f.ss[k])
	}
	shifted := b.finish(h, tail)
	if shifted == nil {
		return nil
	}
	if capBps > 0 {
		return shifted.capped(capBps, h, tail)
	}
	return shifted
}

// capped intersects the envelope with the line cap·I exactly: within each
// linear segment the minimum switches sides at most once, and the crossing
// point is a new breakpoint.
func (f *Flat) capped(capBps, horizon float64, tail Descriptor) *Flat {
	h := math.Min(horizon, f.horizon)
	if h <= 0 {
		return nil
	}
	b := &flatBuilder{}
	b.reserve(2*len(f.ts) + 2)
	n := len(f.ts)
	for i := 0; i < n && !b.full(); i++ {
		t0, v0, s := f.ts[i], f.vs[i], f.ss[i]
		if t0 > h {
			break
		}
		t1 := h
		if i+1 < n {
			t1 = math.Min(h, f.ts[i+1])
		}
		// D(t) = A(t) − cap·t on (t0, t1]; D is linear with slope s − cap.
		d0 := v0 - capBps*t0
		d1 := v0 + s*(t1-t0) - capBps*t1
		if d0 >= 0 {
			b.add(t0, capBps*t0, capBps) // line below the envelope
			if d1 < 0 && d0 > d1 {
				tc := t0 + (t1-t0)*d0/(d0-d1)
				b.add(tc, v0+s*(tc-t0), s)
			}
		} else {
			b.add(t0, v0, s) // envelope below the line
			if d1 > 0 && d1 > d0 {
				tc := t0 + (t1-t0)*(-d0)/(d1-d0)
				b.add(tc, capBps*tc, capBps)
			}
		}
	}
	return b.finish(h, tail)
}

// quantized applies A'(I) = ⌈A(I)/q⌉·o in closed form: each linear segment
// contributes its staircase steps at the exact quantum crossings, with the
// same units.CeilDiv snapping the closure path uses (a value within relative
// tolerance of a multiple stays on the lower step).
func (f *Flat) quantized(q, o, horizon float64, tail Descriptor) *Flat {
	h := math.Min(horizon, f.horizon)
	if h <= 0 {
		return nil
	}
	b := &flatBuilder{}
	n := len(f.ts)
	// One step vertex per quantum level up to the value at the horizon, plus
	// one plateau vertex per input segment.
	j := sort.SearchFloat64s(f.ts, h) - 1
	if j < 0 {
		j = 0
	}
	vh := f.vs[j] + f.ss[j]*(h-f.ts[j])
	b.reserve(n + int(vh/q) + 4)
	for i := 0; i < n && !b.full(); i++ {
		t0, v0, s := f.ts[i], f.vs[i], f.ss[i]
		if t0 > h {
			break
		}
		t1 := h
		if i+1 < n {
			t1 = math.Min(h, f.ts[i+1])
		}
		l0 := units.CeilDiv(v0, q)
		b.add(t0, l0*o, 0)
		if s <= 0 {
			continue
		}
		l1 := units.CeilDiv(v0+s*(t1-t0), q)
		for m := l0 + 1; !(m > l1) && !b.full(); m++ {
			// Level m begins where CeilDiv first rounds up — not at the exact
			// crossing of (m−1)·q but once the quotient exceeds CeilDiv's
			// relative snap radius. Using the same threshold keeps the step
			// times aligned with the closure path, which matters exactly at
			// advertised breakpoints (grid points) that land on crossings.
			k := m - 1
			thresh := k*q + units.RelTol*math.Max(1, k)*q
			tc := t0 + (thresh-v0)/s
			if tc < t0 {
				tc = t0
			}
			if tc > t1 {
				break
			}
			b.add(tc, m*o, 0)
		}
	}
	return b.finish(h, tail)
}

// ShiftCap applies the Delayed transform A'(I) = min(capBps·I, A(I + delay))
// (capBps 0 = no cap) and returns the result as a new Flat with the given
// tail chain. It is the per-stage lowering step of the analyzer: stage k's
// flat is stage k−1's shifted by the port's worst-case delay and capped by
// the port capacity, without re-lowering the source.
func (f *Flat) ShiftCap(delay, capBps, horizon float64, tail Descriptor) *Flat {
	if delay < 0 || tail == nil {
		return nil
	}
	return f.shiftCap(delay, capBps, horizon, tail)
}

// Quantize applies A'(I) = ⌈A(I)/quantumBits⌉·outBits and returns the result
// as a new Flat with the given tail chain — the frame/cell conversion of the
// interface devices, applied in closed form to an already-lowered envelope.
func (f *Flat) Quantize(quantumBits, outBits, horizon float64, tail Descriptor) *Flat {
	if quantumBits <= 0 || outBits <= 0 || tail == nil {
		return nil
	}
	return f.quantized(quantumBits, outBits, horizon, tail)
}

// SumFlats returns the exact sum of the given flats — the O(Σn) breakpoint
// union merge — with the given tail chain (typically the matching Aggregate)
// serving beyond the smallest input horizon. Returns nil when no input or a
// nil input is given.
func SumFlats(tail Descriptor, flats ...*Flat) *Flat {
	if len(flats) == 0 || tail == nil {
		return nil
	}
	for _, f := range flats {
		if f == nil {
			return nil
		}
	}
	acc := flats[0]
	for _, f := range flats[1:] {
		dst := &Flat{}
		dst.ensure(acc.Segments() + f.Segments())
		mergeLinear(dst, acc, f, 1)
		dst.tail = tail
		acc = dst
	}
	if acc == flats[0] {
		// Single input: copy, so the caller may mutate the result freely.
		dst := &Flat{}
		dst.ensure(acc.Segments())
		mergeLinear(dst, acc, acc.zero(), 1)
		acc = dst
	}
	acc.tail = tail
	acc.rho = tail.LongTermRate()
	return acc
}

// zero returns an all-zero flat over the same horizon, used to express copy
// and negate through the one merge kernel.
func (f *Flat) zero() *Flat {
	return &Flat{ts: []float64{0}, vs: []float64{0}, ss: []float64{0}, horizon: f.horizon, tail: zeroDesc{}}
}

// zeroDesc is the identity element of envelope summation.
type zeroDesc struct{}

func (zeroDesc) Bits(float64) float64  { return 0 }
func (zeroDesc) LongTermRate() float64 { return 0 }

// ensure grows the destination arrays to hold at least n breakpoints. It is
// the cold half of the merge API: callers size the scratch here, then the
// annotated kernels below run allocation-free.
func (f *Flat) ensure(n int) {
	if cap(f.ts) < n {
		f.ts = make([]float64, 0, n)
		f.vs = make([]float64, 0, n)
		f.ss = make([]float64, 0, n)
	}
}

// SumInto writes the exact sum a + b into dst, growing dst's arrays only
// when their capacity is insufficient (pass a scratch Flat reused across
// calls for the allocation-free warm path). dst's tail is set to aggregate
// the operands' tails, reusing dst's existing tail aggregate when possible.
// dst must not alias a or b.
func SumInto(dst, a, b *Flat) {
	dst.ensure(a.Segments() + b.Segments())
	dst.ensureTail(a, b)
	mergeLinear(dst, a, b, 1)
}

// SubInto writes the exact difference a − b into dst under the same scratch
// contract as SumInto. It is the release half of aggregate delta-updates:
// subtracting a departed member's flat from a materialized sum. The caller
// owns the tail (a difference has no canonical chain); dst keeps whatever
// tail it has, so seed dst via SumFlats or set Retail before evaluating
// beyond the horizon.
func SubInto(dst, a, b *Flat) {
	dst.ensure(a.Segments() + b.Segments())
	mergeLinear(dst, a, b, -1)
}

// flatTail aggregates member tails for a scratch sum without rebuilding a
// descriptor per update: the members slice is rewritten in place.
type flatTail struct {
	members []Descriptor
}

func (t *flatTail) Bits(interval float64) float64 {
	var sum float64
	for _, m := range t.members {
		sum += m.Bits(interval)
	}
	return sum
}

func (t *flatTail) LongTermRate() float64 {
	var sum float64
	for _, m := range t.members {
		sum += m.LongTermRate()
	}
	return sum
}

// Breakpoints implements BreakpointProvider as the members' union, matching
// Aggregate's semantics for grid assembly. Member lists that are already
// ascending (Flat members answer from their breakpoint caches) are combined
// by a linear k-way merge, so the union is ascending and the normalization
// downstream never pays a comparison sort.
func (t *flatTail) Breakpoints(horizon float64) []float64 {
	lists := make([][]float64, 0, len(t.members))
	total := 0
	sorted := true
	for _, m := range t.members {
		if bp, ok := m.(BreakpointProvider); ok {
			l := bp.Breakpoints(horizon)
			if len(l) == 0 {
				continue
			}
			if !sort.Float64sAreSorted(l) {
				sorted = false
			}
			lists = append(lists, l)
			total += len(l)
		}
	}
	pts := make([]float64, 0, total)
	if !sorted {
		for _, l := range lists {
			pts = append(pts, l...)
		}
		return pts
	}
	idx := make([]int, len(lists))
	for len(lists) > 0 {
		best := 0
		for k := 1; k < len(lists); k++ {
			if lists[k][idx[k]] < lists[best][idx[best]] {
				best = k
			}
		}
		pts = append(pts, lists[best][idx[best]])
		idx[best]++
		if idx[best] == len(lists[best]) {
			lists = append(lists[:best], lists[best+1:]...)
			idx = append(idx[:best], idx[best+1:]...)
		}
	}
	return pts
}

// NewMemberTail returns a reusable members-union tail for materialized sums:
// Bits and LongTermRate sum the members, Breakpoints unions them. Passing the
// member Flats themselves (rather than their chains) makes every beyond-window
// evaluation and every breakpoint union go through the members' own fast paths
// and caches.
func NewMemberTail() *MemberTail { return &MemberTail{} }

// MemberTail is the exported handle for a reusable members-union tail; see
// NewMemberTail.
type MemberTail = flatTail

// SetMembers replaces the member set in place, reusing the backing array.
func (t *flatTail) SetMembers(ms ...Descriptor) {
	t.members = append(t.members[:0], ms...)
}

// EnsureHorizon implements HorizonEnsurer by extending every member that can
// extend itself: a materialized aggregate sum whose own window is bounded by
// delta-updates then serves deep evaluations as a sum of member array
// lookups instead of member chain walks.
func (t *flatTail) EnsureHorizon(horizon float64) bool {
	all := true
	for _, m := range t.members {
		if he, ok := m.(HorizonEnsurer); ok {
			if !he.EnsureHorizon(horizon) {
				all = false
			}
		} else {
			all = false
		}
	}
	return all
}

// ensureTail points dst's tail at a flatTail over a's and b's tails, reusing
// the existing flatTail (and its backing array, when large enough) so warm
// updates stay allocation-free.
func (dst *Flat) ensureTail(a, b *Flat) {
	ft, ok := dst.tail.(*flatTail)
	if !ok {
		ft = &flatTail{members: make([]Descriptor, 0, 8)}
		dst.tail = ft
	}
	ft.members = append(ft.members[:0], a.tail, b.tail)
}

// Retail replaces the tail chain (and the cached breakpoints derived from
// it). Use it after delta-updates when the canonical chain of the result is
// known — e.g. the Aggregate over the current member set.
func (f *Flat) Retail(tail Descriptor) {
	f.tail = tail
	f.rho = tail.LongTermRate()
	f.bp = nil
	f.bpH = 0
	f.extendFailed = false
}

// mergeLinear writes a + sign·b into dst over the union of breakpoints,
// clipped to the smaller horizon. It is the aggregate delta-update kernel —
// one admit, release, or probe step adds or subtracts one connection's flat
// from a materialized sum — and runs on preallocated scratch: the caller
// (SumInto/SubInto) has sized dst, so the kernel only writes by index.
//
//fafvet:hotpath
func mergeLinear(dst, a, b *Flat, sign float64) {
	h := math.Min(a.horizon, b.horizon)
	na, nb := len(a.ts), len(b.ts)
	ts := dst.ts[:cap(dst.ts)]
	vs := dst.vs[:cap(dst.vs)]
	ss := dst.ss[:cap(dst.ss)]
	k := 0
	i, j := 0, 0
	for i < na || j < nb {
		var t float64
		takeA, takeB := false, false
		switch {
		case i < na && j < nb && a.ts[i] == b.ts[j]:
			t, takeA, takeB = a.ts[i], true, true
		case j == nb || (i < na && a.ts[i] < b.ts[j]):
			t, takeA = a.ts[i], true
		default:
			t, takeB = b.ts[j], true
		}
		if t > h {
			break
		}
		var va, vb, sa, sb float64
		if takeA {
			va, sa = a.vs[i], a.ss[i]
			i++
		} else {
			p := i - 1
			va = a.vs[p] + a.ss[p]*(t-a.ts[p])
			sa = a.ss[p]
		}
		if takeB {
			vb, sb = b.vs[j], b.ss[j]
			j++
		} else {
			p := j - 1
			vb = b.vs[p] + b.ss[p]*(t-b.ts[p])
			sb = b.ss[p]
		}
		ts[k] = t
		vs[k] = va + sign*vb
		ss[k] = sa + sign*sb
		k++
	}
	dst.ts = ts[:k]
	dst.vs = vs[:k]
	dst.ss = ss[:k]
	dst.horizon = h
	dst.rho = a.rho + sign*b.rho
	dst.hint = 0
	dst.bp = nil
	dst.bpH = 0
}

// Compact drops breakpoints that are collinear with their predecessor within
// the given relative tolerance, in place. Delta-updated aggregates grow
// residual vertices from departed members (their times remain, carrying the
// float dust of an add followed by a subtract); compaction keeps the array
// bounded while moving values by at most tol relative. Returns the number of
// breakpoints removed.
func (f *Flat) Compact(tol float64) int {
	n := len(f.ts)
	if n < 2 {
		return 0
	}
	k := 1
	for i := 1; i < n; i++ {
		pt, pv, ps := f.ts[k-1], f.vs[k-1], f.ss[k-1]
		predicted := pv + ps*(f.ts[i]-pt)
		scale := math.Max(math.Abs(predicted), math.Abs(f.vs[i]))
		sScale := math.Max(math.Abs(ps), math.Abs(f.ss[i]))
		if math.Abs(f.vs[i]-predicted) <= tol*scale+units.Eps && math.Abs(f.ss[i]-ps) <= tol*sScale+units.Eps {
			continue
		}
		f.ts[k], f.vs[k], f.ss[k] = f.ts[i], f.vs[i], f.ss[i]
		k++
	}
	removed := n - k
	f.ts = f.ts[:k]
	f.vs = f.vs[:k]
	f.ss = f.ss[:k]
	f.hint = 0
	return removed
}
