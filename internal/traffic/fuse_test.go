package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"fafnet/internal/units"
)

// chainDepth counts transform nodes above the source.
func chainDepth(d Descriptor) int {
	switch v := d.(type) {
	case Delayed:
		return 1 + chainDepth(v.Inner)
	case RateCapped:
		return 1 + chainDepth(v.Inner)
	case Quantized:
		return 1 + chainDepth(v.Inner)
	case *Memoized:
		return 1 + chainDepth(v.inner)
	default:
		return 0
	}
}

// assertSameEnvelope checks pointwise equality of two descriptors over a
// probe grid covering sub-burst, multi-period, and extension ranges.
func assertSameEnvelope(t *testing.T, got, want Descriptor, label string) {
	t.Helper()
	if g, w := got.LongTermRate(), want.LongTermRate(); !units.WithinRel(g, w, units.RelTol) {
		t.Errorf("%s: LongTermRate = %v, want %v", label, g, w)
	}
	for _, iv := range []float64{1e-7, 1e-5, 1e-4, 3e-4, 1e-3, 2.5e-3, 1e-2, 3.3e-2, 0.1, 1} {
		g, w := got.Bits(iv), want.Bits(iv)
		if !units.WithinRel(g, w, units.RelTol) {
			t.Errorf("%s: Bits(%v) = %v, want %v", label, iv, g, w)
		}
	}
}

func TestFuseDelayedChainEqualCaps(t *testing.T) {
	src, err := NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	const cap = 140e6
	var chain Descriptor = src
	for i := 0; i < 5; i++ {
		chain, err = NewDelayed(chain, 0.2e-3, cap)
		if err != nil {
			t.Fatal(err)
		}
	}
	fused := Fuse(chain)
	if d := chainDepth(fused); d != 1 {
		t.Errorf("fused depth = %d, want 1 (got %v)", d, fused)
	}
	del, ok := fused.(Delayed)
	if !ok {
		t.Fatalf("fused = %T, want Delayed", fused)
	}
	if !units.WithinRel(del.Delay, 1e-3, units.RelTol) {
		t.Errorf("fused delay = %v, want 1e-3", del.Delay)
	}
	if del.CapBps != cap {
		t.Errorf("fused cap = %v, want %v", del.CapBps, cap)
	}
	assertSameEnvelope(t, fused, chain, "Delayed^5")
}

func TestFuseInnerUncappedAndDominated(t *testing.T) {
	src, _ := NewPeriodic(10e3, 1e-3, 50e6)
	inner, _ := NewDelayed(src, 1e-3, 0) // uncapped
	outer, _ := NewDelayed(inner, 2e-3, 30e6)
	fused := Fuse(outer)
	if d := chainDepth(fused); d != 1 {
		t.Errorf("uncapped-inner fuse depth = %d, want 1", d)
	}
	assertSameEnvelope(t, fused, outer, "D[c]∘D[0]")

	innerHi, _ := NewDelayed(src, 1e-3, 80e6) // dominated by outer's 30e6
	outer2, _ := NewDelayed(innerHi, 2e-3, 30e6)
	fused2 := Fuse(outer2)
	if d := chainDepth(fused2); d != 1 {
		t.Errorf("dominated-inner fuse depth = %d, want 1", d)
	}
	assertSameEnvelope(t, fused2, outer2, "D[30M]∘D[80M]")
}

func TestFuseKeepsUnfusableCaps(t *testing.T) {
	// Inner cap strictly below outer cap: the intermediate c1·(I+d2) term is
	// not expressible as a single Delayed, so the chain must be preserved.
	src, _ := NewPeriodic(10e3, 1e-3, 50e6)
	inner, _ := NewDelayed(src, 1e-3, 20e6)
	outer, _ := NewDelayed(inner, 2e-3, 30e6)
	fused := Fuse(outer)
	if d := chainDepth(fused); d != 2 {
		t.Errorf("unfusable chain depth = %d, want 2", d)
	}
	assertSameEnvelope(t, fused, outer, "D[30M]∘D[20M]")
}

func TestFuseRateCapRules(t *testing.T) {
	src, _ := NewPeriodic(10e3, 1e-3, 50e6)

	r1, _ := NewRateCapped(src, 40e6)
	r2, _ := NewRateCapped(r1, 20e6)
	fused := Fuse(r2)
	rc, ok := fused.(RateCapped)
	if !ok || rc.CapBps != 20e6 || chainDepth(fused) != 1 {
		t.Errorf("R∘R fused to %v, want RateCapped(20e6, src)", fused)
	}
	assertSameEnvelope(t, fused, r2, "R∘R")

	d1, _ := NewDelayed(src, 1e-3, 30e6)
	rOverD, _ := NewRateCapped(d1, 20e6)
	fused = Fuse(rOverD)
	del, ok := fused.(Delayed)
	if !ok || del.CapBps != 20e6 || chainDepth(fused) != 1 {
		t.Errorf("R∘D fused to %v, want Delayed(cap=20e6)", fused)
	}
	assertSameEnvelope(t, fused, rOverD, "R∘D")

	dOverR, _ := NewDelayed(r1, 1e-3, 30e6) // r = 40e6 >= c = 30e6: dominated
	fused = Fuse(dOverR)
	if chainDepth(fused) != 1 {
		t.Errorf("D∘R (dominated) depth = %d, want 1", chainDepth(fused))
	}
	assertSameEnvelope(t, fused, dOverR, "D∘R")

	rLow, _ := NewRateCapped(src, 10e6)
	dOverRLow, _ := NewDelayed(rLow, 1e-3, 30e6) // r < c: must keep both
	fused = Fuse(dOverRLow)
	if chainDepth(fused) != 2 {
		t.Errorf("D∘R (binding inner cap) depth = %d, want 2", chainDepth(fused))
	}
	assertSameEnvelope(t, fused, dOverRLow, "D∘R binding")
}

func TestFuseZeroDelay(t *testing.T) {
	src, _ := NewPeriodic(10e3, 1e-3, 50e6)
	d0, _ := NewDelayed(src, 0, 0)
	if fused := Fuse(d0); fused != Descriptor(src) {
		t.Errorf("D[0,0] fused to %v, want the source itself", fused)
	}
	d0c, _ := NewDelayed(src, 0, 30e6)
	fused := Fuse(d0c)
	if _, ok := fused.(RateCapped); !ok {
		t.Errorf("D[0,c] fused to %T, want RateCapped", fused)
	}
	assertSameEnvelope(t, fused, d0c, "D[0,c]")
}

func TestFuseQuantizedAdjacency(t *testing.T) {
	src, _ := NewPeriodic(10e3, 1e-3, 50e6)
	q1, _ := NewQuantized(src, 4000, 4500)
	q2, _ := NewQuantized(q1, 4500, 5000) // outer quantum == inner out
	fused := Fuse(q2)
	if chainDepth(fused) != 1 {
		t.Errorf("Q∘Q (matched units) depth = %d, want 1", chainDepth(fused))
	}
	assertSameEnvelope(t, fused, q2, "Q∘Q matched")

	q3, _ := NewQuantized(q1, 9000, 9000) // mismatched: must keep both
	fused = Fuse(q3)
	if chainDepth(fused) != 2 {
		t.Errorf("Q∘Q (mismatched units) depth = %d, want 2", chainDepth(fused))
	}
	assertSameEnvelope(t, fused, q3, "Q∘Q mismatched")
}

func TestFuseAggregateFlattening(t *testing.T) {
	a, _ := NewCBR(1e6)
	b, _ := NewPeriodic(10e3, 1e-3, 50e6)
	inner := NewAggregate(a, b)
	outer := NewAggregate(inner, a)
	fused := Fuse(outer)
	agg, ok := fused.(Aggregate)
	if !ok || agg.Len() != 3 {
		t.Errorf("nested aggregate fused to %v, want flat 3-member aggregate", fused)
	}
	assertSameEnvelope(t, fused, outer, "Aggregate flatten")
}

// TestFuseRandomizedChains builds random transform stacks over random
// sources and asserts the fused envelope agrees everywhere.
func TestFuseRandomizedChains(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		src, err := NewDualPeriodic(
			1e3+rng.Float64()*100e3, 1e-3+rng.Float64()*20e-3,
			1e2+rng.Float64()*1e3, 1e-4+rng.Float64()*5e-4,
			1e9)
		if err != nil {
			// Random parameters violating C2<=C1 or rate ordering: skip.
			continue
		}
		var chain Descriptor = src
		depth := 1 + rng.Intn(6)
		for i := 0; i < depth; i++ {
			switch rng.Intn(3) {
			case 0:
				chain, err = NewDelayed(chain, rng.Float64()*5e-3, []float64{0, 140e6, 80e6, 140e6}[rng.Intn(4)])
			case 1:
				chain, err = NewRateCapped(chain, 20e6+rng.Float64()*200e6)
			default:
				q := 1e3 + rng.Float64()*40e3
				chain, err = NewQuantized(chain, q, q*(1+rng.Float64()*0.2))
			}
			if err != nil {
				t.Fatalf("trial %d: building chain: %v", trial, err)
			}
		}
		fused := Fuse(chain)
		for probe := 0; probe < 40; probe++ {
			iv := math.Exp(rng.Float64()*12 - 9) // ~0.12 ms .. 20 s, log-spaced
			g, w := fused.Bits(iv), chain.Bits(iv)
			if !units.WithinRel(g, w, units.RelTol) {
				t.Fatalf("trial %d: fused(%v) = %v, chain = %v (chain %v)", trial, iv, g, w, chain)
			}
		}
	}
}

// TestFuseBreakpointsEquivalent asserts the fused chain exposes the same
// candidate grid (the extremum searches' correctness depends on it).
func TestFuseBreakpointsEquivalent(t *testing.T) {
	src, _ := NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
	var chain Descriptor = src
	for i := 0; i < 4; i++ {
		chain, _ = NewDelayed(chain, 0.3e-3, 140e6)
	}
	fused := Fuse(chain)
	for _, h := range []float64{5e-3, 20e-3, 50e-3} {
		want := CleanGrid(chain.(BreakpointProvider).Breakpoints(h), h)
		got := CleanGrid(append([]float64(nil), fused.(BreakpointProvider).Breakpoints(h)...), h)
		if len(got) != len(want) {
			t.Fatalf("horizon %v: %d fused breakpoints, want %d", h, len(got), len(want))
		}
		for i := range got {
			if !units.WithinRel(got[i], want[i], 1e-6) {
				t.Errorf("horizon %v: breakpoint %d = %v, want %v", h, i, got[i], want[i])
			}
		}
	}
}

func ExampleFuse() {
	src, _ := NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
	var chain Descriptor = src
	for i := 0; i < 3; i++ {
		chain, _ = NewDelayed(chain, 0.5e-3, 140e6)
	}
	fmt.Println(Fuse(chain))
	// Output:
	// Delayed(d=0.0015 s, cap=1.4e+08 bps, inner=DualPeriodic(C1=5e+04 b/P1=0.01 s, C2=1e+04 b/P2=0.001 s, peak=1e+08 bps))
}
