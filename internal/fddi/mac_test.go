package fddi

import (
	"errors"
	"math"
	"testing"

	"fafnet/internal/traffic"
	"fafnet/internal/units"
)

func testRing() RingConfig {
	return RingConfig{BandwidthBps: 100e6, TTRT: 8e-3, Overhead: 1e-3, HopLatency: 5e-6}
}

func mustPeriodic(t *testing.T, c, p, peak float64) traffic.Periodic {
	t.Helper()
	d, err := traffic.NewPeriodic(c, p, peak)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAnalyzeMACClosedForm(t *testing.T) {
	// 100 kbit every 10 ms at medium peak, H = 2 ms (service 200 kbit per
	// rotation). Worked by hand:
	//   busy interval: first k with A(k·8ms) <= (k−1)·200k → k=2, B = 16 ms
	//   backlog:       A just below 16 ms = 200 kbit (avail still 0)
	//   delay:         worst at t→0: (⌈ε/200k⌉+1)·8ms − ε = 16 ms
	in := mustPeriodic(t, 1e5, 0.010, 100e6)
	res, err := AnalyzeMAC(in, MACParams{Ring: testRing(), H: 2e-3}, Options{})
	if err != nil {
		t.Fatalf("AnalyzeMAC: %v", err)
	}
	if !units.AlmostEq(res.BusyInterval, 0.016) {
		t.Errorf("BusyInterval = %v, want 0.016", res.BusyInterval)
	}
	if !units.WithinRel(res.BufferBits, 2e5, 1e-6) {
		t.Errorf("BufferBits = %v, want 2e5", res.BufferBits)
	}
	if !units.WithinRel(res.Delay, 0.016, 1e-6) {
		t.Errorf("Delay = %v, want 0.016", res.Delay)
	}
}

func TestAnalyzeMACMoreServiceNeverWorse(t *testing.T) {
	// Increasing H must not increase the delay bound or the backlog.
	in := mustPeriodic(t, 1.5e5, 0.010, 100e6)
	prevDelay := math.Inf(1)
	prevBacklog := math.Inf(1)
	for _, h := range []float64{1.5e-3, 2e-3, 3e-3, 4e-3, 6e-3} {
		res, err := AnalyzeMAC(in, MACParams{Ring: testRing(), H: h}, Options{})
		if err != nil {
			t.Fatalf("H=%v: %v", h, err)
		}
		if res.Delay > prevDelay+units.Eps {
			t.Errorf("H=%v: delay %v exceeds delay %v at smaller H", h, res.Delay, prevDelay)
		}
		if res.BufferBits > prevBacklog+units.Eps {
			t.Errorf("H=%v: backlog %v exceeds backlog %v at smaller H", h, res.BufferBits, prevBacklog)
		}
		prevDelay, prevBacklog = res.Delay, res.BufferBits
	}
}

func TestAnalyzeMACOverload(t *testing.T) {
	// rho·TTRT = 10 Mb/s · 8 ms = 80 kbit; H·BW = 50 kbit: unstable.
	in := mustPeriodic(t, 1e5, 0.010, 100e6)
	_, err := AnalyzeMAC(in, MACParams{Ring: testRing(), H: 0.5e-3}, Options{})
	if !errors.Is(err, ErrOverload) {
		t.Errorf("err = %v, want ErrOverload", err)
	}
}

func TestAnalyzeMACBufferOverflow(t *testing.T) {
	in := mustPeriodic(t, 1e5, 0.010, 100e6)
	// Worst-case backlog is 200 kbit (see closed-form test); a 100 kbit
	// buffer must overflow.
	_, err := AnalyzeMAC(in, MACParams{Ring: testRing(), H: 2e-3, BufferBits: 1e5}, Options{})
	if !errors.Is(err, ErrBufferOverflow) {
		t.Errorf("err = %v, want ErrBufferOverflow", err)
	}
	// A sufficient buffer passes.
	if _, err := AnalyzeMAC(in, MACParams{Ring: testRing(), H: 2e-3, BufferBits: 2.5e5}, Options{}); err != nil {
		t.Errorf("sufficient buffer rejected: %v", err)
	}
}

func TestAnalyzeMACValidation(t *testing.T) {
	in := mustPeriodic(t, 1e5, 0.010, 100e6)
	if _, err := AnalyzeMAC(nil, MACParams{Ring: testRing(), H: 1e-3}, Options{}); err == nil {
		t.Error("nil descriptor should be rejected")
	}
	if _, err := AnalyzeMAC(in, MACParams{Ring: testRing(), H: 0}, Options{}); err == nil {
		t.Error("zero H should be rejected")
	}
	bad := testRing()
	bad.TTRT = 0
	if _, err := AnalyzeMAC(in, MACParams{Ring: bad, H: 1e-3}, Options{}); err == nil {
		t.Error("invalid ring config should be rejected")
	}
}

func TestAvail(t *testing.T) {
	p := MACParams{Ring: testRing(), H: 2e-3}
	tests := []struct {
		t, want float64
	}{
		{0, 0},
		{0.004, 0},     // within the first rotation: nothing guaranteed
		{0.008, 0},     // ⌊1⌋−1 = 0
		{0.016, 2e5},   // one full service quantum
		{0.0239, 2e5},  // still two rotations started
		{0.024, 4e5},   // three rotations: two quanta
		{0.0800, 18e5}, // ten rotations
	}
	for _, tt := range tests {
		if got := p.Avail(tt.t); !units.AlmostEq(got, tt.want) {
			t.Errorf("Avail(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestOutputEnvelopeDominatesDepartures(t *testing.T) {
	// The output envelope must bound what can actually leave the MAC: at
	// most avail(t+I) − avail(t) <= H·BW·(⌈I/TTRT⌉+1) in any window, and at
	// least the input's long-term volume must pass.
	in := mustPeriodic(t, 1e5, 0.010, 100e6)
	p := MACParams{Ring: testRing(), H: 2e-3}
	for _, mode := range []OutputBound{OutputDelayBased, OutputExact} {
		res, err := AnalyzeMAC(in, p, Options{Output: mode})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		out := res.Output
		// The output envelope preserves the long-term rate.
		if got := out.LongTermRate(); !units.WithinRel(got, in.LongTermRate(), 1e-6) {
			t.Errorf("mode %v: output rho = %v, want %v", mode, got, in.LongTermRate())
		}
		// The output can never exceed the medium rate.
		for i := 1; i <= 200; i++ {
			iv := float64(i) * 1e-4
			if got := out.Bits(iv); got > 100e6*iv*(1+units.RelTol)+units.Eps {
				t.Fatalf("mode %v: output Bits(%v) = %v exceeds medium rate", mode, iv, got)
			}
		}
		// The output envelope dominates the input envelope shifted by zero
		// delay over long windows (all arrived traffic eventually leaves).
		if got, want := out.Bits(1.0), in.Bits(1.0)*0.95; got < want {
			t.Errorf("mode %v: output Bits(1s) = %v too small vs input %v", mode, got, in.Bits(1.0))
		}
	}
}

func TestExactOutputTighterAtVertices(t *testing.T) {
	// At I equal to a full busy interval the exact bound should be no looser
	// than the delay-based bound (both are valid upper bounds).
	in := mustPeriodic(t, 1e5, 0.010, 100e6)
	p := MACParams{Ring: testRing(), H: 2e-3}
	exact, err := AnalyzeMAC(in, p, Options{Output: OutputExact})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := AnalyzeMAC(in, p, Options{Output: OutputDelayBased})
	if err != nil {
		t.Fatal(err)
	}
	worse := 0
	total := 0
	for i := 1; i <= 100; i++ {
		iv := float64(i) * 2e-4
		total++
		if exact.Output.Bits(iv) > loose.Output.Bits(iv)*(1+1e-9) {
			worse++
		}
	}
	if worse > total/2 {
		t.Errorf("exact output looser than delay-based at %d/%d points", worse, total)
	}
}

func TestAnalyzeMACDualPeriodicSource(t *testing.T) {
	// The paper's workload: C1=150 kbit/10 ms, C2=30 kbit/1 ms, peak 100 Mb/s.
	in, err := traffic.NewDualPeriodic(150e3, 0.010, 30e3, 0.001, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeMAC(in, MACParams{Ring: testRing(), H: 2e-3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// rho·TTRT = 15 Mb/s·8 ms = 120 kbit < 200 kbit: stable, finite bound.
	if res.Delay <= 0 || math.IsInf(res.Delay, 0) {
		t.Errorf("Delay = %v, want finite positive", res.Delay)
	}
	// A worst-case FDDI MAC delay can never be below 2·TTRT − H (token may
	// just have left and must make a full rotation plus the vacant part).
	if res.Delay < 2*testRing().TTRT-2e-3-units.Eps {
		t.Errorf("Delay = %v below protocol floor %v", res.Delay, 2*testRing().TTRT-2e-3)
	}
	if res.BusyInterval <= 0 {
		t.Errorf("BusyInterval = %v, want positive", res.BusyInterval)
	}
	if res.BufferBits <= 0 {
		t.Errorf("BufferBits = %v, want positive", res.BufferBits)
	}
}
