package fddi

import (
	"testing"

	"fafnet/internal/des"
	"fafnet/internal/traffic"
)

func TestEnqueueAsyncValidation(t *testing.T) {
	sim := des.NewSimulator()
	r, err := NewRingSim(sim, testRing(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.EnqueueAsync(Frame{Bits: 1e4, Src: -1, Dst: 1}); err == nil {
		t.Error("bad source should be rejected")
	}
	if err := r.EnqueueAsync(Frame{Bits: 1e4, Src: 0, Dst: 7}); err == nil {
		t.Error("bad destination should be rejected")
	}
	if err := r.EnqueueAsync(Frame{Bits: 0, Src: 0, Dst: 1}); err == nil {
		t.Error("empty frame should be rejected")
	}
	if err := r.EnqueueAsync(Frame{Bits: MaxFrameBits + 1, Src: 0, Dst: 1}); err == nil {
		t.Error("over-size frame should be rejected")
	}
	if err := r.EnqueueAsync(Frame{Bits: 1e4, Src: 0, Dst: 1}); err != nil {
		t.Errorf("valid async frame rejected: %v", err)
	}
	if got := r.AsyncQueueLen(0); got != 1 {
		t.Errorf("AsyncQueueLen = %d, want 1", got)
	}
}

func TestAsyncTrafficFlowsWhenRingIdle(t *testing.T) {
	// With no synchronous load, async frames drain (the token is always
	// early).
	sim := des.NewSimulator()
	delivered := 0
	r, err := NewRingSim(sim, testRing(), 4, func(f DeliveredFrame) { delivered++ })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := r.EnqueueAsync(Frame{Bits: 3e4, Src: 1, Dst: 3}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	sim.Run(0.5)
	if delivered != 50 {
		t.Errorf("delivered %d async frames, want 50", delivered)
	}
}

// TestAsyncLoadCannotBreakSynchronousBound is the protocol's central
// promise: saturating the ring with asynchronous traffic must not push any
// synchronous frame past its Theorem 1 bound.
func TestAsyncLoadCannotBreakSynchronousBound(t *testing.T) {
	cfg := testRing()
	const (
		frameBits = 2e4
		period    = 2e-3
		h         = 1e-3
		simTime   = 2.0
	)
	in, err := traffic.NewPeriodic(frameBits, period, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeMAC(in, MACParams{Ring: cfg, H: h}, Options{})
	if err != nil {
		t.Fatal(err)
	}

	sim := des.NewSimulator()
	var worst float64
	delivered := 0
	asyncDelivered := 0
	ring, err := NewRingSim(sim, cfg, 4, func(f DeliveredFrame) {
		if f.ConnID == "sync" {
			delivered++
			if d := f.Delivered - f.Enqueued; d > worst {
				worst = d
			}
			return
		}
		asyncDelivered++
	})
	if err != nil {
		t.Fatal(err)
	}
	bound := res.Delay + ring.PropagationDelay(0, 2)
	if err := ring.SetAllocation(0, h); err != nil {
		t.Fatal(err)
	}

	var inject func()
	inject = func() {
		if sim.Now() > simTime-period {
			return
		}
		if err := ring.Enqueue(Frame{Bits: frameBits, ConnID: "sync", Src: 0, Dst: 2}); err != nil {
			t.Errorf("enqueue: %v", err)
		}
		// Flood every other station with async backlog.
		for s := 1; s < 4; s++ {
			for k := 0; k < 4; k++ {
				_ = ring.EnqueueAsync(Frame{Bits: MaxFrameBits, ConnID: "noise", Src: s, Dst: 0})
			}
		}
		if _, err := sim.After(period, inject); err != nil {
			t.Errorf("schedule: %v", err)
		}
	}
	if _, err := sim.After(0, inject); err != nil {
		t.Fatal(err)
	}
	if err := ring.Start(); err != nil {
		t.Fatal(err)
	}
	sim.Run(simTime + 1)

	if delivered < int(simTime/period)-2 {
		t.Fatalf("only %d synchronous frames delivered", delivered)
	}
	if asyncDelivered == 0 {
		t.Error("no async frames flowed at all (async path dead)")
	}
	if worst > bound {
		t.Errorf("async load pushed a synchronous frame to %v, beyond the bound %v", worst, bound)
	}
}

// TestAsyncStarvesUnderFullSynchronousLoad: when ΣH saturates the usable
// TTRT and every station transmits its full allocation, the token is never
// early enough for large async frames.
func TestAsyncStarvesUnderFullSynchronousLoad(t *testing.T) {
	cfg := testRing() // usable 7 ms of an 8 ms TTRT
	sim := des.NewSimulator()
	asyncDelivered := 0
	ring, err := NewRingSim(sim, cfg, 4, func(f DeliveredFrame) {
		if f.ConnID == "async" {
			asyncDelivered++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := ring.SetAllocation(i, 1.75e-3); err != nil {
			t.Fatal(err)
		}
	}
	// Saturate all synchronous queues and add async backlog at station 0.
	for i := 0; i < 4; i++ {
		for j := 0; j < 400; j++ {
			if err := ring.Enqueue(Frame{Bits: 1.75e5, ConnID: "sync", Src: i, Dst: (i + 2) % 4}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for j := 0; j < 20; j++ {
		if err := ring.EnqueueAsync(Frame{Bits: MaxFrameBits, ConnID: "async", Src: 0, Dst: 2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ring.Start(); err != nil {
		t.Fatal(err)
	}
	sim.Run(0.5)
	// The rotation runs at ~7 ms + walk against an 8 ms TTRT: the token is
	// early by under 1 ms, too little for a 0.36 ms... — large async frames
	// (0.36 ms each) trickle at most ~2 per rotation; with a full 36 kbit
	// frame needing 0.36 ms and ~1 ms earliness, some flow, but far fewer
	// than the backlog.
	if asyncDelivered > 20 {
		t.Errorf("async delivered %d, queue only held 20", asyncDelivered)
	}
	t.Logf("async frames delivered under saturation: %d", asyncDelivered)
}
