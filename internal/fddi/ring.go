// Package fddi implements the FDDI timed-token substrate of the paper:
// the synchronous-bandwidth accounting of Eq. 26–27, the FDDI_MAC server
// analysis of Theorem 1 (busy interval, buffer requirement, worst-case delay
// and output envelope), and a packet-level timed-token ring simulator used to
// validate the analytic bounds.
package fddi

import (
	"fmt"
	"math"
	"sort"
)

// Protocol constants (ANSI X3T9.5).
const (
	// DefaultBandwidthBps is the FDDI medium rate: 100 Mb/s.
	DefaultBandwidthBps = 100e6
	// MaxFrameBits is the maximum FDDI frame size (4500 octets).
	MaxFrameBits = 4500 * 8
	// DefaultTTRT is a typical target token rotation time for real-time
	// operation (8 ms).
	DefaultTTRT = 8e-3
	// DefaultOverhead is the protocol-dependent per-rotation overhead Δ
	// (token walk, preambles, claim margin) reserved out of the TTRT.
	DefaultOverhead = 1e-3
	// DefaultHopLatency is the per-hop propagation plus station latency
	// (seconds) used by the paper's evaluation rings.
	DefaultHopLatency = 5e-6
)

// RingConfig describes one FDDI ring.
type RingConfig struct {
	// BandwidthBps is the medium rate in bits per second.
	BandwidthBps float64
	// TTRT is the target token rotation time in seconds. The timed-token
	// protocol guarantees every station its synchronous allocation H once
	// per TTRT (and a worst-case token inter-arrival of 2·TTRT).
	TTRT float64
	// Overhead is the protocol-dependent overhead Δ (seconds per rotation);
	// the sum of all synchronous allocations may not exceed TTRT − Δ.
	Overhead float64
	// HopLatency is the per-hop propagation plus station latency used by the
	// Delay_Line server and the ring simulator.
	HopLatency float64
}

// DefaultRingConfig returns the configuration used throughout the paper's
// evaluation: a 100 Mb/s ring with an 8 ms TTRT.
func DefaultRingConfig() RingConfig {
	return RingConfig{
		BandwidthBps: DefaultBandwidthBps,
		TTRT:         DefaultTTRT,
		Overhead:     DefaultOverhead,
		HopLatency:   DefaultHopLatency,
	}
}

// Validate reports whether the configuration is physically meaningful.
func (c RingConfig) Validate() error {
	switch {
	case c.BandwidthBps <= 0:
		return fmt.Errorf("fddi: bandwidth %v must be positive", c.BandwidthBps)
	case c.TTRT <= 0:
		return fmt.Errorf("fddi: TTRT %v must be positive", c.TTRT)
	case c.Overhead < 0:
		return fmt.Errorf("fddi: overhead %v must be non-negative", c.Overhead)
	case c.Overhead >= c.TTRT: //lint:allow floatcmp exact validation bound: any Overhead strictly below TTRT is acceptable
		return fmt.Errorf("fddi: overhead %v leaves no usable TTRT (%v)", c.Overhead, c.TTRT)
	case c.HopLatency < 0:
		return fmt.Errorf("fddi: hop latency %v must be non-negative", c.HopLatency)
	}
	return nil
}

// UsableTTRT returns TTRT − Δ, the synchronous time divisible among stations.
func (c RingConfig) UsableTTRT() float64 { return c.TTRT - c.Overhead }

// Ring tracks the synchronous-bandwidth allocations on one FDDI ring. It
// implements the availability computation of Eq. 26–27: the bandwidth
// available to a new connection is TTRT − (Ω + Δ), where Ω is the total
// already allocated. Ring is not safe for concurrent use.
type Ring struct {
	cfg   RingConfig
	alloc map[string]float64 // connection id → H (seconds per rotation)
	// order keeps the allocation ids sorted. Ω is a float sum, and float
	// addition is not associative: summing the map in iteration order made
	// Available() — and with it every β-interpolated allocation downstream —
	// wobble by ULPs from call to call, which broke bit-exact trace replay.
	// All Ω summations walk this slice instead.
	order []string
}

// NewRing validates cfg and returns an empty ring.
func NewRing(cfg RingConfig) (*Ring, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Ring{cfg: cfg, alloc: make(map[string]float64)}, nil
}

// Config returns the ring configuration.
func (r *Ring) Config() RingConfig { return r.cfg }

// Allocated returns Ω: the total synchronous time currently allocated.
// The sum runs in sorted connection-id order so the result is bit-identical
// across calls and across runs holding the same allocations.
func (r *Ring) Allocated() float64 {
	var sum float64
	for _, id := range r.order {
		sum += r.alloc[id]
	}
	return sum
}

// Available returns H^max_avai = TTRT − (Ω + Δ) (Eq. 26–27), clamped at 0.
func (r *Ring) Available() float64 {
	return math.Max(0, r.cfg.UsableTTRT()-r.Allocated())
}

// Allocation returns the synchronous time held by the given connection and
// whether the connection holds any.
func (r *Ring) Allocation(connID string) (float64, bool) {
	h, ok := r.alloc[connID]
	return h, ok
}

// Connections returns the ids of all connections holding an allocation, in
// sorted order.
func (r *Ring) Connections() []string {
	ids := make([]string, len(r.order))
	copy(ids, r.order)
	return ids
}

// Allocate reserves h seconds of synchronous time per rotation for connID.
// It fails if the connection already holds an allocation or if the protocol
// constraint ΣH <= TTRT − Δ would be violated.
func (r *Ring) Allocate(connID string, h float64) error {
	if h <= 0 {
		return fmt.Errorf("fddi: allocation %v for %q must be positive", h, connID)
	}
	if _, ok := r.alloc[connID]; ok {
		return fmt.Errorf("fddi: connection %q already holds an allocation", connID)
	}
	const slack = 1e-12 // forgive float residue from β interpolation
	if h > r.Available()+slack {
		return fmt.Errorf("fddi: allocation %v for %q exceeds available %v", h, connID, r.Available())
	}
	r.alloc[connID] = h
	i := sort.SearchStrings(r.order, connID)
	r.order = append(r.order, "")
	copy(r.order[i+1:], r.order[i:])
	r.order[i] = connID
	return nil
}

// Release frees the allocation held by connID and reports whether one
// existed.
func (r *Ring) Release(connID string) bool {
	if _, ok := r.alloc[connID]; !ok {
		return false
	}
	delete(r.alloc, connID)
	i := sort.SearchStrings(r.order, connID)
	r.order = append(r.order[:i], r.order[i+1:]...)
	return true
}

// FrameBits returns the frame payload size F_S (bits) that a connection with
// synchronous allocation h uses on this ring: the paper sets F_S = H·BW,
// clamped to the FDDI maximum frame size.
func (c RingConfig) FrameBits(h float64) float64 {
	return math.Min(h*c.BandwidthBps, MaxFrameBits)
}
