package fddi

import (
	"errors"
	"fmt"

	"fafnet/internal/des"
	"fafnet/internal/units"
)

// Frame is one FDDI frame traversing the simulated ring.
type Frame struct {
	// Bits is the frame payload size.
	Bits float64
	// ConnID identifies the connection the frame belongs to.
	ConnID string
	// Src and Dst are station indices on the ring.
	Src, Dst int
	// Enqueued is the simulation time at which the frame entered the MAC
	// transmit queue.
	Enqueued float64
}

// DeliveredFrame reports a frame's arrival at its destination station.
type DeliveredFrame struct {
	Frame
	// Delivered is the simulation time at which the last bit reached Dst.
	Delivered float64
}

// RingSim is a packet-level simulator of the FDDI timed-token protocol
// restricted to synchronous traffic: the token circulates station to
// station; each visit lets a station transmit queued frames for up to its
// synchronous allocation H. It exists to validate the analytic bounds of
// Theorem 1: every delay it measures must be below the analysis' worst case.
//
// Following the paper's one-connection-per-station reduction, interface
// devices carrying several connections are modeled as one station per
// connection.
type RingSim struct {
	sim        *des.Simulator
	cfg        RingConfig
	stations   []simStation
	onDeliver  func(DeliveredFrame)
	started    bool
	tokenVisit int64 // statistics: number of token arrivals processed
}

type simStation struct {
	h     float64
	queue []Frame
	// async is the non-real-time transmit queue. Async frames may only be
	// sent while the token is ahead of schedule (the timed-token rule), so
	// they can never erode the synchronous guarantees.
	async []Frame
	// lastArrival is the previous token-arrival time at this station, for
	// the token-rotation-timer check.
	lastArrival float64
	hasArrival  bool
}

// NewRingSim creates a ring with numStations stations, all initially holding
// no synchronous allocation. onDeliver, if non-nil, is invoked when a frame
// fully arrives at its destination.
func NewRingSim(sim *des.Simulator, cfg RingConfig, numStations int, onDeliver func(DeliveredFrame)) (*RingSim, error) {
	if sim == nil {
		return nil, errors.New("fddi: RingSim requires a simulator")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numStations < 2 {
		return nil, fmt.Errorf("fddi: ring needs at least 2 stations, got %d", numStations)
	}
	return &RingSim{
		sim:       sim,
		cfg:       cfg,
		stations:  make([]simStation, numStations),
		onDeliver: onDeliver,
	}, nil
}

// NumStations returns the number of stations on the ring.
func (r *RingSim) NumStations() int { return len(r.stations) }

// SetAllocation assigns station its synchronous allocation h (seconds per
// token visit). The protocol constraint ΣH <= TTRT − Δ is enforced.
func (r *RingSim) SetAllocation(station int, h float64) error {
	if station < 0 || station >= len(r.stations) {
		return fmt.Errorf("fddi: station %d out of range [0,%d)", station, len(r.stations))
	}
	if h < 0 {
		return fmt.Errorf("fddi: allocation %v must be non-negative", h)
	}
	var sum float64
	for i, st := range r.stations {
		if i != station {
			sum += st.h
		}
	}
	if sum+h > r.cfg.UsableTTRT()*(1+units.RelTol) {
		return fmt.Errorf("fddi: total allocation %v would exceed usable TTRT %v", sum+h, r.cfg.UsableTTRT())
	}
	r.stations[station].h = h
	return nil
}

// Enqueue places a frame in the source station's MAC transmit queue,
// stamping Enqueued with the current time. The frame must fit within the
// station's allocation, or it could never be transmitted.
func (r *RingSim) Enqueue(f Frame) error {
	f.Enqueued = r.sim.Now()
	return r.EnqueueStamped(f)
}

// EnqueueStamped is Enqueue but preserves the caller's Enqueued timestamp,
// so a multi-segment harness can measure delays from the original emission
// instant.
func (r *RingSim) EnqueueStamped(f Frame) error {
	if f.Src < 0 || f.Src >= len(r.stations) {
		return fmt.Errorf("fddi: source station %d out of range", f.Src)
	}
	if f.Dst < 0 || f.Dst >= len(r.stations) {
		return fmt.Errorf("fddi: destination station %d out of range", f.Dst)
	}
	if f.Bits <= 0 {
		return fmt.Errorf("fddi: frame size %v must be positive", f.Bits)
	}
	st := &r.stations[f.Src]
	if tx := f.Bits / r.cfg.BandwidthBps; tx > st.h*(1+units.RelTol) {
		return fmt.Errorf("fddi: frame needs %v s but station %d allocation is only %v s", tx, f.Src, st.h)
	}
	st.queue = append(st.queue, f)
	return nil
}

// QueueLen returns the number of synchronous frames waiting at a station.
func (r *RingSim) QueueLen(station int) int { return len(r.stations[station].queue) }

// EnqueueAsync places a frame in the station's asynchronous (non-real-time)
// queue. Async frames are transmitted only when the token arrives ahead of
// schedule, per the timed-token protocol: the synchronous guarantees of
// every station hold regardless of async load.
func (r *RingSim) EnqueueAsync(f Frame) error {
	if f.Src < 0 || f.Src >= len(r.stations) {
		return fmt.Errorf("fddi: source station %d out of range", f.Src)
	}
	if f.Dst < 0 || f.Dst >= len(r.stations) {
		return fmt.Errorf("fddi: destination station %d out of range", f.Dst)
	}
	if f.Bits <= 0 {
		return fmt.Errorf("fddi: frame size %v must be positive", f.Bits)
	}
	if f.Bits > MaxFrameBits {
		return fmt.Errorf("fddi: async frame of %v bits exceeds the FDDI maximum %v", f.Bits, MaxFrameBits)
	}
	f.Enqueued = r.sim.Now()
	st := &r.stations[f.Src]
	st.async = append(st.async, f)
	return nil
}

// AsyncQueueLen returns the number of asynchronous frames waiting at a
// station.
func (r *RingSim) AsyncQueueLen(station int) int { return len(r.stations[station].async) }

// TokenVisits returns the number of token arrivals processed so far.
func (r *RingSim) TokenVisits() int64 { return r.tokenVisit }

// Start releases the token at station 0. It may be called once.
func (r *RingSim) Start() error {
	if r.started {
		return errors.New("fddi: ring already started")
	}
	r.started = true
	if _, err := r.sim.After(0, func() { r.tokenArrive(0) }); err != nil {
		return fmt.Errorf("fddi: scheduling initial token: %w", err)
	}
	return nil
}

// tokenArrive services station i and forwards the token: synchronous frames
// up to the station's allocation H, then asynchronous frames only for as
// long as the token-rotation timer shows the token ahead of schedule.
func (r *RingSim) tokenArrive(i int) {
	r.tokenVisit++
	st := &r.stations[i]
	now := r.sim.Now()
	cursor := now
	budget := st.h
	for len(st.queue) > 0 {
		f := st.queue[0]
		tx := f.Bits / r.cfg.BandwidthBps
		if tx > budget+units.Eps {
			break // frame does not fit in the remaining synchronous time
		}
		budget -= tx
		cursor += tx
		st.queue = st.queue[1:]
		r.scheduleDelivery(f, cursor)
	}

	// Timed-token rule for the asynchronous class: transmission is allowed
	// while the measured rotation (time since the token last left here)
	// stays under the TTRT.
	asyncBudget := 0.0
	if st.hasArrival {
		if early := r.cfg.TTRT - (now - st.lastArrival); early > 0 {
			asyncBudget = early
		}
	}
	for len(st.async) > 0 {
		f := st.async[0]
		tx := f.Bits / r.cfg.BandwidthBps
		if tx > asyncBudget+units.Eps {
			break
		}
		asyncBudget -= tx
		cursor += tx
		st.async = st.async[1:]
		r.scheduleDelivery(f, cursor)
	}
	st.lastArrival = now
	st.hasArrival = true

	next := (i + 1) % len(r.stations)
	if _, err := r.sim.Schedule(cursor+r.cfg.HopLatency, func() { r.tokenArrive(next) }); err != nil {
		// Unreachable: cursor >= now and the hop latency is non-negative.
		panic(fmt.Sprintf("fddi: token scheduling failed: %v", err))
	}
}

// scheduleDelivery delivers f's last bit after it propagates from Src to Dst.
func (r *RingSim) scheduleDelivery(f Frame, endTx float64) {
	hops := f.Dst - f.Src
	if hops < 0 {
		hops += len(r.stations)
	}
	at := endTx + float64(hops)*r.cfg.HopLatency
	if _, err := r.sim.Schedule(at, func() {
		if r.onDeliver != nil {
			r.onDeliver(DeliveredFrame{Frame: f, Delivered: at})
		}
	}); err != nil {
		panic(fmt.Sprintf("fddi: delivery scheduling failed: %v", err))
	}
}

// PropagationDelay returns the Delay_Line bound (Eq. 14): the fixed time for
// a bit to propagate from station src to station dst around the ring.
func (r *RingSim) PropagationDelay(src, dst int) float64 {
	hops := dst - src
	if hops < 0 {
		hops += len(r.stations)
	}
	return float64(hops) * r.cfg.HopLatency
}
