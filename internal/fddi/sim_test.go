package fddi

import (
	"math"
	"testing"

	"fafnet/internal/des"
	"fafnet/internal/traffic"
	"fafnet/internal/units"
)

func TestNewRingSimValidation(t *testing.T) {
	sim := des.NewSimulator()
	if _, err := NewRingSim(nil, testRing(), 4, nil); err == nil {
		t.Error("nil simulator should be rejected")
	}
	if _, err := NewRingSim(sim, testRing(), 1, nil); err == nil {
		t.Error("single-station ring should be rejected")
	}
	bad := testRing()
	bad.TTRT = -1
	if _, err := NewRingSim(sim, bad, 4, nil); err == nil {
		t.Error("invalid config should be rejected")
	}
}

func TestSetAllocationConstraint(t *testing.T) {
	sim := des.NewSimulator()
	r, err := NewRingSim(sim, testRing(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetAllocation(0, 4e-3); err != nil {
		t.Fatal(err)
	}
	if err := r.SetAllocation(1, 3e-3); err != nil {
		t.Fatal(err)
	}
	// Usable TTRT is 7 ms; a third allocation of 1 ms must fail.
	if err := r.SetAllocation(2, 1e-3); err == nil {
		t.Error("allocation beyond usable TTRT should fail")
	}
	// Shrinking an existing allocation is allowed.
	if err := r.SetAllocation(0, 1e-3); err != nil {
		t.Errorf("shrinking failed: %v", err)
	}
	if err := r.SetAllocation(2, 1e-3); err != nil {
		t.Errorf("allocation after shrink failed: %v", err)
	}
	if err := r.SetAllocation(5, 1e-3); err == nil {
		t.Error("out-of-range station should fail")
	}
	if err := r.SetAllocation(0, -1); err == nil {
		t.Error("negative allocation should fail")
	}
}

func TestEnqueueValidation(t *testing.T) {
	sim := des.NewSimulator()
	r, err := NewRingSim(sim, testRing(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetAllocation(0, 1e-3); err != nil {
		t.Fatal(err)
	}
	if err := r.Enqueue(Frame{Bits: 1e4, Src: -1, Dst: 1}); err == nil {
		t.Error("bad source should be rejected")
	}
	if err := r.Enqueue(Frame{Bits: 1e4, Src: 0, Dst: 9}); err == nil {
		t.Error("bad destination should be rejected")
	}
	if err := r.Enqueue(Frame{Bits: 0, Src: 0, Dst: 1}); err == nil {
		t.Error("empty frame should be rejected")
	}
	// Frame that cannot fit the allocation (needs 2 ms at 100 Mb/s).
	if err := r.Enqueue(Frame{Bits: 2e5, Src: 0, Dst: 1}); err == nil {
		t.Error("oversized frame should be rejected")
	}
	if err := r.Enqueue(Frame{Bits: 5e4, Src: 0, Dst: 1}); err != nil {
		t.Errorf("valid frame rejected: %v", err)
	}
	if got := r.QueueLen(0); got != 1 {
		t.Errorf("QueueLen = %d, want 1", got)
	}
}

func TestTokenRotationRespectsTTRT(t *testing.T) {
	// With ΣH <= TTRT − Δ and Δ covering the walk time, every token
	// rotation completes within the TTRT.
	sim := des.NewSimulator()
	cfg := testRing()
	r, err := NewRingSim(sim, cfg, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := r.SetAllocation(i, 1.5e-3); err != nil {
			t.Fatal(err)
		}
	}
	// Saturate every station so each visit uses its full allocation.
	for i := 0; i < 4; i++ {
		for j := 0; j < 200; j++ {
			if err := r.Enqueue(Frame{Bits: 1.5e5, Src: i, Dst: (i + 1) % 4}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	const simTime = 0.2 // seconds of simulated ring time
	sim.Run(simTime)
	visits := r.TokenVisits()
	if visits == 0 {
		t.Fatal("token never moved")
	}
	// Rotations in 0.2 s: each full rotation serves 4 stations and takes at
	// most ΣH + walk = 6 ms + 20 µs < TTRT.
	rounds := float64(visits) / 4
	minRounds := simTime/cfg.TTRT - 1
	if rounds < minRounds {
		t.Errorf("only %.1f rotations in 0.2 s; protocol guarantees at least %.1f", rounds, minRounds)
	}
}

func TestStartTwiceFails(t *testing.T) {
	sim := des.NewSimulator()
	r, err := NewRingSim(sim, testRing(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err == nil {
		t.Error("second Start should fail")
	}
}

func TestPropagationDelay(t *testing.T) {
	sim := des.NewSimulator()
	cfg := testRing()
	r, err := NewRingSim(sim, cfg, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.PropagationDelay(1, 3); !units.AlmostEq(got, 2*cfg.HopLatency) {
		t.Errorf("PropagationDelay(1,3) = %v, want %v", got, 2*cfg.HopLatency)
	}
	// Wrap-around.
	if got := r.PropagationDelay(3, 1); !units.AlmostEq(got, 3*cfg.HopLatency) {
		t.Errorf("PropagationDelay(3,1) = %v, want %v", got, 3*cfg.HopLatency)
	}
}

// TestSimDelaysWithinAnalyticBound is the E3-style validation at ring scope:
// every frame delay measured by the packet-level simulator must be below the
// Theorem 1 worst case plus propagation.
func TestSimDelaysWithinAnalyticBound(t *testing.T) {
	cfg := testRing()
	const (
		frameBits = 2e4  // 20 kbit frames
		period    = 2e-3 // one frame every 2 ms → ρ = 10 Mb/s
		h         = 1e-3 // service 100 kbit per rotation
		simTime   = 2.0
	)
	// Analysis: instantaneous-burst periodic source (peak >> medium rate
	// since the application hands the MAC the whole frame at once).
	in, err := traffic.NewPeriodic(frameBits, period, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeMAC(in, MACParams{Ring: cfg, H: h}, Options{})
	if err != nil {
		t.Fatal(err)
	}

	sim := des.NewSimulator()
	var worst float64
	var delivered int
	ring, err := NewRingSim(sim, cfg, 4, func(f DeliveredFrame) {
		if f.ConnID != "probe" {
			return
		}
		delivered++
		if d := f.Delivered - f.Enqueued; d > worst {
			worst = d
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	bound := res.Delay + ring.PropagationDelay(0, 2)
	if err := ring.SetAllocation(0, h); err != nil {
		t.Fatal(err)
	}
	// Competing stations consume their full allocations every visit (their
	// load is exactly their service: 2 ms · 100 Mb/s per 8 ms rotation).
	if err := ring.SetAllocation(1, 2e-3); err != nil {
		t.Fatal(err)
	}
	if err := ring.SetAllocation(3, 2e-3); err != nil {
		t.Fatal(err)
	}

	var inject func()
	inject = func() {
		if sim.Now() > simTime-period {
			return
		}
		if err := ring.Enqueue(Frame{Bits: frameBits, ConnID: "probe", Src: 0, Dst: 2}); err != nil {
			t.Errorf("enqueue: %v", err)
		}
		if _, err := sim.After(period, inject); err != nil {
			t.Errorf("schedule: %v", err)
		}
	}
	// Cross traffic at exactly the competitors' sustainable rate.
	var cross func()
	cross = func() {
		if sim.Now() > simTime-cfg.TTRT {
			return
		}
		_ = ring.Enqueue(Frame{Bits: 1e5, ConnID: "x1", Src: 1, Dst: 0})
		_ = ring.Enqueue(Frame{Bits: 1e5, ConnID: "x1", Src: 1, Dst: 0})
		_ = ring.Enqueue(Frame{Bits: 1e5, ConnID: "x3", Src: 3, Dst: 2})
		_ = ring.Enqueue(Frame{Bits: 1e5, ConnID: "x3", Src: 3, Dst: 2})
		if _, err := sim.After(cfg.TTRT, cross); err != nil {
			t.Errorf("schedule: %v", err)
		}
	}
	if _, err := sim.After(0, inject); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.After(0, cross); err != nil {
		t.Fatal(err)
	}
	if err := ring.Start(); err != nil {
		t.Fatal(err)
	}
	sim.Run(simTime + 1)

	if delivered < int(simTime/period)-2 {
		t.Fatalf("only %d frames delivered", delivered)
	}
	if worst <= 0 {
		t.Fatal("no delay measured")
	}
	if worst > bound {
		t.Errorf("measured worst delay %v exceeds analytic bound %v", worst, bound)
	}
	// The bound should not be absurdly loose either (within ~20x here).
	if worst < bound/20 {
		t.Logf("note: bound %v is %.1fx the observed worst %v", bound, bound/worst, worst)
	}
	_ = math.Inf // keep math imported if assertions change
}
