package fddi

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"fafnet/internal/units"
)

func TestRingConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*RingConfig)
		wantErr bool
	}{
		{"default is valid", func(*RingConfig) {}, false},
		{"zero bandwidth", func(c *RingConfig) { c.BandwidthBps = 0 }, true},
		{"zero TTRT", func(c *RingConfig) { c.TTRT = 0 }, true},
		{"negative overhead", func(c *RingConfig) { c.Overhead = -1 }, true},
		{"overhead swallows TTRT", func(c *RingConfig) { c.Overhead = c.TTRT }, true},
		{"negative hop latency", func(c *RingConfig) { c.HopLatency = -1e-6 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultRingConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestRingAllocationAccounting(t *testing.T) {
	r, err := NewRing(DefaultRingConfig())
	if err != nil {
		t.Fatal(err)
	}
	usable := DefaultTTRT - DefaultOverhead // 7 ms
	if got := r.Available(); !units.AlmostEq(got, usable) {
		t.Fatalf("empty ring Available = %v, want %v", got, usable)
	}

	if err := r.Allocate("c1", 2e-3); err != nil {
		t.Fatal(err)
	}
	if err := r.Allocate("c2", 3e-3); err != nil {
		t.Fatal(err)
	}
	if got := r.Allocated(); !units.AlmostEq(got, 5e-3) {
		t.Errorf("Allocated = %v, want 5e-3", got)
	}
	if got := r.Available(); !units.AlmostEq(got, usable-5e-3) {
		t.Errorf("Available = %v, want %v (Eq. 26)", got, usable-5e-3)
	}

	// Exceeding TTRT − Δ must fail.
	if err := r.Allocate("c3", 3e-3); err == nil {
		t.Error("allocation beyond TTRT − Δ should fail")
	}
	// Duplicate ids must fail.
	if err := r.Allocate("c1", 1e-4); err == nil {
		t.Error("duplicate allocation should fail")
	}
	// Non-positive must fail.
	if err := r.Allocate("c4", 0); err == nil {
		t.Error("zero allocation should fail")
	}

	if h, ok := r.Allocation("c2"); !ok || !units.AlmostEq(h, 3e-3) {
		t.Errorf("Allocation(c2) = %v, %v", h, ok)
	}
	ids := r.Connections()
	if len(ids) != 2 || ids[0] != "c1" || ids[1] != "c2" {
		t.Errorf("Connections = %v", ids)
	}

	if !r.Release("c1") {
		t.Error("Release(c1) should succeed")
	}
	if r.Release("c1") {
		t.Error("double Release should report false")
	}
	if got := r.Available(); !units.AlmostEq(got, usable-3e-3) {
		t.Errorf("Available after release = %v, want %v", got, usable-3e-3)
	}
	// The freed bandwidth is usable again.
	if err := r.Allocate("c3", 3.5e-3); err != nil {
		t.Errorf("allocation after release failed: %v", err)
	}
}

func TestFrameBits(t *testing.T) {
	cfg := DefaultRingConfig()
	// Small allocation: frame size = H·BW.
	if got := cfg.FrameBits(1e-4); !units.AlmostEq(got, 1e4) {
		t.Errorf("FrameBits(0.1ms) = %v, want 1e4", got)
	}
	// Large allocation clamps at the FDDI maximum frame.
	if got := cfg.FrameBits(5e-3); got != MaxFrameBits {
		t.Errorf("FrameBits(5ms) = %v, want %v", got, MaxFrameBits)
	}
}

func TestUsableTTRT(t *testing.T) {
	cfg := RingConfig{BandwidthBps: 1, TTRT: 0.01, Overhead: 0.002}
	if got := cfg.UsableTTRT(); !units.AlmostEq(got, 0.008) {
		t.Errorf("UsableTTRT = %v, want 0.008", got)
	}
}

// TestAllocatedDeterministic pins the Ω summation order: with allocations
// whose float sum is order-sensitive, Allocated must return the same bits on
// every call. The pre-fix implementation summed the allocation map in map
// iteration order, which made Eq. 26–27 availability — and every allocation
// interpolated from it — wobble by ULPs between identical calls.
func TestAllocatedDeterministic(t *testing.T) {
	r, err := NewRing(DefaultRingConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Values with spread exponents so partial-sum rounding depends on order.
	hs := []float64{1e-3, 1e-9, 3e-4, 7e-10, 2.5e-5, 1e-8, 4e-6, 9e-11}
	for i, h := range hs {
		if err := r.Allocate(fmt.Sprintf("c%d", i), h); err != nil {
			t.Fatal(err)
		}
	}
	want := math.Float64bits(r.Allocated())
	for i := 0; i < 200; i++ {
		if got := math.Float64bits(r.Allocated()); got != want {
			t.Fatalf("call %d: Allocated bits %x != %x", i, got, want)
		}
	}
	// The sum must equal the sorted-id-order sum exactly.
	ids := r.Connections()
	if !sort.StringsAreSorted(ids) {
		t.Fatal("Connections not sorted")
	}
	var ref float64
	for _, id := range ids {
		h, ok := r.Allocation(id)
		if !ok {
			t.Fatalf("missing allocation %q", id)
		}
		ref += h
	}
	if math.Float64bits(ref) != want {
		t.Fatalf("Allocated %x != sorted-order reference %x", want, math.Float64bits(ref))
	}
	// Release keeps the ledger consistent.
	if !r.Release("c3") {
		t.Fatal("release failed")
	}
	if got := len(r.Connections()); got != len(hs)-1 {
		t.Fatalf("after release: %d ids", got)
	}
	for i := 0; i < 50; i++ {
		if got := r.Allocated(); math.Float64bits(got) != math.Float64bits(r.Allocated()) {
			t.Fatal("Allocated unstable after release")
		}
	}
}
