package fddi

import "fafnet/internal/obs"

// Metric handles for the Theorem 1 analysis. Counters only: AnalyzeMAC runs
// inside CAC probes at very high rates, so per-call spans would dominate
// the instrumentation budget, while atomic increments are free against a
// grid walk.
var (
	mMACAnalyses = obs.Default.Counter("fafnet_fddi_mac_analyses_total",
		"Theorem 1 MAC analyses run (cache misses reach here; hits do not).")
	mMACInfeasible = obs.Default.Counter("fafnet_fddi_mac_infeasible_total",
		"MAC analyses that found no finite delay bound (overload, buffer overflow, or no convergence).")
	mMACEnvelopeEvals = obs.Default.Counter("fafnet_fddi_mac_envelope_evals_total",
		"Input-envelope evaluations by the Theorem 1 busy-interval and extremum searches (the dominant cost driver).")
)
