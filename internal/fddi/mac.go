package fddi

import (
	"errors"
	"fmt"
	"math"

	"fafnet/internal/traffic"
	"fafnet/internal/units"
)

// Analysis failure modes. Both mean the connection has no finite delay bound
// under the probed allocation, so a CAC must treat the allocation as
// infeasible.
var (
	// ErrOverload indicates the long-term arrival rate exceeds the service
	// the synchronous allocation provides (ρ·TTRT > H·BW): the MAC backlog
	// grows without bound.
	ErrOverload = errors.New("fddi: allocation cannot sustain the long-term rate")
	// ErrBufferOverflow indicates the worst-case backlog F exceeds the MAC
	// buffer, so packets may be lost (Theorem 1 assigns an infinite delay).
	ErrBufferOverflow = errors.New("fddi: worst-case backlog exceeds the MAC buffer")
	// ErrNoConvergence indicates the busy-interval search did not terminate
	// within the configured bound; the allocation is too close to the
	// stability limit to analyze.
	ErrNoConvergence = errors.New("fddi: busy-interval search did not converge")
)

// MACParams parameterizes the FDDI_MAC server of Theorem 1 for one
// connection.
type MACParams struct {
	// Ring is the configuration of the ring the station sits on.
	Ring RingConfig
	// H is the synchronous allocation (seconds per token rotation).
	H float64
	// BufferBits is the MAC transmit buffer size S; 0 means unlimited.
	BufferBits float64
}

// OutputBound selects how the output envelope of an analyzed server is
// represented.
type OutputBound int

const (
	// OutputDelayBased uses the classical work-conserving bound
	// A'(I) = min(BW·I, A(I + d^wc)): cheap, evaluation stays lazy.
	OutputDelayBased OutputBound = iota
	// OutputExact materializes the paper's Υ(I) (Theorem 1, Eq. 12) on a
	// grid: tighter, but costs a two-dimensional extremum search.
	OutputExact
)

// Options tunes the numeric extremum searches of the analysis. The zero
// value selects the defaults.
type Options struct {
	// TGridPoints is the uniform fallback resolution of the search grid over
	// the busy interval (default 160).
	TGridPoints int
	// OutGridPoints is the resolution of the materialized output envelope
	// when Output == OutputExact (default 160).
	OutGridPoints int
	// MaxBusyRotations bounds the busy-interval search in units of TTRT
	// (default 4096).
	MaxBusyRotations int
	// Output selects the output-envelope representation.
	Output OutputBound
	// OutputHorizon is the materialization horizon for OutputExact; 0 means
	// max(2·B, 8·TTRT).
	OutputHorizon float64
}

func (o Options) withDefaults() Options {
	if o.TGridPoints <= 0 {
		o.TGridPoints = 160
	}
	if o.OutGridPoints <= 0 {
		o.OutGridPoints = 160
	}
	if o.MaxBusyRotations <= 0 {
		o.MaxBusyRotations = 4096
	}
	return o
}

// MACResult is the outcome of Theorem 1 for one connection at one FDDI MAC.
type MACResult struct {
	// BusyInterval is B, the maximum length of a busy interval (seconds).
	BusyInterval float64
	// BufferBits is F, the maximum backlog the connection accumulates.
	BufferBits float64
	// Delay is χ, the worst-case queueing+transmission delay at the MAC.
	Delay float64
	// Output is the envelope of the connection's traffic as it leaves the
	// MAC (Eq. 12).
	Output traffic.Descriptor
}

// Avail returns avail(t): the minimum service (bits) the timed-token
// protocol guarantees the station within any interval of length t that
// starts when a backlog forms (Theorem 1):
//
//	avail(t) = max(0, (⌊t/TTRT⌋ − 1)·H·BW)
//
// The "−1" accounts for the token being up to a full rotation away.
//
//fafvet:hotpath
func (p MACParams) Avail(t float64) float64 {
	if t <= 0 {
		return 0
	}
	k := math.Floor(t / p.Ring.TTRT)
	return max(0, (k-1)*p.H*p.Ring.BandwidthBps)
}

// ServiceBitsPerRotation returns H·BW.
func (p MACParams) ServiceBitsPerRotation() float64 { return p.H * p.Ring.BandwidthBps }

func (p MACParams) validate() error {
	if err := p.Ring.Validate(); err != nil {
		return err
	}
	if p.H <= 0 {
		return fmt.Errorf("fddi: synchronous allocation H=%v must be positive", p.H)
	}
	if p.BufferBits < 0 {
		return fmt.Errorf("fddi: buffer size %v must be non-negative", p.BufferBits)
	}
	return nil
}

// AnalyzeMAC applies Theorem 1 to a connection with input envelope in and
// MAC parameters p: it returns the busy interval B (Eq. 9), the worst-case
// backlog F (Eq. 10), the worst-case delay χ (Eq. 11), and the output
// envelope (Eq. 12). A non-nil error means no finite delay bound exists for
// this allocation (ErrOverload, ErrBufferOverflow, or ErrNoConvergence).
func AnalyzeMAC(in traffic.Descriptor, p MACParams, opts Options) (MACResult, error) {
	if in == nil {
		return MACResult{}, errors.New("fddi: AnalyzeMAC requires an input descriptor")
	}
	if err := p.validate(); err != nil {
		return MACResult{}, err
	}
	opts = opts.withDefaults()
	mMACAnalyses.Inc()
	envelopeEvals := 0
	defer func() { mMACEnvelopeEvals.Add(uint64(envelopeEvals)) }()

	svc := p.ServiceBitsPerRotation()
	ttrt := p.Ring.TTRT
	// Stability: the allocation must serve the long-term rate with margin,
	// or the busy interval (and hence the delay) is unbounded.
	if in.LongTermRate()*ttrt >= svc*(1-units.RelTol) {
		mMACInfeasible.Inc()
		return MACResult{}, fmt.Errorf("%w: rho=%v bps, H·BW/TTRT=%v bps", ErrOverload, in.LongTermRate(), svc/ttrt)
	}

	busy, busyEvals, converged := busyInterval(in, svc, ttrt, opts.MaxBusyRotations)
	envelopeEvals += busyEvals
	if !converged {
		mMACInfeasible.Inc()
		return MACResult{}, fmt.Errorf("%w: no busy-interval end within %d rotations", ErrNoConvergence, opts.MaxBusyRotations)
	}

	// The extremum scans below evaluate the envelope across the whole busy
	// interval; a lowered input materializes its breakpoint array out to
	// that depth once, so every grid evaluation is an array lookup instead
	// of a chain walk. Value-preserving by the HorizonEnsurer contract.
	if he, ok := in.(traffic.HorizonEnsurer); ok {
		he.EnsureHorizon(busy)
	}

	// Candidate extremum points: the input envelope's own vertices plus the
	// avail steps at multiples of TTRT, each bracketed.
	grid := traffic.Grid(in, busy, opts.TGridPoints)
	// The t→0+ limit matters: a burst at the very start of the busy interval
	// waits the full worst-case token latency.
	grid = traffic.MergeGrids(busy, grid, multiplesOf(ttrt, busy), []float64{traffic.GridNudge})

	// Worst-case backlog F (Eq. 10) and worst-case delay χ (Eq. 11), scanned
	// by the annotated macScan methods; all allocation happens here, before
	// the scans start.
	scan := macScan{
		in: in, p: p, svc: svc, ttrt: ttrt,
		grid: grid,
		vals: make([]float64, len(grid)),
		have: make([]bool, len(grid)),
	}
	backlog := scan.maxBacklog()
	delay := scan.maxDelay()
	envelopeEvals += scan.evals
	if p.BufferBits > 0 && backlog > p.BufferBits*(1+units.RelTol) {
		mMACInfeasible.Inc()
		return MACResult{}, fmt.Errorf("%w: F=%v bits, S=%v bits", ErrBufferOverflow, backlog, p.BufferBits)
	}

	out, err := outputEnvelope(in, p, opts, busy, delay)
	if err != nil {
		return MACResult{}, err
	}
	return MACResult{BusyInterval: busy, BufferBits: backlog, Delay: delay, Output: out}, nil
}

// outputEnvelope builds Γ'(I) = min(BW, Υ(I)) per the selected bound.
func outputEnvelope(in traffic.Descriptor, p MACParams, opts Options, busy, delay float64) (traffic.Descriptor, error) {
	bw := p.Ring.BandwidthBps
	if opts.Output == OutputDelayBased {
		out, err := traffic.NewDelayed(in, delay, bw)
		if err != nil {
			return nil, fmt.Errorf("fddi: building output envelope: %w", err)
		}
		return out, nil
	}

	// Exact Υ(I) = max_{0<=t<=B} (A(t+I) − avail(t))/I, materialized.
	horizon := opts.OutputHorizon
	if horizon <= 0 {
		horizon = math.Max(2*busy, 8*p.Ring.TTRT)
	}
	tGrid := traffic.MergeGrids(busy,
		traffic.Grid(in, busy, opts.TGridPoints),
		multiplesOf(p.Ring.TTRT, busy))
	tGrid = append([]float64{0}, tGrid...)
	iGrid := traffic.Grid(in, horizon, opts.OutGridPoints)
	bits := make([]float64, len(iGrid))
	for i, iv := range iGrid {
		best := 0.0
		for _, t := range tGrid {
			if v := in.Bits(t+iv) - p.Avail(t); v > best {
				best = v
			}
		}
		bits[i] = math.Min(best, bw*iv)
	}
	// Enforce monotonicity (numeric jitter between adjacent I points).
	for i := 1; i < len(bits); i++ {
		if bits[i] < bits[i-1] {
			bits[i] = bits[i-1]
		}
	}
	sampled, err := traffic.NewSampled(iGrid, bits, math.Min(in.LongTermRate(), bw))
	if err != nil {
		return nil, fmt.Errorf("fddi: materializing exact output envelope: %w", err)
	}
	// Step interpolation between samples may exceed BW·I for I below a grid
	// point; the cap restores Γ' = min(BW, Υ) everywhere.
	out, err := traffic.NewRateCapped(sampled, bw)
	if err != nil {
		return nil, fmt.Errorf("fddi: capping exact output envelope: %w", err)
	}
	return out, nil
}

// multiplesOf returns k·step for k = 1.. while <= limit, each bracketed.
func multiplesOf(step, limit float64) []float64 {
	pts := make([]float64, 0, 3*(int(limit/step)+2))
	for t := step; t <= limit+units.Eps; t += step {
		pts = append(pts, t-traffic.GridNudge, t, t+traffic.GridNudge)
	}
	return pts
}
