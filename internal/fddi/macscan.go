package fddi

import (
	"math"

	"fafnet/internal/traffic"
	"fafnet/internal/units"
)

// busyInterval runs the Eq. 9 rotation scan: avail is constant between
// multiples of TTRT and A is nondecreasing, so the condition
// A(t) <= avail(t) first becomes true at a multiple of TTRT. Monotonicity
// also licenses skipping ahead: after observing a = A(k·TTRT), no k' with
// (k'−1)·svc + Eps < a can be the crossing (its demand is at least a), so
// the next candidate is the first rotation whose service catches up with
// the demand already seen. The jump target uses Floor (undershooting by at
// most one rotation) rather than Ceil so float rounding can never overshoot
// a true crossing; the result is identical to the rotation-by-rotation
// scan. ok is false when no crossing exists within maxRot rotations; the
// caller owns the error formatting, keeping this scan on the annotated
// hot path. evals reports the number of envelope evaluations performed —
// returned by value rather than accumulated through a pointer so the
// caller's counter is not forced onto the heap.
//
//fafvet:hotpath
func busyInterval(in traffic.Descriptor, svc, ttrt float64, maxRot int) (busy float64, evals int, ok bool) {
	for k := 1; ; {
		if k > maxRot {
			return 0, evals, false
		}
		t := float64(k) * ttrt
		evals++
		a := in.Bits(t)
		if a <= float64(k-1)*svc+units.Eps {
			return t, evals, true
		}
		if next := 1 + int(math.Floor((a-units.Eps)/svc)); next > k {
			k = next
		} else {
			k++
		}
	}
}

// macScan is the evaluation state of Theorem 1's extremum scans over one
// candidate grid: worst-case backlog F (Eq. 10) and worst-case delay χ
// (Eq. 11). The scans previously captured their memo tables in closures;
// they are methods on this struct instead so the whole scan phase sits
// under the hotpath analyzer — a function literal in an annotated region
// would itself be an allocation. AnalyzeMAC allocates the struct and its
// slices before the scans start.
//
// A is nondecreasing (the Descriptor contract), which licenses taking both
// maxima over far fewer than all grid points — with results identical to
// the full scan:
//
//   - avail(t) is constant wherever ⌊t/TTRT⌋ is, so over each maximal
//     segment of grid points sharing that value the backlog candidate
//     A(t) − avail(t) is maximized at the segment's last point;
//   - m(t) is a nondecreasing step function, so the delay candidate
//     m·TTRT − t is maximized at the first point of each m-run, and the
//     run boundaries are found by binary splitting, evaluating A at
//     O(runs·log |grid|) points instead of all of them.
type macScan struct {
	in        traffic.Descriptor
	p         MACParams
	svc, ttrt float64
	grid      []float64
	vals      []float64
	have      []bool
	evals     int
	delay     float64
}

// eval returns A(grid[i]), memoized: the binary splitting of maxDelay
// revisits segment endpoints, and the backlog scan shares points with it.
func (s *macScan) eval(i int) float64 {
	if !s.have[i] {
		s.evals++
		s.vals[i] = s.in.Bits(s.grid[i])
		s.have[i] = true
	}
	return s.vals[i]
}

// maxBacklog returns F = max over the grid of A(t) − avail(t) (Eq. 10),
// evaluating A only at the last point of each constant-avail segment.
//
//fafvet:hotpath
func (s *macScan) maxBacklog() float64 {
	var backlog float64
	for i := 0; i < len(s.grid); {
		k := math.Floor(s.grid[i] / s.ttrt)
		j := i
		// Exact comparison of the floored rotation index: grouping must
		// follow Avail's own segmentation, ulps and all.
		for j+1 < len(s.grid) && math.Floor(s.grid[j+1]/s.ttrt) == k {
			j++
		}
		if b := s.eval(j) - s.p.Avail(s.grid[j]); b > backlog {
			backlog = b
		}
		i = j + 1
	}
	return backlog
}

// maxDelay returns χ = max over the grid of m(t)·TTRT − t (Eq. 11), where
// m(t) = ⌈A(t)/svc⌉ + 1 is the first multiple of TTRT at which avail
// reaches A(t). Delay candidates exist only where A(t) > Eps, a suffix of
// the grid by monotonicity.
//
//fafvet:hotpath
func (s *macScan) maxDelay() float64 {
	lo := s.firstPositive()
	if lo >= len(s.grid) {
		return 0
	}
	s.delay = 0
	s.consider(lo)
	s.splits(lo, len(s.grid)-1)
	return s.delay
}

// firstPositive binary-searches for the first grid index with A > Eps.
// Hand-rolled rather than sort.Search: the callback closure would be an
// allocation inside the annotated scan.
func (s *macScan) firstPositive() int {
	lo, hi := 0, len(s.grid)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.eval(mid) > units.Eps {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// mAt returns m(grid[i]).
func (s *macScan) mAt(i int) float64 { return units.CeilDiv(s.eval(i), s.svc) + 1 }

// consider folds grid index i's delay candidate into the running maximum.
func (s *macScan) consider(i int) {
	if d := s.mAt(i)*s.ttrt - s.grid[i]; d > s.delay {
		s.delay = d
	}
}

// splits finds every m-run boundary in (i, j] by binary splitting and
// considers the first point of each run. i itself has been considered by
// the caller.
func (s *macScan) splits(i, j int) {
	// m is an exact small integer; a run boundary is where it changes at
	// all, so exact equality is the right test.
	if s.mAt(i) == s.mAt(j) {
		return
	}
	if j == i+1 {
		s.consider(j)
		return
	}
	mid := (i + j) / 2
	s.splits(i, mid)
	s.splits(mid, j)
}
