package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAlmostLE(t *testing.T) {
	tests := []struct {
		name string
		a, b float64
		want bool
	}{
		{"strictly less", 1.0, 2.0, true},
		{"equal", 3.5, 3.5, true},
		{"just above within rel tol", 1.0 + 1e-12, 1.0, true},
		{"clearly above", 1.001, 1.0, false},
		{"zero vs eps", Eps / 2, 0, true},
		{"negative ordering", -2, -1, true},
		{"negative violation", -1, -2, false},
		{"large magnitudes within tol", 1e12 * (1 + 1e-13), 1e12, true},
		{"large magnitudes violation", 1e12 * 1.001, 1e12, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := AlmostLE(tt.a, tt.b); got != tt.want {
				t.Errorf("AlmostLE(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestAlmostGEAndEq(t *testing.T) {
	if !AlmostGE(2, 1) {
		t.Error("AlmostGE(2,1) should be true")
	}
	if AlmostGE(1, 2) {
		t.Error("AlmostGE(1,2) should be false")
	}
	if !AlmostEq(1.0, 1.0+1e-13) {
		t.Error("AlmostEq should tolerate tiny differences")
	}
	if AlmostEq(1.0, 1.1) {
		t.Error("AlmostEq(1.0, 1.1) should be false")
	}
}

func TestWithinRel(t *testing.T) {
	if !WithinRel(100, 100.4, 0.005) {
		t.Error("0.4% difference should be within 0.5% tolerance")
	}
	if WithinRel(100, 101, 0.005) {
		t.Error("1% difference should exceed 0.5% tolerance")
	}
	if !WithinRel(0, 0, 0.001) {
		t.Error("zero vs zero should be within any tolerance")
	}
}

func TestCeilDiv(t *testing.T) {
	tests := []struct {
		a, b, want float64
	}{
		{0, 5, 0},
		{-3, 5, 0},
		{10, 5, 2},
		{11, 5, 3},
		{9.999999999999, 5, 2}, // near-exact multiple treated as exact
		{1, 3, 1},
		{4500 * 8, 384, 94}, // FDDI max frame to ATM cells: 36000/384 = 93.75
	}
	for _, tt := range tests {
		if got := CeilDiv(tt.a, tt.b); got != tt.want {
			t.Errorf("CeilDiv(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestFloorDiv(t *testing.T) {
	tests := []struct {
		a, b, want float64
	}{
		{0, 5, 0},
		{-1, 5, 0},
		{10, 5, 2},
		{14.9, 5, 2},
		{14.999999999999999, 5, 3}, // infinitesimally below a multiple rounds up
	}
	for _, tt := range tests {
		if got := FloorDiv(tt.a, tt.b); got != tt.want {
			t.Errorf("FloorDiv(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 3); got != 3 {
		t.Errorf("Clamp(5,0,3) = %v, want 3", got)
	}
	if got := Clamp(-1, 0, 3); got != 0 {
		t.Errorf("Clamp(-1,0,3) = %v, want 0", got)
	}
	if got := Clamp(2, 0, 3); got != 2 {
		t.Errorf("Clamp(2,0,3) = %v, want 2", got)
	}
}

func TestCeilFloorDivConsistency(t *testing.T) {
	// Property: for positive a, b: FloorDiv <= a/b <= CeilDiv and they differ
	// by at most 1.
	f := func(a, b float64) bool {
		a = math.Abs(a)
		b = math.Abs(b)
		if b < 1e-9 || a > 1e15 || b > 1e15 {
			return true // outside the supported numeric range
		}
		fl, ce := FloorDiv(a, b), CeilDiv(a, b)
		return fl <= ce && ce-fl <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampProperty(t *testing.T) {
	f := func(v, lo, hi float64) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		got := Clamp(v, lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
