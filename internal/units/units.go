// Package units defines the unit conventions shared by every analysis and
// simulation package in this repository, together with the numeric helpers
// used when comparing physical quantities.
//
// Conventions:
//
//   - Time is expressed in seconds as float64.
//   - Data volumes are expressed in payload bits as float64.
//   - Rates are expressed in bits per second as float64.
//
// ATM cell overhead (5 header bytes out of 53) is accounted by working with
// payload-effective link capacities rather than by tracking header bits,
// which keeps every traffic envelope in the same unit.
package units

import "math"

// Common rate constants, in bits per second.
const (
	Kbps = 1e3
	Mbps = 1e6
	Gbps = 1e9
)

// Common time constants, in seconds.
const (
	Microsecond = 1e-6
	Millisecond = 1e-3
)

// Eps is the default absolute tolerance used when comparing times (seconds).
// It is far below every physical time constant in the system (the shortest
// being a cell transmission time of ~2.7 µs) while far above float64 noise
// accumulated by the analysis.
const Eps = 1e-12

// RelTol is the default relative tolerance used when comparing delays and
// rates produced by independent computations.
const RelTol = 1e-9

// AlmostLE reports whether a <= b up to the default tolerance, using a mixed
// absolute/relative criterion so that it behaves sensibly both near zero and
// for large magnitudes.
func AlmostLE(a, b float64) bool {
	if a <= b {
		return true
	}
	scale := max(math.Abs(a), math.Abs(b))
	return a-b <= Eps+RelTol*scale
}

// AlmostGE reports whether a >= b up to the default tolerance.
func AlmostGE(a, b float64) bool { return AlmostLE(b, a) }

// AlmostEq reports whether a and b are equal up to the default tolerance.
func AlmostEq(a, b float64) bool { return AlmostLE(a, b) && AlmostLE(b, a) }

// WithinRel reports whether a and b agree up to relative tolerance tol
// (with an absolute floor of Eps for values near zero).
func WithinRel(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	if diff <= Eps {
		return true
	}
	scale := max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

// CeilDiv returns ceil(a/b) for positive float quantities, robust to the
// floating-point case where a is an exact multiple of b up to tolerance.
// b must be positive.
func CeilDiv(a, b float64) float64 {
	if a <= 0 {
		return 0
	}
	q := a / b
	f := math.Floor(q)
	if q-f <= RelTol*max(1, q) {
		return f
	}
	return f + 1
}

// FloorDiv returns floor(a/b) for positive float quantities, robust to the
// floating-point case where a is infinitesimally below an exact multiple of
// b. b must be positive.
func FloorDiv(a, b float64) float64 {
	if a <= 0 {
		return 0
	}
	q := a / b
	c := math.Ceil(q)
	if c-q <= RelTol*max(1, q) {
		return c
	}
	// q is non-integral here (an integral q takes the branch above), so its
	// floor is exactly one below its ceil.
	return c - 1
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}
