// Package heldset is the shared dataflow engine of the concurrency analyzers
// (lockorder, guardedby). It provides two things:
//
//   - resolution helpers that identify sync.Mutex/RWMutex operations and the
//     variable or field object behind a lock expression, so every instance
//     path (s.mu in one method, srv.mu in another) names the same lock;
//   - a statement-order walker that tracks the set of held mutexes through a
//     function body — branches merge conservatively (intersection), deferred
//     unlocks keep the lock held for the rest of the body, goroutine bodies
//     start with an empty held set — and reports each interesting event
//     (acquire, re-entry, blocking operation, call, variable use) to analyzer
//     hooks together with the held set at that point.
//
// The analyzers differ only in what they do at those events: lockorder
// records acquisition edges and blocking-under-lock, guardedby checks
// annotated field accesses against the held set.
package heldset

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Held maps each held mutex object to the display name it was locked under
// (s.mu, reg.mu). Hooks must treat it as read-only.
type Held map[*types.Var]string

// Clone returns an independent copy of h.
func (h Held) Clone() Held {
	c := make(Held, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// Sorted returns the held display names in deterministic order.
func (h Held) Sorted() []string {
	var names []string
	for _, n := range h {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// Config parameterizes one walk. All hooks are optional.
type Config struct {
	Info *types.Info

	// OnAcquire fires for m.Lock/m.RLock of a mutex not currently held, with
	// the held set before mv is added.
	OnAcquire func(call *ast.CallExpr, mv *types.Var, display string, held Held)
	// OnReenter fires when an already-held mutex is locked again; the held set
	// stays unchanged.
	OnReenter func(call *ast.CallExpr, mv *types.Var, display, heldAs string)
	// OnBlocking fires on a potentially-parking operation (channel send or
	// receive, select without default, WaitGroup.Wait, net Accept, time.Sleep).
	OnBlocking func(pos token.Pos, what string, held Held)
	// OnCall fires for calls that are neither mutex operations nor recognized
	// blocking calls — the place to apply callee summaries.
	OnCall func(call *ast.CallExpr, held Held)
	// OnUse fires for every identifier or field selection that resolves to a
	// variable, with the held set at the access. Both reads and writes fire.
	OnUse func(x ast.Expr, v *types.Var, held Held)
	// OnGo fires for each go statement; the spawned literal's body is then
	// walked with a fresh empty held set.
	OnGo func(g *ast.GoStmt)

	// WalkDeferredClosures walks `defer func(){...}()` bodies with the held
	// set at the defer statement (the common cleanup-under-lock shape).
	// lockorder leaves this off: a deferred unlock-then-use sequence would
	// otherwise read as lock-order evidence from a state that never executes.
	WalkDeferredClosures bool
	// WalkStoredClosures walks function literals that are stored rather than
	// invoked (assigned, passed as arguments) with an empty held set, since
	// nothing is known about the caller's locks when they eventually run.
	WalkStoredClosures bool
}

// Walk runs the held-set dataflow over one function body starting from the
// given held set (nil means empty). initial is not mutated.
func Walk(cfg *Config, body *ast.BlockStmt, initial Held) {
	if initial == nil {
		initial = Held{}
	}
	w := &walker{cfg: cfg, held: initial.Clone()}
	w.block(body)
}

// MutexOp recognizes m.Lock / m.RLock / m.Unlock / m.RUnlock calls on a
// sync.Mutex or sync.RWMutex and resolves the mutex's identity (field or
// variable object).
func MutexOp(info *types.Info, call *ast.CallExpr) (*types.Var, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, ""
	}
	if recv := ReceiverNamed(fn); recv != "Mutex" && recv != "RWMutex" {
		return nil, ""
	}
	return ResolveVar(info, sel.X), fn.Name()
}

// ReceiverNamed returns the name of a method's receiver type, or "".
func ReceiverNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// ResolveVar identifies the variable or field object behind an expression
// (mu, s.mu, a.b.mu).
func ResolveVar(info *types.Info, x ast.Expr) *types.Var {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		v, _ := info.Uses[x].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
		// Qualified package-level variable (pkg.Var).
		v, _ := info.Uses[x.Sel].(*types.Var)
		return v
	}
	return nil
}

// BlockingCall names the blocking operation a call performs, or "".
func BlockingCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	case "sync":
		if fn.Name() == "Wait" {
			return ReceiverNamed(fn) + ".Wait"
		}
	case "net":
		if fn.Name() == "Accept" {
			return "net Accept"
		}
	}
	return ""
}

// HasDefaultClause reports whether a select body contains a default clause
// (making the select non-blocking).
func HasDefaultClause(body *ast.BlockStmt) bool {
	for _, cc := range body.List {
		if c, ok := cc.(*ast.CommClause); ok && c.Comm == nil {
			return true
		}
	}
	return false
}

// InspectSkippingGo visits body without descending into goroutine bodies
// (they run on their own stack, with their own held set).
func InspectSkippingGo(body ast.Node, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			// Visit the call's arguments (evaluated on this stack) but not
			// the spawned function literal's body.
			for _, arg := range g.Call.Args {
				InspectSkippingGo(arg, visit)
			}
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// ExprDisplay renders a (selector) expression for diagnostics: s.mu.Lock →
// "s.mu", srv.Close → "srv.Close".
func ExprDisplay(x ast.Expr) string {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if base := ExprDisplay(x.X); base != "" {
			return base + "." + x.Sel.Name
		}
		return x.Sel.Name
	}
	return "<expr>"
}

// walker tracks the held-mutex set through one function body in statement
// order.
type walker struct {
	cfg  *Config
	held Held
	// terminated marks a branch that returned/branched out; merges skip it.
	terminated bool
}

func (w *walker) clone() *walker {
	return &walker{cfg: w.cfg, held: w.held.Clone()}
}

// mergeBranches replaces held with the intersection of the surviving
// branches (plus the fallthrough state, if any — the path that took no
// branch).
func (w *walker) mergeBranches(branches []*walker, fallthroughState Held) {
	var live []Held
	for _, b := range branches {
		if !b.terminated {
			live = append(live, b.held)
		}
	}
	if fallthroughState != nil {
		live = append(live, fallthroughState)
	}
	if len(live) == 0 {
		w.terminated = true
		return
	}
	merged := make(Held)
	for k, v := range live[0] {
		inAll := true
		for _, other := range live[1:] {
			if _, ok := other[k]; !ok {
				inAll = false
				break
			}
		}
		if inAll {
			merged[k] = v
		}
	}
	w.held = merged
}

func (w *walker) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		if w.terminated {
			return
		}
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r)
		}
		for _, l := range s.Lhs {
			w.expr(l)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
		w.blockingOp(s.Arrow, "channel send")
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.DeferStmt:
		// A deferred Unlock releases at return; for order tracking the lock
		// stays held through the remainder of the body, which is exactly
		// what leaving the held set untouched models. Other deferred calls
		// do not run here.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok && w.cfg.WalkDeferredClosures {
			for _, arg := range s.Call.Args {
				w.expr(arg)
			}
			d := w.clone()
			d.block(lit.Body)
		}
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			w.expr(arg)
		}
		if w.cfg.OnGo != nil {
			w.cfg.OnGo(s)
		}
		// The spawned body runs on its own stack with nothing held.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			g := &walker{cfg: w.cfg, held: Held{}}
			g.block(lit.Body)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r)
		}
		w.terminated = true
	case *ast.BranchStmt:
		w.terminated = true
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		body := w.clone()
		body.block(s.Body)
		branches := []*walker{body}
		var fallthroughState Held
		if s.Else != nil {
			els := w.clone()
			els.stmt(s.Else)
			branches = append(branches, els)
		} else {
			fallthroughState = w.held
		}
		w.mergeBranches(branches, fallthroughState)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		body := w.clone()
		body.block(s.Body)
		if s.Post != nil && !body.terminated {
			body.stmt(s.Post)
		}
		// Held set after a loop: conservative, what we held going in.
	case *ast.RangeStmt:
		w.expr(s.X)
		if t := w.cfg.Info.Types[s.X].Type; t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				w.blockingOp(s.For, "channel receive (range)")
			}
		}
		body := w.clone()
		body.block(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		w.caseClauses(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.caseClauses(s.Body)
	case *ast.SelectStmt:
		// A select with a default clause never parks the goroutine.
		if !HasDefaultClause(s.Body) {
			w.blockingOp(s.Pos(), "select")
		}
		w.caseClauses(s.Body)
	case *ast.BlockStmt:
		w.block(s)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

// caseClauses walks each clause body on a clone and merges the survivors;
// the pre state rides along as the implicit no-case-taken path.
func (w *walker) caseClauses(body *ast.BlockStmt) {
	var branches []*walker
	for _, cc := range body.List {
		b := w.clone()
		switch cc := cc.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				b.expr(e)
			}
			for _, s := range cc.Body {
				if b.terminated {
					break
				}
				b.stmt(s)
			}
		case *ast.CommClause:
			// The comm statement's channel op is part of the select itself
			// (already reported, or non-blocking under a default clause), so
			// only the clause body is walked.
			for _, s := range cc.Body {
				if b.terminated {
					break
				}
				b.stmt(s)
			}
		}
		branches = append(branches, b)
	}
	w.mergeBranches(branches, w.held)
}

// expr walks an expression in evaluation order, handling calls, channel
// receives and variable uses.
func (w *walker) expr(x ast.Expr) {
	switch x := x.(type) {
	case *ast.ParenExpr:
		w.expr(x.X)
	case *ast.UnaryExpr:
		w.expr(x.X)
		if x.Op == token.ARROW {
			w.blockingOp(x.OpPos, "channel receive")
		}
	case *ast.BinaryExpr:
		w.expr(x.X)
		w.expr(x.Y)
	case *ast.StarExpr:
		w.expr(x.X)
	case *ast.SelectorExpr:
		w.expr(x.X)
		w.use(x)
	case *ast.Ident:
		w.use(x)
	case *ast.IndexExpr:
		w.expr(x.X)
		w.expr(x.Index)
	case *ast.SliceExpr:
		w.expr(x.X)
	case *ast.TypeAssertExpr:
		w.expr(x.X)
	case *ast.KeyValueExpr:
		w.expr(x.Value)
	case *ast.CompositeLit:
		for _, e := range x.Elts {
			w.expr(e)
		}
	case *ast.CallExpr:
		for _, a := range x.Args {
			w.expr(a)
		}
		switch fun := ast.Unparen(x.Fun).(type) {
		case *ast.SelectorExpr:
			w.expr(fun.X)
		case *ast.FuncLit:
			// Immediately-invoked literal: its body runs right here, with
			// whatever is currently held.
			w.block(fun.Body)
		}
		w.call(x)
	case *ast.FuncLit:
		// A literal that is not (statically) invoked here: its body runs
		// later, under unknown locks. Calls through stored closures are
		// beyond the order/summary machinery; analyzers that check accesses
		// can opt into a conservative empty-held walk.
		if w.cfg.WalkStoredClosures {
			g := &walker{cfg: w.cfg, held: Held{}}
			g.block(x.Body)
		}
	}
}

// use reports a variable or field access to the OnUse hook.
func (w *walker) use(x ast.Expr) {
	if w.cfg.OnUse == nil {
		return
	}
	if v := ResolveVar(w.cfg.Info, x); v != nil {
		w.cfg.OnUse(x, v, w.held)
	}
}

// call applies the lock semantics of one call with the current held set.
func (w *walker) call(call *ast.CallExpr) {
	if mv, op := MutexOp(w.cfg.Info, call); mv != nil {
		// MutexOp guarantees Fun is a selector; display the receiver chain
		// (s.mu), not the method.
		display := ExprDisplay(ast.Unparen(call.Fun).(*ast.SelectorExpr).X)
		switch op {
		case "Lock", "RLock":
			if heldAs, ok := w.held[mv]; ok {
				if w.cfg.OnReenter != nil {
					w.cfg.OnReenter(call, mv, display, heldAs)
				}
				return
			}
			if w.cfg.OnAcquire != nil {
				w.cfg.OnAcquire(call, mv, display, w.held)
			}
			w.held[mv] = display
		case "Unlock", "RUnlock":
			delete(w.held, mv)
		}
		return
	}
	if b := BlockingCall(w.cfg.Info, call); b != "" {
		w.blockingOp(call.Pos(), b)
		return
	}
	if w.cfg.OnCall != nil {
		w.cfg.OnCall(call, w.held)
	}
}

func (w *walker) blockingOp(pos token.Pos, what string) {
	if w.cfg.OnBlocking != nil {
		w.cfg.OnBlocking(pos, what, w.held)
	}
}
