// Package golife implements the goroutine-lifecycle analyzer: every `go`
// statement in non-test code must have a provable stop path. A goroutine
// with no join and no termination signal is a leak — under the signaling
// server's drain semantics it keeps the process alive past Shutdown, and
// under -race it turns every later test in the binary into a suspect.
//
// The proof is deliberately syntactic and cheap. A spawned body counts as
// stoppable when it (or a same-package function it calls, transitively)
// performs any of:
//
//   - a sync.WaitGroup Done call (the spawner joins via Wait)
//   - a channel send or close (a peer observes completion)
//   - a channel receive, including <-ctx.Done() (the body can be told to
//     stop), or a select with a receive or send case
//   - a range over a channel (the loop ends when the producer closes it)
//
// Anything else — an unbounded for/Sleep loop, a fire-and-forget call into
// another package — is reported. Goroutines that are intentionally
// process-lifetime can be waived with
//
//	//lint:allow golife <reason>
//
// on the `go` statement's line; the reason is mandatory, so every leak is
// either joined or justified in-place.
package golife

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fafnet/internal/lint"
)

// Analyzer is the goroutine-lifecycle check.
var Analyzer = &lint.Analyzer{
	Name: "golife",
	Doc:  "require a provable stop path (join, channel, or cancellation) for every goroutine",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if p := pass.Pkg.Path(); p != lint.ModulePath && !strings.HasPrefix(p, lint.ModulePath+"/") {
		return nil
	}
	c := &checker{
		pass:     pass,
		decls:    make(map[*types.Func]*ast.FuncDecl),
		evidence: make(map[*types.Func]state),
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.decls[fn] = fd
			}
		}
	}
	for _, f := range pass.Files {
		// Test files may leak for the length of one test; the -race chaos
		// suite polices those, not the lifecycle gate.
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			c.check(g)
			return true
		})
	}
	return nil
}

// state is a memo entry for one function's stop-path evidence.
type state int

const (
	unknown state = iota
	visiting
	hasStop
	noStop
)

type checker struct {
	pass     *lint.Pass
	decls    map[*types.Func]*ast.FuncDecl
	evidence map[*types.Func]state
}

// check reports g unless the spawned body has a provable stop path.
func (c *checker) check(g *ast.GoStmt) {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if !c.bodyHasStop(fun.Body) {
			c.pass.Report(g.Pos(), "goroutine has no provable stop path (no WaitGroup.Done, channel operation, or cancellation receive); join it, give it a shutdown signal, or waive with //lint:allow golife <reason>")
		}
	default:
		fn := c.callee(g.Call)
		if fn == nil {
			// Spawning an expression we cannot resolve (a stored closure, a
			// method value) — the stop path, if any, is not visible here.
			c.pass.Report(g.Pos(), "goroutine spawns a dynamic function value; its stop path cannot be verified — spawn a named function or func literal, or waive with //lint:allow golife <reason>")
			return
		}
		if _, local := c.decls[fn]; !local {
			c.pass.Reportf(g.Pos(), "goroutine runs %s, which is outside this package; its stop path cannot be verified — wrap it in a func literal that signals completion, or waive with //lint:allow golife <reason>", fn.Name())
			return
		}
		if !c.funcHasStop(fn) {
			c.pass.Reportf(g.Pos(), "goroutine runs %s, which has no provable stop path (no WaitGroup.Done, channel operation, or cancellation receive); join it, give it a shutdown signal, or waive with //lint:allow golife <reason>", fn.Name())
		}
	}
}

// callee resolves a call to the invoked *types.Func, or nil for dynamic
// calls (function-typed variables, stored closures).
func (c *checker) callee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := c.pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := c.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcHasStop reports whether fn's body (transitively through same-package
// callees) contains stop-path evidence. Recursion through a cycle yields
// no evidence — a pair of functions that only call each other never stops.
func (c *checker) funcHasStop(fn *types.Func) bool {
	switch c.evidence[fn] {
	case hasStop:
		return true
	case noStop, visiting:
		return false
	}
	c.evidence[fn] = visiting
	decl := c.decls[fn]
	ok := decl != nil && c.bodyHasStop(decl.Body)
	if ok {
		c.evidence[fn] = hasStop
	} else {
		c.evidence[fn] = noStop
	}
	return ok
}

// bodyHasStop scans one body for direct evidence, recursing into
// same-package callees. Bodies of nested `go` statements are skipped: a
// grandchild goroutine's channel traffic says nothing about this one.
func (c *checker) bodyHasStop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			// The nested goroutine is checked on its own; its body is not
			// evidence for the parent. The call's arguments still are.
			for _, arg := range n.Call.Args {
				if exprHasStop(c, arg) {
					found = true
				}
			}
			return false
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := c.pass.TypesInfo.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if isClose(c.pass.TypesInfo, n) || isWaitGroupDone(c.pass.TypesInfo, n) {
				found = true
				return false
			}
			if fn := c.callee(n); fn != nil {
				if _, local := c.decls[fn]; local && c.funcHasStop(fn) {
					found = true
					return false
				}
			}
		}
		return !found
	})
	return found
}

// exprHasStop checks a lone expression (a goroutine-call argument) for
// evidence, reusing the body walker.
func exprHasStop(c *checker, e ast.Expr) bool {
	return c.bodyHasStop(&ast.BlockStmt{List: []ast.Stmt{&ast.ExprStmt{X: e}}})
}

// isClose matches the close(ch) builtin.
func isClose(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "close"
}

// isWaitGroupDone matches wg.Done() for a sync.WaitGroup receiver.
func isWaitGroupDone(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}
