// Package w holds the waiver fixture on its own: the out-of-module run of
// the main testdata must stay silent, and an allow comment there would be
// reported as stale once the analyzer goes inert.
package w

// spin never stops.
func spin() {
	for {
	}
}

// Waived is intentionally process-lifetime and says so.
func Waived() {
	go spin() //lint:allow golife heartbeat runs for the process lifetime by design
}
