// Package gl exercises the golife analyzer: joined goroutines, channel and
// cancellation stop paths, transitive evidence through same-package helpers,
// leaks, dynamic spawns and waivers.
package gl

import (
	"fmt"
	"sync"
	"time"
)

// Joined is the canonical pattern: the spawner waits on the group.
func Joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// Pool ranges over a channel: the loop ends when the producer closes it.
func Pool(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

// Cancelable selects on a done channel.
func Cancelable(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
		}
	}()
}

// Signals closes a channel on exit: a peer observes completion.
func Signals() chan struct{} {
	ch := make(chan struct{})
	go func() {
		defer close(ch)
	}()
	return ch
}

// Sender reports completion with a send.
func Sender() chan error {
	ch := make(chan error, 1)
	go func() {
		ch <- nil
	}()
	return ch
}

// worker has a stop path (receive) of its own.
func worker(stop chan struct{}) {
	<-stop
}

// relay only has one transitively, through worker.
func relay(stop chan struct{}) {
	worker(stop)
}

// Spawns proves evidence flows through same-package calls.
func Spawns(stop chan struct{}) {
	go worker(stop)
	go relay(stop)
}

// spin never stops.
func spin() {
	for {
		time.Sleep(time.Millisecond)
	}
}

// mutualA and mutualB only call each other; the cycle is not a stop path.
func mutualA() { mutualB() }
func mutualB() { mutualA() }

// Leaks collects the failure shapes.
func Leaks(f func()) {
	go func() { // want `goroutine has no provable stop path`
		for {
		}
	}()
	go func() { // want `goroutine has no provable stop path`
		time.Sleep(time.Second)
	}()
	go spin()        // want `goroutine runs spin, which has no provable stop path`
	go mutualA()     // want `goroutine runs mutualA, which has no provable stop path`
	go fmt.Println() // want `goroutine runs Println, which is outside this package`
	go f()           // want `goroutine spawns a dynamic function value`
}

// Nested: the child goroutine's channel traffic is not evidence for the
// parent, which has none of its own.
func Nested(ch chan int) {
	go func() { // want `goroutine has no provable stop path`
		go func() {
			ch <- 1
		}()
		for {
		}
	}()
}
