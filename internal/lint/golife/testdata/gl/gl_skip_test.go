package gl

// Test files are out of golife's scope: this leak draws no diagnostic (the
// harness would flag an unexpected one — there is no want comment here).
func leakInTest() {
	go func() {
		for {
		}
	}()
}
