package golife_test

import (
	"testing"

	"fafnet/internal/lint/golife"
	"fafnet/internal/lint/linttest"
)

func TestGolife(t *testing.T) {
	linttest.Run(t, golife.Analyzer, "testdata/gl", "fafnet/internal/golifetestdata")
}

// TestWaiver checks a justified //lint:allow golife comment suppresses the
// finding (no want comments in the fixture: the run must be silent).
func TestWaiver(t *testing.T) {
	linttest.Run(t, golife.Analyzer, "testdata/waive", "fafnet/internal/golifewaive")
}

// TestOutOfModule checks the analyzer is inert outside the module.
func TestOutOfModule(t *testing.T) {
	linttest.RunExpectNone(t, golife.Analyzer, "testdata/gl", "example.com/external/gl")
}
