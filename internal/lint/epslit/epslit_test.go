package epslit_test

import (
	"testing"

	"fafnet/internal/lint/epslit"
	"fafnet/internal/lint/linttest"
)

func TestEpslit(t *testing.T) {
	linttest.Run(t, epslit.Analyzer, "testdata/c", "fafnet/internal/linttestdata/c")
}

// TestOutOfScope checks that packages outside fafnet/internal/ are exempt.
func TestOutOfScope(t *testing.T) {
	linttest.RunExpectNone(t, epslit.Analyzer, "testdata/clean", "example.com/outside")
}
