// Package clean holds a literal that epslit flags inside fafnet/internal/
// but must ignore for out-of-scope package paths (examples, third parties).
package clean

var tht = 2e-3 // no "want": out of scope
