// Package c exercises the epslit analyzer: inline sub-unity
// scientific-notation literals are flagged; named constants, plain decimals
// and scale factors stay silent.
package c

// gridNudge brackets grid points; a named const is the sanctioned form.
const gridNudge = 1e-10

var ttrt = 4e-3 // want `raw physical literal 4e-3`

func f() float64 {
	x := 5e-6 // want `raw physical literal 5e-6`
	y := 1e6  // scale factor: conversions live above the threshold
	z := 0.25 // plain decimal reads as what it is
	// slack is a function-level const: still the sanctioned form.
	const slack = 1e-12
	return x + y + z + slack + gridNudge + ttrt
}
