// Package epslit defines an analyzer that flags raw sub-unity
// scientific-notation literals (1e-10 grid nudges, 4e-3 TTRTs, 5e-6 hop
// latencies) used directly in expressions. Such magic numbers are physical
// quantities or numeric tolerances; each must be a named constant with a
// comment stating its unit, or the same value drifts between packages and
// silently disagrees with itself.
package epslit

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"

	"fafnet/internal/lint"
)

// Analyzer flags raw tolerance/physical-constant literals.
var Analyzer = &lint.Analyzer{
	Name: "epslit",
	Doc: `flag raw scientific-notation literals below 0.1 outside const declarations

Literals such as 1e-10, 4e-3 or 5e-6 written inline are physical constants
(seconds, tolerances) that belong in a named const with a unit comment.
Const declarations are exactly that fix, so literals inside them are not
reported; neither are test files or literals >= 0.1 (scale factors like 1e3
and 1e6 convert units rather than encode physics). The analyzer only checks
packages under fafnet/internal/.`,
	Run: run,
}

// threshold separates physical/tolerance magnitudes from unit-conversion
// scale factors: every flagged constant in this codebase is far below 0.1,
// every conversion factor (1e3 bits/kbit, 1e6) far above.
const threshold = 0.1

func run(pass *lint.Pass) error {
	if !strings.HasPrefix(pass.Pkg.Path(), "fafnet/internal/") {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue // test tolerances are local assertions, not shared physics
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GenDecl:
				if n.Tok == token.CONST {
					return false // naming the value is the fix; done here
				}
			case *ast.BasicLit:
				checkLit(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkLit(pass *lint.Pass, lit *ast.BasicLit) {
	if lit.Kind != token.FLOAT {
		return
	}
	text := strings.ToLower(lit.Value)
	if !strings.Contains(text, "e") {
		return // plain decimals (0.25, 0.5) read as what they are
	}
	v, err := strconv.ParseFloat(lit.Value, 64)
	if err != nil || v <= 0 || v >= threshold {
		return
	}
	pass.Reportf(lit.Pos(), "raw physical literal %s: promote to a named constant with a unit comment", lit.Value)
}
