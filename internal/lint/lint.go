// Package lint is a small, dependency-free static-analysis framework modeled
// on golang.org/x/tools/go/analysis. It exists because this repository's
// correctness rests on unit conventions (float64 seconds, bits, bits/second —
// see internal/units) that the Go type system cannot express; the analyzers
// built on this framework (cmd/fafvet) enforce them mechanically.
//
// The API mirrors go/analysis closely — Analyzer, Pass, Diagnostic — so the
// analyzers can migrate to the upstream framework verbatim if the dependency
// ever becomes available. The framework adds one repo-specific feature:
// findings can be suppressed with a justification comment,
//
//	//lint:allow <analyzer> <reason>
//
// placed on the offending line or the line immediately above it. An allow
// comment without a reason does not suppress anything (and is itself
// reported), so every suppression is self-documenting.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the analyzer identifier used in diagnostics, enable flags and
	// //lint:allow comments. It must look like a Go identifier.
	Name string
	// Doc is the help text; the first line is the summary.
	Doc string
	// Run applies the check to one package and reports findings via
	// Pass.Report/Reportf.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, message string) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  message,
	})
}

// Reportf records a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// allowKey identifies one suppressed (file line, analyzer) pair.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// AllowPrefix introduces a suppression comment.
const AllowPrefix = "//lint:allow"

// collectAllows scans the files' comments for //lint:allow directives. A
// directive suppresses the named analyzer on its own line and on the line
// below it (so it can trail the offending expression or sit above it).
// Malformed directives — missing analyzer or missing reason — are returned as
// diagnostics instead, so they cannot silently disable a check.
func collectAllows(fset *token.FileSet, files []*ast.File) (map[allowKey]bool, []Diagnostic) {
	allows := make(map[allowKey]bool)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, AllowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, AllowPrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Analyzer: "lint",
						Pos:      fset.Position(c.Pos()),
						Message:  "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\"",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					allows[allowKey{pos.Filename, line, fields[0]}] = true
				}
			}
		}
	}
	return allows, bad
}

// RunAnalyzers applies every analyzer to one type-checked package and returns
// the surviving diagnostics, sorted by position. Findings matched by a
// well-formed //lint:allow comment are dropped.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	allows, bad := collectAllows(fset, files)
	kept := bad
	for _, d := range diags {
		if allows[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return kept, nil
}
