// Package lint is a small, dependency-free static-analysis framework modeled
// on golang.org/x/tools/go/analysis. It exists because this repository's
// correctness rests on unit conventions (float64 seconds, bits, bits/second —
// see internal/units) that the Go type system cannot express; the analyzers
// built on this framework (cmd/fafvet) enforce them mechanically.
//
// The API mirrors go/analysis closely — Analyzer, Pass, Diagnostic — so the
// analyzers can migrate to the upstream framework verbatim if the dependency
// ever becomes available. The framework adds one repo-specific feature:
// findings can be suppressed with a justification comment,
//
//	//lint:allow <analyzer> <reason>
//
// placed on the offending line or the line immediately above it. An allow
// comment without a reason does not suppress anything (and is itself
// reported), so every suppression is self-documenting.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"fafnet/internal/lint/facts"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the analyzer identifier used in diagnostics, enable flags and
	// //lint:allow comments. It must look like a Go identifier.
	Name string
	// Doc is the help text; the first line is the summary.
	Doc string
	// Run applies the check to one package and reports findings via
	// Pass.Report/Reportf.
	Run func(*Pass) error
	// ExportsFacts marks analyzers that publish per-package facts
	// (Pass.ExportFact) for downstream packages. Only these analyzers run
	// during facts-only passes over dependency packages (Config.VetxOnly).
	ExportsFacts bool
	// FactTypes names the fact shapes the analyzer exports (the Go type
	// names of its fact payloads), for the -analyzers machine-readable
	// listing. Empty for analyzers that export no facts.
	FactTypes []string
	// Flags lists extra analyzer-specific boolean flags. Main registers them
	// on the command line and advertises them to `go vet` via -flags — which
	// also makes them part of the go command's action cache key, so toggling
	// one (unlike an environment variable) correctly invalidates cached
	// results.
	Flags []BoolFlag
}

// BoolFlag is one analyzer-specific boolean command-line flag.
type BoolFlag struct {
	Name  string
	Usage string
	// Value receives the parsed flag; it doubles as the analyzer's switch.
	Value *bool
}

// LockGraphEdgePrefix introduces the machine-parseable lock-graph edge
// diagnostics lockorder emits under its -lockgraph flag. The standalone
// driver's -format=dot mode filters these out of the finding stream and
// renders them as a Graphviz digraph. Defined here (not in lockorder) so
// the driver can match it without importing the analyzer.
const LockGraphEdgePrefix = "lockgraph-edge: "

// Pass carries one package's syntax and type information to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags    *[]Diagnostic
	imported map[string]facts.File
	exported facts.File
}

// ExportFact publishes a fact under the running analyzer's name for
// downstream packages to import. Keys are analyzer-defined object paths
// ("Func", "Type.Method", "Type.Field").
func (p *Pass) ExportFact(key string, v any) error {
	return p.exported.Set(p.Analyzer.Name, key, v)
}

// ImportFact decodes into out the fact the running analyzer exported for
// pkgPath under key, reporting whether it exists. Packages with no fact file
// (not yet vetted, or outside the module) simply yield no facts.
func (p *Pass) ImportFact(pkgPath, key string, out any) bool {
	f, ok := p.imported[pkgPath]
	if !ok {
		return false
	}
	return f.Get(p.Analyzer.Name, key, out)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, message string) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  message,
	})
}

// Reportf records a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// allowKey identifies one suppressed (file line, analyzer) pair.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// directive is one well-formed //lint:allow comment, tracked so unused
// suppressions can be reported instead of silently accumulating.
type directive struct {
	pos      token.Position
	analyzer string
	used     bool
}

// AllowPrefix introduces a suppression comment.
const AllowPrefix = "//lint:allow"

// collectAllows scans the files' comments for //lint:allow directives. A
// directive suppresses the named analyzer on its own line and on the line
// below it (so it can trail the offending expression or sit above it).
// Malformed directives — missing analyzer or missing reason — are returned as
// diagnostics instead, so they cannot silently disable a check.
func collectAllows(fset *token.FileSet, files []*ast.File) (map[allowKey][]*directive, []Diagnostic) {
	allows := make(map[allowKey][]*directive)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, AllowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, AllowPrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Analyzer: "lint",
						Pos:      fset.Position(c.Pos()),
						Message:  "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\"",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				d := &directive{pos: pos, analyzer: fields[0]}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := allowKey{pos.Filename, line, fields[0]}
					allows[key] = append(allows[key], d)
				}
			}
		}
	}
	return allows, bad
}

// RunAnalyzers applies every analyzer to one type-checked package and returns
// the surviving diagnostics, sorted deterministically. Findings matched by a
// well-formed //lint:allow comment are dropped; see Run for the full
// contract including facts.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := Run(fset, files, pkg, info, analyzers, nil)
	return diags, err
}

// Run applies every analyzer to one type-checked package. imported maps
// dependency import paths to their decoded fact files; the returned File
// holds the facts the analyzers exported for this package.
//
// Suppression: findings matched by a well-formed //lint:allow comment are
// dropped, and any directive that suppressed nothing — for an analyzer that
// actually ran — is itself reported, so stale annotations cannot accumulate
// as the code under them evolves.
//
// Diagnostics are sorted by (file, line, column, analyzer, message) so
// emission order is stable across runs regardless of analyzer iteration or
// map ordering — golden tests and CI diffs depend on this.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, imported map[string]facts.File) ([]Diagnostic, facts.File, error) {
	var diags []Diagnostic
	exported := facts.File{}
	ran := make(map[string]bool)
	for _, a := range analyzers {
		ran[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			diags:     &diags,
			imported:  imported,
			exported:  exported,
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	allows, bad := collectAllows(fset, files)
	kept := bad
	for _, d := range diags {
		if ds := allows[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}]; len(ds) > 0 {
			for _, dir := range ds {
				dir.used = true
			}
			continue
		}
		kept = append(kept, d)
	}
	// Report each unused directive once (it is indexed under two line keys).
	// A directive for an analyzer that did not run (disabled on the command
	// line) is left alone: its finding may reappear the moment the analyzer
	// is re-enabled.
	seen := make(map[*directive]bool)
	for _, ds := range allows {
		for _, dir := range ds {
			if dir.used || seen[dir] || !ran[dir.analyzer] {
				continue
			}
			seen[dir] = true
			kept = append(kept, Diagnostic{
				Analyzer: "lint",
				Pos:      dir.pos,
				Message:  fmt.Sprintf("unused //lint:allow %s: no %s finding on this line or the next; delete the stale suppression", dir.analyzer, dir.analyzer),
			})
		}
	}
	SortDiagnostics(kept)
	return kept, exported, nil
}

// SortDiagnostics orders diagnostics by (file, line, column, analyzer,
// message) — the canonical emission order for every fafvet output format.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i].Pos, ds[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if ds[i].Analyzer != ds[j].Analyzer {
			return ds[i].Analyzer < ds[j].Analyzer
		}
		return ds[i].Message < ds[j].Message
	})
}
