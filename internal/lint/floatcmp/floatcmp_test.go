package floatcmp_test

import (
	"testing"

	"fafnet/internal/lint/floatcmp"
	"fafnet/internal/lint/linttest"
)

func TestFloatcmp(t *testing.T) {
	linttest.Run(t, floatcmp.Analyzer, "testdata/b", "fafnet/internal/linttestdata/b")
}
