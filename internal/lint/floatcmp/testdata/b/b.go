// Package b exercises the floatcmp analyzer: exact comparisons between
// physical quantities are flagged; ordering tests, constant comparisons,
// tolerance-adjusted comparisons, loop guards and suppressed findings stay
// silent.
package b

const eps = 1e-9

func positives(measuredDelay, boundDelay float64) {
	_ = measuredDelay == boundDelay // want `exact == between seconds quantities; use units.AlmostEq`
	_ = measuredDelay <= boundDelay // want `use units.AlmostLE`
	_ = measuredDelay >= boundDelay // want `use units.AlmostGE`
}

func negatives(curDelay, maxDelay, x, y float64) {
	_ = curDelay < maxDelay      // strict ordering is rounding-robust
	_ = curDelay <= 0            // constant bound: intended exact
	_ = x == y                   // no physical dimension inferred
	_ = curDelay <= maxDelay+eps // already tolerance-adjusted
	for t := 0.0; t <= maxDelay; t += 0.5 {
		_ = t // loop guard: an extra/missing iteration is harmless
	}
	_ = curDelay == maxDelay //lint:allow floatcmp fixpoint check wants bit-exact equality
}
