// Package floatcmp defines an analyzer that flags exact ==, <= and >=
// comparisons between computed physical float64 quantities. Worst-case
// delays, backlogs and rates come out of iterated floating-point extremum
// searches; comparing them exactly makes admission decisions depend on
// rounding noise. The units package provides AlmostEq, AlmostLE, AlmostGE and
// WithinRel for these comparisons.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fafnet/internal/lint"
	"fafnet/internal/lint/dims"
)

// Analyzer flags exact comparisons between physical float64 quantities.
var Analyzer = &lint.Analyzer{
	Name: "floatcmp",
	Doc: `flag exact ==/<=/>= between computed physical float64 quantities

A comparison is reported when both operands are non-constant floats, at least
one side carries an inferred physical dimension (seconds, bits, bps — see
internal/lint/dims), and the comparison is not already tolerance-adjusted.
Use units.AlmostEq / units.AlmostLE / units.AlmostGE / units.WithinRel
instead. Comparisons against constants, strict < / > ordering tests, and for
loop conditions are not reported.`,
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue // tests assert on fixed scenarios; exactness is intended
		}
		forConds := make(map[ast.Expr]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				// A loop guard bounds iteration count; an off-by-one-ulp
				// stop is harmless where an off-by-one-ulp decision is not.
				if n.Cond != nil {
					forConds[n.Cond] = true
				}
			case *ast.BinaryExpr:
				if forConds[n] {
					return true
				}
				checkCmp(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCmp(pass *lint.Pass, e *ast.BinaryExpr) {
	var suggest string
	switch e.Op {
	case token.EQL:
		suggest = "units.AlmostEq"
	case token.LEQ:
		suggest = "units.AlmostLE"
	case token.GEQ:
		suggest = "units.AlmostGE"
	default:
		return
	}
	info := pass.TypesInfo
	lt, rt := info.Types[e.X], info.Types[e.Y]
	if !isFloat(lt.Type) || !isFloat(rt.Type) {
		return
	}
	if lt.Value != nil || rt.Value != nil {
		return // comparisons against constants (0, named bounds) are fine
	}
	ld, lk := dims.OfExpr(info, e.X)
	rd, rk := dims.OfExpr(info, e.Y)
	if lk != dims.Physical && rk != dims.Physical {
		return
	}
	if toleranceAdjusted(e.X) || toleranceAdjusted(e.Y) {
		return
	}
	dim := ld
	if lk != dims.Physical {
		dim = rd
	}
	pass.Reportf(e.OpPos, "exact %s between %s quantities; use %s", e.Op, dim, suggest)
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// toleranceSuffixes mark identifiers that name a tolerance or deliberate
// offset (units.Eps, units.RelTol, traffic.GridNudge, a local slack).
var toleranceSuffixes = []string{"Eps", "Tol", "Slack", "Tiny", "Tolerance", "Nudge"}

func isToleranceName(name string) bool {
	for _, suf := range toleranceSuffixes {
		if name == strings.ToLower(suf) || strings.HasSuffix(name, suf) {
			return true
		}
	}
	return false
}

// toleranceAdjusted reports whether the expression mentions a tolerance
// identifier, meaning the comparison already accounts for floating-point
// noise.
func toleranceAdjusted(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && isToleranceName(id.Name) {
			found = true
		}
		return !found
	})
	return found
}
