package lockorder_test

import (
	"testing"

	"fafnet/internal/lint/linttest"
	"fafnet/internal/lint/lockorder"
)

func TestLockorder(t *testing.T) {
	linttest.Run(t, lockorder.Analyzer, "testdata/l", "fafnet/internal/signaling/linttestdata")
}

// TestOutOfScope checks that packages outside the concurrent set are not
// held to the lock discipline.
func TestOutOfScope(t *testing.T) {
	linttest.RunExpectNone(t, lockorder.Analyzer, "testdata/l", "fafnet/internal/core/linttestdata")
}
