package lockorder_test

import (
	"testing"

	"fafnet/internal/lint/linttest"
	"fafnet/internal/lint/lockorder"
)

func TestLockorder(t *testing.T) {
	linttest.Run(t, lockorder.Analyzer, "testdata/l", "fafnet/internal/signaling/linttestdata")
}

// TestOutOfModule checks that the lock discipline, while repo-wide, still
// stops at the module boundary: the same sources posing as a third-party
// package draw no findings.
func TestOutOfModule(t *testing.T) {
	linttest.RunExpectNone(t, lockorder.Analyzer, "testdata/l", "example.com/external/l")
}
