// Package lockorder defines a call-graph-based lock-acquisition checker for
// the concurrent packages (the signaling server and its daemon). It walks
// each function in statement order tracking the set of held mutexes, follows
// same-package calls through transitive acquisition summaries, and reports
// three classes of deadlock risk the race detector can only find if a test
// happens to interleave badly:
//
//   - inconsistent order: mutex B acquired while A is held in one place and
//     A while B is held in another;
//   - re-entry: a mutex (re)acquired — directly or through a callee — while
//     already held (sync.Mutex is not reentrant);
//   - held-across-blocking: a blocking operation (channel send/receive,
//     select, sync.WaitGroup.Wait, net Accept, time.Sleep) reached with a
//     mutex held, stalling every contender for as long as the peer takes.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"fafnet/internal/lint"
)

// Analyzer reports inconsistent mutex orderings and mutex-held blocking
// calls.
var Analyzer = &lint.Analyzer{
	Name: "lockorder",
	Doc: `flag inconsistent mutex acquisition orders and blocking calls under a lock

Within internal/signaling and cmd/fafcacd the analyzer tracks, per function
and in statement order, which sync.Mutex/RWMutex objects are held (keyed by
field or variable identity, so s.mu in one method and srv.mu in another are
the same lock). Same-package calls contribute their transitive acquisitions.
It reports opposite-order acquisition pairs, re-entrant locking, and
channel operations, selects, WaitGroup.Wait, net Accept and time.Sleep
executed while a mutex is held. Branches merge conservatively
(intersection), and goroutine bodies start with an empty held set.`,
	Run: run,
}

// scopes are the package-path prefixes the lock discipline covers.
var scopes = []string{
	"fafnet/internal/signaling",
	"fafnet/cmd/fafcacd",
}

func run(pass *lint.Pass) error {
	p := pass.Pkg.Path()
	inScope := false
	for _, s := range scopes {
		if p == s || strings.HasPrefix(p, s+"/") {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	c := &checker{
		pass:     pass,
		decls:    make(map[*types.Func]*ast.FuncDecl),
		acquires: make(map[*types.Func]map[*types.Var]bool),
		blocks:   make(map[*types.Func]bool),
		edges:    make(map[[2]*types.Var]*edge),
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					c.decls[fn] = fd
				}
			}
		}
	}
	c.summarize()
	// Walk bodies in source order so the "first" edge per mutex pair is the
	// lexically earliest one, independent of map iteration order.
	var fds []*ast.FuncDecl
	for _, fd := range c.decls {
		fds = append(fds, fd)
	}
	sort.Slice(fds, func(i, j int) bool { return fds[i].Pos() < fds[j].Pos() })
	for _, fd := range fds {
		w := &walker{c: c, held: make(map[*types.Var]string)}
		w.block(fd.Body)
	}
	c.reportCycles()
	return nil
}

// edge records one observed acquisition order: to was acquired while from
// was held.
type edge struct {
	pos        token.Pos
	fromD, toD string // display names at the recording site
}

type checker struct {
	pass  *lint.Pass
	decls map[*types.Func]*ast.FuncDecl

	// acquires is the transitive set of mutexes each same-package function
	// may lock; blocks marks functions that may execute a blocking
	// operation. Both exclude goroutine bodies (they run on their own
	// stack, with their own held set).
	acquires map[*types.Func]map[*types.Var]bool
	blocks   map[*types.Func]bool

	edges map[[2]*types.Var]*edge
}

// summarize computes direct acquisition/blocking facts per function, then
// closes them over the same-package call graph.
func (c *checker) summarize() {
	callees := make(map[*types.Func]map[*types.Func]bool)
	for fn, fd := range c.decls {
		acq := make(map[*types.Var]bool)
		calls := make(map[*types.Func]bool)
		blocks := false
		inspectSkippingGo(fd.Body, func(n ast.Node) {
			switch n := n.(type) {
			case *ast.CallExpr:
				if mv, op := c.mutexOp(n); mv != nil && (op == "Lock" || op == "RLock") {
					acq[mv] = true
				} else if g := c.calleeIn(n); g != nil {
					calls[g] = true
				} else if c.blockingCall(n) != "" {
					blocks = true
				}
			case *ast.SendStmt:
				blocks = true
			case *ast.SelectStmt:
				if !hasDefaultClause(n.Body) {
					blocks = true
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					blocks = true
				}
			}
		})
		c.acquires[fn] = acq
		c.blocks[fn] = blocks
		callees[fn] = calls
	}
	for changed := true; changed; {
		changed = false
		for fn, calls := range callees {
			for g := range calls {
				for mv := range c.acquires[g] {
					if !c.acquires[fn][mv] {
						c.acquires[fn][mv] = true
						changed = true
					}
				}
				if c.blocks[g] && !c.blocks[fn] {
					c.blocks[fn] = true
					changed = true
				}
			}
		}
	}
}

// hasDefaultClause reports whether a select body contains a default clause
// (making the select non-blocking).
func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, cc := range body.List {
		if c, ok := cc.(*ast.CommClause); ok && c.Comm == nil {
			return true
		}
	}
	return false
}

// inspectSkippingGo visits body without descending into goroutine bodies.
func inspectSkippingGo(body ast.Node, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			// Visit the call's arguments (evaluated on this stack) but not
			// the spawned function literal's body.
			for _, arg := range g.Call.Args {
				inspectSkippingGo(arg, visit)
			}
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// mutexOp recognizes m.Lock / m.RLock / m.Unlock / m.RUnlock calls on a
// sync.Mutex or sync.RWMutex and resolves the mutex's identity (field or
// variable object, so every instance path names the same lock).
func (c *checker) mutexOp(call *ast.CallExpr) (*types.Var, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, ""
	}
	if recv := receiverNamed(fn); recv != "Mutex" && recv != "RWMutex" {
		return nil, ""
	}
	return c.resolveVar(sel.X), fn.Name()
}

func receiverNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// resolveVar identifies the variable or field object behind a mutex
// expression (mu, s.mu, a.b.mu).
func (c *checker) resolveVar(x ast.Expr) *types.Var {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		v, _ := c.pass.TypesInfo.Uses[x].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel, ok := c.pass.TypesInfo.Selections[x]; ok {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
	}
	return nil
}

// calleeIn resolves a call to a function declared in this package.
func (c *checker) calleeIn(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	if _, ok := c.decls[fn]; !ok {
		return nil
	}
	return fn
}

// blockingCall names the blocking operation a call performs, or "".
func (c *checker) blockingCall(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	case "sync":
		if fn.Name() == "Wait" {
			return receiverNamed(fn) + ".Wait"
		}
	case "net":
		if fn.Name() == "Accept" {
			return "net Accept"
		}
	}
	return ""
}

// walker tracks the held-mutex set through one function body in statement
// order.
type walker struct {
	c *checker
	// held maps each held mutex to the display name it was locked under.
	held map[*types.Var]string
	// terminated marks a branch that returned/branched out; merges skip it.
	terminated bool
}

func (w *walker) clone() *walker {
	h := make(map[*types.Var]string, len(w.held))
	for k, v := range w.held {
		h[k] = v
	}
	return &walker{c: w.c, held: h}
}

// mergeBranches replaces held with the intersection of the surviving
// branches (plus none if every branch terminated — then the pre state
// passed as fallthrough applies).
func (w *walker) mergeBranches(branches []*walker, fallthroughState map[*types.Var]string) {
	var live []map[*types.Var]string
	for _, b := range branches {
		if !b.terminated {
			live = append(live, b.held)
		}
	}
	if fallthroughState != nil {
		live = append(live, fallthroughState)
	}
	if len(live) == 0 {
		w.terminated = true
		return
	}
	merged := make(map[*types.Var]string)
	for k, v := range live[0] {
		inAll := true
		for _, other := range live[1:] {
			if _, ok := other[k]; !ok {
				inAll = false
				break
			}
		}
		if inAll {
			merged[k] = v
		}
	}
	w.held = merged
}

func (w *walker) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		if w.terminated {
			return
		}
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r)
		}
		for _, l := range s.Lhs {
			w.expr(l)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
		w.blockingOp(s.Arrow, "channel send")
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.DeferStmt:
		// A deferred Unlock releases at return; for order tracking the lock
		// stays held through the remainder of the body, which is exactly
		// what leaving the held set untouched models. Other deferred calls
		// do not run here.
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			w.expr(arg)
		}
		// The spawned body runs on its own stack with nothing held.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			g := &walker{c: w.c, held: make(map[*types.Var]string)}
			g.block(lit.Body)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r)
		}
		w.terminated = true
	case *ast.BranchStmt:
		w.terminated = true
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		body := w.clone()
		body.block(s.Body)
		branches := []*walker{body}
		var fallthroughState map[*types.Var]string
		if s.Else != nil {
			els := w.clone()
			els.stmt(s.Else)
			branches = append(branches, els)
		} else {
			fallthroughState = w.held
		}
		w.mergeBranches(branches, fallthroughState)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		body := w.clone()
		body.block(s.Body)
		if s.Post != nil && !body.terminated {
			body.stmt(s.Post)
		}
		// Held set after a loop: conservative, what we held going in.
	case *ast.RangeStmt:
		w.expr(s.X)
		if t := w.c.pass.TypesInfo.Types[s.X].Type; t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				w.blockingOp(s.For, "channel receive (range)")
			}
		}
		body := w.clone()
		body.block(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		w.caseClauses(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.caseClauses(s.Body)
	case *ast.SelectStmt:
		// A select with a default clause never parks the goroutine.
		if !hasDefaultClause(s.Body) {
			w.blockingOp(s.Pos(), "select")
		}
		w.caseClauses(s.Body)
	case *ast.BlockStmt:
		w.block(s)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

// caseClauses walks each clause body on a clone and merges the survivors;
// the pre state rides along as the implicit no-case-taken path.
func (w *walker) caseClauses(body *ast.BlockStmt) {
	var branches []*walker
	for _, cc := range body.List {
		b := w.clone()
		switch cc := cc.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				b.expr(e)
			}
			for _, s := range cc.Body {
				if b.terminated {
					break
				}
				b.stmt(s)
			}
		case *ast.CommClause:
			// The comm statement's channel op is part of the select itself
			// (already reported, or non-blocking under a default clause), so
			// only the clause body is walked.
			for _, s := range cc.Body {
				if b.terminated {
					break
				}
				b.stmt(s)
			}
		}
		branches = append(branches, b)
	}
	w.mergeBranches(branches, w.held)
}

// expr walks an expression in evaluation order, handling calls and channel
// receives.
func (w *walker) expr(x ast.Expr) {
	switch x := x.(type) {
	case *ast.ParenExpr:
		w.expr(x.X)
	case *ast.UnaryExpr:
		w.expr(x.X)
		if x.Op == token.ARROW {
			w.blockingOp(x.OpPos, "channel receive")
		}
	case *ast.BinaryExpr:
		w.expr(x.X)
		w.expr(x.Y)
	case *ast.StarExpr:
		w.expr(x.X)
	case *ast.SelectorExpr:
		w.expr(x.X)
	case *ast.IndexExpr:
		w.expr(x.X)
		w.expr(x.Index)
	case *ast.SliceExpr:
		w.expr(x.X)
	case *ast.TypeAssertExpr:
		w.expr(x.X)
	case *ast.KeyValueExpr:
		w.expr(x.Value)
	case *ast.CompositeLit:
		for _, e := range x.Elts {
			w.expr(e)
		}
	case *ast.CallExpr:
		for _, a := range x.Args {
			w.expr(a)
		}
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			w.expr(sel.X)
		}
		w.call(x)
	case *ast.FuncLit:
		// A literal that is not (statically) invoked here: its body runs
		// later; analyzed separately only via go statements. Calls through
		// stored closures are beyond this checker.
	}
}

// call applies the lock semantics of one call with the current held set.
func (w *walker) call(call *ast.CallExpr) {
	c := w.c
	if mv, op := c.mutexOp(call); mv != nil {
		// mutexOp guarantees Fun is a selector; display the receiver chain
		// (s.mu), not the method.
		display := exprDisplay(ast.Unparen(call.Fun).(*ast.SelectorExpr).X)
		switch op {
		case "Lock", "RLock":
			if heldAs, ok := w.held[mv]; ok {
				c.pass.Reportf(call.Pos(), "%s acquired while %s is already held; sync mutexes are not reentrant — this deadlocks at runtime", display, heldAs)
				return
			}
			for hv, heldAs := range w.held {
				c.recordEdge(hv, mv, heldAs, display, call.Pos())
			}
			w.held[mv] = display
		case "Unlock", "RUnlock":
			delete(w.held, mv)
		}
		return
	}
	if b := c.blockingCall(call); b != "" {
		w.blockingOp(call.Pos(), b)
		return
	}
	if g := c.calleeIn(call); g != nil {
		display := exprDisplay(call.Fun)
		for hv, heldAs := range w.held {
			for acq := range c.acquires[g] {
				if acq == hv {
					c.pass.Reportf(call.Pos(), "call to %s (re)acquires %s, which is already held here; sync mutexes are not reentrant — this deadlocks at runtime", display, heldAs)
					continue
				}
				c.recordEdge(hv, acq, heldAs, display+"'s "+acq.Name(), call.Pos())
			}
			if c.blocks[g] {
				c.pass.Reportf(call.Pos(), "call to %s may block while %s is held; every contender for the lock stalls until it returns", display, heldAs)
			}
		}
	}
}

func (w *walker) blockingOp(pos token.Pos, what string) {
	for _, heldAs := range sortedHeld(w.held) {
		w.c.pass.Reportf(pos, "%s while %s is held; a blocked peer keeps the lock and stalls every contender", what, heldAs)
	}
}

// sortedHeld returns held display names in deterministic order.
func sortedHeld(held map[*types.Var]string) []string {
	var names []string
	for _, n := range held {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// recordEdge notes that `to` was acquired while `from` was held, keeping
// the first observation per ordered pair.
func (c *checker) recordEdge(from, to *types.Var, fromD, toD string, pos token.Pos) {
	key := [2]*types.Var{from, to}
	if prev, ok := c.edges[key]; ok && prev.pos <= pos {
		return
	}
	c.edges[key] = &edge{pos: pos, fromD: fromD, toD: toD}
}

// reportCycles reports each pair of mutexes acquired in both orders, once,
// anchored at the lexically earlier edge.
func (c *checker) reportCycles() {
	for key, e := range c.edges {
		rev, ok := c.edges[[2]*types.Var{key[1], key[0]}]
		if !ok {
			continue
		}
		if e.pos > rev.pos {
			continue // report from the earlier site only
		}
		other := c.pass.Fset.Position(rev.pos)
		c.pass.Reportf(e.pos, "inconsistent lock order: %s acquired while %s is held here, but the opposite order appears at %s; concurrent callers can deadlock", e.toD, e.fromD, other)
	}
}

// exprDisplay renders a (selector) expression for diagnostics: s.mu.Lock →
// "s.mu", srv.Close → "srv.Close".
func exprDisplay(x ast.Expr) string {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if base := exprDisplay(x.X); base != "" {
			// For mutex ops the interesting path is the receiver chain
			// without the method name; callers pass fun.X or fun as fits.
			return base + "." + x.Sel.Name
		}
		return x.Sel.Name
	}
	return "<expr>"
}
