// Package lockorder defines the repo-wide lock-acquisition checker. It walks
// each function in statement order tracking the set of held mutexes (via the
// shared heldset engine), follows same-package calls through transitive
// acquisition summaries and cross-package calls through exported facts, and
// reports three classes of deadlock risk the race detector can only find if a
// test happens to interleave badly:
//
//   - inconsistent order: mutex B acquired while A is held in one place and
//     A while B is held in another — including longer cycles assembled from
//     edges in several packages;
//   - re-entry: a mutex (re)acquired — directly or through a callee — while
//     already held (sync.Mutex is not reentrant);
//   - held-across-blocking: a blocking operation (channel send/receive,
//     select, sync.WaitGroup.Wait, net Accept, time.Sleep) reached with a
//     mutex held, stalling every contender for as long as the peer takes.
//
// Every lock is given a canonical name ("signaling.Server.mu",
// "obs.AuditLog.mu") so acquisition edges compose across packages: each
// package exports its accumulated edge set as a fact, downstream packages
// union it with their own edges, and cycle detection runs over the combined
// graph. The -lockgraph flag additionally emits every locally-recorded edge
// as a machine-parseable diagnostic, which the standalone driver's
// -format=dot mode assembles into a Graphviz dump of the whole-program lock
// graph.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"fafnet/internal/lint"
	"fafnet/internal/lint/heldset"
)

// emitGraph is set by the -lockgraph flag: emit one "lockgraph-edge: A -> B"
// diagnostic per locally-recorded acquisition edge.
var emitGraph bool

// EdgePrefix introduces the machine-parseable edge diagnostics emitted under
// -lockgraph; the driver's -format=dot mode filters and parses them.
const EdgePrefix = lint.LockGraphEdgePrefix

// Analyzer reports inconsistent mutex orderings and mutex-held blocking
// calls.
var Analyzer = &lint.Analyzer{
	Name: "lockorder",
	Doc: `flag inconsistent mutex acquisition orders and blocking calls under a lock

Across the whole module the analyzer tracks, per function and in statement
order, which sync.Mutex/RWMutex objects are held (keyed by field or variable
identity, so s.mu in one method and srv.mu in another are the same lock).
Same-package calls contribute their transitive acquisitions; calls into other
module packages contribute the acquisition and blocking facts those packages
exported. It reports opposite-order acquisition pairs (including multi-edge
cycles through the combined cross-package edge graph), re-entrant locking,
and channel operations, selects, WaitGroup.Wait, net Accept and time.Sleep
executed while a mutex is held. Branches merge conservatively (intersection),
and goroutine bodies start with an empty held set.`,
	Run:          run,
	ExportsFacts: true,
	FactTypes:    []string{"funcFact", "edgeFact"},
	Flags: []lint.BoolFlag{{
		Name:  "lockgraph",
		Usage: "emit lock-acquisition edges as diagnostics (used by -format=dot)",
		Value: &emitGraph,
	}},
}

// funcFact is the exported per-function summary: the canonical names of every
// mutex the function may (transitively) acquire, and whether it may block.
type funcFact struct {
	Acquires []string `json:"acquires,omitempty"`
	Blocks   bool     `json:"blocks,omitempty"`
}

// edgeFact is one acquisition-order edge in canonical names: To was acquired
// while From was held.
type edgeFact struct {
	From string `json:"from"`
	To   string `json:"to"`
}

func run(pass *lint.Pass) error {
	p := pass.Pkg.Path()
	if p != lint.ModulePath && !strings.HasPrefix(p, lint.ModulePath+"/") {
		return nil
	}
	c := &checker{
		pass:      pass,
		decls:     make(map[*types.Func]*ast.FuncDecl),
		acquires:  make(map[*types.Func]map[*types.Var]bool),
		acquiresX: make(map[*types.Func]map[string]bool),
		blocks:    make(map[*types.Func]bool),
		edges:     make(map[[2]string]*edge),
		imported:  make(map[[2]string]bool),
		canon:     make(map[*types.Var]string),
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					c.decls[fn] = fd
				}
			}
		}
	}
	c.importEdges()
	c.summarize()
	// Walk bodies in source order so the "first" edge per mutex pair is the
	// lexically earliest one, independent of map iteration order.
	var fds []*ast.FuncDecl
	for _, fd := range c.decls {
		fds = append(fds, fd)
	}
	sort.Slice(fds, func(i, j int) bool { return fds[i].Pos() < fds[j].Pos() })
	for _, fd := range fds {
		c.fnName = fd.Name.Name
		heldset.Walk(c.walkConfig(), fd.Body, nil)
	}
	c.reportCycles()
	c.exportFacts()
	if emitGraph {
		c.emitEdges()
	}
	return nil
}

// edge records one locally observed acquisition order: to was acquired while
// from was held.
type edge struct {
	pos        token.Pos
	fromD, toD string // display names at the recording site
}

type checker struct {
	pass  *lint.Pass
	decls map[*types.Func]*ast.FuncDecl

	// acquires is the transitive set of mutexes each same-package function
	// may lock; acquiresX the canonical names acquired through calls into
	// other module packages (known only by their exported facts); blocks
	// marks functions that may execute a blocking operation. All exclude
	// goroutine bodies (they run on their own stack, with their own held
	// set).
	acquires  map[*types.Func]map[*types.Var]bool
	acquiresX map[*types.Func]map[string]bool
	blocks    map[*types.Func]bool

	// edges holds locally recorded acquisition edges keyed by canonical name
	// pair; imported holds edges learned from dependency facts (no local
	// position).
	edges    map[[2]string]*edge
	imported map[[2]string]bool

	canon  map[*types.Var]string
	fnName string // function currently being walked, for local-lock names
}

// importEdges unions the edge sets every module dependency exported.
func (c *checker) importEdges() {
	for _, imp := range c.pass.Pkg.Imports() {
		path := imp.Path()
		if path != lint.ModulePath && !strings.HasPrefix(path, lint.ModulePath+"/") {
			continue
		}
		var edges []edgeFact
		if c.pass.ImportFact(path, "edges", &edges) {
			for _, e := range edges {
				c.imported[[2]string{e.From, e.To}] = true
			}
		}
	}
}

// shortPkg abbreviates a module package path for canonical lock names:
// fafnet/internal/signaling → signaling, fafnet/cmd/fafcacd → fafcacd.
func shortPkg(path string) string {
	for _, prefix := range []string{lint.ModulePath + "/internal/", lint.ModulePath + "/cmd/", lint.ModulePath + "/"} {
		if rest, ok := strings.CutPrefix(path, prefix); ok {
			return strings.ReplaceAll(rest, "/", ".")
		}
	}
	return path
}

// canonical names a mutex object stably across packages: pkg.Type.field for
// struct fields, pkg.var for package-level variables, pkg.func.var for
// locals (which cannot be referenced cross-package, but still appear in the
// lock graph).
func (c *checker) canonical(v *types.Var) string {
	if s, ok := c.canon[v]; ok {
		return s
	}
	s := c.computeCanonical(v)
	c.canon[v] = s
	return s
}

func (c *checker) computeCanonical(v *types.Var) string {
	pkg := v.Pkg()
	if pkg == nil {
		return v.Name()
	}
	short := shortPkg(pkg.Path())
	if v.IsField() {
		if owner := fieldOwner(pkg, v); owner != "" {
			return short + "." + owner + "." + v.Name()
		}
		return short + "." + v.Name()
	}
	if v.Parent() == pkg.Scope() {
		return short + "." + v.Name()
	}
	// A local: qualify with the enclosing function when known. Locals are
	// only ever named while walking their own package.
	if pkg == c.pass.Pkg && c.fnName != "" {
		return short + "." + c.fnName + "." + v.Name()
	}
	return short + "." + v.Name()
}

// fieldOwner finds the package-scope named struct type declaring field v.
func fieldOwner(pkg *types.Package, v *types.Var) string {
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return tn.Name()
			}
		}
	}
	return ""
}

// factFor looks up the exported summary of a function in another module
// package.
func (c *checker) factFor(fn *types.Func) (funcFact, bool) {
	pkg := fn.Pkg()
	if pkg == nil || pkg == c.pass.Pkg {
		return funcFact{}, false
	}
	path := pkg.Path()
	if path != lint.ModulePath && !strings.HasPrefix(path, lint.ModulePath+"/") {
		return funcFact{}, false
	}
	key := fn.Name()
	if recv := heldset.ReceiverNamed(fn); recv != "" {
		key = recv + "." + fn.Name()
	}
	var ff funcFact
	ok := c.pass.ImportFact(path, key, &ff)
	return ff, ok
}

// summarize computes direct acquisition/blocking facts per function, then
// closes them over the same-package call graph. Calls into other module
// packages contribute the canonical acquisitions and blocking flag from
// their exported facts.
func (c *checker) summarize() {
	info := c.pass.TypesInfo
	callees := make(map[*types.Func]map[*types.Func]bool)
	for fn, fd := range c.decls {
		acq := make(map[*types.Var]bool)
		acqX := make(map[string]bool)
		calls := make(map[*types.Func]bool)
		blocks := false
		heldset.InspectSkippingGo(fd.Body, func(n ast.Node) {
			switch n := n.(type) {
			case *ast.CallExpr:
				if mv, op := heldset.MutexOp(info, n); mv != nil && (op == "Lock" || op == "RLock") {
					acq[mv] = true
				} else if g := c.calleeIn(n); g != nil {
					calls[g] = true
				} else if ff, ok := c.importedCallee(n); ok {
					for _, a := range ff.Acquires {
						acqX[a] = true
					}
					if ff.Blocks {
						blocks = true
					}
				} else if heldset.BlockingCall(info, n) != "" {
					blocks = true
				}
			case *ast.SendStmt:
				blocks = true
			case *ast.SelectStmt:
				if !heldset.HasDefaultClause(n.Body) {
					blocks = true
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					blocks = true
				}
			}
		})
		c.acquires[fn] = acq
		c.acquiresX[fn] = acqX
		c.blocks[fn] = blocks
		callees[fn] = calls
	}
	for changed := true; changed; {
		changed = false
		for fn, calls := range callees {
			for g := range calls {
				for mv := range c.acquires[g] {
					if !c.acquires[fn][mv] {
						c.acquires[fn][mv] = true
						changed = true
					}
				}
				for a := range c.acquiresX[g] {
					if !c.acquiresX[fn][a] {
						c.acquiresX[fn][a] = true
						changed = true
					}
				}
				if c.blocks[g] && !c.blocks[fn] {
					c.blocks[fn] = true
					changed = true
				}
			}
		}
	}
}

// calleeIn resolves a call to a function declared in this package.
func (c *checker) calleeIn(call *ast.CallExpr) *types.Func {
	fn := calleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return nil
	}
	if _, ok := c.decls[fn]; !ok {
		return nil
	}
	return fn
}

// importedCallee resolves a call to a function in another module package and
// returns its exported summary, if any.
func (c *checker) importedCallee(call *ast.CallExpr) (funcFact, bool) {
	fn := calleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return funcFact{}, false
	}
	return c.factFor(fn)
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// walkConfig wires the shared held-set walker to this checker's reporting.
func (c *checker) walkConfig() *heldset.Config {
	return &heldset.Config{
		Info: c.pass.TypesInfo,
		OnReenter: func(call *ast.CallExpr, mv *types.Var, display, heldAs string) {
			c.pass.Reportf(call.Pos(), "%s acquired while %s is already held; sync mutexes are not reentrant — this deadlocks at runtime", display, heldAs)
		},
		OnAcquire: func(call *ast.CallExpr, mv *types.Var, display string, held heldset.Held) {
			for hv, heldAs := range held {
				c.recordEdge(c.canonical(hv), c.canonical(mv), heldAs, display, call.Pos())
			}
		},
		OnBlocking: func(pos token.Pos, what string, held heldset.Held) {
			for _, heldAs := range held.Sorted() {
				c.pass.Reportf(pos, "%s while %s is held; a blocked peer keeps the lock and stalls every contender", what, heldAs)
			}
		},
		OnCall: func(call *ast.CallExpr, held heldset.Held) {
			c.applyCallee(call, held)
		},
	}
}

// applyCallee applies a callee's (transitive) acquisition and blocking
// summary — from same-package declarations or cross-package facts — to the
// current held set.
func (c *checker) applyCallee(call *ast.CallExpr, held heldset.Held) {
	var (
		acqVars map[*types.Var]bool
		acqStrs map[string]bool
		blocks  bool
	)
	if g := c.calleeIn(call); g != nil {
		acqVars, acqStrs, blocks = c.acquires[g], c.acquiresX[g], c.blocks[g]
	} else if ff, ok := c.importedCallee(call); ok {
		acqStrs = make(map[string]bool, len(ff.Acquires))
		for _, a := range ff.Acquires {
			acqStrs[a] = true
		}
		blocks = ff.Blocks
	} else {
		return
	}
	display := heldset.ExprDisplay(call.Fun)
	for hv, heldAs := range held {
		hc := c.canonical(hv)
		for acq := range acqVars {
			if acq == hv {
				c.pass.Reportf(call.Pos(), "call to %s (re)acquires %s, which is already held here; sync mutexes are not reentrant — this deadlocks at runtime", display, heldAs)
				continue
			}
			c.recordEdge(hc, c.canonical(acq), heldAs, display+"'s "+acq.Name(), call.Pos())
		}
		for acq := range acqStrs {
			if acq == hc {
				c.pass.Reportf(call.Pos(), "call to %s (re)acquires %s, which is already held here; sync mutexes are not reentrant — this deadlocks at runtime", display, heldAs)
				continue
			}
			c.recordEdge(hc, acq, heldAs, acq, call.Pos())
		}
		if blocks {
			c.pass.Reportf(call.Pos(), "call to %s may block while %s is held; every contender for the lock stalls until it returns", display, heldAs)
		}
	}
}

// recordEdge notes that `to` was acquired while `from` was held, keeping
// the first observation per ordered pair.
func (c *checker) recordEdge(from, to string, fromD, toD string, pos token.Pos) {
	key := [2]string{from, to}
	if prev, ok := c.edges[key]; ok && prev.pos <= pos {
		return
	}
	c.edges[key] = &edge{pos: pos, fromD: fromD, toD: toD}
}

// reportCycles reports every acquisition cycle in the combined local +
// imported edge graph, once per cycle, anchored at the lexically earliest
// local edge. The two-edge case keeps the classic "opposite order" message;
// longer cycles — possible once edges compose across packages — spell out
// the path.
func (c *checker) reportCycles() {
	// Deterministic adjacency: sorted nodes, sorted successors.
	succ := make(map[string][]string)
	addEdge := func(from, to string) {
		succ[from] = append(succ[from], to)
	}
	for key := range c.edges {
		addEdge(key[0], key[1])
	}
	for key := range c.imported {
		if _, dup := c.edges[key]; !dup {
			addEdge(key[0], key[1])
		}
	}
	for _, tos := range succ {
		sort.Strings(tos)
	}

	var keys [][2]string
	for key := range c.edges {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		e := c.edges[key]
		path := shortestPath(succ, key[1], key[0])
		if path == nil {
			continue
		}
		// The full cycle is e plus the return path. Report it only from the
		// lexically earliest local edge so each cycle appears once.
		cycle := append([][2]string{key}, pairs(path)...)
		earliest := e.pos
		for _, ck := range cycle {
			if le, ok := c.edges[ck]; ok && le.pos < earliest {
				earliest = le.pos
			}
		}
		if earliest != e.pos {
			continue
		}
		if len(path) == 2 { // direct two-edge cycle: path is [to, from]
			rev := [2]string{key[1], key[0]}
			if le, ok := c.edges[rev]; ok {
				other := c.pass.Fset.Position(le.pos)
				c.pass.Reportf(e.pos, "inconsistent lock order: %s acquired while %s is held here, but the opposite order appears at %s; concurrent callers can deadlock", e.toD, e.fromD, other)
			} else {
				c.pass.Reportf(e.pos, "inconsistent lock order: %s acquired while %s is held here, but the opposite order is established in a dependency package (%s -> %s); concurrent callers can deadlock", e.toD, e.fromD, key[1], key[0])
			}
			continue
		}
		c.pass.Reportf(e.pos, "lock-order cycle: %s -> %s; concurrent callers can deadlock", key[0], strings.Join(path, " -> "))
	}
}

// shortestPath returns the node sequence from `from` to `to` (inclusive of
// both) over succ, or nil. BFS over sorted successors keeps it deterministic.
func shortestPath(succ map[string][]string, from, to string) []string {
	if from == to {
		return []string{from}
	}
	prev := map[string]string{from: ""}
	queue := []string{from}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range succ[n] {
			if _, seen := prev[m]; seen {
				continue
			}
			prev[m] = n
			if m == to {
				var path []string
				for at := to; at != ""; at = prev[at] {
					path = append(path, at)
					if at == from {
						break
					}
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, m)
		}
	}
	return nil
}

// pairs converts a node path to its edge list.
func pairs(path []string) [][2]string {
	var out [][2]string
	for i := 0; i+1 < len(path); i++ {
		out = append(out, [2]string{path[i], path[i+1]})
	}
	return out
}

// exportFacts publishes the per-function acquisition summaries (exported
// functions and methods on exported types only — nothing else is callable
// from downstream packages) and the package's accumulated edge set.
func (c *checker) exportFacts() {
	var fns []*types.Func
	for fn := range c.decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Name() < fns[j].Name() })
	for _, fn := range fns {
		if !fn.Exported() {
			continue
		}
		key := fn.Name()
		if recv := heldset.ReceiverNamed(fn); recv != "" {
			if !token.IsExported(recv) {
				continue
			}
			key = recv + "." + fn.Name()
		}
		var acq []string
		for mv := range c.acquires[fn] {
			acq = append(acq, c.canonical(mv))
		}
		for a := range c.acquiresX[fn] {
			acq = append(acq, a)
		}
		acq = dedupeSorted(acq)
		if len(acq) == 0 && !c.blocks[fn] {
			continue
		}
		_ = c.pass.ExportFact(key, funcFact{Acquires: acq, Blocks: c.blocks[fn]})
	}

	all := make(map[[2]string]bool, len(c.edges)+len(c.imported))
	for key := range c.edges {
		all[key] = true
	}
	for key := range c.imported {
		all[key] = true
	}
	if len(all) == 0 {
		return
	}
	var out []edgeFact
	for key := range all {
		out = append(out, edgeFact{From: key[0], To: key[1]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	_ = c.pass.ExportFact("edges", out)
}

func dedupeSorted(ss []string) []string {
	sort.Strings(ss)
	var out []string
	for _, s := range ss {
		if len(out) == 0 || out[len(out)-1] != s {
			out = append(out, s)
		}
	}
	return out
}

// emitEdges reports every locally-recorded edge as a machine-parseable
// diagnostic for the driver's -format=dot mode.
func (c *checker) emitEdges() {
	var keys [][2]string
	for key := range c.edges {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		c.pass.Reportf(c.edges[key].pos, "%s%s -> %s", EdgePrefix, key[0], key[1])
	}
}
