package lockorder_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
	"testing"

	"fafnet/internal/lint"
	"fafnet/internal/lint/facts"
	"fafnet/internal/lint/lockorder"
)

// edgeFact mirrors lockorder's exported edge shape for assertions.
type edgeFact struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// funcFact mirrors lockorder's exported per-function summary.
type funcFact struct {
	Acquires []string `json:"acquires,omitempty"`
	Blocks   bool     `json:"blocks,omitempty"`
}

// checkDir typechecks the sources in dir as pkgPath — resolving module
// imports from deps — and runs lockorder with the given imported fact files.
func checkDir(t *testing.T, dir, pkgPath string, deps map[string]*types.Package, imported map[string]facts.File) ([]lint.Diagnostic, facts.File, *types.Package) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no sources under %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, path := range matches {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		files = append(files, f)
	}
	std := importer.ForCompiler(fset, "source", nil)
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if p, ok := deps[path]; ok {
				return p, nil
			}
			return std.Import(path)
		}),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}
	diags, exported, err := lint.Run(fset, files, pkg, info, []*lint.Analyzer{lockorder.Analyzer}, imported)
	if err != nil {
		t.Fatal(err)
	}
	return diags, exported, pkg
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// TestCrossPackageFacts drives the facts protocol end to end: package a
// exports acquisition/blocking summaries, package b consumes them, records
// cross-package edges, and completes a cycle against an edge imported from
// a's fact file.
func TestCrossPackageFacts(t *testing.T) {
	const aPath = "fafnet/internal/afake"
	const bPath = "fafnet/internal/bfake"

	aDiags, aFacts, aPkg := checkDir(t, "testdata/facts/a", aPath, nil, nil)
	if len(aDiags) != 0 {
		t.Fatalf("package a should be clean, got %v", aDiags)
	}
	var grab funcFact
	if !aFacts.Get("lockorder", "Grab", &grab) {
		t.Fatal("no exported fact for Grab")
	}
	if len(grab.Acquires) != 1 || grab.Acquires[0] != "afake.M" || grab.Blocks {
		t.Errorf("Grab fact = %+v, want acquires [afake.M], no blocking", grab)
	}
	var park funcFact
	if !aFacts.Get("lockorder", "Park", &park) {
		t.Fatal("no exported fact for Park")
	}
	if !park.Blocks {
		t.Errorf("Park fact = %+v, want blocks", park)
	}

	// Plant the reverse edge in a's fact file, as if some package a depends
	// on had already established M-before-mu; b's local mu-before-M edge
	// must then close the cycle.
	if err := aFacts.Set("lockorder", "edges", []edgeFact{{From: "afake.M", To: "bfake.mu"}}); err != nil {
		t.Fatal(err)
	}

	bDiags, bFacts, _ := checkDir(t, "testdata/facts/b", bPath,
		map[string]*types.Package{aPath: aPkg},
		map[string]facts.File{aPath: aFacts})

	wantSubstrings := []string{
		"call to a.Park may block while mu is held",
		"call to a.Grab (re)acquires a.M, which is already held",
		"opposite order is established in a dependency package (afake.M -> bfake.mu)",
	}
	for _, want := range wantSubstrings {
		found := false
		for _, d := range bDiags {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing diagnostic containing %q in %v", want, bDiags)
		}
	}

	var edges []edgeFact
	if !bFacts.Get("lockorder", "edges", &edges) {
		t.Fatal("package b exported no edge fact")
	}
	want := map[edgeFact]bool{
		{From: "bfake.mu", To: "afake.M"}: true, // recorded locally
		{From: "afake.M", To: "bfake.mu"}: true, // inherited from a
	}
	for _, e := range edges {
		delete(want, e)
	}
	if len(want) != 0 {
		t.Errorf("package b's edge fact %v is missing %v", edges, want)
	}

	var underLock funcFact
	if !bFacts.Get("lockorder", "UnderLock", &underLock) {
		t.Fatal("no exported fact for UnderLock")
	}
	if !underLock.Blocks {
		t.Errorf("UnderLock fact = %+v, want blocks (inherited from Park)", underLock)
	}
	got := strings.Join(underLock.Acquires, ",")
	if !strings.Contains(got, "afake.M") || !strings.Contains(got, "bfake.mu") {
		t.Errorf("UnderLock acquires = %v, want both afake.M and bfake.mu", underLock.Acquires)
	}
}
