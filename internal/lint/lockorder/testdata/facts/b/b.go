// Package b is the downstream half of the cross-package facts test: it calls
// into package a under its own lock, which lockorder must flag using only
// a's exported facts.
package b

import (
	"sync"

	a "fafnet/internal/afake"
)

var mu sync.Mutex

// UnderLock calls into package a with the local lock held: Grab records the
// cross-package acquisition edge, Park blocks under the lock.
func UnderLock() {
	mu.Lock()
	a.Grab()
	a.Park()
	mu.Unlock()
}

// Reenter re-acquires a.M through Grab while already holding it directly.
func Reenter() {
	a.M.Lock()
	a.Grab()
	a.M.Unlock()
}
