// Package a is the upstream half of the cross-package facts test: it owns an
// exported mutex and exports functions whose acquisition/blocking behavior
// downstream packages can only learn through lockorder's facts.
package a

import "sync"

// M is the package lock.
var M sync.Mutex

// Grab takes and releases the package lock.
func Grab() {
	M.Lock()
	M.Unlock()
}

// Park blocks on a WaitGroup.
func Park() {
	var wg sync.WaitGroup
	wg.Wait()
}
