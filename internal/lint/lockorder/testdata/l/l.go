// Package l exercises the lockorder analyzer: inconsistent acquisition
// orders, re-entrant locking, and blocking operations under a held mutex.
package l

import (
	"sync"
	"time"
)

// Server models the signaling server's shutdown hazard: Close holding mu
// across wg.Wait deadlocks if an in-flight handler needs mu to finish.
type Server struct {
	mu sync.Mutex
	wg sync.WaitGroup
	n  int
}

func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wg.Wait() // want `WaitGroup\.Wait while s\.mu is held`
}

// CloseOK releases the lock before waiting — the sanctioned shape.
func (s *Server) CloseOK() {
	s.mu.Lock()
	s.n = 0
	s.mu.Unlock()
	s.wg.Wait()
}

type pair struct {
	a, b sync.Mutex
	ch   chan int
}

func (p *pair) lockAB() {
	p.a.Lock()
	p.b.Lock() // want `inconsistent lock order: p\.b acquired while p\.a is held here, but the opposite order appears at`
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) lockBA() {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}

func (p *pair) recurse() {
	p.a.Lock()
	p.a.Lock() // want `p\.a acquired while p\.a is already held`
	p.a.Unlock()
	p.a.Unlock()
}

func (p *pair) sendHeld() {
	p.a.Lock()
	p.ch <- 1 // want `channel send while p\.a is held`
	p.a.Unlock()
}

func (p *pair) recvHeld() {
	p.a.Lock()
	<-p.ch // want `channel receive while p\.a is held`
	p.a.Unlock()
}

func (p *pair) selectHeld() {
	p.a.Lock()
	select { // want `select while p\.a is held`
	case <-p.ch:
	case p.ch <- 1:
	}
	p.a.Unlock()
}

// trySend is fine: a select with a default clause never parks.
func (p *pair) trySend(v int) bool {
	p.a.Lock()
	defer p.a.Unlock()
	select {
	case p.ch <- v:
		return true
	default:
		return false
	}
}

func (p *pair) sleepDirect() {
	p.a.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while p\.a is held`
	p.a.Unlock()
}

func helperLockB(p *pair) {
	p.b.Lock()
	p.b.Unlock()
}

// viaCall re-records the a-then-b order through a callee summary; it is the
// same order as lockAB, so no extra report here.
func viaCall(p *pair) {
	p.a.Lock()
	helperLockB(p)
	p.a.Unlock()
}

func helperLockA(p *pair) {
	p.a.Lock()
	p.a.Unlock()
}

func reenter(p *pair) {
	p.a.Lock()
	helperLockA(p) // want `call to helperLockA \(re\)acquires p\.a, which is already held`
	p.a.Unlock()
}

func sleeper() {
	time.Sleep(time.Millisecond)
}

func sleepHeld(p *pair) {
	p.a.Lock()
	sleeper() // want `call to sleeper may block while p\.a is held`
	p.a.Unlock()
}

// branches releases on every path before the receive; the held sets merge
// by intersection, so nothing is reported.
func branches(p *pair, cond bool) {
	p.a.Lock()
	if cond {
		p.a.Unlock()
		return
	}
	p.a.Unlock()
	<-p.ch
}

// spawn's goroutine runs on its own stack with nothing held.
func spawn(p *pair) {
	p.a.Lock()
	go func() {
		<-p.ch
	}()
	p.a.Unlock()
}

// badCloser is the shutdown hazard that lived in signaling's race_test.go
// behind a committed baseline waiver through PR 5: Close holds mu across
// wg.Wait, so a worker that needs mu to finish can never let Wait return.
// It is a want-test now — the analyzer must catch it without a waiver.
type badCloser struct {
	mu sync.Mutex
	wg sync.WaitGroup
	n  int
}

func (b *badCloser) finishWorker() {
	defer b.wg.Done()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func (b *badCloser) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.wg.Wait() // want `WaitGroup\.Wait while b\.mu is held`
}

type cache struct {
	rw sync.RWMutex
	m  map[string]int
}

// get uses a deferred RUnlock over pure map reads — clean.
func (c *cache) get(k string) int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.m[k]
}
