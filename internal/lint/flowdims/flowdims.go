// Package flowdims defines the interprocedural half of the unit-dimension
// analysis: where unitcheck sees only what identifier names declare locally,
// flowdims propagates the dims lattice through function bodies, signatures,
// struct fields and — via per-package fact files (the unitchecker facts
// protocol) — across package boundaries. A function whose name says nothing
// about units but whose body demonstrably returns seconds gets a summary;
// storing its result into a *Bits variable three packages away is then a
// finding at the store site.
//
// The analysis stays conservative in the same way dims does: a dimension is
// attached to a parameter, result or field only when every observed use
// agrees on it. Conflicting evidence drops the object back to Unknown, and
// flowdims only ever reports where name-based unitcheck is blind, so the two
// analyzers never duplicate a diagnostic on the same expression.
package flowdims

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fafnet/internal/lint"
	"fafnet/internal/lint/dims"
)

// Analyzer propagates unit dimensions through signatures, returns, fields
// and package boundaries.
var Analyzer = &lint.Analyzer{
	Name: "flowdims",
	Doc: `propagate unit dimensions across functions, fields and packages

flowdims builds a per-function summary — the dimension of each float64
parameter and result — from three evidence sources: the identifier names the
dims conventions already recognize, the dimensions of returned expressions,
and how parameters and struct fields are used (added to a known quantity,
passed to a unit-named parameter, stored under a unit-named variable).
Summaries of exported functions and fields are written to the package's fact
file and imported by downstream packages, so a bits-per-second value flowing
into a seconds slot is flagged at the call or store site anywhere in the
module. Conflicting evidence demotes an object to Unknown rather than
guessing; findings are only raised where the purely name-based unitcheck
analyzer cannot see the mismatch.`,
	Run:          run,
	ExportsFacts: true,
	FactTypes:    []string{"objFact"},
}

// spec is what the analysis knows about one float parameter, result or
// field.
type spec struct {
	// Known reports whether a dimension was established.
	Known bool `json:"known"`
	// Named reports the dimension is derivable from the identifier name
	// alone; such specs are never exported (downstream dims inference
	// recovers them from the name) and never reported on (unitcheck owns
	// name-declared mismatches).
	Named bool `json:"named,omitempty"`
	// T and B are the dims.Dim exponents.
	T int8 `json:"t,omitempty"`
	B int8 `json:"b,omitempty"`
}

func (s *spec) dim() dims.Dim { return dims.Dim{T: s.T, B: s.B} }

func (s *spec) setDim(d dims.Dim, named bool) {
	s.Known, s.Named, s.T, s.B = true, named, d.T, d.B
}

// objFact is the serialized fact for one exported object: a function or
// method (Params/Results) or a struct field (Field).
type objFact struct {
	Params  []spec `json:"params,omitempty"`
	Results []spec `json:"results,omitempty"`
	Field   *spec  `json:"field,omitempty"`
}

// summary is the in-memory per-function record.
type summary struct {
	params  []*spec
	results []*spec
}

// fieldInfo tracks one struct field declared in the current package.
type fieldInfo struct {
	key      string // "Type.Field" fact key
	exported bool   // both type and field name are exported
	spec     *spec
}

type engine struct {
	pass *lint.Pass
	info *types.Info

	funcs  map[*types.Func]*summary
	decls  map[*types.Func]*ast.FuncDecl
	params map[*types.Var]*spec
	fields map[*types.Var]*fieldInfo

	// frozen marks specs established by names or strong evidence before the
	// weak-constraint round; weak evidence (a suspect comparison is exactly
	// what the checker flags) can neither override nor poison them.
	frozen map[*spec]bool
}

func run(pass *lint.Pass) error {
	e := &engine{
		pass:   pass,
		info:   pass.TypesInfo,
		funcs:  make(map[*types.Func]*summary),
		decls:  make(map[*types.Func]*ast.FuncDecl),
		params: make(map[*types.Var]*spec),
		fields: make(map[*types.Var]*fieldInfo),
		frozen: make(map[*spec]bool),
	}
	e.collect()
	e.constrain()
	e.inferReturns()
	e.check()
	return e.export()
}

// ----- phase 1: collect declarations, seed specs from names -----

func (e *engine) collect() {
	for _, f := range e.pass.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				e.collectFunc(decl)
			case *ast.GenDecl:
				if decl.Tok == token.TYPE {
					for _, s := range decl.Specs {
						if ts, ok := s.(*ast.TypeSpec); ok {
							e.collectFields(ts)
						}
					}
				}
			}
		}
	}
}

func (e *engine) collectFunc(decl *ast.FuncDecl) {
	fn, ok := e.info.Defs[decl.Name].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	sum := &summary{}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		s := &spec{}
		if dims.IsFloat(p.Type()) {
			if d, ok := dims.FromName(p.Name()); ok {
				s.setDim(d, true)
			} else {
				e.params[p] = s
			}
		}
		sum.params = append(sum.params, s)
	}
	for i := 0; i < sig.Results().Len(); i++ {
		r := sig.Results().At(i)
		s := &spec{}
		if dims.IsFloat(r.Type()) {
			if d, ok := dims.FromName(r.Name()); ok {
				s.setDim(d, true)
			} else if d, ok := dims.FromName(fn.Name()); ok && sig.Results().Len() == 1 {
				// A unit-named function (LongTermRate, WalkDelay): the name
				// covers its single result, and dims.ofCall already infers
				// this downstream.
				s.setDim(d, true)
			}
		}
		sum.results = append(sum.results, s)
	}
	e.funcs[fn] = sum
	e.decls[fn] = decl
}

func (e *engine) collectFields(ts *ast.TypeSpec) {
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return
	}
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			v, ok := e.info.Defs[name].(*types.Var)
			if !ok || !dims.IsFloat(v.Type()) {
				continue
			}
			fi := &fieldInfo{
				key:      ts.Name.Name + "." + name.Name,
				exported: ast.IsExported(ts.Name.Name) && ast.IsExported(name.Name),
				spec:     &spec{},
			}
			if d, ok := dims.FromName(name.Name); ok {
				fi.spec.setDim(d, true)
			}
			e.fields[v] = fi
		}
	}
}

// ----- phase 2: unify usage constraints onto params and fields -----

// target returns the spec slot for expressions whose dimension the analysis
// is still trying to learn: a bare parameter identifier or a selector of a
// package-local struct field, with no name-declared dimension.
func (e *engine) target(x ast.Expr) *spec {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		v, ok := e.info.Uses[x].(*types.Var)
		if !ok {
			return nil
		}
		if s, ok := e.params[v]; ok {
			return s
		}
		return e.fieldSpecOf(v)
	case *ast.SelectorExpr:
		sel, ok := e.info.Selections[x]
		if !ok {
			return nil
		}
		v, ok := sel.Obj().(*types.Var)
		if !ok {
			return nil
		}
		return e.fieldSpecOf(v)
	}
	return nil
}

func (e *engine) fieldSpecOf(v *types.Var) *spec {
	fi, ok := e.fields[v]
	if !ok || fi.spec.Named {
		return nil
	}
	return fi.spec
}

// learn records the evidence that s carries dimension d. Disagreeing
// evidence poisons the spec back to Unknown permanently; frozen specs
// (established by a name or by strong evidence) ignore weak evidence
// entirely — a mismatched use of a frozen spec is a finding, not a lesson.
func (e *engine) learn(s *spec, d dims.Dim) {
	if s == nil || s.Named || e.frozen[s] {
		return
	}
	if s.Known && s.dim() != d {
		s.Known = false
		s.Named = true // poisoned: Named without Known blocks further learning and reporting
		return
	}
	if !s.Known {
		s.setDim(d, false)
	}
}

// constrain runs two evidence rounds. Strong evidence — stores, call
// arguments against unit-named parameters, returns against unit-named
// results — states intent and is gathered first. Weak evidence — arithmetic
// and comparisons — fills remaining gaps only: a buggy `window > sigmaBits`
// comparison must produce a finding against the strongly-established
// dimension, not silently re-teach it.
func (e *engine) constrain() {
	for _, f := range e.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				e.constrainCall(n)
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						e.constrainStore(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						e.constrainStore(n.Names[i], n.Values[i])
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						e.constrainStore(kv.Key, kv.Value)
					}
				}
			case *ast.FuncDecl:
				e.constrainReturns(n)
			}
			return true
		})
	}
	for _, s := range e.params {
		if s.Known {
			e.frozen[s] = true
		}
	}
	for _, fi := range e.fields {
		if fi.spec.Known {
			e.frozen[fi.spec] = true
		}
	}
	for _, f := range e.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if b, ok := n.(*ast.BinaryExpr); ok {
				e.constrainBinary(b)
			}
			return true
		})
	}
}

// constrainBinary: a still-unknown operand added to, subtracted from or
// compared against a known physical quantity must share its dimension.
func (e *engine) constrainBinary(b *ast.BinaryExpr) {
	switch b.Op {
	case token.ADD, token.SUB,
		token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
	default:
		return
	}
	xd, xk := dims.OfExpr(e.info, b.X)
	yd, yk := dims.OfExpr(e.info, b.Y)
	if xk == dims.Physical && yk == dims.Unknown {
		e.learn(e.target(b.Y), xd)
	}
	if yk == dims.Physical && xk == dims.Unknown {
		e.learn(e.target(b.X), yd)
	}
}

// constrainCall: passing a still-unknown value to a unit-named parameter
// pins its dimension.
func (e *engine) constrainCall(call *ast.CallExpr) {
	sig := calleeSignature(e.info, call)
	if sig == nil || sig.Variadic() || sig.Params().Len() != len(call.Args) {
		return
	}
	for i, arg := range call.Args {
		pd, ok := dims.FromName(sig.Params().At(i).Name())
		if !ok {
			continue
		}
		if _, k := dims.OfExpr(e.info, arg); k == dims.Unknown {
			e.learn(e.target(arg), pd)
		}
	}
}

// constrainStore propagates dimensions both ways across an assignment: a
// known value teaches an unknown destination field, and a unit-named
// destination teaches an unknown source.
func (e *engine) constrainStore(dst, src ast.Expr) {
	sd, sk := dims.OfExpr(e.info, src)
	if sk == dims.Physical {
		e.learn(e.target(dst), sd)
	}
	var dstName string
	switch d := dst.(type) {
	case *ast.Ident:
		dstName = d.Name
	case *ast.SelectorExpr:
		dstName = d.Sel.Name
	default:
		return
	}
	if dd, ok := dims.FromName(dstName); ok && sk == dims.Unknown {
		e.learn(e.target(src), dd)
	}
}

// constrainReturns: returning a still-unknown parameter or field from a
// function whose result dimension is name-declared pins it.
func (e *engine) constrainReturns(decl *ast.FuncDecl) {
	fn, ok := e.info.Defs[decl.Name].(*types.Func)
	if !ok {
		return
	}
	sum := e.funcs[fn]
	if sum == nil || decl.Body == nil {
		return
	}
	forEachReturn(decl.Body, func(ret *ast.ReturnStmt) {
		if len(ret.Results) != len(sum.results) {
			return
		}
		for i, res := range ret.Results {
			s := sum.results[i]
			if !s.Known || !s.Named {
				continue
			}
			if _, k := dims.OfExpr(e.info, res); k == dims.Unknown {
				e.learn(e.target(res), s.dim())
			}
		}
	})
}

// forEachReturn visits the return statements belonging to body itself,
// skipping nested function literals (their returns answer a different
// signature).
func forEachReturn(body *ast.BlockStmt, fn func(*ast.ReturnStmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			fn(n)
		}
		return true
	})
}

// ----- phase 3: infer result dimensions from return expressions -----

// inferReturns fills result specs that names did not declare by agreeing
// return expressions, iterating so chains of unnamed functions (f returns
// g()) converge.
func (e *engine) inferReturns() {
	for iter := 0; iter < 3; iter++ {
		changed := false
		for fn, sum := range e.funcs {
			decl := e.decls[fn]
			if decl.Body == nil {
				continue
			}
			for i, s := range sum.results {
				if s.Known || s.Named {
					continue // already established, or poisoned
				}
				d, ok := e.commonReturnDim(decl, sum, i)
				if ok {
					s.setDim(d, false)
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}

// commonReturnDim reports the dimension shared by every return expression
// for result index i, if all of them are Physical and agree.
func (e *engine) commonReturnDim(decl *ast.FuncDecl, sum *summary, i int) (dims.Dim, bool) {
	var d dims.Dim
	found, consistent := false, true
	forEachReturn(decl.Body, func(ret *ast.ReturnStmt) {
		if !consistent || len(ret.Results) != len(sum.results) {
			consistent = consistent && len(ret.Results) == len(sum.results)
			return
		}
		rd, rk := e.ofExpr(ret.Results[i])
		if rk != dims.Physical {
			consistent = false
			return
		}
		if found && rd != d {
			consistent = false
			return
		}
		d, found = rd, true
	})
	return d, found && consistent
}

// ----- flow-aware inference -----

// ofExpr mirrors dims.OfExpr but consults function summaries, imported
// facts and learned field dimensions wherever the name-based engine gives
// up.
func (e *engine) ofExpr(x ast.Expr) (dims.Dim, dims.Kind) {
	switch x := x.(type) {
	case *ast.ParenExpr:
		return e.ofExpr(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.SUB || x.Op == token.ADD {
			return e.ofExpr(x.X)
		}
	case *ast.BinaryExpr:
		return e.ofBinary(x)
	case *ast.IndexExpr:
		return e.ofExpr(x.X)
	case *ast.CallExpr:
		if d, k, ok := e.callResult(x); ok {
			return d, k
		}
	case *ast.Ident:
		if v, ok := e.info.Uses[x].(*types.Var); ok {
			if d, ok := e.learned(v); ok {
				return d, dims.Physical
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := e.info.Selections[x]; ok {
			if v, ok := sel.Obj().(*types.Var); ok {
				if d, ok := e.learned(v); ok {
					return d, dims.Physical
				}
				if d, ok := e.importedFieldDim(x, v); ok {
					return d, dims.Physical
				}
			}
		}
	}
	return dims.OfExpr(e.info, x)
}

func (e *engine) ofBinary(b *ast.BinaryExpr) (dims.Dim, dims.Kind) {
	ld, lk := e.ofExpr(b.X)
	rd, rk := e.ofExpr(b.Y)
	switch b.Op {
	case token.ADD, token.SUB:
		if lk == dims.Physical {
			return ld, dims.Physical
		}
		if rk == dims.Physical {
			return rd, dims.Physical
		}
		if lk == dims.Scalar && rk == dims.Scalar {
			return dims.Dim{}, dims.Scalar
		}
	case token.MUL:
		if lk == dims.Unknown || rk == dims.Unknown {
			return dims.Dim{}, dims.Unknown
		}
		return dims.Dim{T: ld.T + rd.T, B: ld.B + rd.B}, maxKind(lk, rk)
	case token.QUO:
		if lk == dims.Unknown || rk == dims.Unknown {
			return dims.Dim{}, dims.Unknown
		}
		return dims.Dim{T: ld.T - rd.T, B: ld.B - rd.B}, maxKind(lk, rk)
	}
	return dims.Dim{}, dims.Unknown
}

func maxKind(a, b dims.Kind) dims.Kind {
	if a == dims.Physical || b == dims.Physical {
		return dims.Physical
	}
	return dims.Scalar
}

// learned reports the flow-established (not name-declared) dimension of a
// local parameter or field object.
func (e *engine) learned(v *types.Var) (dims.Dim, bool) {
	if s, ok := e.params[v]; ok && s.Known && !s.Named {
		return s.dim(), true
	}
	if fi, ok := e.fields[v]; ok && fi.spec.Known && !fi.spec.Named {
		return fi.spec.dim(), true
	}
	return dims.Dim{}, false
}

// importedFieldDim resolves a cross-package field's exported dimension fact.
func (e *engine) importedFieldDim(sel *ast.SelectorExpr, v *types.Var) (dims.Dim, bool) {
	if v.Pkg() == nil || v.Pkg() == e.pass.Pkg || !inModule(v.Pkg().Path()) {
		return dims.Dim{}, false
	}
	named := receiverTypeName(e.info.Types[sel.X].Type)
	if named == "" {
		return dims.Dim{}, false
	}
	var fact objFact
	if !e.pass.ImportFact(v.Pkg().Path(), named+"."+v.Name(), &fact) || fact.Field == nil || !fact.Field.Known {
		return dims.Dim{}, false
	}
	return fact.Field.dim(), true
}

// callResult resolves a call's single-result dimension through the callee's
// summary (same package) or imported fact (other module packages).
func (e *engine) callResult(call *ast.CallExpr) (dims.Dim, dims.Kind, bool) {
	fn := calleeFunc(e.info, call)
	if fn == nil {
		return dims.Dim{}, 0, false
	}
	fact, ok := e.factFor(fn)
	if !ok || len(fact.Results) != 1 || !fact.Results[0].Known {
		return dims.Dim{}, 0, false
	}
	return fact.Results[0].dim(), dims.Physical, true
}

// factFor returns the summary of fn as an objFact, from the local summary
// table or from the defining package's fact file.
func (e *engine) factFor(fn *types.Func) (objFact, bool) {
	if sum, ok := e.funcs[fn]; ok {
		var fact objFact
		for _, p := range sum.params {
			fact.Params = append(fact.Params, *p)
		}
		for _, r := range sum.results {
			fact.Results = append(fact.Results, *r)
		}
		return fact, true
	}
	if fn.Pkg() == nil || fn.Pkg() == e.pass.Pkg || !inModule(fn.Pkg().Path()) {
		return objFact{}, false
	}
	var fact objFact
	if !e.pass.ImportFact(fn.Pkg().Path(), factKey(fn), &fact) {
		return objFact{}, false
	}
	return fact, true
}

// ----- phase 4: checks -----

func (e *engine) check() {
	for _, f := range e.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				e.checkBinary(n)
			case *ast.CallExpr:
				e.checkCall(n)
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						e.checkStore(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						e.checkStore(n.Names[i], n.Values[i])
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						e.checkStore(kv.Key, kv.Value)
					}
				}
			case *ast.FuncDecl:
				e.checkReturns(n)
			}
			return true
		})
	}
}

// checkBinary reports cross-dimension addition/subtraction/comparison that
// only the flow-aware engine can see (unitcheck owns the case where both
// operand names declare their dimensions).
func (e *engine) checkBinary(b *ast.BinaryExpr) {
	switch b.Op {
	case token.ADD, token.SUB,
		token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
	default:
		return
	}
	ld, lk := e.ofExpr(b.X)
	rd, rk := e.ofExpr(b.Y)
	if lk != dims.Physical || rk != dims.Physical || ld == rd {
		return
	}
	bld, blk := dims.OfExpr(e.info, b.X)
	brd, brk := dims.OfExpr(e.info, b.Y)
	if blk == dims.Physical && brk == dims.Physical && bld != brd {
		return // unitcheck reports this one
	}
	pass := e.pass
	pass.Reportf(b.OpPos, "cross-dimension %s via dataflow: %s %s %s", describeOp(b.Op), ld, b.Op, rd)
}

func describeOp(op token.Token) string {
	switch op {
	case token.ADD:
		return "addition"
	case token.SUB:
		return "subtraction"
	default:
		return "comparison"
	}
}

// checkCall reports arguments whose flow-established dimension contradicts
// the callee parameter's dimension, where either side is invisible to the
// name-based check.
func (e *engine) checkCall(call *ast.CallExpr) {
	fn := calleeFunc(e.info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Variadic() || sig.Params().Len() != len(call.Args) {
		return
	}
	fact, ok := e.factFor(fn)
	if !ok || len(fact.Params) != len(call.Args) {
		return
	}
	for i, arg := range call.Args {
		p := fact.Params[i]
		if !p.Known {
			continue
		}
		ad, ak := e.ofExpr(arg)
		if ak != dims.Physical || ad == p.dim() {
			continue
		}
		// unitcheck already compares name-inferred argument dimensions
		// against name-declared parameters; skip exactly that overlap.
		_, bk := dims.OfExpr(e.info, arg)
		if p.Named && bk == dims.Physical {
			continue
		}
		e.pass.Reportf(arg.Pos(), "argument flows %s into parameter %q of %s, which carries %s",
			ad, sig.Params().At(i).Name(), fn.Name(), p.dim())
	}
}

// checkStore reports a flow-established dimension stored under a name that
// declares a different one.
func (e *engine) checkStore(dst, src ast.Expr) {
	var name string
	switch dst := dst.(type) {
	case *ast.Ident:
		name = dst.Name
	case *ast.SelectorExpr:
		name = dst.Sel.Name
	default:
		return
	}
	dd, ok := dims.FromName(name)
	if !ok {
		return
	}
	sd, sk := e.ofExpr(src)
	if sk != dims.Physical || sd == dd {
		return
	}
	if bd, bk := dims.OfExpr(e.info, src); bk == dims.Physical && bd != dd {
		return // unitcheck reports this one
	}
	e.pass.Reportf(src.Pos(), "%s value flows into %q, which is declared %s by name", sd, name, dd)
}

// checkReturns reports return expressions whose dimension contradicts the
// function's name-declared result dimension.
func (e *engine) checkReturns(decl *ast.FuncDecl) {
	fn, ok := e.info.Defs[decl.Name].(*types.Func)
	if !ok {
		return
	}
	sum := e.funcs[fn]
	if sum == nil || decl.Body == nil {
		return
	}
	forEachReturn(decl.Body, func(ret *ast.ReturnStmt) {
		if len(ret.Results) != len(sum.results) {
			return
		}
		for i, res := range ret.Results {
			s := sum.results[i]
			if !s.Known || !s.Named {
				continue // only name-declared results form a contract to check against
			}
			rd, rk := e.ofExpr(res)
			if rk == dims.Physical && rd != s.dim() {
				e.pass.Reportf(res.Pos(), "%s returns %s but its result is declared %s", fn.Name(), rd, s.dim())
			}
		}
	})
}

// ----- phase 5: fact export -----

// export publishes summaries of exported functions and fields that carry at
// least one flow-established (non-name-derivable) dimension. Name-declared
// specs are recoverable downstream from export data, so packages whose
// naming already tells the whole story export nothing and keep their fact
// file empty.
func (e *engine) export() error {
	for fn, sum := range e.funcs {
		if !exportedFunc(fn) {
			continue
		}
		fact := objFact{}
		flow := false
		for _, p := range sum.params {
			fact.Params = append(fact.Params, *p)
			flow = flow || (p.Known && !p.Named)
		}
		for _, r := range sum.results {
			fact.Results = append(fact.Results, *r)
			flow = flow || (r.Known && !r.Named)
		}
		if !flow {
			continue
		}
		if err := e.pass.ExportFact(factKey(fn), fact); err != nil {
			return err
		}
	}
	for _, fi := range e.fields {
		if !fi.exported || !fi.spec.Known || fi.spec.Named {
			continue
		}
		s := *fi.spec
		if err := e.pass.ExportFact(fi.key, objFact{Field: &s}); err != nil {
			return err
		}
	}
	return nil
}

// ----- shared helpers -----

func inModule(path string) bool {
	return path == lint.ModulePath || strings.HasPrefix(path, lint.ModulePath+"/")
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig
}

// factKey is the object path a function's fact is stored under: "Func" or
// "Recv.Method".
func factKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if name := receiverTypeName(sig.Recv().Type()); name != "" {
			return name + "." + fn.Name()
		}
	}
	return fn.Name()
}

// exportedFunc reports whether fn's fact key is reachable from other
// packages: the function name is exported, and so is the receiver type for
// methods.
func exportedFunc(fn *types.Func) bool {
	if !fn.Exported() {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		name := receiverTypeName(sig.Recv().Type())
		return name != "" && ast.IsExported(name)
	}
	return true
}

// receiverTypeName names the defined type behind t, unwrapping one level of
// pointer.
func receiverTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
