// Package a exercises the flowdims analyzer: dimensions established by
// dataflow — through returns, parameter usage and struct fields — are
// enforced where name-based inference is blind.
package a

// Span carries no unit in its name, but both parameters and the returned
// difference are seconds; flowdims summarizes it as seconds → usable at
// every call site below.
func Span(startDelay, endDelay float64) float64 {
	return endDelay - startDelay
}

// Volume is bits by dataflow: the product of a rate and a duration.
func Volume(rateBps, horizon float64) float64 {
	return rateBps * horizon
}

// badStore stores the seconds result of Span under a bits name.
func badStore(a, b float64) {
	sinkBits := Span(a, b) // want `seconds value flows into "sinkBits", which is declared bits by name`
	_ = sinkBits
}

// goodStore keeps the dimensions aligned.
func goodStore(a, b float64) {
	gapMillis := Span(a, b)
	_ = gapMillis
}

// badAdd adds the seconds result of Span to a rate.
func badAdd(a, b, linkBps float64) float64 {
	return linkBps + Span(a, b) // want `cross-dimension addition via dataflow: bits/second \+ seconds`
}

// Shape has one unit-named field and one whose dimension only its uses
// reveal.
type Shape struct {
	// SigmaBits is bits by name.
	SigmaBits float64
	// Window is seconds: established below by arithmetic against a
	// deadline.
	Window float64
}

// Fill teaches the analyzer that Window is seconds.
func (s *Shape) Fill(deadline float64) {
	s.Window = deadline + 0.5
}

// badField compares the seconds field against a bit count.
func badField(s *Shape) bool {
	return s.Window > s.SigmaBits // want `cross-dimension comparison via dataflow: seconds > bits`
}

// badArg feeds the bits result of Volume into Span, whose parameters are
// seconds by dataflow.
func badArg(rateBps, horizon float64) float64 {
	return Span(Volume(rateBps, horizon), horizon) // want `argument flows bits into parameter "startDelay" of Span, which carries seconds`
}

// Chained returns seconds through one level of indirection; the summary
// fixpoint resolves it.
func Chained(a, b float64) float64 {
	return Span(a, b)
}

// badChain stores the chained seconds under a rate name.
func badChain(a, b float64) {
	peakBps := Chained(a, b) // want `seconds value flows into "peakBps", which is declared bits/second by name`
	_ = peakBps
}

// badReturn declares seconds in its name but returns the bits result of
// Volume.
func badReturn(rateBps, horizon float64) (spanDelay float64) {
	return Volume(rateBps, horizon) // want `badReturn returns bits but its result is declared seconds`
}

// conflicted is used both as seconds and as bits; conflicting evidence
// demotes the parameter to Unknown and nothing below is reported.
func conflicted(x, delay, countBits float64) (float64, float64) {
	return x + delay, x + countBits
}

// stillSilent shows the demoted parameter produces no findings.
func stillSilent(x float64) {
	sinkBits := x
	_ = sinkBits
}
