package flowdims_test

import (
	"testing"

	"fafnet/internal/lint/flowdims"
	"fafnet/internal/lint/linttest"
)

func TestFlowdims(t *testing.T) {
	linttest.Run(t, flowdims.Analyzer, "testdata/a", "fafnet/internal/linttestdata/a")
}
